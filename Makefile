# Developer entry points. `make verify` is the gate every change must pass:
# vet, build, and the full test suite (chaos matrix included) under the race
# detector.

GO ?= go

.PHONY: verify build test race vet fuzz chaos

verify: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz pass over the hostile-input parsers (X-Etag-Config decoding,
# map building). The corpus seeds also run as part of plain `go test`.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeMap -fuzztime=10s ./internal/core/
	$(GO) test -run=^$$ -fuzz=FuzzBuildMap -fuzztime=10s ./internal/core/

# Fault-injection table: warm PLT / errors / retries per fault cell for both
# schemes (see EXPERIMENTS.md, "Fault model and chaos experiment").
chaos:
	$(GO) run ./examples/chaos
