# Developer entry points. `make verify` is the gate every change must pass:
# vet, build, and the full test suite (chaos matrix included) under the race
# detector.

GO ?= go

.PHONY: verify build test race vet fuzz chaos bench

verify: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz pass over the hostile-input parsers (X-Etag-Config decoding,
# map building). The corpus seeds also run as part of plain `go test`.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeMap -fuzztime=10s ./internal/core/
	$(GO) test -run=^$$ -fuzz=FuzzBuildMap -fuzztime=10s ./internal/core/

# Benchmark sweep with pinned -benchtime/-count so runs are benchstat-
# comparable across commits. Output lands in BENCH_<date>.json (`go test
# -json` stream); extract the text lines for benchstat with:
#   jq -r 'select(.Action=="output") | .Output' BENCH_A.json > a.txt
#   benchstat a.txt b.txt
# See EXPERIMENTS.md, "Cache-core and middleware micro-benchmarks".
BENCH_FILE ?= BENCH_$(shell date +%F).json
bench:
	$(GO) test -json -run '^$$' -bench . -benchtime 1s -count 6 \
		./catalyst/ ./internal/cachestore/ > $(BENCH_FILE)
	@echo "wrote $(BENCH_FILE)"

# Fault-injection table: warm PLT / errors / retries per fault cell for both
# schemes (see EXPERIMENTS.md, "Fault model and chaos experiment").
chaos:
	$(GO) run ./examples/chaos
