# Developer entry points. `make verify` is the gate every change must pass:
# vet, build, and the full test suite (chaos matrix included) under the race
# detector.

GO ?= go

.PHONY: verify build test race vet fuzz chaos bench benchdiff cover cachesim schemes loadgen cluster

verify: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz pass over the hostile-input parsers (X-Etag-Config decoding,
# map building, cache-trace parsing). The corpus seeds also run as part of
# plain `go test`.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeMap -fuzztime=10s ./internal/core/
	$(GO) test -run=^$$ -fuzz=FuzzBuildMap -fuzztime=10s ./internal/core/
	$(GO) test -run=^$$ -fuzz=FuzzParseTrace -fuzztime=10s ./internal/cachesim/
	$(GO) test -run=^$$ -fuzz=FuzzDeltaRoundTrip -fuzztime=10s ./internal/delta/

# Scheme-matrix smoke: the conformance suite (golden table, shape claims,
# determinism, cancellation under -race) plus one live cell via the example.
# See EXPERIMENTS.md, "Scheme matrix".
schemes:
	$(GO) test -race -count=1 -run 'SchemeMatrix|Scheme|Delta|EarlyHints|Negative' \
		./internal/harness/ ./internal/browser/ ./internal/delta/ ./catalyst/
	$(GO) run ./examples/pushcompare

# Cache-policy smoke: replay the committed harness-exported trace and a
# synthetic Zipf/lognormal trace through every policy, checking ratios stay
# within [0,1], no policy beats the FOO-style offline bound, and every
# policy scores hits. See EXPERIMENTS.md, "Cache policies vs the offline
# optimal bound".
cachesim:
	$(GO) run ./cmd/cachesim -trace internal/cachesim/testdata/harness_quick.trace -budget 40% -check
	$(GO) run ./cmd/cachesim -synth -requests 60000 -objects 4000 -budget 2% -check

# Benchmark sweep with pinned -benchtime/-count so runs are benchstat-
# comparable across commits. Output lands in BENCH_<date>.json (`go test
# -json` stream); extract the text lines for benchstat with:
#   jq -r 'select(.Action=="output") | .Output' BENCH_A.json > a.txt
#   benchstat a.txt b.txt
# See EXPERIMENTS.md, "Cache-core and middleware micro-benchmarks".
BENCH_FILE ?= BENCH_$(shell date +%F).json
bench:
	$(GO) test -json -run '^$$' -bench . -benchtime 1s -count 6 \
		./catalyst/ ./internal/cachestore/ ./internal/server/ > $(BENCH_FILE)
	@echo "wrote $(BENCH_FILE)"

# Run the benchmark sweep and compare it against the newest committed
# BENCH_*.json using the in-repo, dependency-free cmd/benchdiff. Fails
# loudly when no committed baseline exists — a diff against nothing is not
# a regression gate. BENCH_TOLERANCE (a percentage) turns the comparison
# into a gate: exit 1 when any benchmark's median regressed beyond it.
BENCH_TOLERANCE ?= 0
benchdiff:
	@base=$$(git ls-files 'BENCH_*.json' | sort | tail -1); \
	if [ -z "$$base" ]; then \
		echo "benchdiff: no committed BENCH_*.json baseline found; run 'make bench' and commit the result first" >&2; \
		exit 1; \
	fi; \
	echo "baseline: $$base"; \
	$(MAKE) bench BENCH_FILE=BENCH_head.json && \
	$(GO) run ./cmd/benchdiff -tolerance $(BENCH_TOLERANCE) "$$base" BENCH_head.json

# Socket-level load smoke: drive the in-process demo site closed-loop over
# real loopback sockets for a couple of seconds and emit both the JSON
# artifact and a benchdiff-compatible bench stream. loadgen exits non-zero
# when no request succeeds, so this doubles as an end-to-end serving-path
# check. See EXPERIMENTS.md, "Socket-level load generation".
loadgen:
	$(GO) run ./cmd/loadgen -self -c 8 -duration 2s \
		-json loadgen.json -bench loadgen.bench.json

# Coverage with a floor so the suite cannot silently shed coverage. The
# floor trails the measured total (80.9% when set) by a safety margin;
# raise it as coverage grows.
COVERAGE_FLOOR ?= 80.0
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVERAGE_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVERAGE_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || { \
		echo "cover: total coverage $$total% fell below the $(COVERAGE_FLOOR)% floor" >&2; exit 1; }

# Cluster smoke: the multi-instance edge-tier cell under -race — three
# in-process catalystd instances serving two tenants through the
# consistent-hash ring, telemetry-verified per-tenant hit ratios, hot-map
# adoption on a non-owner, and a kill-one-node assertion — plus the
# tenant/cluster unit suites and one live run via the example. See
# DESIGN.md §13, "Tenant-aware edge tier".
cluster:
	$(GO) test -race -count=1 -run 'ClusterCell|Ring|Exchange|Tenant|Resolver|Context|Handler|ParseConfig' \
		./internal/harness/ ./internal/cluster/ ./internal/tenant/ ./catalyst/ ./cmd/catalystd/
	$(GO) run ./examples/cluster

# Chaos gate: the fault-injection and overload suites under the race
# detector — the browser-level chaos matrix, the middleware degradation
# ladder, the netsim overload fault modes, the resilience primitives, and
# kill-under-drain — then the fault-injection table: warm PLT / errors /
# retries per fault cell for both schemes (see EXPERIMENTS.md, "Fault
# model and chaos experiment").
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Overload|Ladder|Breaker|Drain|Gate|Budget|Serve|Stall|Handler' \
		./internal/browser/ ./internal/netsim/ ./internal/resilience/ ./internal/server/ ./catalyst/
	$(GO) run ./examples/chaos
