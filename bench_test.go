// Package bench is the benchmark harness that regenerates every figure and
// headline number in the paper's evaluation (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// values).
//
// Each benchmark both times its experiment and reports the experiment's
// key quantity as a custom metric (ReportMetric), so
//
//	go test -bench=. -benchmem
//
// prints the reproduction numbers alongside the usual ns/op. Benchmarks use
// a reduced corpus so the suite completes quickly; run cmd/pltbench -full
// for the paper-scale sweep.
package bench

import (
	"fmt"
	"testing"
	"time"

	"cachecatalyst/internal/browser"
	"cachecatalyst/internal/harness"
	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/vclock"
	"cachecatalyst/internal/webgen"
)

// benchCorpus is the reduced corpus shared by the experiment benchmarks.
func benchCorpus() webgen.Params {
	return webgen.Params{Sites: 8, Seed: 1, Scale: 0.6}
}

// BenchmarkFig1 regenerates the Figure 1 scenario: the example page's first
// visit, conventional revisit, and CacheCatalyst revisit. The reported
// metrics are the three PLTs in milliseconds.
func BenchmarkFig1(b *testing.B) {
	const host = "site.example"
	cond := netsim.Conditions{RTT: 40 * time.Millisecond, DownlinkBps: 60e6}
	build := func(clock vclock.Clock, catalyst bool) browser.OriginMap {
		c := server.NewMemContent()
		week := server.CachePolicy{MaxAge: 7 * 24 * time.Hour, HasMaxAge: true}
		c.SetBody("/index.html", `<html><head><link rel="stylesheet" href="/a.css"><script src="/b.js"></script></head><body></body></html>`, server.CachePolicy{NoCache: true})
		c.SetBody("/a.css", "body{}", week)
		c.SetBody("/b.js", "//@fetch /c.js\n", server.CachePolicy{NoCache: true})
		c.SetBody("/c.js", "//@fetch /d.jpg\n", week)
		c.SetBody("/d.jpg", "JPEG", server.CachePolicy{MaxAge: time.Hour, HasMaxAge: true})
		srv := server.New(c, server.Options{Catalyst: catalyst, Record: catalyst, Clock: clock})
		return browser.OriginMap{host: server.NewOrigin(srv)}
	}

	var cold, conv, cat time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clockA := vclock.NewVirtual(vclock.Epoch)
		origA := build(clockA, false)
		bA := browser.New(clockA, browser.Conventional, netsim.TransportOptions{})
		r0, err := bA.Load(origA, cond, host, "/index.html")
		if err != nil {
			b.Fatal(err)
		}
		clockA.Advance(2 * time.Hour)
		r1, _ := bA.Load(origA, cond, host, "/index.html")

		clockB := vclock.NewVirtual(vclock.Epoch)
		origB := build(clockB, true)
		bB := browser.New(clockB, browser.Catalyst, netsim.TransportOptions{})
		if _, err := bB.Load(origB, cond, host, "/index.html"); err != nil {
			b.Fatal(err)
		}
		clockB.Advance(2 * time.Hour)
		r2, _ := bB.Load(origB, cond, host, "/index.html")
		cold, conv, cat = r0.PLT, r1.PLT, r2.PLT
	}
	b.ReportMetric(ms(cold), "fig1a-cold-ms")
	b.ReportMetric(ms(conv), "fig1b-conv-ms")
	b.ReportMetric(ms(cat), "fig1c-cat-ms")
}

// BenchmarkFig3 regenerates Figure 3 on a reduced corpus and grid. Metrics:
// mean PLT reduction (%) at the extreme cells and overall.
func BenchmarkFig3(b *testing.B) {
	cfg := harness.Config{
		Corpus: benchCorpus(),
		Grid: []netsim.Conditions{
			{RTT: 10 * time.Millisecond, DownlinkBps: 8e6},
			{RTT: 80 * time.Millisecond, DownlinkBps: 8e6},
			{RTT: 10 * time.Millisecond, DownlinkBps: 60e6},
			{RTT: 80 * time.Millisecond, DownlinkBps: 60e6},
		},
		Delays: []time.Duration{time.Hour, 24 * time.Hour},
	}
	var res *harness.SweepResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Cells[0].MeanReductionPct, "8Mbps10ms-%")
	b.ReportMetric(res.Cells[3].MeanReductionPct, "60Mbps80ms-%")
	b.ReportMetric(res.OverallReduction, "overall-%")
}

// BenchmarkHeadline regenerates the abstract's claim: mean PLT reduction at
// the global-median 5G condition (paper: ≈30%).
func BenchmarkHeadline(b *testing.B) {
	cfg := harness.Config{
		Corpus: webgen.Params{Sites: 8, Seed: 1, Scale: 1.0},
		Grid:   []netsim.Conditions{harness.Median5G()},
		Delays: harness.PaperDelays(),
	}
	var res *harness.HeadlineResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunHeadline(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Median5GReduction, "5G-median-reduction-%")
}

// BenchmarkCorpusStats regenerates the §2 workload-model calibration
// table. Metrics: the cache-pathology fractions the paper cites.
func BenchmarkCorpusStats(b *testing.B) {
	day := 24 * time.Hour
	var st webgen.CorpusStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock := vclock.NewVirtual(vclock.Epoch)
		corpus := webgen.Generate(webgen.Params{Sites: 30, Seed: 1}, clock)
		st = corpus.Stats([]time.Duration{day})
	}
	b.ReportMetric(st.FracShortTTL*100, "ttl<1d-%")                      // paper: 40
	b.ReportMetric(st.ShortTTLUnchangedWithin24h*100, "unchanged-24h-%") // paper: 86
	b.ReportMetric(st.SpuriousExpiry[day]*100, "spurious-expiry-%")      // paper: 47
	b.ReportMetric(st.MeanPageBytes/1e6, "page-MB")                      // paper: ~2.5
}

// BenchmarkBaselines regenerates the §5 scheme comparison at the 5G-median
// condition. Metrics: warm PLT per scheme (ms) and warm bytes for push.
func BenchmarkBaselines(b *testing.B) {
	cfg := harness.Config{Corpus: benchCorpus()}
	var rows []harness.BaselineRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunBaselines(cfg, harness.Median5G(), time.Hour)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Scheme {
		case harness.SchemeConventional:
			b.ReportMetric(ms(r.MeanWarmPLT), "conv-warm-ms")
		case harness.SchemeCatalyst:
			b.ReportMetric(ms(r.MeanWarmPLT), "catalyst-warm-ms")
		case harness.SchemeServerPush:
			b.ReportMetric(ms(r.MeanWarmPLT), "push-warm-ms")
			b.ReportMetric(r.MeanWarmBytes/1024, "push-warm-KB")
		case harness.SchemeRDR:
			b.ReportMetric(ms(r.MeanColdPLT), "rdr-cold-ms")
		}
	}
}

// BenchmarkAblationHeaderOverhead quantifies the X-Etag-Config cost.
// Metrics: mean map bytes per navigation and its share of the response.
func BenchmarkAblationHeaderOverhead(b *testing.B) {
	cfg := harness.Config{Corpus: benchCorpus()}
	var res *harness.OverheadResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunHeaderOverhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanMapBytes, "map-bytes")
	b.ReportMetric(res.OverheadFraction*100, "nav-overhead-%")
}

// BenchmarkAblationCoverage quantifies static-map coverage vs the
// recording extension. Metrics: covered fraction per variant.
func BenchmarkAblationCoverage(b *testing.B) {
	cfg := harness.Config{Corpus: benchCorpus()}
	var rows []harness.CoverageRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunCoverage(cfg, harness.Median5G())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].CoveredFraction*100, "static-covered-%")
	b.ReportMetric(rows[1].CoveredFraction*100, "record-covered-%")
}

// BenchmarkAblationH2 reruns a Figure 3 cell under HTTP/2 multiplexing:
// fewer connections means revalidations pipeline better, so conventional
// caching loses less — catalyst's edge shrinks but stays positive.
func BenchmarkAblationH2(b *testing.B) {
	for _, h2 := range []bool{false, true} {
		name := "h1-6conns"
		if h2 {
			name = "h2-multiplexed"
		}
		b.Run(name, func(b *testing.B) {
			cfg := harness.Config{
				Corpus:    benchCorpus(),
				Transport: netsim.TransportOptions{H2: h2},
				Grid:      []netsim.Conditions{harness.Median5G()},
				Delays:    []time.Duration{time.Hour},
			}
			var res *harness.SweepResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = harness.RunFig3(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.OverallReduction, "reduction-%")
		})
	}
}

// BenchmarkAblationChangeRate sweeps revisit delay — a proxy for content
// volatility: the longer the gap, the more resources have really changed
// and the less any token scheme can save.
func BenchmarkAblationChangeRate(b *testing.B) {
	cfg := harness.Config{
		Corpus: benchCorpus(),
		Grid:   []netsim.Conditions{harness.Median5G()},
		Delays: []time.Duration{time.Minute, 6 * time.Hour, 7 * 24 * time.Hour, 30 * 24 * time.Hour},
	}
	var res *harness.SweepResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, dp := range res.Cells[0].ByDelay {
		b.ReportMetric(dp.MeanReductionPct, "+"+dp.Delay.String()+"-%")
	}
}

// BenchmarkAblationMobileProfile reruns the 5G-median cell with the
// mobile corpus profile — the device class the paper's motivation centres
// on. Lighter pages shift the bottleneck further toward latency, so the
// reduction holds (or grows) despite fewer resources.
func BenchmarkAblationMobileProfile(b *testing.B) {
	for _, profile := range []webgen.Profile{webgen.ProfileDesktop, webgen.ProfileMobile} {
		b.Run(profile.String(), func(b *testing.B) {
			corpus := benchCorpus()
			corpus.Profile = profile
			cfg := harness.Config{
				Corpus: corpus,
				Grid:   []netsim.Conditions{harness.Median5G()},
				Delays: []time.Duration{time.Hour},
			}
			var res *harness.SweepResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = harness.RunFig3(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.OverallReduction, "reduction-%")
		})
	}
}

// BenchmarkColdLoad measures raw emulator throughput: one full cold page
// load (≈40 resources) per iteration, including corpus materialization.
func BenchmarkColdLoad(b *testing.B) {
	cond := harness.Median5G()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := harness.NewWorld(benchCorpus(), i%8, harness.SchemeConventional, netsim.TransportOptions{})
		if _, err := w.Load(cond); err != nil {
			b.Fatal(err)
		}
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// BenchmarkFCP reports the First-Contentful-Paint reduction at the
// 5G-median condition — the UX metric the paper's §6 defers to future
// work, implemented here.
func BenchmarkFCP(b *testing.B) {
	cfg := harness.Config{
		Corpus: benchCorpus(),
		Grid:   []netsim.Conditions{harness.Median5G()},
		Delays: []time.Duration{time.Hour},
	}
	var res *harness.SweepResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Cells[0].FCPReductionPct, "fcp-reduction-%")
	b.ReportMetric(res.Cells[0].MeanReductionPct, "plt-reduction-%")
}

// BenchmarkAblationSlowStart reruns the 5G-median cell with TCP slow-start
// modelling enabled. Counterintuitive finding: the reduction *shrinks*,
// because the conventional client's stream of tiny revalidations doubles as
// congestion-window warming for the transfers it cannot avoid, while the
// catalyst client hits those same transfers on cold windows. Another
// second-order effect the paper's evaluation does not surface.
func BenchmarkAblationSlowStart(b *testing.B) {
	for _, ss := range []bool{false, true} {
		name := "fluid-only"
		if ss {
			name = "with-slow-start"
		}
		b.Run(name, func(b *testing.B) {
			cfg := harness.Config{
				Corpus:    benchCorpus(),
				Transport: netsim.TransportOptions{SlowStart: ss},
				Grid:      []netsim.Conditions{harness.Median5G()},
				Delays:    []time.Duration{time.Hour},
			}
			var res *harness.SweepResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = harness.RunFig3(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.OverallReduction, "reduction-%")
			b.ReportMetric(float64(res.Cells[0].MeanBasePLT.Milliseconds()), "conv-warm-ms")
		})
	}
}

// BenchmarkAblationFingerprinting sweeps the fraction of assets deployed
// the best-practice way (immutable TTL + version-stamped URL). As
// fingerprinting rises, there are fewer spurious revalidations for
// CacheCatalyst to eliminate — quantifying how much of the paper's win
// assumes today's header misconfiguration.
func BenchmarkAblationFingerprinting(b *testing.B) {
	for _, frac := range []float64{0, 0.5, 1.0} {
		b.Run(fmt.Sprintf("fingerprint-%.0f%%", frac*100), func(b *testing.B) {
			corpus := benchCorpus()
			corpus.FingerprintFrac = frac
			cfg := harness.Config{
				Corpus: corpus,
				Grid:   []netsim.Conditions{harness.Median5G()},
				Delays: []time.Duration{time.Hour, 24 * time.Hour},
			}
			var res *harness.SweepResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = harness.RunFig3(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.OverallReduction, "reduction-%")
		})
	}
}
