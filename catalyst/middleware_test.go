package catalyst

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/fstest"
	"time"
)

// innerSite is a plain file-serving handler with no CacheCatalyst
// awareness, standing in for an existing application.
func innerSite() http.Handler {
	mux := http.NewServeMux()
	serve := func(path, contentType, body string) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", contentType)
			_, _ = io.WriteString(w, body)
		})
	}
	serve("/{$}", "text/html; charset=utf-8",
		`<html><head><link rel="stylesheet" href="/style.css"><script src="/app.js"></script></head><body><img src="/logo.png"></body></html>`)
	serve("/style.css", "text/css; charset=utf-8", `body { background: url(/bg.png); }`)
	serve("/app.js", "text/javascript; charset=utf-8", `console.log("app")`)
	serve("/logo.png", "image/png", "PNG-LOGO")
	serve("/bg.png", "image/png", "PNG-BG")
	mux.HandleFunc("/api/data", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"ok":true}`)
	})
	return mux
}

func TestMiddlewareDecoratesHTML(t *testing.T) {
	h := Middleware(innerSite(), MiddlewareOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))

	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	m, err := DecodeMap(rec.Header().Get(HeaderName))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/style.css", "/app.js", "/logo.png", "/bg.png"} {
		if _, ok := m[p]; !ok {
			t.Errorf("map missing %q: %v", p, m)
		}
	}
	if !strings.Contains(rec.Body.String(), RegistrationSnippet) {
		t.Error("snippet not injected")
	}
	if rec.Header().Get("Etag") == "" {
		t.Error("rewritten HTML has no validator")
	}
}

func TestMiddlewareConditionalGet(t *testing.T) {
	h := Middleware(innerSite(), MiddlewareOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	tag := rec.Header().Get("Etag")

	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("If-None-Match", tag)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusNotModified {
		t.Fatalf("status = %d", rec2.Code)
	}
	if rec2.Header().Get(HeaderName) == "" {
		t.Fatal("304 must still carry the map header")
	}
	if rec2.Body.Len() != 0 {
		t.Fatal("304 carried a body")
	}
}

func TestMiddlewarePassesThroughNonHTML(t *testing.T) {
	h := Middleware(innerSite(), MiddlewareOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/data", nil))
	if rec.Code != 200 || rec.Body.String() != `{"ok":true}` {
		t.Fatalf("API response mangled: %d %q", rec.Code, rec.Body.String())
	}
	if rec.Header().Get(HeaderName) != "" {
		t.Error("map header on JSON response")
	}
}

func TestMiddlewareServesWorkerScript(t *testing.T) {
	h := Middleware(innerSite(), MiddlewareOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", WorkerPath, nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), HeaderName) {
		t.Fatalf("worker script: %d", rec.Code)
	}
}

func TestMiddlewareMapTagsMatchProbedResources(t *testing.T) {
	h := Middleware(innerSite(), MiddlewareOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	m, _ := DecodeMap(rec.Header().Get(HeaderName))

	// Since the inner handler emits no ETags, the middleware derives them
	// from content; the derived tag must be stable.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("GET", "/", nil))
	m2, _ := DecodeMap(rec2.Header().Get(HeaderName))
	for p, tag := range m {
		if m2[p] != tag {
			t.Errorf("tag for %q unstable: %v vs %v", p, tag, m2[p])
		}
	}
	if m["/style.css"] != TagForBytes([]byte(`body { background: url(/bg.png); }`)) {
		t.Error("derived tag does not match content hash")
	}
}

func TestMiddlewareProbeTTL(t *testing.T) {
	hits := 0
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/a.js" {
			hits++
			w.Header().Set("Content-Type", "text/javascript")
			_, _ = io.WriteString(w, "x()")
			return
		}
		w.Header().Set("Content-Type", "text/html")
		_, _ = io.WriteString(w, `<script src="/a.js"></script>`)
	})
	h := Middleware(inner, MiddlewareOptions{ProbeTTL: time.Hour})
	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	}
	if hits != 1 {
		t.Fatalf("probe hits = %d, want 1 (TTL cache not used)", hits)
	}
}

func TestMiddlewareRespectsInnerETags(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v.js" {
			w.Header().Set("Content-Type", "text/javascript")
			w.Header().Set("Etag", `"inner-tag"`)
			_, _ = io.WriteString(w, "v()")
			return
		}
		w.Header().Set("Content-Type", "text/html")
		_, _ = io.WriteString(w, `<script src="/v.js"></script>`)
	})
	h := Middleware(inner, MiddlewareOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	m, _ := DecodeMap(rec.Header().Get(HeaderName))
	if m["/v.js"].Opaque != "inner-tag" {
		t.Fatalf("inner ETag not used: %v", m["/v.js"])
	}
}

func TestMiddlewareOverRealSockets(t *testing.T) {
	// Full loopback round trip through net/http.
	ts := httptest.NewServer(Middleware(innerSite(), MiddlewareOptions{}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	m, err := DecodeMap(resp.Header.Get(HeaderName))
	if err != nil || len(m) != 4 {
		t.Fatalf("map over real sockets: %v, %v", m, err)
	}
	if !strings.Contains(string(body), "serviceWorker") {
		t.Fatal("snippet missing over real sockets")
	}

	// Conditional revisit earns a 304 with a fresh map.
	req, _ := http.NewRequest("GET", ts.URL+"/", nil)
	req.Header.Set("If-None-Match", resp.Header.Get("Etag"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revisit status = %d", resp2.StatusCode)
	}
	if resp2.Header.Get(HeaderName) == "" {
		t.Fatal("304 lost the map header")
	}
}

func TestNewServerServesWithCatalyst(t *testing.T) {
	fsys := fstest.MapFS{
		"index.html": {Data: []byte(`<img src="/pic.png">`)},
		"pic.png":    {Data: []byte("PNG")},
	}
	srv, err := NewServer(fsys, ServerOptions{Policy: DefaultPolicy})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m, err := DecodeMap(resp.Header.Get(HeaderName))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m["/pic.png"]; !ok {
		t.Fatalf("map = %v", m)
	}
}

func TestDefaultPolicy(t *testing.T) {
	if !DefaultPolicy("/index.html").NoCache {
		t.Error("HTML should be no-cache")
	}
	if p := DefaultPolicy("/app.js"); !p.HasMaxAge || p.MaxAge != 24*time.Hour {
		t.Errorf("js policy = %+v", p)
	}
	if p := DefaultPolicy("/pic.png"); !p.HasMaxAge || p.MaxAge != time.Hour {
		t.Errorf("png policy = %+v", p)
	}
	if !DefaultPolicy("/").NoCache {
		t.Error("root should be no-cache")
	}
}

func TestMiddlewarePassesThroughNonGET(t *testing.T) {
	called := ""
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		called = r.Method
		w.WriteHeader(http.StatusCreated)
	})
	h := Middleware(inner, MiddlewareOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/submit", strings.NewReader("x=1")))
	if called != "POST" || rec.Code != http.StatusCreated {
		t.Fatalf("POST mishandled: called=%q code=%d", called, rec.Code)
	}
	if rec.Header().Get(HeaderName) != "" {
		t.Fatal("map header on POST response")
	}
}

func TestMiddlewareHEADOnHTML(t *testing.T) {
	h := Middleware(innerSite(), MiddlewareOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("HEAD", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatal("HEAD returned a body")
	}
	if rec.Header().Get(HeaderName) == "" {
		t.Fatal("HEAD response lost the map header")
	}
	if rec.Header().Get("Etag") == "" {
		t.Fatal("HEAD response lost the validator")
	}
}

func TestMiddlewarePageWithQueryString(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/search":
			w.Header().Set("Content-Type", "text/html")
			_, _ = io.WriteString(w, `<img src="result.png">`)
		case "/result.png":
			w.Header().Set("Content-Type", "image/png")
			_, _ = io.WriteString(w, "PNG")
		default:
			http.NotFound(w, r)
		}
	})
	h := Middleware(inner, MiddlewareOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/search?q=cats", nil))
	m, err := DecodeMap(rec.Header().Get(HeaderName))
	if err != nil {
		t.Fatal(err)
	}
	// The relative image resolves against /search (not the query).
	if _, ok := m["/result.png"]; !ok {
		t.Fatalf("map = %v", m)
	}
}

func TestMiddlewareErrorPagePassesThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = io.WriteString(w, "<html>boom</html>")
	})
	h := Middleware(inner, MiddlewareOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get(HeaderName) != "" {
		t.Fatal("map header on a 500 page")
	}
	if !strings.Contains(rec.Body.String(), "boom") {
		t.Fatal("error body lost")
	}
}
