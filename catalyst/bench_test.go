package catalyst

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// discardWriter is the cheapest possible ResponseWriter, so the benchmarks
// measure middleware overhead rather than recorder bookkeeping.
type discardWriter struct {
	h http.Header
}

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) WriteHeader(int)             {}
func (d *discardWriter) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardWriter) Flush()                      {}

func staticAsset(size int) http.Handler {
	body := []byte(strings.Repeat("0123456789abcdef", size/16))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(body)
	})
}

// recorderMiddleware reimplements the pre-cachestore write path — record the
// full response, and for non-HTML replay the inner handler into a second
// recorder and copy that out — as the comparison baseline for the streaming
// benchmarks. It executes the inner handler twice and buffers the body
// twice, which is exactly what the sniffing writer removed.
func recorderMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		next.ServeHTTP(rec, cloneWithoutConditionals(r))
		if rec.Code == http.StatusOK && strings.HasPrefix(rec.Header().Get("Content-Type"), "text/html") {
			return // HTML rewriting is not what these benchmarks measure
		}
		rec2 := httptest.NewRecorder()
		next.ServeHTTP(rec2, r)
		for k, vs := range rec2.Header() {
			w.Header()[k] = vs
		}
		w.WriteHeader(rec2.Code)
		_, _ = io.Copy(w, rec2.Body)
	})
}

func benchStatic(b *testing.B, h http.Handler, size int) {
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("GET", "/blob", nil)
			h.ServeHTTP(&discardWriter{h: make(http.Header)}, req)
		}
	})
}

// BenchmarkMiddlewareStatic compares the streaming sniffWriter hot path
// against the old record-then-replay scheme on a 64 KiB static asset. The
// acceptance bar for the refactor is ≥2× ops/sec for Streaming over
// Recorder.
func BenchmarkMiddlewareStatic(b *testing.B) {
	const size = 64 << 10
	b.Run("Streaming", func(b *testing.B) {
		benchStatic(b, Middleware(staticAsset(size), MiddlewareOptions{}), size)
	})
	b.Run("Recorder", func(b *testing.B) {
		benchStatic(b, recorderMiddleware(staticAsset(size)), size)
	})
}

// BenchmarkMiddlewareHTML measures the buffered map-building path, which
// both schemes share; it bounds the regression risk of the rewrite on the
// HTML side.
func BenchmarkMiddlewareHTML(b *testing.B) {
	h := Middleware(innerSite(), MiddlewareOptions{ProbeTTL: time.Hour})
	// Warm the probe cache once so the benchmark measures the steady state.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.ServeHTTP(&discardWriter{h: make(http.Header)}, httptest.NewRequest("GET", "/", nil))
		}
	})
}

// BenchmarkProbeContention renders one page from many goroutines with a
// probe TTL so short every render wants a re-probe: the singleflight layer
// determines how many inner-handler probes actually run.
func BenchmarkProbeContention(b *testing.B) {
	h := Middleware(innerSite(), MiddlewareOptions{ProbeTTL: 100 * time.Microsecond})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.ServeHTTP(&discardWriter{h: make(http.Header)}, httptest.NewRequest("GET", "/", nil))
		}
	})
}
