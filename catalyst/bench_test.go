package catalyst

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// discardWriter is the cheapest possible ResponseWriter, so the benchmarks
// measure middleware overhead rather than recorder bookkeeping.
type discardWriter struct {
	h http.Header
}

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) WriteHeader(int)             {}
func (d *discardWriter) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardWriter) Flush()                      {}

func staticAsset(size int) http.Handler {
	body := []byte(strings.Repeat("0123456789abcdef", size/16))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(body)
	})
}

// recorderMiddleware reimplements the pre-cachestore write path — record the
// full response, and for non-HTML replay the inner handler into a second
// recorder and copy that out — as the comparison baseline for the streaming
// benchmarks. It executes the inner handler twice and buffers the body
// twice, which is exactly what the sniffing writer removed.
func recorderMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		next.ServeHTTP(rec, cloneWithoutConditionals(r))
		if rec.Code == http.StatusOK && strings.HasPrefix(rec.Header().Get("Content-Type"), "text/html") {
			return // HTML rewriting is not what these benchmarks measure
		}
		rec2 := httptest.NewRecorder()
		next.ServeHTTP(rec2, r)
		for k, vs := range rec2.Header() {
			w.Header()[k] = vs
		}
		w.WriteHeader(rec2.Code)
		_, _ = io.Copy(w, rec2.Body)
	})
}

func benchStatic(b *testing.B, h http.Handler, size int) {
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("GET", "/blob", nil)
			h.ServeHTTP(&discardWriter{h: make(http.Header)}, req)
		}
	})
}

// BenchmarkMiddlewareStatic compares the streaming sniffWriter hot path
// against the old record-then-replay scheme on a 64 KiB static asset. The
// acceptance bar for the refactor is ≥2× ops/sec for Streaming over
// Recorder.
func BenchmarkMiddlewareStatic(b *testing.B) {
	const size = 64 << 10
	b.Run("Streaming", func(b *testing.B) {
		benchStatic(b, Middleware(staticAsset(size), MiddlewareOptions{}), size)
	})
	b.Run("Recorder", func(b *testing.B) {
		benchStatic(b, recorderMiddleware(staticAsset(size)), size)
	})
}

// BenchmarkMiddlewareHTML measures the buffered map-building path, which
// both schemes share; it bounds the regression risk of the rewrite on the
// HTML side.
func BenchmarkMiddlewareHTML(b *testing.B) {
	h := Middleware(innerSite(), MiddlewareOptions{ProbeTTL: time.Hour})
	// Warm the probe cache once so the benchmark measures the steady state.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.ServeHTTP(&discardWriter{h: make(http.Header)}, httptest.NewRequest("GET", "/", nil))
		}
	})
}

// BenchmarkProbeContention renders one page from many goroutines with a
// probe TTL so short every render wants a re-probe: the singleflight layer
// determines how many inner-handler probes actually run.
func BenchmarkProbeContention(b *testing.B) {
	h := Middleware(innerSite(), MiddlewareOptions{ProbeTTL: 100 * time.Microsecond})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.ServeHTTP(&discardWriter{h: make(http.Header)}, httptest.NewRequest("GET", "/", nil))
		}
	})
}

// site50 is an inner handler serving one HTML page with ~50 same-origin
// subresources (a handful of stylesheets that each pull in a background
// image, the rest plain assets) — the cold-page shape from the paper's
// motivating example. Non-HTML responses sleep for delay, standing in for
// the inner handler's real per-request cost.
func site50(delay time.Duration) http.Handler {
	var page strings.Builder
	page.WriteString("<html><head>")
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&page, `<link rel="stylesheet" href="/s%d.css">`, i)
	}
	page.WriteString("</head><body>")
	for i := 0; i < 45; i++ {
		fmt.Fprintf(&page, `<img src="/img/i%02d.png">`, i)
	}
	page.WriteString("</body></html>")
	html := page.String()

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_, _ = io.WriteString(w, html)
			return
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if strings.HasSuffix(r.URL.Path, ".css") {
			w.Header().Set("Content-Type", "text/css")
			fmt.Fprintf(w, ".x { background: url(/bg%s.png) }", r.URL.Path[2:3])
			return
		}
		w.Header().Set("Content-Type", "image/png")
		_, _ = io.WriteString(w, r.URL.Path)
	})
}

// BenchmarkMiddlewareHTML50 measures the steady state the render cache
// exists for: a hot, unchanged ~50-subresource page whose probes are all
// fresh. RenderCache is the shipping configuration; NoRenderCache disables
// the cache (MaxRenderBytes < 0), paying tokenizer + injection + body hash +
// map serialization per request. The tentpole acceptance bar is ≥3×
// ops/sec for RenchmarkCache over NoRenderCache.
func BenchmarkMiddlewareHTML50(b *testing.B) {
	bench := func(b *testing.B, opts MiddlewareOptions) {
		opts.ProbeTTL = time.Hour
		h := Middleware(site50(0), opts)
		// Two warm-up renders: the first fills the probe cache (bumping the
		// probe generation as entries land), the second caches the map
		// encoding against the now-stable generation.
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.ServeHTTP(&discardWriter{h: make(http.Header)}, httptest.NewRequest("GET", "/", nil))
			}
		})
	}
	b.Run("RenderCache", func(b *testing.B) { bench(b, MiddlewareOptions{}) })
	b.Run("NoRenderCache", func(b *testing.B) { bench(b, MiddlewareOptions{MaxRenderBytes: -1}) })
	// Gated is RenderCache plus admission control at catalystd's default
	// capacity — the overload PR's acceptance bar is the gate costing <3%
	// on this hot path.
	b.Run("Gated", func(b *testing.B) { bench(b, MiddlewareOptions{MaxInflight: 256}) })
}

// BenchmarkMiddlewareWarmHit isolates the middleware's own warm-hit cost:
// request and writer are reused across iterations, so — unlike HTML50,
// whose figures include ~2.4µs of httptest request construction per op —
// what remains is the serve itself. The tentpole bar is ≤1 alloc/op here:
// a fully-warm unchanged page runs the hot-index memcmp, reuses the cached
// encoding, writes precomputed headers, and acquires no mutex (see
// TestWarmGetTakesNoMutex in internal/cachestore for the store-level proof).
func BenchmarkMiddlewareWarmHit(b *testing.B) {
	h := Middleware(site50(0), MiddlewareOptions{ProbeTTL: time.Hour})
	// Warm: first request fills probe + render caches, second pins the
	// encoding against the stable probe generation.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	req := httptest.NewRequest("GET", "/", nil)
	w := &discardWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}

// BenchmarkMiddlewareHTMLCold measures the first render of a ~50-subresource
// page when every probe must actually run against an inner handler that
// costs ~100µs per request — the cold-page latency the resolve fan-out
// attacks. Each iteration uses a fresh middleware so nothing is cached;
// Parallel uses the default fan-out, Sequential pins ProbeConcurrency to 1
// (the pre-fan-out behaviour, roughly sum(probe) vs max(probe)).
func BenchmarkMiddlewareHTMLCold(b *testing.B) {
	const probeCost = 100 * time.Microsecond
	bench := func(b *testing.B, concurrency int) {
		inner := site50(probeCost)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := Middleware(inner, MiddlewareOptions{ProbeTTL: time.Hour, ProbeConcurrency: concurrency})
			h.ServeHTTP(&discardWriter{h: make(http.Header)}, httptest.NewRequest("GET", "/", nil))
		}
	}
	b.Run("Parallel", func(b *testing.B) { bench(b, 0) })
	b.Run("Sequential", func(b *testing.B) { bench(b, 1) })
}
