package catalyst

import (
	"net/http/httptest"
	"testing"
	"testing/fstest"

	"cachecatalyst/internal/server"
)

// clientWorld serves a small catalyst-enabled site over real sockets and
// returns its base URL plus the underlying server for metrics.
func clientWorld(t *testing.T) (string, *server.Server, func()) {
	t.Helper()
	fsys := fstest.MapFS{
		"index.html": {Data: []byte(`<link rel="stylesheet" href="/s.css"><img src="/logo.png">`)},
		"s.css":      {Data: []byte("body{}")},
		"logo.png":   {Data: []byte("PNG-V1")},
	}
	srv, err := NewServer(fsys, ServerOptions{Policy: DefaultPolicy})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	return ts.URL, srv, ts.Close
}

func TestClientFirstVisitFetchesAndCaches(t *testing.T) {
	base, _, done := clientWorld(t)
	defer done()
	c := NewClient(nil)

	page, err := c.Get(base + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if page.Source != "network" || page.StatusCode != 200 {
		t.Fatalf("page: %s %d", page.Source, page.StatusCode)
	}
	css, err := c.Get(base + "/s.css")
	if err != nil {
		t.Fatal(err)
	}
	if css.Source != "network" || string(css.Body) != "body{}" {
		t.Fatalf("css: %+v", css)
	}
	if _, err := c.Get(base + "/logo.png"); err != nil {
		t.Fatal(err)
	}
	st := c.Snapshot()
	if st.NetworkFetches != 3 || st.LocalHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientRevisitServesFromCache(t *testing.T) {
	base, srv, done := clientWorld(t)
	defer done()
	c := NewClient(nil)
	mustGet := func(p string) *ClientResponse {
		t.Helper()
		r, err := c.Get(base + p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	mustGet("/index.html")
	mustGet("/s.css")
	mustGet("/logo.png")
	before := srv.Metrics.Requests.Load()

	// Revisit: the page revalidates (304 carries a fresh map)...
	page := mustGet("/index.html")
	if page.Source != "revalidated" {
		t.Fatalf("page revisit source = %s", page.Source)
	}
	// ...and the subresources come from cache with zero requests.
	css := mustGet("/s.css")
	logo := mustGet("/logo.png")
	if css.Source != "cache" || logo.Source != "cache" {
		t.Fatalf("subresources: %s, %s", css.Source, logo.Source)
	}
	if string(css.Body) != "body{}" || string(logo.Body) != "PNG-V1" {
		t.Fatal("cached bodies wrong")
	}
	if got := srv.Metrics.Requests.Load() - before; got != 1 {
		t.Fatalf("server saw %d requests on revisit, want 1", got)
	}
	if st := c.Snapshot(); st.LocalHits != 2 || st.Revalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientFetchesChangedResource(t *testing.T) {
	fsys := fstest.MapFS{
		"index.html": {Data: []byte(`<img src="/logo.png">`)},
		"logo.png":   {Data: []byte("PNG-V1")},
	}
	srv, err := NewServer(fsys, ServerOptions{Policy: DefaultPolicy})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := NewClient(nil)
	if _, err := c.Get(ts.URL + "/index.html"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ts.URL + "/logo.png"); err != nil {
		t.Fatal(err)
	}

	// Change the image on disk and reload the server content.
	fsys["logo.png"] = &fstest.MapFile{Data: []byte("PNG-V2-CHANGED")}
	reloadable, ok := srv.Content().(*server.FSContent)
	if !ok {
		t.Fatal("content not reloadable")
	}
	if err := reloadable.Reload(); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Get(ts.URL + "/index.html"); err != nil {
		t.Fatal(err)
	}
	logo, err := c.Get(ts.URL + "/logo.png")
	if err != nil {
		t.Fatal(err)
	}
	if logo.Source == "cache" {
		t.Fatal("stale logo served from cache after change")
	}
	if string(logo.Body) != "PNG-V2-CHANGED" {
		t.Fatalf("body = %q", logo.Body)
	}
	// And the *next* revisit serves the new version locally.
	if _, err := c.Get(ts.URL + "/index.html"); err != nil {
		t.Fatal(err)
	}
	logo2, _ := c.Get(ts.URL + "/logo.png")
	if logo2.Source != "cache" || string(logo2.Body) != "PNG-V2-CHANGED" {
		t.Fatalf("re-cache failed: %s %q", logo2.Source, logo2.Body)
	}
}

func TestClientAgainstPlainServer(t *testing.T) {
	// A server without CacheCatalyst: the client degrades to conditional
	// requests, never serving stale.
	content := server.NewMemContent()
	content.SetBody("/x.txt", "hello", server.CachePolicy{NoCache: true})
	ts := httptest.NewServer(server.New(content, server.Options{}))
	defer ts.Close()

	c := NewClient(nil)
	first, err := c.Get(ts.URL + "/x.txt")
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != "network" {
		t.Fatalf("source = %s", first.Source)
	}
	second, err := c.Get(ts.URL + "/x.txt")
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != "revalidated" || string(second.Body) != "hello" {
		t.Fatalf("second: %s %q", second.Source, second.Body)
	}
}

func TestClientRejectsRelativeURL(t *testing.T) {
	c := NewClient(nil)
	if _, err := c.Get("/relative"); err == nil {
		t.Fatal("relative URL accepted")
	}
	if _, err := c.Get("://bad"); err == nil {
		t.Fatal("malformed URL accepted")
	}
}

func TestClientClear(t *testing.T) {
	base, _, done := clientWorld(t)
	defer done()
	c := NewClient(nil)
	if _, err := c.Get(base + "/index.html"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(base + "/s.css"); err != nil {
		t.Fatal(err)
	}
	c.Clear()
	css, err := c.Get(base + "/s.css")
	if err != nil {
		t.Fatal(err)
	}
	if css.Source != "network" {
		t.Fatalf("cleared client served from %s", css.Source)
	}
}
