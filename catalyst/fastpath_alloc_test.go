//go:build !race

// The warm-path allocation pin lives behind !race: the race detector's
// instrumentation allocates on its own, which would fail the ≤1 budget for
// reasons unrelated to the serve path.

package catalyst

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestWarmHitAllocations pins the warm fast lane's allocation budget: once
// a page's render, hot pin, and map encoding are cached, a serve allocates
// at most once — and that one is the inner handler's own Content-Type Set,
// not the middleware's. Regressions here are exactly the per-request
// garbage the fast-lane refactor removed (sniff buffers, header encodes,
// span closures, request clones).
func TestWarmHitAllocations(t *testing.T) {
	h := Middleware(site50(0), MiddlewareOptions{ProbeTTL: time.Hour})
	// First request warms probes + render + hot pin; second caches the
	// encoding against the now-stable probe generation.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	req := httptest.NewRequest("GET", "/", nil)
	w := &discardWriter{h: make(http.Header)}
	h.ServeHTTP(w, req) // settle the writer pool and response header buckets
	if n := testing.AllocsPerRun(200, func() { h.ServeHTTP(w, req) }); n > 1 {
		t.Fatalf("warm hit allocates %.1f/op, want at most 1", n)
	}
}
