package catalyst

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"cachecatalyst/internal/core"
	"cachecatalyst/internal/etag"
)

// Client is a CacheCatalyst-aware HTTP client for Go programs — the
// non-browser counterpart of the Service Worker. Crawlers, monitors and
// scrapers that revisit pages benefit the same way browsers do: after a
// page fetch delivers the X-Etag-Config map, any cached subresource whose
// entity tag matches is returned locally with zero network round trips,
// and anything else is fetched (conditionally when possible) and
// re-cached.
//
// A Client is safe for concurrent use.
type Client struct {
	// HTTP performs the actual requests; nil means http.DefaultClient.
	HTTP *http.Client

	mu    sync.Mutex
	maps  map[string]ETagMap // per origin ("scheme://host")
	cache map[string]*cachedResponse

	// Stats counters (read with Snapshot).
	localHits, networkFetches, revalidations int64
}

type cachedResponse struct {
	status int
	header http.Header
	body   []byte
}

// response builds a caller-owned copy of the entry.
func (c *cachedResponse) response(source string) *ClientResponse {
	return &ClientResponse{
		StatusCode: c.status,
		Header:     c.header.Clone(),
		Body:       append([]byte(nil), c.body...),
		Source:     source,
	}
}

// ClientResponse is a completed (possibly cache-served) exchange.
type ClientResponse struct {
	StatusCode int
	Header     http.Header
	Body       []byte
	// Source tells where the body came from: "network", "cache"
	// (zero round trips, proven current by the proactive map), or
	// "revalidated" (a conditional request answered 304).
	Source string
}

// ClientStats is a snapshot of client activity.
type ClientStats struct {
	LocalHits      int64
	NetworkFetches int64
	Revalidations  int64
}

// NewClient returns an empty-cache client over hc.
func NewClient(hc *http.Client) *Client {
	return &Client{
		HTTP:  hc,
		maps:  make(map[string]ETagMap),
		cache: make(map[string]*cachedResponse),
	}
}

// Snapshot returns current counters.
func (c *Client) Snapshot() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{LocalHits: c.localHits, NetworkFetches: c.networkFetches, Revalidations: c.revalidations}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Get fetches rawURL with CacheCatalyst semantics. HTML responses refresh
// the origin's ETag map; subresources covered by a current map entry are
// served from the local cache without touching the network.
func (c *Client) Get(rawURL string) (*ClientResponse, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("catalyst client: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("catalyst client: URL %q must be absolute", rawURL)
	}
	originKey := u.Scheme + "://" + u.Host
	cacheKey := originKey + resourceKey(u)

	// Serve locally when the proactive token proves the copy current. The
	// validator is snapshotted under the lock: cached entries are shared
	// between goroutines and must not be touched outside it.
	var cachedTag string
	c.mu.Lock()
	m := c.maps[originKey]
	if cached := c.cache[cacheKey]; cached != nil {
		cachedTag = cached.header.Get("Etag")
		if m != nil && cachedTag != "" {
			if tag, ok := etag.Parse(cachedTag); ok &&
				core.Decide(m, resourceKey(u), tag) == core.ServeFromCache {
				c.localHits++
				resp := cached.response("cache")
				c.mu.Unlock()
				return resp, nil
			}
		}
	}
	c.mu.Unlock()

	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, err
	}
	if cachedTag != "" {
		req.Header.Set("If-None-Match", cachedTag)
	}
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.networkFetches++

	// HTML responses (and their 304s) carry a fresh map for the origin.
	if cfg := httpResp.Header.Get(HeaderName); cfg != "" {
		if newMap, err := core.DecodeMap(cfg); err == nil {
			c.maps[originKey] = newMap
		}
	}

	if httpResp.StatusCode == http.StatusNotModified {
		if cached := c.cache[cacheKey]; cached != nil {
			c.revalidations++
			// Merge refreshed headers per RFC 9111 §4.3.4 — into a fresh
			// entry, never mutating the shared one in place.
			merged := cached.header.Clone()
			for k, vs := range httpResp.Header {
				if k == "Content-Length" {
					continue
				}
				merged[k] = append([]string(nil), vs...)
			}
			fresh := &cachedResponse{status: cached.status, header: merged, body: cached.body}
			c.cache[cacheKey] = fresh
			return fresh.response("revalidated"), nil
		}
		// The entry vanished (Clear raced the request): surface the 304.
	}

	out := &ClientResponse{
		StatusCode: httpResp.StatusCode,
		Header:     httpResp.Header.Clone(),
		Body:       body,
		Source:     "network",
	}
	if httpResp.StatusCode == http.StatusOK && !strings.Contains(httpResp.Header.Get("Cache-Control"), "no-store") {
		c.cache[cacheKey] = &cachedResponse{
			status: httpResp.StatusCode,
			header: httpResp.Header.Clone(),
			body:   append([]byte(nil), body...),
		}
	}
	return out, nil
}

// Clear drops all cached responses and maps.
func (c *Client) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maps = make(map[string]ETagMap)
	c.cache = make(map[string]*cachedResponse)
}

// resourceKey is the origin-relative key used both in the cache and in the
// server's map (path plus query).
func resourceKey(u *url.URL) string {
	p := u.EscapedPath()
	if p == "" {
		p = "/"
	}
	if u.RawQuery != "" {
		p += "?" + u.RawQuery
	}
	return p
}
