package catalyst

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"cachecatalyst/internal/cachestore"
	"cachecatalyst/internal/core"
	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/telemetry"
)

// ClientOptions tunes the client's resilience behaviour. The zero value
// preserves the historical semantics: no timeout, no retries, errors
// surface immediately.
type ClientOptions struct {
	// Timeout bounds one Get end to end — connection, all retry
	// attempts, backoff sleeps and body reads together. When the budget
	// expires the call returns promptly with a timeout error (or a stale
	// cached copy, when StaleIfError allows one). Zero means no timeout.
	Timeout time.Duration
	// MaxRetries is how many times a transient failure (transport error
	// or 5xx response) is re-attempted. Zero means a single attempt.
	MaxRetries int
	// BackoffBase is the first retry delay; attempt n waits
	// min(2ⁿ·BackoffBase, BackoffMax) plus deterministic jitter derived
	// from the URL, so a fleet of clients retrying the same origin does
	// not thunder in lockstep yet tests replay exactly. Zero selects
	// 50 ms.
	BackoffBase time.Duration
	// BackoffMax caps the exponential growth. Zero selects 2 s.
	BackoffMax time.Duration
	// StaleIfError serves a cached copy — flagged Source "stale" — when
	// the network fails (transport error, timeout, or 5xx after
	// retries) and an entry for the URL exists. The RFC 5861 trade:
	// possibly-outdated content beats an error page.
	StaleIfError bool
	// MaxCacheBytes bounds the response cache's body bytes; the active
	// cache policy chooses the victims. Zero means unbounded,
	// preserving the historical behaviour.
	MaxCacheBytes int64
	// CachePolicy selects the response cache's eviction/admission
	// policy. The zero value is exact global LRU; size-aware policies
	// (GDSF, TinyLFU admission) matter once MaxCacheBytes constrains a
	// mixed-size response population. The per-origin map store always
	// stays LRU — maps are uniform-cost and recency-driven.
	CachePolicy cachestore.Policy
	// Telemetry, when set, indexes the client's counters, its two cache
	// stores, and a per-Get latency histogram in the given registry under
	// "client.*". Snapshot() and the registry read the same storage.
	Telemetry *telemetry.Registry
}

func (o ClientOptions) backoffBase() time.Duration {
	if o.BackoffBase > 0 {
		return o.BackoffBase
	}
	return 50 * time.Millisecond
}

func (o ClientOptions) backoffMax() time.Duration {
	if o.BackoffMax > 0 {
		return o.BackoffMax
	}
	return 2 * time.Second
}

// Client is a CacheCatalyst-aware HTTP client for Go programs — the
// non-browser counterpart of the Service Worker. Crawlers, monitors and
// scrapers that revisit pages benefit the same way browsers do: after a
// page fetch delivers the X-Etag-Config map, any cached subresource whose
// entity tag matches is returned locally with zero network round trips,
// and anything else is fetched (conditionally when possible) and
// re-cached.
//
// Both the per-origin map store and the response cache sit on
// internal/cachestore's sharded LRU store, so a Client is safe for — and
// scales under — concurrent use.
type Client struct {
	// HTTP performs the actual requests; nil means http.DefaultClient.
	HTTP *http.Client

	opts ClientOptions

	maps  *cachestore.Store[ETagMap]         // per origin ("scheme://host")
	cache *cachestore.Store[*cachedResponse] // per absolute resource

	// Stats counters (read with Snapshot) — telemetry instruments, so a
	// registry passed in ClientOptions.Telemetry indexes this storage.
	localHits, networkFetches, revalidations  telemetry.Counter
	retries, timeouts, staleServes, netErrors telemetry.Counter
	getNS                                     *telemetry.Histogram // nil without telemetry
}

type cachedResponse struct {
	status int
	header http.Header
	body   []byte
}

// size is the entry's accounting size for the cache byte budget.
func (c *cachedResponse) size() int64 {
	n := int64(len(c.body))
	for k, vs := range c.header {
		n += int64(len(k))
		for _, v := range vs {
			n += int64(len(v))
		}
	}
	return n
}

// response builds a caller-owned copy of the entry.
func (c *cachedResponse) response(source string) *ClientResponse {
	return &ClientResponse{
		StatusCode: c.status,
		Header:     c.header.Clone(),
		Body:       append([]byte(nil), c.body...),
		Source:     source,
	}
}

// ClientResponse is a completed (possibly cache-served) exchange.
type ClientResponse struct {
	StatusCode int
	Header     http.Header
	Body       []byte
	// Source tells where the body came from: "network", "cache"
	// (zero round trips, proven current by the proactive map),
	// "revalidated" (a conditional request answered 304), or "stale"
	// (the network failed and StaleIfError served the cached copy).
	Source string
}

// ClientStats is a snapshot of client activity.
type ClientStats struct {
	LocalHits      int64 `json:"localHits"`
	NetworkFetches int64 `json:"networkFetches"`
	Revalidations  int64 `json:"revalidations"`
	// Retries counts re-attempts after transient failures.
	Retries int64 `json:"retries"`
	// Timeouts counts Gets that exhausted their time budget.
	Timeouts int64 `json:"timeouts"`
	// StaleServes counts responses served from cache under Source
	// "stale" because the network failed.
	StaleServes int64 `json:"staleServes"`
	// NetErrors counts Gets whose final attempt still failed (before
	// any stale fallback).
	NetErrors int64 `json:"netErrors"`
	// CacheEvictions counts cached responses evicted to respect
	// ClientOptions.MaxCacheBytes.
	CacheEvictions int64 `json:"cacheEvictions"`
}

// NewClient returns an empty-cache client over hc with zero-value options
// (no timeout, no retries).
func NewClient(hc *http.Client) *Client {
	return NewClientWithOptions(hc, ClientOptions{})
}

// NewClientWithOptions returns an empty-cache client over hc with the
// given resilience options.
func NewClientWithOptions(hc *http.Client, opts ClientOptions) *Client {
	c := &Client{
		HTTP: hc,
		opts: opts,
		maps: cachestore.New[ETagMap](cachestore.Options[ETagMap]{
			Shards:    4,
			Telemetry: opts.Telemetry,
			Name:      "client.maps",
		}),
		cache: cachestore.New[*cachedResponse](cachestore.Options[*cachedResponse]{
			MaxBytes:  opts.MaxCacheBytes,
			SizeOf:    func(_ string, r *cachedResponse) int64 { return r.size() },
			Policy:    opts.CachePolicy,
			Telemetry: opts.Telemetry,
			Name:      "client.cache",
		}),
	}
	if reg := opts.Telemetry; reg != nil {
		reg.RegisterCounter("client.local_hits", &c.localHits)
		reg.RegisterCounter("client.network_fetches", &c.networkFetches)
		reg.RegisterCounter("client.revalidations", &c.revalidations)
		reg.RegisterCounter("client.retries", &c.retries)
		reg.RegisterCounter("client.timeouts", &c.timeouts)
		reg.RegisterCounter("client.stale_serves", &c.staleServes)
		reg.RegisterCounter("client.net_errors", &c.netErrors)
		c.getNS = reg.Histogram("client.get_ns")
	}
	return c
}

// Telemetry returns the registry the client was wired into, or nil.
func (c *Client) Telemetry() *telemetry.Registry { return c.opts.Telemetry }

// Snapshot returns current counters.
func (c *Client) Snapshot() ClientStats {
	return ClientStats{
		LocalHits:      c.localHits.Load(),
		NetworkFetches: c.networkFetches.Load(),
		Revalidations:  c.revalidations.Load(),
		Retries:        c.retries.Load(),
		Timeouts:       c.timeouts.Load(),
		StaleServes:    c.staleServes.Load(),
		NetErrors:      c.netErrors.Load(),
		CacheEvictions: c.cache.Counters().Evictions,
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Get fetches rawURL with CacheCatalyst semantics. HTML responses refresh
// the origin's ETag map; subresources covered by a current map entry are
// served from the local cache without touching the network. Transient
// network failures are retried per ClientOptions, and — with StaleIfError —
// answered from cache with Source "stale" as a last resort.
func (c *Client) Get(rawURL string) (*ClientResponse, error) {
	return c.GetContext(context.Background(), rawURL)
}

// GetContext is Get with a caller context: cancellation bounds the whole
// exchange (ClientOptions.Timeout tightens it further, never loosens it),
// and a request trace carried by ctx receives the cache decision —
// "etag-match" for a map-proven local hit, "revalidate", "network",
// "stale-serve" — plus a "client.get" span.
func (c *Client) GetContext(ctx context.Context, rawURL string) (*ClientResponse, error) {
	if c.getNS != nil {
		start := time.Now()
		defer func() { c.getNS.Observe(time.Since(start).Nanoseconds()) }()
	}
	ctx, endSpan := telemetry.StartSpan(ctx, "client.get")
	defer endSpan()

	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("catalyst client: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("catalyst client: URL %q must be absolute", rawURL)
	}
	originKey := u.Scheme + "://" + u.Host
	cacheKey := originKey + resourceKey(u)

	// Serve locally when the proactive token proves the copy current.
	// Cached entries are shared between goroutines and never mutated;
	// response() hands the caller a private copy.
	var cachedTag string
	var revalidating *cachedResponse // pinned: survives mid-flight eviction
	m, _ := c.maps.Get(originKey)
	if cached, ok := c.cache.Get(cacheKey); ok {
		revalidating = cached
		cachedTag = cached.header.Get("Etag")
		if m != nil && cachedTag != "" {
			if tag, ok := etag.Parse(cachedTag); ok &&
				core.Decide(m, resourceKey(u), tag) == core.ServeFromCache {
				c.localHits.Add(1)
				telemetry.Event(ctx, "etag-match", rawURL)
				return cached.response("cache"), nil
			}
		}
	}

	if c.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Timeout)
		defer cancel()
	}

	if cachedTag != "" {
		telemetry.Event(ctx, "revalidate", rawURL)
	}
	httpResp, body, err := c.fetchWithRetries(ctx, rawURL, cachedTag)
	if err != nil {
		c.netErrors.Add(1)
		if ctx.Err() != nil {
			c.timeouts.Add(1)
		}
		if c.opts.StaleIfError {
			if cached, ok := c.cache.Get(cacheKey); ok {
				c.staleServes.Add(1)
				telemetry.Event(ctx, "stale-serve", rawURL)
				return cached.response("stale"), nil
			}
		}
		return nil, fmt.Errorf("catalyst client: %w", err)
	}

	c.networkFetches.Add(1)
	telemetry.Event(ctx, "network", rawURL)

	// HTML responses (and their 304s) carry a fresh map for the origin.
	if cfg := httpResp.Header.Get(HeaderName); cfg != "" {
		if newMap, err := core.DecodeMap(cfg); err == nil {
			c.maps.Put(originKey, newMap)
		}
	}

	if httpResp.StatusCode == http.StatusNotModified {
		// Prefer the live entry, but fall back to the one we validated
		// against: a bounded cache may have evicted it while the request
		// was in flight, and entries are immutable so the pinned copy is
		// still good.
		cached, ok := c.cache.Get(cacheKey)
		if !ok {
			cached, ok = revalidating, revalidating != nil
		}
		if ok {
			c.revalidations.Add(1)
			// Merge refreshed headers per RFC 9111 §4.3.4 — into a fresh
			// entry, never mutating the shared one in place.
			merged := cached.header.Clone()
			for k, vs := range httpResp.Header {
				if k == "Content-Length" {
					continue
				}
				merged[k] = append([]string(nil), vs...)
			}
			fresh := &cachedResponse{status: cached.status, header: merged, body: cached.body}
			c.cache.Put(cacheKey, fresh)
			return fresh.response("revalidated"), nil
		}
		// No pinned entry either (Clear raced the whole exchange):
		// surface the 304.
	}

	out := &ClientResponse{
		StatusCode: httpResp.StatusCode,
		Header:     httpResp.Header.Clone(),
		Body:       body,
		Source:     "network",
	}
	if httpResp.StatusCode == http.StatusOK && !strings.Contains(httpResp.Header.Get("Cache-Control"), "no-store") {
		c.cache.Put(cacheKey, &cachedResponse{
			status: httpResp.StatusCode,
			header: httpResp.Header.Clone(),
			body:   append([]byte(nil), body...),
		})
	}
	return out, nil
}

// fetchWithRetries performs the network exchange with capped exponential
// backoff. It retries transport errors and 5xx responses; anything else —
// including 4xx — is a definitive answer. The returned body is fully read
// and the response closed.
func (c *Client) fetchWithRetries(ctx context.Context, rawURL, cachedTag string) (*http.Response, []byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
		if err != nil {
			return nil, nil, err
		}
		if cachedTag != "" {
			req.Header.Set("If-None-Match", cachedTag)
		}
		httpResp, err := c.httpClient().Do(req)
		if err == nil {
			var body []byte
			body, err = io.ReadAll(httpResp.Body)
			httpResp.Body.Close()
			if err == nil {
				if httpResp.StatusCode < 500 {
					return httpResp, body, nil
				}
				err = fmt.Errorf("origin answered %d", httpResp.StatusCode)
			}
		}
		lastErr = err
		if attempt >= c.opts.MaxRetries || ctx.Err() != nil {
			return nil, nil, lastErr
		}
		c.retries.Add(1)
		if err := sleepCtx(ctx, c.backoff(rawURL, attempt)); err != nil {
			return nil, nil, lastErr
		}
	}
}

// backoff computes the delay before re-attempt number attempt:
// min(2ᵃᵗᵗᵉᵐᵖᵗ·base, max), plus up to 50 % deterministic jitter keyed on
// (URL, attempt) — spread between clients, reproducible within one.
func (c *Client) backoff(rawURL string, attempt int) time.Duration {
	d := c.opts.backoffBase() << uint(attempt)
	if maxd := c.opts.backoffMax(); d > maxd || d <= 0 {
		d = maxd
	}
	h := fnv.New64a()
	io.WriteString(h, rawURL)
	h.Write([]byte{byte(attempt)})
	jitter := time.Duration(h.Sum64() % uint64(d/2+1))
	return d/2 + jitter
}

// sleepCtx waits for d or the context's cancellation, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Clear drops all cached responses and maps.
func (c *Client) Clear() {
	c.maps.Clear()
	c.cache.Clear()
}

// resourceKey is the origin-relative key used both in the cache and in the
// server's map (path plus query).
func resourceKey(u *url.URL) string {
	p := u.EscapedPath()
	if p == "" {
		p = "/"
	}
	if u.RawQuery != "" {
		p += "?" + u.RawQuery
	}
	return p
}
