package catalyst

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"time"

	"cachecatalyst/internal/core"
	"cachecatalyst/internal/etag"
)

// MiddlewareOptions configures Middleware.
type MiddlewareOptions struct {
	// MaxMapEntries caps the X-Etag-Config size; 0 means unlimited.
	MaxMapEntries int
	// ProbeTTL bounds how long a subresource's probed ETag may be reused
	// before re-probing the inner handler. Zero selects 1 second — fresh
	// enough that a deployed map is never stale longer than that, cheap
	// enough that hot pages don't probe every sibling per request.
	ProbeTTL time.Duration
}

// Middleware retrofits CacheCatalyst onto any http.Handler:
//
//   - HTML responses are inspected (the paper's DOM traversal); each
//     same-origin subresource is probed against the inner handler to learn
//     its current ETag, and the resulting map ships in X-Etag-Config.
//   - The Service-Worker registration snippet is injected and the worker
//     script is served at WorkerPath.
//   - Conditional requests against the rewritten HTML are answered 304.
//
// Non-HTML responses pass through untouched, so the middleware composes
// with whatever caching headers the inner handler already emits.
func Middleware(next http.Handler, opts MiddlewareOptions) http.Handler {
	if opts.ProbeTTL <= 0 {
		opts.ProbeTTL = time.Second
	}
	m := &middleware{next: next, opts: opts, probes: make(map[string]probe)}
	return m
}

type middleware struct {
	next   http.Handler
	opts   MiddlewareOptions
	mu     sync.Mutex
	probes map[string]probe
}

type probe struct {
	tag     etag.Tag
	cssBody string
	isCSS   bool
	ok      bool
	expires time.Time
}

func (m *middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == WorkerPath && (r.Method == http.MethodGet || r.Method == http.MethodHead) {
		h := w.Header()
		h.Set("Content-Type", "text/javascript; charset=utf-8")
		h.Set("Cache-Control", "no-cache")
		h.Set("Etag", etag.ForBytes([]byte(WorkerScript)).String())
		_, _ = w.Write([]byte(WorkerScript))
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		m.next.ServeHTTP(w, r)
		return
	}

	rec := httptest.NewRecorder()
	m.next.ServeHTTP(rec, cloneWithoutConditionals(r))
	resp := rec.Result()
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html") {
		// Pass through verbatim, restoring the caller's conditional
		// semantics by replaying the inner handler with the original
		// request.
		rec2 := httptest.NewRecorder()
		m.next.ServeHTTP(rec2, r)
		copyResponse(w, rec2)
		return
	}

	body := rec.Body.String()
	etags := m.buildMap(r, body)
	injected := core.InjectRegistration(body)
	tag := etag.ForBytes([]byte(injected))

	h := w.Header()
	for k, vs := range resp.Header {
		if k == "Content-Length" || k == "Etag" {
			continue
		}
		h[k] = vs
	}
	h.Set(HeaderName, etags.Encode())
	h.Set("Etag", tag.String())

	if !etag.NoneMatch(r.Header.Get("If-None-Match"), tag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Length", strconv.Itoa(len(injected)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write([]byte(injected))
	}
}

// buildMap runs the core map builder with a resolver that probes the inner
// handler.
func (m *middleware) buildMap(r *http.Request, html string) ETagMap {
	res := &probeResolver{m: m, req: r}
	pageURL := r.URL.Path
	if r.URL.RawQuery != "" {
		pageURL += "?" + r.URL.RawQuery
	}
	return core.BuildMap(pageURL, html, res, core.BuildOptions{MaxEntries: m.opts.MaxMapEntries})
}

type probeResolver struct {
	m   *middleware
	req *http.Request
}

func (p *probeResolver) ETagFor(path string) (etag.Tag, bool) {
	pr := p.m.probe(path, p.req)
	return pr.tag, pr.ok
}

func (p *probeResolver) StylesheetBody(path string) (string, bool) {
	pr := p.m.probe(path, p.req)
	if !pr.ok || !pr.isCSS {
		return "", false
	}
	return pr.cssBody, true
}

// probe GETs path against the inner handler, caching the result briefly.
func (m *middleware) probe(path string, via *http.Request) probe {
	m.mu.Lock()
	if pr, ok := m.probes[path]; ok && time.Now().Before(pr.expires) {
		m.mu.Unlock()
		return pr
	}
	m.mu.Unlock()

	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.Host = via.Host
	rec := httptest.NewRecorder()
	m.next.ServeHTTP(rec, req)

	pr := probe{expires: time.Now().Add(m.opts.ProbeTTL)}
	if rec.Code == http.StatusOK {
		if t, ok := etag.Parse(rec.Header().Get("Etag")); ok {
			pr.tag = t
		} else {
			// The inner handler emits no validator; derive one the way
			// the modified Caddy derives tags from file contents.
			pr.tag = etag.ForBytes(rec.Body.Bytes())
		}
		pr.ok = true
		if strings.HasPrefix(rec.Header().Get("Content-Type"), "text/css") {
			pr.isCSS = true
			pr.cssBody = rec.Body.String()
		}
	}

	m.mu.Lock()
	m.probes[path] = pr
	m.mu.Unlock()
	return pr
}

// cloneWithoutConditionals strips validators so the inner handler returns
// the full entity (the middleware handles conditionals itself, against the
// rewritten body).
func cloneWithoutConditionals(r *http.Request) *http.Request {
	c := r.Clone(r.Context())
	c.Header.Del("If-None-Match")
	c.Header.Del("If-Modified-Since")
	return c
}

func copyResponse(w http.ResponseWriter, rec *httptest.ResponseRecorder) {
	h := w.Header()
	for k, vs := range rec.Header() {
		h[k] = vs
	}
	w.WriteHeader(rec.Code)
	_, _ = w.Write(rec.Body.Bytes())
}

var _ http.Handler = (*middleware)(nil)
