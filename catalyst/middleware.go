package catalyst

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"cachecatalyst/internal/cachestore"
	"cachecatalyst/internal/core"
	"cachecatalyst/internal/delta"
	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/resilience"
	"cachecatalyst/internal/telemetry"
	"cachecatalyst/internal/tenant"
)

// MiddlewareOptions configures Middleware.
type MiddlewareOptions struct {
	// MaxMapEntries caps the X-Etag-Config size; 0 means unlimited.
	MaxMapEntries int
	// MaxMapBytes caps the *encoded* X-Etag-Config value in bytes; maps
	// that encode larger have entries dropped (highest-sorting paths
	// first) until they fit, so one huge page cannot blow the response
	// head past proxy header limits. 0 means unlimited.
	MaxMapBytes int
	// ProbeTTL bounds how long a subresource's probed ETag may be reused
	// before re-probing the inner handler. Zero selects 1 second — fresh
	// enough that a deployed map is never stale longer than that, cheap
	// enough that hot pages don't probe every sibling per request.
	ProbeTTL time.Duration
	// BreakerThreshold is the number of consecutive failed probes after
	// which a path's circuit breaker opens: the path stops being probed
	// (and stays out of the map) until BreakerCooldown passes. Zero
	// selects 3; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker suppresses probes of
	// its path. Zero selects 30 seconds.
	BreakerCooldown time.Duration
	// MaxProbeEntries bounds the probe cache. On overflow the
	// least-recently-used probe is evicted — a crawler walking a million
	// distinct paths must not grow server memory without bound, and hot
	// paths must not be collateral damage. Zero selects 4096. Entries are
	// charged by real size (a cached stylesheet body costs its bytes, see
	// probeBaseCost), so a handful of huge stylesheets cannot smuggle
	// unbounded memory past an entry-count reading of this knob.
	MaxProbeEntries int
	// ProbeConcurrency bounds how many subresources of one page are
	// probed at once while its ETag map is resolved, so a cold page with
	// N subresources costs roughly its slowest probe rather than the sum.
	// Concurrent renders still probe each path once: the fan-out dedups
	// through the probe cache's singleflight. Zero selects 8 — probe cost
	// is dominated by the inner handler (I/O, locks), not CPU, so the
	// width deliberately does not track GOMAXPROCS; 1 restores strictly
	// sequential probing.
	ProbeConcurrency int
	// MaxRenderBytes bounds the rendered-page cache, which memoizes the
	// extracted reference list, injected body, and page validator per
	// (path, raw-content hash) so unchanged pages skip re-parsing and
	// re-hashing. Zero selects 16 MiB; negative disables the cache.
	// Freshness is unaffected either way — the X-Etag-Config header is
	// always assembled from live probes.
	MaxRenderBytes int64
	// CachePolicy selects the eviction/admission policy for all three of
	// the middleware's caches (probes, rendered pages, stale copies).
	// The zero value is exact global LRU — the safe default for the hot
	// request path. GDSF keeps small popular entries when probe or
	// render entries vary wildly in size; a TinyLFU admission filter
	// stops crawler-driven one-hit paths from flushing hot pages.
	CachePolicy cachestore.Policy
	// Metrics, when set, receives the middleware's resilience counters
	// (panics recovered, breaker trips, map trims, probe evictions).
	Metrics *MiddlewareMetrics
	// Telemetry, when set, indexes the middleware's counters, both its
	// caches, and an HTML decoration-latency histogram in the given
	// registry under "middleware.*".
	Telemetry *telemetry.Registry
	// MaxInflight bounds how many instrumented GET/HEAD requests may run
	// concurrently. Excess requests wait in a short queue (MaxQueue /
	// QueueTimeout) and are shed down the degradation ladder — stale
	// copy, un-instrumented passthrough, or 503 — instead of piling onto
	// a saturated inner handler. Zero disables admission control.
	MaxInflight int
	// MaxQueue bounds how many shed candidates may wait for a slot; zero
	// selects MaxInflight, negative disables queueing (immediate shed).
	MaxQueue int
	// QueueTimeout bounds how long a request waits for a slot before it
	// is shed. Zero selects 50ms — long enough to ride out a momentary
	// spike, short enough to keep tail latency honest.
	QueueTimeout time.Duration
	// RequestBudget, when positive, puts a wall-clock deadline on every
	// instrumented request. Stages consume from it — probe fan-out stops
	// issuing new probes once the budget is spent — and a request whose
	// budget runs out before map assembly is served its rendered HTML
	// un-instrumented rather than late.
	RequestBudget time.Duration
	// StaleFor is how long a successfully served page may be re-served
	// from the stale cache (with a Warning 110 header) when the inner
	// handler is saturated, erroring, or broken. Zero selects 5 minutes;
	// negative disables stale serving.
	StaleFor time.Duration
	// MaxStaleBytes bounds the stale cache. Zero selects 8 MiB.
	MaxStaleBytes int64
	// RetryAfter is the Retry-After hint on ladder-bottom 503 responses.
	// Zero selects 5 seconds.
	RetryAfter time.Duration
	// OriginFailureThreshold enables the inner-handler circuit breaker:
	// after this many consecutive 5xx/panic serves the middleware stops
	// calling the inner handler and answers from the stale cache (or
	// 503) until OriginCooldown passes, then retries with one trial
	// request. Zero disables the breaker — appropriate when the inner
	// handler is in-process; catalystd's proxy mode turns it on so a
	// flapping upstream origin flips to stale-serving instead of
	// error-proxying.
	OriginFailureThreshold int
	// OriginCooldown is the open-breaker hold-off. Zero selects 5s.
	OriginCooldown time.Duration
	// OriginBreaker, when set, is used as the inner-handler breaker
	// instead of constructing one from OriginFailureThreshold — the hook
	// for sharing the breaker with an active health checker
	// (resilience.NewHealthChecker), so recovery is probe-driven rather
	// than cooldown-driven. catalystd's proxy mode wires this.
	OriginBreaker *resilience.Breaker
	// ServerTiming mirrors each decorated response's cache decisions
	// ("map-built", "etag-match") into a Server-Timing header so clients
	// can annotate their traces with the origin middleware's view.
	ServerTiming bool
	// EarlyHints sends a 103 Early Hints informational response carrying
	// preload links for the page's subresources as soon as the HTML has
	// rendered — before the probe fan-out and map assembly, which are the
	// slow stages hints let the client overlap. Requires a ResponseWriter
	// that supports 1xx responses (net/http's does; a bare
	// httptest.ResponseRecorder does not — test through httptest.Server).
	EarlyHints bool
	// Exchange, when set, connects the middleware to a cluster hot-map
	// exchange (internal/cluster): freshly assembled X-Etag-Config
	// encodings are published to peers, and a peer-published encoding for
	// the exact entity being served is adopted instead of running the
	// local probe fan-out. Nil disables the exchange.
	Exchange MapExchange
	// Delta enables delta-encoded HTML: recently served page bodies are
	// retained keyed by their validator, and a request naming one in
	// X-Delta-Base is answered with a CCD1 patch (internal/delta) against
	// that base — marked X-Delta-From — whenever the patch is smaller
	// than the full body. The Etag is always the current entity's.
	Delta bool
	// MaxDeltaBytes bounds the retained-base cache behind Delta. Zero
	// selects 8 MiB.
	MaxDeltaBytes int64
}

func (o MiddlewareOptions) breakerThreshold() int {
	if o.BreakerThreshold < 0 {
		return 0 // disabled
	}
	if o.BreakerThreshold == 0 {
		return 3
	}
	return o.BreakerThreshold
}

func (o MiddlewareOptions) probeConcurrency() int {
	if o.ProbeConcurrency != 0 {
		return o.ProbeConcurrency
	}
	return 8
}

func (o MiddlewareOptions) staleFor() time.Duration {
	if o.StaleFor == 0 {
		return 5 * time.Minute
	}
	return o.StaleFor
}

func (o MiddlewareOptions) retryAfter() time.Duration {
	if o.RetryAfter <= 0 {
		return 5 * time.Second
	}
	return o.RetryAfter
}

// Middleware retrofits CacheCatalyst onto any http.Handler:
//
//   - HTML responses are inspected (the paper's DOM traversal); each
//     same-origin subresource is probed against the inner handler to learn
//     its current ETag, and the resulting map ships in X-Etag-Config.
//   - The Service-Worker registration snippet is injected and the worker
//     script is served at WorkerPath.
//   - Conditional requests against the rewritten HTML are answered 304.
//
// Non-HTML responses stream through untouched — the inner handler executes
// exactly once per request and its body is never buffered — so the
// middleware composes with whatever caching headers the inner handler
// already emits, at passthrough cost independent of body size.
//
// The middleware also hardens the wrapped handler: a panic in the inner
// handler is recovered and answered 500 (never a crashed connection), and
// subresource probing is protected by a per-path circuit breaker so a
// handler that errors on one path cannot be hammered by re-probes.
// Concurrent probes of the same path are collapsed into a single
// inner-handler call.
func Middleware(next http.Handler, opts MiddlewareOptions) http.Handler {
	if opts.ProbeTTL <= 0 {
		opts.ProbeTTL = time.Second
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 30 * time.Second
	}
	if opts.MaxProbeEntries <= 0 {
		opts.MaxProbeEntries = 4096
	}
	if opts.MaxRenderBytes == 0 {
		opts.MaxRenderBytes = 16 << 20
	}
	if opts.Metrics == nil {
		opts.Metrics = &MiddlewareMetrics{}
	}
	m := &middleware{next: next, opts: opts}
	if opts.Telemetry != nil {
		opts.Metrics.RegisterTelemetry(opts.Telemetry)
		m.htmlNS = opts.Telemetry.Histogram("middleware.html_ns")
	}
	d := &m.def
	d.staleTTL = opts.staleFor()
	d.requestBudget = opts.RequestBudget
	d.probes = cachestore.New[probe](cachestore.Options[probe]{
		// A probe without a retained stylesheet body costs exactly
		// probeBaseCost, so for ordinary entries MaxBytes stays the entry
		// count MaxProbeEntries promises; cached CSS bodies are charged
		// their real bytes on top, so large stylesheets consume
		// proportionally more of the same budget instead of hiding
		// behind a flat per-entry unit.
		MaxBytes: int64(opts.MaxProbeEntries) * probeBaseCost,
		SizeOf: func(_ string, p probe) int64 {
			return probeBaseCost + int64(len(p.cssBody))
		},
		Policy:    opts.CachePolicy,
		OnEvict:   func(string, probe) { opts.Metrics.ProbesSwept.Add(1) },
		Telemetry: opts.Telemetry,
		Name:      "middleware.probes",
	})
	if opts.MaxRenderBytes > 0 {
		d.renders = cachestore.New[*renderEntry](cachestore.Options[*renderEntry]{
			MaxBytes:  opts.MaxRenderBytes,
			SizeOf:    renderEntrySize,
			Policy:    opts.CachePolicy,
			OnEvict:   func(string, *renderEntry) { opts.Metrics.RendersEvicted.Add(1) },
			Telemetry: opts.Telemetry,
			Name:      "middleware.renders",
		})
		// The hot index rides in front of the render cache (hotRender), so
		// it exists exactly when the render cache does and shares its
		// budget scale: pinned raw bodies are a strict subset of what the
		// render cache is willing to spend on injected ones.
		d.hot = cachestore.New[*hotPage](cachestore.Options[*hotPage]{
			MaxBytes:  opts.MaxRenderBytes,
			SizeOf:    hotPageSize,
			Policy:    opts.CachePolicy,
			Telemetry: opts.Telemetry,
			Name:      "middleware.hot",
		})
	}
	if opts.StaleFor >= 0 {
		maxStale := opts.MaxStaleBytes
		if maxStale == 0 {
			maxStale = 8 << 20
		}
		d.stales = cachestore.New[*staleEntry](cachestore.Options[*staleEntry]{
			MaxBytes:  maxStale,
			SizeOf:    staleEntrySize,
			Policy:    opts.CachePolicy,
			Telemetry: opts.Telemetry,
			Name:      "middleware.stales",
		})
	}
	if opts.Delta {
		maxDelta := opts.MaxDeltaBytes
		if maxDelta == 0 {
			maxDelta = 8 << 20
		}
		d.deltaBases = cachestore.New[[]byte](cachestore.Options[[]byte]{
			MaxBytes:  maxDelta,
			SizeOf:    func(key string, body []byte) int64 { return int64(len(key) + len(body)) },
			Policy:    opts.CachePolicy,
			Telemetry: opts.Telemetry,
			Name:      "middleware.delta_bases",
		})
	}
	if opts.MaxInflight > 0 {
		d.gate = resilience.NewGate(resilience.GateOptions{
			MaxInflight:  opts.MaxInflight,
			MaxQueue:     opts.MaxQueue,
			QueueTimeout: opts.QueueTimeout,
			Telemetry:    opts.Telemetry,
			Name:         "middleware.gate",
		})
	}
	if opts.OriginBreaker != nil {
		d.breaker = opts.OriginBreaker
	} else if opts.OriginFailureThreshold > 0 {
		d.breaker = resilience.NewBreaker(resilience.BreakerOptions{
			FailureThreshold: opts.OriginFailureThreshold,
			Cooldown:         opts.OriginCooldown,
			Telemetry:        opts.Telemetry,
			Name:             "middleware.origin",
		})
	}
	return m
}

// probeBaseCost is the byte charge for one probe-cache entry before its
// retained stylesheet body: a rough stand-in for the key, tag, timestamps
// and map overhead an entry costs regardless of content.
const probeBaseCost = 256

type middleware struct {
	next   http.Handler
	opts   MiddlewareOptions
	htmlNS *telemetry.Histogram // nil without telemetry
	// def is the process-global serving state: the only state a
	// single-tenant deployment ever touches, and the parent every tenant's
	// namespaced state derives from. Requests whose context carries no
	// tenant run against def on the exact pre-tenant code path.
	def tenantState
	// tenants memoizes per-tenant serving state by tenant name, built
	// lazily on a tenant's first request (see stateFor).
	tenants sync.Map // string → *tenantState
}

// tenantState is one tenant's slice of the middleware: its caches (probe
// results, rendered pages, hot index, stale copies, delta bases — all
// namespaces of the default stores, so they inherit configuration but own
// their bytes and eviction order), its admission gate, its upstream
// breaker, and its probe generation. Dimensioning the state this way is
// what makes the degradation ladder per-tenant: one tenant's saturated or
// flapping upstream trips its own gate and breaker while its neighbours
// serve undisturbed.
type tenantState struct {
	name    string // "" for the default state
	probes  *cachestore.Store[probe]
	renders *cachestore.Store[*renderEntry] // nil when disabled
	// hot maps page URL → most recent (raw body, render) pair: the warm
	// fast lane's memcmp shortcut over renderKey's SHA-256 (see hotRender).
	// nil exactly when renders is.
	hot    *cachestore.Store[*hotPage]
	stales *cachestore.Store[*staleEntry] // last-known-good serves; nil when disabled
	// deltaBases retains recently served page bodies keyed by
	// pageURL + "\x00" + validator, the diff bases for Options.Delta;
	// nil when the feature is off.
	deltaBases *cachestore.Store[[]byte]
	gate       *resilience.Gate    // admission control; nil when disabled
	breaker    *resilience.Breaker // inner-handler health; nil when disabled
	// staleTTL and requestBudget are the resolved per-tenant knobs (the
	// tenant's own values, or the middleware defaults when unset).
	staleTTL      time.Duration
	requestBudget time.Duration
	// probeGen counts observable probe-cache changes: it bumps whenever a
	// probe flight lands a (tag, ok) pair that differs from what the
	// cache held before. While it stands still, every map assembled from
	// the cache is byte-identical, so renderEntry.enc may be reused
	// instead of re-serializing the map per request.
	probeGen atomic.Uint64
}

// stateFor resolves the serving state for a request: the tenant's when the
// context carries one, the default otherwise. The no-tenant path costs one
// context lookup and no allocation — the warm-path budgets pin that.
func (m *middleware) stateFor(r *http.Request) *tenantState {
	t, ok := tenant.FromContext(r.Context())
	if !ok {
		return &m.def
	}
	if v, ok := m.tenants.Load(t.Name); ok {
		return v.(*tenantState)
	}
	return m.buildTenantState(t)
}

// buildTenantState constructs (or loses the race for) a tenant's state.
// The caches are namespaces of the default stores — memoized by name in
// cachestore — so racing builders converge on the same storage; at worst a
// loser's gate and breaker are discarded.
func (m *middleware) buildTenantState(t *tenant.Tenant) *tenantState {
	prefix := "tenant." + t.Name + "."
	var policy *cachestore.Policy
	if t.Policy.Eviction != nil || t.Policy.Admission != nil {
		p := t.Policy
		policy = &p
	}
	ts := &tenantState{name: t.Name}
	ts.probes = m.def.probes.NamespaceWith(t.Name, cachestore.NamespaceOptions{
		TelemetryName: prefix + "probes",
		Policy:        policy,
	})
	if m.def.renders != nil {
		ts.renders = m.def.renders.NamespaceWith(t.Name, cachestore.NamespaceOptions{
			MaxBytes:      t.BudgetBytes,
			TelemetryName: prefix + "renders",
			Policy:        policy,
		})
		ts.hot = m.def.hot.NamespaceWith(t.Name, cachestore.NamespaceOptions{
			MaxBytes:      t.BudgetBytes,
			TelemetryName: prefix + "hot",
			Policy:        policy,
		})
	}
	// Stale copies and delta bases scale at half the tenant's budget: they
	// hold one body per page (no per-render variants), so half the render
	// budget covers the same page population.
	halfBudget := t.BudgetBytes / 2
	if t.BudgetBytes < 0 {
		halfBudget = -1
	}
	ts.staleTTL = m.def.staleTTL
	if t.StaleFor > 0 {
		ts.staleTTL = t.StaleFor
	}
	if m.def.stales != nil && t.StaleFor >= 0 {
		ts.stales = m.def.stales.NamespaceWith(t.Name, cachestore.NamespaceOptions{
			MaxBytes:      halfBudget,
			TelemetryName: prefix + "stales",
			Policy:        policy,
		})
	}
	if m.def.deltaBases != nil {
		ts.deltaBases = m.def.deltaBases.NamespaceWith(t.Name, cachestore.NamespaceOptions{
			MaxBytes:      halfBudget,
			TelemetryName: prefix + "delta_bases",
			Policy:        policy,
		})
	}
	maxInflight := t.MaxInflight
	if maxInflight == 0 {
		maxInflight = m.opts.MaxInflight
	}
	if maxInflight > 0 {
		ts.gate = resilience.NewGate(resilience.GateOptions{
			MaxInflight:  maxInflight,
			MaxQueue:     m.opts.MaxQueue,
			QueueTimeout: m.opts.QueueTimeout,
			Telemetry:    m.opts.Telemetry,
			Name:         prefix + "gate",
		})
	}
	if t.Breaker != nil {
		// The daemon wired a health-checked breaker: recovery is
		// probe-driven, exactly like OriginBreaker in single-tenant mode.
		ts.breaker = t.Breaker
	} else if m.opts.OriginFailureThreshold > 0 {
		ts.breaker = resilience.NewBreaker(resilience.BreakerOptions{
			FailureThreshold: m.opts.OriginFailureThreshold,
			Cooldown:         m.opts.OriginCooldown,
			Telemetry:        m.opts.Telemetry,
			Name:             prefix + "origin",
		})
	}
	ts.requestBudget = m.def.requestBudget
	if t.RequestBudget > 0 {
		ts.requestBudget = t.RequestBudget
	}
	v, _ := m.tenants.LoadOrStore(t.Name, ts)
	return v.(*tenantState)
}

type probe struct {
	tag     etag.Tag
	cssBody string
	isCSS   bool
	ok      bool
	expires time.Time
	// fails counts consecutive failed probes of this path; at the
	// breaker threshold the entry's expiry is pushed out to the cooldown.
	fails int
}

// workerScriptTag is the worker script's validator, hashed once at startup;
// the wire forms next to it are precomputed for the same reason the render
// entries precompute theirs — the worker script is requested by every
// first-visit client, and re-rendering constants per request is pure waste.
var (
	workerScriptTag   = etag.ForBytes([]byte(core.ServiceWorkerScript))
	workerScriptBytes = []byte(core.ServiceWorkerScript)
	workerEtagHeader  = []string{workerScriptTag.String()}
	workerCTypeHeader = []string{"text/javascript; charset=utf-8"}
	workerNoCacheHdr  = []string{"no-cache"}
)

// serveInner runs the inner handler, converting a panic into a recovered
// flag so one bad request handler can never take the whole server down.
func (m *middleware) serveInner(w http.ResponseWriter, r *http.Request) (panicked bool) {
	defer func() {
		if v := recover(); v != nil {
			m.opts.Metrics.PanicsRecovered.Add(1)
			panicked = true
		}
	}()
	m.next.ServeHTTP(w, r)
	return false
}

func (m *middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == WorkerPath && (r.Method == http.MethodGet || r.Method == http.MethodHead) {
		h := w.Header()
		h["Content-Type"] = workerCTypeHeader
		h["Cache-Control"] = workerNoCacheHdr
		h["Etag"] = workerEtagHeader
		if !etag.NoneMatch(r.Header.Get("If-None-Match"), workerScriptTag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if r.Method != http.MethodHead {
			_, _ = w.Write(workerScriptBytes)
		}
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		if m.serveInner(w, r) {
			http.Error(w, "internal error", http.StatusInternalServerError)
		}
		return
	}

	pageURL := requestPageURL(r)
	ts := m.stateFor(r)

	// Deadline budget: the whole instrumented serve — inner handler,
	// probe fan-out, map assembly — happens inside one wall-clock
	// allowance. Stages read the remainder off the context; the fan-out
	// stops issuing probes once it is spent.
	if ts.requestBudget > 0 {
		ctx, cancel := resilience.WithBudget(r.Context(), ts.requestBudget)
		defer cancel()
		r = r.WithContext(ctx)
	}

	// Admission control: only instrumented GET/HEAD traffic is gated —
	// it is the traffic with probe amplification (one page fanning out
	// to N subresource probes), which is what melts a saturated inner
	// handler. A refused request falls down the degradation ladder.
	if ts.gate != nil {
		if err := ts.gate.AcquireSlot(r.Context()); err != nil {
			m.shed(ts, w, r, pageURL, err)
			return
		}
		defer ts.gate.Release()
	}

	// Inner-handler circuit breaker: while open, don't error-proxy —
	// answer from the stale cache, or refuse honestly.
	if ts.breaker != nil && !ts.breaker.Allow() {
		if m.serveStale(ts, w, r, pageURL, "breaker-open") {
			return
		}
		m.serveReject(w, r, "breaker-open")
		return
	}

	// Single inner-handler execution through the sniffing writer: the
	// conditional headers are stripped so the handler produces the full
	// entity (the writer and the HTML path below re-apply them), and the
	// writer streams everything that is not a 200 HTML page. A 5xx is
	// held back when a stale substitute exists, so clients see the last
	// good copy instead of the error. The writer is pooled; nothing it
	// owns survives past the end of this function (see sniffPool).
	sw := newSniffWriter(w, r)
	defer sw.release()
	if ts.stales != nil {
		sw.staleOwner, sw.staleState, sw.stalePage = m, ts, pageURL
	}
	// Cloning the request exists only to strip conditionals; the common
	// unconditional request is served as-is (handlers must not mutate
	// their request, so sharing is safe).
	inner := r
	if r.Header["If-None-Match"] != nil || r.Header["If-Modified-Since"] != nil {
		inner = cloneWithoutConditionals(r)
	}
	panicked := m.serveInner(sw, inner)
	if ts.breaker != nil {
		ts.breaker.Record(!panicked && sw.status < http.StatusInternalServerError)
	}
	if panicked {
		if !sw.sentToDst {
			if m.serveStale(ts, w, r, pageURL, "panic") {
				return
			}
			http.Error(w, "internal error", http.StatusInternalServerError)
		}
		// Once bytes have streamed to the client the response cannot be
		// repaired; net/http closes the connection on the length
		// mismatch, which is exactly what a proxy would do.
		return
	}
	if sw.held {
		// The writer swallowed a 5xx because a stale copy existed when
		// the status committed. Serve it; if it expired in the race,
		// replay the error honestly.
		if m.serveStale(ts, w, r, pageURL, "origin-error") {
			return
		}
		copyHeader(w.Header(), sw.header)
		w.WriteHeader(sw.status)
		return
	}
	if !sw.committed {
		// The handler wrote nothing: commit an empty response, matching
		// net/http's implicit 200.
		sw.WriteHeader(http.StatusOK)
		return
	}
	if !sw.buffering {
		return // already streamed
	}

	// Budget check between stages: the page rendered, but there is no
	// time left to probe subresources and assemble the map. Serve the
	// HTML un-instrumented — late-but-plain beats later-and-decorated,
	// and the client simply falls back to ordinary caching.
	if b, ok := resilience.BudgetFrom(r.Context()); ok && b.Exhausted() {
		m.opts.Metrics.BudgetExhausted.Add(1)
		m.servePlain(w, r, sw)
		return
	}

	// The rendered-page cache keys on (page URL, raw body hash), so the
	// parse → extract → inject → hash pipeline runs once per distinct
	// content; probes stay per-request, so freshness is identical to
	// rebuilding from scratch. The histogram wraps the call rather than
	// deferring a closure — a closure per request is exactly the kind of
	// allocation this path exists to avoid.
	if m.htmlNS == nil {
		m.serveHTML(ts, w, r, sw, pageURL)
		return
	}
	htmlStart := time.Now()
	m.serveHTML(ts, w, r, sw, pageURL)
	m.htmlNS.Observe(time.Since(htmlStart).Nanoseconds())
}

// serveHTML decorates and delivers a buffered 200 HTML entity: render (via
// the warm fast lane), early hints, delta bases, map assembly or encoding
// reuse, conditional answer, body. On a fully-warm unchanged page — hot
// index hit, cached encoding still valid, no conditionals, no delta —
// this function acquires no mutex and allocates nothing: every header
// value it writes was precomputed when the render or encoding was cached.
func (m *middleware) serveHTML(ts *tenantState, w http.ResponseWriter, r *http.Request, sw *sniffWriter, pageURL string) {
	ctx, span := telemetry.BeginSpan(r.Context(), "middleware")
	defer span.End()
	ent := m.hotRender(ts, pageURL, sw.body())

	// Early hints go out the moment the reference list exists: the probe
	// fan-out below is the serve's slow stage, and the 103 lets the client
	// start subresource fetches while it runs.
	if m.opts.EarlyHints && m.emitEarlyHints(w, ent.refs) {
		m.opts.Metrics.HintsSent.Add(1)
		telemetry.Event(ctx, "hints", pageURL)
	}

	// Delta bases: every decorated serve retains its body under its
	// validator (the lock-free Get doubles as the LRU promotion that
	// keeps a hot base resident); a request naming a retained base gets
	// a patch below.
	var deltaBase []byte
	deltaFrom := ""
	if ts.deltaBases != nil {
		if _, ok := ts.deltaBases.Get(ent.deltaKey); !ok {
			ts.deltaBases.Put(ent.deltaKey, ent.injectedBytes)
		}
		if baseTag := r.Header.Get(delta.RequestHeader); baseTag != "" && baseTag != ent.tagStr {
			if base, okBase := ts.deltaBases.Get(pageURL + "\x00" + baseTag); okBase {
				deltaBase, deltaFrom = base, baseTag
			}
		}
	}

	h := w.Header()
	for k, vs := range sw.header {
		if k == "Content-Length" || k == "Etag" {
			continue
		}
		h[k] = vs
	}

	// Load the generation before resolving: probes that change state
	// during the resolve bump it, which both blocks reuse of a cached
	// encoding below and prevents this request from caching one.
	gen := ts.probeGen.Load()
	now := time.Now()
	var encoded string
	if e := ent.enc.Load(); e != nil && e.gen == gen && now.UnixNano() < e.expires {
		// Every probe the encoding depends on is unexpired and none has
		// changed since it was built, so resolving again would only
		// re-read the probe cache and re-serialize the identical map.
		encoded = e.enc
		h[HeaderName] = e.hdr
		m.opts.Metrics.EncodeReuses.Add(1)
	} else if peerEnc, peerExp, ok := m.exchangeLookup(ts, pageURL, ent, now); ok {
		// A cluster peer already rendered this exact entity and gossiped
		// its encoded map: adopt it instead of re-probing. The peer's
		// expiry bounds the trust window; the local generation stamp means
		// any local probe outcome still invalidates it immediately.
		encoded = peerEnc
		h.Set(HeaderName, encoded)
		ent.enc.Store(&encodedMap{gen: gen, expires: peerExp, enc: encoded, hdr: []string{encoded}})
		m.opts.Metrics.HotMapHits.Add(1)
		telemetry.Event(ctx, "hotmap-adopt", pageURL)
	} else {
		res := &probeResolver{m: m, ts: ts, req: r, ctx: ctx}
		etags := core.ResolveRefsContext(ctx, ent.refs, res, core.BuildOptions{
			MaxEntries:  m.opts.MaxMapEntries,
			Concurrency: m.opts.probeConcurrency(),
		})
		encoded = m.capMapBytes(etags).Encode()
		h.Set(HeaderName, encoded)
		// Never cache an encoding assembled under a cancelled request: a
		// client that disconnected mid-render stopped the probe fan-out,
		// so the map may be a prefix of the real one.
		if ctx.Err() == nil && ts.probeGen.Load() == gen {
			exp := res.minExpires.Load()
			if exp == 0 {
				// No probes ran (a page with no same-origin refs);
				// the empty map is still only trusted for one TTL.
				exp = now.Add(m.opts.ProbeTTL).UnixNano()
			}
			ent.enc.Store(&encodedMap{gen: gen, expires: exp, enc: encoded, hdr: []string{encoded}})
			if ex := m.opts.Exchange; ex != nil {
				// Gossip the fresh encoding so peers serving this page
				// skip their own probe fan-out entirely.
				ex.Publish(ts.name, pageURL, ent.tagStr, encoded, exp)
			}
		}
	}

	h["Etag"] = ent.etagHeader
	m.recordStale(ts, pageURL, ent, encoded, sw.header, now)
	telemetry.Event(ctx, "map-built", pageURL)
	if m.opts.ServerTiming {
		telemetry.AppendServerTiming(h, "map-built")
	}

	if !etag.NoneMatch(r.Header.Get("If-None-Match"), ent.tag) {
		telemetry.Event(ctx, "etag-match", pageURL)
		if m.opts.ServerTiming {
			telemetry.AppendServerTiming(h, "etag-match")
		}
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body := ent.injectedBytes
	clen := ent.clenHeader
	if deltaBase != nil {
		// A validator match above wins over a patch (the 304 transfers
		// nothing at all); here the entity changed, so diff lazily and
		// serve the patch only when it actually saves bytes.
		if patch := delta.Diff(deltaBase, body); len(patch) < len(body) {
			m.opts.Metrics.DeltasServed.Add(1)
			m.opts.Metrics.DeltaBytesSaved.Add(int64(len(body) - len(patch)))
			h.Set(delta.FromHeader, deltaFrom)
			telemetry.Event(ctx, "delta", pageURL)
			if m.opts.ServerTiming {
				telemetry.AppendServerTiming(h, "delta")
			}
			body = patch
			clen = nil
		}
	}
	if clen != nil {
		h["Content-Length"] = clen
	} else {
		h.Set("Content-Length", strconv.Itoa(len(body)))
	}
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write(body)
	}
}

// maxPreloadHints caps the Link headers one 103 carries; past a few dozen
// the hints themselves delay the HTML they are racing.
const maxPreloadHints = 32

// emitEarlyHints writes a 103 Early Hints response advertising refs as
// preload links. Reports whether hints were sent.
func (m *middleware) emitEarlyHints(w http.ResponseWriter, refs []core.Ref) bool {
	if len(refs) == 0 {
		return false
	}
	h := w.Header()
	n := 0
	for _, ref := range refs {
		if n == maxPreloadHints {
			break
		}
		as := "image"
		if ref.CSS {
			as = "style"
		}
		h.Add("Link", "<"+ref.Key+">; rel=preload; as="+as)
		n++
	}
	w.WriteHeader(http.StatusEarlyHints)
	return true
}

// requestPageURL is the origin-relative URL of the page being served, query
// included — the base both relative references and the render-cache key
// resolve against.
func requestPageURL(r *http.Request) string {
	if r.URL.RawQuery != "" {
		return r.URL.Path + "?" + r.URL.RawQuery
	}
	return r.URL.Path
}

// capMapBytes drops entries (highest-sorting paths first, the reverse of
// the canonical encode order) until the encoded map fits MaxMapBytes. The
// encoded size is tracked incrementally while dropping — each entry's wire
// cost is measured once — so trimming is O(n) in the map size rather than
// re-encoding the whole map per dropped entry.
func (m *middleware) capMapBytes(etags ETagMap) ETagMap {
	max := m.opts.MaxMapBytes
	if max <= 0 || len(etags) == 0 {
		return etags
	}
	paths := make([]string, 0, len(etags))
	for p := range etags {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	// Mirror ETagMap.Encode: '{' + comma-joined `"path":"tag"` + '}'.
	sizes := make([]int, len(paths))
	total := 2
	for i, p := range paths {
		sizes[i] = jsonStringLen(p) + 1 + jsonStringLen(etags[p].String())
		total += sizes[i]
	}
	if len(paths) > 1 {
		total += len(paths) - 1 // commas
	}
	for i := len(paths) - 1; i >= 0 && total > max; i-- {
		total -= sizes[i]
		if i > 0 {
			total-- // the comma that preceded this entry
		}
		delete(etags, paths[i])
		m.opts.Metrics.MapEntriesDropped.Add(1)
	}
	return etags
}

// jsonStringLen is the encoded length of s as a JSON string, quotes and
// escapes included — exactly len(json.Marshal(s)) without the allocation.
// It mirrors encoding/json's default (HTML-escaping) encoder: two-byte
// escapes for the common control characters and for quote/backslash,
// six-byte \u00xx escapes for the rest of the control range and for <, >, &,
// six-byte escapes for U+2028/U+2029, and a \ufffd escape per invalid byte.
// TestJSONStringLenMatchesMarshal cross-checks the mirror property.
func jsonStringLen(s string) int {
	n := 2 // surrounding quotes
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			switch {
			case b == '"' || b == '\\' || b == '\n' || b == '\r' || b == '\t' || b == '\b' || b == '\f':
				n += 2
			case b < 0x20 || b == '<' || b == '>' || b == '&':
				n += 6
			default:
				n++
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case r == utf8.RuneError && size == 1:
			n += 6 // each invalid byte becomes the six-byte escape \ufffd
		case r == 0x2028 || r == 0x2029:
			n += 6 // \u2028 and \u2029 are escaped for JS embedding
		default:
			n += size
		}
		i += size
	}
	return n
}

type probeResolver struct {
	m   *middleware
	ts  *tenantState
	req *http.Request
	// ctx carries the request trace probe decisions are recorded on.
	ctx context.Context
	// minExpires tracks the earliest expiry (unix nanoseconds) among the
	// probes this resolve consulted — the moment the assembled map stops
	// being trustworthy without a re-probe. Updated from fan-out workers,
	// hence atomic; 0 means no probe ran.
	minExpires atomic.Int64
}

func (p *probeResolver) observe(pr probe) {
	n := pr.expires.UnixNano()
	for {
		cur := p.minExpires.Load()
		if cur != 0 && cur <= n {
			return
		}
		if p.minExpires.CompareAndSwap(cur, n) {
			return
		}
	}
}

func (p *probeResolver) ETagFor(path string) (etag.Tag, bool) {
	pr := p.m.probe(p.ts, path, p.req, p.ctx)
	p.observe(pr)
	return pr.tag, pr.ok
}

func (p *probeResolver) StylesheetBody(path string) (string, bool) {
	pr := p.m.probe(p.ts, path, p.req, p.ctx)
	p.observe(pr)
	if !pr.ok || !pr.isCSS {
		return "", false
	}
	return pr.cssBody, true
}

// probe returns the cached probe result for path, or GETs path against the
// inner handler. Concurrent probes of the same expired path are collapsed
// by singleflight into one inner-handler call — under a thundering herd of
// page renders each subresource is probed once, not once per render.
// Failed probes trip a per-path circuit breaker: after breakerThreshold
// consecutive failures the path is left alone (and out of the map) for
// BreakerCooldown, so an inner handler erroring on one path is not hammered
// on every page render.
func (m *middleware) probe(ts *tenantState, path string, via *http.Request, ctx context.Context) probe {
	if pr, ok := ts.probes.Get(path); ok && time.Now().Before(pr.expires) {
		return pr
	}
	telemetry.Event(ctx, "probe", path)
	pr, _, _ := ts.probes.Do(path, func() (probe, error) {
		// Re-check inside the flight: the flight we queued behind may
		// have refreshed the entry already.
		prev, had := ts.probes.Peek(path)
		if had && time.Now().Before(prev.expires) {
			return prev, nil
		}

		req := httptest.NewRequest(http.MethodGet, path, nil)
		req.Host = via.Host
		// Probe requests carry the serving request's tenant so a
		// tenant-routing inner handler (catalystd's multi-origin proxy)
		// probes the right upstream, not the default one.
		if t, ok := tenant.FromContext(via.Context()); ok {
			req = req.WithContext(tenant.NewContext(req.Context(), t))
		}
		rec := httptest.NewRecorder()
		panicked := m.serveInner(rec, req)

		pr := probe{expires: time.Now().Add(m.opts.ProbeTTL)}
		if !panicked && rec.Code == http.StatusOK {
			if t, ok := etag.Parse(rec.Header().Get("Etag")); ok {
				pr.tag = t
			} else {
				// The inner handler emits no validator; derive one the
				// way the modified Caddy derives tags from file contents.
				pr.tag = etag.ForBytes(rec.Body.Bytes())
			}
			pr.ok = true
			if strings.HasPrefix(rec.Header().Get("Content-Type"), "text/css") {
				pr.isCSS = true
				pr.cssBody = rec.Body.String()
			}
		} else if threshold := m.opts.breakerThreshold(); threshold > 0 {
			if had {
				pr.fails = prev.fails + 1
			} else {
				pr.fails = 1
			}
			if pr.fails >= threshold {
				pr.expires = time.Now().Add(m.opts.BreakerCooldown)
				m.opts.Metrics.BreakerTrips.Add(1)
				telemetry.Event(ctx, "breaker-open", path)
			}
		}
		// An observable change — a tag flip, a path appearing, a path
		// going bad — invalidates every cached map serialization. Bumping
		// after the Put means a request racing this flight can cache an
		// encoding that is stale for at most one flight; the next request
		// sees the new generation and rebuilds, well inside the freshness
		// window ProbeTTL already grants.
		changed := !had || prev.tag != pr.tag || prev.ok != pr.ok
		ts.probes.Put(path, pr)
		if changed {
			ts.probeGen.Add(1)
		}
		return pr, nil
	})
	return pr
}

// cloneWithoutConditionals strips validators so the inner handler returns
// the full entity (the middleware handles conditionals itself: against the
// rewritten body for HTML, via the sniffing writer for everything else).
func cloneWithoutConditionals(r *http.Request) *http.Request {
	c := r.Clone(r.Context())
	c.Header.Del("If-None-Match")
	c.Header.Del("If-Modified-Since")
	return c
}

var _ http.Handler = (*middleware)(nil)
