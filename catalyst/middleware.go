package catalyst

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"time"

	"cachecatalyst/internal/cachestore"
	"cachecatalyst/internal/core"
	"cachecatalyst/internal/etag"
)

// MiddlewareOptions configures Middleware.
type MiddlewareOptions struct {
	// MaxMapEntries caps the X-Etag-Config size; 0 means unlimited.
	MaxMapEntries int
	// MaxMapBytes caps the *encoded* X-Etag-Config value in bytes; maps
	// that encode larger have entries dropped (highest-sorting paths
	// first) until they fit, so one huge page cannot blow the response
	// head past proxy header limits. 0 means unlimited.
	MaxMapBytes int
	// ProbeTTL bounds how long a subresource's probed ETag may be reused
	// before re-probing the inner handler. Zero selects 1 second — fresh
	// enough that a deployed map is never stale longer than that, cheap
	// enough that hot pages don't probe every sibling per request.
	ProbeTTL time.Duration
	// BreakerThreshold is the number of consecutive failed probes after
	// which a path's circuit breaker opens: the path stops being probed
	// (and stays out of the map) until BreakerCooldown passes. Zero
	// selects 3; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker suppresses probes of
	// its path. Zero selects 30 seconds.
	BreakerCooldown time.Duration
	// MaxProbeEntries bounds the probe cache. On overflow the
	// least-recently-used probe is evicted — a crawler walking a million
	// distinct paths must not grow server memory without bound, and hot
	// paths must not be collateral damage. Zero selects 4096.
	MaxProbeEntries int
	// Metrics, when set, receives the middleware's resilience counters
	// (panics recovered, breaker trips, map trims, probe evictions).
	Metrics *MiddlewareMetrics
}

func (o MiddlewareOptions) breakerThreshold() int {
	if o.BreakerThreshold < 0 {
		return 0 // disabled
	}
	if o.BreakerThreshold == 0 {
		return 3
	}
	return o.BreakerThreshold
}

// Middleware retrofits CacheCatalyst onto any http.Handler:
//
//   - HTML responses are inspected (the paper's DOM traversal); each
//     same-origin subresource is probed against the inner handler to learn
//     its current ETag, and the resulting map ships in X-Etag-Config.
//   - The Service-Worker registration snippet is injected and the worker
//     script is served at WorkerPath.
//   - Conditional requests against the rewritten HTML are answered 304.
//
// Non-HTML responses stream through untouched — the inner handler executes
// exactly once per request and its body is never buffered — so the
// middleware composes with whatever caching headers the inner handler
// already emits, at passthrough cost independent of body size.
//
// The middleware also hardens the wrapped handler: a panic in the inner
// handler is recovered and answered 500 (never a crashed connection), and
// subresource probing is protected by a per-path circuit breaker so a
// handler that errors on one path cannot be hammered by re-probes.
// Concurrent probes of the same path are collapsed into a single
// inner-handler call.
func Middleware(next http.Handler, opts MiddlewareOptions) http.Handler {
	if opts.ProbeTTL <= 0 {
		opts.ProbeTTL = time.Second
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 30 * time.Second
	}
	if opts.MaxProbeEntries <= 0 {
		opts.MaxProbeEntries = 4096
	}
	if opts.Metrics == nil {
		opts.Metrics = &MiddlewareMetrics{}
	}
	m := &middleware{next: next, opts: opts}
	m.probes = cachestore.New[probe](cachestore.Options[probe]{
		// SizeOf defaults to 1 per entry, so MaxBytes is an entry count.
		MaxBytes: int64(opts.MaxProbeEntries),
		OnEvict:  func(string, probe) { opts.Metrics.ProbesSwept.Add(1) },
	})
	return m
}

type middleware struct {
	next   http.Handler
	opts   MiddlewareOptions
	probes *cachestore.Store[probe]
}

type probe struct {
	tag     etag.Tag
	cssBody string
	isCSS   bool
	ok      bool
	expires time.Time
	// fails counts consecutive failed probes of this path; at the
	// breaker threshold the entry's expiry is pushed out to the cooldown.
	fails int
}

// workerScriptTag is the worker script's validator, hashed once at startup.
var workerScriptTag = etag.ForBytes([]byte(core.ServiceWorkerScript))

// serveInner runs the inner handler, converting a panic into a recovered
// flag so one bad request handler can never take the whole server down.
func (m *middleware) serveInner(w http.ResponseWriter, r *http.Request) (panicked bool) {
	defer func() {
		if v := recover(); v != nil {
			m.opts.Metrics.PanicsRecovered.Add(1)
			panicked = true
		}
	}()
	m.next.ServeHTTP(w, r)
	return false
}

func (m *middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == WorkerPath && (r.Method == http.MethodGet || r.Method == http.MethodHead) {
		h := w.Header()
		h.Set("Content-Type", "text/javascript; charset=utf-8")
		h.Set("Cache-Control", "no-cache")
		h.Set("Etag", workerScriptTag.String())
		if !etag.NoneMatch(r.Header.Get("If-None-Match"), workerScriptTag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if r.Method != http.MethodHead {
			_, _ = w.Write([]byte(WorkerScript))
		}
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		if m.serveInner(w, r) {
			http.Error(w, "internal error", http.StatusInternalServerError)
		}
		return
	}

	// Single inner-handler execution through the sniffing writer: the
	// conditional headers are stripped so the handler produces the full
	// entity (the writer and the HTML path below re-apply them), and the
	// writer streams everything that is not a 200 HTML page.
	sw := newSniffWriter(w, r)
	if m.serveInner(sw, cloneWithoutConditionals(r)) {
		if !sw.sentToDst {
			http.Error(w, "internal error", http.StatusInternalServerError)
		}
		// Once bytes have streamed to the client the response cannot be
		// repaired; net/http closes the connection on the length
		// mismatch, which is exactly what a proxy would do.
		return
	}
	if !sw.committed {
		// The handler wrote nothing: commit an empty response, matching
		// net/http's implicit 200.
		sw.WriteHeader(http.StatusOK)
		return
	}
	if !sw.buffering {
		return // already streamed
	}

	body := sw.buf.String()
	etags := m.buildMap(r, body)
	injected := core.InjectRegistration(body)
	tag := etag.ForBytes([]byte(injected))

	h := w.Header()
	for k, vs := range sw.header {
		if k == "Content-Length" || k == "Etag" {
			continue
		}
		h[k] = vs
	}
	h.Set(HeaderName, etags.Encode())
	h.Set("Etag", tag.String())

	if !etag.NoneMatch(r.Header.Get("If-None-Match"), tag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Length", strconv.Itoa(len(injected)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write([]byte(injected))
	}
}

// buildMap runs the core map builder with a resolver that probes the inner
// handler, then enforces the encoded-size cap.
func (m *middleware) buildMap(r *http.Request, html string) ETagMap {
	res := &probeResolver{m: m, req: r}
	pageURL := r.URL.Path
	if r.URL.RawQuery != "" {
		pageURL += "?" + r.URL.RawQuery
	}
	etags := core.BuildMap(pageURL, html, res, core.BuildOptions{MaxEntries: m.opts.MaxMapEntries})
	return m.capMapBytes(etags)
}

// capMapBytes drops entries (highest-sorting paths first, the reverse of
// the canonical encode order) until the encoded map fits MaxMapBytes. The
// encoded size is tracked incrementally while dropping — each entry's wire
// cost is measured once — so trimming is O(n) in the map size rather than
// re-encoding the whole map per dropped entry.
func (m *middleware) capMapBytes(etags ETagMap) ETagMap {
	max := m.opts.MaxMapBytes
	if max <= 0 || len(etags) == 0 {
		return etags
	}
	paths := make([]string, 0, len(etags))
	for p := range etags {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	// Mirror ETagMap.Encode: '{' + comma-joined `"path":"tag"` + '}'.
	sizes := make([]int, len(paths))
	total := 2
	for i, p := range paths {
		sizes[i] = jsonStringLen(p) + 1 + jsonStringLen(etags[p].String())
		total += sizes[i]
	}
	if len(paths) > 1 {
		total += len(paths) - 1 // commas
	}
	for i := len(paths) - 1; i >= 0 && total > max; i-- {
		total -= sizes[i]
		if i > 0 {
			total-- // the comma that preceded this entry
		}
		delete(etags, paths[i])
		m.opts.Metrics.MapEntriesDropped.Add(1)
	}
	return etags
}

// jsonStringLen is the encoded length of s as a JSON string, quotes and
// escapes included.
func jsonStringLen(s string) int {
	enc, _ := json.Marshal(s) // strings always marshal
	return len(enc)
}

type probeResolver struct {
	m   *middleware
	req *http.Request
}

func (p *probeResolver) ETagFor(path string) (etag.Tag, bool) {
	pr := p.m.probe(path, p.req)
	return pr.tag, pr.ok
}

func (p *probeResolver) StylesheetBody(path string) (string, bool) {
	pr := p.m.probe(path, p.req)
	if !pr.ok || !pr.isCSS {
		return "", false
	}
	return pr.cssBody, true
}

// probe returns the cached probe result for path, or GETs path against the
// inner handler. Concurrent probes of the same expired path are collapsed
// by singleflight into one inner-handler call — under a thundering herd of
// page renders each subresource is probed once, not once per render.
// Failed probes trip a per-path circuit breaker: after breakerThreshold
// consecutive failures the path is left alone (and out of the map) for
// BreakerCooldown, so an inner handler erroring on one path is not hammered
// on every page render.
func (m *middleware) probe(path string, via *http.Request) probe {
	if pr, ok := m.probes.Get(path); ok && time.Now().Before(pr.expires) {
		return pr
	}
	pr, _, _ := m.probes.Do(path, func() (probe, error) {
		// Re-check inside the flight: the flight we queued behind may
		// have refreshed the entry already.
		prev, had := m.probes.Peek(path)
		if had && time.Now().Before(prev.expires) {
			return prev, nil
		}

		req := httptest.NewRequest(http.MethodGet, path, nil)
		req.Host = via.Host
		rec := httptest.NewRecorder()
		panicked := m.serveInner(rec, req)

		pr := probe{expires: time.Now().Add(m.opts.ProbeTTL)}
		if !panicked && rec.Code == http.StatusOK {
			if t, ok := etag.Parse(rec.Header().Get("Etag")); ok {
				pr.tag = t
			} else {
				// The inner handler emits no validator; derive one the
				// way the modified Caddy derives tags from file contents.
				pr.tag = etag.ForBytes(rec.Body.Bytes())
			}
			pr.ok = true
			if strings.HasPrefix(rec.Header().Get("Content-Type"), "text/css") {
				pr.isCSS = true
				pr.cssBody = rec.Body.String()
			}
		} else if threshold := m.opts.breakerThreshold(); threshold > 0 {
			if had {
				pr.fails = prev.fails + 1
			} else {
				pr.fails = 1
			}
			if pr.fails >= threshold {
				pr.expires = time.Now().Add(m.opts.BreakerCooldown)
				m.opts.Metrics.BreakerTrips.Add(1)
			}
		}
		m.probes.Put(path, pr)
		return pr, nil
	})
	return pr
}

// cloneWithoutConditionals strips validators so the inner handler returns
// the full entity (the middleware handles conditionals itself: against the
// rewritten body for HTML, via the sniffing writer for everything else).
func cloneWithoutConditionals(r *http.Request) *http.Request {
	c := r.Clone(r.Context())
	c.Header.Del("If-None-Match")
	c.Header.Del("If-Modified-Since")
	return c
}

var _ http.Handler = (*middleware)(nil)
