package catalyst

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachecatalyst/internal/leakcheck"
	"cachecatalyst/internal/telemetry"
)

// flakySite is an inner handler whose page path can be flipped between
// healthy HTML, 500s, panics, and blocking — the failure injector the
// ladder tests drive. Subresources always serve, so probing works while
// the page itself misbehaves.
type flakySite struct {
	mode    atomic.Value  // "ok" | "err" | "panic"
	calls   atomic.Int64  // page serves attempted (any mode)
	block   atomic.Value  // chan struct{}: when set, /page serves block on it
	delayNS atomic.Int64  // when set, /page serves sleep this long
	entered chan struct{} // receives one token per blocked /page serve
}

const flakyPage = `<html><head><link rel="stylesheet" href="/style.css"></head><body>page</body></html>`

func newFlakySite() *flakySite {
	f := &flakySite{entered: make(chan struct{}, 64)}
	f.mode.Store("ok")
	return f
}

func (f *flakySite) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/style.css":
		w.Header().Set("Content-Type", "text/css")
		fmt.Fprint(w, "body{}")
		return
	case "/page", "/other":
		f.calls.Add(1)
		switch f.mode.Load().(string) {
		case "err":
			http.Error(w, "origin exploded", http.StatusInternalServerError)
			return
		case "panic":
			panic("origin panicked")
		}
		// Only /page blocks or dawdles, so a test can saturate the gate
		// with /page while /other stays responsive for passthrough.
		if r.URL.Path == "/page" {
			if ch, _ := f.block.Load().(chan struct{}); ch != nil {
				f.entered <- struct{}{}
				<-ch
			}
			if d := f.delayNS.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, flakyPage)
		return
	}
	http.NotFound(w, r)
}

// get runs one request and returns the recorder.
func get(h http.Handler, path string, hdr ...string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// prime serves /page once successfully so a stale copy exists.
func prime(t *testing.T, h http.Handler) *httptest.ResponseRecorder {
	t.Helper()
	rec := get(h, "/page")
	if rec.Code != 200 || rec.Header().Get(HeaderName) == "" {
		t.Fatalf("prime: status=%d map=%q", rec.Code, rec.Header().Get(HeaderName))
	}
	return rec
}

// TestLadderRungs pins each degradation rung's wire contract and its
// counter: exactly one rung per degraded response.
func TestLadderRungs(t *testing.T) {
	t.Run("stale on origin error", func(t *testing.T) {
		site := newFlakySite()
		metrics := &MiddlewareMetrics{}
		h := Middleware(site, MiddlewareOptions{Metrics: metrics})
		fresh := prime(t, h)

		site.mode.Store("err")
		rec := get(h, "/page")
		if rec.Code != 200 {
			t.Fatalf("status = %d, want stale 200", rec.Code)
		}
		if w := rec.Header().Get("Warning"); !strings.Contains(w, "110") {
			t.Fatalf("Warning = %q, want 110", w)
		}
		if rec.Header().Get(HeaderName) == "" {
			t.Fatal("stale response lost the map")
		}
		if got, want := rec.Header().Get("Etag"), fresh.Header().Get("Etag"); got != want {
			t.Fatalf("stale Etag = %q, want the last good %q", got, want)
		}
		if rec.Body.String() != fresh.Body.String() {
			t.Fatal("stale body differs from the last good serve")
		}
		if metrics.LadderStale.Load() != 1 {
			t.Fatalf("LadderStale = %d", metrics.LadderStale.Load())
		}

		// A conditional against the stale validator still short-circuits.
		rec304 := get(h, "/page", "If-None-Match", fresh.Header().Get("Etag"))
		if rec304.Code != http.StatusNotModified {
			t.Fatalf("conditional against stale: %d", rec304.Code)
		}
		if metrics.LadderStale.Load() != 2 {
			t.Fatalf("LadderStale after 304 = %d", metrics.LadderStale.Load())
		}
	})

	t.Run("stale on panic", func(t *testing.T) {
		site := newFlakySite()
		metrics := &MiddlewareMetrics{}
		h := Middleware(site, MiddlewareOptions{Metrics: metrics})
		prime(t, h)

		site.mode.Store("panic")
		rec := get(h, "/page")
		if rec.Code != 200 || !strings.Contains(rec.Header().Get("Warning"), "110") {
			t.Fatalf("panic with stale available: status=%d warning=%q", rec.Code, rec.Header().Get("Warning"))
		}
		if metrics.PanicsRecovered.Load() != 1 || metrics.LadderStale.Load() != 1 {
			t.Fatalf("panics=%d stale=%d", metrics.PanicsRecovered.Load(), metrics.LadderStale.Load())
		}
	})

	t.Run("passthrough on queue timeout", func(t *testing.T) {
		site := newFlakySite()
		metrics := &MiddlewareMetrics{}
		h := Middleware(site, MiddlewareOptions{
			Metrics:      metrics,
			MaxInflight:  1,
			MaxQueue:     4,
			QueueTimeout: 5 * time.Millisecond,
		})
		// Occupy the only slot with a request blocked inside the handler.
		blockCh := make(chan struct{})
		site.block.Store(blockCh)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); get(h, "/page") }()
		<-site.entered

		// No stale copy exists for /other, so the shed request times out
		// of the queue and falls to the passthrough rung: raw HTML, no
		// map, no snippet.
		rec := get(h, "/other")
		if rec.Code != 200 {
			t.Fatalf("passthrough status = %d", rec.Code)
		}
		if rec.Header().Get(HeaderName) != "" {
			t.Fatal("passthrough response carries a map")
		}
		if strings.Contains(rec.Body.String(), RegistrationSnippet) {
			t.Fatal("passthrough response got the snippet injected")
		}
		if metrics.LadderPassthrough.Load() != 1 {
			t.Fatalf("LadderPassthrough = %d", metrics.LadderPassthrough.Load())
		}

		close(blockCh)
		site.block.Store((chan struct{})(nil))
		wg.Wait()
	})

	t.Run("503 on full queue", func(t *testing.T) {
		site := newFlakySite()
		metrics := &MiddlewareMetrics{}
		h := Middleware(site, MiddlewareOptions{
			Metrics:     metrics,
			MaxInflight: 1,
			MaxQueue:    -1, // no queue: immediate shed
			RetryAfter:  7 * time.Second,
		})
		blockCh := make(chan struct{})
		site.block.Store(blockCh)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); get(h, "/page") }()
		<-site.entered

		rec := get(h, "/other")
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("reject status = %d", rec.Code)
		}
		if rec.Header().Get("Retry-After") != "7" {
			t.Fatalf("Retry-After = %q", rec.Header().Get("Retry-After"))
		}
		if metrics.LadderRejected.Load() != 1 {
			t.Fatalf("LadderRejected = %d", metrics.LadderRejected.Load())
		}

		close(blockCh)
		site.block.Store((chan struct{})(nil))
		wg.Wait()
	})

	t.Run("shed prefers stale over passthrough", func(t *testing.T) {
		site := newFlakySite()
		metrics := &MiddlewareMetrics{}
		h := Middleware(site, MiddlewareOptions{
			Metrics:     metrics,
			MaxInflight: 1,
			MaxQueue:    -1,
		})
		prime(t, h)

		blockCh := make(chan struct{})
		site.block.Store(blockCh)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); get(h, "/page") }()
		<-site.entered

		rec := get(h, "/page")
		if rec.Code != 200 || !strings.Contains(rec.Header().Get("Warning"), "110") {
			t.Fatalf("shed with stale: status=%d warning=%q", rec.Code, rec.Header().Get("Warning"))
		}
		if metrics.LadderStale.Load() != 1 || metrics.LadderRejected.Load() != 0 {
			t.Fatalf("stale=%d rejected=%d", metrics.LadderStale.Load(), metrics.LadderRejected.Load())
		}

		close(blockCh)
		site.block.Store((chan struct{})(nil))
		wg.Wait()
	})
}

// TestLadderErrorWithoutStaleIsHonest pins that the ladder never invents
// content: with no stale copy, an origin error still reaches the client.
func TestLadderErrorWithoutStaleIsHonest(t *testing.T) {
	site := newFlakySite()
	site.mode.Store("err")
	h := Middleware(site, MiddlewareOptions{})
	if rec := get(h, "/page"); rec.Code != http.StatusInternalServerError {
		t.Fatalf("error without stale: %d, want 500", rec.Code)
	}
}

// TestBreakerFlipsToStaleServing is the flapping-origin cell: after the
// failure threshold, the middleware stops calling the inner handler
// entirely and serves stale, then recovers through a half-open trial.
func TestBreakerFlipsToStaleServing(t *testing.T) {
	site := newFlakySite()
	metrics := &MiddlewareMetrics{}
	reg := telemetry.NewRegistry()
	h := Middleware(site, MiddlewareOptions{
		Metrics:                metrics,
		Telemetry:              reg,
		OriginFailureThreshold: 2,
		OriginCooldown:         time.Hour, // no recovery inside this test
	})
	prime(t, h)

	site.mode.Store("err")
	for i := 0; i < 2; i++ {
		if rec := get(h, "/page"); rec.Code != 200 {
			t.Fatalf("serve %d during flap: %d", i, rec.Code)
		}
	}
	callsWhenOpen := site.calls.Load()

	// Breaker is open now: the inner handler is left alone.
	for i := 0; i < 3; i++ {
		rec := get(h, "/page")
		if rec.Code != 200 || !strings.Contains(rec.Header().Get("Warning"), "110") {
			t.Fatalf("open-breaker serve %d: status=%d warning=%q", i, rec.Code, rec.Header().Get("Warning"))
		}
	}
	if got := site.calls.Load(); got != callsWhenOpen {
		t.Fatalf("open breaker still called the inner handler: %d -> %d", callsWhenOpen, got)
	}
	if reg.Snapshot().Counters["middleware.origin.trips"] != 1 {
		t.Fatalf("trips counter: %+v", reg.Snapshot().Counters)
	}
	if metrics.LadderStale.Load() != 5 {
		t.Fatalf("LadderStale = %d, want 5 (2 held errors + 3 open-breaker)", metrics.LadderStale.Load())
	}
}

// TestBreakerWithoutStaleRejects pins the open-breaker rung for pages the
// cache has never seen: 503, not a hang and not an error-proxy.
func TestBreakerWithoutStaleRejects(t *testing.T) {
	site := newFlakySite()
	site.mode.Store("err")
	metrics := &MiddlewareMetrics{}
	h := Middleware(site, MiddlewareOptions{
		Metrics:                metrics,
		OriginFailureThreshold: 1,
		OriginCooldown:         time.Hour,
	})
	if rec := get(h, "/page"); rec.Code != http.StatusInternalServerError {
		t.Fatalf("first failure: %d", rec.Code) // no stale yet: honest error
	}
	rec := get(h, "/page")
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("open breaker without stale: %d Retry-After=%q", rec.Code, rec.Header().Get("Retry-After"))
	}
	if metrics.LadderRejected.Load() != 1 {
		t.Fatalf("LadderRejected = %d", metrics.LadderRejected.Load())
	}
}

// TestBudgetExhaustedServesPlain: when the deadline budget is spent by the
// time the inner handler returns the page, the middleware skips probing
// and map assembly and delivers the HTML un-instrumented.
func TestBudgetExhaustedServesPlain(t *testing.T) {
	site := newFlakySite()
	metrics := &MiddlewareMetrics{}
	h := Middleware(site, MiddlewareOptions{
		Metrics:       metrics,
		RequestBudget: time.Nanosecond, // spent before the handler returns
	})
	rec := get(h, "/page")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get(HeaderName) != "" {
		t.Fatal("budget-exhausted response carries a map")
	}
	if strings.Contains(rec.Body.String(), RegistrationSnippet) {
		t.Fatal("budget-exhausted response got the snippet")
	}
	if rec.Body.String() != flakyPage {
		t.Fatalf("body = %q, want the raw page", rec.Body.String())
	}
	if metrics.BudgetExhausted.Load() != 1 {
		t.Fatalf("BudgetExhausted = %d", metrics.BudgetExhausted.Load())
	}
	// A generous budget decorates normally.
	h2 := Middleware(newFlakySite(), MiddlewareOptions{RequestBudget: time.Minute})
	if rec := get(h2, "/page"); rec.Header().Get(HeaderName) == "" {
		t.Fatal("generous budget failed to decorate")
	}
}

// TestOverloadBurstInvariants is the concurrency-spike chaos cell in
// miniature: under a burst 16x the gate width, no client sees a 5xx
// (a stale copy exists), every response is accounted, and every shed
// request lands on exactly one ladder rung.
func TestOverloadBurstInvariants(t *testing.T) {
	leakcheck.Check(t)
	site := newFlakySite()
	metrics := &MiddlewareMetrics{}
	reg := telemetry.NewRegistry()
	h := Middleware(site, MiddlewareOptions{
		Metrics:      metrics,
		Telemetry:    reg,
		MaxInflight:  2,
		MaxQueue:     2,
		QueueTimeout: time.Millisecond,
	})
	prime(t, h)
	site.delayNS.Store(int64(2 * time.Millisecond)) // force queueing

	const n = 32
	var wg sync.WaitGroup
	var fresh, degraded, errors atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := get(h, "/page")
			switch {
			case rec.Code >= 500:
				errors.Add(1)
			case rec.Header().Get("Warning") != "":
				degraded.Add(1)
			default:
				fresh.Add(1)
			}
		}()
	}
	wg.Wait()

	if errors.Load() != 0 {
		t.Fatalf("%d clients saw 5xx during overload with stale available", errors.Load())
	}
	if fresh.Load()+degraded.Load() != n {
		t.Fatalf("fresh %d + degraded %d != %d", fresh.Load(), degraded.Load(), n)
	}
	snap := reg.Snapshot()
	shed := snap.Counters["middleware.gate.shed_timeout"] + snap.Counters["middleware.gate.shed_full"]
	rungs := metrics.LadderStale.Load() + metrics.LadderPassthrough.Load() + metrics.LadderRejected.Load()
	if shed != rungs {
		t.Fatalf("sheds %d != ladder rungs %d: every shed lands on exactly one rung", shed, rungs)
	}
	if degraded.Load() != rungs {
		t.Fatalf("degraded responses %d != rung counters %d", degraded.Load(), rungs)
	}
	if snap.Gauges["middleware.gate.inflight"] != 0 {
		t.Fatalf("gate slots leaked: %v", snap.Gauges["middleware.gate.inflight"])
	}
}
