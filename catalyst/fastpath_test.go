package catalyst

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestWarmHitServesIdenticalResponse proves the fast lane is a pure
// shortcut: the third (fully warm — hot index, cached encoding, pooled
// writer all engaged) response is byte-identical to the first full render,
// headers included.
func TestWarmHitServesIdenticalResponse(t *testing.T) {
	h := Middleware(site50(0), MiddlewareOptions{ProbeTTL: time.Hour})
	recs := make([]*httptest.ResponseRecorder, 4)
	for i := range recs {
		recs[i] = httptest.NewRecorder()
		h.ServeHTTP(recs[i], httptest.NewRequest("GET", "/", nil))
	}
	base := recs[0]
	for i, rec := range recs[1:] {
		if rec.Body.String() != base.Body.String() {
			t.Fatalf("serve %d: body diverged from the cold render", i+1)
		}
		for _, k := range []string{"Etag", HeaderName, "Content-Length", "Content-Type"} {
			if rec.Header().Get(k) != base.Header().Get(k) {
				t.Fatalf("serve %d: header %s = %q, cold render had %q",
					i+1, k, rec.Header().Get(k), base.Header().Get(k))
			}
		}
	}
	// And the conditional answer still works against the warm lane.
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("If-None-Match", base.Header().Get("Etag"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("warm conditional revisit = %d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatal("304 carried a body")
	}
}
