package catalyst_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing/fstest"

	"cachecatalyst/catalyst"
)

// ExampleMiddleware retrofits CacheCatalyst onto an existing handler: one
// wrap call adds the X-Etag-Config header, the Service-Worker snippet and
// the worker script endpoint.
func ExampleMiddleware() {
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			w.Header().Set("Content-Type", "text/html")
			io.WriteString(w, `<html><head><link rel="stylesheet" href="/site.css"></head></html>`)
		case "/site.css":
			w.Header().Set("Content-Type", "text/css")
			io.WriteString(w, "body { margin: 0 }")
		default:
			http.NotFound(w, r)
		}
	})

	ts := httptest.NewServer(catalyst.Middleware(app, catalyst.MiddlewareOptions{}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	m, _ := catalyst.DecodeMap(resp.Header.Get(catalyst.HeaderName))
	tag, covered := m["/site.css"]
	fmt.Println("stylesheet covered:", covered)
	fmt.Println("tag is strong:", !tag.Weak)
	body, _ := io.ReadAll(resp.Body)
	fmt.Println("worker registered:", strings.Contains(string(body), "serviceWorker"))
	// Output:
	// stylesheet covered: true
	// tag is strong: true
	// worker registered: true
}

// ExampleNewServer serves a directory tree with the mechanism enabled —
// the equivalent of running cmd/catalystd.
func ExampleNewServer() {
	site := fstest.MapFS{
		"index.html": {Data: []byte(`<img src="/logo.png">`)},
		"logo.png":   {Data: []byte("PNG")},
	}
	srv, err := catalyst.NewServer(site, catalyst.ServerOptions{Policy: catalyst.DefaultPolicy})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	m, _ := catalyst.DecodeMap(resp.Header.Get(catalyst.HeaderName))
	fmt.Println("map entries:", len(m))
	// Output:
	// map entries: 1
}

// ExampleClient shows the non-browser consumer: a crawler that revisits a
// page pays one request instead of one per resource.
func ExampleClient() {
	site := fstest.MapFS{
		"index.html": {Data: []byte(`<link rel="stylesheet" href="/s.css">`)},
		"s.css":      {Data: []byte("body{}")},
	}
	srv, _ := catalyst.NewServer(site, catalyst.ServerOptions{Policy: catalyst.DefaultPolicy})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := catalyst.NewClient(nil)
	c.Get(ts.URL + "/index.html")
	c.Get(ts.URL + "/s.css")

	// Revisit: page revalidates, stylesheet is proven current by the map.
	page, _ := c.Get(ts.URL + "/index.html")
	css, _ := c.Get(ts.URL + "/s.css")
	fmt.Println("page:", page.Source)
	fmt.Println("stylesheet:", css.Source)
	// Output:
	// page: revalidated
	// stylesheet: cache
}
