package catalyst

import (
	"bytes"
	"crypto/sha256"
	"strconv"
	"sync/atomic"

	"cachecatalyst/internal/core"
	"cachecatalyst/internal/etag"
)

// renderEntry memoizes everything about one HTML render that is a pure
// function of the page's location and raw inner-handler body: the extracted
// subresource reference list, the snippet-injected body, and the injected
// body's entity tag. Because the cache key commits to the raw content (see
// renderKey), entries never go stale — a changed page hashes to a new key —
// so a hot unchanged page skips the HTML tokenizer, the tree builder, the
// snippet injection, and the whole-body validator hash on every request
// after the first.
//
// Everything but enc is immutable after construction and safe to share
// across requests — including the precomputed header value slices, which
// the serve path assigns into a response header map directly (one map
// store; no per-request string rendering, no Set re-allocation). Sharing
// one []string across concurrent responses is safe because nothing in
// net/http or this package mutates a stored value slice in place; Set
// always installs a fresh one. enc is the one mutable slot: the most
// recent canonical X-Etag-Config encoding, swapped atomically and valid
// only while the probe generation it was built under still stands (see
// middleware.probeGen).
type renderEntry struct {
	refs     []core.Ref
	injected string
	tag      etag.Tag
	// injectedBytes aliases injected's contents ready for Write — computed
	// once here so serving doesn't convert (and copy) per request. Never
	// written to.
	injectedBytes []byte
	// tagStr, etagHeader and clenHeader are the precomputed wire forms:
	// tag.String() once, plus single-element header value slices for
	// "Etag" and "Content-Length".
	tagStr     string
	etagHeader []string
	clenHeader []string
	// deltaKey is the retained-base cache key this entry's body lives
	// under when MiddlewareOptions.Delta is on (pageURL + NUL + validator).
	deltaKey string
	enc      atomic.Pointer[encodedMap]
}

// newRenderEntry builds the immutable render product for one (pageURL, raw
// body) pair, precomputing every per-request byte the serve path would
// otherwise re-render.
func newRenderEntry(pageURL, body string) *renderEntry {
	injected := core.InjectRegistration(body)
	injectedBytes := []byte(injected)
	tag := etag.ForBytes(injectedBytes)
	tagStr := tag.String()
	return &renderEntry{
		refs:          core.ExtractPageRefs(pageURL, body),
		injected:      injected,
		tag:           tag,
		injectedBytes: injectedBytes,
		tagStr:        tagStr,
		etagHeader:    []string{tagStr},
		clenHeader:    []string{strconv.Itoa(len(injected))},
		deltaKey:      pageURL + "\x00" + tagStr,
	}
}

// encodedMap is one canonical ETagMap.Encode result, stamped with the probe
// generation it reflects and the earliest expiry among the probes it was
// assembled from. While the generation still matches and no contributing
// probe has expired, re-resolving would only re-read unchanged cache
// entries and re-serialize the identical map — so the whole resolve phase
// is skipped and the string reused as-is. The first request past either
// bound rebuilds (and re-probes whatever expired). hdr is the encoding as
// a ready-to-assign header value slice, shared across responses like the
// renderEntry header slices.
type encodedMap struct {
	gen     uint64
	expires int64 // unix nanoseconds
	enc     string
	hdr     []string
}

// renderKey commits a cache entry to the page's URL (path and query) and
// the raw inner body. SHA-256 keeps the commitment collision-safe even for
// hostile page content; 16 bytes of it is plenty for a cache key.
func renderKey(pageURL string, body []byte) string {
	sum := sha256.Sum256(body)
	return pageURL + "\x00" + string(sum[:16])
}

// renderEntrySize charges an entry for the memory that actually scales:
// the key, the injected body (the string and its []byte alias are two
// copies), and the extracted reference strings, plus a fixed allowance for
// the struct and per-ref bookkeeping. The cached encoding is deliberately
// not charged — it is bounded by MaxMapBytes (or by the map the refs
// imply) and mutates after insertion, which byte accounting must not chase.
func renderEntrySize(key string, e *renderEntry) int64 {
	n := int64(len(key) + 2*len(e.injected) + 192)
	for _, r := range e.refs {
		n += int64(len(r.Key)) + 32
	}
	return n
}

// hotPage pins the most recent render of one page URL together with the
// raw inner-handler body it was computed from. The warm fast lane compares
// the current raw body against hot.raw with one memcmp — two orders of
// magnitude cheaper than the SHA-256 the render-cache key costs — and on a
// match reuses the entry with zero hashing, zero locking and zero
// allocation. A changed body misses (memcmp is exact, not a heuristic) and
// falls through to the keyed render cache, so correctness never rests on
// this index: it is a pure shortcut over renderKey.
type hotPage struct {
	raw []byte
	ent *renderEntry
}

func hotPageSize(key string, p *hotPage) int64 {
	return int64(len(key) + len(p.raw) + 48)
}

// render returns the memoized render for (pageURL, raw), computing and
// caching it on first sight. Concurrent first renders of the same unchanged
// page collapse into one extraction via the store's singleflight. With the
// cache disabled (MaxRenderBytes < 0) every request pays the full pipeline,
// which is exactly the pre-cache behaviour.
func (m *middleware) render(ts *tenantState, pageURL string, raw []byte) *renderEntry {
	if ts.renders == nil {
		return newRenderEntry(pageURL, string(raw))
	}
	e, _ := ts.renders.GetOrLoad(renderKey(pageURL, raw), func() (*renderEntry, error) {
		return newRenderEntry(pageURL, string(raw)), nil
	})
	return e
}

// hotRender is render() with the warm fast lane in front: a hit in the
// per-URL hot index whose pinned raw body memcmp-matches skips hashing and
// cache machinery entirely; anything else takes the keyed path and then
// repins the hot index (copying raw, which may live in a pooled buffer).
func (m *middleware) hotRender(ts *tenantState, pageURL string, raw []byte) *renderEntry {
	if ts.hot == nil {
		return m.render(ts, pageURL, raw)
	}
	if hp, ok := ts.hot.Get(pageURL); ok && bytes.Equal(hp.raw, raw) {
		return hp.ent
	}
	ent := m.render(ts, pageURL, raw)
	ts.hot.Put(pageURL, &hotPage{raw: append([]byte(nil), raw...), ent: ent})
	return ent
}
