package catalyst

import (
	"crypto/sha256"
	"sync/atomic"

	"cachecatalyst/internal/core"
	"cachecatalyst/internal/etag"
)

// renderEntry memoizes everything about one HTML render that is a pure
// function of the page's location and raw inner-handler body: the extracted
// subresource reference list, the snippet-injected body, and the injected
// body's entity tag. Because the cache key commits to the raw content (see
// renderKey), entries never go stale — a changed page hashes to a new key —
// so a hot unchanged page skips the HTML tokenizer, the tree builder, the
// snippet injection, and the whole-body validator hash on every request
// after the first.
//
// refs, injected and tag are immutable after construction and safe to share
// across requests. enc is the one mutable slot: the most recent canonical
// X-Etag-Config encoding, swapped atomically and valid only while the probe
// generation it was built under still stands (see middleware.probeGen).
type renderEntry struct {
	refs     []core.Ref
	injected string
	tag      etag.Tag
	enc      atomic.Pointer[encodedMap]
}

// encodedMap is one canonical ETagMap.Encode result, stamped with the probe
// generation it reflects and the earliest expiry among the probes it was
// assembled from. While the generation still matches and no contributing
// probe has expired, re-resolving would only re-read unchanged cache
// entries and re-serialize the identical map — so the whole resolve phase
// is skipped and the string reused as-is. The first request past either
// bound rebuilds (and re-probes whatever expired).
type encodedMap struct {
	gen     uint64
	expires int64 // unix nanoseconds
	enc     string
}

// renderKey commits a cache entry to the page's URL (path and query) and
// the raw inner body. SHA-256 keeps the commitment collision-safe even for
// hostile page content; 16 bytes of it is plenty for a cache key.
func renderKey(pageURL string, body []byte) string {
	sum := sha256.Sum256(body)
	return pageURL + "\x00" + string(sum[:16])
}

// renderEntrySize charges an entry for the memory that actually scales:
// the key, the injected body, and the extracted reference strings, plus a
// fixed allowance for the struct and per-ref bookkeeping. The cached
// encoding is deliberately not charged — it is bounded by MaxMapBytes (or
// by the map the refs imply) and mutates after insertion, which byte
// accounting must not chase.
func renderEntrySize(key string, e *renderEntry) int64 {
	n := int64(len(key) + len(e.injected) + 128)
	for _, r := range e.refs {
		n += int64(len(r.Key)) + 32
	}
	return n
}

// render returns the memoized render for (pageURL, raw), computing and
// caching it on first sight. Concurrent first renders of the same unchanged
// page collapse into one extraction via the store's singleflight. With the
// cache disabled (MaxRenderBytes < 0) every request pays the full pipeline,
// which is exactly the pre-cache behaviour.
func (m *middleware) render(pageURL string, raw []byte) *renderEntry {
	build := func() (*renderEntry, error) {
		body := string(raw)
		injected := core.InjectRegistration(body)
		return &renderEntry{
			refs:     core.ExtractPageRefs(pageURL, body),
			injected: injected,
			tag:      etag.ForBytes([]byte(injected)),
		}, nil
	}
	if m.renders == nil {
		e, _ := build()
		return e
	}
	e, _ := m.renders.GetOrLoad(renderKey(pageURL, raw), build)
	return e
}
