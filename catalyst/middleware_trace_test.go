package catalyst

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cachecatalyst/internal/browser"
	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/telemetry"
	"cachecatalyst/internal/vclock"
)

// taggedInnerSite is innerSite with validators: every response carries an
// ETag, the way an asset-serving app (or net/http's ServeContent) does.
// Subresource ETags are what let the Service Worker match the proactive
// map tokens on the retrofit path — the middleware streams subresources
// through untouched, so the inner handler's validator is the one clients
// cache.
func taggedInnerSite() http.Handler {
	mux := http.NewServeMux()
	serve := func(path, contentType, body string) {
		tag := etag.ForBytes([]byte(body)).String()
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", contentType)
			w.Header().Set("Etag", tag)
			if r.Header.Get("If-None-Match") == tag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
			_, _ = io.WriteString(w, body)
		})
	}
	serve("/{$}", "text/html; charset=utf-8",
		`<html><head><link rel="stylesheet" href="/style.css"><script src="/app.js"></script></head><body><img src="/logo.png"></body></html>`)
	serve("/style.css", "text/css; charset=utf-8", `body { background: url(/bg.png); }`)
	serve("/app.js", "text/javascript; charset=utf-8", `console.log("app")`)
	serve("/logo.png", "image/png", "PNG-LOGO")
	serve("/bg.png", "image/png", "PNG-BG")
	return mux
}

// TestMiddlewareTraceEndToEnd drives the full retrofit stack through the
// simulator — emulated browser → Service Worker → Middleware → inner
// handler — and checks that the middleware's cache decisions come back to
// the browser through Server-Timing, annotated onto the fetch events, and
// that the middleware's instruments land in the shared registry.
func TestMiddlewareTraceEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	var metrics MiddlewareMetrics
	h := Middleware(taggedInnerSite(), MiddlewareOptions{
		Metrics:      &metrics,
		Telemetry:    reg,
		ServerTiming: true,
	})
	clock := vclock.NewVirtual(vclock.Epoch)
	origins := browser.OriginMap{"site.example": server.NewHandlerOrigin(h)}
	cond := netsim.Conditions{RTT: 40 * time.Millisecond, DownlinkBps: 60e6}
	b := browser.New(clock, browser.Catalyst, netsim.TransportOptions{}).WithTelemetry(reg)

	if _, err := b.Load(origins, cond, "site.example", "/"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Hour)

	byPath := make(map[string][]string)
	b.OnFetch = func(ev browser.FetchEvent) { byPath[ev.Path] = ev.Decisions }
	res, err := b.Load(origins, cond, "site.example", "/")
	b.OnFetch = nil
	if err != nil {
		t.Fatal(err)
	}

	nav := strings.Join(byPath["/"], " ")
	if !strings.Contains(nav, "origin:map-built") {
		t.Errorf("navigation decisions %q missing the middleware's origin:map-built", nav)
	}
	if res.LocalHits == 0 {
		t.Error("warm Catalyst revisit should have Service-Worker hits")
	}
	var sawSWHit bool
	for _, dec := range byPath {
		for _, d := range dec {
			if d == "sw-hit" {
				sawSWHit = true
			}
		}
	}
	if !sawSWHit {
		t.Errorf("no sw-hit decision among fetch events: %v", byPath)
	}
	if res.Trace == nil || len(res.Trace.Events()) == 0 {
		t.Fatal("load trace empty")
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"middleware.probes.hits", "middleware.panics_recovered",
		"browser.httpcache.hits", "sw.site.example.local_hits",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("registry snapshot missing %q (have %d counters)", name, len(snap.Counters))
		}
	}
	if _, ok := snap.Histograms["middleware.html_ns"]; !ok {
		t.Error("registry snapshot missing middleware.html_ns histogram")
	}
	if snap.Counters["sw.site.example.local_hits"] == 0 {
		t.Error("sw local_hits counter did not move on the warm revisit")
	}
}
