package catalyst

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"cachecatalyst/internal/server"
	"cachecatalyst/internal/telemetry"
)

// MetricsPath is the conventional path WithMetrics serves the snapshot at.
const MetricsPath = "/debug/catalystd"

// MetricsOptions configures WithMetricsOptions.
type MetricsOptions struct {
	// Telemetry adds the registry's full snapshot — every instrument any
	// layer registered — under "telemetry" in the MetricsPath JSON. Nil
	// falls back to the registry the server was constructed with, if any.
	Telemetry *telemetry.Registry
	// PProf additionally mounts the standard net/http/pprof handlers
	// under /debug/pprof/. Off by default: profiling endpoints on a
	// production port are opt-in.
	PProf bool
	// Config, when set, is echoed verbatim under "config" in the
	// MetricsPath JSON — the daemon's effective settings (cache policy,
	// budgets), so a scrape shows which knobs produced the counters
	// next to them.
	Config any
}

// WithMetrics wraps srv so that MetricsPath serves a JSON snapshot of the
// server's counters (and, when ServerOptions.AccessLogSize was set, its
// recent requests) while every other request reaches the site. cmd/catalystd
// uses this behind its -metrics flag.
func WithMetrics(srv *server.Server) http.Handler {
	return WithMetricsOptions(srv, MetricsOptions{})
}

// WithMetricsOptions is WithMetrics with the full telemetry surface: the
// MetricsPath JSON gains a "telemetry" field holding the registry snapshot,
// and MetricsOptions.PProf mounts the pprof handlers.
func WithMetricsOptions(srv *server.Server, opts MetricsOptions) http.Handler {
	if opts.Telemetry == nil {
		opts.Telemetry = srv.Telemetry()
	}
	return metricsMux(srv, srv.Snapshot, opts)
}

// WithMetricsHandler is WithMetricsOptions for deployments with no
// *server.Server behind the middleware — catalystd's proxy modes, where
// the inner handler is a reverse proxy. The MetricsPath JSON carries the
// registry snapshot and the echoed config, and PProf mounts the same
// pprof surface, so a proxy-mode daemon is observable exactly like a
// file-serving one.
func WithMetricsHandler(next http.Handler, opts MetricsOptions) http.Handler {
	return metricsMux(next, nil, opts)
}

// metricsMux mounts the MetricsPath JSON (and optionally pprof) in front
// of next. snapshot, when non-nil, supplies the server counters that
// anchor the payload; proxy mode passes nil and the payload is registry
// plus config alone.
func metricsMux(next http.Handler, snapshot func() server.MetricsSnapshot, opts MetricsOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(MetricsPath, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		payload := struct {
			*server.MetricsSnapshot `json:",omitzero"`
			Config                  any                 `json:"config,omitempty"`
			Telemetry               *telemetry.Snapshot `json:"telemetry,omitempty"`
		}{Config: opts.Config}
		if snapshot != nil {
			snap := snapshot()
			payload.MetricsSnapshot = &snap
		}
		if opts.Telemetry != nil {
			snap := opts.Telemetry.Snapshot()
			payload.Telemetry = &snap
		}
		if err := json.NewEncoder(w).Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if opts.PProf {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", next)
	return mux
}

// MiddlewareMetrics exposes the middleware's resilience counters. Pass a
// pointer in MiddlewareOptions.Metrics to observe a wrapped handler; all
// fields are atomic telemetry counters, safe to read while serving, and a
// registry passed in MiddlewareOptions.Telemetry indexes this same storage.
type MiddlewareMetrics struct {
	// PanicsRecovered counts inner-handler panics converted to 500s.
	PanicsRecovered telemetry.Counter
	// BreakerTrips counts per-path probe circuit breakers opening after
	// repeated probe failures.
	BreakerTrips telemetry.Counter
	// ProbesSwept counts probe-cache entries evicted (least recently
	// used first) to respect MiddlewareOptions.MaxProbeEntries.
	ProbesSwept telemetry.Counter
	// MapEntriesDropped counts X-Etag-Config entries removed to respect
	// MiddlewareOptions.MaxMapBytes.
	MapEntriesDropped telemetry.Counter
	// RendersEvicted counts rendered-page cache entries evicted to
	// respect MiddlewareOptions.MaxRenderBytes.
	RendersEvicted telemetry.Counter
	// EncodeReuses counts HTML responses that reused a cached
	// X-Etag-Config serialization because no probe outcome changed since
	// it was built (see middleware.probeGen).
	EncodeReuses telemetry.Counter
	// LadderStale counts responses served from the stale cache (with a
	// Warning 110 header) because full service was refused — admission
	// shed, open origin breaker, inner-handler 5xx, or panic.
	LadderStale telemetry.Counter
	// LadderPassthrough counts shed requests served by running the inner
	// handler un-instrumented: no probing, no map, no snippet.
	LadderPassthrough telemetry.Counter
	// LadderRejected counts requests answered 503 + Retry-After, the
	// degradation ladder's bottom rung.
	LadderRejected telemetry.Counter
	// BudgetExhausted counts HTML responses delivered un-decorated
	// because the request's deadline budget ran out before map assembly.
	BudgetExhausted telemetry.Counter
	// HintsSent counts 103 Early Hints responses emitted ahead of HTML
	// (MiddlewareOptions.EarlyHints).
	HintsSent telemetry.Counter
	// DeltasServed counts HTML responses answered with a CCD1 patch
	// against the client's named base instead of the full body;
	// DeltaBytesSaved accumulates body bytes avoided that way.
	DeltasServed    telemetry.Counter
	DeltaBytesSaved telemetry.Counter
	// HotMapHits counts HTML responses whose X-Etag-Config was adopted
	// from a cluster peer's published encoding (MiddlewareOptions.Exchange)
	// instead of being assembled by a local probe fan-out.
	HotMapHits telemetry.Counter
}

// RegisterTelemetry indexes the counters in reg under "middleware.*"; the
// registry reads the same storage Snapshot() does.
func (m *MiddlewareMetrics) RegisterTelemetry(reg *telemetry.Registry) {
	reg.RegisterCounter("middleware.panics_recovered", &m.PanicsRecovered)
	reg.RegisterCounter("middleware.breaker_trips", &m.BreakerTrips)
	reg.RegisterCounter("middleware.probes_swept", &m.ProbesSwept)
	reg.RegisterCounter("middleware.map_entries_dropped", &m.MapEntriesDropped)
	reg.RegisterCounter("middleware.renders_evicted", &m.RendersEvicted)
	reg.RegisterCounter("middleware.encode_reuses", &m.EncodeReuses)
	reg.RegisterCounter("middleware.ladder_stale", &m.LadderStale)
	reg.RegisterCounter("middleware.ladder_passthrough", &m.LadderPassthrough)
	reg.RegisterCounter("middleware.ladder_rejected", &m.LadderRejected)
	reg.RegisterCounter("middleware.budget_exhausted", &m.BudgetExhausted)
	reg.RegisterCounter("middleware.hints_sent", &m.HintsSent)
	reg.RegisterCounter("middleware.deltas_served", &m.DeltasServed)
	reg.RegisterCounter("middleware.delta_bytes_saved", &m.DeltaBytesSaved)
	reg.RegisterCounter("middleware.hotmap_hits", &m.HotMapHits)
}

// MiddlewareMetricsSnapshot is the JSON form of MiddlewareMetrics.
type MiddlewareMetricsSnapshot struct {
	PanicsRecovered   int64 `json:"panicsRecovered"`
	BreakerTrips      int64 `json:"breakerTrips"`
	ProbesSwept       int64 `json:"probesSwept"`
	MapEntriesDropped int64 `json:"mapEntriesDropped"`
	RendersEvicted    int64 `json:"rendersEvicted"`
	EncodeReuses      int64 `json:"encodeReuses"`
	LadderStale       int64 `json:"ladderStale"`
	LadderPassthrough int64 `json:"ladderPassthrough"`
	LadderRejected    int64 `json:"ladderRejected"`
	BudgetExhausted   int64 `json:"budgetExhausted"`
	HintsSent         int64 `json:"hintsSent"`
	DeltasServed      int64 `json:"deltasServed"`
	DeltaBytesSaved   int64 `json:"deltaBytesSaved"`
	HotMapHits        int64 `json:"hotMapHits"`
}

// Snapshot returns the counters as plain values.
func (m *MiddlewareMetrics) Snapshot() MiddlewareMetricsSnapshot {
	return MiddlewareMetricsSnapshot{
		PanicsRecovered:   m.PanicsRecovered.Load(),
		BreakerTrips:      m.BreakerTrips.Load(),
		ProbesSwept:       m.ProbesSwept.Load(),
		MapEntriesDropped: m.MapEntriesDropped.Load(),
		RendersEvicted:    m.RendersEvicted.Load(),
		EncodeReuses:      m.EncodeReuses.Load(),
		LadderStale:       m.LadderStale.Load(),
		LadderPassthrough: m.LadderPassthrough.Load(),
		LadderRejected:    m.LadderRejected.Load(),
		BudgetExhausted:   m.BudgetExhausted.Load(),
		HintsSent:         m.HintsSent.Load(),
		DeltasServed:      m.DeltasServed.Load(),
		DeltaBytesSaved:   m.DeltaBytesSaved.Load(),
		HotMapHits:        m.HotMapHits.Load(),
	}
}

// ClientMetricsHandler serves c's counters — including the resilience
// counters (retries, timeouts, stale serves) — as JSON, for mounting at a
// debug path next to WithMetrics.
func ClientMetricsHandler(c *Client) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if err := json.NewEncoder(w).Encode(c.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
