package catalyst

import (
	"encoding/json"
	"net/http"

	"cachecatalyst/internal/server"
)

// MetricsPath is the conventional path WithMetrics serves the snapshot at.
const MetricsPath = "/debug/catalystd"

// WithMetrics wraps srv so that MetricsPath serves a JSON snapshot of the
// server's counters (and, when ServerOptions.AccessLogSize was set, its
// recent requests) while every other request reaches the site. cmd/catalystd
// uses this behind its -metrics flag.
func WithMetrics(srv *server.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(MetricsPath, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if err := json.NewEncoder(w).Encode(srv.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/", srv)
	return mux
}
