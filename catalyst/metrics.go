package catalyst

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	"cachecatalyst/internal/server"
)

// MetricsPath is the conventional path WithMetrics serves the snapshot at.
const MetricsPath = "/debug/catalystd"

// WithMetrics wraps srv so that MetricsPath serves a JSON snapshot of the
// server's counters (and, when ServerOptions.AccessLogSize was set, its
// recent requests) while every other request reaches the site. cmd/catalystd
// uses this behind its -metrics flag.
func WithMetrics(srv *server.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(MetricsPath, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if err := json.NewEncoder(w).Encode(srv.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/", srv)
	return mux
}

// MiddlewareMetrics exposes the middleware's resilience counters. Pass a
// pointer in MiddlewareOptions.Metrics to observe a wrapped handler; all
// fields are atomics and safe to read while serving.
type MiddlewareMetrics struct {
	// PanicsRecovered counts inner-handler panics converted to 500s.
	PanicsRecovered atomic.Int64
	// BreakerTrips counts per-path probe circuit breakers opening after
	// repeated probe failures.
	BreakerTrips atomic.Int64
	// ProbesSwept counts probe-cache entries evicted (least recently
	// used first) to respect MiddlewareOptions.MaxProbeEntries.
	ProbesSwept atomic.Int64
	// MapEntriesDropped counts X-Etag-Config entries removed to respect
	// MiddlewareOptions.MaxMapBytes.
	MapEntriesDropped atomic.Int64
	// RendersEvicted counts rendered-page cache entries evicted to
	// respect MiddlewareOptions.MaxRenderBytes.
	RendersEvicted atomic.Int64
	// EncodeReuses counts HTML responses that reused a cached
	// X-Etag-Config serialization because no probe outcome changed since
	// it was built (see middleware.probeGen).
	EncodeReuses atomic.Int64
}

// MiddlewareMetricsSnapshot is the JSON form of MiddlewareMetrics.
type MiddlewareMetricsSnapshot struct {
	PanicsRecovered   int64 `json:"panicsRecovered"`
	BreakerTrips      int64 `json:"breakerTrips"`
	ProbesSwept       int64 `json:"probesSwept"`
	MapEntriesDropped int64 `json:"mapEntriesDropped"`
	RendersEvicted    int64 `json:"rendersEvicted"`
	EncodeReuses      int64 `json:"encodeReuses"`
}

// Snapshot returns the counters as plain values.
func (m *MiddlewareMetrics) Snapshot() MiddlewareMetricsSnapshot {
	return MiddlewareMetricsSnapshot{
		PanicsRecovered:   m.PanicsRecovered.Load(),
		BreakerTrips:      m.BreakerTrips.Load(),
		ProbesSwept:       m.ProbesSwept.Load(),
		MapEntriesDropped: m.MapEntriesDropped.Load(),
		RendersEvicted:    m.RendersEvicted.Load(),
		EncodeReuses:      m.EncodeReuses.Load(),
	}
}

// ClientMetricsHandler serves c's counters — including the resilience
// counters (retries, timeouts, stale serves) — as JSON, for mounting at a
// debug path next to WithMetrics.
func ClientMetricsHandler(c *Client) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if err := json.NewEncoder(w).Encode(c.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
