// Package catalyst is the public API of the CacheCatalyst reproduction —
// the HotNets '24 proposal to eliminate cache-revalidation round trips by
// delivering validation tokens proactively.
//
// # What it does
//
// When a server serves a page's base HTML, it attaches an X-Etag-Config
// header mapping every same-origin subresource to its current entity tag,
// and injects a Service-Worker registration snippet. The Service Worker
// (whose JavaScript source ships in this package as WorkerScript) caches
// subresources and, on later visits, serves any resource whose cached tag
// matches the proactively delivered one with zero network round trips — no
// max-age tuning, no conditional requests for unchanged content.
//
// # Adopting it
//
//   - Wrap an existing http.Handler with Middleware to retrofit the
//     mechanism onto any Go web server.
//   - Or serve a directory with NewServer (the "modified Caddy" of the
//     paper), which also supports the first-visit recording extension that
//     covers JavaScript-discovered resources.
//
// The internal packages additionally provide the emulated browser, network
// simulator and experiment harness that reproduce the paper's evaluation;
// see DESIGN.md and the examples directory.
package catalyst

import (
	"io/fs"
	"time"

	"cachecatalyst/internal/cachestore"
	"cachecatalyst/internal/core"
	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/telemetry"
)

// HeaderName is the response header carrying the ETag map.
const HeaderName = core.HeaderName

// WorkerPath is the well-known URL of the Service Worker script.
const WorkerPath = core.ServiceWorkerPath

// WorkerScript is the JavaScript Service Worker served at WorkerPath; it
// implements the client side of the protocol in a real browser.
const WorkerScript = core.ServiceWorkerScript

// RegistrationSnippet is the inline script injected into HTML pages to
// install the Service Worker.
const RegistrationSnippet = core.RegistrationSnippet

// ETagMap maps same-origin resource paths to entity tags; its Encode form
// is the X-Etag-Config value.
type ETagMap = core.ETagMap

// DecodeMap parses an X-Etag-Config header value.
func DecodeMap(s string) (ETagMap, error) { return core.DecodeMap(s) }

// Tag is an HTTP entity tag.
type Tag = etag.Tag

// TagForBytes derives a strong entity tag from content.
func TagForBytes(b []byte) Tag { return etag.ForBytes(b) }

// CachePolicy is the per-resource cache-header configuration used by
// NewServer's content sources.
type CachePolicy = server.CachePolicy

// ServerOptions configures NewServer.
type ServerOptions struct {
	// Record enables the first-visit recording extension (§3 of the
	// paper): per-session capture of requested URLs, folded into later
	// ETag maps so JS-discovered resources are covered too.
	Record bool
	// MaxMapEntries caps the X-Etag-Config size; 0 means unlimited.
	MaxMapEntries int
	// Policy assigns Cache-Control per path; nil emits no Cache-Control
	// (CacheCatalyst needs none — that is the point).
	Policy func(path string) CachePolicy
	// AccessLogSize keeps a ring of recent requests readable via the
	// server's Snapshot method; 0 disables access logging.
	AccessLogSize int
	// Telemetry indexes the server's counters, caches and latency
	// histogram in the given registry; WithMetrics then serves the full
	// snapshot. Nil disables registry wiring (counters still work).
	Telemetry *telemetry.Registry
	// ServerTiming mirrors each request's cache decisions (etag-match,
	// map-built, network, …) back to the client in a Server-Timing
	// response header.
	ServerTiming bool
	// MaxInflight bounds concurrent ETag-map resolutions; a request
	// refused a slot within QueueTimeout serves its HTML without a map
	// instead of queueing behind a saturated resolver. Zero disables
	// the admission gate.
	MaxInflight int
	// QueueTimeout bounds the wait for a resolution slot; zero selects
	// the gate default (50ms).
	QueueTimeout time.Duration
	// RequestBudget, when positive, deadlines each request; map
	// resolution inherits the remainder and ships partial maps on time
	// rather than complete maps late.
	RequestBudget time.Duration
	// MaxRenderBytes bounds the rendered-page cache. Zero selects the
	// server default (16 MiB); negative disables the cache.
	MaxRenderBytes int64
	// RenderCachePolicy selects the rendered-page cache's eviction and
	// admission policy; the zero value is exact global LRU. See
	// cachestore.ParsePolicy for the named alternatives (gdsf,
	// tinylfu-lru, ...).
	RenderCachePolicy cachestore.Policy
}

// NewServer serves the directory tree fsys with CacheCatalyst enabled: the
// returned handler attaches X-Etag-Config to every HTML response, injects
// the registration snippet, serves the worker script, and answers
// conditional requests with 304s.
func NewServer(fsys fs.FS, opts ServerOptions) (*server.Server, error) {
	content, err := server.NewFSContent(fsys, opts.Policy)
	if err != nil {
		return nil, err
	}
	return server.New(content, server.Options{
		Catalyst:          true,
		Record:            opts.Record,
		MapOptions:        core.BuildOptions{MaxEntries: opts.MaxMapEntries},
		AccessLogSize:     opts.AccessLogSize,
		Telemetry:         opts.Telemetry,
		ServerTiming:      opts.ServerTiming,
		MaxInflight:       opts.MaxInflight,
		QueueTimeout:      opts.QueueTimeout,
		RequestBudget:     opts.RequestBudget,
		MaxRenderBytes:    opts.MaxRenderBytes,
		RenderCachePolicy: opts.RenderCachePolicy,
	}), nil
}

// DefaultPolicy is a reasonable conventional-caching policy for static
// sites, useful as the baseline to compare CacheCatalyst against: immutable
// asset types get a day, HTML revalidates.
func DefaultPolicy(path string) CachePolicy {
	switch {
	case hasAnySuffix(path, ".html", ".htm", "/"):
		return CachePolicy{NoCache: true}
	case hasAnySuffix(path, ".css", ".js", ".mjs", ".woff2", ".woff"):
		return CachePolicy{MaxAge: 24 * time.Hour, HasMaxAge: true}
	default:
		return CachePolicy{MaxAge: time.Hour, HasMaxAge: true}
	}
}

func hasAnySuffix(s string, suffixes ...string) bool {
	for _, suf := range suffixes {
		if len(s) >= len(suf) && s[len(s)-len(suf):] == suf {
			return true
		}
	}
	return false
}
