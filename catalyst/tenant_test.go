package catalyst

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cachecatalyst/internal/telemetry"
	"cachecatalyst/internal/tenant"
)

// tenantRouter is a stand-in for catalystd's multi-origin inner handler: it
// serves different content per tenant read from the request context, and
// can be flipped to fail for one tenant only.
type tenantRouter struct {
	failing atomic.Value // tenant name currently erroring, or ""
}

func (tr *tenantRouter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	name := "none"
	if t, ok := tenant.FromContext(r.Context()); ok {
		name = t.Name
	}
	if f, _ := tr.failing.Load().(string); f != "" && f == name {
		http.Error(w, "origin down", http.StatusBadGateway)
		return
	}
	switch {
	case strings.HasSuffix(r.URL.Path, ".css"):
		w.Header().Set("Content-Type", "text/css")
		fmt.Fprintf(w, "/* %s */ body{}", name)
	case strings.HasSuffix(r.URL.Path, ".html") || r.URL.Path == "/":
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, `<html><head><link rel="stylesheet" href="/app.css"></head><body>%s</body></html>`, name)
	default:
		http.NotFound(w, r)
	}
}

func newTenantedMiddleware(t *testing.T, reg *telemetry.Registry, opts MiddlewareOptions) (http.Handler, *tenantRouter) {
	t.Helper()
	tr := &tenantRouter{}
	tr.failing.Store("")
	opts.Telemetry = reg
	mw := Middleware(tr, opts)
	alpha := &tenant.Tenant{Name: "alpha", Hosts: []string{"alpha.test"}}
	beta := &tenant.Tenant{Name: "beta", Hosts: []string{"beta.test"}}
	res, err := tenant.NewResolver([]*tenant.Tenant{alpha, beta})
	if err != nil {
		t.Fatal(err)
	}
	return tenant.Handler(res, reg, mw), tr
}

func tenantGet(h http.Handler, host, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, "http://"+host+path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestTenantIsolatedServing pins that two tenants sharing one middleware
// get distinct bodies, distinct maps (probed against their own tenant),
// and per-tenant cache telemetry.
func TestTenantIsolatedServing(t *testing.T) {
	reg := telemetry.NewRegistry()
	h, _ := newTenantedMiddleware(t, reg, MiddlewareOptions{})

	ra := tenantGet(h, "alpha.test", "/")
	rb := tenantGet(h, "beta.test", "/")
	if ra.Code != 200 || rb.Code != 200 {
		t.Fatalf("status alpha=%d beta=%d", ra.Code, rb.Code)
	}
	if !strings.Contains(ra.Body.String(), ">alpha<") || !strings.Contains(rb.Body.String(), ">beta<") {
		t.Fatalf("tenant bodies crossed: alpha=%q beta=%q", ra.Body.String(), rb.Body.String())
	}
	if ra.Header().Get(HeaderName) == "" || rb.Header().Get(HeaderName) == "" {
		t.Fatal("missing X-Etag-Config on a tenant response")
	}
	// The stylesheet differs per tenant, so the probed maps must differ.
	if ra.Header().Get(HeaderName) == rb.Header().Get(HeaderName) {
		t.Fatalf("tenants share a map: %s", ra.Header().Get(HeaderName))
	}

	// Second serve of each page is a warm hit in that tenant's hot index.
	tenantGet(h, "alpha.test", "/")
	snap := reg.Snapshot()
	if snap.Counters["tenant.alpha.hot.hits"] == 0 {
		t.Fatalf("no warm hit recorded in alpha's hot namespace: %v", snap.Counters)
	}
	if snap.Counters["tenant.beta.hot.hits"] != 0 {
		t.Fatalf("alpha's warm hit leaked into beta's namespace: %v", snap.Counters)
	}
	if snap.Counters["tenant.alpha.requests"] != 2 || snap.Counters["tenant.beta.requests"] != 1 {
		t.Fatalf("per-tenant request counters wrong: %v", snap.Counters)
	}
}

// TestTenantBreakerIsolation pins that one tenant's flapping origin trips
// only that tenant's breaker: the sibling keeps full service, and the
// failing tenant degrades to its own stale copy.
func TestTenantBreakerIsolation(t *testing.T) {
	reg := telemetry.NewRegistry()
	h, tr := newTenantedMiddleware(t, reg, MiddlewareOptions{
		OriginFailureThreshold: 2,
		OriginCooldown:         time.Millisecond,
	})

	// Warm both tenants so stale copies exist.
	tenantGet(h, "alpha.test", "/")
	tenantGet(h, "beta.test", "/")

	tr.failing.Store("alpha")
	for i := 0; i < 4; i++ {
		rec := tenantGet(h, "alpha.test", "/")
		// Every one of these is answered from alpha's stale copy (the
		// sniff writer holds back the 502), never an error.
		if rec.Code != 200 || rec.Header().Get("Warning") == "" {
			t.Fatalf("serve %d: code %d warning %q", i, rec.Code, rec.Header().Get("Warning"))
		}
		if !strings.Contains(rec.Body.String(), ">alpha<") {
			t.Fatalf("stale body crossed tenants: %q", rec.Body.String())
		}
	}
	// Beta is untouched: full service, no warning, fresh map.
	rb := tenantGet(h, "beta.test", "/")
	if rb.Code != 200 || rb.Header().Get("Warning") != "" || rb.Header().Get(HeaderName) == "" {
		t.Fatalf("beta degraded alongside alpha: code %d warning %q", rb.Code, rb.Header().Get("Warning"))
	}

	// Alpha recovers once its origin does.
	tr.failing.Store("")
	// The breaker may hold alpha open briefly; a trial request closes it.
	var recovered bool
	for i := 0; i < 10 && !recovered; i++ {
		time.Sleep(2 * time.Millisecond) // let the cooldown admit a trial
		rec := tenantGet(h, "alpha.test", "/")
		recovered = rec.Code == 200 && rec.Header().Get("Warning") == ""
	}
	if !recovered {
		t.Fatal("alpha did not recover after its origin did")
	}
}

// TestTenantDefaultPathUntouched pins that a request with no tenant in
// context serves exactly as before the tenant dimension existed, on the
// default state.
func TestTenantDefaultPathUntouched(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := &tenantRouter{}
	tr.failing.Store("")
	mw := Middleware(tr, MiddlewareOptions{Telemetry: reg})

	rec := httptest.NewRecorder()
	mw.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/index.html", nil))
	if rec.Code != 200 || rec.Header().Get(HeaderName) == "" {
		t.Fatalf("tenantless serve broken: code %d", rec.Code)
	}
	snap := reg.Snapshot()
	if snap.Counters["middleware.renders.puts"] != 1 {
		t.Fatalf("tenantless render went somewhere other than the default cache: %v", snap.Counters)
	}
	for name := range snap.Counters {
		if strings.HasPrefix(name, "tenant.") {
			t.Fatalf("tenantless serving registered tenant instrument %q", name)
		}
	}
}
