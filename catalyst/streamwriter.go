package catalyst

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"

	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/headers"
)

// sniffWriter is the middleware's hot-path http.ResponseWriter: it holds
// headers until the inner handler commits a status, then routes by content
// type. 200 text/html responses are buffered for map building and snippet
// injection; everything else is streamed straight through to the client
// with O(1) buffering — the inner handler runs exactly once either way,
// replacing the old record-then-replay scheme that executed it twice per
// non-HTML request.
//
// Because the middleware strips conditional headers from the request it
// hands the inner handler (the full entity is needed for sniffing), the
// writer restores conditional semantics itself on the passthrough path: a
// 200 whose validators match the original request's If-None-Match or
// If-Modified-Since is rewritten to a 304 and its body discarded.
type sniffWriter struct {
	dst http.ResponseWriter
	req *http.Request // original request, with its conditional headers

	// staleOwner, when set, is consulted before a >= 500 status is
	// committed to the client: if it holds an unexpired stale copy of
	// stalePage, the writer swallows the error response (headers and
	// body) and marks held instead, so the middleware can substitute the
	// stale copy — the degradation ladder's "serve stale instead of
	// error-proxying" rung. Plain fields rather than a closure: this sits
	// on the hot path of every instrumented request, and a closure would
	// cost an allocation per serve.
	staleOwner *middleware
	staleState *tenantState
	stalePage  string

	header    http.Header
	status    int
	committed bool // WriteHeader decision made
	buffering bool // 200 text/html: capture body for rewriting
	discard   bool // conditional answered 304: drop body writes
	sentToDst bool // headers (and possibly body) reached the client
	hijacked  bool
	held      bool // 5xx swallowed for stale substitution

	buf bytes.Buffer
}

// sniffPool recycles sniffWriters — one per instrumented request, making
// the writer (header map buckets and body buffer included) a steady-state
// zero-allocation cost. Nothing a writer hands out survives the request:
// header value slices are allocated fresh by each handler's Set/Add calls
// (only the map's buckets are reused), and every consumer of the buffered
// body copies it (render interns it as a string, the hot index clones it,
// passthrough writes flush into net/http's own buffers) before release.
var sniffPool = sync.Pool{
	New: func() any { return &sniffWriter{header: make(http.Header)} },
}

func newSniffWriter(dst http.ResponseWriter, req *http.Request) *sniffWriter {
	w := sniffPool.Get().(*sniffWriter)
	w.dst, w.req = dst, req
	return w
}

// release resets the writer and returns it to the pool. Callers must not
// touch the writer afterwards; the middleware releases only after the
// response is fully written and nothing references the buffer.
func (w *sniffWriter) release() {
	w.dst, w.req = nil, nil
	w.staleOwner, w.staleState, w.stalePage = nil, nil, ""
	clear(w.header)
	w.status = 0
	w.committed, w.buffering, w.discard = false, false, false
	w.sentToDst, w.hijacked, w.held = false, false, false
	// One huge page must not pin its buffer in the pool forever; past a
	// megabyte the writer is dropped and the next request allocates fresh.
	if w.buf.Cap() > 1<<20 {
		return
	}
	w.buf.Reset()
	sniffPool.Put(w)
}

func (w *sniffWriter) Header() http.Header { return w.header }

func (w *sniffWriter) WriteHeader(code int) {
	if w.committed || w.hijacked {
		return
	}
	if code < 200 {
		// 1xx informational responses go out immediately and do not
		// commit the final status.
		copyHeader(w.dst.Header(), w.header)
		w.dst.WriteHeader(code)
		w.sentToDst = true
		return
	}
	w.committed = true
	w.status = code

	if code >= http.StatusInternalServerError && w.staleOwner != nil {
		if _, ok := w.staleOwner.staleFor(w.staleState, w.stalePage); ok {
			// A stale substitute exists: swallow the error entirely.
			// Nothing reaches the client; the middleware serves the stale
			// copy after the inner handler returns.
			w.held = true
			w.discard = true
			return
		}
	}

	if code == http.StatusOK && isHTML(w.header.Get("Content-Type")) {
		w.buffering = true
		// Pre-size from the declared length so a page written in many
		// small chunks costs one allocation, not a regrow cascade. The
		// declaration is advisory (and possibly hostile), so it is capped
		// and the buffer still grows past it if the handler lied.
		// The empty-string check matters: strconv.Atoi("") allocates its
		// error, and most handlers don't declare a length.
		if cl := w.header.Get("Content-Length"); cl != "" {
			if n, err := strconv.Atoi(cl); err == nil && n > 0 {
				const maxPrealloc = 1 << 20
				if n > maxPrealloc {
					n = maxPrealloc
				}
				w.buf.Grow(n)
			}
		}
		return
	}

	// Passthrough. Restore the conditional semantics the middleware
	// stripped from the inner request.
	if code == http.StatusOK && w.notModified() {
		h := w.dst.Header()
		copyHeader(h, w.header)
		h.Del("Content-Length")
		w.dst.WriteHeader(http.StatusNotModified)
		w.sentToDst = true
		w.discard = true
		return
	}
	copyHeader(w.dst.Header(), w.header)
	w.dst.WriteHeader(code)
	w.sentToDst = true
}

// notModified evaluates the original request's conditionals against the
// response headers the inner handler produced, per RFC 9110 §13:
// If-None-Match against the ETag (weak comparison), else If-Modified-Since
// against Last-Modified.
func (w *sniffWriter) notModified() bool {
	if inm := w.req.Header.Get("If-None-Match"); inm != "" {
		t, ok := etag.Parse(w.header.Get("Etag"))
		return ok && !etag.NoneMatch(inm, t)
	}
	ims := w.req.Header.Get("If-Modified-Since")
	if ims == "" {
		return false
	}
	since, ok := headers.ParseHTTPDate(ims)
	if !ok {
		return false
	}
	lm, ok := headers.ParseHTTPDate(w.header.Get("Last-Modified"))
	return ok && !lm.After(since)
}

func (w *sniffWriter) Write(b []byte) (int, error) {
	if w.hijacked {
		return 0, http.ErrHijacked
	}
	if !w.committed {
		// Implicit 200. Like net/http, sniff the content type from the
		// first chunk when the handler declared none, so undeclared HTML
		// still gets decorated.
		if w.header.Get("Content-Type") == "" {
			w.header.Set("Content-Type", http.DetectContentType(b))
		}
		w.WriteHeader(http.StatusOK)
	}
	if w.discard {
		return len(b), nil
	}
	if w.buffering {
		return w.buf.Write(b)
	}
	return w.dst.Write(b)
}

// WriteString lets io.WriteString (and fmt) hand the writer a string
// without first copying it to a fresh []byte — on the buffering path the
// bytes land straight in the buffer. Semantics mirror Write exactly.
func (w *sniffWriter) WriteString(s string) (int, error) {
	if w.hijacked {
		return 0, http.ErrHijacked
	}
	if !w.committed {
		if w.header.Get("Content-Type") == "" {
			n := len(s)
			if n > 512 {
				n = 512 // DetectContentType reads at most 512 bytes
			}
			w.header.Set("Content-Type", http.DetectContentType([]byte(s[:n])))
		}
		w.WriteHeader(http.StatusOK)
	}
	if w.discard {
		return len(s), nil
	}
	if w.buffering {
		return w.buf.WriteString(s)
	}
	return io.WriteString(w.dst, s)
}

// Flush commits headers (like net/http) and forwards the flush on the
// streaming path. While buffering HTML the flush is absorbed: the rewritten
// document is delivered in one piece.
func (w *sniffWriter) Flush() {
	if !w.committed {
		w.WriteHeader(http.StatusOK)
	}
	if w.buffering || w.discard {
		return
	}
	if f, ok := w.dst.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack forwards to the underlying writer when it supports hijacking,
// letting upgrade handshakes (e.g. WebSocket) pass through the middleware.
func (w *sniffWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := w.dst.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("catalyst: underlying ResponseWriter does not support hijacking")
	}
	w.hijacked = true
	w.sentToDst = true
	return hj.Hijack()
}

// body returns the buffered HTML entity. Valid only on the buffering path,
// after the inner handler returned; the middleware hands it to the render
// cache, which hashes it as-is, so the slice must not be mutated.
func (w *sniffWriter) body() []byte { return w.buf.Bytes() }

func isHTML(contentType string) bool {
	return len(contentType) >= 9 && contentType[:9] == "text/html"
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		dst[k] = vs
	}
}

var (
	_ http.ResponseWriter = (*sniffWriter)(nil)
	_ http.Flusher        = (*sniffWriter)(nil)
	_ http.Hijacker       = (*sniffWriter)(nil)
)
