package catalyst

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"net/textproto"
	"strings"
	"sync/atomic"
	"testing"

	"cachecatalyst/internal/delta"
)

// swapSite is innerSite with a mutable HTML body, for exercising the
// delta path: the page must actually change between requests.
func swapSite(cur *atomic.Value) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = io.WriteString(w, cur.Load().(string))
	})
	mux.HandleFunc("/style.css", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/css; charset=utf-8")
		_, _ = io.WriteString(w, `body { color: red }`)
	})
	return mux
}

func TestMiddlewareDeltaRoundTrip(t *testing.T) {
	page := `<html><head><link rel="stylesheet" href="/style.css"></head><body>version one of a page body long enough that a patch is worth serving</body></html>`
	var cur atomic.Value
	cur.Store(page)
	var mm MiddlewareMetrics
	h := Middleware(swapSite(&cur), MiddlewareOptions{Delta: true, Metrics: &mm})

	// First visit: full body, validator names the base the client now holds.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("cold status = %d", rec.Code)
	}
	baseTag := rec.Header().Get("Etag")
	if baseTag == "" {
		t.Fatal("no validator on first response")
	}
	baseBody := append([]byte(nil), rec.Body.Bytes()...)

	// Page changes; the revisit names its base and gets a patch back.
	cur.Store(strings.Replace(page, "version one", "version two", 1))
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(delta.RequestHeader, baseTag)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != 200 {
		t.Fatalf("delta status = %d", rec2.Code)
	}
	if got := rec2.Header().Get(delta.FromHeader); got != baseTag {
		t.Fatalf("%s = %q, want base tag %q", delta.FromHeader, got, baseTag)
	}
	patch := rec2.Body.Bytes()
	full, err := delta.Apply(baseBody, patch)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !strings.Contains(string(full), "version two") {
		t.Error("patched body missing updated content")
	}
	if !strings.Contains(string(full), RegistrationSnippet) {
		t.Error("patched body missing injected snippet")
	}
	if len(patch) >= len(full) {
		t.Errorf("patch (%d bytes) not smaller than full body (%d bytes)", len(patch), len(full))
	}
	if got := mm.DeltasServed.Load(); got != 1 {
		t.Errorf("DeltasServed = %d, want 1", got)
	}
	if got, want := mm.DeltaBytesSaved.Load(), int64(len(full)-len(patch)); got != want {
		t.Errorf("DeltaBytesSaved = %d, want %d", got, want)
	}

	// An unknown base cannot be patched against: full body, no patch header.
	req3 := httptest.NewRequest("GET", "/", nil)
	req3.Header.Set(delta.RequestHeader, `"no-such-base"`)
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req3)
	if rec3.Header().Get(delta.FromHeader) != "" {
		t.Error("patch served against unknown base")
	}
	if !strings.Contains(rec3.Body.String(), "version two") {
		t.Error("fallback response is not the full body")
	}
}

// TestMiddlewareDeltaLosesTo304 pins the precedence: when the client's base
// IS the current entity, the conditional GET answers 304 and no patch is
// built — a delta can never beat transferring nothing.
func TestMiddlewareDeltaLosesTo304(t *testing.T) {
	page := `<html><body>stable page</body></html>`
	var cur atomic.Value
	cur.Store(page)
	var mm MiddlewareMetrics
	h := Middleware(swapSite(&cur), MiddlewareOptions{Delta: true, Metrics: &mm})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	tag := rec.Header().Get("Etag")

	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("If-None-Match", tag)
	req.Header.Set(delta.RequestHeader, tag)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", rec2.Code)
	}
	if rec2.Header().Get(delta.FromHeader) != "" {
		t.Error("304 carries a delta header")
	}
	if mm.DeltasServed.Load() != 0 {
		t.Errorf("DeltasServed = %d on an unchanged page", mm.DeltasServed.Load())
	}
}

// TestMiddlewareEarlyHints drives the 103 through a real HTTP server:
// httptest.ResponseRecorder records only the first status line, so the
// informational response is only observable over a socket, via the
// client-side Got1xxResponse trace hook.
func TestMiddlewareEarlyHints(t *testing.T) {
	var mm MiddlewareMetrics
	ts := httptest.NewServer(Middleware(innerSite(), MiddlewareOptions{EarlyHints: true, Metrics: &mm}))
	defer ts.Close()

	var hintCode int
	var links []string
	trace := &httptrace.ClientTrace{
		Got1xxResponse: func(code int, header textproto.MIMEHeader) error {
			if code == http.StatusEarlyHints {
				hintCode = code
				links = append(links, header["Link"]...)
			}
			return nil
		},
	}
	req, err := http.NewRequestWithContext(
		httptrace.WithClientTrace(context.Background(), trace), "GET", ts.URL+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	if hintCode != http.StatusEarlyHints {
		t.Fatalf("no 103 observed (code %d)", hintCode)
	}
	joined := strings.Join(links, "\n")
	if !strings.Contains(joined, "</style.css>; rel=preload; as=style") {
		t.Errorf("hints missing stylesheet preload: %q", joined)
	}
	if !strings.Contains(joined, "</logo.png>; rel=preload; as=image") {
		t.Errorf("hints missing image preload: %q", joined)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("final status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), RegistrationSnippet) {
		t.Error("final response not decorated")
	}
	if resp.Header.Get(HeaderName) == "" {
		t.Error("final response missing the map header")
	}
	if mm.HintsSent.Load() != 1 {
		t.Errorf("HintsSent = %d, want 1", mm.HintsSent.Load())
	}

	// Non-HTML responses pass through un-hinted.
	req2, err := http.NewRequestWithContext(
		httptrace.WithClientTrace(context.Background(), trace), "GET", ts.URL+"/api/data", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if mm.HintsSent.Load() != 1 {
		t.Errorf("HintsSent = %d after non-HTML request, want still 1", mm.HintsSent.Load())
	}
}
