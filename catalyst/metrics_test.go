package catalyst

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"testing/fstest"
)

func metricsWorld(t *testing.T) (string, func()) {
	t.Helper()
	fsys := fstest.MapFS{
		"index.html": {Data: []byte(`<img src="/p.png">`)},
		"p.png":      {Data: []byte("PNG")},
	}
	srv, err := NewServer(fsys, ServerOptions{Policy: DefaultPolicy, AccessLogSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(WithMetrics(srv))
	return ts.URL, ts.Close
}

func TestMetricsEndpoint(t *testing.T) {
	base, done := metricsWorld(t)
	defer done()

	// Generate some traffic.
	for _, p := range []string{"/index.html", "/p.png", "/nope.gif"} {
		resp, err := http.Get(base + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(base + MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var snap struct {
		Requests  int64 `json:"requests"`
		NotFound  int64 `json:"notFound"`
		MapsBuilt int64 `json:"mapsBuilt"`
		Recent    []struct {
			Path   string `json:"path"`
			Status int    `json:"status"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 3 || snap.NotFound != 1 || snap.MapsBuilt != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Recent) != 3 {
		t.Fatalf("recent = %d entries", len(snap.Recent))
	}
	if snap.Recent[2].Path != "/nope.gif" || snap.Recent[2].Status != 404 {
		t.Fatalf("recent[2] = %+v", snap.Recent[2])
	}
}

func TestMetricsEndpointNotCached(t *testing.T) {
	base, done := metricsWorld(t)
	defer done()
	resp, err := http.Get(base + MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q", cc)
	}
}

// TestClientConcurrentGets exercises the client's locking under the race
// detector: many goroutines share one client against one server.
func TestClientConcurrentGets(t *testing.T) {
	fsys := fstest.MapFS{
		"index.html": {Data: []byte(`<link rel="stylesheet" href="/s.css"><img src="/p.png">`)},
		"s.css":      {Data: []byte("body{}")},
		"p.png":      {Data: []byte("PNG")},
	}
	srv, err := NewServer(fsys, ServerOptions{Policy: DefaultPolicy})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := NewClient(nil)
	paths := []string{"/index.html", "/s.css", "/p.png"}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := c.Get(ts.URL + paths[(i+j)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != 200 {
					t.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := c.Snapshot()
	if st.LocalHits == 0 {
		t.Error("no local hits across 240 concurrent gets")
	}
}
