package catalyst

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps test backoffs in the microsecond range.
var fastRetry = ClientOptions{
	MaxRetries:  3,
	BackoffBase: time.Microsecond,
	BackoffMax:  10 * time.Microsecond,
}

// --- catalyst.Client resilience ---------------------------------------

func TestClientRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, "finally")
	}))
	defer ts.Close()

	c := NewClientWithOptions(nil, fastRetry)
	resp, err := c.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "network" || string(resp.Body) != "finally" {
		t.Fatalf("resp: %s %q", resp.Source, resp.Body)
	}
	if st := c.Snapshot(); st.Retries != 2 || st.NetErrors != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer ts.Close()

	c := NewClientWithOptions(nil, fastRetry)
	resp, err := c.Get(ts.URL + "/gone")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 || calls.Load() != 1 {
		t.Fatalf("status %d after %d calls", resp.StatusCode, calls.Load())
	}
	if st := c.Snapshot(); st.Retries != 0 {
		t.Fatalf("retried a 404: %+v", st)
	}
}

func TestClientServesStaleWhenOriginDies(t *testing.T) {
	base, _, done := clientWorld(t)
	opts := fastRetry
	opts.StaleIfError = true
	c := NewClientWithOptions(nil, opts)

	first, err := c.Get(base + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	done() // the origin goes away entirely

	stale, err := c.Get(base + "/index.html")
	if err != nil {
		t.Fatalf("no stale fallback: %v", err)
	}
	if stale.Source != "stale" {
		t.Fatalf("source = %s, want stale", stale.Source)
	}
	if string(stale.Body) != string(first.Body) {
		t.Fatal("stale body differs from cached body")
	}
	st := c.Snapshot()
	if st.StaleServes != 1 || st.NetErrors != 1 || st.Retries != int64(opts.MaxRetries) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestClientServesStaleOnPersistent5xx(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, "content-v1")
	}))
	defer ts.Close()

	opts := fastRetry
	opts.StaleIfError = true
	c := NewClientWithOptions(nil, opts)
	if _, err := c.Get(ts.URL + "/r"); err != nil {
		t.Fatal(err)
	}
	healthy.Store(false)
	resp, err := c.Get(ts.URL + "/r")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "stale" || string(resp.Body) != "content-v1" {
		t.Fatalf("resp: %s %q", resp.Source, resp.Body)
	}
}

func TestClientTimeoutIsAClearErrorNotAHang(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // a stalled origin: headers never arrive
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer ts.Close()

	c := NewClientWithOptions(nil, ClientOptions{Timeout: 100 * time.Millisecond, StaleIfError: true})
	start := time.Now()
	_, err := c.Get(ts.URL + "/hang")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Get hung for %v", elapsed)
	}
	if st := c.Snapshot(); st.Timeouts != 1 || st.NetErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestClientBackoffDeterministicAndCapped(t *testing.T) {
	c := NewClientWithOptions(nil, ClientOptions{BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond})
	for attempt := 0; attempt < 10; attempt++ {
		a := c.backoff("https://x.example/r", attempt)
		b := c.backoff("https://x.example/r", attempt)
		if a != b {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
		if a <= 0 || a > 80*time.Millisecond {
			t.Fatalf("attempt %d backoff %v out of range", attempt, a)
		}
	}
	// Different URLs must spread (at least one differing delay).
	if c.backoff("https://x.example/a", 0) == c.backoff("https://x.example/b", 0) &&
		c.backoff("https://x.example/a", 1) == c.backoff("https://x.example/b", 1) {
		t.Fatal("jitter ignores the URL")
	}
}

// --- middleware resilience --------------------------------------------

func TestMiddlewareRecoversPanics(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("handler bug")
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, "ok")
	})
	var metrics MiddlewareMetrics
	h := Middleware(inner, MiddlewareOptions{Metrics: &metrics})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", rec.Code)
	}
	// The server keeps serving after the panic.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fine", nil))
	if rec.Code != 200 || rec.Body.String() != "ok" {
		t.Fatalf("healthy path broken after panic: %d %q", rec.Code, rec.Body.String())
	}
	// Non-GET panics are recovered too.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("POST panic answered %d", rec.Code)
	}
	if got := metrics.PanicsRecovered.Load(); got != 2 {
		t.Fatalf("panics recovered = %d, want 2", got)
	}
}

func TestMiddlewareProbeCircuitBreaker(t *testing.T) {
	var cssCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/page.html", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, `<html><head><link rel="stylesheet" href="/flaky.css"></head></html>`)
	})
	mux.HandleFunc("/flaky.css", func(w http.ResponseWriter, r *http.Request) {
		cssCalls.Add(1)
		http.Error(w, "db down", http.StatusInternalServerError)
	})
	var metrics MiddlewareMetrics
	h := Middleware(mux, MiddlewareOptions{
		ProbeTTL:         time.Nanosecond, // every page load re-probes
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		Metrics:          &metrics,
	})

	loadPage := func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/page.html", nil))
		if rec.Code != 200 {
			t.Fatalf("page load failed: %d", rec.Code)
		}
		if rec.Header().Get(HeaderName) != "{}" {
			t.Fatalf("erroring subresource leaked into map: %q", rec.Header().Get(HeaderName))
		}
	}
	for i := 0; i < 5; i++ {
		loadPage()
		time.Sleep(time.Microsecond) // let the nanosecond TTL lapse
	}
	// Two probes trip the breaker; the remaining three loads are shielded.
	if got := cssCalls.Load(); got != 2 {
		t.Fatalf("probe calls = %d, want 2 (breaker did not open)", got)
	}
	if got := metrics.BreakerTrips.Load(); got != 1 {
		t.Fatalf("breaker trips = %d, want 1", got)
	}
}

func TestMiddlewareProbeCacheBounded(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, ".html") {
			w.Header().Set("Content-Type", "text/html")
			// Each page references its own distinct subresource — the
			// crawler-over-many-paths scenario that used to leak.
			fmt.Fprintf(w, `<html><body><img src="/img%s.png"></body></html>`, strings.TrimSuffix(r.URL.Path, ".html"))
			return
		}
		w.Header().Set("Content-Type", "image/png")
		fmt.Fprint(w, "PNG")
	})
	var metrics MiddlewareMetrics
	h := Middleware(mux, MiddlewareOptions{
		ProbeTTL:        time.Nanosecond,
		MaxProbeEntries: 8,
		Metrics:         &metrics,
	})
	for i := 0; i < 100; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/p%d.html", i), nil))
		if rec.Code != 200 {
			t.Fatalf("load %d: %d", i, rec.Code)
		}
	}
	m := h.(*middleware)
	if size := m.def.probes.Len(); size > 8 {
		t.Fatalf("probe cache grew to %d entries, cap 8", size)
	}
	if metrics.ProbesSwept.Load() == 0 {
		t.Fatal("no probe-cache entries were evicted")
	}
}

func TestMiddlewareMapByteCap(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/big.html" {
			w.Header().Set("Content-Type", "text/html")
			var b strings.Builder
			b.WriteString("<html><body>")
			for i := 0; i < 40; i++ {
				fmt.Fprintf(&b, `<img src="/a-rather-long-asset-name-%02d.png">`, i)
			}
			b.WriteString("</body></html>")
			fmt.Fprint(w, b.String())
			return
		}
		w.Header().Set("Content-Type", "image/png")
		fmt.Fprint(w, "PNG", r.URL.Path)
	})
	var metrics MiddlewareMetrics
	h := Middleware(mux, MiddlewareOptions{MaxMapBytes: 512, Metrics: &metrics})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/big.html", nil))
	hdr := rec.Header().Get(HeaderName)
	if len(hdr) > 512 {
		t.Fatalf("X-Etag-Config is %d bytes, cap 512", len(hdr))
	}
	m, err := DecodeMap(hdr)
	if err != nil {
		t.Fatalf("capped map undecodable: %v", err)
	}
	if len(m) == 0 {
		t.Fatal("cap removed every entry")
	}
	if metrics.MapEntriesDropped.Load() == 0 {
		t.Fatal("drop counter did not move")
	}
	// Deterministic trim: the lowest-sorting paths survive.
	if _, ok := m["/a-rather-long-asset-name-00.png"]; !ok {
		t.Fatal("first asset missing from capped map")
	}
}

// --- metrics exposure (satellite: observable resilience) ----------------

func TestClientMetricsHandlerReportsResilienceCounters(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// First request succeeds, everything after is a 503 — so the
		// client both caches and then exercises retry + stale paths.
		if calls.Add(1) > 1 {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, "v1")
	}))
	defer ts.Close()

	opts := fastRetry
	opts.StaleIfError = true
	c := NewClientWithOptions(nil, opts)
	if _, err := c.Get(ts.URL + "/r"); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Get(ts.URL + "/r") // injected faults: all 503s now
	if err != nil || resp.Source != "stale" {
		t.Fatalf("expected stale serve, got %v / %v", resp, err)
	}

	mts := httptest.NewServer(ClientMetricsHandler(c))
	defer mts.Close()
	res, err := http.Get(mts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap ClientStats
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Retries != int64(opts.MaxRetries) || snap.StaleServes != 1 || snap.NetErrors != 1 {
		t.Fatalf("exported stats: %+v", snap)
	}
	if snap.NetworkFetches != 1 {
		t.Fatalf("network fetches: %+v", snap)
	}
}

func TestMiddlewareMetricsSnapshot(t *testing.T) {
	var m MiddlewareMetrics
	m.PanicsRecovered.Add(2)
	m.BreakerTrips.Add(1)
	snap := m.Snapshot()
	if snap.PanicsRecovered != 2 || snap.BreakerTrips != 1 || snap.ProbesSwept != 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	out, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"panicsRecovered":2`) {
		t.Fatalf("json: %s", out)
	}
}
