package catalyst

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// TestRenderCacheReusesUnchangedPage asserts the tentpole win: a hot page
// whose raw body does not change parses, injects and hashes exactly once —
// later requests hit the render cache — while the response stays identical.
func TestRenderCacheReusesUnchangedPage(t *testing.T) {
	h := Middleware(innerSite(), MiddlewareOptions{ProbeTTL: time.Hour})
	m := h.(*middleware)

	first := httptest.NewRecorder()
	h.ServeHTTP(first, httptest.NewRequest("GET", "/", nil))
	if c := m.def.renders.Counters(); c.Loads != 1 {
		t.Fatalf("first render ran %d extractions, want 1", c.Loads)
	}

	second := httptest.NewRecorder()
	h.ServeHTTP(second, httptest.NewRequest("GET", "/", nil))
	c := m.def.renders.Counters()
	if c.Loads != 1 {
		t.Fatalf("unchanged page re-extracted: %d loads", c.Loads)
	}
	// The warm fast lane answers unchanged pages from the per-URL hot
	// index (one memcmp, no hashing); the keyed render cache is only
	// consulted when the hot pin misses.
	if m.def.hot.Counters().Hits == 0 {
		t.Fatal("second render did not hit the hot index")
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("cached render served a different body")
	}
	if first.Header().Get("Etag") != second.Header().Get("Etag") {
		t.Fatal("cached render served a different validator")
	}
	if first.Header().Get(HeaderName) != second.Header().Get(HeaderName) {
		t.Fatal("cached render served a different map")
	}

	// The first request's probes were cold, so their landing bumped the
	// probe generation and blocked that request from caching an encoding;
	// the second request stored one against the now-stable generation, so
	// the third gets to reuse it.
	third := httptest.NewRecorder()
	h.ServeHTTP(third, httptest.NewRequest("GET", "/", nil))
	if third.Header().Get(HeaderName) != first.Header().Get(HeaderName) {
		t.Fatal("reused encoding differs from the rebuilt one")
	}
	if m.opts.Metrics.EncodeReuses.Load() == 0 {
		t.Fatal("stable probes did not reuse the cached encoding")
	}
}

// TestRenderCacheKeysOnContent asserts the cache cannot serve stale HTML: a
// changed raw body hashes to a new key, so the new content is extracted,
// injected, and tagged afresh.
func TestRenderCacheKeysOnContent(t *testing.T) {
	var body atomic.Value
	body.Store(`<html><body><img src="/v1.png"></body></html>`)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			w.Header().Set("Content-Type", "text/html")
			_, _ = io.WriteString(w, body.Load().(string))
			return
		}
		w.Header().Set("Content-Type", "image/png")
		_, _ = io.WriteString(w, r.URL.Path)
	})
	h := Middleware(inner, MiddlewareOptions{ProbeTTL: time.Hour})

	r1 := httptest.NewRecorder()
	h.ServeHTTP(r1, httptest.NewRequest("GET", "/", nil))

	body.Store(`<html><body><img src="/v2.png"></body></html>`)
	r2 := httptest.NewRecorder()
	h.ServeHTTP(r2, httptest.NewRequest("GET", "/", nil))

	if !strings.Contains(r2.Body.String(), "/v2.png") {
		t.Fatalf("stale body served: %q", r2.Body.String())
	}
	if r1.Header().Get("Etag") == r2.Header().Get("Etag") {
		t.Fatal("changed page kept its validator")
	}
	m, err := DecodeMap(r2.Header().Get(HeaderName))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m["/v2.png"]; !ok {
		t.Fatalf("map built from stale refs: %v", m)
	}
}

// TestRenderCacheDisabled asserts MaxRenderBytes < 0 restores the
// uncached pipeline with identical responses.
func TestRenderCacheDisabled(t *testing.T) {
	h := Middleware(innerSite(), MiddlewareOptions{ProbeTTL: time.Hour, MaxRenderBytes: -1})
	m := h.(*middleware)
	if m.def.renders != nil {
		t.Fatal("render cache allocated despite MaxRenderBytes < 0")
	}
	cached := Middleware(innerSite(), MiddlewareOptions{ProbeTTL: time.Hour})
	for i := 0; i < 2; i++ {
		a, b := httptest.NewRecorder(), httptest.NewRecorder()
		h.ServeHTTP(a, httptest.NewRequest("GET", "/", nil))
		cached.ServeHTTP(b, httptest.NewRequest("GET", "/", nil))
		if a.Body.String() != b.Body.String() || a.Header().Get("Etag") != b.Header().Get("Etag") ||
			a.Header().Get(HeaderName) != b.Header().Get(HeaderName) {
			t.Fatalf("request %d: cached and uncached responses diverge", i)
		}
	}
}

// TestEncodeReuseInvalidatedByProbeChange asserts the generation check: a
// subresource changing under an expired probe must surface in the very next
// map even though the page's render entry (and its cached encoding) is hot.
func TestEncodeReuseInvalidatedByProbeChange(t *testing.T) {
	var asset atomic.Value
	asset.Store("v1")
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			w.Header().Set("Content-Type", "text/html")
			_, _ = io.WriteString(w, `<html><body><img src="/a.png"></body></html>`)
			return
		}
		w.Header().Set("Content-Type", "image/png")
		_, _ = io.WriteString(w, asset.Load().(string))
	})
	h := Middleware(inner, MiddlewareOptions{ProbeTTL: time.Millisecond})

	r1 := httptest.NewRecorder()
	h.ServeHTTP(r1, httptest.NewRequest("GET", "/", nil))
	m1, _ := DecodeMap(r1.Header().Get(HeaderName))

	asset.Store("v2")
	time.Sleep(5 * time.Millisecond) // let the probe expire

	r2 := httptest.NewRecorder()
	h.ServeHTTP(r2, httptest.NewRequest("GET", "/", nil))
	m2, err := DecodeMap(r2.Header().Get(HeaderName))
	if err != nil {
		t.Fatal(err)
	}
	if m1["/a.png"] == m2["/a.png"] {
		t.Fatal("map still advertises the stale subresource tag")
	}
	if m2["/a.png"] != TagForBytes([]byte("v2")) {
		t.Fatalf("map tag %v does not match the live content", m2["/a.png"])
	}
}

// TestRenderFanOutRaceStaysConsistent is the -race acceptance test for the
// two-phase pipeline: many parallel HTML renders while the inner body
// mutates concurrently must never produce a response whose Etag disagrees
// with the body it accompanies or whose map fails to decode, and the cache
// bookkeeping must balance once the dust settles.
func TestRenderFanOutRaceStaysConsistent(t *testing.T) {
	var version atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			v := version.Load()
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprintf(w, `<html><body><img src="/img/%d.png"><img src="/shared.png"></body></html>`, v)
			return
		}
		w.Header().Set("Content-Type", "image/png")
		_, _ = io.WriteString(w, r.URL.Path)
	})
	h := Middleware(inner, MiddlewareOptions{
		ProbeTTL:         time.Millisecond,
		ProbeConcurrency: 4,
		MaxRenderBytes:   1 << 14, // small enough to force evictions mid-race
	})
	m := h.(*middleware)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				version.Add(1)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("status = %d", rec.Code)
					return
				}
				// The served body and its validator must come from the
				// same render — a torn pair means two requests shared
				// mutable state they must not share.
				want := TagForBytes(rec.Body.Bytes()).String()
				if got := rec.Header().Get("Etag"); got != want {
					t.Errorf("Etag %s does not validate the served body (%s)", got, want)
					return
				}
				if _, err := DecodeMap(rec.Header().Get(HeaderName)); err != nil {
					t.Errorf("undecodable map: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if err := m.def.renders.Audit(); err != nil {
		t.Errorf("render cache accounting drifted: %v", err)
	}
	if err := m.def.probes.Audit(); err != nil {
		t.Errorf("probe cache accounting drifted: %v", err)
	}
	rc := m.def.renders.Counters()
	if rc.Loads == 0 || rc.Puts < rc.Loads {
		t.Errorf("render counters implausible: %+v", rc)
	}
}

// TestJSONStringLenMatchesMarshal pins jsonStringLen to its spec: exactly
// len(json.Marshal(s)) for every string, including the escaping edge cases
// the default HTML-escaping encoder has.
func TestJSONStringLenMatchesMarshal(t *testing.T) {
	check := func(s string) bool {
		b, err := json.Marshal(s)
		if err != nil {
			return false
		}
		return jsonStringLen(s) == len(b)
	}
	for _, s := range []string{
		"",
		"/plain/path.css",
		`quote " backslash \ done`,
		"tabs\tnewlines\nreturns\r",
		"low controls \x00\x01\x1f",
		"shorthand escapes \b and \f",
		"html <b>&amp;</b>",
		"line seps \u2028 and \u2029",
		"snowman ☃ and emoji \U0001F600",
		"invalid \xff\xfe bytes",
		"truncated rune \xe2\x82",
		string([]byte{0xed, 0xa0, 0x80}), // surrogate half, invalid UTF-8
	} {
		if !check(s) {
			b, _ := json.Marshal(s)
			t.Errorf("jsonStringLen(%q) = %d, marshal is %d bytes", s, jsonStringLen(s), len(b))
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
