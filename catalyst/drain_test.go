package catalyst

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cachecatalyst/internal/httpcache"
	"cachecatalyst/internal/leakcheck"
	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/resilience"
	"cachecatalyst/internal/telemetry"
)

// drainOrigin serves a minimal instrumented page through the simulator's
// Origin interface, so a ChaosOrigin wrapper can inject overload faults
// onto a live net/http connection via HandlerFromOrigin.
type drainOrigin struct{}

func (drainOrigin) RoundTrip(req *netsim.Request) *httpcache.Response {
	if strings.HasSuffix(req.Path, ".css") {
		return &httpcache.Response{
			StatusCode: 200,
			Header:     http.Header{"Content-Type": {"text/css"}},
			Body:       []byte("body{color:#000}"),
		}
	}
	return &httpcache.Response{
		StatusCode: 200,
		Header:     http.Header{"Content-Type": {"text/html; charset=utf-8"}},
		Body:       []byte(`<html><head><link rel="stylesheet" href="/style.css"></head><body>up</body></html>`),
	}
}

// TestKillUnderDrain is the kill-under-drain chaos cell: the daemon is
// told to exit while every in-flight request sits in a chaos stall far
// longer than the shutdown budget. The drain must stay bounded (force
// close, not hang), the final telemetry snapshot must still flush with
// the gate's accounting intact, and nothing may be left running after —
// the lifecycle invariant a SIGTERM'd catalystd relies on.
func TestKillUnderDrain(t *testing.T) {
	leakcheck.Check(t)
	reg := telemetry.NewRegistry()
	chaos := netsim.NewChaosOrigin(drainOrigin{}, netsim.ChaosConfig{
		Seed: 1, StallProb: 1, StallFor: time.Minute,
	})
	h := Middleware(netsim.HandlerFromOrigin(chaos), MiddlewareOptions{
		Telemetry:   reg,
		MaxInflight: 8,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var snap bytes.Buffer
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- resilience.Serve(ctx, &http.Server{Handler: h}, ln, resilience.ServeOptions{
			ShutdownTimeout: 200 * time.Millisecond,
			Telemetry:       reg,
			SnapshotTo:      &snap,
		})
	}()

	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}
	const inflight = 4
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get("http://" + ln.Addr().String() + "/page")
			if err == nil {
				resp.Body.Close()
				t.Error("request stalled past the shutdown budget completed cleanly")
			}
		}()
	}
	// Let every request reach its stall, then deliver the kill.
	time.Sleep(100 * time.Millisecond)
	cancel()

	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("drain with stuck in-flight requests reported a clean shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain hung: kill under load did not stay bounded")
	}
	wg.Wait()

	var got telemetry.Snapshot
	if err := json.Unmarshal(snap.Bytes(), &got); err != nil {
		t.Fatalf("final telemetry snapshot is not valid JSON: %v", err)
	}
	if got.Counters["middleware.gate.admitted"] != inflight {
		t.Fatalf("snapshot admitted = %d, want %d", got.Counters["middleware.gate.admitted"], inflight)
	}
}

// TestDrainFinishesQuickWork is kill-under-drain's happy half: requests
// that can finish inside the shutdown budget do, with clean responses,
// and Serve reports a clean drain.
func TestDrainFinishesQuickWork(t *testing.T) {
	leakcheck.Check(t)
	reg := telemetry.NewRegistry()
	h := Middleware(netsim.HandlerFromOrigin(drainOrigin{}), MiddlewareOptions{
		Telemetry:   reg,
		MaxInflight: 8,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var snap bytes.Buffer
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- resilience.Serve(ctx, &http.Server{Handler: h}, ln, resilience.ServeOptions{
			ShutdownTimeout: 2 * time.Second,
			Telemetry:       reg,
			SnapshotTo:      &snap,
		})
	}()

	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}
	resp, err := client.Get("http://" + ln.Addr().String() + "/page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get(HeaderName) == "" {
		t.Fatalf("pre-drain request: status %d, map %q", resp.StatusCode, resp.Header.Get(HeaderName))
	}

	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("idle drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle drain hung")
	}
	if snap.Len() == 0 {
		t.Fatal("no telemetry snapshot flushed on exit")
	}
}
