package catalyst

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachecatalyst/internal/etag"
)

// countingHandler wraps a handler and counts how many times it runs.
type countingHandler struct {
	calls atomic.Int64
	inner http.Handler
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.calls.Add(1)
	c.inner.ServeHTTP(w, r)
}

// TestNonHTMLExecutesInnerHandlerOnce is the acceptance test for the
// streaming write path: a non-HTML request through the middleware must run
// the inner handler exactly once (the old record-then-replay path ran it
// twice) and must deliver the handler's response unchanged.
func TestNonHTMLExecutesInnerHandlerOnce(t *testing.T) {
	counted := &countingHandler{inner: innerSite()}
	h := Middleware(counted, MiddlewareOptions{})

	for _, path := range []string{"/logo.png", "/api/data", "/style.css"} {
		counted.calls.Store(0)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status = %d", path, rec.Code)
		}
		if got := counted.calls.Load(); got != 1 {
			t.Errorf("%s: inner handler ran %d times, want exactly 1", path, got)
		}
		if rec.Header().Get(HeaderName) != "" {
			t.Errorf("%s: non-HTML response grew an ETag map", path)
		}
	}
}

// streamProbe is a ResponseWriter that records, at flush time, how many
// body bytes have already reached it — evidence of streaming.
type streamProbe struct {
	header        http.Header
	status        int
	body          bytes.Buffer
	bytesAtFlush  []int
	flushes       int
	wroteHeaderAt int // body length when WriteHeader fired (should be 0)
}

func newStreamProbe() *streamProbe { return &streamProbe{header: make(http.Header)} }

func (p *streamProbe) Header() http.Header { return p.header }
func (p *streamProbe) WriteHeader(code int) {
	p.status = code
	p.wroteHeaderAt = p.body.Len()
}
func (p *streamProbe) Write(b []byte) (int, error) { return p.body.Write(b) }
func (p *streamProbe) Flush() {
	p.flushes++
	p.bytesAtFlush = append(p.bytesAtFlush, p.body.Len())
}

// TestNonHTMLStreamsThroughMiddleware proves the body is not buffered: the
// inner handler writes a chunk, flushes, and *observes from inside the
// handler* that the chunk already reached the client-side writer before the
// handler returned.
func TestNonHTMLStreamsThroughMiddleware(t *testing.T) {
	probe := newStreamProbe()
	var seenMidHandler int // bytes visible at dst between the two chunks

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write([]byte("chunk-one:"))
		w.(http.Flusher).Flush()
		seenMidHandler = probe.body.Len()
		_, _ = w.Write([]byte("chunk-two"))
	})
	h := Middleware(inner, MiddlewareOptions{})
	h.ServeHTTP(probe, httptest.NewRequest("GET", "/blob", nil))

	if probe.status != 200 {
		t.Fatalf("status = %d", probe.status)
	}
	if got := probe.body.String(); got != "chunk-one:chunk-two" {
		t.Fatalf("body = %q", got)
	}
	if seenMidHandler != len("chunk-one:") {
		t.Fatalf("dst saw %d bytes mid-handler, want %d — response was buffered, not streamed",
			seenMidHandler, len("chunk-one:"))
	}
	if probe.flushes == 0 {
		t.Fatal("Flush was not forwarded on the streaming path")
	}
}

// TestPassthroughConditionalGet verifies the sniffing writer restores the
// conditional semantics the middleware strips from the inner request: a 200
// non-HTML response whose validator matches If-None-Match goes out as a
// body-less 304.
func TestPassthroughConditionalGet(t *testing.T) {
	tag := etag.ForBytes([]byte("PNG-LOGO"))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("If-None-Match") != "" {
			t.Error("conditional header leaked to the inner handler")
		}
		w.Header().Set("Content-Type", "image/png")
		w.Header().Set("Etag", tag.String())
		_, _ = w.Write([]byte("PNG-LOGO"))
	})
	h := Middleware(inner, MiddlewareOptions{})

	req := httptest.NewRequest("GET", "/logo.png", nil)
	req.Header.Set("If-None-Match", tag.String())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("304 carried a body: %q", rec.Body.String())
	}
	if rec.Header().Get("Etag") != tag.String() {
		t.Fatal("304 lost the validator")
	}

	// A non-matching validator must still get the full entity.
	req = httptest.NewRequest("GET", "/logo.png", nil)
	req.Header.Set("If-None-Match", `"different"`)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 || rec.Body.String() != "PNG-LOGO" {
		t.Fatalf("mismatch: status=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestPassthroughIfModifiedSince(t *testing.T) {
	lm := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/png")
		w.Header().Set("Last-Modified", lm.Format(http.TimeFormat))
		_, _ = w.Write([]byte("PNG"))
	})
	h := Middleware(inner, MiddlewareOptions{})

	req := httptest.NewRequest("GET", "/logo.png", nil)
	req.Header.Set("If-Modified-Since", lm.Format(http.TimeFormat))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", rec.Code)
	}

	req = httptest.NewRequest("GET", "/logo.png", nil)
	req.Header.Set("If-Modified-Since", lm.Add(-time.Hour).Format(http.TimeFormat))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("older If-Modified-Since: status = %d, want 200", rec.Code)
	}
}

// TestWorkerScriptConditionalGet is the regression test for the
// worker-script handler ignoring If-None-Match: the script is immutable per
// build, so a revalidation must answer 304 with no body.
func TestWorkerScriptConditionalGet(t *testing.T) {
	h := Middleware(innerSite(), MiddlewareOptions{})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", WorkerPath, nil))
	if rec.Code != 200 || rec.Body.String() != WorkerScript {
		t.Fatalf("first fetch: status=%d", rec.Code)
	}
	tag := rec.Header().Get("Etag")
	if tag == "" {
		t.Fatal("worker script served without a validator")
	}

	req := httptest.NewRequest("GET", WorkerPath, nil)
	req.Header.Set("If-None-Match", tag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("revalidation: status = %d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatal("304 carried the script body")
	}

	req = httptest.NewRequest("GET", WorkerPath, nil)
	req.Header.Set("If-None-Match", `"stale-tag"`)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 || rec.Body.String() != WorkerScript {
		t.Fatalf("stale validator: status=%d", rec.Code)
	}

	req = httptest.NewRequest("HEAD", WorkerPath, nil)
	req.Header.Set("If-None-Match", tag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("HEAD revalidation: status = %d, want 304", rec.Code)
	}
}

// TestProbeSingleflight is the acceptance test for probe collapsing: many
// concurrent renders of a page that references one expired subresource must
// produce exactly one inner-handler probe of that subresource.
func TestProbeSingleflight(t *testing.T) {
	var assetCalls atomic.Int64
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		_, _ = io.WriteString(w, `<html><head><script src="/slow.js"></script></head></html>`)
	})
	mux.HandleFunc("/slow.js", func(w http.ResponseWriter, r *http.Request) {
		assetCalls.Add(1)
		<-release // hold the probe open so every render piles onto the flight
		w.Header().Set("Content-Type", "text/javascript")
		_, _ = io.WriteString(w, "js()")
	})
	h := Middleware(mux, MiddlewareOptions{ProbeTTL: time.Hour})

	const renders = 12
	var wg sync.WaitGroup
	codes := make([]int, renders)
	for i := 0; i < renders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
			codes[i] = rec.Code
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let every render reach the probe
	close(release)
	wg.Wait()

	if got := assetCalls.Load(); got != 1 {
		t.Fatalf("subresource probed %d times across %d concurrent renders, want 1", got, renders)
	}
	for i, c := range codes {
		if c != 200 {
			t.Fatalf("render %d: status = %d", i, c)
		}
	}
}

// TestCapMapBytesMatchesNaive cross-checks the incremental encoded-size
// trimming against the obvious re-encode-per-drop reference over a large
// map with escape-heavy and multi-byte paths.
func TestCapMapBytesMatchesNaive(t *testing.T) {
	build := func() ETagMap {
		m := ETagMap{}
		for i := 0; i < 400; i++ {
			m[fmt.Sprintf("/assets/deep/dir-%03d/file-%03d.js", i%37, i)] = etag.ForBytes([]byte{byte(i), byte(i >> 8)})
		}
		m[`/odd/"quoted".css`] = etag.ForBytes([]byte("q"))
		m["/odd/ünïcode-päth.png"] = etag.ForBytes([]byte("u"))
		m["/odd/back\\slash.js"] = etag.ForBytes([]byte("b"))
		return m
	}

	naive := func(m ETagMap, max int) ETagMap {
		for len(m.Encode()) > max {
			paths := make([]string, 0, len(m))
			for p := range m {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			delete(m, paths[len(paths)-1])
		}
		return m
	}

	full := len(build().Encode())
	for _, max := range []int{full, full - 1, full / 2, 512, 64, 10} {
		mid := Middleware(innerSite(), MiddlewareOptions{MaxMapBytes: max}).(*middleware)
		got := mid.capMapBytes(build())
		want := naive(build(), max)
		if len(got) != len(want) {
			t.Fatalf("max=%d: incremental kept %d entries, naive kept %d", max, len(got), len(want))
		}
		for p, tag := range want {
			if got[p] != tag {
				t.Fatalf("max=%d: maps diverge at %q", max, p)
			}
		}
		if enc := got.Encode(); len(enc) > max && len(got) > 0 {
			t.Fatalf("max=%d: trimmed map still encodes to %d bytes", max, len(enc))
		}
	}
}

// TestMiddlewareParallelStress drives one middleware with a mixed workload
// from many goroutines; run under -race it pins the probe store, metrics,
// and sniffing writer as concurrency-safe.
func TestMiddlewareParallelStress(t *testing.T) {
	t.Parallel()
	metrics := &MiddlewareMetrics{}
	h := Middleware(innerSite(), MiddlewareOptions{
		ProbeTTL:        time.Millisecond, // force constant re-probing
		MaxProbeEntries: 2,                // fewer than the page's 4 subresources: constant eviction
		Metrics:         metrics,
	})
	paths := []string{"/", "/logo.png", "/api/data", "/style.css", WorkerPath, "/missing"}

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				path := paths[(g+i)%len(paths)]
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				want := 200
				if path == "/missing" {
					want = 404
				}
				if rec.Code != want {
					t.Errorf("%s: status = %d, want %d", path, rec.Code, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if metrics.ProbesSwept.Load() == 0 {
		t.Error("stress with MaxProbeEntries=4 evicted nothing")
	}
}

// TestClientGetParallelStressBounded hammers a byte-bounded Client cache so
// concurrent Gets race against LRU eviction; under -race this pins the
// rebased response cache.
func TestClientGetParallelStressBounded(t *testing.T) {
	t.Parallel()
	mux := http.NewServeMux()
	for i := 0; i < 16; i++ {
		body := strings.Repeat(fmt.Sprintf("asset-%02d;", i), 64)
		mux.HandleFunc(fmt.Sprintf("/a%02d", i), func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain")
			w.Header().Set("Etag", etag.ForBytes([]byte(body)).String())
			_, _ = io.WriteString(w, body)
		})
	}
	ts := httptest.NewServer(Middleware(mux, MiddlewareOptions{}))
	defer ts.Close()

	c := NewClientWithOptions(nil, ClientOptions{MaxCacheBytes: 4096})
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp, err := c.Get(ts.URL + fmt.Sprintf("/a%02d", (g*7+i)%16))
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != 200 {
					t.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Snapshot()
	if st.CacheEvictions == 0 {
		t.Error("bounded client cache never evicted under stress")
	}
}
