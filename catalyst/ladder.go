package catalyst

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/resilience"
	"cachecatalyst/internal/telemetry"
)

// This file is the middleware's degradation ladder: what a request gets
// when full service — inner handler plus probe fan-out plus map assembly —
// is not affordable. The rungs, in order of preference:
//
//  1. Stale: the last successfully rendered copy of the page, served with
//     Warning 110 and its last-known X-Etag-Config. Costs no inner-handler
//     work at all.
//  2. Passthrough: the inner handler runs once but the response streams
//     un-instrumented — no probing, no map, no snippet. Sheds the probe
//     amplification (one HTML request fanning out to N subresource
//     probes), which is the part that melts a saturated server.
//  3. Reject: 503 with Retry-After. The honest answer when neither a
//     stale copy nor an un-instrumented pass is affordable.
//
// Every degraded response is accounted on exactly one rung counter, which
// is what lets the chaos suite assert "no client-visible 5xx while a
// stale copy exists" and "every shed request lands on one rung".

// staleEntry is the last-known-good serve of one HTML page: everything
// needed to answer without touching the inner handler.
type staleEntry struct {
	body  string
	tag   etag.Tag
	enc   string // last X-Etag-Config encoding; possibly outdated, still valid tags at serve time
	ctype string
	at    time.Time
}

// staleEntrySize charges an entry for its body, key and map encoding.
func staleEntrySize(key string, e *staleEntry) int64 {
	return int64(len(key) + len(e.body) + len(e.enc) + len(e.ctype) + 96)
}

// staleFor returns the unexpired stale entry for pageURL in the tenant's
// stale cache, if any.
func (m *middleware) staleFor(ts *tenantState, pageURL string) (*staleEntry, bool) {
	if ts.stales == nil {
		return nil, false
	}
	e, ok := ts.stales.Get(pageURL)
	if !ok || time.Since(e.at) > ts.staleTTL {
		return nil, false
	}
	return e, true
}

// recordStale refreshes the last-known-good copy of a page after a
// successful instrumented serve. The hot path skips the write while the
// existing entry still matches and is young; a quarter of the stale TTL
// bounds how outdated the recorded timestamp may run.
func (m *middleware) recordStale(ts *tenantState, pageURL string, ent *renderEntry, encoded string, hdr http.Header, now time.Time) {
	if ts.stales == nil {
		return
	}
	if prev, ok := ts.stales.Peek(pageURL); ok &&
		prev.tag == ent.tag && prev.enc == encoded && now.Sub(prev.at) < ts.staleTTL/4 {
		return
	}
	ts.stales.Put(pageURL, &staleEntry{
		body:  ent.injected,
		tag:   ent.tag,
		enc:   encoded,
		ctype: hdr.Get("Content-Type"),
		at:    now,
	})
}

// serveStale answers the request from the stale cache, if an unexpired
// entry exists: 200 (or 304 on a matching validator) with a Warning 110
// header, the stored body, and the last-known map. Reports whether it
// served; reason lands on the request trace.
func (m *middleware) serveStale(ts *tenantState, w http.ResponseWriter, r *http.Request, pageURL, reason string) bool {
	e, ok := m.staleFor(ts, pageURL)
	if !ok {
		return false
	}
	m.opts.Metrics.LadderStale.Add(1)
	telemetry.Event(r.Context(), "stale-serve", reason)
	h := w.Header()
	if e.ctype != "" {
		h.Set("Content-Type", e.ctype)
	}
	if e.enc != "" {
		h.Set(HeaderName, e.enc)
	}
	h.Set("Etag", e.tag.String())
	h.Set("Warning", `110 - "Response is Stale"`)
	h.Set("Age", strconv.FormatInt(int64(time.Since(e.at)/time.Second), 10))
	if m.opts.ServerTiming {
		telemetry.AppendServerTiming(h, "stale-serve")
	}
	if !etag.NoneMatch(r.Header.Get("If-None-Match"), e.tag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	h.Set("Content-Length", strconv.Itoa(len(e.body)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = io.WriteString(w, e.body)
	}
	return true
}

// servePassthrough runs the inner handler once with the original request
// — conditionals intact, no sniffing, no probing, no instrumentation —
// the ladder's middle rung.
func (m *middleware) servePassthrough(w http.ResponseWriter, r *http.Request, reason string) {
	m.opts.Metrics.LadderPassthrough.Add(1)
	telemetry.Event(r.Context(), "passthrough", reason)
	if m.opts.ServerTiming {
		telemetry.AppendServerTiming(w.Header(), "passthrough")
	}
	if m.serveInner(w, r) {
		http.Error(w, "internal error", http.StatusInternalServerError)
	}
}

// servePlain delivers an already-buffered HTML entity un-instrumented:
// the raw body, no snippet, no map, no probing. Used when the request's
// deadline budget ran out after the inner handler finished but before
// the probe fan-out could start — late-but-plain beats later-and-decorated.
func (m *middleware) servePlain(w http.ResponseWriter, r *http.Request, sw *sniffWriter) {
	telemetry.Event(r.Context(), "budget-exhausted", requestPageURL(r))
	h := w.Header()
	copyHeader(h, sw.header)
	if m.opts.ServerTiming {
		telemetry.AppendServerTiming(h, "budget-exhausted")
	}
	body := sw.body()
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		_, _ = w.Write(body)
	}
}

// serveReject answers 503 + Retry-After, the ladder's bottom rung.
func (m *middleware) serveReject(w http.ResponseWriter, r *http.Request, reason string) {
	m.opts.Metrics.LadderRejected.Add(1)
	telemetry.Event(r.Context(), "shed", reason)
	h := w.Header()
	h.Set("Retry-After", strconv.FormatInt(retryAfterSeconds(m.opts.retryAfter()), 10))
	h.Set("Cache-Control", "no-store")
	http.Error(w, "overloaded, retry shortly", http.StatusServiceUnavailable)
}

// retryAfterSeconds renders a Retry-After duration in whole seconds, at
// least 1 — a zero would tell clients to hammer an overloaded server.
func retryAfterSeconds(d time.Duration) int64 {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// shed routes a gate-refused request down the ladder. A timed-out queue
// wait means the server is busy but moving: an un-instrumented pass is
// still affordable. A full queue means saturation: only pre-computed
// answers (stale) or a refusal are.
func (m *middleware) shed(ts *tenantState, w http.ResponseWriter, r *http.Request, pageURL string, err error) {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		if m.serveStale(ts, w, r, pageURL, "shed") {
			return
		}
	}
	if errors.Is(err, resilience.ErrQueueTimeout) {
		m.servePassthrough(w, r, "shed")
		return
	}
	m.serveReject(w, r, "queue-full")
}
