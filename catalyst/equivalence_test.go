package catalyst

import (
	"sync"
	"testing"

	"cachecatalyst/internal/telemetry"
)

// TestMiddlewareMetricsSnapshotMatchesRegistry checks the telemetry-spine
// invariant for the middleware counters: after RegisterTelemetry, the
// registry indexes the exact storage MiddlewareMetrics.Snapshot() reads, so
// concurrent writers plus concurrent registry readers still end in perfect
// agreement.
func TestMiddlewareMetricsSnapshotMatchesRegistry(t *testing.T) {
	var m MiddlewareMetrics
	reg := telemetry.NewRegistry()
	m.RegisterTelemetry(reg)

	counters := []*telemetry.Counter{
		&m.PanicsRecovered, &m.BreakerTrips, &m.ProbesSwept,
		&m.MapEntriesDropped, &m.RendersEvicted, &m.EncodeReuses,
	}
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				counters[(w+i)%len(counters)].Add(1)
				_ = reg.Snapshot()
				_ = m.Snapshot()
			}
		}(w)
	}
	wg.Wait()

	legacy := m.Snapshot()
	snap := reg.Snapshot()
	want := map[string]int64{
		"middleware.panics_recovered":    legacy.PanicsRecovered,
		"middleware.breaker_trips":       legacy.BreakerTrips,
		"middleware.probes_swept":        legacy.ProbesSwept,
		"middleware.map_entries_dropped": legacy.MapEntriesDropped,
		"middleware.renders_evicted":     legacy.RendersEvicted,
		"middleware.encode_reuses":       legacy.EncodeReuses,
	}
	var total int64
	for name, v := range want {
		total += v
		if got := snap.Counters[name]; got != v {
			t.Errorf("registry %q = %d, legacy snapshot says %d", name, got, v)
		}
	}
	if total != int64(workers*perWorker) {
		t.Errorf("total increments = %d, want %d", total, workers*perWorker)
	}
}
