package catalyst

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"testing/fstest"
	"time"

	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/htmlparse"
	"cachecatalyst/internal/netem"
)

// shapedClient returns an http.Client whose connections add a full RTT of
// delay to every response (client-side read shaping).
func shapedClient(rtt time.Duration) *http.Client {
	shaper := netem.Shaper{Delay: rtt}
	dialer := &net.Dialer{}
	return &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				c, err := dialer.DialContext(ctx, network, addr)
				if err != nil {
					return nil, err
				}
				return shaper.Conn(c), nil
			},
		},
	}
}

// fetchTagged GETs url and returns the response with its body and tag.
func fetchTagged(t *testing.T, client *http.Client, url string) (string, etag.Tag, http.Header) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	tag, _ := etag.Parse(resp.Header.Get("Etag"))
	return string(body), tag, resp.Header
}

// TestWallClockRevisit reproduces the paper's core effect on real sockets:
// a conventional client pays one shaped round trip per revalidation, while
// a catalyst client pays only the navigation.
func TestWallClockRevisit(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	fsys := fstest.MapFS{
		"index.html": {Data: []byte(`<html><head><link rel="stylesheet" href="/style.css"><script src="/app.js"></script></head><body><img src="/logo.png"></body></html>`)},
		"style.css":  {Data: []byte(`body { background: url(/bg.png); }`)},
		"app.js":     {Data: []byte(`console.log("app")`)},
		"logo.png":   {Data: []byte("PNG-LOGO")},
		"bg.png":     {Data: []byte("PNG-BG")},
	}
	srv, err := NewServer(fsys, ServerOptions{Policy: DefaultPolicy})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const rtt = 30 * time.Millisecond
	client := shapedClient(rtt)

	// --- First visit: fetch the page and all subresources, remembering
	// ETags (this warms both emulated clients identically).
	html, navTag, hdr := fetchTagged(t, client, ts.URL+"/")
	m, err := DecodeMap(hdr.Get(HeaderName))
	if err != nil {
		t.Fatal(err)
	}
	cached := map[string]etag.Tag{}
	for _, r := range htmlparse.ExtractFromHTML(html) {
		_, tag, subHdr := fetchTagged(t, client, ts.URL+r.URL)
		if cc := subHdr.Get("Cache-Control"); cc == "no-store" {
			continue
		}
		cached[r.URL] = tag
	}
	// CSS-referenced background also cached (the map covers it).
	if _, ok := m["/bg.png"]; ok {
		_, tag, _ := fetchTagged(t, client, ts.URL+"/bg.png")
		cached["/bg.png"] = tag
	}

	// --- Conventional revisit: conditional GET for the page and every
	// cached subresource (content unchanged → all 304, but each costs a
	// round trip).
	startConv := time.Now()
	req, _ := http.NewRequest("GET", ts.URL+"/", nil)
	req.Header.Set("If-None-Match", navTag.String())
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("nav revisit status = %d", resp.StatusCode)
	}
	for path, tag := range cached {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		req.Header.Set("If-None-Match", tag.String())
		r, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotModified {
			t.Fatalf("%s revisit status = %d", path, r.StatusCode)
		}
	}
	conventional := time.Since(startConv)

	// --- Catalyst revisit: one conditional navigation; its 304 carries
	// the fresh map, every cached tag matches, so nothing else is fetched.
	startCat := time.Now()
	req2, _ := http.NewRequest("GET", ts.URL+"/", nil)
	req2.Header.Set("If-None-Match", navTag.String())
	resp2, err := client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	freshMap, err := DecodeMap(resp2.Header.Get(HeaderName))
	if err != nil {
		t.Fatal(err)
	}
	for path, tag := range cached {
		current, ok := freshMap[path]
		if !ok {
			t.Fatalf("map lost %q on revisit", path)
		}
		if current != tag {
			t.Fatalf("%s changed unexpectedly: %v vs %v", path, current, tag)
		}
		// Tag matches → serve from cache: zero requests.
	}
	catalystTime := time.Since(startCat)

	// The conventional revisit made 1+len(cached) shaped round trips; the
	// catalyst revisit made 1. Require a clear wall-clock win.
	t.Logf("conventional=%v catalyst=%v (rtt=%v, %d cached resources)",
		conventional, catalystTime, rtt, len(cached))
	if conventional < time.Duration(len(cached))*rtt {
		t.Fatalf("conventional revisit %v suspiciously fast for %d revalidations", conventional, len(cached))
	}
	if catalystTime*2 > conventional {
		t.Fatalf("catalyst revisit %v not ≪ conventional %v", catalystTime, conventional)
	}
}
