package catalyst

import "time"

// MapExchange is the middleware's cluster hook: a transport (see
// internal/cluster) that carries freshly built X-Etag-Config encodings
// between edge instances. An instance that rendered a page and probed its
// subresources publishes the encoded map; a peer serving the same entity
// adopts the published encoding instead of re-running its own probe
// fan-out — the fan-out being the expensive stage a cluster would
// otherwise pay once per instance per page.
//
// Keys are (tenant, page URL, page validator): the validator commits the
// encoding to the exact entity it decorates, so a peer that renders a
// different body never adopts a map built for another version. Expiries
// are unix nanoseconds — the earliest probe expiry the encoding was
// assembled from — after which the map must be re-proved locally.
//
// Implementations must be safe for concurrent use and must never block
// the serving path: Publish is called on request paths and should hand
// off asynchronously.
type MapExchange interface {
	// Lookup returns a peer-published encoding for the exact entity, with
	// its expiry, if one is known and still trusted.
	Lookup(tenant, page, pageTag string) (enc string, expires int64, ok bool)
	// Publish announces a freshly assembled encoding to peers.
	Publish(tenant, page, pageTag, enc string, expires int64)
}

// exchangeLookup consults the configured exchange for a still-fresh peer
// encoding of the entity ent. The nil-exchange check is here rather than
// at the call site so the serve path stays an if/else-if chain.
func (m *middleware) exchangeLookup(ts *tenantState, pageURL string, ent *renderEntry, now time.Time) (string, int64, bool) {
	ex := m.opts.Exchange
	if ex == nil {
		return "", 0, false
	}
	enc, exp, ok := ex.Lookup(ts.name, pageURL, ent.tagStr)
	if !ok || now.UnixNano() >= exp {
		return "", 0, false
	}
	return enc, exp, true
}
