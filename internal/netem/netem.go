// Package netem shapes real network connections: it adds one-way
// propagation delay and token-bucket bandwidth limiting to a net.Conn.
//
// The discrete-event simulator (internal/netsim) runs the paper's sweeps in
// virtual time; netem provides the wall-clock counterpart, so integration
// tests can run the real net/http server and a real HTTP client over
// loopback under the same latency/throughput conditions and confirm that
// the simulated effects (revalidation round trips cost real time; catalyst
// revisits avoid them) reproduce on actual sockets.
package netem

import (
	"net"
	"time"
)

// Shaper describes one direction's network conditions.
type Shaper struct {
	// Delay is the one-way propagation delay added to received data
	// (apply to both ends of a connection to model a full RTT).
	Delay time.Duration
	// BitsPerSec limits read throughput; 0 means unlimited.
	BitsPerSec float64
}

// Conn wraps c so that data read from it arrives subject to the shaper's
// delay and bandwidth. Writes pass through unshaped (shape the peer's
// reads instead).
func (s Shaper) Conn(c net.Conn) net.Conn {
	sc := &shapedConn{Conn: c, shaper: s, chunks: make(chan chunk, 64)}
	go sc.pump()
	return sc
}

// Listener wraps l so accepted connections are shaped.
func (s Shaper) Listener(l net.Listener) net.Listener {
	return &shapedListener{Listener: l, shaper: s}
}

type shapedListener struct {
	net.Listener
	shaper Shaper
}

func (l *shapedListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.shaper.Conn(c), nil
}

type chunk struct {
	data    []byte
	readyAt time.Time
	err     error
}

type shapedConn struct {
	net.Conn
	shaper Shaper
	chunks chan chunk

	// pending is the partially consumed head chunk.
	pending []byte
}

// pump reads from the underlying connection and timestamps each chunk with
// its delivery time: transmission (token bucket at BitsPerSec) plus
// propagation delay.
func (c *shapedConn) pump() {
	var lastTxEnd time.Time
	for {
		buf := make([]byte, 16*1024)
		n, err := c.Conn.Read(buf)
		now := time.Now()
		if n > 0 {
			txStart := now
			if lastTxEnd.After(txStart) {
				txStart = lastTxEnd
			}
			txEnd := txStart
			if c.shaper.BitsPerSec > 0 {
				txEnd = txStart.Add(time.Duration(float64(n*8) / c.shaper.BitsPerSec * float64(time.Second)))
			}
			lastTxEnd = txEnd
			c.chunks <- chunk{data: buf[:n], readyAt: txEnd.Add(c.shaper.Delay)}
		}
		if err != nil {
			c.chunks <- chunk{err: err, readyAt: now.Add(c.shaper.Delay)}
			return
		}
	}
}

// Read implements net.Conn with shaped delivery.
func (c *shapedConn) Read(p []byte) (int, error) {
	if len(c.pending) == 0 {
		ch, ok := <-c.chunks
		if !ok {
			return 0, net.ErrClosed
		}
		if wait := time.Until(ch.readyAt); wait > 0 {
			time.Sleep(wait)
		}
		if ch.err != nil {
			return 0, ch.err
		}
		c.pending = ch.data
	}
	n := copy(p, c.pending)
	c.pending = c.pending[n:]
	return n, nil
}
