// Package netem shapes real network connections: it adds one-way
// propagation delay and token-bucket bandwidth limiting to a net.Conn.
//
// The discrete-event simulator (internal/netsim) runs the paper's sweeps in
// virtual time; netem provides the wall-clock counterpart, so integration
// tests can run the real net/http server and a real HTTP client over
// loopback under the same latency/throughput conditions and confirm that
// the simulated effects (revalidation round trips cost real time; catalyst
// revisits avoid them) reproduce on actual sockets.
package netem

import (
	"net"
	"os"
	"sync"
	"time"
)

// Shaper describes one direction's network conditions.
type Shaper struct {
	// Delay is the one-way propagation delay added to received data
	// (apply to both ends of a connection to model a full RTT).
	Delay time.Duration
	// BitsPerSec limits read throughput; 0 means unlimited.
	BitsPerSec float64
}

// Conn wraps c so that data read from it arrives subject to the shaper's
// delay and bandwidth. Writes pass through unshaped (shape the peer's
// reads instead).
func (s Shaper) Conn(c net.Conn) net.Conn {
	sc := &shapedConn{
		Conn:       c,
		shaper:     s,
		chunks:     make(chan chunk, 64),
		deadlineCh: make(chan struct{}),
	}
	go sc.pump()
	return sc
}

// Listener wraps l so accepted connections are shaped.
func (s Shaper) Listener(l net.Listener) net.Listener {
	return &shapedListener{Listener: l, shaper: s}
}

type shapedListener struct {
	net.Listener
	shaper Shaper
}

func (l *shapedListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.shaper.Conn(c), nil
}

type chunk struct {
	data    []byte
	readyAt time.Time
	err     error
}

type shapedConn struct {
	net.Conn
	shaper Shaper
	chunks chan chunk

	// pending is the partially consumed head chunk; head is a received
	// chunk whose delivery time has not arrived yet (kept out of pending
	// so an aborted Read does not lose it).
	pending []byte
	head    chunk
	hasHead bool
	// finalErr is the pump's terminal error, replayed by every Read after
	// delivery (a real conn keeps returning EOF too; without this a
	// second read would block forever on the dead chunk channel).
	finalErr error

	// Read deadlines are implemented here, not on the underlying
	// connection: net/http aborts its between-requests background read by
	// setting a deadline in the past (abortPendingRead), and if that
	// deadline reached the underlying conn it would fire inside pump and
	// kill the connection after its first request. deadlineCh is closed
	// (and replaced) on every deadline change, waking blocked Reads so
	// they re-evaluate — the semantics SetReadDeadline demands.
	mu           sync.Mutex
	readDeadline time.Time
	deadlineCh   chan struct{}
}

// pump reads from the underlying connection and timestamps each chunk with
// its delivery time: transmission (token bucket at BitsPerSec) plus
// propagation delay. It never sees read deadlines — those are handled in
// Read — so it exits only when the connection really ends.
func (c *shapedConn) pump() {
	var lastTxEnd time.Time
	for {
		buf := make([]byte, 16*1024)
		n, err := c.Conn.Read(buf)
		now := time.Now()
		if n > 0 {
			txStart := now
			if lastTxEnd.After(txStart) {
				txStart = lastTxEnd
			}
			txEnd := txStart
			if c.shaper.BitsPerSec > 0 {
				txEnd = txStart.Add(time.Duration(float64(n*8) / c.shaper.BitsPerSec * float64(time.Second)))
			}
			lastTxEnd = txEnd
			c.chunks <- chunk{data: buf[:n], readyAt: txEnd.Add(c.shaper.Delay)}
		}
		if err != nil {
			c.chunks <- chunk{err: err, readyAt: now.Add(c.shaper.Delay)}
			return
		}
	}
}

// readState snapshots the current deadline and its change channel.
func (c *shapedConn) readState() (time.Time, chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readDeadline, c.deadlineCh
}

// Read implements net.Conn with shaped delivery and wrapper-level deadline
// handling. A Read aborted by a deadline leaves undelivered data in place,
// so the connection remains usable after the deadline is re-armed.
func (c *shapedConn) Read(p []byte) (int, error) {
	for len(c.pending) == 0 {
		if c.finalErr != nil {
			return 0, c.finalErr
		}
		deadline, changed := c.readState()
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return 0, os.ErrDeadlineExceeded
		}
		var expire <-chan time.Time
		if !deadline.IsZero() {
			t := time.NewTimer(time.Until(deadline))
			expire = t.C
			defer t.Stop()
		}
		if !c.hasHead {
			select {
			case ch, ok := <-c.chunks:
				if !ok {
					return 0, net.ErrClosed
				}
				c.head, c.hasHead = ch, true
			case <-expire:
				return 0, os.ErrDeadlineExceeded
			case <-changed:
				continue
			}
		}
		// Hold the head chunk until its delivery time.
		if wait := time.Until(c.head.readyAt); wait > 0 {
			ready := time.NewTimer(wait)
			select {
			case <-ready.C:
			case <-expire:
				ready.Stop()
				return 0, os.ErrDeadlineExceeded
			case <-changed:
				ready.Stop()
				continue
			}
		}
		c.hasHead = false
		if c.head.err != nil {
			c.finalErr = c.head.err
			return 0, c.head.err
		}
		c.pending = c.head.data
	}
	n := copy(p, c.pending)
	c.pending = c.pending[n:]
	return n, nil
}

// SetReadDeadline implements net.Conn. The deadline is enforced by Read
// itself and deliberately not forwarded to the underlying connection (see
// the field comment); setting it wakes any blocked Read.
func (c *shapedConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	close(c.deadlineCh)
	c.deadlineCh = make(chan struct{})
	c.mu.Unlock()
	return nil
}

// SetDeadline implements net.Conn: reads via the wrapper, writes via the
// underlying connection (writes pass through unshaped).
func (c *shapedConn) SetDeadline(t time.Time) error {
	if err := c.SetReadDeadline(t); err != nil {
		return err
	}
	return c.Conn.SetWriteDeadline(t)
}
