package netem

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns two ends of a real TCP connection over loopback.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server = <-done
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestDelayAddsLatency(t *testing.T) {
	client, server := pipePair(t)
	shaped := Shaper{Delay: 50 * time.Millisecond}.Conn(client)

	start := time.Now()
	go func() {
		_, _ = server.Write([]byte("ping"))
	}()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(shaped, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 45*time.Millisecond {
		t.Fatalf("read completed in %v, want ≥ ~50ms", elapsed)
	}
	if !bytes.Equal(buf, []byte("ping")) {
		t.Fatalf("data corrupted: %q", buf)
	}
}

func TestBandwidthLimitsThroughput(t *testing.T) {
	client, server := pipePair(t)
	// 1 Mbps: 25 KB should take ~200ms.
	shaped := Shaper{BitsPerSec: 1e6}.Conn(client)

	payload := make([]byte, 25_000)
	go func() {
		_, _ = server.Write(payload)
	}()
	start := time.Now()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(shaped, got); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("25KB at 1Mbps took %v, want ≥ ~200ms", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("took %v, shaping too aggressive", elapsed)
	}
}

func TestUnshapedIsFast(t *testing.T) {
	client, server := pipePair(t)
	shaped := Shaper{}.Conn(client)
	go func() { _, _ = server.Write(make([]byte, 100_000)) }()
	start := time.Now()
	if _, err := io.ReadFull(shaped, make([]byte, 100_000)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("unshaped read took %v", elapsed)
	}
}

func TestDataIntegrityAcrossChunks(t *testing.T) {
	client, server := pipePair(t)
	shaped := Shaper{Delay: time.Millisecond}.Conn(client)
	payload := make([]byte, 200_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		_, _ = server.Write(payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(shaped, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through shaping")
	}
}

func TestEOFPropagates(t *testing.T) {
	client, server := pipePair(t)
	shaped := Shaper{Delay: time.Millisecond}.Conn(client)
	go func() {
		_, _ = server.Write([]byte("bye"))
		server.Close()
	}()
	data, err := io.ReadAll(shaped)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(data) != "bye" {
		t.Fatalf("data = %q", data)
	}
}

func TestListenerShapesAccepted(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shaped := Shaper{Delay: 30 * time.Millisecond}.Listener(l)
	defer shaped.Close()

	go func() {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return
		}
		_, _ = c.Write([]byte("hello"))
		c.Close()
	}()
	conn, err := shaped.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("accepted connection not shaped")
	}
}

// TestShapedConnSurvivesReadDeadlineAbort pins the keep-alive contract:
// net/http aborts its between-requests background read by setting a read
// deadline in the past (abortPendingRead), and the shaped connection must
// treat that timeout as a control signal — delivered promptly, connection
// still usable — not as the end of the stream. Before the fix, the pump
// goroutine exited on the first deadline poke and every keep-alive
// connection behind a shaped listener went dead after one request.
func TestShapedConnSurvivesReadDeadlineAbort(t *testing.T) {
	client, srv := pipePair(t)
	defer client.Close()
	shaped := Shaper{Delay: 5 * time.Millisecond}.Conn(srv)
	defer shaped.Close()

	// Request 1 arrives shaped.
	if _, err := client.Write([]byte("one..")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(shaped, buf); err != nil {
		t.Fatal(err)
	}

	// The server aborts a pending read with a deadline in the past …
	if err := shaped.SetReadDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := shaped.Read(buf); err == nil {
		t.Fatal("aborted read returned no error")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("aborted read error = %v, want timeout", err)
	}

	// … re-arms, and the connection must still deliver request 2.
	if err := shaped.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte("two..")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(shaped, buf); err != nil {
		t.Fatalf("connection dead after deadline abort: %v", err)
	}
	if string(buf) != "two.." {
		t.Fatalf("read %q after re-arm, want \"two..\"", buf)
	}
}
