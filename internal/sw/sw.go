// Package sw emulates the browser Service Worker machinery the paper's
// client side builds on (§3, Figure 2): a domain-scoped request interceptor
// with its own cache storage.
//
// The Worker type is a faithful Go port of the JavaScript Service Worker in
// internal/core (ServiceWorkerScript): on each navigation it captures the
// X-Etag-Config map; on each subresource fetch it serves straight from its
// cache when the cached entity tag equals the proactively delivered one, and
// otherwise forwards to the network and re-caches under the new tag.
package sw

import (
	"context"
	"net/http"
	"sync"
	"time"

	"cachecatalyst/internal/cachestore"
	"cachecatalyst/internal/core"
	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/headers"
	"cachecatalyst/internal/httpcache"
	"cachecatalyst/internal/telemetry"
	"cachecatalyst/internal/vclock"
)

// CacheStorage emulates the Cache interface available to Service Workers:
// a URL-keyed response store with none of the RFC 9111 freshness machinery
// (Service Worker caches never expire entries on their own). Browsers do
// impose storage quotas, so the store supports an optional byte bound with
// least-recently-used eviction.
//
// Storage sits on internal/cachestore's sharded LRU store, so a
// CacheStorage is safe for concurrent workers (real browsers share one
// Cache across worker contexts the same way).
type CacheStorage struct {
	store *cachestore.Store[*httpcache.Response]

	// evictions counts quota evictions, for experiments on storage
	// pressure. Read it through Evictions(); shared with any registry the
	// owning worker is wired into.
	evictions telemetry.Counter
}

// Evictions returns the number of entries removed by the storage quota.
func (c *CacheStorage) Evictions() int64 { return c.evictions.Load() }

// CacheStorageOptions configures a CacheStorage.
type CacheStorageOptions struct {
	// MaxBytes bounds stored body bytes; 0 means unbounded (real
	// browsers impose an origin quota; experiments pick one explicitly).
	MaxBytes int64
	// Policy selects the quota's eviction/admission policy. The zero
	// value is exact LRU, matching how browsers evict Cache API
	// storage; size-aware policies let storage-pressure experiments ask
	// what a smarter quota would keep.
	Policy cachestore.Policy
}

// NewCacheStorage returns an empty, unbounded store.
func NewCacheStorage() *CacheStorage {
	return NewBoundedCacheStorage(0)
}

// NewBoundedCacheStorage returns an empty store evicting least-recently
// used entries beyond maxBytes of body data (0 = unbounded).
func NewBoundedCacheStorage(maxBytes int64) *CacheStorage {
	return NewCacheStorageOptions(CacheStorageOptions{MaxBytes: maxBytes})
}

// NewCacheStorageOptions returns an empty store with an explicit quota
// and cache policy.
func NewCacheStorageOptions(opts CacheStorageOptions) *CacheStorage {
	c := &CacheStorage{}
	c.store = cachestore.New[*httpcache.Response](cachestore.Options[*httpcache.Response]{
		MaxBytes: opts.MaxBytes,
		SizeOf:   func(_ string, r *httpcache.Response) int64 { return int64(len(r.Body)) },
		Policy:   opts.Policy,
		OnEvict:  func(string, *httpcache.Response) { c.evictions.Add(1) },
	})
	return c
}

// Match returns the stored response for path, if any.
func (c *CacheStorage) Match(path string) (*httpcache.Response, bool) {
	return c.store.Get(path)
}

// Put stores a clone of resp under path, replacing any previous entry.
// Responses marked no-store are not cached, matching the paper's rule that
// the Service Worker stores "all resources received from the server ...
// provided they do not have a no-store header". Truncated bodies are never
// stored: caching a prefix of a resource would poison every later visit
// the proactive map proves "current".
func (c *CacheStorage) Put(path string, resp *httpcache.Response) {
	if resp.StatusCode != http.StatusOK || resp.Truncated {
		return
	}
	cc := headers.ParseCacheControl(resp.Header.Get("Cache-Control"))
	if cc.NoStore {
		return
	}
	c.store.Put(path, resp.Clone())
}

// Delete removes the entry for path.
func (c *CacheStorage) Delete(path string) {
	c.store.Delete(path)
}

// Clear empties the store.
func (c *CacheStorage) Clear() {
	c.store.Clear()
}

// Len returns the number of stored responses.
func (c *CacheStorage) Len() int { return c.store.Len() }

// Keys returns the stored paths, in no particular order — chaos tests use
// it to audit the whole store for poisoned entries.
func (c *CacheStorage) Keys() []string { return c.store.Keys() }

// Bytes returns the total stored body bytes.
func (c *CacheStorage) Bytes() int64 { return c.store.Bytes() }

// AccessRecorder observes every subresource access a Worker serves or
// fetches, with the object's byte size. internal/cachesim's Recorder
// implements it: wiring one into a harness run exports the emulated
// browsers' request stream as a webcachesim-format trace, so cache
// policies can be replayed offline against the workload the system
// actually generated. Implementations must be safe for concurrent use.
type AccessRecorder interface {
	Record(key string, size int64)
}

// SiteWorker is an existing, site-provided Service Worker the CacheCatalyst
// worker must coexist with (§6, third issue). If it claims a request the
// catalyst logic steps aside.
type SiteWorker interface {
	// HandleFetch may answer a request itself (e.g. an offline page).
	// ok=false passes the request through.
	HandleFetch(path string) (resp *httpcache.Response, ok bool)
}

// Stats counts Worker activity for experiments.
type Stats struct {
	// LocalHits are requests answered from cache with zero round trips.
	LocalHits int64
	// NetworkFetches are requests forwarded to the origin.
	NetworkFetches int64
	// MapUpdates counts navigations that delivered an ETag map.
	MapUpdates int64
	// MapDecodeFailures counts navigations whose X-Etag-Config could not
	// be decoded (corrupted or truncated in transit). The worker degrades
	// to its previous map — the same behaviour as an absent header — so a
	// mangled header can never fail a load.
	MapDecodeFailures int64
	// DelegatedFetches were answered by a coexisting site worker.
	DelegatedFetches int64
	// NegativeHits counts requests answered by a cached 404 (negative
	// caching enabled via WithNegativeCache).
	NegativeHits int64
	// NegativeEvictions counts cached 404s invalidated because the
	// resource appeared — either a 200 response arrived or a delivered
	// ETag map listed the path ("flip to 200").
	NegativeEvictions int64
}

// Worker is the CacheCatalyst Service Worker for one origin. Its counters
// are telemetry instruments so a registry can index them (RegisterTelemetry)
// while Stats() keeps serving the legacy snapshot.
type Worker struct {
	cache    *CacheStorage
	etags    core.ETagMap
	site     SiteWorker
	recorder AccessRecorder

	// Negative cache: path → expiry time of a remembered 404. Guarded by
	// negMu — the worker itself is driven by one browser goroutine, but
	// stress tests hit workers concurrently and the map is the only
	// mutable aggregate state beyond cachestore-backed storage.
	negTTL   time.Duration
	negClock vclock.Clock
	negMu    sync.Mutex
	negative map[string]time.Time

	localHits, networkFetches       telemetry.Counter
	mapUpdates, mapDecodeFails      telemetry.Counter
	delegatedFetches                telemetry.Counter
	negativeHits, negativeEvictions telemetry.Counter
}

// NewWorker returns a freshly installed worker with an empty cache and no
// ETag map (the state right after first registration).
func NewWorker() *Worker {
	return &Worker{cache: NewCacheStorage(), etags: core.ETagMap{}}
}

// WithSiteWorker attaches a coexisting site-provided worker. The catalyst
// worker consults it first for subresource fetches, mirroring the
// composition the paper's future work calls for.
func (w *Worker) WithSiteWorker(s SiteWorker) *Worker {
	w.site = s
	return w
}

// WithNegativeCache enables negative caching: complete 404 responses are
// remembered for ttl (judged against clock) and answered locally, saving
// the round trip that repeatedly re-discovers a missing resource. The
// entry is invalidated the moment evidence arrives that the resource
// exists — a 200 response, or a navigation map listing the path.
// Returns w for chaining.
func (w *Worker) WithNegativeCache(ttl time.Duration, clock vclock.Clock) *Worker {
	w.negTTL = ttl
	w.negClock = clock
	w.negative = make(map[string]time.Time)
	return w
}

// WithRecorder attaches an access recorder: every subresource the worker
// answers from cache or receives from the network is reported with its
// body size. Returns w for chaining.
func (w *Worker) WithRecorder(r AccessRecorder) *Worker {
	w.recorder = r
	return w
}

// Cache exposes the worker's cache storage (tests and the browser emulator
// need to inspect and warm it).
func (w *Worker) Cache() *CacheStorage { return w.cache }

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() Stats {
	return Stats{
		LocalHits:         w.localHits.Load(),
		NetworkFetches:    w.networkFetches.Load(),
		MapUpdates:        w.mapUpdates.Load(),
		MapDecodeFailures: w.mapDecodeFails.Load(),
		DelegatedFetches:  w.delegatedFetches.Load(),
		NegativeHits:      w.negativeHits.Load(),
		NegativeEvictions: w.negativeEvictions.Load(),
	}
}

// RegisterTelemetry indexes the worker's counters — and its cache storage's
// eviction counter — in reg, qualified by name (e.g. "sw.site.example").
// The registry reads the same storage Stats() snapshots.
func (w *Worker) RegisterTelemetry(reg *telemetry.Registry, name string) {
	reg.RegisterCounter(name+".local_hits", &w.localHits)
	reg.RegisterCounter(name+".network_fetches", &w.networkFetches)
	reg.RegisterCounter(name+".map_updates", &w.mapUpdates)
	reg.RegisterCounter(name+".map_decode_failures", &w.mapDecodeFails)
	reg.RegisterCounter(name+".delegated_fetches", &w.delegatedFetches)
	reg.RegisterCounter(name+".negative_hits", &w.negativeHits)
	reg.RegisterCounter(name+".negative_evictions", &w.negativeEvictions)
	reg.RegisterCounter(name+".cache.evictions", &w.cache.evictions)
}

// ETagMap returns the most recently delivered map.
func (w *Worker) ETagMap() core.ETagMap { return w.etags }

// OnNavigationResponse processes the response to a navigation (base HTML)
// request: it captures the proactively delivered ETag map. A navigation
// without the header leaves the previous map in place — the worker degrades
// to plain pass-through behaviour on servers that don't speak CacheCatalyst.
// A header that fails to decode (corrupted or truncated in transit) is
// treated exactly like an absent one, and counted, so a mangled map can
// never fail the load.
func (w *Worker) OnNavigationResponse(resp *httpcache.Response) {
	cfg := resp.Header.Get(core.HeaderName)
	if cfg == "" {
		return
	}
	m, err := core.DecodeMap(cfg)
	if err != nil {
		w.mapDecodeFails.Add(1)
		return
	}
	w.etags = m
	w.mapUpdates.Add(1)

	// Flip-to-200 invalidation: the proactive map names every resource
	// the current page version references, so a remembered 404 whose path
	// now appears in the map is provably wrong — drop it immediately
	// rather than waiting out the TTL.
	if w.negative != nil && len(w.negative) > 0 {
		w.negMu.Lock()
		for path := range w.negative {
			if _, ok := m[path]; ok {
				delete(w.negative, path)
				w.negativeEvictions.Add(1)
			}
		}
		w.negMu.Unlock()
	}
}

// HandleFetch answers a subresource request locally when possible.
// ok=true delivers the response with zero network round trips; ok=false
// means the caller must fetch from the network (and should then call
// OnSubresourceResponse with the result).
func (w *Worker) HandleFetch(path string) (*httpcache.Response, bool) {
	return w.HandleFetchContext(context.Background(), path)
}

// HandleFetchContext is HandleFetch recording the fetch decision on the
// request trace carried by ctx: "sw-hit" for a request the worker (or a
// coexisting site worker) answered without the network, "network" for one
// it forwards.
func (w *Worker) HandleFetchContext(ctx context.Context, path string) (*httpcache.Response, bool) {
	if w.site != nil {
		if resp, handled := w.site.HandleFetch(path); handled {
			w.delegatedFetches.Add(1)
			telemetry.Event(ctx, "sw-hit", path+" (site worker)")
			return resp, true
		}
	}
	if resp, ok := w.negativeLookup(path); ok {
		w.negativeHits.Add(1)
		telemetry.Event(ctx, "sw-negative", path)
		return resp, true
	}
	cached, ok := w.cache.Match(path)
	if ok {
		var cachedTag etag.Tag
		if t, has := cached.ETag(); has {
			cachedTag = t
		}
		if core.Decide(w.etags, path, cachedTag) == core.ServeFromCache {
			w.localHits.Add(1)
			telemetry.Event(ctx, "sw-hit", path)
			if w.recorder != nil {
				w.recorder.Record(path, int64(len(cached.Body)))
			}
			return cached, true
		}
	}
	w.networkFetches.Add(1)
	telemetry.Event(ctx, "network", path)
	return nil, false
}

// negativeLookup answers path from the negative cache if an unexpired 404
// is remembered; an expired entry is deleted and the lookup falls through.
func (w *Worker) negativeLookup(path string) (*httpcache.Response, bool) {
	if w.negative == nil {
		return nil, false
	}
	w.negMu.Lock()
	defer w.negMu.Unlock()
	expiry, ok := w.negative[path]
	if !ok {
		return nil, false
	}
	if !w.negClock.Now().Before(expiry) {
		delete(w.negative, path)
		return nil, false
	}
	return &httpcache.Response{
		StatusCode: http.StatusNotFound,
		Header:     http.Header{"Content-Type": {"text/plain; charset=utf-8"}},
		Body:       []byte("404 page not found\n"),
	}, true
}

// OnSubresourceResponse stores a network-fetched subresource under its new
// entity tag so subsequent visits can serve it locally. With negative
// caching enabled, a complete 404 is remembered for the TTL and any
// response proving the resource exists clears the remembered 404.
func (w *Worker) OnSubresourceResponse(path string, resp *httpcache.Response) {
	if w.recorder != nil {
		w.recorder.Record(path, int64(len(resp.Body)))
	}
	if w.negative != nil {
		w.negMu.Lock()
		switch {
		case resp.StatusCode == http.StatusNotFound && !resp.Truncated:
			w.negative[path] = w.negClock.Now().Add(w.negTTL)
		case resp.StatusCode == http.StatusOK:
			if _, ok := w.negative[path]; ok {
				delete(w.negative, path)
				w.negativeEvictions.Add(1)
			}
		}
		w.negMu.Unlock()
	}
	w.cache.Put(path, resp)
}

// Registry tracks installed workers per origin, emulating the
// domain-specificity of real Service Workers: a worker only ever intercepts
// requests for the origin that registered it.
type Registry struct {
	workers   map[string]*Worker
	telemetry *telemetry.Registry
	recorder  AccessRecorder
	negTTL    time.Duration
	negClock  vclock.Clock
}

// NewRegistry returns an empty registry (a browser profile with no
// installed workers).
func NewRegistry() *Registry {
	return &Registry{workers: make(map[string]*Worker)}
}

// WithTelemetry makes Register wire every newly installed worker's counters
// into reg under "sw.<origin>". Already-installed workers are unaffected.
func (r *Registry) WithTelemetry(reg *telemetry.Registry) *Registry {
	r.telemetry = reg
	return r
}

// WithRecorder makes Register attach rec to every newly installed worker.
// Already-installed workers are unaffected.
func (r *Registry) WithRecorder(rec AccessRecorder) *Registry {
	r.recorder = rec
	return r
}

// WithNegativeCache makes Register enable negative caching (ttl, clock)
// on every newly installed worker. Already-installed workers are
// unaffected. A non-positive ttl disables the feature.
func (r *Registry) WithNegativeCache(ttl time.Duration, clock vclock.Clock) *Registry {
	r.negTTL = ttl
	r.negClock = clock
	return r
}

// Lookup returns the worker installed for origin, if any.
func (r *Registry) Lookup(origin string) (*Worker, bool) {
	w, ok := r.workers[origin]
	return w, ok
}

// Register installs a worker for origin if none exists and returns the
// origin's worker. Registration is idempotent, like repeated
// serviceWorker.register calls in a real browser.
func (r *Registry) Register(origin string) *Worker {
	if w, ok := r.workers[origin]; ok {
		return w
	}
	w := NewWorker()
	if r.telemetry != nil {
		w.RegisterTelemetry(r.telemetry, "sw."+origin)
	}
	if r.recorder != nil {
		w.WithRecorder(r.recorder)
	}
	if r.negTTL > 0 && r.negClock != nil {
		w.WithNegativeCache(r.negTTL, r.negClock)
	}
	r.workers[origin] = w
	return w
}

// Unregister removes origin's worker and its cache.
func (r *Registry) Unregister(origin string) {
	delete(r.workers, origin)
}

// Len returns the number of installed workers.
func (r *Registry) Len() int { return len(r.workers) }
