package sw

import (
	"net/http"
	"testing"
	"time"

	"cachecatalyst/internal/core"
	"cachecatalyst/internal/httpcache"
	"cachecatalyst/internal/vclock"
)

func swResp404() *httpcache.Response {
	return &httpcache.Response{
		StatusCode: http.StatusNotFound,
		Header:     http.Header{"Content-Type": {"text/plain"}},
		Body:       []byte("404 page not found\n"),
	}
}

func newNegativeWorker(ttl time.Duration) (*Worker, *vclock.Virtual) {
	clk := vclock.NewVirtual(vclock.Epoch)
	return NewWorker().WithNegativeCache(ttl, clk), clk
}

func TestWorkerNegativeHitWithinTTL(t *testing.T) {
	w, clk := newNegativeWorker(time.Hour)
	w.OnSubresourceResponse("/missing.png", swResp404())

	clk.Advance(30 * time.Minute)
	got, ok := w.HandleFetch("/missing.png")
	if !ok || got.StatusCode != http.StatusNotFound {
		t.Fatalf("HandleFetch = %+v, %v; want local 404", got, ok)
	}
	st := w.Stats()
	if st.NegativeHits != 1 || st.NetworkFetches != 0 {
		t.Fatalf("stats = %+v, want 1 negative hit and no network", st)
	}
}

func TestWorkerNegativeExpiry(t *testing.T) {
	w, clk := newNegativeWorker(time.Hour)
	w.OnSubresourceResponse("/missing.png", swResp404())

	clk.Advance(2 * time.Hour)
	if _, ok := w.HandleFetch("/missing.png"); ok {
		t.Fatal("expired negative entry still served locally")
	}
	st := w.Stats()
	if st.NegativeHits != 0 || st.NetworkFetches != 1 {
		t.Fatalf("stats = %+v, want network fetch after expiry", st)
	}
}

// TestWorkerNegativeFlipVia200: a 200 arriving for a remembered-404 path
// (e.g. after the expiry forced a refetch, or any other code path that
// reaches the origin) must clear the negative entry immediately.
func TestWorkerNegativeFlipVia200(t *testing.T) {
	w, _ := newNegativeWorker(time.Hour)
	w.OnSubresourceResponse("/late.css", swResp404())

	w.OnSubresourceResponse("/late.css", resp("v1", "body { }", nil))
	got, ok := w.HandleFetch("/late.css")
	if ok && got.StatusCode == http.StatusNotFound {
		t.Fatal("negative entry survived a 200 response")
	}
	if st := w.Stats(); st.NegativeEvictions != 1 {
		t.Fatalf("NegativeEvictions = %d, want 1", st.NegativeEvictions)
	}
}

// TestWorkerNegativeFlipViaMap is the catalyst-flavoured flip-to-200
// invalidation: a navigation's proactive ETag map lists every live
// resource, so a remembered 404 whose path appears in the map is provably
// wrong and must be dropped — even though its TTL has not expired.
func TestWorkerNegativeFlipViaMap(t *testing.T) {
	w, clk := newNegativeWorker(time.Hour)
	w.OnSubresourceResponse("/late.css", swResp404())
	w.OnSubresourceResponse("/other.png", swResp404())

	clk.Advance(5 * time.Minute)
	w.OnNavigationResponse(navResp(core.ETagMap{"/late.css": {Opaque: "v1"}}))

	// /late.css was invalidated by the map; the next fetch goes to the
	// network and gets the real resource.
	if _, ok := w.HandleFetch("/late.css"); ok {
		t.Fatal("map-listed negative entry still served locally")
	}
	// /other.png is not in the map, so its negative entry stands.
	if got, ok := w.HandleFetch("/other.png"); !ok || got.StatusCode != http.StatusNotFound {
		t.Fatalf("unrelated negative entry lost: %+v, %v", got, ok)
	}
	st := w.Stats()
	if st.NegativeEvictions != 1 {
		t.Fatalf("NegativeEvictions = %d, want 1", st.NegativeEvictions)
	}
}

func TestWorkerNegativeIgnoresTruncated404(t *testing.T) {
	w, _ := newNegativeWorker(time.Hour)
	tr := swResp404()
	tr.Truncated = true
	w.OnSubresourceResponse("/x", tr)
	if _, ok := w.HandleFetch("/x"); ok {
		t.Fatal("truncated 404 was negative-cached")
	}
}

func TestWorkerNegativeDisabledByDefault(t *testing.T) {
	w := NewWorker()
	w.OnSubresourceResponse("/missing.png", swResp404())
	if _, ok := w.HandleFetch("/missing.png"); ok {
		t.Fatal("negative caching active without WithNegativeCache")
	}
}

func TestRegistryWiresNegativeCache(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	r := NewRegistry().WithNegativeCache(time.Hour, clk)
	w := r.Register("site.example")
	w.OnSubresourceResponse("/missing.png", swResp404())
	if _, ok := w.HandleFetch("/missing.png"); !ok {
		t.Fatal("registry-installed worker did not negative-cache")
	}
}
