package sw

import (
	"fmt"
	"net/http"
	"testing"
	"testing/quick"

	"cachecatalyst/internal/core"
	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/httpcache"
)

func resp(tag string, body string, extra map[string]string) *httpcache.Response {
	h := make(http.Header)
	if tag != "" {
		h.Set("Etag", etag.Tag{Opaque: tag}.String())
	}
	for k, v := range extra {
		h.Set(k, v)
	}
	return &httpcache.Response{StatusCode: 200, Header: h, Body: []byte(body)}
}

func navResp(m core.ETagMap) *httpcache.Response {
	h := make(http.Header)
	h.Set(core.HeaderName, m.Encode())
	return &httpcache.Response{StatusCode: 200, Header: h, Body: []byte("<html>")}
}

func TestCacheStoragePutMatch(t *testing.T) {
	c := NewCacheStorage()
	c.Put("/a", resp("v1", "body", nil))
	got, ok := c.Match("/a")
	if !ok || string(got.Body) != "body" {
		t.Fatalf("Match = %+v, %v", got, ok)
	}
	if c.Len() != 1 || c.Bytes() != 4 {
		t.Fatalf("Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
}

func TestCacheStorageRejectsNoStore(t *testing.T) {
	c := NewCacheStorage()
	c.Put("/a", resp("v1", "x", map[string]string{"Cache-Control": "no-store"}))
	if _, ok := c.Match("/a"); ok {
		t.Fatal("no-store response cached")
	}
}

func TestCacheStorageRejectsNon200(t *testing.T) {
	c := NewCacheStorage()
	r := resp("", "missing", nil)
	r.StatusCode = 404
	c.Put("/a", r)
	if c.Len() != 0 {
		t.Fatal("404 cached")
	}
}

func TestCacheStorageRejectsTruncated(t *testing.T) {
	c := NewCacheStorage()
	r := resp("v1", "half-a-bo", nil)
	r.Truncated = true
	c.Put("/a", r)
	if c.Len() != 0 {
		t.Fatal("truncated body cached")
	}
	// A truncated replacement must not clobber the intact entry either.
	c.Put("/b", resp("v1", "whole", nil))
	c.Put("/b", r)
	if got, ok := c.Match("/b"); !ok || string(got.Body) != "whole" {
		t.Fatal("truncated body replaced an intact entry")
	}
}

func TestCacheStorageReplaceAccountsBytes(t *testing.T) {
	c := NewCacheStorage()
	c.Put("/a", resp("v1", "0123456789", nil))
	c.Put("/a", resp("v2", "xyz", nil))
	if c.Bytes() != 3 || c.Len() != 1 {
		t.Fatalf("Bytes=%d Len=%d", c.Bytes(), c.Len())
	}
}

func TestCacheStorageDeleteAndClear(t *testing.T) {
	c := NewCacheStorage()
	c.Put("/a", resp("v1", "aa", nil))
	c.Put("/b", resp("v1", "bb", nil))
	c.Delete("/a")
	if _, ok := c.Match("/a"); ok || c.Bytes() != 2 {
		t.Fatalf("delete failed: bytes=%d", c.Bytes())
	}
	c.Delete("/ghost")
	c.Clear()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("clear failed")
	}
}

func TestCacheStoragePutClones(t *testing.T) {
	c := NewCacheStorage()
	r := resp("v1", "orig", nil)
	c.Put("/a", r)
	r.Body[0] = 'X'
	got, _ := c.Match("/a")
	if string(got.Body) != "orig" {
		t.Fatal("stored response aliases caller's body")
	}
}

func TestWorkerNavigationCapturesMap(t *testing.T) {
	w := NewWorker()
	m := core.ETagMap{"/a.css": {Opaque: "v1"}}
	w.OnNavigationResponse(navResp(m))
	if got, ok := w.ETagMap().Get("/a.css"); !ok || got.Opaque != "v1" {
		t.Fatalf("map not captured: %v %v", got, ok)
	}
	if w.Stats().MapUpdates != 1 {
		t.Fatal("MapUpdates not counted")
	}
}

func TestWorkerNavigationWithoutHeaderKeepsMap(t *testing.T) {
	w := NewWorker()
	w.OnNavigationResponse(navResp(core.ETagMap{"/a": {Opaque: "1"}}))
	plain := &httpcache.Response{StatusCode: 200, Header: make(http.Header)}
	w.OnNavigationResponse(plain)
	if _, ok := w.ETagMap().Get("/a"); !ok {
		t.Fatal("map dropped on header-less navigation")
	}
}

func TestWorkerNavigationBadMapIgnored(t *testing.T) {
	w := NewWorker()
	w.OnNavigationResponse(navResp(core.ETagMap{"/a": {Opaque: "1"}}))
	bad := &httpcache.Response{StatusCode: 200, Header: make(http.Header)}
	bad.Header.Set(core.HeaderName, "{malformed")
	w.OnNavigationResponse(bad)
	if _, ok := w.ETagMap().Get("/a"); !ok {
		t.Fatal("malformed map clobbered a good one")
	}
	if w.Stats().MapDecodeFailures != 1 {
		t.Fatalf("decode failures = %d, want 1", w.Stats().MapDecodeFailures)
	}
}

func TestWorkerDegradesWhenEveryMapIsCorrupt(t *testing.T) {
	// A worker that has only ever seen corrupted maps behaves exactly
	// like conventional caching: fetches go to the network, loads never
	// fail, and the cached-but-unproven copy is not served.
	w := NewWorker()
	bad := &httpcache.Response{StatusCode: 200, Header: make(http.Header)}
	bad.Header.Set(core.HeaderName, `{"/a.css":"\"v1`) // truncated mid-value
	w.OnNavigationResponse(bad)
	w.OnSubresourceResponse("/a.css", resp("v1", "css", nil))
	if _, ok := w.HandleFetch("/a.css"); ok {
		t.Fatal("served from cache with no decodable map ever delivered")
	}
	if st := w.Stats(); st.MapDecodeFailures != 1 || st.MapUpdates != 0 || st.NetworkFetches != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWorkerServesMatchingCachedResource(t *testing.T) {
	w := NewWorker()
	w.OnSubresourceResponse("/a.css", resp("v1", "css-body", nil))
	w.OnNavigationResponse(navResp(core.ETagMap{"/a.css": {Opaque: "v1"}}))

	got, ok := w.HandleFetch("/a.css")
	if !ok || string(got.Body) != "css-body" {
		t.Fatalf("HandleFetch = %+v, %v", got, ok)
	}
	if w.Stats().LocalHits != 1 || w.Stats().NetworkFetches != 0 {
		t.Fatalf("stats = %+v", w.Stats())
	}
}

func TestWorkerFetchesOnTagMismatch(t *testing.T) {
	w := NewWorker()
	w.OnSubresourceResponse("/a.css", resp("v1", "old", nil))
	w.OnNavigationResponse(navResp(core.ETagMap{"/a.css": {Opaque: "v2"}}))

	if _, ok := w.HandleFetch("/a.css"); ok {
		t.Fatal("stale resource served from cache")
	}
	// Network returns the new version; worker must re-cache it.
	w.OnSubresourceResponse("/a.css", resp("v2", "new", nil))
	got, ok := w.HandleFetch("/a.css")
	if !ok || string(got.Body) != "new" {
		t.Fatalf("updated resource not served: %+v, %v", got, ok)
	}
}

func TestWorkerFetchesWhenMapLacksPath(t *testing.T) {
	w := NewWorker()
	w.OnSubresourceResponse("/dyn.js", resp("v1", "x", nil))
	w.OnNavigationResponse(navResp(core.ETagMap{})) // empty map
	if _, ok := w.HandleFetch("/dyn.js"); ok {
		t.Fatal("served resource not covered by the map")
	}
}

func TestWorkerFetchesOnCacheMiss(t *testing.T) {
	w := NewWorker()
	w.OnNavigationResponse(navResp(core.ETagMap{"/a.css": {Opaque: "v1"}}))
	if _, ok := w.HandleFetch("/a.css"); ok {
		t.Fatal("served a resource that was never cached")
	}
	if w.Stats().NetworkFetches != 1 {
		t.Fatalf("stats = %+v", w.Stats())
	}
}

func TestWorkerCachedResponseWithoutETagNotServed(t *testing.T) {
	w := NewWorker()
	w.OnSubresourceResponse("/a.css", resp("", "untagged", nil))
	w.OnNavigationResponse(navResp(core.ETagMap{"/a.css": {Opaque: "v1"}}))
	if _, ok := w.HandleFetch("/a.css"); ok {
		t.Fatal("served an untagged cached response")
	}
}

func TestBoundedCacheStorageEvictsLRU(t *testing.T) {
	c := NewBoundedCacheStorage(25)
	c.Put("/a", resp("v1", "0123456789", nil)) // 10 bytes
	c.Put("/b", resp("v1", "0123456789", nil)) // 20 bytes
	// Touch /a so /b becomes least recently used.
	if _, ok := c.Match("/a"); !ok {
		t.Fatal("miss")
	}
	c.Put("/c", resp("v1", "0123456789", nil)) // 30 > 25 → evict /b
	if _, ok := c.Match("/b"); ok {
		t.Fatal("LRU entry survived quota eviction")
	}
	if _, ok := c.Match("/a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d", c.Evictions())
	}
	if c.Bytes() > 25 {
		t.Fatalf("bytes = %d over quota", c.Bytes())
	}
}

func TestBoundedCacheStorageReplaceWithinQuota(t *testing.T) {
	c := NewBoundedCacheStorage(15)
	c.Put("/a", resp("v1", "0123456789", nil))
	c.Put("/a", resp("v2", "01234", nil)) // replacement shrinks usage
	if c.Bytes() != 5 || c.Len() != 1 || c.Evictions() != 0 {
		t.Fatalf("bytes=%d len=%d evictions=%d", c.Bytes(), c.Len(), c.Evictions())
	}
}

func TestBoundedCacheStorageSingleHugeEntry(t *testing.T) {
	c := NewBoundedCacheStorage(5)
	c.Put("/big", resp("v1", "0123456789", nil))
	// The entry exceeds the quota on its own; it must be evicted (the
	// store never sits above quota) without corrupting accounting.
	if c.Bytes() > 5 {
		t.Fatalf("bytes = %d over quota", c.Bytes())
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d", c.Len())
	}
	// Store still usable afterwards.
	c.Put("/ok", resp("v1", "abc", nil))
	if _, ok := c.Match("/ok"); !ok {
		t.Fatal("store broken after over-quota put")
	}
}

type fakeSiteWorker struct {
	claims map[string]*httpcache.Response
}

func (f *fakeSiteWorker) HandleFetch(path string) (*httpcache.Response, bool) {
	r, ok := f.claims[path]
	return r, ok
}

func TestCoexistenceWithSiteWorker(t *testing.T) {
	offline := resp("", "offline page", nil)
	site := &fakeSiteWorker{claims: map[string]*httpcache.Response{"/app-shell": offline}}
	w := NewWorker().WithSiteWorker(site)
	w.OnSubresourceResponse("/app-shell", resp("v1", "cached", nil))
	w.OnNavigationResponse(navResp(core.ETagMap{"/app-shell": {Opaque: "v1"}}))

	got, ok := w.HandleFetch("/app-shell")
	if !ok || string(got.Body) != "offline page" {
		t.Fatalf("site worker not consulted first: %+v", got)
	}
	if w.Stats().DelegatedFetches != 1 {
		t.Fatalf("stats = %+v", w.Stats())
	}
	// Paths the site worker does not claim fall through to catalyst logic.
	w.OnSubresourceResponse("/a.css", resp("v1", "css", nil))
	w.OnNavigationResponse(navResp(core.ETagMap{"/a.css": {Opaque: "v1"}}))
	if _, ok := w.HandleFetch("/a.css"); !ok {
		t.Fatal("catalyst logic bypassed for unclaimed path")
	}
}

func TestRegistryDomainScoping(t *testing.T) {
	r := NewRegistry()
	wa := r.Register("a.example")
	wb := r.Register("b.example")
	if wa == wb {
		t.Fatal("origins share a worker")
	}
	wa.OnSubresourceResponse("/x", resp("v1", "a-body", nil))
	if _, ok := wb.Cache().Match("/x"); ok {
		t.Fatal("cache leaked across origins")
	}
	if again := r.Register("a.example"); again != wa {
		t.Fatal("re-registration replaced the worker")
	}
	if _, ok := r.Lookup("a.example"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Lookup("nope.example"); ok {
		t.Fatal("lookup invented a worker")
	}
	r.Unregister("a.example")
	if _, ok := r.Lookup("a.example"); ok || r.Len() != 1 {
		t.Fatal("unregister failed")
	}
}

// Property (the paper's safety invariant): the worker never serves a body
// whose ETag differs from the proactively delivered current tag.
func TestWorkerNeverServesStaleQuick(t *testing.T) {
	f := func(vCached, vCurrent uint8) bool {
		w := NewWorker()
		path := "/r.js"
		cachedTag := etag.ForVersion(path, uint64(vCached))
		currentTag := etag.ForVersion(path, uint64(vCurrent))
		body := fmt.Sprintf("body-%d", vCached)
		h := make(http.Header)
		h.Set("Etag", cachedTag.String())
		w.OnSubresourceResponse(path, &httpcache.Response{StatusCode: 200, Header: h, Body: []byte(body)})
		w.OnNavigationResponse(navResp(core.ETagMap{path: currentTag}))
		got, ok := w.HandleFetch(path)
		if vCached == vCurrent {
			return ok && string(got.Body) == body
		}
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
