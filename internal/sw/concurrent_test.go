package sw

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestCacheStorageConcurrentWorkers drives one bounded CacheStorage from
// many goroutines — the shape of several Service Worker contexts sharing
// one origin cache — and audits quota and byte accounting afterwards. Run
// under -race this pins the cachestore rebase.
func TestCacheStorageConcurrentWorkers(t *testing.T) {
	t.Parallel()
	const quota = 4 << 10
	c := NewBoundedCacheStorage(quota)

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := strings.Repeat("b", 128)
			for i := 0; i < 400; i++ {
				path := fmt.Sprintf("/asset-%d", (w*17+i*3)%80)
				switch i % 4 {
				case 0, 1:
					c.Put(path, resp(fmt.Sprintf("t%d", i), body, nil))
				case 2:
					if got, ok := c.Match(path); ok && len(got.Body) == 0 {
						t.Error("matched an empty body")
						return
					}
				case 3:
					if i%40 == 3 {
						c.Delete(path)
					} else {
						c.Match(path)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Bytes() > quota {
		t.Fatalf("storage over quota after stress: %d bytes", c.Bytes())
	}
	var sum int64
	for _, k := range c.Keys() {
		if r, ok := c.Match(k); ok {
			sum += int64(len(r.Body))
		}
	}
	if sum != c.Bytes() {
		t.Fatalf("byte accounting drifted: bodies sum to %d, Bytes() = %d", sum, c.Bytes())
	}
	if c.Evictions() == 0 {
		t.Fatal("bounded storage never evicted under stress")
	}
	if c.Len() == 0 {
		t.Fatal("storage empty after stress")
	}
}
