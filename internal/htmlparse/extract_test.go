package htmlparse

import (
	"strings"
	"testing"
)

func resourceURLs(rs []Resource) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.URL
	}
	return out
}

func find(rs []Resource, url string) (Resource, bool) {
	for _, r := range rs {
		if r.URL == url {
			return r, true
		}
	}
	return Resource{}, false
}

func TestExtractFigure1Example(t *testing.T) {
	// The exact shape of Figure 1: a page linking a stylesheet and a script.
	src := `<!DOCTYPE html><html><head>
		<link rel="stylesheet" href="a.css">
		<script src="b.js"></script>
	</head><body></body></html>`
	rs := ExtractFromHTML(src)
	if len(rs) != 2 {
		t.Fatalf("got %v", resourceURLs(rs))
	}
	if rs[0].URL != "a.css" || rs[0].Kind != KindStylesheet {
		t.Errorf("rs[0] = %+v", rs[0])
	}
	if rs[1].URL != "b.js" || rs[1].Kind != KindScript {
		t.Errorf("rs[1] = %+v", rs[1])
	}
}

func TestExtractKinds(t *testing.T) {
	src := `
	<link rel="stylesheet" href="s.css">
	<link rel="icon" href="fav.ico">
	<link rel="preload" href="f.woff2" as="font">
	<link rel="preload" href="p.js" as="script">
	<link rel="prefetch" href="next.html">
	<script src="m.js" defer></script>
	<img src="i.png">
	<video src="v.mp4" poster="p.jpg"></video>
	<audio src="a.mp3"></audio>
	<iframe src="frame.html"></iframe>
	<embed src="e.swf">
	<object data="o.bin"></object>
	<input type="image" src="btn.png">
	<track src="subs.vtt">
	`
	rs := ExtractFromHTML(src)
	wantKinds := map[string]ResourceKind{
		"s.css": KindStylesheet, "fav.ico": KindImage, "f.woff2": KindFont,
		"p.js": KindScript, "next.html": KindFetch, "m.js": KindScript,
		"i.png": KindImage, "v.mp4": KindMedia, "p.jpg": KindImage,
		"a.mp3": KindMedia, "frame.html": KindDocument, "e.swf": KindFetch,
		"o.bin": KindFetch, "btn.png": KindImage, "subs.vtt": KindFetch,
	}
	if len(rs) != len(wantKinds) {
		t.Fatalf("got %d resources %v, want %d", len(rs), resourceURLs(rs), len(wantKinds))
	}
	for url, kind := range wantKinds {
		r, ok := find(rs, url)
		if !ok {
			t.Errorf("missing %q", url)
			continue
		}
		if r.Kind != kind {
			t.Errorf("%q kind = %v, want %v", url, r.Kind, kind)
		}
	}
}

func TestExtractAsyncFlags(t *testing.T) {
	src := `<script src="sync.js"></script>
	<script src="async.js" async></script>
	<script src="defer.js" defer></script>
	<link rel="prefetch" href="pf.css">
	<link rel="stylesheet" href="block.css">`
	rs := ExtractFromHTML(src)
	wantAsync := map[string]bool{
		"sync.js": false, "async.js": true, "defer.js": true,
		"pf.css": true, "block.css": false,
	}
	for url, async := range wantAsync {
		r, ok := find(rs, url)
		if !ok {
			t.Fatalf("missing %q", url)
		}
		if r.Async != async {
			t.Errorf("%q async = %v, want %v", url, r.Async, async)
		}
	}
}

func TestExtractSrcset(t *testing.T) {
	src := `<img src="base.jpg" srcset="small.jpg 480w, big.jpg 1080w">
	<picture><source srcset="webp.webp 1x" type="image/webp"><img src="fall.jpg"></picture>`
	rs := ExtractFromHTML(src)
	for _, want := range []string{"base.jpg", "small.jpg", "big.jpg", "webp.webp", "fall.jpg"} {
		if _, ok := find(rs, want); !ok {
			t.Errorf("missing %q in %v", want, resourceURLs(rs))
		}
	}
	if r, _ := find(rs, "webp.webp"); r.Kind != KindImage {
		t.Errorf("picture>source kind = %v, want image", r.Kind)
	}
}

func TestParseSrcset(t *testing.T) {
	got := ParseSrcset(" a.jpg 1x , b.jpg 2x, c.jpg ")
	if strings.Join(got, "|") != "a.jpg|b.jpg|c.jpg" {
		t.Fatalf("got %v", got)
	}
	if got := ParseSrcset(""); got != nil {
		t.Fatalf("empty srcset: %v", got)
	}
}

func TestExtractInlineStyleAndStyleElement(t *testing.T) {
	src := `<div style="background: url(bg.png)"></div>
	<style>@import "extra.css"; .x { background: url("hero.jpg"); }</style>`
	rs := ExtractFromHTML(src)
	if r, ok := find(rs, "bg.png"); !ok || r.Kind != KindImage {
		t.Errorf("inline style url missing/wrong: %+v %v", r, ok)
	}
	if r, ok := find(rs, "extra.css"); !ok || r.Kind != KindStylesheet {
		t.Errorf("@import in <style> missing/wrong: %+v %v", r, ok)
	}
	if _, ok := find(rs, "hero.jpg"); !ok {
		t.Error("url() in <style> missing")
	}
}

func TestExtractSkipsNonFetchable(t *testing.T) {
	src := `<img src="data:image/png;base64,AAA=">
	<a href="#top">x</a>
	<script src=""></script>
	<img src="real.png">`
	rs := ExtractFromHTML(src)
	if len(rs) != 1 || rs[0].URL != "real.png" {
		t.Fatalf("got %v", resourceURLs(rs))
	}
}

func TestExtractSkipsCommentedMarkup(t *testing.T) {
	src := `<!-- <img src="ghost.png"> --><img src="real.png">`
	rs := ExtractFromHTML(src)
	if len(rs) != 1 || rs[0].URL != "real.png" {
		t.Fatalf("got %v", resourceURLs(rs))
	}
}

func TestExtractSkipsScriptBodyMarkup(t *testing.T) {
	// Markup inside a script body is data, not DOM: a naive regex extractor
	// would wrongly pick up ghost.png.
	src := `<script>document.write('<img src="ghost.png">')</script><img src="real.png">`
	rs := ExtractFromHTML(src)
	if len(rs) != 1 || rs[0].URL != "real.png" {
		t.Fatalf("got %v", resourceURLs(rs))
	}
}

func TestExtractDocumentOrder(t *testing.T) {
	src := `<link rel=stylesheet href=1.css><script src=2.js></script><img src=3.png>`
	rs := ExtractFromHTML(src)
	if strings.Join(resourceURLs(rs), "|") != "1.css|2.js|3.png" {
		t.Fatalf("order: %v", resourceURLs(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Offset <= rs[i-1].Offset {
			t.Fatalf("offsets not monotone: %+v", rs)
		}
	}
}

func TestExtractEntityDecodedURL(t *testing.T) {
	rs := ExtractFromHTML(`<img src="/i?a=1&amp;b=2">`)
	if len(rs) != 1 || rs[0].URL != "/i?a=1&b=2" {
		t.Fatalf("got %v", resourceURLs(rs))
	}
}

func TestExtractDuplicatesRetained(t *testing.T) {
	rs := ExtractFromHTML(`<img src="x.png"><img src="x.png">`)
	if len(rs) != 2 {
		t.Fatalf("duplicates collapsed: %v", resourceURLs(rs))
	}
}

func TestResourceKindStrings(t *testing.T) {
	for k, want := range map[ResourceKind]string{
		KindStylesheet: "stylesheet", KindScript: "script", KindImage: "image",
		KindFont: "font", KindMedia: "media", KindDocument: "document",
		KindFetch: "fetch", ResourceKind(42): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("ResourceKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindForPreloadAs(t *testing.T) {
	for as, want := range map[string]ResourceKind{
		"style": KindStylesheet, "script": KindScript, "image": KindImage,
		"font": KindFont, "video": KindMedia, "audio": KindMedia,
		"document": KindDocument, "": KindFetch, "weird": KindFetch,
	} {
		if got := kindForPreloadAs(as); got != want {
			t.Errorf("kindForPreloadAs(%q) = %v, want %v", as, got, want)
		}
	}
}

func TestBaseHref(t *testing.T) {
	if href, ok := BaseHref(Parse(`<head><base href="/v2/"><base href="/ignored/"></head>`)); !ok || href != "/v2/" {
		t.Fatalf("BaseHref = %q, %v", href, ok)
	}
	if _, ok := BaseHref(Parse(`<head></head>`)); ok {
		t.Fatal("invented a base")
	}
	if _, ok := BaseHref(Parse(`<base href="  ">`)); ok {
		t.Fatal("blank base accepted")
	}
	if href, ok := BaseHref(Parse(`<base target="_blank" href=" /x/ ">`)); !ok || href != "/x/" {
		t.Fatalf("BaseHref = %q, %v", href, ok)
	}
}
