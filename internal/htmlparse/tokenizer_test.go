package htmlparse

import (
	"testing"
	"testing/quick"
)

func collect(t *testing.T, input string) []Token {
	t.Helper()
	z := NewTokenizer(input)
	var out []Token
	for {
		tok, ok := z.Next()
		if !ok {
			return out
		}
		out = append(out, tok)
	}
}

func TestTokenizeSimpleDocument(t *testing.T) {
	toks := collect(t, `<!DOCTYPE html><html><head><title>Hi</title></head><body>text</body></html>`)
	types := []TokenType{
		DoctypeToken, StartTagToken, StartTagToken, StartTagToken,
		TextToken, EndTagToken, EndTagToken, StartTagToken, TextToken,
		EndTagToken, EndTagToken,
	}
	if len(toks) != len(types) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(types), toks)
	}
	for i, want := range types {
		if toks[i].Type != want {
			t.Errorf("token %d: type %v, want %v (%+v)", i, toks[i].Type, want, toks[i])
		}
	}
}

func TestTokenizeAttributes(t *testing.T) {
	toks := collect(t, `<img src="a.png" alt='the image' width=10 hidden>`)
	if len(toks) != 1 || toks[0].Type != StartTagToken || toks[0].Data != "img" {
		t.Fatalf("got %+v", toks)
	}
	checks := map[string]string{"src": "a.png", "alt": "the image", "width": "10", "hidden": ""}
	for name, want := range checks {
		got, ok := toks[0].Attr(name)
		if !ok || got != want {
			t.Errorf("attr %q = %q, %v; want %q", name, got, ok, want)
		}
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := collect(t, `<br/><img src="x"/>`)
	if len(toks) != 2 {
		t.Fatalf("got %+v", toks)
	}
	for _, tok := range toks {
		if tok.Type != SelfClosingTagToken {
			t.Errorf("token %+v should be self-closing", tok)
		}
	}
}

func TestTokenizeUppercaseNormalized(t *testing.T) {
	toks := collect(t, `<IMG SRC="A.png">`)
	if toks[0].Data != "img" {
		t.Errorf("tag name not lowercased: %q", toks[0].Data)
	}
	if v, ok := toks[0].Attr("src"); !ok || v != "A.png" {
		t.Errorf("attr name not lowercased or value altered: %q %v", v, ok)
	}
}

func TestScriptContentIsRawText(t *testing.T) {
	toks := collect(t, `<script>if (a < b) { x["<div>"] = 1; }</script><p>after</p>`)
	if len(toks) < 4 {
		t.Fatalf("got %+v", toks)
	}
	if toks[1].Type != TextToken || toks[1].Data != `if (a < b) { x["<div>"] = 1; }` {
		t.Fatalf("script body mangled: %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Fatalf("script close tag missing: %+v", toks[2])
	}
}

func TestStyleContentIsRawText(t *testing.T) {
	toks := collect(t, `<style>a > b { color: red }</style>`)
	if toks[1].Data != "a > b { color: red }" {
		t.Fatalf("style body mangled: %q", toks[1].Data)
	}
}

func TestRawTextCaseInsensitiveClose(t *testing.T) {
	toks := collect(t, `<script>x</SCRIPT>done`)
	if len(toks) != 4 || toks[2].Type != EndTagToken {
		t.Fatalf("got %+v", toks)
	}
}

func TestUnterminatedRawText(t *testing.T) {
	toks := collect(t, `<script>never closed`)
	if len(toks) != 2 || toks[1].Data != "never closed" {
		t.Fatalf("got %+v", toks)
	}
}

func TestComments(t *testing.T) {
	toks := collect(t, `a<!-- <img src="not-a-resource"> -->b`)
	if len(toks) != 3 {
		t.Fatalf("got %+v", toks)
	}
	if toks[1].Type != CommentToken || toks[1].Data != ` <img src="not-a-resource"> ` {
		t.Fatalf("comment mangled: %+v", toks[1])
	}
}

func TestUnterminatedComment(t *testing.T) {
	toks := collect(t, `<!-- open forever`)
	if len(toks) != 1 || toks[0].Type != CommentToken {
		t.Fatalf("got %+v", toks)
	}
}

func TestLoneAngleIsText(t *testing.T) {
	toks := collect(t, `1 < 2 and <3`)
	for _, tok := range toks {
		if tok.Type != TextToken {
			t.Fatalf("lone < should lex as text: %+v", toks)
		}
	}
}

func TestEntityDecodingInTextAndAttrs(t *testing.T) {
	toks := collect(t, `<a href="/x?a=1&amp;b=2">AT&amp;T &#169; &#x1F600;</a>`)
	if v, _ := toks[0].Attr("href"); v != "/x?a=1&b=2" {
		t.Errorf("attr entity: %q", v)
	}
	if toks[1].Data != "AT&T © \U0001F600" {
		t.Errorf("text entity: %q", toks[1].Data)
	}
}

func TestDecodeEntities(t *testing.T) {
	tests := []struct{ in, want string }{
		{"plain", "plain"},
		{"&amp;", "&"},
		{"&lt;x&gt;", "<x>"},
		{"&quot;q&quot;", `"q"`},
		{"&#65;", "A"},
		{"&#x41;", "A"},
		{"&unknown;", "&unknown;"},
		{"&", "&"},
		{"&;", "&;"},
		{"a&amp", "a&amp"}, // no trailing semicolon: left alone
		{"&#0;", "&#0;"},   // NUL rejected
	}
	for _, tt := range tests {
		if got := DecodeEntities(tt.in); got != tt.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTokenizerProgressQuick(t *testing.T) {
	// Property: the tokenizer terminates and offsets are monotone
	// non-decreasing within input bounds for arbitrary input.
	f := func(input string) bool {
		z := NewTokenizer(input)
		last := -1
		for steps := 0; ; steps++ {
			if steps > len(input)+16 {
				return false // failed to make progress
			}
			tok, ok := z.Next()
			if !ok {
				return true
			}
			if tok.Offset < last || tok.Offset >= len(input) && len(input) > 0 {
				return false
			}
			last = tok.Offset
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAttrMissing(t *testing.T) {
	toks := collect(t, `<img src="x">`)
	if _, ok := toks[0].Attr("nope"); ok {
		t.Error("missing attribute reported present")
	}
}

func TestTokenTypeStrings(t *testing.T) {
	for tt, want := range map[TokenType]string{
		TextToken: "Text", StartTagToken: "StartTag", EndTagToken: "EndTag",
		SelfClosingTagToken: "SelfClosingTag", CommentToken: "Comment",
		DoctypeToken: "Doctype", TokenType(99): "Unknown",
	} {
		if got := tt.String(); got != want {
			t.Errorf("TokenType(%d).String() = %q, want %q", tt, got, want)
		}
	}
}
