package htmlparse

import "strings"

// NodeType identifies the kind of a DOM node.
type NodeType int

// Node types.
const (
	DocumentNode NodeType = iota
	ElementNode
	TextNode
	CommentNode
	DoctypeNode
)

// Node is a node of the parsed document tree.
type Node struct {
	Type NodeType
	// Data is the lowercased tag name for elements, or content for text,
	// comments and doctypes.
	Data   string
	Attrs  []Attr
	Parent *Node
	Kids   []*Node
	// Offset is the byte offset of the node's first byte in the source.
	Offset int
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Text returns the concatenated text content of the subtree.
func (n *Node) Text() string {
	var b strings.Builder
	n.Walk(func(c *Node) bool {
		if c.Type == TextNode {
			b.WriteString(c.Data)
		}
		return true
	})
	return b.String()
}

// Walk visits the subtree rooted at n in document order. Returning false
// from fn prunes the subtree below the visited node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Kids {
		c.Walk(fn)
	}
}

// Find returns the first element with the given tag name in document order,
// or nil.
func (n *Node) Find(tag string) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if found != nil {
			return false
		}
		if c.Type == ElementNode && c.Data == tag {
			found = c
			return false
		}
		return true
	})
	return found
}

// FindAll returns every element with the given tag name in document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.Data == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// voidElements never have children; their start tag implies the whole
// element (WHATWG HTML §13.1.2).
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// impliedEndTags maps an opening tag to the set of open tags it implicitly
// closes — the small part of the HTML5 "in body" insertion mode that matters
// for getting link extraction parents right.
var impliedEndTags = map[string]map[string]bool{
	"li":     {"li": true},
	"p":      {"p": true},
	"tr":     {"tr": true, "td": true, "th": true},
	"td":     {"td": true, "th": true},
	"th":     {"td": true, "th": true},
	"option": {"option": true},
	"dt":     {"dt": true, "dd": true},
	"dd":     {"dt": true, "dd": true},
}

// Parse builds a document tree from HTML source. It never fails; malformed
// input produces the best-effort tree a browser's error recovery would.
func Parse(input string) *Node {
	doc := &Node{Type: DocumentNode}
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	z := NewTokenizer(input)
	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		switch tok.Type {
		case TextToken:
			if tok.Data == "" {
				continue
			}
			top().append(&Node{Type: TextNode, Data: tok.Data, Offset: tok.Offset})
		case CommentToken:
			top().append(&Node{Type: CommentNode, Data: tok.Data, Offset: tok.Offset})
		case DoctypeToken:
			top().append(&Node{Type: DoctypeNode, Data: tok.Data, Offset: tok.Offset})
		case StartTagToken, SelfClosingTagToken:
			if closes := impliedEndTags[tok.Data]; closes != nil {
				if len(stack) > 1 && closes[top().Data] {
					stack = stack[:len(stack)-1]
				}
			}
			el := &Node{Type: ElementNode, Data: tok.Data, Attrs: tok.Attrs, Offset: tok.Offset}
			top().append(el)
			if tok.Type == StartTagToken && !voidElements[tok.Data] {
				stack = append(stack, el)
			}
		case EndTagToken:
			// Pop to the matching open element if one exists; otherwise
			// ignore the stray end tag.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Data == tok.Data {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return doc
}

func (n *Node) append(c *Node) {
	c.Parent = n
	n.Kids = append(n.Kids, c)
}

// Render serializes the tree back to HTML. Attribute values are quoted and
// minimally escaped; raw-text element content is emitted verbatim. Rendering
// a parsed document yields equivalent markup (not byte-identical: the
// serializer normalizes quoting and case).
func Render(n *Node) string {
	var b strings.Builder
	renderNode(&b, n)
	return b.String()
}

func renderNode(b *strings.Builder, n *Node) {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Kids {
			renderNode(b, c)
		}
	case DoctypeNode:
		b.WriteString("<!")
		b.WriteString(n.Data)
		b.WriteString(">")
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case TextNode:
		if n.Parent != nil && n.Parent.Type == ElementNode && rawTextElements[n.Parent.Data] {
			b.WriteString(n.Data)
			return
		}
		b.WriteString(escapeText(n.Data))
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Data)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			if a.Value != "" {
				b.WriteString(`="`)
				b.WriteString(escapeAttr(a.Value))
				b.WriteByte('"')
			}
		}
		b.WriteByte('>')
		if voidElements[n.Data] {
			return
		}
		for _, c := range n.Kids {
			renderNode(b, c)
		}
		b.WriteString("</")
		b.WriteString(n.Data)
		b.WriteByte('>')
	}
}

func escapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return s
}

func escapeAttr(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, `"`, "&quot;")
	return s
}
