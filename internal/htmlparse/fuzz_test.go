package htmlparse

import "testing"

// FuzzParse checks the parser's total-ness: arbitrary bytes must never
// panic, loop, or produce an inconsistent tree. Run with `go test -fuzz
// FuzzParse ./internal/htmlparse` to explore; the seed corpus runs on every
// plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<",
		"<>",
		"<html><head></head><body></body></html>",
		`<img src="a.png" srcset="b.png 2x">`,
		`<script>if (a<b) {}</script>`,
		"<!-- unterminated",
		"<!doctype html><p>one<p>two",
		`<a href="/x?a=1&amp;b=2">t</a>`,
		"</stray><li>x<li>y",
		`<style>@import "x.css"; .a{background:url(b.png)}</style>`,
		"<div style=\"background:url('q.jpg')\">",
		"\x00\xff<weird\x80attr=\xfe>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		doc := Parse(input)
		// Tree invariants: parent links consistent, extraction total.
		doc.Walk(func(n *Node) bool {
			for _, c := range n.Kids {
				if c.Parent != n {
					t.Fatal("parent link broken")
				}
			}
			return true
		})
		for _, r := range ExtractResources(doc) {
			if r.URL == "" {
				t.Fatal("empty resource URL extracted")
			}
		}
		// Rendering must reach a fixed point within one round trip.
		once := Render(doc)
		twice := Render(Parse(once))
		if Render(Parse(twice)) != twice {
			t.Fatalf("render not stable for %q", input)
		}
	})
}

// FuzzDecodeEntities checks the entity decoder never panics and never
// grows its input (decoding only shrinks or preserves length for ASCII
// escapes; multi-byte runes can grow individual replacements but the
// decoder must still terminate).
func FuzzDecodeEntities(f *testing.F) {
	for _, s := range []string{"", "&amp;", "&#65;", "&#x41;", "&bogus;", "&&&", "&#xffffffff;"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		_ = DecodeEntities(input)
	})
}
