package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBuildsTree(t *testing.T) {
	doc := Parse(`<html><head><title>T</title></head><body><p>hi</p></body></html>`)
	html := doc.Find("html")
	if html == nil {
		t.Fatal("no html element")
	}
	if doc.Find("title") == nil || doc.Find("title").Text() != "T" {
		t.Fatal("title missing or wrong")
	}
	p := doc.Find("p")
	if p == nil || p.Text() != "hi" {
		t.Fatal("p missing or wrong")
	}
	if p.Parent == nil || p.Parent.Data != "body" {
		t.Fatalf("p parent = %+v", p.Parent)
	}
}

func TestVoidElementsHaveNoChildren(t *testing.T) {
	doc := Parse(`<body><img src="a.png"><p>text</p></body>`)
	img := doc.Find("img")
	if img == nil {
		t.Fatal("img not found")
	}
	if len(img.Kids) != 0 {
		t.Fatalf("void element got children: %+v", img.Kids)
	}
	// p must be a sibling of img, not its child.
	p := doc.Find("p")
	if p.Parent.Data != "body" {
		t.Fatalf("p parent = %q", p.Parent.Data)
	}
}

func TestImpliedEndTags(t *testing.T) {
	doc := Parse(`<ul><li>one<li>two<li>three</ul>`)
	lis := doc.FindAll("li")
	if len(lis) != 3 {
		t.Fatalf("got %d li elements", len(lis))
	}
	for i, li := range lis {
		if li.Parent.Data != "ul" {
			t.Errorf("li %d nested inside %q, want ul", i, li.Parent.Data)
		}
	}
}

func TestImpliedParagraphClose(t *testing.T) {
	doc := Parse(`<body><p>one<p>two</body>`)
	ps := doc.FindAll("p")
	if len(ps) != 2 {
		t.Fatalf("got %d p elements", len(ps))
	}
	if ps[1].Parent.Data != "body" {
		t.Errorf("second p nested in %q", ps[1].Parent.Data)
	}
}

func TestStrayEndTagIgnored(t *testing.T) {
	doc := Parse(`<body></div><p>ok</p></body>`)
	if doc.Find("p") == nil {
		t.Fatal("parser derailed by stray end tag")
	}
}

func TestMisnestedTagsRecovered(t *testing.T) {
	doc := Parse(`<b><i>x</b></i>`)
	if doc.Find("b") == nil || doc.Find("i") == nil {
		t.Fatal("misnesting dropped elements")
	}
}

func TestFindAllDocumentOrder(t *testing.T) {
	doc := Parse(`<div id=a><div id=b></div></div><div id=c></div>`)
	divs := doc.FindAll("div")
	ids := make([]string, len(divs))
	for i, d := range divs {
		ids[i], _ = d.Attr("id")
	}
	if strings.Join(ids, "") != "abc" {
		t.Fatalf("document order violated: %v", ids)
	}
}

func TestWalkPrune(t *testing.T) {
	doc := Parse(`<div><span>inner</span></div><p>after</p>`)
	var visited []string
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			visited = append(visited, n.Data)
			return n.Data != "div" // prune below div
		}
		return true
	})
	if strings.Join(visited, ",") != "div,p" {
		t.Fatalf("prune failed: %v", visited)
	}
}

func TestRenderRoundTripPreservesStructure(t *testing.T) {
	src := `<!DOCTYPE html><html><head><link rel="stylesheet" href="a.css"></head>` +
		`<body class="x"><p>hi &amp; bye</p><script>let a = 1 < 2;</script></body></html>`
	doc := Parse(src)
	out := Render(doc)
	doc2 := Parse(out)
	// Structure must survive a second parse.
	if Render(doc2) != out {
		t.Fatalf("render not a fixed point:\n1: %s\n2: %s", out, Render(doc2))
	}
	if v, _ := doc2.Find("link").Attr("href"); v != "a.css" {
		t.Fatal("attribute lost in round trip")
	}
	if doc2.Find("script").Text() != "let a = 1 < 2;" {
		t.Fatalf("script body mangled: %q", doc2.Find("script").Text())
	}
	if doc2.Find("p").Text() != "hi & bye" {
		t.Fatalf("text mangled: %q", doc2.Find("p").Text())
	}
}

func TestRenderEscapesAttrAndText(t *testing.T) {
	n := &Node{Type: ElementNode, Data: "a", Attrs: []Attr{{Name: "href", Value: `x"y&z`}}}
	n.append(&Node{Type: TextNode, Data: "1 < 2 & 3"})
	out := Render(n)
	want := `<a href="x&quot;y&amp;z">1 &lt; 2 &amp; 3</a>`
	if out != want {
		t.Fatalf("Render = %q, want %q", out, want)
	}
}

// Property: Parse never panics and Render(Parse(x)) is parseable with a
// stable re-render (idempotence of the normal form) for arbitrary input.
func TestParseRenderStableQuick(t *testing.T) {
	f := func(input string) bool {
		doc := Parse(input)
		once := Render(doc)
		twice := Render(Parse(once))
		return twice == Render(Parse(twice))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every node except the root has a parent, and parent/child links
// are consistent.
func TestTreeLinksConsistentQuick(t *testing.T) {
	f := func(input string) bool {
		doc := Parse(input)
		okAll := true
		doc.Walk(func(n *Node) bool {
			for _, c := range n.Kids {
				if c.Parent != n {
					okAll = false
				}
			}
			return true
		})
		return okAll && doc.Parent == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
