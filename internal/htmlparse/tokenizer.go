// Package htmlparse implements an HTML tokenizer, a lightweight tree
// builder, and resource-link extraction.
//
// The paper's modified Caddy "traverses the entire DOM and extracts all
// resource links" before serving a page. The standard library has no HTML
// parser, so this package implements the subset of the WHATWG HTML parsing
// algorithm that matters for that job: tag/attribute tokenization with
// entity decoding, raw-text elements (script, style, title, textarea),
// comments, doctypes, and a forgiving tree builder. It is not a rendering
// engine; it is a faithful link harvester.
package htmlparse

import (
	"strconv"
	"strings"
)

// TokenType identifies a lexical token.
type TokenType int

// Token types produced by the Tokenizer.
const (
	TextToken TokenType = iota
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
)

func (t TokenType) String() string {
	switch t {
	case TextToken:
		return "Text"
	case StartTagToken:
		return "StartTag"
	case EndTagToken:
		return "EndTag"
	case SelfClosingTagToken:
		return "SelfClosingTag"
	case CommentToken:
		return "Comment"
	case DoctypeToken:
		return "Doctype"
	}
	return "Unknown"
}

// Attr is a single name/value attribute pair. Name is lowercased; Value has
// character references decoded.
type Attr struct {
	Name  string
	Value string
}

// Token is a lexical token. For tag tokens, Data is the lowercased tag name;
// for text and comments it is the (decoded, for text) content.
type Token struct {
	Type  TokenType
	Data  string
	Attrs []Attr
	// Offset is the byte offset of the token's first byte in the input.
	Offset int
}

// Attr returns the value of the named attribute and whether it is present.
func (t *Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// rawTextElements switch the tokenizer into raw-text mode: their content is
// opaque until the matching close tag.
var rawTextElements = map[string]bool{
	"script":   true,
	"style":    true,
	"textarea": true,
	"title":    true,
	"xmp":      true,
	"noscript": true,
}

// Tokenizer yields tokens from HTML input. It never fails: malformed markup
// degrades to text, the same recovery browsers perform.
type Tokenizer struct {
	in  string
	pos int
	// pending raw text element name; when set, the next token is the raw
	// content up to its close tag.
	rawTag string
}

// NewTokenizer returns a tokenizer over the given input.
func NewTokenizer(input string) *Tokenizer {
	return &Tokenizer{in: input}
}

// Next returns the next token. The boolean is false at end of input.
func (z *Tokenizer) Next() (Token, bool) {
	if z.pos >= len(z.in) {
		return Token{}, false
	}
	if z.rawTag != "" {
		return z.nextRawText(), true
	}
	if z.in[z.pos] == '<' {
		if tok, ok := z.nextMarkup(); ok {
			return tok, true
		}
		// A lone '<' that opens nothing is text.
	}
	return z.nextText(), true
}

func (z *Tokenizer) nextText() Token {
	start := z.pos
	z.pos++ // consume at least one byte to guarantee progress
	for z.pos < len(z.in) && z.in[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Data: DecodeEntities(z.in[start:z.pos]), Offset: start}
}

// nextRawText consumes content of a raw-text element up to (not including)
// its case-insensitive close tag.
func (z *Tokenizer) nextRawText() Token {
	start := z.pos
	closeTag := "</" + z.rawTag
	idx := indexFold(z.in[z.pos:], closeTag)
	z.rawTag = ""
	if idx < 0 {
		z.pos = len(z.in)
		return Token{Type: TextToken, Data: z.in[start:], Offset: start}
	}
	z.pos += idx
	return Token{Type: TextToken, Data: z.in[start : start+idx], Offset: start}
}

// indexFold is a case-insensitive strings.Index for ASCII needles.
func indexFold(haystack, needle string) int {
	n := len(needle)
	if n == 0 {
		return 0
	}
	for i := 0; i+n <= len(haystack); i++ {
		if strings.EqualFold(haystack[i:i+n], needle) {
			return i
		}
	}
	return -1
}

func (z *Tokenizer) nextMarkup() (Token, bool) {
	start := z.pos
	rest := z.in[z.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		return z.nextComment(start), true
	case strings.HasPrefix(rest, "<!"):
		return z.nextDoctype(start), true
	case strings.HasPrefix(rest, "</"):
		return z.nextEndTag(start)
	default:
		return z.nextStartTag(start)
	}
}

func (z *Tokenizer) nextComment(start int) Token {
	end := strings.Index(z.in[start+4:], "-->")
	if end < 0 {
		data := z.in[start+4:]
		z.pos = len(z.in)
		return Token{Type: CommentToken, Data: data, Offset: start}
	}
	z.pos = start + 4 + end + 3
	return Token{Type: CommentToken, Data: z.in[start+4 : start+4+end], Offset: start}
}

func (z *Tokenizer) nextDoctype(start int) Token {
	end := strings.IndexByte(z.in[start:], '>')
	if end < 0 {
		data := z.in[start+2:]
		z.pos = len(z.in)
		return Token{Type: DoctypeToken, Data: strings.TrimSpace(data), Offset: start}
	}
	z.pos = start + end + 1
	return Token{Type: DoctypeToken, Data: strings.TrimSpace(z.in[start+2 : start+end]), Offset: start}
}

func (z *Tokenizer) nextEndTag(start int) (Token, bool) {
	p := start + 2
	name, p := scanTagName(z.in, p)
	if name == "" {
		return Token{}, false
	}
	// Skip to '>'.
	for p < len(z.in) && z.in[p] != '>' {
		p++
	}
	if p < len(z.in) {
		p++
	}
	z.pos = p
	return Token{Type: EndTagToken, Data: name, Offset: start}, true
}

func (z *Tokenizer) nextStartTag(start int) (Token, bool) {
	p := start + 1
	name, p := scanTagName(z.in, p)
	if name == "" {
		return Token{}, false
	}
	tok := Token{Type: StartTagToken, Data: name, Offset: start}
	for {
		p = skipSpace(z.in, p)
		if p >= len(z.in) {
			break
		}
		if z.in[p] == '>' {
			p++
			break
		}
		if strings.HasPrefix(z.in[p:], "/>") {
			tok.Type = SelfClosingTagToken
			p += 2
			break
		}
		if z.in[p] == '/' {
			p++
			continue
		}
		var attr Attr
		var ok bool
		attr, p, ok = scanAttr(z.in, p)
		if !ok {
			p++ // guarantee progress on junk
			continue
		}
		tok.Attrs = append(tok.Attrs, attr)
	}
	z.pos = p
	if tok.Type == StartTagToken && rawTextElements[tok.Data] {
		z.rawTag = tok.Data
	}
	return tok, true
}

// scanTagName reads an ASCII tag name starting at p; an empty name means the
// '<' did not open a tag.
func scanTagName(s string, p int) (string, int) {
	start := p
	for p < len(s) {
		c := s[p]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == ':' {
			p++
			continue
		}
		break
	}
	if p == start {
		return "", start
	}
	first := s[start]
	if !(first >= 'a' && first <= 'z' || first >= 'A' && first <= 'Z') {
		return "", start
	}
	return strings.ToLower(s[start:p]), p
}

func skipSpace(s string, p int) int {
	for p < len(s) {
		switch s[p] {
		case ' ', '\t', '\n', '\r', '\f':
			p++
		default:
			return p
		}
	}
	return p
}

// scanAttr reads one attribute at p: name, name=value, name="value",
// name='value'.
func scanAttr(s string, p int) (Attr, int, bool) {
	start := p
	for p < len(s) {
		c := s[p]
		if c == '=' || c == '>' || c == '/' || c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' {
			break
		}
		p++
	}
	if p == start {
		return Attr{}, p, false
	}
	attr := Attr{Name: strings.ToLower(s[start:p])}
	q := skipSpace(s, p)
	if q >= len(s) || s[q] != '=' {
		return attr, p, true // valueless attribute
	}
	p = skipSpace(s, q+1)
	if p >= len(s) {
		return attr, p, true
	}
	switch s[p] {
	case '"', '\'':
		quote := s[p]
		p++
		vstart := p
		for p < len(s) && s[p] != quote {
			p++
		}
		attr.Value = DecodeEntities(s[vstart:p])
		if p < len(s) {
			p++
		}
	default:
		vstart := p
		for p < len(s) {
			c := s[p]
			if c == '>' || c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' {
				break
			}
			p++
		}
		attr.Value = DecodeEntities(s[vstart:p])
	}
	return attr, p, true
}

// namedEntities covers the references that occur in URLs and ordinary prose.
var namedEntities = map[string]rune{
	"amp":  '&',
	"lt":   '<',
	"gt":   '>',
	"quot": '"',
	"apos": '\'',
	"nbsp": ' ',
}

// DecodeEntities resolves character references (&amp;, &#38;, &#x26;) in s.
// Unrecognized references are left verbatim, as browsers do.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	i := amp
	for i < len(s) {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		r, width := decodeOneEntity(s[i:])
		if width == 0 {
			b.WriteByte('&')
			i++
			continue
		}
		b.WriteRune(r)
		i += width
	}
	return b.String()
}

// decodeOneEntity decodes the reference at the start of s (which begins with
// '&'); width 0 means no valid reference.
func decodeOneEntity(s string) (rune, int) {
	semi := strings.IndexByte(s, ';')
	if semi < 0 || semi == 1 || semi > 32 {
		return 0, 0
	}
	body := s[1:semi]
	if body[0] == '#' {
		num := body[1:]
		base := 10
		if len(num) > 1 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		n, err := strconv.ParseUint(num, base, 32)
		if err != nil || n == 0 || n > 0x10FFFF {
			return 0, 0
		}
		return rune(n), semi + 1
	}
	if r, ok := namedEntities[body]; ok {
		return r, semi + 1
	}
	return 0, 0
}
