package htmlparse

import (
	"strings"

	"cachecatalyst/internal/cssparse"
)

// ResourceKind classifies a discovered subresource; the browser emulator
// uses it for scheduling and the corpus generator for size distributions.
type ResourceKind int

// Resource kinds.
const (
	KindStylesheet ResourceKind = iota
	KindScript
	KindImage
	KindFont
	KindMedia
	KindDocument // iframes
	KindFetch    // preload/prefetch of unknown type, object/embed
)

func (k ResourceKind) String() string {
	switch k {
	case KindStylesheet:
		return "stylesheet"
	case KindScript:
		return "script"
	case KindImage:
		return "image"
	case KindFont:
		return "font"
	case KindMedia:
		return "media"
	case KindDocument:
		return "document"
	case KindFetch:
		return "fetch"
	}
	return "unknown"
}

// Resource is a subresource reference discovered in a document.
type Resource struct {
	// URL as written in the document (unresolved).
	URL  string
	Kind ResourceKind
	// Async is true for resources that do not block the parser
	// (async/defer scripts, prefetch links).
	Async bool
	// Offset of the referencing attribute's element in the source.
	Offset int
}

// ExtractResources walks a parsed document and returns every subresource a
// browser would fetch, in document order, excluding non-fetchable URLs
// (data:, javascript:, fragments). Duplicate URLs are retained; callers that
// need a set deduplicate (a browser coalesces identical in-flight fetches,
// which internal/browser models).
func ExtractResources(doc *Node) []Resource {
	var out []Resource
	add := func(url string, kind ResourceKind, async bool, off int) {
		if !cssparse.IsFetchable(url) {
			return
		}
		out = append(out, Resource{URL: strings.TrimSpace(url), Kind: kind, Async: async, Offset: off})
	}

	doc.Walk(func(n *Node) bool {
		if n.Type != ElementNode {
			return true
		}
		// Inline style attributes can reference images/fonts.
		if style, ok := n.Attr("style"); ok {
			for _, ref := range cssparse.ExtractRefs(style) {
				add(ref.URL, KindImage, false, n.Offset)
			}
		}
		switch n.Data {
		case "script":
			if src, ok := n.Attr("src"); ok {
				_, async := n.Attr("async")
				_, deferred := n.Attr("defer")
				add(src, KindScript, async || deferred, n.Offset)
			}
		case "link":
			rel, _ := n.Attr("rel")
			href, ok := n.Attr("href")
			if !ok {
				return true
			}
			switch {
			case relContains(rel, "stylesheet"):
				add(href, KindStylesheet, false, n.Offset)
			case relContains(rel, "icon"), relContains(rel, "apple-touch-icon"):
				add(href, KindImage, true, n.Offset)
			case relContains(rel, "preload"), relContains(rel, "modulepreload"):
				as, _ := n.Attr("as")
				add(href, kindForPreloadAs(as), false, n.Offset)
			case relContains(rel, "prefetch"):
				add(href, KindFetch, true, n.Offset)
			}
		case "img":
			if src, ok := n.Attr("src"); ok {
				add(src, KindImage, false, n.Offset)
			}
			if srcset, ok := n.Attr("srcset"); ok {
				for _, u := range ParseSrcset(srcset) {
					add(u, KindImage, false, n.Offset)
				}
			}
		case "source":
			kind := KindMedia
			if n.Parent != nil && n.Parent.Data == "picture" {
				kind = KindImage
			}
			if src, ok := n.Attr("src"); ok {
				add(src, kind, false, n.Offset)
			}
			if srcset, ok := n.Attr("srcset"); ok {
				for _, u := range ParseSrcset(srcset) {
					add(u, kind, false, n.Offset)
				}
			}
		case "video":
			if src, ok := n.Attr("src"); ok {
				add(src, KindMedia, true, n.Offset)
			}
			if poster, ok := n.Attr("poster"); ok {
				add(poster, KindImage, false, n.Offset)
			}
		case "audio":
			if src, ok := n.Attr("src"); ok {
				add(src, KindMedia, true, n.Offset)
			}
		case "iframe":
			if src, ok := n.Attr("src"); ok {
				add(src, KindDocument, false, n.Offset)
			}
		case "embed":
			if src, ok := n.Attr("src"); ok {
				add(src, KindFetch, false, n.Offset)
			}
		case "object":
			if data, ok := n.Attr("data"); ok {
				add(data, KindFetch, false, n.Offset)
			}
		case "input":
			if typ, _ := n.Attr("type"); strings.EqualFold(typ, "image") {
				if src, ok := n.Attr("src"); ok {
					add(src, KindImage, false, n.Offset)
				}
			}
		case "track":
			if src, ok := n.Attr("src"); ok {
				add(src, KindFetch, true, n.Offset)
			}
		case "style":
			for _, ref := range cssparse.ExtractRefs(n.Text()) {
				kind := KindImage
				if ref.Import {
					kind = KindStylesheet
				}
				add(ref.URL, kind, false, n.Offset)
			}
		}
		return true
	})
	return out
}

// ExtractFromHTML is the convenience composition Parse + ExtractResources.
func ExtractFromHTML(src string) []Resource {
	return ExtractResources(Parse(src))
}

// BaseHref returns the document's <base href> value, if present — the
// reference that relative URLs resolve against instead of the document URL
// (only the first base element counts, per WHATWG HTML).
func BaseHref(doc *Node) (string, bool) {
	base := doc.Find("base")
	if base == nil {
		return "", false
	}
	href, ok := base.Attr("href")
	if !ok || strings.TrimSpace(href) == "" {
		return "", false
	}
	return strings.TrimSpace(href), true
}

// relContains reports whether the space-separated rel attribute value
// contains the given link type (case-insensitively).
func relContains(rel, typ string) bool {
	for _, f := range strings.Fields(rel) {
		if strings.EqualFold(f, typ) {
			return true
		}
	}
	return false
}

func kindForPreloadAs(as string) ResourceKind {
	switch strings.ToLower(as) {
	case "style":
		return KindStylesheet
	case "script":
		return KindScript
	case "image":
		return KindImage
	case "font":
		return KindFont
	case "video", "audio":
		return KindMedia
	case "document":
		return KindDocument
	default:
		return KindFetch
	}
}

// ParseSrcset returns the URLs of an image srcset attribute
// ("a.jpg 1x, b.jpg 2x" → ["a.jpg", "b.jpg"]). Width/density descriptors
// are discarded; the emulated browser fetches one candidate, but the ETag
// map must cover all of them.
func ParseSrcset(v string) []string {
	var out []string
	for _, candidate := range strings.Split(v, ",") {
		fields := strings.Fields(candidate)
		if len(fields) == 0 {
			continue
		}
		out = append(out, fields[0])
	}
	return out
}
