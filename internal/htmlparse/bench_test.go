package htmlparse

import (
	"strings"
	"testing"
)

// benchDoc is a realistic homepage-sized document (~30 KB, ~60 resources).
func benchDoc() string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><title>bench</title>`)
	for i := 0; i < 6; i++ {
		b.WriteString(`<link rel="stylesheet" href="/css/s` + string(rune('0'+i)) + `.css">`)
	}
	for i := 0; i < 18; i++ {
		b.WriteString(`<script src="/js/a` + string(rune('a'+i)) + `.js" defer></script>`)
	}
	b.WriteString(`</head><body>`)
	for i := 0; i < 36; i++ {
		b.WriteString(`<div class="card" style="background: url(/img/bg.png)"><img src="/img/i` +
			string(rune('a'+i%26)) + `.png" srcset="/img/s.png 1x, /img/l.png 2x" alt="x"><p>`)
		for j := 0; j < 20; j++ {
			b.WriteString("lorem ipsum dolor sit amet consectetur ")
		}
		b.WriteString(`</p></div>`)
	}
	b.WriteString(`</body></html>`)
	return b.String()
}

func BenchmarkTokenize(b *testing.B) {
	doc := benchDoc()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := NewTokenizer(doc)
		for {
			if _, ok := z.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkParse(b *testing.B) {
	doc := benchDoc()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Parse(doc)
	}
}

func BenchmarkExtractResources(b *testing.B) {
	doc := benchDoc()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := ExtractFromHTML(doc)
		if len(rs) == 0 {
			b.Fatal("no resources")
		}
	}
}
