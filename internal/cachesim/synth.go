package cachesim

import (
	"math"
	"math/rand"
)

// SynthOptions parameterizes Synthesize.
type SynthOptions struct {
	// Requests is the trace length. Zero selects 100000.
	Requests int
	// Objects is the catalog size. Zero selects 5000.
	Objects int
	// ZipfS is the Zipf popularity exponent (>1 required by Go's
	// generator); web request streams measure around 0.7–1.0, so the
	// default 1.08 is a mildly conservative skew. Zero selects 1.08.
	ZipfS float64
	// SizeMu and SizeSigma parameterize the lognormal object-size
	// distribution, in ln(bytes). The defaults (mu 9, sigma 1.5) give a
	// median around 8 KiB with a heavy tail into the megabytes — the
	// shape measured for web objects since the '90s. Zero selects the
	// defaults.
	SizeMu, SizeSigma float64
	// Seed makes the trace reproducible. Traces are deterministic for a
	// fixed seed.
	Seed int64
}

// Synthesize generates a synthetic web-like trace: object popularity is
// Zipf-distributed, object sizes are lognormal, and — crucially for
// separating size-aware policies from LRU — popularity and size are
// independent, so some popular objects are huge and some unpopular ones
// tiny. Each object's size is fixed across the trace.
func Synthesize(opts SynthOptions) []Request {
	if opts.Requests == 0 {
		opts.Requests = 100000
	}
	if opts.Objects == 0 {
		opts.Objects = 5000
	}
	if opts.ZipfS == 0 {
		opts.ZipfS = 1.08
	}
	if opts.SizeMu == 0 {
		opts.SizeMu = 9
	}
	if opts.SizeSigma == 0 {
		opts.SizeSigma = 1.5
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	zipf := rand.NewZipf(rng, opts.ZipfS, 1, uint64(opts.Objects-1))

	// Shuffle the rank→id mapping so object ids carry no popularity
	// signal, and draw each object's size once.
	ids := rng.Perm(opts.Objects)
	sizes := make([]int64, opts.Objects)
	for i := range sizes {
		s := int64(math.Exp(opts.SizeMu + opts.SizeSigma*rng.NormFloat64()))
		if s < 1 {
			s = 1
		}
		sizes[i] = s
	}

	reqs := make([]Request, opts.Requests)
	for i := range reqs {
		obj := ids[zipf.Uint64()]
		reqs[i] = Request{Time: int64(i), ID: uint64(obj) + 1, Size: sizes[obj]}
	}
	return reqs
}
