package cachesim

import (
	"strconv"

	"cachecatalyst/internal/cachestore"
)

// Result summarizes one policy's replay of a trace.
type Result struct {
	// Policy is the replayed policy's name.
	Policy string
	// Requests and Hits count trace requests and cache hits.
	Requests, Hits int64
	// BytesRequested and BytesHit are the corresponding byte totals.
	BytesRequested, BytesHit int64
	// Counters is the underlying store's counter snapshot; its
	// AdmissionRejects, VictimScans and Evictions fields show how the
	// policy earned its ratios.
	Counters cachestore.Counters
}

// OHR is the object hit ratio: hits per request.
func (r Result) OHR() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Requests)
}

// BHR is the byte hit ratio: bytes served from cache per byte requested.
func (r Result) BHR() float64 {
	if r.BytesRequested == 0 {
		return 0
	}
	return float64(r.BytesHit) / float64(r.BytesRequested)
}

// Replay runs the trace through a real cachestore.Store under the given
// byte budget and policy — the same code path production consumers use,
// not a reimplementation, so simulator numbers reflect the store's actual
// admission and victim-selection behaviour. Every miss inserts the object
// (subject to the policy's admission filter).
func Replay(trace []Request, budget int64, policy cachestore.Policy) Result {
	store := cachestore.New[int64](cachestore.Options[int64]{
		MaxBytes: budget,
		SizeOf:   func(_ string, size int64) int64 { return size },
		Policy:   policy,
	})
	res := Result{Policy: policy.Name()}
	for _, req := range trace {
		key := strconv.FormatUint(req.ID, 10)
		res.Requests++
		res.BytesRequested += req.Size
		if _, ok := store.Get(key); ok {
			res.Hits++
			res.BytesHit += req.Size
		} else {
			store.Put(key, req.Size)
		}
	}
	res.Counters = store.Counters()
	return res
}
