package cachesim

import (
	"os"
	"path/filepath"
	"testing"

	"cachecatalyst/internal/cachestore"
)

// TestCommittedTraces keeps the checked-in traces honest: both must
// parse, show reuse, and produce a non-degenerate optimal bound — the
// properties the make cachesim smoke target and the EXPERIMENTS.md table
// rely on.
func TestCommittedTraces(t *testing.T) {
	for _, name := range []string{"mini.trace", "harness_quick.trace"} {
		t.Run(name, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", name))
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer f.Close()
			trace, err := ParseTrace(f)
			if err != nil {
				t.Fatalf("ParseTrace: %v", err)
			}
			if len(trace) == 0 {
				t.Fatal("trace is empty")
			}
			var total int64
			ids := make(map[uint64]bool)
			for _, req := range trace {
				total += req.Size
				ids[req.ID] = true
			}
			if len(ids) >= len(trace) {
				t.Fatalf("no reuse: %d ids in %d requests", len(ids), len(trace))
			}
			budget := total / 3
			ub := UpperBound(trace, budget)
			if ub.OHR() <= 0 || ub.BHR() <= 0 {
				t.Fatalf("degenerate bound: OHR %v BHR %v", ub.OHR(), ub.BHR())
			}
			for _, p := range []cachestore.Policy{{}, {Eviction: cachestore.GDSF()}} {
				res := Replay(trace, budget, p)
				if res.OHR() > ub.OHR()+1e-9 || res.BHR() > ub.BHR()+1e-9 {
					t.Errorf("%s exceeds the offline bound", res.Policy)
				}
			}
		})
	}
}
