package cachesim

import (
	"strings"
	"testing"
)

// FuzzParseTrace asserts the parser never panics and that every accepted
// trace survives a write/parse round trip — the property cmd/cachesim and
// the harness exporter rely on.
func FuzzParseTrace(f *testing.F) {
	f.Add("0 1 100\n")
	f.Add("# comment\n\n5 2 2048\n5 1 100\n")
	f.Add("1 2\n")
	f.Add("x y z\n")
	f.Add("0 1 -5\n")
	f.Add("9223372036854775807 18446744073709551615 9223372036854775807\n")
	f.Add("0 1 10 trailing junk\n")
	f.Add("   3   4   5   \n")
	f.Fuzz(func(t *testing.T, input string) {
		reqs, err := ParseTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, r := range reqs {
			if r.Size <= 0 {
				t.Fatalf("request %d has non-positive size %d", i, r.Size)
			}
		}
		var sb strings.Builder
		if err := WriteTrace(&sb, reqs); err != nil {
			t.Fatalf("WriteTrace on accepted trace: %v", err)
		}
		again, err := ParseTrace(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse of written trace failed: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("round trip changed length %d -> %d", len(reqs), len(again))
		}
		for i := range reqs {
			if again[i] != reqs[i] {
				t.Fatalf("request %d changed in round trip: %+v -> %+v", i, reqs[i], again[i])
			}
		}
	})
}
