// Package cachesim replays request traces through internal/cachestore's
// cache policies and compares each policy's hit ratios against an offline
// upper bound, in the style of the webcachesim simulator that accompanies
// the AdaptSize/LRB line of caching papers.
//
// The trace format is webcachesim's: one request per line, three
// space-separated integer fields
//
//	time id size
//
// where time is any non-decreasing timestamp (the simulator only uses
// order), id names the object, and size is its byte size. Lines that are
// blank or start with '#' are skipped, so traces can carry provenance
// comments.
package cachesim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Request is one line of a trace: object id requested at time, size bytes.
type Request struct {
	Time int64
	ID   uint64
	Size int64
}

// ParseTrace reads a webcachesim-format trace. Malformed lines are
// reported with their line number rather than silently dropped — a
// truncated trace would otherwise bias every ratio computed from it.
func ParseTrace(r io.Reader) ([]Request, error) {
	var reqs []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("cachesim: line %d: want 3 fields (time id size), got %d", line, len(fields))
		}
		t, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cachesim: line %d: bad time %q: %v", line, fields[0], err)
		}
		id, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cachesim: line %d: bad id %q: %v", line, fields[1], err)
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cachesim: line %d: bad size %q: %v", line, fields[2], err)
		}
		if size <= 0 {
			return nil, fmt.Errorf("cachesim: line %d: size must be positive, got %d", line, size)
		}
		reqs = append(reqs, Request{Time: t, ID: id, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cachesim: %v", err)
	}
	return reqs, nil
}

// WriteTrace writes reqs in the webcachesim format ParseTrace reads.
func WriteTrace(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", r.Time, r.ID, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Recorder accumulates cache accesses into a trace. It exists so harness
// runs can export what the emulated browsers actually requested: the
// Service Worker layer calls Record for every subresource access, and the
// result replays through cmd/cachesim against any policy. Timestamps are
// the access sequence number — the simulator only needs order, and the
// harness's virtual clock rarely advances between subresource fetches of
// one page load.
//
// Recorder is safe for concurrent use; harness worlds fetch subresources
// from many emulated clients at once.
type Recorder struct {
	mu   sync.Mutex
	ids  map[string]uint64
	reqs []Request
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{ids: make(map[string]uint64)}
}

// Record appends one access. The string key (a URL path) is interned to a
// stable numeric id; size is the object's byte size.
func (r *Recorder) Record(key string, size int64) {
	if size <= 0 {
		size = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.ids[key]
	if !ok {
		id = uint64(len(r.ids)) + 1
		r.ids[key] = id
	}
	r.reqs = append(r.reqs, Request{Time: int64(len(r.reqs)), ID: id, Size: size})
}

// Trace returns a copy of the recorded accesses, in arrival order.
func (r *Recorder) Trace() []Request {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Request, len(r.reqs))
	copy(out, r.reqs)
	return out
}

// Len returns the number of recorded accesses.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.reqs)
}
