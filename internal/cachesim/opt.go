package cachesim

import "sort"

// UpperBound bounds what any caching policy — online or offline — could
// achieve on the trace under the byte budget, via the interval relaxation
// behind the FOO/PFOO family of offline bounds (Berger et al., "Practical
// bounds on optimal caching with variable object sizes").
//
// Every potential hit is a reuse interval: request j of object o is a hit
// only if o stayed cached since its previous request i, which occupies
// size(o) bytes for the gap of j-i request arrivals — a "footprint" of
// size×gap byte·requests. A cache of C bytes observed over T requests
// offers at most C×T byte·requests of occupancy, so any achievable hit
// set's footprints sum to at most C×T. Relaxing integrality (allowing
// fractional intervals) turns maximizing hits into a fractional knapsack,
// solved exactly by a greedy: cheapest footprint per hit first for the
// object hit ratio, shortest gap first (most bytes hit per footprint) for
// the byte hit ratio. Both bounds therefore dominate OPT; real policies
// reporting "% of optimal" against them are conservative.
type UpperBoundResult struct {
	// Requests and BytesRequested describe the trace.
	Requests, BytesRequested int64
	// MaxHits and MaxBytesHit bound the achievable hit totals; they are
	// fractional because the relaxation may take part of an interval.
	MaxHits, MaxBytesHit float64
}

// OHR is the upper bound on the object hit ratio.
func (u UpperBoundResult) OHR() float64 {
	if u.Requests == 0 {
		return 0
	}
	return u.MaxHits / float64(u.Requests)
}

// BHR is the upper bound on the byte hit ratio.
func (u UpperBoundResult) BHR() float64 {
	if u.BytesRequested == 0 {
		return 0
	}
	return u.MaxBytesHit / float64(u.BytesRequested)
}

type interval struct {
	gap  int64 // requests between reuse and previous occurrence
	size int64 // object size in bytes
}

// UpperBound computes the interval-relaxation bound for the trace under a
// byte budget. A non-positive budget admits no hits.
func UpperBound(trace []Request, budget int64) UpperBoundResult {
	res := UpperBoundResult{Requests: int64(len(trace))}
	last := make(map[uint64]int)
	var intervals []interval
	for i, req := range trace {
		res.BytesRequested += req.Size
		if j, ok := last[req.ID]; ok && req.Size <= budget {
			intervals = append(intervals, interval{gap: int64(i - j), size: req.Size})
		}
		last[req.ID] = i
	}
	if budget <= 0 || len(intervals) == 0 {
		return res
	}
	capacity := float64(budget) * float64(len(trace))

	// Object hit ratio: every interval is worth one hit, so take the
	// cheapest footprints first.
	sort.Slice(intervals, func(a, b int) bool {
		return intervals[a].size*intervals[a].gap < intervals[b].size*intervals[b].gap
	})
	var used float64
	for _, iv := range intervals {
		fp := float64(iv.size) * float64(iv.gap)
		if used+fp <= capacity {
			used += fp
			res.MaxHits++
			continue
		}
		res.MaxHits += (capacity - used) / fp
		break
	}

	// Byte hit ratio: an interval is worth its size in bytes, so value
	// per footprint is 1/gap — take the shortest gaps first.
	sort.Slice(intervals, func(a, b int) bool {
		return intervals[a].gap < intervals[b].gap
	})
	used = 0
	for _, iv := range intervals {
		fp := float64(iv.size) * float64(iv.gap)
		if used+fp <= capacity {
			used += fp
			res.MaxBytesHit += float64(iv.size)
			continue
		}
		res.MaxBytesHit += float64(iv.size) * (capacity - used) / fp
		break
	}
	return res
}
