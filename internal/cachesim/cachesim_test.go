package cachesim

import (
	"math"
	"strings"
	"testing"

	"cachecatalyst/internal/cachestore"
)

func TestParseTraceRoundTrip(t *testing.T) {
	in := []Request{{0, 1, 100}, {5, 2, 2048}, {5, 1, 100}, {9, 3, 1}}
	var sb strings.Builder
	if err := WriteTrace(&sb, in); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	out, err := ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("request %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestParseTraceSkipsCommentsAndBlanks(t *testing.T) {
	trace := "# provenance: test\n\n0 1 10\n   \n# mid comment\n1 2 20\n"
	reqs, err := ParseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
}

func TestParseTraceErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name, trace, want string
	}{
		{"too few fields", "0 1 10\n1 2\n", "line 2"},
		{"bad time", "x 1 10\n", "line 1"},
		{"bad id", "0 -1 10\n", "line 1"},
		{"bad size", "0 1 ten\n", "line 1"},
		{"zero size", "# c\n0 1 0\n", "line 2"},
		{"negative size", "0 1 -5\n", "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrace(strings.NewReader(tc.trace))
			if err == nil {
				t.Fatal("ParseTrace accepted malformed trace")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %s", err, tc.want)
			}
		})
	}
}

func TestRecorderInternsKeys(t *testing.T) {
	r := NewRecorder()
	r.Record("/a.css", 100)
	r.Record("/b.js", 200)
	r.Record("/a.css", 100)
	tr := r.Trace()
	if len(tr) != 3 {
		t.Fatalf("recorded %d requests, want 3", len(tr))
	}
	if tr[0].ID != tr[2].ID {
		t.Errorf("same key got ids %d and %d", tr[0].ID, tr[2].ID)
	}
	if tr[0].ID == tr[1].ID {
		t.Error("distinct keys share an id")
	}
	if tr[0].Time >= tr[1].Time || tr[1].Time >= tr[2].Time {
		t.Errorf("times not increasing: %d %d %d", tr[0].Time, tr[1].Time, tr[2].Time)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(SynthOptions{Requests: 2000, Objects: 100, Seed: 7})
	b := Synthesize(SynthOptions{Requests: 2000, Objects: 100, Seed: 7})
	if len(a) != 2000 {
		t.Fatalf("got %d requests, want 2000", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across same-seed runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Synthesize(SynthOptions{Requests: 2000, Objects: 100, Seed: 8})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestSynthesizeSizesConsistentPerObject(t *testing.T) {
	trace := Synthesize(SynthOptions{Requests: 5000, Objects: 50, Seed: 3})
	sizes := make(map[uint64]int64)
	for _, req := range trace {
		if req.Size <= 0 {
			t.Fatalf("non-positive size %d", req.Size)
		}
		if prev, ok := sizes[req.ID]; ok && prev != req.Size {
			t.Fatalf("object %d changed size %d -> %d", req.ID, prev, req.Size)
		}
		sizes[req.ID] = req.Size
	}
	if len(sizes) < 2 {
		t.Fatalf("trace touched %d objects; popularity sampling broken", len(sizes))
	}
}

func TestReplayHandTrace(t *testing.T) {
	// A(10) B(10) A(10): with budget 20 both fit, the revisit of A hits.
	trace := []Request{{0, 1, 10}, {1, 2, 10}, {2, 1, 10}}
	res := Replay(trace, 20, cachestore.Policy{})
	if res.Requests != 3 || res.BytesRequested != 30 {
		t.Fatalf("totals = %d reqs / %d bytes, want 3 / 30", res.Requests, res.BytesRequested)
	}
	if res.Hits != 1 || res.BytesHit != 10 {
		t.Fatalf("hits = %d (%d bytes), want 1 (10 bytes)", res.Hits, res.BytesHit)
	}
	if got := res.OHR(); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("OHR = %v, want 1/3", got)
	}
	if got := res.BHR(); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("BHR = %v, want 1/3", got)
	}
	if res.Policy != "lru" {
		t.Errorf("Policy = %q, want lru", res.Policy)
	}
}

func TestUpperBoundHandTrace(t *testing.T) {
	// Three objects of size 4, each re-requested with gap 3:
	//   0: A   1: B   2: C   3: A   4: B   5: C
	// Footprint per interval = 4*3 = 12 byte·requests; 36 total over a
	// trace of T=6 requests.
	trace := []Request{
		{0, 1, 4}, {1, 2, 4}, {2, 3, 4},
		{3, 1, 4}, {4, 2, 4}, {5, 3, 4},
	}

	// Budget 6 gives 36 byte·requests of occupancy: all three fit.
	ub := UpperBound(trace, 6)
	if math.Abs(ub.MaxHits-3) > 1e-9 || math.Abs(ub.MaxBytesHit-12) > 1e-9 {
		t.Errorf("budget 6: MaxHits=%v MaxBytesHit=%v, want 3 and 12", ub.MaxHits, ub.MaxBytesHit)
	}

	// Budget 4 gives 24: exactly two intervals fit.
	ub = UpperBound(trace, 4)
	if math.Abs(ub.MaxHits-2) > 1e-9 || math.Abs(ub.MaxBytesHit-8) > 1e-9 {
		t.Errorf("budget 4: MaxHits=%v MaxBytesHit=%v, want 2 and 8", ub.MaxHits, ub.MaxBytesHit)
	}

	// Budget 5 gives 30: two whole intervals plus 6/12 of the third.
	ub = UpperBound(trace, 5)
	if math.Abs(ub.MaxHits-2.5) > 1e-9 || math.Abs(ub.MaxBytesHit-10) > 1e-9 {
		t.Errorf("budget 5: MaxHits=%v MaxBytesHit=%v, want 2.5 and 10", ub.MaxHits, ub.MaxBytesHit)
	}

	// A budget below the object size admits no hits at all, and neither
	// does a zero budget.
	for _, budget := range []int64{3, 0} {
		ub = UpperBound(trace, budget)
		if ub.MaxHits != 0 || ub.MaxBytesHit != 0 {
			t.Errorf("budget %d: MaxHits=%v MaxBytesHit=%v, want 0 and 0", budget, ub.MaxHits, ub.MaxBytesHit)
		}
	}
}

func TestUpperBoundExcludesOversizedObjects(t *testing.T) {
	// The size-25 object can never fit a 20-byte cache; only the small
	// object's interval counts.
	trace := []Request{{0, 1, 25}, {1, 2, 5}, {2, 1, 25}, {3, 2, 5}}
	ub := UpperBound(trace, 20)
	if math.Abs(ub.MaxHits-1) > 1e-9 || math.Abs(ub.MaxBytesHit-5) > 1e-9 {
		t.Errorf("MaxHits=%v MaxBytesHit=%v, want 1 and 5", ub.MaxHits, ub.MaxBytesHit)
	}
}

// TestUpperBoundDominatesPolicies is the soundness check that makes
// "% of optimal" numbers trustworthy: no real policy may exceed the bound.
func TestUpperBoundDominatesPolicies(t *testing.T) {
	trace := Synthesize(SynthOptions{Requests: 30000, Objects: 2000, Seed: 42})
	budget := traceBudget(trace, 0.05)
	ub := UpperBound(trace, budget)
	for _, p := range []cachestore.Policy{
		{},
		{Eviction: cachestore.GDSF()},
		{Admission: cachestore.TinyLFU()},
		{Eviction: cachestore.GDSF(), Admission: cachestore.TinyLFU()},
	} {
		res := Replay(trace, budget, p)
		if res.OHR() > ub.OHR()+1e-9 {
			t.Errorf("%s OHR %.4f exceeds upper bound %.4f", res.Policy, res.OHR(), ub.OHR())
		}
		if res.BHR() > ub.BHR()+1e-9 {
			t.Errorf("%s BHR %.4f exceeds upper bound %.4f", res.Policy, res.BHR(), ub.BHR())
		}
	}
}

// TestSmartPoliciesBeatLRU pins the PR's acceptance criterion: on a
// size-skewed synthetic trace under pressure, GDSF wins object hit ratio
// (it keeps many small popular objects where LRU keeps whatever arrived)
// and TinyLFU admission wins byte hit ratio (it refuses one-hit wonders
// that would evict proven objects).
func TestSmartPoliciesBeatLRU(t *testing.T) {
	trace := Synthesize(SynthOptions{Requests: 60000, Objects: 4000, Seed: 1})
	budget := traceBudget(trace, 0.02)

	lru := Replay(trace, budget, cachestore.Policy{})
	gdsf := Replay(trace, budget, cachestore.Policy{Eviction: cachestore.GDSF()})
	tlfu := Replay(trace, budget, cachestore.Policy{Admission: cachestore.TinyLFU()})

	if gdsf.OHR() <= lru.OHR() {
		t.Errorf("GDSF OHR %.4f did not beat LRU OHR %.4f", gdsf.OHR(), lru.OHR())
	}
	if tlfu.BHR() <= lru.BHR() {
		t.Errorf("TinyLFU BHR %.4f did not beat LRU BHR %.4f", tlfu.BHR(), lru.BHR())
	}
	if tlfu.Counters.AdmissionRejects == 0 {
		t.Error("TinyLFU replay recorded no admission rejects; filter inert")
	}
	if lru.Counters.VictimScans == 0 {
		t.Error("LRU replay recorded no victim scans under pressure")
	}
}

// traceBudget returns frac of the trace's unique-object byte total, the
// conventional way cache sizes are stated in the simulator literature.
func traceBudget(trace []Request, frac float64) int64 {
	seen := make(map[uint64]bool)
	var total int64
	for _, req := range trace {
		if !seen[req.ID] {
			seen[req.ID] = true
			total += req.Size
		}
	}
	b := int64(frac * float64(total))
	if b < 1 {
		b = 1
	}
	return b
}
