package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Add(5)
	if c2 := r.Counter("x"); c2 != c1 {
		t.Fatal("Counter(name) did not return the same instrument")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram(name) did not return the same instrument")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge(name) did not return the same instrument")
	}
	snap := r.Snapshot()
	if snap.Counters["x"] != 5 {
		t.Fatalf("snapshot counter x = %d, want 5", snap.Counters["x"])
	}
}

func TestRegisterAdoptsExistingStorage(t *testing.T) {
	// The view-over-registry property: registering a struct's own field
	// indexes the same storage, so updates through the field are visible
	// through the registry and vice versa.
	r := NewRegistry()
	var legacy struct{ Hits Counter }
	r.RegisterCounter("cache.hits", &legacy.Hits)
	legacy.Hits.Add(2)
	r.Counter("cache.hits").Add(1)
	if got := legacy.Hits.Load(); got != 3 {
		t.Fatalf("field sees %d, want 3", got)
	}
	if got := r.Snapshot().Counters["cache.hits"]; got != 3 {
		t.Fatalf("registry sees %d, want 3", got)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c")
	got := r.Names()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations spread uniformly over (0, 100µs]: p50 should land
	// near 50µs, p99 near 100µs — within a factor-of-two bucket width.
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * int64(time.Microsecond))
	}
	snap := h.Snapshot()
	if snap.Count != 100 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.SumNS != 5050*int64(time.Microsecond) {
		t.Fatalf("sum = %d", snap.SumNS)
	}
	if snap.P50NS < int64(16*time.Microsecond) || snap.P50NS > int64(128*time.Microsecond) {
		t.Fatalf("p50 = %v, want ~50µs", time.Duration(snap.P50NS))
	}
	if snap.P99NS < snap.P50NS {
		t.Fatalf("p99 %v < p50 %v", time.Duration(snap.P99NS), time.Duration(snap.P50NS))
	}
	if snap.P95NS > snap.P99NS {
		t.Fatalf("p95 %v > p99 %v", time.Duration(snap.P95NS), time.Duration(snap.P99NS))
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	huge := int64(time.Hour)
	h.Observe(huge)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.SumNS != huge {
		t.Fatalf("count=%d sum=%d", snap.Count, snap.SumNS)
	}
	// Quantiles are clamped to the last finite bound, never garbage.
	if snap.P99NS <= 0 {
		t.Fatalf("p99 = %d", snap.P99NS)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if snap.Count != 0 || snap.P50NS != 0 || snap.P99NS != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(int64(i))
				r.Gauge("g").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c"] != 8000 {
		t.Fatalf("counter = %d, want 8000", snap.Counters["c"])
	}
	if snap.Histograms["h"].Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", snap.Histograms["h"].Count)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := int64(1); v < int64(time.Minute); v *= 3 {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
	if bucketIndex(0) != 0 {
		t.Fatalf("bucketIndex(0) = %d", bucketIndex(0))
	}
	if bucketIndex(1<<62) != histBuckets {
		t.Fatalf("bucketIndex(huge) = %d, want overflow %d", bucketIndex(1<<62), histBuckets)
	}
}
