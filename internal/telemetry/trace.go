// Per-request tracing: a request ID and span stack carried through
// context.Context, recording the cache-decision events the paper's
// evaluation attributes latency to — sw-hit, etag-match, revalidate, probe,
// network, stale-serve, breaker-open.
//
// The tracer is deliberately in-process and allocation-light: a layer that
// has no trace in its context pays one context lookup and nothing else.
// Cross-process (or cross-layer-boundary) propagation uses two standard
// HTTP headers: the request ID travels forward in X-Request-Id, and an
// origin reports the decisions it took back to the client in Server-Timing
// — the same channel real browsers surface in devtools — so an emulated
// browser can merge server-side decisions into its waterfall without
// sharing memory with the origin.
package telemetry

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RequestIDHeader carries the trace's request ID on forwarded requests.
const RequestIDHeader = "X-Request-Id"

// ServerTimingHeader is the response header an origin uses to report the
// cache decisions it took while serving a request (RFC 8941-style list of
// tokens). Browsers expose this header to devtools; the emulated browser
// merges it into FetchEvent.Decisions.
const ServerTimingHeader = "Server-Timing"

// TraceEvent is one recorded cache-decision event.
type TraceEvent struct {
	// At is the offset from the trace's start.
	At time.Duration `json:"at"`
	// Span is the dotted span path active when the event was recorded
	// ("load.fetch"), empty at the root.
	Span string `json:"span,omitempty"`
	// Name is the decision taken: sw-hit, etag-match, revalidate, probe,
	// network, stale-serve, breaker-open, ...
	Name string `json:"name"`
	// Detail identifies the subject, typically a resource key.
	Detail string `json:"detail,omitempty"`
}

// TraceSpan is one completed span.
type TraceSpan struct {
	// Path is the dotted span path, root first ("load.fetch.probe").
	Path string `json:"path"`
	// Start and End are offsets from the trace's start.
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// Trace accumulates the events and spans of one request (or one page
// load). It is safe for concurrent use: middleware probe fan-out records
// from worker goroutines.
type Trace struct {
	// ID is the request ID, propagated via RequestIDHeader.
	ID string

	start time.Time
	mu    sync.Mutex
	evs   []TraceEvent
	spans []TraceSpan
}

// traceSeq numbers generated request IDs process-wide.
var traceSeq atomic.Int64

// NextRequestID returns a process-unique request ID.
func NextRequestID() string {
	return fmt.Sprintf("r%06d", traceSeq.Add(1))
}

// NewTrace returns an empty trace started now. An empty id selects a
// generated one.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NextRequestID()
	}
	return &Trace{ID: id, start: time.Now()}
}

// Events returns a copy of the recorded events, in record order.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.evs...)
}

// Spans returns a copy of the completed spans, in completion order.
func (t *Trace) Spans() []TraceSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceSpan(nil), t.spans...)
}

// Decisions returns the recorded event names in order, with consecutive
// duplicates collapsed — the compact annotation HAR entries and waterfall
// bars carry.
func (t *Trace) Decisions() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.evs))
	for _, ev := range t.evs {
		if n := len(out); n > 0 && out[n-1] == ev.Name {
			continue
		}
		out = append(out, ev.Name)
	}
	return out
}

// record appends one event.
func (t *Trace) record(span, name, detail string) {
	at := time.Since(t.start)
	t.mu.Lock()
	t.evs = append(t.evs, TraceEvent{At: at, Span: span, Name: name, Detail: detail})
	t.mu.Unlock()
}

// context keys.
type traceKey struct{}
type spanKey struct{}

// WithTrace attaches t to ctx.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to ctx, if any.
func TraceFrom(ctx context.Context) (*Trace, bool) {
	t, ok := ctx.Value(traceKey{}).(*Trace)
	return t, ok
}

// StartTrace returns ctx carrying a fresh trace (generated ID when id is
// empty) plus the trace itself. When ctx already carries a trace it is
// reused — one navigation is one trace however many layers re-enter.
func StartTrace(ctx context.Context, id string) (context.Context, *Trace) {
	if t, ok := TraceFrom(ctx); ok {
		return ctx, t
	}
	t := NewTrace(id)
	return WithTrace(ctx, t), t
}

// tracePool recycles Trace objects — and, more importantly, their event
// and span backing arrays — so a server that traces every request settles
// into steady-state zero allocation for the trace scratch itself.
var tracePool = sync.Pool{New: func() any { return &Trace{} }}

// AcquireTrace returns a pooled trace, reset and started now (generated ID
// when id is empty). It is NewTrace for request-rate callers: pair it with
// Release once the trace has been serialized and no reference survives.
func AcquireTrace(id string) *Trace {
	t := tracePool.Get().(*Trace)
	if id == "" {
		id = NextRequestID()
	}
	t.ID = id
	t.start = time.Now()
	return t
}

// Release resets t and returns it to the pool, keeping the recorded
// events' and spans' capacity for the next request. The caller must hold
// the only reference: a released trace is reused concurrently, so copy out
// (Events/Spans/Decisions already copy) before releasing.
func (t *Trace) Release() {
	t.mu.Lock()
	clear(t.evs) // drop the event strings; keep the array
	t.evs = t.evs[:0]
	clear(t.spans)
	t.spans = t.spans[:0]
	t.mu.Unlock()
	t.ID = ""
	tracePool.Put(t)
}

// spanPath returns the dotted span path active in ctx.
func spanPath(ctx context.Context) string {
	p, _ := ctx.Value(spanKey{}).(string)
	return p
}

// StartSpan pushes a named span onto ctx's span stack and returns the new
// context plus an end function that records the completed span. Without a
// trace in ctx it is free: the same context and a no-op end come back.
func StartSpan(ctx context.Context, name string) (context.Context, func()) {
	t, ok := TraceFrom(ctx)
	if !ok {
		return ctx, func() {}
	}
	path := name
	if parent := spanPath(ctx); parent != "" {
		path = parent + "." + name
	}
	start := time.Since(t.start)
	ctx = context.WithValue(ctx, spanKey{}, path)
	return ctx, func() {
		end := time.Since(t.start)
		t.mu.Lock()
		t.spans = append(t.spans, TraceSpan{Path: path, Start: start, End: end})
		t.mu.Unlock()
	}
}

// Span is an in-flight span handle, the allocation-free alternative to
// StartSpan's end closure: the handle is a plain value, so
//
//	ctx, sp := telemetry.BeginSpan(ctx, "middleware")
//	defer sp.End()
//
// costs no heap allocation for the span scratch itself — with or without a
// trace attached. The zero Span is a valid no-op.
type Span struct {
	t     *Trace
	path  string
	start time.Duration
}

// BeginSpan pushes a named span onto ctx's span stack, like StartSpan, but
// returns a value handle instead of a closure. Without a trace in ctx it
// returns ctx unchanged and a no-op handle, touching nothing.
func BeginSpan(ctx context.Context, name string) (context.Context, Span) {
	t, ok := TraceFrom(ctx)
	if !ok {
		return ctx, Span{}
	}
	path := name
	if parent := spanPath(ctx); parent != "" {
		path = parent + "." + name
	}
	ctx = context.WithValue(ctx, spanKey{}, path)
	return ctx, Span{t: t, path: path, start: time.Since(t.start)}
}

// End records the completed span. No-op on a zero handle.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := time.Since(s.t.start)
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, TraceSpan{Path: s.path, Start: s.start, End: end})
	s.t.mu.Unlock()
}

// Event records a cache-decision event on ctx's trace, tagged with the
// active span path. Without a trace it is a no-op — instrumented layers
// never need to check first.
func Event(ctx context.Context, name, detail string) {
	if t, ok := TraceFrom(ctx); ok {
		t.record(spanPath(ctx), name, detail)
	}
}

// FormatServerTiming renders decision tokens as a Server-Timing header
// value ("etag-match, map-built"). Tokens must already be header-safe
// (lowercase letters, digits, hyphens — the shape every decision name in
// this repository has).
func FormatServerTiming(decisions []string) string {
	return strings.Join(decisions, ", ")
}

// AppendServerTiming adds decision tokens to h's Server-Timing header,
// preserving any existing entries (an origin behind a middleware reports
// both layers' decisions).
func AppendServerTiming(h http.Header, decisions ...string) {
	if len(decisions) == 0 {
		return
	}
	v := FormatServerTiming(decisions)
	if prev := h.Get(ServerTimingHeader); prev != "" {
		v = prev + ", " + v
	}
	h.Set(ServerTimingHeader, v)
}

// ParseServerTiming extracts the metric names from a Server-Timing header
// value, dropping any per-metric parameters (";dur=…").
func ParseServerTiming(v string) []string {
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		name, _, _ := strings.Cut(strings.TrimSpace(p), ";")
		name = strings.TrimSpace(name)
		if name != "" {
			out = append(out, name)
		}
	}
	return out
}
