package telemetry

import (
	"context"
	"net/http"
	"reflect"
	"sync"
	"testing"
)

func TestEventWithoutTraceIsNoOp(t *testing.T) {
	// Must not panic, must not allocate a trace.
	Event(context.Background(), "network", "/x")
	ctx, end := StartSpan(context.Background(), "load")
	end()
	if _, ok := TraceFrom(ctx); ok {
		t.Fatal("StartSpan invented a trace")
	}
}

func TestTraceRecordsEventsAndSpans(t *testing.T) {
	ctx, tr := StartTrace(context.Background(), "req-1")
	if tr.ID != "req-1" {
		t.Fatalf("id = %q", tr.ID)
	}
	ctx2, endLoad := StartSpan(ctx, "load")
	Event(ctx2, "network", "/index.html")
	ctx3, endFetch := StartSpan(ctx2, "fetch")
	Event(ctx3, "sw-hit", "/a.css")
	endFetch()
	endLoad()

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Span != "load" || evs[0].Name != "network" {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Span != "load.fetch" || evs[1].Detail != "/a.css" {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Path != "load.fetch" || spans[1].Path != "load" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].End < spans[0].Start {
		t.Fatalf("span ends before it starts: %+v", spans[0])
	}
}

func TestStartTraceReusesExisting(t *testing.T) {
	ctx, tr1 := StartTrace(context.Background(), "")
	if tr1.ID == "" {
		t.Fatal("generated ID empty")
	}
	_, tr2 := StartTrace(ctx, "other")
	if tr1 != tr2 {
		t.Fatal("StartTrace replaced an existing trace")
	}
}

func TestDecisionsCollapsesRuns(t *testing.T) {
	ctx, tr := StartTrace(context.Background(), "")
	Event(ctx, "probe", "/a.css")
	Event(ctx, "probe", "/b.js")
	Event(ctx, "etag-match", "/a.css")
	Event(ctx, "probe", "/c.js")
	got := tr.Decisions()
	want := []string{"probe", "etag-match", "probe"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decisions = %v, want %v", got, want)
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	ctx, tr := StartTrace(context.Background(), "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				Event(ctx, "probe", "/x")
				_, end := StartSpan(ctx, "s")
				end()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Events()); got != 1600 {
		t.Fatalf("events = %d, want 1600", got)
	}
	if got := len(tr.Spans()); got != 1600 {
		t.Fatalf("spans = %d, want 1600", got)
	}
}

func TestServerTimingRoundTrip(t *testing.T) {
	h := make(http.Header)
	AppendServerTiming(h, "map-built", "network")
	AppendServerTiming(h, "etag-match")
	AppendServerTiming(h) // no-op
	got := ParseServerTiming(h.Get(ServerTimingHeader))
	want := []string{"map-built", "network", "etag-match"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed = %v, want %v", got, want)
	}
	if ParseServerTiming("") != nil {
		t.Fatal("empty header should parse to nil")
	}
	// Parameters are dropped, like real Server-Timing metrics carry.
	got = ParseServerTiming(`cache;dur=0.2, net;desc="origin fetch"`)
	want = []string{"cache", "net"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed = %v, want %v", got, want)
	}
}

func TestNextRequestIDUnique(t *testing.T) {
	a, b := NextRequestID(), NextRequestID()
	if a == b || a == "" {
		t.Fatalf("ids %q, %q", a, b)
	}
}
