// Package telemetry is the repository's one observability core: a
// dependency-free metrics registry (named counters, gauges, and
// bounded-bucket latency histograms, all atomic and safe under concurrent
// serving) plus a lightweight per-request tracer carried through
// context.Context (see trace.go).
//
// The paper's evaluation is measurement-driven — PLT waterfalls across a
// cache-state × network grid — and explaining *why* a cell wins or loses
// needs per-layer attribution. Before this package every layer kept its own
// ad-hoc counter struct; they now all register their instruments here, so
// one snapshot covers the whole stack and /debug/catalystd can serve it.
//
// Instruments are zero-value-usable value types (like atomic.Int64), so a
// legacy counter struct can keep its exported fields and Snapshot() API
// while the registry holds pointers to the very same storage: the struct
// becomes a *view* over registry-backed instruments, with no second copy of
// the counts anywhere.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing instrument. The zero value is ready
// to use; like atomic.Int64 it must not be copied after first use. Its
// method set deliberately matches how the repository's legacy counter
// structs used atomic.Int64 (Add/Load), so rebasing a struct onto Counter
// is a type change, not a call-site change.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a last-value instrument (queue depths, cache bytes). The zero
// value is ready to use; not copyable after first use.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of exponential buckets a Histogram keeps: with
// firstBound = 1µs and ×2 growth the last finite bound is ~16.8s, wide
// enough for any serve/probe/load latency this repository measures, in a
// fixed 27-slot footprint.
const histBuckets = 25

// firstBound is the upper bound of the first histogram bucket, in
// nanoseconds.
const firstBound = int64(time.Microsecond)

// Histogram is a fixed-footprint latency histogram: observations (in
// nanoseconds) land in exponentially growing buckets, each an atomic
// counter, so recording is lock-free and safe under concurrent serving.
// The zero value is ready to use; not copyable after first use.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64
	bucket [histBuckets + 1]atomic.Int64 // +1 overflow bucket
}

// Observe records one value (nanoseconds for latencies).
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.bucket[bucketIndex(v)].Add(1)
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// bucketIndex maps a value to its bucket: bucket i covers
// (firstBound<<(i-1), firstBound<<i], bucket 0 covers (-inf, firstBound],
// and the final slot collects everything past the last finite bound.
func bucketIndex(v int64) int {
	bound := firstBound
	for i := 0; i < histBuckets; i++ {
		if v <= bound {
			return i
		}
		bound <<= 1
	}
	return histBuckets
}

// upperBound returns bucket i's inclusive upper bound in nanoseconds.
func upperBound(i int) int64 {
	if i >= histBuckets {
		return firstBound << (histBuckets - 1)
	}
	return firstBound << i
}

// HistogramSnapshot is a point-in-time summary of a Histogram. Quantiles
// are estimated by linear interpolation inside the bucket the rank falls
// into — the standard bounded-bucket estimate, accurate to one bucket
// width (a factor of two here).
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// SumNS is the total of all observations, in nanoseconds.
	SumNS int64 `json:"sumNs"`
	P50NS int64 `json:"p50Ns"`
	P95NS int64 `json:"p95Ns"`
	P99NS int64 `json:"p99Ns"`
}

// Snapshot summarizes the histogram. Under concurrent observation the
// bucket counts are read one by one, so the snapshot is approximate to
// whatever landed mid-read — fine for monitoring, which is its job.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets + 1]int64
	var total int64
	for i := range h.bucket {
		counts[i] = h.bucket[i].Load()
		total += counts[i]
	}
	snap := HistogramSnapshot{Count: h.count.Load(), SumNS: h.sum.Load()}
	if total == 0 {
		return snap
	}
	snap.P50NS = quantile(counts[:], total, 0.50)
	snap.P95NS = quantile(counts[:], total, 0.95)
	snap.P99NS = quantile(counts[:], total, 0.99)
	return snap
}

// quantile estimates the q-quantile from bucket counts summing to total.
func quantile(counts []int64, total int64, q float64) int64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			upper := upperBound(i)
			lower := int64(0)
			if i > 0 {
				lower = upperBound(i - 1)
			}
			frac := (rank - cum) / float64(c)
			return lower + int64(float64(upper-lower)*frac)
		}
		cum = next
	}
	return upperBound(histBuckets)
}

// Registry is a named collection of instruments. All methods are safe for
// concurrent use. Components either ask the registry to mint an instrument
// (Counter/Gauge/Histogram, get-or-create) or register instruments they
// already own (RegisterCounter and friends) — the latter is how the legacy
// counter structs became views: their fields are the storage, the registry
// just indexes them.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// RegisterCounter indexes an existing counter under name, replacing any
// previous registration. Re-registration is deliberate: tests and
// ClearState-style resets recreate components freely, and the newest
// instrument is the live one.
func (r *Registry) RegisterCounter(name string, c *Counter) *Counter {
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
	return c
}

// Gauge returns the named gauge, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// RegisterGauge indexes an existing gauge under name.
func (r *Registry) RegisterGauge(name string, g *Gauge) *Gauge {
	r.mu.Lock()
	r.gauges[name] = g
	r.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it if absent.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// RegisterHistogram indexes an existing histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) *Histogram {
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
	return h
}

// Snapshot is the JSON form of a whole registry: every named instrument's
// current value, suitable for /debug/catalystd.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{}
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			snap.Counters[n] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			snap.Gauges[n] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			snap.Histograms[n] = h.Snapshot()
		}
	}
	return snap
}

// Names returns every registered instrument name, sorted — handy for
// stable test assertions and debug listings.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
