// Package vclock provides an injectable clock abstraction.
//
// The paper's evaluation "advanced the system clock" between page loads to
// make cached resources expire. Everything in this repository that asks for
// the current time (cache freshness, resource mutation, the discrete-event
// engine) does so through a Clock so experiments can advance time instantly
// and deterministically instead of editing the host clock.
package vclock

import (
	"sync"
	"time"
)

// Clock supplies the current time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
}

// System is the real wall clock.
type System struct{}

// Now returns time.Now().
func (System) Now() time.Time { return time.Now() }

// Virtual is a manually driven clock. The zero value is not ready for use;
// construct it with NewVirtual.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock initialized to start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the virtual clock's current time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d. Negative durations are ignored:
// virtual time never moves backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Set moves the clock to t if t is not before the current virtual time.
// Attempts to move backwards are ignored.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}

// Epoch is the conventional start time for virtual clocks in experiments.
// A fixed, round origin keeps logs and golden outputs stable.
var Epoch = time.Date(2024, time.November, 18, 0, 0, 0, 0, time.UTC)
