package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtGivenTime(t *testing.T) {
	start := time.Date(2024, 11, 18, 9, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(Epoch)
	v.Advance(2 * time.Hour)
	want := Epoch.Add(2 * time.Hour)
	if got := v.Now(); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceNegativeIgnored(t *testing.T) {
	v := NewVirtual(Epoch)
	v.Advance(-time.Hour)
	if got := v.Now(); !got.Equal(Epoch) {
		t.Fatalf("negative Advance moved clock to %v", got)
	}
}

func TestVirtualSetForwardOnly(t *testing.T) {
	v := NewVirtual(Epoch)
	v.Set(Epoch.Add(time.Minute))
	v.Set(Epoch) // backwards, must be ignored
	if got := v.Now(); !got.Equal(Epoch.Add(time.Minute)) {
		t.Fatalf("Set allowed time travel: %v", got)
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual(Epoch)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Advance(time.Second)
			_ = v.Now()
		}()
	}
	wg.Wait()
	if got := v.Now(); !got.Equal(Epoch.Add(50 * time.Second)) {
		t.Fatalf("concurrent advances lost updates: %v", got)
	}
}

func TestSystemClockIsCurrent(t *testing.T) {
	before := time.Now()
	got := System{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("System.Now() = %v outside [%v, %v]", got, before, after)
	}
}
