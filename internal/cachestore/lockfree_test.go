package cachestore

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachecatalyst/internal/leakcheck"
)

// TestWarmGetTakesNoMutex is the direct proof of the warm-path fast lane:
// with every shard mutex held by the test, a warm Get (and Peek, and
// GetBytes) must still return — it would deadlock if the read path touched
// any shard lock.
func TestWarmGetTakesNoMutex(t *testing.T) {
	for _, pol := range []Policy{{}, {Eviction: GDSF()}} {
		t.Run(pol.Name(), func(t *testing.T) {
			s := New[string](Options[string]{Shards: 4, Policy: pol})
			for i := 0; i < 32; i++ {
				s.Put(fmt.Sprintf("/k%d", i), "v")
			}
			for i := range s.shards {
				s.shards[i].mu.Lock()
			}
			defer func() {
				for i := range s.shards {
					s.shards[i].mu.Unlock()
				}
			}()
			done := make(chan bool, 1)
			go func() {
				_, ok1 := s.Get("/k7")
				_, ok2 := s.Peek("/k8")
				_, ok3 := s.GetBytes([]byte("/k9"))
				_, miss := s.Get("/absent")
				done <- ok1 && ok2 && ok3 && !miss
			}()
			select {
			case ok := <-done:
				if !ok {
					t.Fatal("lock-free reads returned wrong results")
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Get blocked on a shard mutex — read path is not lock-free")
			}
		})
	}
}

// TestGetAllocsZero pins the warm read path at zero allocations, for both
// the string-key and the assembled-byte-key entry points.
func TestGetAllocsZero(t *testing.T) {
	s := New[string](Options[string]{Shards: 4})
	s.Put("/page", "body")
	key := []byte("/page")
	if n := testing.AllocsPerRun(200, func() { s.Get("/page") }); n != 0 {
		t.Fatalf("Get allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { s.GetBytes(key) }); n != 0 {
		t.Fatalf("GetBytes allocates %.1f per op, want 0", n)
	}
}

// TestDeferredPromotionEvictsExactly exercises the lazy-promotion design
// directly: a burst of lock-free Gets reorders the live ranks without
// touching the shards' recency structures, and the subsequent evictions
// (forced one at a time through Resize) must still come out in exact
// global LRU order — proving victim validation pays off every deferred
// promotion before trusting a candidate.
func TestDeferredPromotionEvictsExactly(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var evicted []string
			s := New[int](Options[int]{
				Shards:  shards,
				OnEvict: func(key string, _ int) { evicted = append(evicted, key) },
			})
			const n = 40
			for i := 0; i < n; i++ {
				s.Put(fmt.Sprintf("/k%02d", i), i)
			}
			// Touch every entry in a scrambled order; these promotions all
			// stay deferred (stamp runs ahead of linked) because no write
			// intervenes.
			rng := rand.New(rand.NewSource(9))
			order := rng.Perm(n)
			for _, i := range order {
				if _, ok := s.Get(fmt.Sprintf("/k%02d", i)); !ok {
					t.Fatalf("key %d vanished", i)
				}
			}
			// Shrink one entry at a time: each Resize must evict exactly
			// the least recently touched survivor. (Resize(0) would lift
			// the bound, so stop at one resident entry.)
			for remaining := n; remaining > 1; remaining-- {
				s.Resize(int64(remaining - 1))
			}
			if len(evicted) != n-1 {
				t.Fatalf("evicted %d of %d entries", len(evicted), n-1)
			}
			for pos, i := range order[:n-1] {
				if want := fmt.Sprintf("/k%02d", i); evicted[pos] != want {
					t.Fatalf("eviction %d: got %q, want %q (exact LRU order violated)", pos, evicted[pos], want)
				}
			}
			if err := s.Audit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLockFreeStressAgainstBudget hammers every mutating operation —
// Get, Put, Delete, Resize, Clear, policy eviction — from many goroutines
// under every policy, then quiesces and audits. Run under -race this is
// the memory-safety half of the differential argument (the sequential
// half is TestDefaultPolicyMatchesReferenceLRU and
// TestDeferredPromotionEvictsExactly).
func TestLockFreeStressAgainstBudget(t *testing.T) {
	t.Parallel()
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pol, err := ParsePolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			s := New[string](Options[string]{
				Shards:   8,
				MaxBytes: 4 << 10,
				SizeOf:   func(_ string, v string) int64 { return int64(len(v)) },
				Policy:   pol,
			})
			var wg sync.WaitGroup
			for g := 0; g < 12; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					val := string(make([]byte, 48))
					for i := 0; i < 800; i++ {
						key := fmt.Sprintf("/obj-%d", rng.Intn(300))
						switch rng.Intn(10) {
						case 0, 1, 2:
							s.Put(key, val)
						case 3:
							s.Delete(key)
						case 4:
							if i%200 == 0 {
								s.Resize(int64(2<<10 + rng.Intn(4<<10)))
							} else if i%399 == 0 {
								s.Clear()
							} else {
								s.GetBytes([]byte(key))
							}
						default:
							s.Get(key)
						}
					}
				}(g)
			}
			wg.Wait()
			s.Resize(4 << 10)
			if s.Bytes() > 4<<10 {
				t.Fatalf("over budget after quiesce: %d", s.Bytes())
			}
			if err := s.Audit(); err != nil {
				t.Fatal(err)
			}
			// The store must still be fully functional afterwards.
			s.Put("/after", "x")
			if v, ok := s.Get("/after"); !ok || v != "x" {
				t.Fatalf("store broken after stress: %q %v", v, ok)
			}
		})
	}
}

// TestEpochReclamationNoTornReads proves the publication protocol: entries
// are immutable after publication and replacement installs a whole new
// entry, so a reader that raced a replacement, eviction or Clear must see
// either the complete old value or the complete new one — never a mix.
// Values carry a self-check (two halves that must agree, tied to the key),
// and leakcheck verifies the readers actually wind down.
func TestEpochReclamationNoTornReads(t *testing.T) {
	leakcheck.Check(t)
	type sealed struct {
		key  string
		a, b uint64 // always written equal; a torn read would disagree
	}
	s := New[*sealed](Options[*sealed]{
		Shards:   4,
		MaxBytes: 64, // tight: constant eviction pressure
	})
	stop := make(chan struct{})
	var torn atomic.Int64
	var wg sync.WaitGroup
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("/page-%d", i)
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[rng.Intn(len(keys))]
				if v, ok := s.Get(key); ok {
					if v.a != v.b || v.key != key {
						torn.Add(1)
						return
					}
				}
			}
		}(r)
	}
	var seq atomic.Uint64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 4000; i++ {
				key := keys[rng.Intn(len(keys))]
				n := seq.Add(1)
				s.Put(key, &sealed{key: key, a: n, b: n})
				if i%500 == 0 {
					s.Clear()
				}
				if i%97 == 0 {
					runtime.GC() // reclaim retired entries while readers hold some
				}
			}
		}(w)
	}
	// Writers finish on their own; readers run until told to stop.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress goroutines did not finish")
	}
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn reads observed — publication protocol violated", n)
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
}
