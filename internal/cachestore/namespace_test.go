package cachestore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cachecatalyst/internal/telemetry"
)

// TestNamespaceDifferential pins the namespace contract: a namespace of a
// shared parent behaves exactly like an independent store constructed with
// the parent's options — same hits, same residency, same byte accounting,
// same eviction victims — under a deterministic mixed op sequence across
// several tenants.
func TestNamespaceDifferential(t *testing.T) {
	for _, policyName := range []string{"lru", "gdsf"} {
		t.Run(policyName, func(t *testing.T) {
			policy, err := ParsePolicy(policyName)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options[string]{
				Shards:   4,
				MaxBytes: 2048,
				SizeOf:   func(k string, v string) int64 { return int64(len(v)) },
				Policy:   policy,
			}
			parent := New(opts)
			tenants := []string{"alpha", "beta", "gamma"}
			views := make(map[string]*Store[string])
			oracle := make(map[string]*Store[string])
			for _, tn := range tenants {
				views[tn] = parent.Namespace(tn)
				oracle[tn] = New(opts)
			}

			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 8000; i++ {
				tn := tenants[rng.Intn(len(tenants))]
				key := fmt.Sprintf("/p%d", rng.Intn(64))
				ns, ind := views[tn], oracle[tn]
				switch rng.Intn(4) {
				case 0, 1:
					v := fmt.Sprintf("%s-%d", key, rng.Intn(8)*37)
					ns.Put(key, v)
					ind.Put(key, v)
				case 2:
					av, aok := ns.Get(key)
					bv, bok := ind.Get(key)
					if aok != bok || av != bv {
						t.Fatalf("op %d tenant %s Get(%q): namespace (%q,%v) vs independent (%q,%v)",
							i, tn, key, av, aok, bv, bok)
					}
				case 3:
					if ns.Delete(key) != ind.Delete(key) {
						t.Fatalf("op %d tenant %s Delete(%q) diverged", i, tn, key)
					}
				}
			}
			for _, tn := range tenants {
				ns, ind := views[tn], oracle[tn]
				if ns.Len() != ind.Len() || ns.Bytes() != ind.Bytes() {
					t.Fatalf("tenant %s: namespace %d entries/%d bytes, independent %d/%d",
						tn, ns.Len(), ns.Bytes(), ind.Len(), ind.Bytes())
				}
				for _, key := range ind.Keys() {
					if _, ok := ns.Peek(key); !ok {
						t.Fatalf("tenant %s: key %q resident independently, missing in namespace", tn, key)
					}
				}
				if err := ns.Audit(); err != nil {
					t.Fatalf("tenant %s: %v", tn, err)
				}
			}
		})
	}
}

// TestNamespaceIsolation pins the no-starvation guarantee: one tenant
// thrashing far past its budget never evicts a byte of a sibling's.
func TestNamespaceIsolation(t *testing.T) {
	parent := New(Options[string]{
		MaxBytes: 1 << 20,
		SizeOf:   func(k, v string) int64 { return int64(len(v)) },
	})
	quiet := parent.NamespaceWith("quiet", NamespaceOptions{MaxBytes: 4096})
	noisy := parent.NamespaceWith("noisy", NamespaceOptions{MaxBytes: 1024})

	for i := 0; i < 8; i++ {
		quiet.Put(fmt.Sprintf("/q%d", i), "0123456789abcdef") // 16 B each
	}
	wantBytes := quiet.Bytes()

	// The noisy tenant churns 100x its budget.
	for i := 0; i < 2000; i++ {
		noisy.Put(fmt.Sprintf("/n%d", i), "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	}
	if got := noisy.Bytes(); got > 1024 {
		t.Fatalf("noisy namespace holds %d bytes, budget 1024", got)
	}
	if got := quiet.Bytes(); got != wantBytes {
		t.Fatalf("quiet namespace lost bytes to a sibling: %d, want %d", got, wantBytes)
	}
	for i := 0; i < 8; i++ {
		if _, ok := quiet.Peek(fmt.Sprintf("/q%d", i)); !ok {
			t.Fatalf("quiet entry /q%d evicted by sibling pressure", i)
		}
	}
	if got := parent.TotalBytes(); got != wantBytes+noisy.Bytes() {
		t.Fatalf("TotalBytes %d, want %d", got, wantBytes+noisy.Bytes())
	}
}

// TestNamespaceMemoized pins that a name always maps to one child, even
// under concurrent first use, and that creation-time options only apply on
// the first call.
func TestNamespaceMemoized(t *testing.T) {
	parent := New(Options[int]{MaxBytes: 100})
	var wg sync.WaitGroup
	got := make([]*Store[int], 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = parent.Namespace("t")
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Namespace calls returned distinct children")
		}
	}
	if again := parent.NamespaceWith("t", NamespaceOptions{MaxBytes: 5}); again != got[0] {
		t.Fatal("NamespaceWith after creation returned a new child")
	}
	if got[0].MaxBytes() != 100 {
		t.Fatalf("memoized child budget %d, want the creation-time 100", got[0].MaxBytes())
	}
	if names := parent.NamespaceNames(); len(names) != 1 || names[0] != "t" {
		t.Fatalf("NamespaceNames = %v, want [t]", names)
	}
}

// TestNamespaceTelemetry pins the instrument naming: children register
// under "<parent>.ns.<name>" by default, or the explicit override.
func TestNamespaceTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	parent := New(Options[int]{Telemetry: reg, Name: "edge.renders"})
	ns := parent.Namespace("alpha")
	ns.Get("/missing")
	custom := parent.NamespaceWith("beta", NamespaceOptions{TelemetryName: "tenant.beta.renders"})
	custom.Get("/missing")

	snap := reg.Snapshot()
	if snap.Counters["edge.renders.ns.alpha.misses"] != 1 {
		t.Fatalf("default-named namespace miss not registered: %v", snap.Counters)
	}
	if snap.Counters["tenant.beta.renders.misses"] != 1 {
		t.Fatalf("override-named namespace miss not registered: %v", snap.Counters)
	}
}

// TestNamespaceUnbounded pins the negative-budget escape hatch.
func TestNamespaceUnbounded(t *testing.T) {
	parent := New(Options[string]{MaxBytes: 64, SizeOf: func(k, v string) int64 { return int64(len(v)) }})
	free := parent.NamespaceWith("free", NamespaceOptions{MaxBytes: -1})
	for i := 0; i < 100; i++ {
		free.Put(fmt.Sprintf("/f%d", i), "0123456789abcdef")
	}
	if got := free.Len(); got != 100 {
		t.Fatalf("unbounded namespace evicted: %d entries, want 100", got)
	}
}
