// Eviction and admission policies.
//
// The store's replacement behaviour is split into two independently
// pluggable decisions, because they answer different questions:
//
//   - An EvictionPolicy answers "which resident entry should leave when
//     the budget is exceeded?" by assigning every entry a rank; the store
//     always evicts the globally smallest rank.
//   - An AdmissionPolicy answers "should this new entry be allowed to
//     displace a resident one at all?" and gates inserts in front of
//     whatever eviction policy is active.
//
// Web objects span four-plus orders of magnitude in size, exactly the
// regime where pure recency (LRU) — and even Belady's fixed-size OPT — is
// suboptimal. GDSF folds size and frequency into the rank; TinyLFU keeps a
// frequency sketch of everything it has seen (including misses) so a
// one-hit wonder cannot flush a frequently re-read entry.
package cachestore

import (
	"fmt"
	"math"
	"sync/atomic"
)

// An EvictionPolicy chooses which resident entry a Store evicts first.
// Implementations are provided by this package (LRU, GDSF); the zero
// Options value selects LRU. The interface is sealed: per-entry rank
// bookkeeping is internal to the store.
type EvictionPolicy interface {
	// Name identifies the policy in flags and telemetry ("lru", "gdsf").
	Name() string
	// newRanker returns the store-wide ranking state, or nil to select
	// the recency-list exact-global-LRU fast path.
	newRanker() ranker
}

// ranker computes per-entry eviction ranks; the store evicts the entry
// with the globally smallest rank. Methods are called with a shard lock
// held, possibly from different shards concurrently, so shared state must
// be atomic.
type ranker interface {
	// onAccess returns the entry's rank after its freq-th access. size is
	// the entry's charged size.
	onAccess(freq uint32, size int64) uint64
	// onEvict observes the evicted victim's rank (GDSF aging: the global
	// inflation value L rises to the evicted priority).
	onEvict(rank uint64)
}

// lruPolicy is the default: exact global least-recently-used order via the
// store's recency lists and touch stamps, unchanged from before policies
// existed. Its ranker is nil, which keeps the pre-policy fast path.
type lruPolicy struct{}

// LRU returns the default exact-global-LRU eviction policy. A nil
// Options.Policy.Eviction selects the same behaviour.
func LRU() EvictionPolicy { return lruPolicy{} }

func (lruPolicy) Name() string      { return "lru" }
func (lruPolicy) newRanker() ranker { return nil }

// gdsfPolicy is greedy-dual size-frequency: rank = L + frequency/size,
// where L is a store-global inflation value raised to each victim's rank
// on eviction. Small, frequently-hit objects earn high ranks; large cold
// ones are evicted first; L ages out formerly popular entries that stop
// being touched.
type gdsfPolicy struct{}

// GDSF returns the greedy-dual size-frequency eviction policy
// (Cherkasova's GDSF with unit cost, optimizing object hit ratio while
// strongly preferring to spend bytes on small popular objects).
func GDSF() EvictionPolicy { return gdsfPolicy{} }

func (gdsfPolicy) Name() string      { return "gdsf" }
func (gdsfPolicy) newRanker() ranker { return &gdsfRanker{} }

// gdsfRanker holds L as float64 bits. Ranks are float64 bit patterns:
// IEEE 754 non-negative floats order identically to their bit patterns, so
// the store's uint64 rank comparisons stay a plain integer compare.
type gdsfRanker struct {
	l atomic.Uint64 // math.Float64bits(L); L only ever rises
}

func (g *gdsfRanker) onAccess(freq uint32, size int64) uint64 {
	if size < 1 {
		size = 1
	}
	p := math.Float64frombits(g.l.Load()) + float64(freq)/float64(size)
	return math.Float64bits(p)
}

func (g *gdsfRanker) onEvict(rank uint64) {
	for {
		cur := g.l.Load()
		if rank <= cur || g.l.CompareAndSwap(cur, rank) {
			return
		}
	}
}

// An AdmissionPolicy gates inserts: when storing a new key would exceed
// the byte budget, the store asks the policy whether the candidate may
// displace the would-be victim. Rejected candidates are simply not stored
// (counted as admission_rejects); resident keys are always updated in
// place. The interface is sealed like EvictionPolicy.
type AdmissionPolicy interface {
	// Name identifies the policy in flags and telemetry ("tinylfu").
	Name() string
	// newAdmitter returns the store-wide admission state.
	newAdmitter() admitter
}

// admitter is the per-store admission state. record is called on every
// access (hits, misses and puts) with the key's hash; admit compares the
// candidate against the eviction policy's current victim. Both are called
// without any shard lock held and must be safe for concurrent use.
type admitter interface {
	record(h uint64)
	admit(candidate, victim uint64) bool
}

// TinyLFUOptions tunes the TinyLFU admission filter.
type TinyLFUOptions struct {
	// Counters is the per-row width of the 4-row count-min sketch,
	// rounded up to a power of two. Zero selects 8192 (128 KiB of
	// sketch). Size it near the number of distinct objects a full cache
	// holds; too small inflates estimates, admitting too eagerly.
	Counters int
	// SampleSize is the number of recorded accesses between aging steps
	// (every counter halves, so frequency estimates decay and the filter
	// adapts when popularity shifts). Zero selects 10× Counters.
	SampleSize int
}

// TinyLFU returns a TinyLFU-style admission filter with default options: a
// count-min frequency sketch over everything the store has been asked
// about, gating each insert on estimate(candidate) ≥ estimate(victim).
func TinyLFU() AdmissionPolicy { return TinyLFUWith(TinyLFUOptions{}) }

// TinyLFUWith is TinyLFU with explicit sketch sizing.
func TinyLFUWith(opts TinyLFUOptions) AdmissionPolicy { return tinyLFUPolicy{opts: opts} }

type tinyLFUPolicy struct{ opts TinyLFUOptions }

func (tinyLFUPolicy) Name() string { return "tinylfu" }

func (p tinyLFUPolicy) newAdmitter() admitter {
	width := p.opts.Counters
	if width <= 0 {
		width = 8192
	}
	pow := 1
	for pow < width {
		pow <<= 1
	}
	sample := uint64(p.opts.SampleSize)
	if sample == 0 {
		sample = uint64(pow) * 10
	}
	return &tinylfuSketch{
		counters: make([]atomic.Uint32, sketchRows*pow),
		mask:     uint64(pow - 1),
		sample:   sample,
	}
}

const (
	sketchRows = 4
	// sketchMax caps counters at 4 bits of resolution, the classic
	// TinyLFU choice: admission only ever compares estimates, and capping
	// keeps one burst from dominating an entire aging window.
	sketchMax = 15
)

// sketchSeeds decorrelate the four rows; odd constants from splitmix64.
var sketchSeeds = [sketchRows]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0xd6e8feb86659fd93,
}

// tinylfuSketch is a 4-row count-min sketch with periodic halving. All
// operations are atomic but deliberately lossy under races (a dropped
// increment or a read during aging skews an estimate by at most one) —
// the sketch is approximate by construction and admission only compares
// two estimates.
type tinylfuSketch struct {
	counters []atomic.Uint32
	mask     uint64
	adds     atomic.Uint64
	sample   uint64
}

func (t *tinylfuSketch) idx(h uint64, row int) int {
	x := h ^ sketchSeeds[row]
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return row*int(t.mask+1) + int(x&t.mask)
}

func (t *tinylfuSketch) record(h uint64) {
	for r := 0; r < sketchRows; r++ {
		c := &t.counters[t.idx(h, r)]
		if v := c.Load(); v < sketchMax {
			c.Store(v + 1)
		}
	}
	if t.adds.Add(1)%t.sample == 0 {
		t.age()
	}
}

func (t *tinylfuSketch) estimate(h uint64) uint32 {
	est := uint32(math.MaxUint32)
	for r := 0; r < sketchRows; r++ {
		if v := t.counters[t.idx(h, r)].Load(); v < est {
			est = v
		}
	}
	return est
}

// admit favors the candidate on ties: the sketch has just recorded the
// candidate's access, and evicting a never-again-touched victim costs
// nothing, while rejecting a warming-up object costs its future hits.
func (t *tinylfuSketch) admit(candidate, victim uint64) bool {
	return t.estimate(candidate) >= t.estimate(victim)
}

// age halves every counter, exponentially decaying history so the filter
// tracks shifting popularity. Exactly one recorder triggers each step (Add
// returns unique values); concurrent records during the sweep lose at most
// their single increment.
func (t *tinylfuSketch) age() {
	for i := range t.counters {
		c := &t.counters[i]
		c.Store(c.Load() / 2)
	}
}

// Policy pairs an eviction policy with an optional admission filter. The
// zero value is the store default: exact global LRU, admit everything.
type Policy struct {
	// Eviction selects the victim ordering; nil means exact global LRU.
	Eviction EvictionPolicy
	// Admission, when set, gates budget-displacing inserts.
	Admission AdmissionPolicy
}

// Name returns the policy's flag spelling, e.g. "lru", "gdsf",
// "tinylfu-lru", "tinylfu-gdsf".
func (p Policy) Name() string {
	ev := "lru"
	if p.Eviction != nil {
		ev = p.Eviction.Name()
	}
	if p.Admission != nil {
		return p.Admission.Name() + "-" + ev
	}
	return ev
}

// PolicyNames lists the spellings ParsePolicy accepts, for flag usage
// strings.
func PolicyNames() []string {
	return []string{"lru", "gdsf", "tinylfu-lru", "tinylfu-gdsf"}
}

// ParsePolicy resolves a policy by name: "lru" (or empty), "gdsf",
// "tinylfu-lru" (TinyLFU admission in front of LRU eviction; "tinylfu"
// is accepted as shorthand), or "tinylfu-gdsf".
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "lru":
		return Policy{}, nil
	case "gdsf":
		return Policy{Eviction: GDSF()}, nil
	case "tinylfu", "tinylfu-lru":
		return Policy{Admission: TinyLFU()}, nil
	case "tinylfu-gdsf":
		return Policy{Eviction: GDSF(), Admission: TinyLFU()}, nil
	}
	return Policy{}, fmt.Errorf("cachestore: unknown policy %q (have lru, gdsf, tinylfu-lru, tinylfu-gdsf)", name)
}

// Rank-heap bookkeeping for non-LRU eviction policies. Each shard keeps
// its entries in a binary min-heap on node.linked (the policy rank as of
// the entry's last write-side positioning — lock-free reads store fresher
// ranks into node.stamp, and victim selection pays the difference off
// before trusting the root), so the shard's cheapest validated victim is
// heap[0] and the global victim is the smallest root across shards — the
// same O(shards) victim scan the LRU lists use, with O(log n) maintenance
// per write. All methods require the shard lock.

func (sh *shard[V]) heapPush(n *node[V]) {
	n.hidx = int32(len(sh.heap))
	sh.heap = append(sh.heap, n)
	sh.heapUp(int(n.hidx))
}

func (sh *shard[V]) heapRemove(n *node[V]) {
	i := int(n.hidx)
	last := len(sh.heap) - 1
	if i != last {
		sh.heap[i] = sh.heap[last]
		sh.heap[i].hidx = int32(i)
	}
	sh.heap[last] = nil
	sh.heap = sh.heap[:last]
	if i != last {
		sh.heapFix(sh.heap[i])
	}
	n.hidx = -1
}

func (sh *shard[V]) heapFix(n *node[V]) {
	i := int(n.hidx)
	if !sh.heapDown(i) {
		sh.heapUp(i)
	}
}

func (sh *shard[V]) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if sh.heap[parent].linked <= sh.heap[i].linked {
			break
		}
		sh.heapSwap(i, parent)
		i = parent
	}
}

// heapDown reports whether the node moved.
func (sh *shard[V]) heapDown(i int) bool {
	moved := false
	for {
		left := 2*i + 1
		if left >= len(sh.heap) {
			return moved
		}
		least := left
		if right := left + 1; right < len(sh.heap) && sh.heap[right].linked < sh.heap[left].linked {
			least = right
		}
		if sh.heap[i].linked <= sh.heap[least].linked {
			return moved
		}
		sh.heapSwap(i, least)
		i = least
		moved = true
	}
}

func (sh *shard[V]) heapSwap(i, j int) {
	sh.heap[i], sh.heap[j] = sh.heap[j], sh.heap[i]
	sh.heap[i].hidx = int32(i)
	sh.heap[j].hidx = int32(j)
}
