// Namespaced views: the tenant dimension of the cache core.
//
// A multi-tenant edge tier must give each application its own cache budget
// — Ma et al.'s app-scoped-cache argument, and the shape CacheLib's pools
// take — without giving up the warm-path properties the shared core earned.
// Store.Namespace carves a store into named sub-stores that inherit the
// parent's configuration (shard count, size accounting, eviction/admission
// policy, telemetry registry) while owning their bytes, their eviction
// order and their budget outright:
//
//   - Per-namespace byte accounting: each namespace's Bytes()/Len() count
//     only its own entries, and the parent's TotalBytes() sums the family.
//   - Isolation by construction: a namespace's eviction scan never visits
//     another namespace's entries, so one tenant filling (or thrashing) its
//     budget cannot starve a sibling — the failure mode a shared flat
//     budget invites under a crawler-shaped tenant.
//   - The lock-free read path is untouched: a namespace IS a Store, running
//     the exact same Get/GetBytes fast lane, which is what the differential
//     test (namespace views vs independent stores) pins.
//
// Namespaces are memoized: the same name always returns the same child, so
// concurrent request paths can call Namespace on every request and share
// state. Budgets default to the parent's current budget (the semantics of
// "an independent store configured like the parent"); tenants with explicit
// budgets call Resize or pass NamespaceOptions.MaxBytes on first use.
package cachestore

// NamespaceOptions tunes a namespace at creation. Only the first call for
// a given name creates the child; later calls return the memoized store
// and ignore the options.
type NamespaceOptions struct {
	// MaxBytes is the namespace's byte budget. Zero inherits the parent's
	// current budget; negative means unbounded.
	MaxBytes int64
	// TelemetryName overrides the child's instrument prefix in the
	// parent's registry. Empty selects "<parent name>.ns.<name>"; with no
	// parent registry or name, no instruments are registered either way.
	TelemetryName string
	// Policy, when non-nil, overrides the child's eviction/admission
	// policy; nil inherits the parent's.
	Policy *Policy
}

// Namespace returns the named sub-store, creating it on first use with the
// parent's configuration and budget. See NamespaceWith for tuning.
func (s *Store[V]) Namespace(name string) *Store[V] {
	return s.NamespaceWith(name, NamespaceOptions{})
}

// NamespaceWith is Namespace with creation-time options.
func (s *Store[V]) NamespaceWith(name string, nsOpts NamespaceOptions) *Store[V] {
	s.nsMu.Lock()
	defer s.nsMu.Unlock()
	if c, ok := s.children[name]; ok {
		return c
	}
	opts := s.opts
	opts.MaxBytes = nsOpts.MaxBytes
	if opts.MaxBytes == 0 {
		opts.MaxBytes = s.maxBytes.Load()
	} else if opts.MaxBytes < 0 {
		opts.MaxBytes = 0 // unbounded in Store terms
	}
	if nsOpts.Policy != nil {
		opts.Policy = *nsOpts.Policy
	}
	switch {
	case nsOpts.TelemetryName != "":
		opts.Name = nsOpts.TelemetryName
	case opts.Name != "":
		opts.Name = opts.Name + ".ns." + name
	}
	c := New(opts)
	if s.children == nil {
		s.children = make(map[string]*Store[V])
	}
	s.children[name] = c
	return c
}

// NamespaceNames returns the names of the namespaces created so far, in no
// particular order.
func (s *Store[V]) NamespaceNames() []string {
	s.nsMu.Lock()
	defer s.nsMu.Unlock()
	names := make([]string, 0, len(s.children))
	for n := range s.children {
		names = append(names, n)
	}
	return names
}

// TotalBytes returns the charged bytes of the store and every namespace
// under it — the number a process-level memory budget watches.
func (s *Store[V]) TotalBytes() int64 {
	total := s.Bytes()
	s.nsMu.Lock()
	children := make([]*Store[V], 0, len(s.children))
	for _, c := range s.children {
		children = append(children, c)
	}
	s.nsMu.Unlock()
	for _, c := range children {
		total += c.TotalBytes()
	}
	return total
}

// TotalLen returns the entry count of the store and every namespace under
// it.
func (s *Store[V]) TotalLen() int {
	total := s.Len()
	s.nsMu.Lock()
	children := make([]*Store[V], 0, len(s.children))
	for _, c := range s.children {
		children = append(children, c)
	}
	s.nsMu.Unlock()
	for _, c := range children {
		total += c.TotalLen()
	}
	return total
}
