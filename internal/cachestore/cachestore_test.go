package cachestore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func sized(maxBytes int64) *Store[string] {
	return New[string](Options[string]{
		MaxBytes: maxBytes,
		SizeOf:   func(_ string, v string) int64 { return int64(len(v)) },
	})
}

func TestPutGetPeekDelete(t *testing.T) {
	s := New[int](Options[int]{})
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put("a", 1)
	s.Put("b", 2)
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if v, ok := s.Peek("b"); !ok || v != 2 {
		t.Fatalf("Peek(b) = %d, %v", v, ok)
	}
	if s.Len() != 2 || s.Bytes() != 2 { // default SizeOf charges 1
		t.Fatalf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
	if !s.Delete("a") || s.Delete("a") {
		t.Fatal("Delete bookkeeping wrong")
	}
	if s.Len() != 1 || s.Bytes() != 1 {
		t.Fatalf("after delete: Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
	s.Clear()
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("after clear: Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Puts != 2 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestReplaceAccountsBytes(t *testing.T) {
	s := sized(100)
	s.Put("k", "0123456789")
	s.Put("k", "abc")
	if s.Bytes() != 3 || s.Len() != 1 {
		t.Fatalf("Bytes=%d Len=%d", s.Bytes(), s.Len())
	}
	if v, _ := s.Get("k"); v != "abc" {
		t.Fatalf("v = %q", v)
	}
}

// TestGlobalLRUAcrossShards drives many keys — spread over every shard —
// through a byte budget and asserts the eviction order is exactly global
// LRU, which is the point of the per-entry touch stamps.
func TestGlobalLRUAcrossShards(t *testing.T) {
	s := New[string](Options[string]{
		Shards:   16,
		MaxBytes: 10,
		SizeOf:   func(string, string) int64 { return 1 },
	})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%02d", i), "x")
	}
	// Touch the first five so the second five become the LRU block.
	for i := 0; i < 5; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%02d", i)); !ok {
			t.Fatalf("k%02d missing before eviction", i)
		}
	}
	for i := 10; i < 15; i++ {
		s.Put(fmt.Sprintf("k%02d", i), "x")
	}
	for i := 5; i < 10; i++ {
		if _, ok := s.Peek(fmt.Sprintf("k%02d", i)); ok {
			t.Errorf("k%02d should have been evicted (global LRU)", i)
		}
	}
	for i := 0; i < 5; i++ {
		if _, ok := s.Peek(fmt.Sprintf("k%02d", i)); !ok {
			t.Errorf("recently touched k%02d was evicted", i)
		}
	}
	if c := s.Counters(); c.Evictions != 5 {
		t.Fatalf("evictions = %d, want 5", c.Evictions)
	}
}

func TestOverBudgetEntryEvictedEntirely(t *testing.T) {
	s := sized(5)
	s.Put("big", "0123456789")
	if s.Bytes() > 5 || s.Len() != 0 {
		t.Fatalf("Bytes=%d Len=%d after over-budget put", s.Bytes(), s.Len())
	}
	s.Put("ok", "abc")
	if _, ok := s.Get("ok"); !ok {
		t.Fatal("store broken after over-budget put")
	}
}

func TestOnEvictObservesOnlyBudgetEvictions(t *testing.T) {
	var evicted []string
	s := New[string](Options[string]{
		MaxBytes: 2,
		OnEvict:  func(k string, _ string) { evicted = append(evicted, k) },
	})
	s.Put("a", "1")
	s.Put("a", "2") // replacement: no callback
	s.Put("b", "1")
	s.Delete("b") // delete: no callback
	s.Put("b", "1")
	s.Put("c", "1") // budget: evicts a
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted = %v", evicted)
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	s := New[string](Options[string]{MaxBytes: 2})
	s.Put("a", "")
	s.Put("b", "")
	if _, ok := s.Peek("a"); !ok { // must NOT promote a
		t.Fatal("peek miss")
	}
	s.Put("c", "") // evicts a (still LRU despite the peek)
	if _, ok := s.Peek("a"); ok {
		t.Fatal("Peek promoted the entry")
	}
	if c := s.Counters(); c.Hits != 0 && c.Misses != 0 {
		t.Fatalf("Peek touched counters: %+v", c)
	}
}

func TestKeys(t *testing.T) {
	s := New[int](Options[int]{})
	want := map[string]bool{"a": true, "b": true, "c": true}
	for k := range want {
		s.Put(k, 1)
	}
	got := s.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys = %v", got)
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("unexpected key %q", k)
		}
	}
}

func TestDoCollapsesConcurrentLoads(t *testing.T) {
	s := New[int](Options[int]{})
	var calls atomic.Int64
	start := make(chan struct{})
	release := make(chan struct{})
	const waiters = 16

	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, _, err := s.Do("k", func() (int, error) {
				calls.Add(1)
				<-release // hold the flight open until everyone queued
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let the waiters pile onto the flight
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("loader ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
	if c := s.Counters(); c.Loads != 1 || c.LoadsShared != waiters-1 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestDoPanicDoesNotStrandWaiters(t *testing.T) {
	s := New[int](Options[int]{})
	inFlight := make(chan struct{})
	release := make(chan struct{})

	go func() {
		defer func() { recover() }()
		s.Do("k", func() (int, error) {
			close(inFlight)
			<-release
			panic("loader bug")
		})
	}()
	<-inFlight

	done := make(chan error, 1)
	go func() {
		_, _, err := s.Do("k", func() (int, error) { return 0, nil })
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("waiter saw no error from the panicked flight")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded after loader panic")
	}
}

func TestGetOrLoad(t *testing.T) {
	s := New[string](Options[string]{})
	var calls atomic.Int64
	load := func() (string, error) {
		calls.Add(1)
		return "v", nil
	}
	for i := 0; i < 3; i++ {
		v, err := s.GetOrLoad("k", load)
		if err != nil || v != "v" {
			t.Fatalf("GetOrLoad = %q, %v", v, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times", calls.Load())
	}
	if _, ok := s.Peek("k"); !ok {
		t.Fatal("loaded value not stored")
	}
	// Errors are not cached.
	_, err := s.GetOrLoad("bad", func() (string, error) { return "", fmt.Errorf("nope") })
	if err == nil {
		t.Fatal("error swallowed")
	}
	if _, ok := s.Peek("bad"); ok {
		t.Fatal("failed load was cached")
	}
}

// TestConcurrentStress hammers one bounded store from many goroutines and
// then audits every invariant the store promises: byte accounting matches
// the surviving entries, the budget holds, and the counters add up.
func TestConcurrentStress(t *testing.T) {
	t.Parallel()
	s := New[string](Options[string]{
		Shards:   8,
		MaxBytes: 1 << 12,
		SizeOf:   func(_ string, v string) int64 { return int64(len(v)) },
	})
	var gets, wantHitsPlusMisses atomic.Int64

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			val := string(make([]byte, 64))
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("/asset-%d", (g*31+i*7)%200)
				switch i % 5 {
				case 0, 1:
					s.Put(key, val)
				case 2, 3:
					s.Get(key)
					gets.Add(1)
				case 4:
					if i%20 == 4 {
						s.Delete(key)
					} else {
						s.GetOrLoad(key, func() (string, error) { return val, nil })
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if s.Bytes() > 1<<12 {
		t.Fatalf("store over budget after stress: %d", s.Bytes())
	}
	var sum int64
	for _, k := range s.Keys() {
		v, ok := s.Peek(k)
		if !ok {
			t.Fatalf("Keys returned vanished key %q", k)
		}
		sum += int64(len(v))
	}
	if sum != s.Bytes() {
		t.Fatalf("byte accounting drifted: sum=%d Bytes=%d", sum, s.Bytes())
	}
	c := s.Counters()
	wantHitsPlusMisses.Store(gets.Load())
	if c.Hits+c.Misses < wantHitsPlusMisses.Load() {
		t.Fatalf("hits+misses=%d < observed gets %d (%+v)", c.Hits+c.Misses, wantHitsPlusMisses.Load(), c)
	}
	if c.Puts == 0 || c.Evictions == 0 {
		t.Fatalf("stress produced no puts/evictions: %+v", c)
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditDetectsDrift(t *testing.T) {
	s := New[string](Options[string]{
		SizeOf: func(_ string, v string) int64 { return int64(len(v)) },
	})
	s.Put("/a", "aaaa")
	s.Put("/b", "bb")
	if err := s.Audit(); err != nil {
		t.Fatalf("clean store failed audit: %v", err)
	}
	s.bytes.Add(3) // simulate an accounting bug
	if err := s.Audit(); err == nil {
		t.Fatal("audit missed a byte-counter drift")
	}
	s.bytes.Add(-3)
	s.Delete("/a")
	s.Clear()
	if err := s.Audit(); err != nil {
		t.Fatalf("empty store failed audit: %v", err)
	}
}
