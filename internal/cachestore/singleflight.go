package cachestore

import (
	"fmt"
	"sync"
)

// flightCall is one in-flight load; waiters block on wg and then read val
// and err, which the executor writes before wg.Done.
type flightCall[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

type flightGroup[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

// Do runs fn for key with singleflight semantics: while one execution is in
// flight, concurrent callers for the same key wait and share its result
// instead of running their own. shared reports whether the result came from
// another caller's execution. Do itself never reads or writes the store —
// callers compose it with Get/Put (or use GetOrLoad) when the result should
// be cached.
func (s *Store[V]) Do(key string, fn func() (V, error)) (v V, shared bool, err error) {
	s.flight.mu.Lock()
	if c, ok := s.flight.calls[key]; ok {
		s.flight.mu.Unlock()
		c.wg.Wait()
		s.loadsShared.Add(1)
		return c.val, true, c.err
	}
	c := &flightCall[V]{}
	c.wg.Add(1)
	s.flight.calls[key] = c
	s.flight.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			// Fail the waiters before re-panicking, so a loader panic
			// can never strand goroutines on wg.Wait.
			c.err = fmt.Errorf("cachestore: load for %q panicked: %v", key, r)
			s.flight.mu.Lock()
			delete(s.flight.calls, key)
			s.flight.mu.Unlock()
			c.wg.Done()
			panic(r)
		}
		s.flight.mu.Lock()
		delete(s.flight.calls, key)
		s.flight.mu.Unlock()
		c.wg.Done()
	}()
	s.loads.Add(1)
	c.val, c.err = fn()
	return c.val, false, c.err
}

// GetOrLoad returns the cached value for key, or runs load — exactly once
// across concurrent callers of the same key — and stores the result on
// success. Callers that need finer control (TTLs, negative caching) use
// Get/Peek/Put and Do directly.
func (s *Store[V]) GetOrLoad(key string, load func() (V, error)) (V, error) {
	if v, ok := s.Get(key); ok {
		return v, nil
	}
	v, _, err := s.Do(key, func() (V, error) {
		// Re-check inside the flight: a previous flight may have stored
		// the value between our miss and our turn.
		if v, ok := s.Get(key); ok {
			return v, nil
		}
		v, err := load()
		if err == nil {
			s.Put(key, v)
		}
		return v, err
	})
	return v, err
}
