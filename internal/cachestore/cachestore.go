// Package cachestore is the one cache core every cache in this repository
// builds on: a sharded, byte-budgeted LRU key-value store, generic over the
// value type, with a lock-free read path, singleflight loading and atomic
// hit/miss/eviction counters.
//
// The paper's server-side argument is that redundant work — like redundant
// round trips — is pure waste. Before this package the repository carried
// four independently hand-rolled caches (the client's response map, the
// RFC 9111 browser cache, the Service-Worker cache storage, and the
// middleware's probe cache), each with its own eviction bugs and none safe
// to share between goroutines. They now all store through a Store.
//
// # Warm-path fast lane
//
// A fully-warm Get touches no mutex. Each shard keeps its key→entry index
// in a read-mostly concurrent map (sync.Map) that readers load from
// lock-free; an entry's value, key and size are immutable after
// publication, so a reader can never observe a torn entry — replacing a
// key's value publishes a whole new entry, and an entry removed while a
// reader holds it simply stays readable until the reader drops it (the
// garbage collector is the epoch reclamation: memory is reused only after
// the last reader lets go).
//
// Recency is recorded lock-free too: a Get bumps the entry's eviction rank
// with a single atomic store and touches nothing else. The per-shard
// ordering structures (recency list, rank heap) are maintained only by
// writers — under the shard mutex — and are allowed to go stale while a
// shard takes only reads. Victim selection revalidates lazily: a candidate
// whose live rank no longer matches its linked position is re-linked (paying
// off the deferred promotions) and the scan repeats, so the entry finally
// chosen is exactly the globally smallest live rank. Ranks only grow —
// LRU stamps come off a monotone counter, GDSF priorities only inflate —
// which is what makes "candidate's rank unchanged since linking" prove
// global minimality. Single-threaded eviction order is therefore exactly
// what the pre-lock-free store produced; concurrent races can at worst pick
// a near-minimal victim, the same tolerance the sharded scan always had.
//
// Eviction and admission are pluggable (Options.Policy; see policy.go).
// The default is globally exact LRU regardless of the shard count: every
// entry carries a store-wide touch stamp, each shard's list is ordered by
// stamp, so the globally least-recently-used entry is always the shard
// tail with the smallest stamp — found by one O(shards) scan, no global
// lock. Rank-based policies (GDSF) replace the per-shard recency list
// with a per-shard min-heap on the policy rank and evict the smallest
// root the same way; an admission policy (TinyLFU) additionally gates
// budget-displacing inserts.
package cachestore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cachecatalyst/internal/telemetry"
)

// Options configures a Store.
type Options[V any] struct {
	// Shards is the number of independent mutex-protected segments keys
	// hash across. Zero selects 16; values are rounded up to a power of
	// two (capped at 256). More shards mean less write-lock contention
	// under concurrent load; eviction order is unaffected. Reads never
	// take a shard lock regardless.
	Shards int
	// MaxBytes bounds the sum of entry sizes as reported by SizeOf;
	// 0 means unbounded. The least-recently-used entry (across all
	// shards) is evicted first.
	MaxBytes int64
	// SizeOf reports an entry's accounting size. Nil charges 1 per
	// entry, turning MaxBytes into a maximum entry count.
	SizeOf func(key string, v V) int64
	// Policy selects the eviction policy and optional admission filter.
	// The zero value is exact global LRU admitting everything — the
	// pre-policy behaviour, on the pre-policy fast path.
	Policy Policy
	// OnEvict, when set, observes budget evictions — not Delete, Clear
	// or replacement. It is called with no shard lock held, so it may
	// call back into the store.
	OnEvict func(key string, v V)
	// Telemetry, when set together with Name, registers the store's
	// counters in the given registry as "<Name>.hits", "<Name>.misses",
	// "<Name>.puts", "<Name>.evictions", "<Name>.loads",
	// "<Name>.loads_shared", "<Name>.admission_rejects" and
	// "<Name>.victim_scans". The registry indexes the store's own
	// counters — Counters() and the registry snapshot read the same
	// storage.
	Telemetry *telemetry.Registry
	// Name qualifies the store's instruments in Telemetry.
	Name string
}

// Counters is a snapshot of a store's atomic counters.
type Counters struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Puts counts insertions and replacements; Evictions counts entries
	// removed to respect the byte budget.
	Puts, Evictions int64
	// Loads counts loader executions by Do/GetOrLoad; LoadsShared counts
	// callers that piggybacked on another goroutine's in-flight load
	// instead of running their own.
	Loads, LoadsShared int64
	// AdmissionRejects counts inserts the admission policy refused;
	// VictimScans counts candidate entries examined while selecting
	// victims (one per non-empty shard peeked per selection pass).
	AdmissionRejects, VictimScans int64
}

// node is one resident entry. key, val and size are immutable after the
// entry is published in its shard's index, which is what makes lock-free
// reads safe: replacing a key's value installs a fresh node. stamp is the
// entry's live eviction rank, updated by lock-free readers; linked is the
// rank the entry's list/heap position reflects, touched only under the
// shard mutex. stamp only ever grows, and stamp == linked means the
// position is current.
type node[V any] struct {
	key  string
	val  V
	size int64
	// stamp is the entry's live eviction rank — the smallest rank in the
	// store is evicted first. Under the default LRU policy it is the
	// store-wide touch counter value at the last Get/Put (smaller means
	// less recently used); under a rank policy it is whatever the
	// ranker computed at the last access. Written lock-free by Get.
	stamp atomic.Uint64
	// linked is the rank at which the entry was last positioned in its
	// shard's recency list or rank heap. Guarded by the shard mutex.
	linked uint64
	// freq counts this entry's accesses while resident (saturating;
	// racing increments may be lost, which only rankers consume and the
	// rank policies tolerate by construction).
	freq atomic.Uint32
	// hidx is the entry's index in its shard's rank heap; -1 when the
	// store runs the LRU list path instead.
	hidx       int32
	prev, next *node[V]
}

type shard[V any] struct {
	mu sync.Mutex
	// index maps key → *node[V]. Readers Load lock-free; all mutation
	// happens under mu, so writers see a consistent membership.
	index sync.Map
	count atomic.Int64 // resident entries; mutated under mu
	head  *node[V]     // most recently linked (LRU policy only)
	tail  *node[V]     // least recently linked (LRU policy only)
	heap  []*node[V]   // min-heap on linked rank (rank policies only)
}

// The shard list operations require the shard mutex.

func (s *shard[V]) pushFront(n *node[V]) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	} else {
		s.tail = n
	}
	s.head = n
}

func (s *shard[V]) unlink(n *node[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// relink pays off a deferred lock-free promotion: the node's live stamp ran
// ahead of its list position, so unhook it and re-insert it in descending
// linked-stamp order. Promotions carry recent stamps, so the insertion point
// is almost always the head — O(1) amortized. Requires the shard mutex.
func (s *shard[V]) relink(n *node[V], stamp uint64) {
	n.linked = stamp
	s.unlink(n)
	at := s.head
	for at != nil && at.linked > stamp {
		at = at.next
	}
	switch {
	case at == nil: // empty list or smallest stamp: new tail
		if s.tail != nil {
			n.prev, s.tail.next = s.tail, n
			s.tail = n
		} else {
			s.head, s.tail = n, n
		}
	case at == s.head:
		s.pushFront(n)
	default: // insert before at
		n.prev, n.next = at.prev, at
		at.prev.next, at.prev = n, n
	}
}

// Store is a sharded LRU store with lock-free reads. The zero value is not
// usable; construct with New. A Store is safe for concurrent use.
type Store[V any] struct {
	shards  []shard[V]
	mask    uint64
	sizeOf  func(string, V) int64
	onEvict func(string, V)
	ranker  ranker   // nil selects the recency-list exact-LRU path
	admit   admitter // nil admits everything

	maxBytes atomic.Int64 // live-adjustable via Resize
	bytes    atomic.Int64
	touch    atomic.Uint64 // LRU stamps

	hits, misses, puts, evictions telemetry.Counter
	loads, loadsShared            telemetry.Counter
	admissionRejects, victimScans telemetry.Counter

	flight flightGroup[V]

	// opts is the construction configuration, retained so Namespace can
	// spawn children that inherit it; children maps namespace name → child
	// store (see namespace.go). Guarded by nsMu.
	opts     Options[V]
	nsMu     sync.Mutex
	children map[string]*Store[V]
}

// New returns an empty store.
func New[V any](opts Options[V]) *Store[V] {
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	pow := 1
	for pow < n && pow < 256 {
		pow <<= 1
	}
	s := &Store[V]{
		shards:  make([]shard[V], pow),
		mask:    uint64(pow - 1),
		sizeOf:  opts.SizeOf,
		onEvict: opts.OnEvict,
		opts:    opts,
	}
	s.maxBytes.Store(opts.MaxBytes)
	if ev := opts.Policy.Eviction; ev != nil {
		s.ranker = ev.newRanker()
	}
	if ad := opts.Policy.Admission; ad != nil {
		s.admit = ad.newAdmitter()
	}
	if s.sizeOf == nil {
		s.sizeOf = func(string, V) int64 { return 1 }
	}
	s.flight.calls = make(map[string]*flightCall[V])
	if opts.Telemetry != nil && opts.Name != "" {
		opts.Telemetry.RegisterCounter(opts.Name+".hits", &s.hits)
		opts.Telemetry.RegisterCounter(opts.Name+".misses", &s.misses)
		opts.Telemetry.RegisterCounter(opts.Name+".puts", &s.puts)
		opts.Telemetry.RegisterCounter(opts.Name+".evictions", &s.evictions)
		opts.Telemetry.RegisterCounter(opts.Name+".loads", &s.loads)
		opts.Telemetry.RegisterCounter(opts.Name+".loads_shared", &s.loadsShared)
		opts.Telemetry.RegisterCounter(opts.Name+".admission_rejects", &s.admissionRejects)
		opts.Telemetry.RegisterCounter(opts.Name+".victim_scans", &s.victimScans)
	}
	return s
}

// hashKey is inline FNV-1a; good spread on URL-shaped keys, no allocation.
// The same hash selects the shard and feeds the admission sketch.
func hashKey(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (s *Store[V]) shard(key string) (*shard[V], uint64) {
	h := hashKey(key)
	return &s.shards[h&s.mask], h
}

// Get returns the value for key, promoting it under the active eviction
// policy and counting the hit or miss. A warm hit acquires no mutex: the
// lookup reads the shard's concurrent index and the promotion is one atomic
// rank store, deferred into the shard's ordering structures until the next
// write needs them (see the package comment's warm-path fast lane).
func (s *Store[V]) Get(key string) (V, bool) {
	sh, h := s.shard(key)
	if s.admit != nil {
		s.admit.record(h)
	}
	e, ok := sh.index.Load(key)
	if !ok {
		s.misses.Add(1)
		var zero V
		return zero, false
	}
	n := e.(*node[V])
	s.promote(n)
	s.hits.Add(1)
	return n.val, true
}

// GetBytes is Get for callers that assembled the key in a scratch buffer:
// the lookup indexes with string(key) directly, which the compiler performs
// without copying, so a warm hit allocates nothing. The promotion and
// counter semantics are identical to Get.
func (s *Store[V]) GetBytes(key []byte) (V, bool) {
	sh := &s.shards[hashKeyBytes(key)&s.mask]
	if s.admit != nil {
		s.admit.record(hashKeyBytes(key))
	}
	e, ok := sh.index.Load(string(key))
	if !ok {
		s.misses.Add(1)
		var zero V
		return zero, false
	}
	n := e.(*node[V])
	s.promote(n)
	s.hits.Add(1)
	return n.val, true
}

// hashKeyBytes is hashKey over a byte slice.
func hashKeyBytes(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// promote records an access on a resident entry with atomics only: LRU
// stores a fresh touch stamp; rank policies bump the (saturating, lossy
// under races) frequency and store the recomputed rank. The entry's
// list/heap position is intentionally left stale — victim selection
// revalidates it before trusting it.
func (s *Store[V]) promote(n *node[V]) {
	if s.ranker == nil {
		n.stamp.Store(s.touch.Add(1))
		return
	}
	f := n.freq.Load()
	if f != ^uint32(0) {
		f++
		n.freq.Store(f)
	}
	n.stamp.Store(s.ranker.onAccess(f, n.size))
}

// Peek returns the value for key without touching eviction order or
// counters. Lock-free.
func (s *Store[V]) Peek(key string) (V, bool) {
	sh, _ := s.shard(key)
	e, ok := sh.index.Load(key)
	if !ok {
		var zero V
		return zero, false
	}
	return e.(*node[V]).val, true
}

// Put stores v under key, replacing any previous entry, then enforces the
// byte budget. With an admission policy, a new key whose insert would
// exceed the budget is stored only if the policy judges it more valuable
// than the current victim; resident keys are always updated in place.
func (s *Store[V]) Put(key string, v V) {
	size := s.sizeOf(key, v)
	sh, h := s.shard(key)
	// The admission question is asked before taking the insert shard's
	// lock — victim peeking locks shards one at a time and must never
	// nest. The gap between the peek and the insert is benign: the
	// sketch is approximate, and a racing eviction merely changes which
	// near-minimal victim the candidate was compared against.
	var victimHash uint64
	askAdmission := false
	if s.admit != nil {
		s.admit.record(h)
		if max := s.maxBytes.Load(); max > 0 && s.bytes.Load()+size > max {
			if vk, ok := s.peekVictimKey(); ok && vk != key {
				victimHash = hashKey(vk)
				askAdmission = true
			}
		}
	}
	sh.mu.Lock()
	var old *node[V]
	if e, ok := sh.index.Load(key); ok {
		old = e.(*node[V])
	}
	if old == nil && askAdmission && !s.admit.admit(h, victimHash) {
		sh.mu.Unlock()
		s.admissionRejects.Add(1)
		return
	}
	// Replacement installs a fresh node so concurrent lock-free readers
	// never observe a half-updated entry; the rank it starts with is the
	// same one the locked store would have promoted the old entry to.
	n := &node[V]{key: key, val: v, size: size, hidx: -1}
	freq := uint32(1)
	if old != nil && s.ranker != nil {
		if f := old.freq.Load(); f == ^uint32(0) {
			freq = f
		} else {
			freq = f + 1
		}
	}
	n.freq.Store(freq)
	var rank uint64
	if s.ranker == nil {
		rank = s.touch.Add(1)
	} else {
		rank = s.ranker.onAccess(freq, size)
	}
	n.stamp.Store(rank)
	n.linked = rank
	if old != nil {
		s.bytes.Add(size - old.size)
		s.unhook(sh, old)
	} else {
		s.bytes.Add(size)
		sh.count.Add(1)
	}
	if s.ranker == nil {
		// rank came off the monotone touch counter under the lock, so it
		// is the largest linked stamp in the shard: the head is exact.
		sh.pushFront(n)
	} else {
		sh.heapPush(n)
	}
	sh.index.Store(key, n)
	sh.mu.Unlock()
	s.puts.Add(1)
	s.enforceBudget()
}

// enforceBudget evicts globally-least-recently-used entries until the byte
// budget is respected. Concurrent evictors can race on the choice of
// victim; each still evicts some near-LRU entry and the loop re-checks the
// budget, so the store converges. Single-threaded use is exactly LRU.
func (s *Store[V]) enforceBudget() {
	max := s.maxBytes.Load()
	if max <= 0 {
		return
	}
	for s.bytes.Load() > max {
		key, val, ok := s.evictOne()
		if !ok {
			return
		}
		s.evictions.Add(1)
		if s.onEvict != nil {
			s.onEvict(key, val)
		}
		max = s.maxBytes.Load()
	}
}

// victim returns the shard's eviction candidate with its live rank paid
// off: the list tail under LRU, the heap root under a rank policy. A
// candidate whose live stamp ran ahead of its linked position is re-linked
// and the peek repeats, so the returned entry's position is current — which
// (ranks only grow) proves it is the shard's true minimum. The iteration
// bound only matters under concurrent promotion storms, where a near-
// minimal victim is acceptable; single-threaded the loop settles exactly.
// Requires the shard lock.
func (s *Store[V]) victim(sh *shard[V]) *node[V] {
	limit := int(sh.count.Load()) + 8
	if s.ranker == nil {
		for i := 0; ; i++ {
			t := sh.tail
			if t == nil {
				return nil
			}
			live := t.stamp.Load()
			if live == t.linked || i >= limit {
				return t
			}
			sh.relink(t, live)
		}
	}
	for i := 0; ; i++ {
		if len(sh.heap) == 0 {
			return nil
		}
		r := sh.heap[0]
		live := r.stamp.Load()
		if live == r.linked || i >= limit {
			return r
		}
		r.linked = live
		sh.heapFix(r)
	}
}

// findVictimShard scans every shard for the globally smallest rank,
// counting the candidates examined. Shards are locked one at a time —
// never nested — so selection cannot deadlock with Put or other evictors.
func (s *Store[V]) findVictimShard() int {
	best := -1
	var bestStamp uint64
	scanned := int64(0)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if n := s.victim(sh); n != nil {
			scanned++
			if best < 0 || n.linked < bestStamp {
				best, bestStamp = i, n.linked
			}
		}
		sh.mu.Unlock()
	}
	if scanned > 0 {
		s.victimScans.Add(scanned)
	}
	return best
}

// peekVictimKey names the current global eviction candidate without
// removing it, for admission comparisons.
func (s *Store[V]) peekVictimKey() (string, bool) {
	best := s.findVictimShard()
	if best < 0 {
		return "", false
	}
	sh := &s.shards[best]
	sh.mu.Lock()
	n := s.victim(sh)
	sh.mu.Unlock()
	if n == nil {
		return "", false
	}
	return n.key, true
}

// evictOne removes and returns the entry with the smallest rank.
func (s *Store[V]) evictOne() (string, V, bool) {
	var zero V
	best := s.findVictimShard()
	if best < 0 {
		return "", zero, false
	}
	sh := &s.shards[best]
	sh.mu.Lock()
	n := s.victim(sh)
	if n == nil {
		// A concurrent evictor drained this shard between the scan and
		// the re-lock; it is making progress, so stop here.
		sh.mu.Unlock()
		return "", zero, false
	}
	s.remove(sh, n)
	sh.mu.Unlock()
	if s.ranker != nil {
		s.ranker.onEvict(n.linked)
	}
	return n.key, n.val, true
}

// unhook detaches a node from its shard's ordering structure (not the
// index). Requires the shard lock.
func (s *Store[V]) unhook(sh *shard[V], n *node[V]) {
	if s.ranker == nil {
		sh.unlink(n)
	} else {
		sh.heapRemove(n)
	}
}

// remove unhooks a resident entry from its shard's bookkeeping. Requires
// the shard lock.
func (s *Store[V]) remove(sh *shard[V], n *node[V]) {
	s.unhook(sh, n)
	sh.index.Delete(n.key)
	sh.count.Add(-1)
	s.bytes.Add(-n.size)
}

// Delete removes the entry for key, reporting whether one existed.
func (s *Store[V]) Delete(key string) bool {
	sh, _ := s.shard(key)
	sh.mu.Lock()
	e, ok := sh.index.Load(key)
	if ok {
		s.remove(sh, e.(*node[V]))
	}
	sh.mu.Unlock()
	return ok
}

// Clear empties the store. Counters are not reset. Readers that already
// hold an entry keep reading it consistently — entries are immutable and
// reclaimed by the garbage collector once the last reader drops them.
func (s *Store[V]) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.index.Range(func(k, e any) bool {
			s.bytes.Add(-e.(*node[V]).size)
			sh.index.Delete(k)
			return true
		})
		sh.count.Store(0)
		sh.head, sh.tail = nil, nil
		sh.heap = nil
		sh.mu.Unlock()
	}
}

// Resize changes the byte budget while the store serves traffic, evicting
// down under the active policy when the new budget is smaller. A budget of
// 0 or less removes the bound. Concurrent Puts observe the new budget as
// soon as it is stored.
func (s *Store[V]) Resize(maxBytes int64) {
	s.maxBytes.Store(maxBytes)
	s.enforceBudget()
}

// MaxBytes returns the current byte budget (0 = unbounded).
func (s *Store[V]) MaxBytes() int64 { return s.maxBytes.Load() }

// Len returns the number of stored entries.
func (s *Store[V]) Len() int {
	total := int64(0)
	for i := range s.shards {
		total += s.shards[i].count.Load()
	}
	return int(total)
}

// Bytes returns the total accounting size of stored entries.
func (s *Store[V]) Bytes() int64 { return s.bytes.Load() }

// Keys returns the stored keys, in no particular order.
func (s *Store[V]) Keys() []string {
	keys := make([]string, 0, 64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.index.Range(func(k, _ any) bool {
			keys = append(keys, k.(string))
			return true
		})
		sh.mu.Unlock()
	}
	return keys
}

// Audit cross-checks the store's bookkeeping invariants: every shard's
// eviction structure (recency list under LRU, rank heap under a rank
// policy) and index must agree entry for entry, the ordering invariant must
// hold (list order follows the linked stamps; the heap property holds on
// linked ranks; no live rank lags its linked position), and the charged
// sizes must sum to Bytes(). It returns the first inconsistency found, or
// nil. Audit is meant for tests — the byte total is only meaningful when no
// concurrent mutation is in flight.
func (s *Store[V]) Audit() error {
	var total int64
	for i := range s.shards {
		n, err := s.auditShard(i)
		if err != nil {
			return err
		}
		total += n
	}
	if got := s.bytes.Load(); got != total {
		return fmt.Errorf("cachestore: byte counter %d, entries sum to %d", got, total)
	}
	return nil
}

// auditShard checks one shard's invariants and returns its charged bytes.
func (s *Store[V]) auditShard(i int) (int64, error) {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	indexed := 0
	sh.index.Range(func(_, _ any) bool { indexed++; return true })
	if c := int(sh.count.Load()); c != indexed {
		return 0, fmt.Errorf("cachestore: shard %d counts %d entries, index holds %d", i, c, indexed)
	}
	var total int64
	check := func(n *node[V]) error {
		if e, ok := sh.index.Load(n.key); !ok || e.(*node[V]) != n {
			return fmt.Errorf("cachestore: shard %d linked node %q not in index", i, n.key)
		}
		if live := n.stamp.Load(); live < n.linked {
			return fmt.Errorf("cachestore: entry %q live rank %d lags its linked rank %d", n.key, live, n.linked)
		}
		size := s.sizeOf(n.key, n.val)
		if size != n.size {
			return fmt.Errorf("cachestore: entry %q charged %d bytes, SizeOf says %d", n.key, n.size, size)
		}
		total += n.size
		return nil
	}
	if s.ranker != nil {
		if len(sh.heap) != indexed {
			return 0, fmt.Errorf("cachestore: shard %d heap holds %d entries, index holds %d", i, len(sh.heap), indexed)
		}
		for j, n := range sh.heap {
			if int(n.hidx) != j {
				return 0, fmt.Errorf("cachestore: shard %d heap node %q claims index %d, is at %d", i, n.key, n.hidx, j)
			}
			if j > 0 && sh.heap[(j-1)/2].linked > n.linked {
				return 0, fmt.Errorf("cachestore: shard %d heap property violated at %q", i, n.key)
			}
			if err := check(n); err != nil {
				return 0, err
			}
		}
		return total, nil
	}
	listed := 0
	prevStamp := ^uint64(0)
	var last *node[V]
	for n := sh.head; n != nil; n = n.next {
		listed++
		if listed > indexed {
			return 0, fmt.Errorf("cachestore: shard %d recency list longer than its index (%d entries)", i, indexed)
		}
		if n.linked > prevStamp {
			return 0, fmt.Errorf("cachestore: shard %d stamps out of order at %q (%d after %d)", i, n.key, n.linked, prevStamp)
		}
		prevStamp = n.linked
		if err := check(n); err != nil {
			return 0, err
		}
		last = n
	}
	if listed != indexed {
		return 0, fmt.Errorf("cachestore: shard %d lists %d entries, index holds %d", i, listed, indexed)
	}
	if sh.tail != last {
		return 0, fmt.Errorf("cachestore: shard %d tail does not terminate the list", i)
	}
	return total, nil
}

// Counters returns a snapshot of the store's counters.
func (s *Store[V]) Counters() Counters {
	return Counters{
		Hits:             s.hits.Load(),
		Misses:           s.misses.Load(),
		Puts:             s.puts.Load(),
		Evictions:        s.evictions.Load(),
		Loads:            s.loads.Load(),
		LoadsShared:      s.loadsShared.Load(),
		AdmissionRejects: s.admissionRejects.Load(),
		VictimScans:      s.victimScans.Load(),
	}
}
