// Package cachestore is the one cache core every cache in this repository
// builds on: a sharded, mutex-per-shard, byte-budgeted LRU key-value store,
// generic over the value type, with singleflight loading and atomic
// hit/miss/eviction counters.
//
// The paper's server-side argument is that redundant work — like redundant
// round trips — is pure waste. Before this package the repository carried
// four independently hand-rolled caches (the client's response map, the
// RFC 9111 browser cache, the Service-Worker cache storage, and the
// middleware's probe cache), each with its own eviction bugs and none safe
// to share between goroutines. They now all store through a Store.
//
// Eviction and admission are pluggable (Options.Policy; see policy.go).
// The default is globally exact LRU regardless of the shard count: every
// entry carries a store-wide touch stamp, each shard's list is ordered by
// stamp, so the globally least-recently-used entry is always the shard
// tail with the smallest stamp — found by one O(shards) scan, no global
// lock. Rank-based policies (GDSF) replace the per-shard recency list
// with a per-shard min-heap on the policy rank and evict the smallest
// root the same way; an admission policy (TinyLFU) additionally gates
// budget-displacing inserts.
package cachestore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cachecatalyst/internal/telemetry"
)

// Options configures a Store.
type Options[V any] struct {
	// Shards is the number of independent mutex-protected segments keys
	// hash across. Zero selects 16; values are rounded up to a power of
	// two (capped at 256). More shards mean less lock contention under
	// concurrent load; eviction order is unaffected.
	Shards int
	// MaxBytes bounds the sum of entry sizes as reported by SizeOf;
	// 0 means unbounded. The least-recently-used entry (across all
	// shards) is evicted first.
	MaxBytes int64
	// SizeOf reports an entry's accounting size. Nil charges 1 per
	// entry, turning MaxBytes into a maximum entry count.
	SizeOf func(key string, v V) int64
	// Policy selects the eviction policy and optional admission filter.
	// The zero value is exact global LRU admitting everything — the
	// pre-policy behaviour, on the pre-policy fast path.
	Policy Policy
	// OnEvict, when set, observes budget evictions — not Delete, Clear
	// or replacement. It is called with no shard lock held, so it may
	// call back into the store.
	OnEvict func(key string, v V)
	// Telemetry, when set together with Name, registers the store's
	// counters in the given registry as "<Name>.hits", "<Name>.misses",
	// "<Name>.puts", "<Name>.evictions", "<Name>.loads",
	// "<Name>.loads_shared", "<Name>.admission_rejects" and
	// "<Name>.victim_scans". The registry indexes the store's own
	// counters — Counters() and the registry snapshot read the same
	// storage.
	Telemetry *telemetry.Registry
	// Name qualifies the store's instruments in Telemetry.
	Name string
}

// Counters is a snapshot of a store's atomic counters.
type Counters struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Puts counts insertions and replacements; Evictions counts entries
	// removed to respect the byte budget.
	Puts, Evictions int64
	// Loads counts loader executions by Do/GetOrLoad; LoadsShared counts
	// callers that piggybacked on another goroutine's in-flight load
	// instead of running their own.
	Loads, LoadsShared int64
	// AdmissionRejects counts inserts the admission policy refused;
	// VictimScans counts candidate entries examined while selecting
	// victims (one per non-empty shard peeked per selection pass).
	AdmissionRejects, VictimScans int64
}

type node[V any] struct {
	key  string
	val  V
	size int64
	// stamp is the entry's eviction rank — the smallest rank in the
	// store is evicted first. Under the default LRU policy it is the
	// store-wide touch counter value at the last Get/Put (smaller means
	// less recently used); under a rank policy it is whatever the
	// ranker computed at the last access.
	stamp uint64
	// freq counts this entry's accesses while resident (saturating).
	freq uint32
	// hidx is the entry's index in its shard's rank heap; -1 when the
	// store runs the LRU list path instead.
	hidx       int32
	prev, next *node[V]
}

type shard[V any] struct {
	mu    sync.Mutex
	items map[string]*node[V]
	head  *node[V]   // most recently used (LRU policy only)
	tail  *node[V]   // least recently used (LRU policy only)
	heap  []*node[V] // min-heap on stamp (rank policies only)
}

// The shard list operations require the shard mutex.

func (s *shard[V]) pushFront(n *node[V]) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	} else {
		s.tail = n
	}
	s.head = n
}

func (s *shard[V]) unlink(n *node[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *shard[V]) moveFront(n *node[V]) {
	if s.head != n {
		s.unlink(n)
		s.pushFront(n)
	}
}

// Store is a sharded LRU store. The zero value is not usable; construct
// with New. A Store is safe for concurrent use.
type Store[V any] struct {
	shards  []shard[V]
	mask    uint64
	sizeOf  func(string, V) int64
	onEvict func(string, V)
	ranker  ranker   // nil selects the recency-list exact-LRU path
	admit   admitter // nil admits everything

	maxBytes atomic.Int64 // live-adjustable via Resize
	bytes    atomic.Int64
	touch    atomic.Uint64 // LRU stamps

	hits, misses, puts, evictions telemetry.Counter
	loads, loadsShared            telemetry.Counter
	admissionRejects, victimScans telemetry.Counter

	flight flightGroup[V]
}

// New returns an empty store.
func New[V any](opts Options[V]) *Store[V] {
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	pow := 1
	for pow < n && pow < 256 {
		pow <<= 1
	}
	s := &Store[V]{
		shards:  make([]shard[V], pow),
		mask:    uint64(pow - 1),
		sizeOf:  opts.SizeOf,
		onEvict: opts.OnEvict,
	}
	s.maxBytes.Store(opts.MaxBytes)
	if ev := opts.Policy.Eviction; ev != nil {
		s.ranker = ev.newRanker()
	}
	if ad := opts.Policy.Admission; ad != nil {
		s.admit = ad.newAdmitter()
	}
	if s.sizeOf == nil {
		s.sizeOf = func(string, V) int64 { return 1 }
	}
	for i := range s.shards {
		s.shards[i].items = make(map[string]*node[V])
	}
	s.flight.calls = make(map[string]*flightCall[V])
	if opts.Telemetry != nil && opts.Name != "" {
		opts.Telemetry.RegisterCounter(opts.Name+".hits", &s.hits)
		opts.Telemetry.RegisterCounter(opts.Name+".misses", &s.misses)
		opts.Telemetry.RegisterCounter(opts.Name+".puts", &s.puts)
		opts.Telemetry.RegisterCounter(opts.Name+".evictions", &s.evictions)
		opts.Telemetry.RegisterCounter(opts.Name+".loads", &s.loads)
		opts.Telemetry.RegisterCounter(opts.Name+".loads_shared", &s.loadsShared)
		opts.Telemetry.RegisterCounter(opts.Name+".admission_rejects", &s.admissionRejects)
		opts.Telemetry.RegisterCounter(opts.Name+".victim_scans", &s.victimScans)
	}
	return s
}

// hashKey is inline FNV-1a; good spread on URL-shaped keys, no allocation.
// The same hash selects the shard and feeds the admission sketch.
func hashKey(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (s *Store[V]) shard(key string) (*shard[V], uint64) {
	h := hashKey(key)
	return &s.shards[h&s.mask], h
}

// Get returns the value for key, promoting it under the active eviction
// policy and counting the hit or miss.
func (s *Store[V]) Get(key string) (V, bool) {
	sh, h := s.shard(key)
	if s.admit != nil {
		s.admit.record(h)
	}
	sh.mu.Lock()
	n, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		s.misses.Add(1)
		var zero V
		return zero, false
	}
	s.promote(sh, n)
	v := n.val
	sh.mu.Unlock()
	s.hits.Add(1)
	return v, true
}

// promote records an access on a resident entry: LRU moves it to the
// shard's list front with a fresh touch stamp; rank policies recompute its
// rank and restore the heap. Requires the shard lock.
func (s *Store[V]) promote(sh *shard[V], n *node[V]) {
	if s.ranker == nil {
		// The exact pre-policy LRU path; only rankers consume freq, so
		// the hit path skips even that write.
		sh.moveFront(n)
		n.stamp = s.touch.Add(1)
		return
	}
	if n.freq != ^uint32(0) {
		n.freq++
	}
	n.stamp = s.ranker.onAccess(n.freq, n.size)
	sh.heapFix(n)
}

// Peek returns the value for key without touching eviction order or
// counters.
func (s *Store[V]) Peek(key string) (V, bool) {
	sh, _ := s.shard(key)
	sh.mu.Lock()
	n, ok := sh.items[key]
	var v V
	if ok {
		v = n.val
	}
	sh.mu.Unlock()
	return v, ok
}

// Put stores v under key, replacing any previous entry, then enforces the
// byte budget. With an admission policy, a new key whose insert would
// exceed the budget is stored only if the policy judges it more valuable
// than the current victim; resident keys are always updated in place.
func (s *Store[V]) Put(key string, v V) {
	size := s.sizeOf(key, v)
	sh, h := s.shard(key)
	// The admission question is asked before taking the insert shard's
	// lock — victim peeking locks shards one at a time and must never
	// nest. The gap between the peek and the insert is benign: the
	// sketch is approximate, and a racing eviction merely changes which
	// near-minimal victim the candidate was compared against.
	var victimHash uint64
	askAdmission := false
	if s.admit != nil {
		s.admit.record(h)
		if max := s.maxBytes.Load(); max > 0 && s.bytes.Load()+size > max {
			if vk, ok := s.peekVictimKey(); ok && vk != key {
				victimHash = hashKey(vk)
				askAdmission = true
			}
		}
	}
	sh.mu.Lock()
	if n, ok := sh.items[key]; ok {
		s.bytes.Add(size - n.size)
		n.val, n.size = v, size
		s.promote(sh, n)
	} else {
		if askAdmission && !s.admit.admit(h, victimHash) {
			sh.mu.Unlock()
			s.admissionRejects.Add(1)
			return
		}
		n := &node[V]{key: key, val: v, size: size, freq: 1, hidx: -1}
		if s.ranker == nil {
			n.stamp = s.touch.Add(1)
			sh.pushFront(n)
		} else {
			n.stamp = s.ranker.onAccess(1, size)
			sh.heapPush(n)
		}
		sh.items[key] = n
		s.bytes.Add(size)
	}
	sh.mu.Unlock()
	s.puts.Add(1)
	s.enforceBudget()
}

// enforceBudget evicts globally-least-recently-used entries until the byte
// budget is respected. Concurrent evictors can race on the choice of
// victim; each still evicts some near-LRU entry and the loop re-checks the
// budget, so the store converges. Single-threaded use is exactly LRU.
func (s *Store[V]) enforceBudget() {
	max := s.maxBytes.Load()
	if max <= 0 {
		return
	}
	for s.bytes.Load() > max {
		key, val, ok := s.evictOne()
		if !ok {
			return
		}
		s.evictions.Add(1)
		if s.onEvict != nil {
			s.onEvict(key, val)
		}
		max = s.maxBytes.Load()
	}
}

// victim returns the shard's eviction candidate — the list tail under LRU,
// the heap root under a rank policy — or nil. Requires the shard lock.
func (s *Store[V]) victim(sh *shard[V]) *node[V] {
	if s.ranker == nil {
		return sh.tail
	}
	if len(sh.heap) == 0 {
		return nil
	}
	return sh.heap[0]
}

// findVictimShard scans every shard for the globally smallest rank,
// counting the candidates examined. Shards are locked one at a time —
// never nested — so selection cannot deadlock with Put or other evictors.
func (s *Store[V]) findVictimShard() int {
	best := -1
	var bestStamp uint64
	scanned := int64(0)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if n := s.victim(sh); n != nil {
			scanned++
			if best < 0 || n.stamp < bestStamp {
				best, bestStamp = i, n.stamp
			}
		}
		sh.mu.Unlock()
	}
	if scanned > 0 {
		s.victimScans.Add(scanned)
	}
	return best
}

// peekVictimKey names the current global eviction candidate without
// removing it, for admission comparisons.
func (s *Store[V]) peekVictimKey() (string, bool) {
	best := s.findVictimShard()
	if best < 0 {
		return "", false
	}
	sh := &s.shards[best]
	sh.mu.Lock()
	n := s.victim(sh)
	sh.mu.Unlock()
	if n == nil {
		return "", false
	}
	return n.key, true
}

// evictOne removes and returns the entry with the smallest rank.
func (s *Store[V]) evictOne() (string, V, bool) {
	var zero V
	best := s.findVictimShard()
	if best < 0 {
		return "", zero, false
	}
	sh := &s.shards[best]
	sh.mu.Lock()
	n := s.victim(sh)
	if n == nil {
		// A concurrent evictor drained this shard between the scan and
		// the re-lock; it is making progress, so stop here.
		sh.mu.Unlock()
		return "", zero, false
	}
	s.remove(sh, n)
	sh.mu.Unlock()
	if s.ranker != nil {
		s.ranker.onEvict(n.stamp)
	}
	return n.key, n.val, true
}

// remove unhooks a resident entry from its shard's bookkeeping. Requires
// the shard lock.
func (s *Store[V]) remove(sh *shard[V], n *node[V]) {
	if s.ranker == nil {
		sh.unlink(n)
	} else {
		sh.heapRemove(n)
	}
	delete(sh.items, n.key)
	s.bytes.Add(-n.size)
}

// Delete removes the entry for key, reporting whether one existed.
func (s *Store[V]) Delete(key string) bool {
	sh, _ := s.shard(key)
	sh.mu.Lock()
	n, ok := sh.items[key]
	if ok {
		s.remove(sh, n)
	}
	sh.mu.Unlock()
	return ok
}

// Clear empties the store. Counters are not reset.
func (s *Store[V]) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, n := range sh.items {
			s.bytes.Add(-n.size)
		}
		sh.items = make(map[string]*node[V])
		sh.head, sh.tail = nil, nil
		sh.heap = nil
		sh.mu.Unlock()
	}
}

// Resize changes the byte budget while the store serves traffic, evicting
// down under the active policy when the new budget is smaller. A budget of
// 0 or less removes the bound. Concurrent Puts observe the new budget as
// soon as it is stored.
func (s *Store[V]) Resize(maxBytes int64) {
	s.maxBytes.Store(maxBytes)
	s.enforceBudget()
}

// MaxBytes returns the current byte budget (0 = unbounded).
func (s *Store[V]) MaxBytes() int64 { return s.maxBytes.Load() }

// Len returns the number of stored entries.
func (s *Store[V]) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += len(sh.items)
		sh.mu.Unlock()
	}
	return total
}

// Bytes returns the total accounting size of stored entries.
func (s *Store[V]) Bytes() int64 { return s.bytes.Load() }

// Keys returns the stored keys, in no particular order.
func (s *Store[V]) Keys() []string {
	keys := make([]string, 0, 64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.items {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
	}
	return keys
}

// Audit cross-checks the store's bookkeeping invariants: every shard's
// eviction structure (recency list under LRU, rank heap under a rank
// policy) and map must agree entry for entry, the ordering invariant must
// hold (list order follows the touch stamps; the heap property holds on
// ranks), and the charged sizes must sum to Bytes(). It returns the first
// inconsistency found, or nil. Audit is meant for tests — the byte total
// is only meaningful when no concurrent mutation is in flight.
func (s *Store[V]) Audit() error {
	var total int64
	for i := range s.shards {
		n, err := s.auditShard(i)
		if err != nil {
			return err
		}
		total += n
	}
	if got := s.bytes.Load(); got != total {
		return fmt.Errorf("cachestore: byte counter %d, entries sum to %d", got, total)
	}
	return nil
}

// auditShard checks one shard's invariants and returns its charged bytes.
func (s *Store[V]) auditShard(i int) (int64, error) {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var total int64
	if s.ranker != nil {
		if len(sh.heap) != len(sh.items) {
			return 0, fmt.Errorf("cachestore: shard %d heap holds %d entries, map holds %d", i, len(sh.heap), len(sh.items))
		}
		for j, n := range sh.heap {
			if int(n.hidx) != j {
				return 0, fmt.Errorf("cachestore: shard %d heap node %q claims index %d, is at %d", i, n.key, n.hidx, j)
			}
			if j > 0 && sh.heap[(j-1)/2].stamp > n.stamp {
				return 0, fmt.Errorf("cachestore: shard %d heap property violated at %q", i, n.key)
			}
			if sh.items[n.key] != n {
				return 0, fmt.Errorf("cachestore: shard %d heap node %q not in map", i, n.key)
			}
			size := s.sizeOf(n.key, n.val)
			if size != n.size {
				return 0, fmt.Errorf("cachestore: entry %q charged %d bytes, SizeOf says %d", n.key, n.size, size)
			}
			total += n.size
		}
		return total, nil
	}
	listed := 0
	prevStamp := ^uint64(0)
	var last *node[V]
	for n := sh.head; n != nil; n = n.next {
		listed++
		if listed > len(sh.items) {
			return 0, fmt.Errorf("cachestore: shard %d recency list longer than its map (%d entries)", i, len(sh.items))
		}
		if n.stamp > prevStamp {
			return 0, fmt.Errorf("cachestore: shard %d stamps out of order at %q (%d after %d)", i, n.key, n.stamp, prevStamp)
		}
		prevStamp = n.stamp
		if sh.items[n.key] != n {
			return 0, fmt.Errorf("cachestore: shard %d list node %q not in map", i, n.key)
		}
		size := s.sizeOf(n.key, n.val)
		if size != n.size {
			return 0, fmt.Errorf("cachestore: entry %q charged %d bytes, SizeOf says %d", n.key, n.size, size)
		}
		total += n.size
		last = n
	}
	if listed != len(sh.items) {
		return 0, fmt.Errorf("cachestore: shard %d lists %d entries, map holds %d", i, listed, len(sh.items))
	}
	if sh.tail != last {
		return 0, fmt.Errorf("cachestore: shard %d tail does not terminate the list", i)
	}
	return total, nil
}

// Counters returns a snapshot of the store's counters.
func (s *Store[V]) Counters() Counters {
	return Counters{
		Hits:             s.hits.Load(),
		Misses:           s.misses.Load(),
		Puts:             s.puts.Load(),
		Evictions:        s.evictions.Load(),
		Loads:            s.loads.Load(),
		LoadsShared:      s.loadsShared.Load(),
		AdmissionRejects: s.admissionRejects.Load(),
		VictimScans:      s.victimScans.Load(),
	}
}
