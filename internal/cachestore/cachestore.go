// Package cachestore is the one cache core every cache in this repository
// builds on: a sharded, mutex-per-shard, byte-budgeted LRU key-value store,
// generic over the value type, with singleflight loading and atomic
// hit/miss/eviction counters.
//
// The paper's server-side argument is that redundant work — like redundant
// round trips — is pure waste. Before this package the repository carried
// four independently hand-rolled caches (the client's response map, the
// RFC 9111 browser cache, the Service-Worker cache storage, and the
// middleware's probe cache), each with its own eviction bugs and none safe
// to share between goroutines. They now all store through a Store.
//
// Eviction is globally exact LRU regardless of the shard count: every entry
// carries a store-wide touch stamp, each shard's list is ordered by stamp,
// so the globally least-recently-used entry is always the shard tail with
// the smallest stamp — found by one O(shards) scan, no global lock.
package cachestore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cachecatalyst/internal/telemetry"
)

// Options configures a Store.
type Options[V any] struct {
	// Shards is the number of independent mutex-protected segments keys
	// hash across. Zero selects 16; values are rounded up to a power of
	// two (capped at 256). More shards mean less lock contention under
	// concurrent load; eviction order is unaffected.
	Shards int
	// MaxBytes bounds the sum of entry sizes as reported by SizeOf;
	// 0 means unbounded. The least-recently-used entry (across all
	// shards) is evicted first.
	MaxBytes int64
	// SizeOf reports an entry's accounting size. Nil charges 1 per
	// entry, turning MaxBytes into a maximum entry count.
	SizeOf func(key string, v V) int64
	// OnEvict, when set, observes budget evictions — not Delete, Clear
	// or replacement. It is called with no shard lock held, so it may
	// call back into the store.
	OnEvict func(key string, v V)
	// Telemetry, when set together with Name, registers the store's
	// counters in the given registry as "<Name>.hits", "<Name>.misses",
	// "<Name>.puts", "<Name>.evictions", "<Name>.loads" and
	// "<Name>.loads_shared". The registry indexes the store's own
	// counters — Counters() and the registry snapshot read the same
	// storage.
	Telemetry *telemetry.Registry
	// Name qualifies the store's instruments in Telemetry.
	Name string
}

// Counters is a snapshot of a store's atomic counters.
type Counters struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Puts counts insertions and replacements; Evictions counts entries
	// removed to respect the byte budget.
	Puts, Evictions int64
	// Loads counts loader executions by Do/GetOrLoad; LoadsShared counts
	// callers that piggybacked on another goroutine's in-flight load
	// instead of running their own.
	Loads, LoadsShared int64
}

type node[V any] struct {
	key  string
	val  V
	size int64
	// stamp is the store-wide touch counter value at the last Get/Put of
	// this entry; smaller means less recently used.
	stamp      uint64
	prev, next *node[V]
}

type shard[V any] struct {
	mu    sync.Mutex
	items map[string]*node[V]
	head  *node[V] // most recently used
	tail  *node[V] // least recently used
}

// The shard list operations require the shard mutex.

func (s *shard[V]) pushFront(n *node[V]) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	} else {
		s.tail = n
	}
	s.head = n
}

func (s *shard[V]) unlink(n *node[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *shard[V]) moveFront(n *node[V]) {
	if s.head != n {
		s.unlink(n)
		s.pushFront(n)
	}
}

// Store is a sharded LRU store. The zero value is not usable; construct
// with New. A Store is safe for concurrent use.
type Store[V any] struct {
	shards   []shard[V]
	mask     uint64
	maxBytes int64
	sizeOf   func(string, V) int64
	onEvict  func(string, V)

	bytes atomic.Int64
	touch atomic.Uint64 // LRU stamps

	hits, misses, puts, evictions telemetry.Counter
	loads, loadsShared            telemetry.Counter

	flight flightGroup[V]
}

// New returns an empty store.
func New[V any](opts Options[V]) *Store[V] {
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	pow := 1
	for pow < n && pow < 256 {
		pow <<= 1
	}
	s := &Store[V]{
		shards:   make([]shard[V], pow),
		mask:     uint64(pow - 1),
		maxBytes: opts.MaxBytes,
		sizeOf:   opts.SizeOf,
		onEvict:  opts.OnEvict,
	}
	if s.sizeOf == nil {
		s.sizeOf = func(string, V) int64 { return 1 }
	}
	for i := range s.shards {
		s.shards[i].items = make(map[string]*node[V])
	}
	s.flight.calls = make(map[string]*flightCall[V])
	if opts.Telemetry != nil && opts.Name != "" {
		opts.Telemetry.RegisterCounter(opts.Name+".hits", &s.hits)
		opts.Telemetry.RegisterCounter(opts.Name+".misses", &s.misses)
		opts.Telemetry.RegisterCounter(opts.Name+".puts", &s.puts)
		opts.Telemetry.RegisterCounter(opts.Name+".evictions", &s.evictions)
		opts.Telemetry.RegisterCounter(opts.Name+".loads", &s.loads)
		opts.Telemetry.RegisterCounter(opts.Name+".loads_shared", &s.loadsShared)
	}
	return s
}

func (s *Store[V]) shard(key string) *shard[V] {
	// Inline FNV-1a; good spread on URL-shaped keys, no allocation.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &s.shards[h&s.mask]
}

// Get returns the value for key, promoting it to most-recently-used and
// counting the hit or miss.
func (s *Store[V]) Get(key string) (V, bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	n, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		s.misses.Add(1)
		var zero V
		return zero, false
	}
	sh.moveFront(n)
	n.stamp = s.touch.Add(1)
	v := n.val
	sh.mu.Unlock()
	s.hits.Add(1)
	return v, true
}

// Peek returns the value for key without touching LRU order or counters.
func (s *Store[V]) Peek(key string) (V, bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	n, ok := sh.items[key]
	var v V
	if ok {
		v = n.val
	}
	sh.mu.Unlock()
	return v, ok
}

// Put stores v under key, replacing any previous entry, then enforces the
// byte budget.
func (s *Store[V]) Put(key string, v V) {
	size := s.sizeOf(key, v)
	sh := s.shard(key)
	sh.mu.Lock()
	if n, ok := sh.items[key]; ok {
		s.bytes.Add(size - n.size)
		n.val, n.size = v, size
		sh.moveFront(n)
		n.stamp = s.touch.Add(1)
	} else {
		n := &node[V]{key: key, val: v, size: size, stamp: s.touch.Add(1)}
		sh.items[key] = n
		sh.pushFront(n)
		s.bytes.Add(size)
	}
	sh.mu.Unlock()
	s.puts.Add(1)
	s.enforceBudget()
}

// enforceBudget evicts globally-least-recently-used entries until the byte
// budget is respected. Concurrent evictors can race on the choice of
// victim; each still evicts some near-LRU entry and the loop re-checks the
// budget, so the store converges. Single-threaded use is exactly LRU.
func (s *Store[V]) enforceBudget() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes.Load() > s.maxBytes {
		key, val, ok := s.evictOne()
		if !ok {
			return
		}
		s.evictions.Add(1)
		if s.onEvict != nil {
			s.onEvict(key, val)
		}
	}
}

// evictOne removes and returns the entry with the smallest touch stamp.
// Shards are locked one at a time — never nested — so evictors cannot
// deadlock with each other or with Put.
func (s *Store[V]) evictOne() (string, V, bool) {
	var zero V
	best := -1
	var bestStamp uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.tail != nil && (best < 0 || sh.tail.stamp < bestStamp) {
			best, bestStamp = i, sh.tail.stamp
		}
		sh.mu.Unlock()
	}
	if best < 0 {
		return "", zero, false
	}
	sh := &s.shards[best]
	sh.mu.Lock()
	n := sh.tail
	if n == nil {
		// A concurrent evictor drained this shard between the scan and
		// the re-lock; it is making progress, so stop here.
		sh.mu.Unlock()
		return "", zero, false
	}
	sh.unlink(n)
	delete(sh.items, n.key)
	s.bytes.Add(-n.size)
	sh.mu.Unlock()
	return n.key, n.val, true
}

// Delete removes the entry for key, reporting whether one existed.
func (s *Store[V]) Delete(key string) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	n, ok := sh.items[key]
	if ok {
		sh.unlink(n)
		delete(sh.items, key)
		s.bytes.Add(-n.size)
	}
	sh.mu.Unlock()
	return ok
}

// Clear empties the store. Counters are not reset.
func (s *Store[V]) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, n := range sh.items {
			s.bytes.Add(-n.size)
		}
		sh.items = make(map[string]*node[V])
		sh.head, sh.tail = nil, nil
		sh.mu.Unlock()
	}
}

// Len returns the number of stored entries.
func (s *Store[V]) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += len(sh.items)
		sh.mu.Unlock()
	}
	return total
}

// Bytes returns the total accounting size of stored entries.
func (s *Store[V]) Bytes() int64 { return s.bytes.Load() }

// Keys returns the stored keys, in no particular order.
func (s *Store[V]) Keys() []string {
	keys := make([]string, 0, 64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.items {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
	}
	return keys
}

// Audit cross-checks the store's bookkeeping invariants: every shard's
// recency list and map must agree entry for entry, list order must follow
// the touch stamps, and the charged sizes must sum to Bytes(). It returns
// the first inconsistency found, or nil. Audit is meant for tests — the
// byte total is only meaningful when no concurrent mutation is in flight.
func (s *Store[V]) Audit() error {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		listed := 0
		prevStamp := ^uint64(0)
		var last *node[V]
		for n := sh.head; n != nil; n = n.next {
			listed++
			if listed > len(sh.items) {
				sh.mu.Unlock()
				return fmt.Errorf("cachestore: shard %d recency list longer than its map (%d entries)", i, len(sh.items))
			}
			if n.stamp > prevStamp {
				sh.mu.Unlock()
				return fmt.Errorf("cachestore: shard %d stamps out of order at %q (%d after %d)", i, n.key, n.stamp, prevStamp)
			}
			prevStamp = n.stamp
			if sh.items[n.key] != n {
				sh.mu.Unlock()
				return fmt.Errorf("cachestore: shard %d list node %q not in map", i, n.key)
			}
			size := s.sizeOf(n.key, n.val)
			if size != n.size {
				sh.mu.Unlock()
				return fmt.Errorf("cachestore: entry %q charged %d bytes, SizeOf says %d", n.key, n.size, size)
			}
			total += n.size
			last = n
		}
		if listed != len(sh.items) {
			sh.mu.Unlock()
			return fmt.Errorf("cachestore: shard %d lists %d entries, map holds %d", i, listed, len(sh.items))
		}
		if sh.tail != last {
			sh.mu.Unlock()
			return fmt.Errorf("cachestore: shard %d tail does not terminate the list", i)
		}
		sh.mu.Unlock()
	}
	if got := s.bytes.Load(); got != total {
		return fmt.Errorf("cachestore: byte counter %d, entries sum to %d", got, total)
	}
	return nil
}

// Counters returns a snapshot of the store's counters.
func (s *Store[V]) Counters() Counters {
	return Counters{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		Evictions:   s.evictions.Load(),
		Loads:       s.loads.Load(),
		LoadsShared: s.loadsShared.Load(),
	}
}
