package cachestore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cachecatalyst/internal/telemetry"
)

// refLRU is the differential-test oracle: a deliberately naive exact
// global LRU over one ordered slice — no shards, no heaps, no stamps.
// Whatever the refactored store does under the default policy must be
// byte-identical to this.
type refLRU struct {
	max     int64
	bytes   int64
	order   []string // index 0 = most recently used
	sizes   map[string]int64
	evicted []string
}

func newRefLRU(max int64) *refLRU {
	return &refLRU{max: max, sizes: make(map[string]int64)}
}

func (r *refLRU) front(key string) {
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.order = append([]string{key}, r.order...)
}

func (r *refLRU) get(key string) bool {
	if _, ok := r.sizes[key]; !ok {
		return false
	}
	r.front(key)
	return true
}

func (r *refLRU) put(key string, size int64) {
	if old, ok := r.sizes[key]; ok {
		r.bytes += size - old
	} else {
		r.bytes += size
	}
	r.sizes[key] = size
	r.front(key)
	for r.bytes > r.max && len(r.order) > 0 {
		victim := r.order[len(r.order)-1]
		r.order = r.order[:len(r.order)-1]
		r.bytes -= r.sizes[victim]
		delete(r.sizes, victim)
		r.evicted = append(r.evicted, victim)
	}
}

func (r *refLRU) delete(key string) {
	size, ok := r.sizes[key]
	if !ok {
		return
	}
	r.bytes -= size
	delete(r.sizes, key)
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// TestDefaultPolicyMatchesReferenceLRU is the refactor's safety net: a
// long pseudo-random single-threaded op sequence through the policy-layer
// store (default policy and the explicitly named LRU policy, across shard
// counts) must produce the exact eviction order — and final contents — of
// the naive reference LRU. TestGlobalLRUAcrossShards remains the focused
// oracle for cross-shard ordering.
func TestDefaultPolicyMatchesReferenceLRU(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		for _, named := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards=%d/named=%v", shards, named), func(t *testing.T) {
				var pol Policy
				if named {
					pol = Policy{Eviction: LRU()}
				}
				var evicted []string
				s := New[int64](Options[int64]{
					Shards:   shards,
					MaxBytes: 100,
					SizeOf:   func(_ string, v int64) int64 { return v },
					Policy:   pol,
					OnEvict:  func(k string, _ int64) { evicted = append(evicted, k) },
				})
				ref := newRefLRU(100)
				rng := rand.New(rand.NewSource(42))
				for op := 0; op < 20000; op++ {
					key := fmt.Sprintf("k%02d", rng.Intn(40))
					switch rng.Intn(10) {
					case 0:
						s.Delete(key)
						ref.delete(key)
					case 1, 2, 3:
						size := int64(1 + rng.Intn(30))
						s.Put(key, size)
						ref.put(key, size)
					default:
						_, got := s.Get(key)
						want := ref.get(key)
						if got != want {
							t.Fatalf("op %d: Get(%q) = %v, reference says %v", op, key, got, want)
						}
					}
					if len(evicted) != len(ref.evicted) {
						t.Fatalf("op %d: %d evictions, reference has %d", op, len(evicted), len(ref.evicted))
					}
				}
				for i := range evicted {
					if evicted[i] != ref.evicted[i] {
						t.Fatalf("eviction %d: got %q, reference evicted %q", i, evicted[i], ref.evicted[i])
					}
				}
				if s.Bytes() != ref.bytes || s.Len() != len(ref.sizes) {
					t.Fatalf("final state: Bytes=%d Len=%d, reference %d/%d", s.Bytes(), s.Len(), ref.bytes, len(ref.sizes))
				}
				for k := range ref.sizes {
					if _, ok := s.Peek(k); !ok {
						t.Fatalf("reference holds %q, store does not", k)
					}
				}
				if err := s.Audit(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestGDSFPrefersSmallPopular: with equal recency, GDSF evicts the large
// cold object before the small popular one — the size-aware decision LRU
// cannot make.
func TestGDSFPrefersSmallPopular(t *testing.T) {
	s := New[int64](Options[int64]{
		Shards:   4,
		MaxBytes: 80,
		SizeOf:   func(_ string, v int64) int64 { return v },
		Policy:   Policy{Eviction: GDSF()},
	})
	s.Put("big", 60)
	s.Put("small", 10)
	for i := 0; i < 4; i++ {
		s.Get("small") // rank ≈ 5/10
	}
	// big was touched *after* small's last access; LRU would evict small.
	s.Get("big")     // rank ≈ 2/60
	s.Put("new", 25) // rank ≈ 1/25, above big's 2/60
	if _, ok := s.Peek("big"); ok {
		t.Error("big cold object survived; GDSF should evict it first")
	}
	if _, ok := s.Peek("small"); !ok {
		t.Error("small popular object was evicted")
	}
	if _, ok := s.Peek("new"); !ok {
		t.Error("incoming object was not stored")
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
	if c := s.Counters(); c.VictimScans == 0 {
		t.Error("victim selection recorded no scans")
	}
}

// TestGDSFAging: the global inflation value L rises with every eviction,
// so a formerly popular object that stops being touched is eventually
// overtaken by fresh arrivals — GDSF does not suffer LFU's cache pollution.
func TestGDSFAging(t *testing.T) {
	s := New[int64](Options[int64]{
		Shards:   1,
		MaxBytes: 20,
		SizeOf:   func(_ string, v int64) int64 { return v },
		Policy:   Policy{Eviction: GDSF()},
	})
	s.Put("pop", 10)
	for i := 0; i < 10; i++ {
		s.Get("pop") // rank ≈ 11/10 = 1.1
	}
	// One-hit wonders arrive forever; each eviction raises L by 0.1.
	for i := 0; i < 30; i++ {
		s.Put(fmt.Sprintf("one-%02d", i), 10)
	}
	if _, ok := s.Peek("pop"); ok {
		t.Error("stale popular object survived 30 arrivals; L should have aged it out")
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestTinyLFUAdmission: a key seen once cannot displace a frequently used
// victim, while a key with real history is admitted.
func TestTinyLFUAdmission(t *testing.T) {
	s := New[int64](Options[int64]{
		Shards:   4,
		MaxBytes: 10,
		SizeOf:   func(_ string, v int64) int64 { return v },
		Policy:   Policy{Admission: TinyLFU()},
	})
	s.Put("hot", 10)
	for i := 0; i < 5; i++ {
		s.Get("hot") // sketch estimate ≈ 6
	}
	s.Put("cold", 10) // first sighting: estimate 1 < 6
	if _, ok := s.Peek("cold"); ok {
		t.Error("one-hit wonder was admitted over a frequent victim")
	}
	if _, ok := s.Peek("hot"); !ok {
		t.Error("frequent victim was displaced")
	}
	if c := s.Counters(); c.AdmissionRejects != 1 {
		t.Errorf("AdmissionRejects = %d, want 1", c.AdmissionRejects)
	}
	// A candidate with more history than the victim gets in (misses
	// record to the sketch too — that is TinyLFU's point).
	for i := 0; i < 8; i++ {
		s.Get("warm")
	}
	s.Put("warm", 10)
	if _, ok := s.Peek("warm"); !ok {
		t.Error("frequently requested candidate was rejected")
	}
	if _, ok := s.Peek("hot"); ok {
		t.Error("displaced victim still resident")
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestTinyLFUResidentUpdateNeverGated: Put on a resident key must replace
// the value even when the admission filter would reject it as a newcomer.
func TestTinyLFUResidentUpdateNeverGated(t *testing.T) {
	s := New[int64](Options[int64]{
		MaxBytes: 10,
		SizeOf:   func(_ string, v int64) int64 { return v },
		Policy:   Policy{Admission: TinyLFU()},
	})
	s.Put("a", 6)
	s.Put("a", 9) // over 10 together with the stale charge? No: replacement re-charges.
	if v, ok := s.Peek("a"); !ok || v != 9 {
		t.Fatalf("resident update lost: got %d, %v", v, ok)
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestTinyLFUSketchAging exercises the count-min sketch's halving step
// directly: estimates decay so the filter adapts to popularity shifts.
func TestTinyLFUSketchAging(t *testing.T) {
	ad := TinyLFUWith(TinyLFUOptions{Counters: 64, SampleSize: 1 << 20}).newAdmitter()
	sk := ad.(*tinylfuSketch)
	h := hashKey("popular")
	for i := 0; i < 10; i++ {
		sk.record(h)
	}
	if est := sk.estimate(h); est != 10 {
		t.Fatalf("estimate = %d before aging, want 10", est)
	}
	sk.age()
	if est := sk.estimate(h); est != 5 {
		t.Fatalf("estimate = %d after aging, want 5", est)
	}
	// Counters saturate at sketchMax so one burst cannot dominate.
	for i := 0; i < 100; i++ {
		sk.record(h)
	}
	if est := sk.estimate(h); est != sketchMax {
		t.Fatalf("estimate = %d after burst, want cap %d", est, sketchMax)
	}
}

// TestResizeEvictsDown: shrinking the budget evicts under the active
// policy immediately; growing it stops evictions.
func TestResizeEvictsDown(t *testing.T) {
	for _, pol := range []Policy{{}, {Eviction: GDSF()}} {
		t.Run(pol.Name(), func(t *testing.T) {
			s := New[int64](Options[int64]{
				Shards:   4,
				MaxBytes: 100,
				SizeOf:   func(_ string, v int64) int64 { return v },
				Policy:   pol,
			})
			for i := 0; i < 10; i++ {
				s.Put(fmt.Sprintf("k%d", i), 10)
			}
			if s.Bytes() != 100 {
				t.Fatalf("Bytes = %d, want 100", s.Bytes())
			}
			s.Resize(35)
			if s.Bytes() > 35 {
				t.Fatalf("Bytes = %d after Resize(35)", s.Bytes())
			}
			if s.MaxBytes() != 35 {
				t.Fatalf("MaxBytes = %d, want 35", s.MaxBytes())
			}
			s.Resize(1000)
			for i := 0; i < 10; i++ {
				s.Put(fmt.Sprintf("g%d", i), 10)
			}
			if got := s.Counters().Evictions; got != 7 {
				t.Fatalf("evictions = %d after growing the budget, want 7", got)
			}
			if err := s.Audit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestResizeConcurrent stresses live budget changes against a full
// Get/Put/Delete load under every policy combination; the store must end
// within budget with intact bookkeeping.
func TestResizeConcurrent(t *testing.T) {
	policies := []Policy{
		{},
		{Eviction: GDSF()},
		{Admission: TinyLFU()},
		{Eviction: GDSF(), Admission: TinyLFU()},
	}
	for _, pol := range policies {
		t.Run(pol.Name(), func(t *testing.T) {
			s := New[int64](Options[int64]{
				Shards:   8,
				MaxBytes: 1 << 20,
				SizeOf:   func(_ string, v int64) int64 { return v },
				Policy:   pol,
			})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 5000; i++ {
						key := fmt.Sprintf("k%03d", rng.Intn(500))
						switch rng.Intn(10) {
						case 0:
							s.Delete(key)
						case 1, 2, 3, 4:
							s.Put(key, int64(1+rng.Intn(4096)))
						default:
							s.Get(key)
						}
					}
				}(int64(g))
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(99))
				for i := 0; i < 200; i++ {
					s.Resize(int64(4096 + rng.Intn(1<<20)))
				}
			}()
			wg.Wait()
			s.Resize(4096)
			if s.Bytes() > 4096 {
				t.Fatalf("Bytes = %d after final Resize(4096)", s.Bytes())
			}
			if err := s.Audit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGDSFConcurrent hammers a rank-heap store from many goroutines —
// the heap bookkeeping must survive the same concurrent load the LRU
// lists do.
func TestGDSFConcurrent(t *testing.T) {
	s := New[int64](Options[int64]{
		Shards:   8,
		MaxBytes: 64 << 10,
		SizeOf:   func(_ string, v int64) int64 { return v },
		Policy:   Policy{Eviction: GDSF()},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				key := fmt.Sprintf("k%03d", rng.Intn(300))
				if rng.Intn(3) == 0 {
					s.Put(key, int64(1+rng.Intn(2048)))
				} else {
					s.Get(key)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() > 64<<10 {
		t.Fatalf("Bytes = %d over budget", s.Bytes())
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := ParsePolicy(""); err != nil || p.Name() != "lru" {
		t.Errorf("empty name: %v, %q", err, p.Name())
	}
	if p, err := ParsePolicy("tinylfu"); err != nil || p.Name() != "tinylfu-lru" {
		t.Errorf("tinylfu shorthand: %v, %q", err, p.Name())
	}
	if _, err := ParsePolicy("belady"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestPolicyTelemetry: the new per-policy counters land in the registry
// under the store's name like every other instrument.
func TestPolicyTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New[int64](Options[int64]{
		MaxBytes:  10,
		SizeOf:    func(_ string, v int64) int64 { return v },
		Policy:    Policy{Eviction: GDSF(), Admission: TinyLFU()},
		Telemetry: reg,
		Name:      "test",
	})
	s.Put("a", 10)
	for i := 0; i < 5; i++ {
		s.Get("a")
	}
	s.Put("b", 10) // rejected: no history
	snap := reg.Snapshot()
	if got := snap.Counters["test.admission_rejects"]; got != 1 {
		t.Errorf("test.admission_rejects = %d, want 1", got)
	}
	if got := snap.Counters["test.victim_scans"]; got < 1 {
		t.Errorf("test.victim_scans = %d, want ≥ 1", got)
	}
	c := s.Counters()
	if c.AdmissionRejects != snap.Counters["test.admission_rejects"] {
		t.Error("Counters() and registry disagree on admission rejects")
	}
}
