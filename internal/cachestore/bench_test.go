package cachestore

import (
	"fmt"
	"strings"
	"testing"
)

func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("/static/assets/chunk-%04d.js", i)
	}
	return keys
}

// BenchmarkStoreMixed is the headline concurrency benchmark: a read-heavy
// mixed workload (90% Get, 10% Put) against a bounded store, with the shard
// count as the contention knob.
func BenchmarkStoreMixed(b *testing.B) {
	val := strings.Repeat("v", 512)
	keys := benchKeys(1024)
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := New[string](Options[string]{
				Shards:   shards,
				MaxBytes: 512 * 768, // forces steady eviction at ~75% of the key space
				SizeOf:   func(_ string, v string) int64 { return int64(len(v)) },
			})
			for _, k := range keys {
				s.Put(k, val)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					k := keys[i%len(keys)]
					if i%10 == 0 {
						s.Put(k, val)
					} else {
						s.Get(k)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkStorePolicies runs the mixed workload of BenchmarkStoreMixed
// across every named policy, so a rank-heap or admission-sketch regression
// on the hot path shows up next to the LRU baseline it must not disturb.
func BenchmarkStorePolicies(b *testing.B) {
	val := strings.Repeat("v", 512)
	keys := benchKeys(1024)
	for _, policy := range []Policy{
		{},
		{Eviction: GDSF()},
		{Admission: TinyLFU()},
		{Eviction: GDSF(), Admission: TinyLFU()},
	} {
		b.Run(policy.Name(), func(b *testing.B) {
			s := New[string](Options[string]{
				Shards:   16,
				MaxBytes: 512 * 768,
				SizeOf:   func(_ string, v string) int64 { return int64(len(v)) },
				Policy:   policy,
			})
			for _, k := range keys {
				s.Put(k, val)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					k := keys[i%len(keys)]
					if i%10 == 0 {
						s.Put(k, val)
					} else {
						s.Get(k)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkStoreGetHit measures the uncontended promote-on-hit fast path.
func BenchmarkStoreGetHit(b *testing.B) {
	s := New[string](Options[string]{})
	s.Put("k", "v")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Get("k")
		}
	})
}

// BenchmarkStoreGetOrLoad measures the singleflight wrapper when the value
// is always cached — the overhead a hit pays for collapse protection.
func BenchmarkStoreGetOrLoad(b *testing.B) {
	s := New[string](Options[string]{})
	load := func() (string, error) { return "v", nil }
	_, _ = s.GetOrLoad("k", load)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_, _ = s.GetOrLoad("k", load)
		}
	})
}
