package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cachecatalyst/internal/browser"
	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/vclock"
)

func TestCollectorHARFromRealLoad(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	content := server.NewMemContent()
	content.SetBody("/index.html", `<img src="/a.png"><img src="/missing.png">`, server.CachePolicy{NoCache: true})
	content.SetBody("/a.png", "PNG", server.CachePolicy{MaxAge: time.Hour, HasMaxAge: true})
	srv := server.New(content, server.Options{Clock: clock})
	origins := browser.OriginMap{"site.example": server.NewOrigin(srv)}

	b := browser.New(clock, browser.Conventional, netsim.TransportOptions{})
	col := NewCollector(clock.Now())
	b.OnFetch = col.Record
	res, err := b.Load(origins, netsim.Conditions{RTT: 40 * time.Millisecond, DownlinkBps: 60e6}, "site.example", "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 3 {
		t.Fatalf("events = %d, want 3", col.Len())
	}

	h := col.HAR("https://site.example/index.html", res.PLT)
	data, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// The document must be valid JSON with HAR structure.
	var parsed map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	log := parsed["log"].(map[string]any)
	if log["version"] != "1.2" {
		t.Fatalf("version = %v", log["version"])
	}
	entries := log["entries"].([]any)
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	first := entries[0].(map[string]any)
	req := first["request"].(map[string]any)
	if !strings.HasPrefix(req["url"].(string), "https://site.example/") {
		t.Fatalf("url = %v", req["url"])
	}
	pages := log["pages"].([]any)
	timings := pages[0].(map[string]any)["pageTimings"].(map[string]any)
	if timings["onLoad"].(float64) <= 0 {
		t.Fatal("onLoad not positive")
	}

	// One entry must be the 404.
	found404 := false
	for _, e := range entries {
		if e.(map[string]any)["response"].(map[string]any)["status"].(float64) == 404 {
			found404 = true
		}
	}
	if !found404 {
		t.Fatal("404 entry missing")
	}
}

func TestCollectorRevalidationShowsAs304(t *testing.T) {
	col := NewCollector(vclock.Epoch)
	col.Record(browser.FetchEvent{
		Host: "h", Path: "/x", Start: 0, End: 40 * time.Millisecond,
		Source: "network", Status: 200, Revalidated: true,
	})
	h := col.HAR("https://h/", 40*time.Millisecond)
	if h.Log.Entries[0].Response.Status != 304 || h.Log.Entries[0].Response.StatusText != "Not Modified" {
		t.Fatalf("entry = %+v", h.Log.Entries[0])
	}
}

func TestCollectorReset(t *testing.T) {
	col := NewCollector(vclock.Epoch)
	col.Record(browser.FetchEvent{Status: 200})
	col.Reset()
	if col.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestEntryTimesMapToOffsets(t *testing.T) {
	start := vclock.Epoch
	col := NewCollector(start)
	col.Record(browser.FetchEvent{
		Host: "h", Path: "/a", Start: 100 * time.Millisecond, End: 150 * time.Millisecond,
		Source: "network", Status: 200,
	})
	h := col.HAR("https://h/", time.Second)
	e := h.Log.Entries[0]
	if e.Time != 50 {
		t.Fatalf("Time = %v ms", e.Time)
	}
	wantStart := start.Add(100 * time.Millisecond).UTC().Format(time.RFC3339Nano)
	if e.StartedDateTime != wantStart {
		t.Fatalf("StartedDateTime = %s, want %s", e.StartedDateTime, wantStart)
	}
}

func TestStatusText(t *testing.T) {
	if statusText(browser.FetchEvent{Status: 500}) != "HTTP 500" {
		t.Fatal("default status text wrong")
	}
	if statusText(browser.FetchEvent{Status: 404}) != "Not Found" {
		t.Fatal("404 text wrong")
	}
}
