// Package trace exports page-load waterfalls as HTTP Archive (HAR) 1.2
// documents, so the emulator's fetch timelines open in standard HAR
// viewers (browser devtools, har-viewer) next to captures from real
// browsers — handy when comparing the emulation against reality.
package trace

import (
	"encoding/json"
	"fmt"
	"time"

	"cachecatalyst/internal/browser"
)

// HAR is the top-level document.
type HAR struct {
	Log Log `json:"log"`
}

// Log is the HAR log object.
type Log struct {
	Version string  `json:"version"`
	Creator Creator `json:"creator"`
	Pages   []Page  `json:"pages"`
	Entries []Entry `json:"entries"`
}

// Creator identifies the producing tool.
type Creator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// Page is one page load.
type Page struct {
	StartedDateTime string      `json:"startedDateTime"`
	ID              string      `json:"id"`
	Title           string      `json:"title"`
	PageTimings     PageTimings `json:"pageTimings"`
}

// PageTimings carries the onLoad metric.
type PageTimings struct {
	OnLoad float64 `json:"onLoad"` // milliseconds
}

// Entry is one resource fetch.
type Entry struct {
	Pageref         string   `json:"pageref"`
	StartedDateTime string   `json:"startedDateTime"`
	Time            float64  `json:"time"` // milliseconds
	Request         Request  `json:"request"`
	Response        Response `json:"response"`
	// Source is a HAR custom field ("_"-prefixed per spec) recording
	// where the emulator delivered the resource from.
	Source string `json:"_source"`
	// Decisions carries the per-request cache-decision annotations the
	// telemetry tracer recorded: the client's own decisions followed by
	// any the origin mirrored back via Server-Timing ("origin:…").
	Decisions []string `json:"_decisions,omitempty"`
}

// Request is the request summary.
type Request struct {
	Method string `json:"method"`
	URL    string `json:"url"`
}

// Response is the response summary.
type Response struct {
	Status     int    `json:"status"`
	StatusText string `json:"statusText"`
}

// Collector accumulates FetchEvents for one page load. Attach its Record
// method to browser.Browser.OnFetch.
type Collector struct {
	start  time.Time
	events []browser.FetchEvent
}

// NewCollector returns a collector; start anchors virtual offsets to
// absolute HAR timestamps.
func NewCollector(start time.Time) *Collector {
	return &Collector{start: start}
}

// Record implements the browser.Browser.OnFetch contract.
func (c *Collector) Record(ev browser.FetchEvent) {
	c.events = append(c.events, ev)
}

// Len returns the number of recorded events.
func (c *Collector) Len() int { return len(c.events) }

// Reset drops recorded events (between page loads).
func (c *Collector) Reset() { c.events = nil }

// HAR builds the document for one recorded load.
func (c *Collector) HAR(pageURL string, plt time.Duration) HAR {
	h := HAR{Log: Log{
		Version: "1.2",
		Creator: Creator{Name: "cachecatalyst", Version: "1.0"},
		Pages: []Page{{
			StartedDateTime: c.start.UTC().Format(time.RFC3339Nano),
			ID:              "page_1",
			Title:           pageURL,
			PageTimings:     PageTimings{OnLoad: float64(plt.Microseconds()) / 1000},
		}},
	}}
	for _, ev := range c.events {
		h.Log.Entries = append(h.Log.Entries, Entry{
			Pageref:         "page_1",
			StartedDateTime: c.start.Add(ev.Start).UTC().Format(time.RFC3339Nano),
			Time:            float64((ev.End - ev.Start).Microseconds()) / 1000,
			Request:         Request{Method: "GET", URL: "https://" + ev.Host + ev.Path},
			Response:        Response{Status: status(ev), StatusText: statusText(ev)},
			Source:          ev.Source,
			Decisions:       ev.Decisions,
		})
	}
	return h
}

// Marshal renders the document as indented JSON.
func (h HAR) Marshal() ([]byte, error) {
	return json.MarshalIndent(h, "", "  ")
}

func status(ev browser.FetchEvent) int {
	if ev.Revalidated {
		return 304
	}
	return ev.Status
}

func statusText(ev browser.FetchEvent) string {
	switch {
	case ev.Revalidated:
		return "Not Modified"
	case ev.Status == 200:
		return "OK"
	case ev.Status == 404:
		return "Not Found"
	default:
		return fmt.Sprintf("HTTP %d", ev.Status)
	}
}
