package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := NewSim()
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	end := s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if end != 30*time.Millisecond {
		t.Fatalf("final time = %v", end)
	}
}

func TestTiesBreakInSchedulingOrder(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.After(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim()
	var at []time.Duration
	s.After(10*time.Millisecond, func() {
		at = append(at, s.Now())
		s.After(5*time.Millisecond, func() {
			at = append(at, s.Now())
		})
	})
	s.Run()
	if len(at) != 2 || at[0] != 10*time.Millisecond || at[1] != 15*time.Millisecond {
		t.Fatalf("at = %v", at)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	s := NewSim()
	var fired time.Duration
	s.After(10*time.Millisecond, func() {
		s.At(0, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 10*time.Millisecond {
		t.Fatalf("past event fired at %v", fired)
	}
}

func TestCancel(t *testing.T) {
	s := NewSim()
	fired := false
	ev := s.After(time.Millisecond, func() { fired = true })
	ev.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	ev.Cancel() // double-cancel must not panic
}

func TestRunEmptyQueue(t *testing.T) {
	if end := NewSim().Run(); end != 0 {
		t.Fatalf("empty run ended at %v", end)
	}
}

// Property: virtual time never decreases across an arbitrary schedule.
func TestTimeMonotoneQuick(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewSim()
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			s.After(time.Duration(d)*time.Microsecond, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipeSingleTransfer(t *testing.T) {
	s := NewSim()
	p := NewPipe(s, 8e6) // 8 Mbps = 1 MB/s
	var done time.Duration
	p.Start(1_000_000, func() { done = s.Now() })
	s.Run()
	if got, want := done, time.Second; !approxDuration(got, want, time.Millisecond) {
		t.Fatalf("1MB at 1MB/s took %v, want ~%v", got, want)
	}
}

func TestPipeUnlimitedIsInstant(t *testing.T) {
	s := NewSim()
	p := NewPipe(s, 0)
	var done time.Duration = -1
	p.Start(1<<30, func() { done = s.Now() })
	s.Run()
	if done != 0 {
		t.Fatalf("unlimited pipe took %v", done)
	}
}

func TestPipeZeroSizeCompletes(t *testing.T) {
	s := NewSim()
	p := NewPipe(s, 1e6)
	calls := 0
	p.Start(0, func() { calls++ })
	p.Start(-5, func() { calls++ })
	s.Run()
	if calls != 2 {
		t.Fatalf("zero/negative transfers: %d done calls", calls)
	}
}

func TestPipeFairSharing(t *testing.T) {
	// Two equal transfers sharing the link must each take twice as long as
	// one alone, finishing together.
	s := NewSim()
	p := NewPipe(s, 8e6) // 1 MB/s
	var t1, t2 time.Duration
	p.Start(500_000, func() { t1 = s.Now() })
	p.Start(500_000, func() { t2 = s.Now() })
	s.Run()
	if !approxDuration(t1, time.Second, 5*time.Millisecond) || !approxDuration(t2, time.Second, 5*time.Millisecond) {
		t.Fatalf("shared transfers finished at %v, %v; want ~1s each", t1, t2)
	}
}

func TestPipeShortTransferDelaysLong(t *testing.T) {
	// 1 MB/s link. A 1MB transfer alone takes 1s. With a 250KB transfer
	// sharing for its duration: the short one gets 0.5 MB/s → finishes at
	// 0.5s having moved 250KB; the long one then has 750KB left at full
	// rate → 0.5 + 0.75 = 1.25s.
	s := NewSim()
	p := NewPipe(s, 8e6)
	var short, long time.Duration
	p.Start(1_000_000, func() { long = s.Now() })
	p.Start(250_000, func() { short = s.Now() })
	s.Run()
	if !approxDuration(short, 500*time.Millisecond, 5*time.Millisecond) {
		t.Errorf("short finished at %v, want ~0.5s", short)
	}
	if !approxDuration(long, 1250*time.Millisecond, 5*time.Millisecond) {
		t.Errorf("long finished at %v, want ~1.25s", long)
	}
}

func TestPipeLateJoiner(t *testing.T) {
	// 1 MB/s. A starts at t=0 (500KB). B (500KB) joins at t=0.25s when A
	// has 250KB left; both then get 0.5 MB/s. A finishes at 0.25+0.5=0.75s.
	// B has 250KB left at 0.75s, alone at 1MB/s → finishes 1.0s.
	s := NewSim()
	p := NewPipe(s, 8e6)
	var ta, tb time.Duration
	p.Start(500_000, func() { ta = s.Now() })
	s.After(250*time.Millisecond, func() {
		p.Start(500_000, func() { tb = s.Now() })
	})
	s.Run()
	if !approxDuration(ta, 750*time.Millisecond, 5*time.Millisecond) {
		t.Errorf("A finished at %v, want ~0.75s", ta)
	}
	if !approxDuration(tb, time.Second, 5*time.Millisecond) {
		t.Errorf("B finished at %v, want ~1s", tb)
	}
}

func TestPipeTotalBytes(t *testing.T) {
	s := NewSim()
	p := NewPipe(s, 1e6)
	p.Start(100, func() {})
	p.Start(200, func() {})
	p.Start(0, func() {})
	s.Run()
	if p.TotalBytes != 300 {
		t.Fatalf("TotalBytes = %d", p.TotalBytes)
	}
}

// Property (conservation + work): n transfers of total size S over a link of
// rate R all complete, and the last completion is at least S/R (the link
// cannot move bytes faster than capacity) and at most S/R + ε.
func TestPipeConservationQuick(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewSim()
		const rate = 1e6 // bytes/s equivalent: pass 8e6 bits
		p := NewPipe(s, 8e6)
		var total float64
		completed := 0
		n := 0
		for _, sz := range sizes {
			if sz == 0 {
				continue
			}
			n++
			total += float64(sz)
			p.Start(int64(sz), func() { completed++ })
		}
		end := s.Run()
		if completed != n {
			return false
		}
		if n == 0 {
			return true
		}
		ideal := total / rate
		gotSecs := end.Seconds()
		// Work conservation: busy link finishes exactly when the ideal
		// fluid model says (within float tolerance).
		return gotSecs >= ideal-1e-6 && gotSecs <= ideal+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func approxDuration(got, want, tol time.Duration) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}
