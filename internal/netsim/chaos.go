package netsim

import (
	"math/rand"
	"net/http"
	"sync"
	"time"

	"cachecatalyst/internal/httpcache"
	"cachecatalyst/internal/telemetry"
)

// etagConfigHeader is the proactive-token header ChaosOrigin can corrupt.
// Duplicated from internal/core to keep netsim free of a core dependency.
const etagConfigHeader = "X-Etag-Config"

// ChaosConfig describes one cell of the fault-injection matrix: each knob
// is an independent failure mode, and any combination may be enabled at
// once. All randomness is driven by Seed, so a cell replays identically —
// the property the chaos suite's catalyst-vs-conventional comparisons and
// cache-poisoning audits depend on.
type ChaosConfig struct {
	// Seed drives the probabilistic faults; runs with equal seeds and
	// equal request sequences inject identical faults.
	Seed int64

	// FailProb is the probability a request is answered with an
	// uncacheable 503 before reaching the inner origin.
	FailProb float64

	// TruncateProb is the probability a successful 200 response with a
	// body is cut mid-body (a connection reset after the headers): the
	// client receives a prefix of the body with Truncated set.
	TruncateProb float64

	// CorruptMapProb is the probability an X-Etag-Config header is
	// truncated in transit, leaving undecodable JSON. Clients must treat
	// the mangled map as absent, never fail the load.
	CorruptMapProb float64

	// StallProb/StallFor inject latency spikes: with probability
	// StallProb the origin stalls StallFor of extra virtual time before
	// answering.
	StallProb float64
	StallFor  time.Duration

	// UpFor/DownFor make the origin flap: it answers UpFor requests
	// normally, then 503s the next DownFor, repeating (healthy → down →
	// healthy). Both zero disables flapping.
	UpFor, DownFor int

	// SlowReadProb/SlowReadFor inject slow-reader clients: with
	// probability SlowReadProb the client drains the response body
	// SlowReadFor more slowly than the link allows, occupying the
	// connection the whole time. This is the overload mode that exhausts
	// connection slots without any request-rate increase.
	SlowReadProb float64
	SlowReadFor  time.Duration

	// BurstEvery/BurstSize inject concurrency spikes: every BurstEvery-th
	// request is amplified into BurstSize concurrent duplicate requests
	// against the inner origin (only the original's response is
	// delivered). Zero BurstEvery disables bursts.
	BurstEvery, BurstSize int

	// BrownoutEvery/BrownoutLen/BrownoutStall inject long brown-outs:
	// after every BrownoutEvery normally-timed requests, the next
	// BrownoutLen requests each stall BrownoutStall — a sustained
	// slowdown window, distinct from both the one-request latency spike
	// (StallProb) and the hard-down flap (DownFor). Zero BrownoutEvery
	// disables brown-outs.
	BrownoutEvery, BrownoutLen int
	BrownoutStall              time.Duration
}

// flapping reports whether the flap cycle is configured.
func (c ChaosConfig) flapping() bool { return c.UpFor > 0 && c.DownFor > 0 }

// ChaosStats counts injected faults per failure mode.
type ChaosStats struct {
	Requests       int64
	Failures       int64 // probabilistic 503s
	FlapFailures   int64 // 503s from the down phase of the flap cycle
	Truncations    int64
	CorruptedMaps  int64
	Stalls         int64
	SlowReads      int64 // slow-reader drains injected
	Bursts         int64 // burst events (each fired BurstSize-1 extras)
	BurstRequests  int64 // extra duplicate requests fired by bursts
	BrownoutStalls int64 // requests stalled inside a brown-out window
}

// Injected returns the total number of faults of any kind.
func (s ChaosStats) Injected() int64 {
	return s.Failures + s.FlapFailures + s.Truncations + s.CorruptedMaps +
		s.Stalls + s.SlowReads + s.Bursts + s.BrownoutStalls
}

// ChaosOrigin wraps an origin with the full fault-injection matrix. It is
// safe for concurrent use, so real-socket tests (catalyst.Client) and the
// single-threaded simulator can both drive it.
type ChaosOrigin struct {
	inner Origin
	cfg   ChaosConfig

	// mu serializes the rng and the request sequencer — replay
	// determinism. The counters are atomic telemetry instruments and are
	// bumped without the lock where possible.
	mu    sync.Mutex
	rng   *rand.Rand
	count int64
	// stallSeq sequences StallFor draws independently of RoundTrip order:
	// the transport asks for stalls before dispatching, so sharing count
	// would entangle the two sequences and break replay determinism.
	stallSeq int64

	requests, failures, flapFailures   telemetry.Counter
	truncations, corruptedMaps, stalls telemetry.Counter
	slowReads, bursts, burstRequests   telemetry.Counter
	brownoutStalls                     telemetry.Counter
}

// NewChaosOrigin returns inner wrapped in the fault matrix cfg describes.
func NewChaosOrigin(inner Origin, cfg ChaosConfig) *ChaosOrigin {
	return &ChaosOrigin{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a snapshot of injected-fault counters.
func (c *ChaosOrigin) Stats() ChaosStats {
	return ChaosStats{
		Requests:       c.requests.Load(),
		Failures:       c.failures.Load(),
		FlapFailures:   c.flapFailures.Load(),
		Truncations:    c.truncations.Load(),
		CorruptedMaps:  c.corruptedMaps.Load(),
		Stalls:         c.stalls.Load(),
		SlowReads:      c.slowReads.Load(),
		Bursts:         c.bursts.Load(),
		BurstRequests:  c.burstRequests.Load(),
		BrownoutStalls: c.brownoutStalls.Load(),
	}
}

// RegisterTelemetry indexes the origin's fault counters in reg under name
// (e.g. "chaos.requests"); the registry reads the same storage Stats()
// snapshots.
func (c *ChaosOrigin) RegisterTelemetry(reg *telemetry.Registry, name string) {
	reg.RegisterCounter(name+".requests", &c.requests)
	reg.RegisterCounter(name+".failures", &c.failures)
	reg.RegisterCounter(name+".flap_failures", &c.flapFailures)
	reg.RegisterCounter(name+".truncations", &c.truncations)
	reg.RegisterCounter(name+".corrupted_maps", &c.corruptedMaps)
	reg.RegisterCounter(name+".stalls", &c.stalls)
	reg.RegisterCounter(name+".slow_reads", &c.slowReads)
	reg.RegisterCounter(name+".bursts", &c.bursts)
	reg.RegisterCounter(name+".burst_requests", &c.burstRequests)
	reg.RegisterCounter(name+".brownout_stalls", &c.brownoutStalls)
}

// StallFor implements Stalling: it draws the latency-spike fault for one
// request and overlays the brown-out window — BrownoutLen consecutive
// requests of sustained stall after every BrownoutEvery normal ones.
func (c *ChaosOrigin) StallFor(req *Request) time.Duration {
	probabilistic := c.cfg.StallProb > 0 && c.cfg.StallFor > 0
	brownout := c.cfg.BrownoutEvery > 0 && c.cfg.BrownoutLen > 0 && c.cfg.BrownoutStall > 0
	if !probabilistic && !brownout {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var stall time.Duration
	if brownout {
		cycle := int64(c.cfg.BrownoutEvery + c.cfg.BrownoutLen)
		pos := c.stallSeq % cycle
		c.stallSeq++
		if pos >= int64(c.cfg.BrownoutEvery) {
			c.brownoutStalls.Add(1)
			stall += c.cfg.BrownoutStall
		}
	}
	if probabilistic && c.rng.Float64() < c.cfg.StallProb {
		c.stalls.Add(1)
		stall += c.cfg.StallFor
	}
	return stall
}

// DrainFor implements Draining: it draws the slow-reader fault, charging
// extra client-side drain time that keeps the connection occupied.
func (c *ChaosOrigin) DrainFor(req *Request, resp *httpcache.Response) time.Duration {
	if c.cfg.SlowReadProb <= 0 || c.cfg.SlowReadFor <= 0 || len(resp.Body) == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() >= c.cfg.SlowReadProb {
		return 0
	}
	c.slowReads.Add(1)
	return c.cfg.SlowReadFor
}

// RoundTrip implements Origin. Fault draws happen in request order under
// the lock, so a fixed seed and a fixed request sequence replay the exact
// same faults.
func (c *ChaosOrigin) RoundTrip(req *Request) *httpcache.Response {
	c.mu.Lock()
	c.requests.Add(1)
	pos := c.count
	c.count++
	if c.cfg.flapping() {
		cycle := int64(c.cfg.UpFor + c.cfg.DownFor)
		if pos%cycle >= int64(c.cfg.UpFor) {
			c.flapFailures.Add(1)
			c.mu.Unlock()
			return injected503()
		}
	}
	if c.cfg.FailProb > 0 && c.rng.Float64() < c.cfg.FailProb {
		c.failures.Add(1)
		c.mu.Unlock()
		return injected503()
	}
	// Draw the in-transit faults before releasing the lock so the rng
	// sequence depends only on request order, not on the inner origin.
	truncate := c.cfg.TruncateProb > 0 && c.rng.Float64() < c.cfg.TruncateProb
	corrupt := c.cfg.CorruptMapProb > 0 && c.rng.Float64() < c.cfg.CorruptMapProb
	burst := c.cfg.BurstEvery > 0 && c.cfg.BurstSize > 1 && pos%int64(c.cfg.BurstEvery) == 0
	c.mu.Unlock()

	if burst {
		// Concurrency spike: the inner origin sees BurstSize copies of
		// this request at once — real goroutine concurrency, so a gated
		// origin experiences genuine slot contention. Only the original's
		// response is delivered; the duplicates' are discarded.
		c.bursts.Add(1)
		extras := c.cfg.BurstSize - 1
		c.burstRequests.Add(int64(extras))
		var wg sync.WaitGroup
		wg.Add(extras)
		for i := 0; i < extras; i++ {
			go func() {
				defer wg.Done()
				dup := *req
				c.inner.RoundTrip(&dup)
			}()
		}
		defer wg.Wait()
	}

	resp := c.inner.RoundTrip(req)

	if truncate && resp.StatusCode == http.StatusOK && len(resp.Body) > 1 {
		resp = resp.Clone()
		resp.Body = resp.Body[:len(resp.Body)/2]
		resp.Truncated = true
		c.truncations.Add(1)
	}
	if corrupt {
		if v := resp.Header.Get(etagConfigHeader); v != "" {
			if !resp.Truncated { // avoid double-cloning a truncated response
				resp = resp.Clone()
			}
			resp.Header.Set(etagConfigHeader, v[:len(v)/2])
			c.corruptedMaps.Add(1)
		}
	}
	return resp
}
