package netsim

import (
	"math"
	"time"
)

// Pipe models a bottleneck link direction with fixed capacity shared
// equally among concurrent transfers — the fluid-flow approximation of
// long-lived TCP streams sharing a last-mile link. A Pipe with zero
// capacity is infinitely fast (transfers complete after zero transmission
// time), which models the "latency-only" limit.
type Pipe struct {
	sim *Sim
	// bytesPerSec is the link capacity; 0 means unlimited.
	bytesPerSec float64
	active      []*transfer
	lastUpdate  time.Duration
	completion  *Event

	// TotalBytes counts all bytes ever accepted, for bytes-on-wire
	// accounting in experiments.
	TotalBytes int64
}

type transfer struct {
	remaining float64
	done      func()
}

// NewPipe returns a pipe on sim with the given capacity in bits per second
// (the unit network conditions are quoted in). bitsPerSec 0 means unlimited.
func NewPipe(sim *Sim, bitsPerSec float64) *Pipe {
	return &Pipe{sim: sim, bytesPerSec: bitsPerSec / 8}
}

// Start begins transferring size bytes; done runs when the last byte has
// been serialized onto the link. Zero- and negative-size transfers complete
// immediately (still via the event queue, preserving causal ordering).
func (p *Pipe) Start(size int64, done func()) {
	if size > 0 {
		p.TotalBytes += size
	}
	if p.bytesPerSec <= 0 || size <= 0 {
		p.sim.After(0, done)
		return
	}
	p.advance()
	p.active = append(p.active, &transfer{remaining: float64(size), done: done})
	p.reschedule()
}

// InFlight returns the number of active transfers.
func (p *Pipe) InFlight() int { return len(p.active) }

// advance debits elapsed transmission from all active transfers.
func (p *Pipe) advance() {
	now := p.sim.Now()
	if now <= p.lastUpdate || len(p.active) == 0 {
		p.lastUpdate = now
		return
	}
	elapsed := (now - p.lastUpdate).Seconds()
	share := p.bytesPerSec / float64(len(p.active))
	for _, t := range p.active {
		t.remaining -= elapsed * share
	}
	p.lastUpdate = now
}

// reschedule (re)arms the completion event for the transfer that will
// finish first under the current share.
func (p *Pipe) reschedule() {
	if p.completion != nil {
		p.completion.Cancel()
		p.completion = nil
	}
	if len(p.active) == 0 {
		return
	}
	minRemaining := math.Inf(1)
	for _, t := range p.active {
		if t.remaining < minRemaining {
			minRemaining = t.remaining
		}
	}
	if minRemaining < 0 {
		minRemaining = 0
	}
	share := p.bytesPerSec / float64(len(p.active))
	// Round the ETA up to a whole nanosecond: truncation could otherwise
	// produce a zero-delay completion event that debits nothing and
	// reschedules itself forever.
	eta := time.Duration(math.Ceil(minRemaining / share * float64(time.Second)))
	p.completion = p.sim.After(eta, p.complete)
}

// complete retires every transfer that has (within float tolerance)
// finished, then reschedules.
func (p *Pipe) complete() {
	p.completion = nil
	p.advance()
	const epsilon = 1e-6 // bytes; absorbs float error
	var still []*transfer
	var finished []*transfer
	for _, t := range p.active {
		if t.remaining <= epsilon {
			finished = append(finished, t)
		} else {
			still = append(still, t)
		}
	}
	p.active = still
	p.reschedule()
	for _, t := range finished {
		t.done()
	}
}
