package netsim

import (
	"net/http"

	"cachecatalyst/internal/httpcache"
)

// FaultyOrigin wraps an origin with deterministic failure injection: every
// n-th request (1-based counting) is answered with a 503 instead of being
// forwarded. Experiments use it to check that clients degrade gracefully —
// a failed subresource must cost an error, never a hang or a crash, and
// must not poison caches.
type FaultyOrigin struct {
	// Inner serves the requests that are not failed.
	Inner Origin
	// FailEvery fails request numbers n, 2n, 3n, …; values < 2 fail
	// every request.
	FailEvery int

	count int64
	// Failed counts injected failures.
	Failed int64
}

// RoundTrip implements Origin.
func (f *FaultyOrigin) RoundTrip(req *Request) *httpcache.Response {
	f.count++
	n := int64(f.FailEvery)
	if n < 2 || f.count%n == 0 {
		f.Failed++
		h := make(http.Header)
		h.Set("Content-Type", "text/plain")
		h.Set("Cache-Control", "no-store")
		return &httpcache.Response{
			StatusCode: http.StatusServiceUnavailable,
			Header:     h,
			Body:       []byte("injected failure"),
		}
	}
	return f.Inner.RoundTrip(req)
}
