package netsim

import (
	"net/http"
	"sync/atomic"

	"cachecatalyst/internal/httpcache"
	"cachecatalyst/internal/telemetry"
)

// FaultyOrigin wraps an origin with deterministic failure injection: every
// n-th request (1-based counting) is answered with a 503 instead of being
// forwarded. Experiments use it to check that clients degrade gracefully —
// a failed subresource must cost an error, never a hang or a crash, and
// must not poison caches.
//
// Counters are atomic, so concurrent clients (catalyst.Client tests) may
// share one origin.
type FaultyOrigin struct {
	// Inner serves the requests that are not failed.
	Inner Origin
	// FailEvery fails request numbers n, 2n, 3n, …; values < 2 fail
	// every request.
	FailEvery int

	// count sequences requests to pick the victims; it is a sequencer,
	// not a metric, so it stays a plain atomic.
	count atomic.Int64
	// failed counts injected failures; read it with Failed.
	failed telemetry.Counter
}

// Failed returns the number of injected failures so far.
func (f *FaultyOrigin) Failed() int64 { return f.failed.Load() }

// RegisterTelemetry indexes the injected-failure counter in reg as
// "<name>.failed"; the registry reads the same storage Failed() does.
func (f *FaultyOrigin) RegisterTelemetry(reg *telemetry.Registry, name string) {
	reg.RegisterCounter(name+".failed", &f.failed)
}

// RoundTrip implements Origin.
func (f *FaultyOrigin) RoundTrip(req *Request) *httpcache.Response {
	count := f.count.Add(1)
	n := int64(f.FailEvery)
	if n < 2 || count%n == 0 {
		f.failed.Add(1)
		return injected503()
	}
	return f.Inner.RoundTrip(req)
}

// injected503 builds the uncacheable error response every fault injector
// answers with when it fails a request outright.
func injected503() *httpcache.Response {
	h := make(http.Header)
	h.Set("Content-Type", "text/plain")
	h.Set("Cache-Control", "no-store")
	return &httpcache.Response{
		StatusCode: http.StatusServiceUnavailable,
		Header:     h,
		Body:       []byte("injected failure"),
	}
}
