package netsim

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"time"

	"cachecatalyst/internal/httpcache"
)

// Request is the simulator's HTTP request representation. Bodies are not
// modelled: page loading is GET-only.
type Request struct {
	Method string
	Path   string
	Header http.Header
	// Ctx, when non-nil, is the caller's request context. Adapters that
	// bridge to real handlers (server.NewHandlerOrigin, HandlerFromOrigin)
	// attach it to the inner http.Request, so cancelling the caller
	// cancels probe fan-outs and origin work end to end.
	Ctx context.Context
}

// Context returns the request's context, defaulting to Background.
func (r *Request) Context() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// Origin answers simulated requests. internal/server adapts the real
// net/http handler to this interface, so the simulation exercises the exact
// header logic a real deployment would.
type Origin interface {
	RoundTrip(req *Request) *httpcache.Response
}

// Stalling is an optional Origin interface for fault injection: an origin
// implementing it can charge extra server-side virtual time (a latency
// spike or stall) per request, on top of TransportOptions.ServerThink.
type Stalling interface {
	StallFor(req *Request) time.Duration
}

// Draining is an optional Origin interface modelling slow-reader clients:
// the returned duration is extra virtual time the client takes to drain
// the response body after the last byte would otherwise have arrived. The
// connection stays occupied the whole time — the fault that exhausts
// server-side connection slots without any request-rate increase.
type Draining interface {
	DrainFor(req *Request, resp *httpcache.Response) time.Duration
}

// Conditions describes the emulated network between client and origin,
// mirroring the browser-throttling knobs used in the paper's evaluation.
type Conditions struct {
	// RTT is the full client↔origin round-trip time.
	RTT time.Duration
	// DownlinkBps / UplinkBps are capacities in bits per second; zero
	// means unlimited.
	DownlinkBps float64
	UplinkBps   float64
}

// String renders conditions the way the paper labels them, e.g.
// "60Mbps/40ms".
func (c Conditions) String() string {
	return fmt.Sprintf("%gMbps/%dms", c.DownlinkBps/1e6, c.RTT.Milliseconds())
}

// TransportOptions tunes the HTTP connection model.
type TransportOptions struct {
	// MaxConns bounds parallel HTTP/1.1 connections per origin (browsers
	// use 6). Ignored under H2. Zero selects the default of 6.
	MaxConns int
	// H2 multiplexes all requests over one connection.
	H2 bool
	// TLSHandshakeRTTs is the extra round trips for TLS setup on a new
	// connection (1 for TLS 1.3). Negative is treated as zero.
	TLSHandshakeRTTs int
	// ServerThink is origin processing time per request.
	ServerThink time.Duration
	// SlowStart models TCP congestion-window growth: a response larger
	// than the connection's current window needs extra round trips before
	// its last byte can leave, regardless of link bandwidth. The window
	// starts at InitialWindow segments and doubles per round trip,
	// persisting across exchanges on the same connection — so warm
	// connections transfer large bodies faster than cold ones.
	SlowStart bool
	// InitialWindow is the starting congestion window in MSS-sized
	// segments; zero selects the RFC 6928 IW10.
	InitialWindow int
}

// mss is the segment size used by the slow-start model.
const mss = 1460

func (o TransportOptions) initialWindow() int {
	if o.InitialWindow > 0 {
		return o.InitialWindow
	}
	return 10
}

func (o TransportOptions) maxConns() int {
	if o.H2 {
		return 1
	}
	if o.MaxConns <= 0 {
		return 6
	}
	return o.MaxConns
}

func (o TransportOptions) handshakeRTTs() int {
	tls := o.TLSHandshakeRTTs
	if tls < 0 {
		tls = 0
	}
	return 1 + tls // TCP + TLS
}

// FetchResult reports one completed exchange.
type FetchResult struct {
	Resp *httpcache.Response
	// Start is when the fetch was requested; End when the last response
	// byte arrived.
	Start, End time.Duration
	// NewConnection is true when the exchange paid connection setup.
	NewConnection bool
}

// Stats aggregates transport activity for bytes-on-wire reporting.
type Stats struct {
	Requests      int64
	Handshakes    int64
	BytesDown     int64
	BytesUp       int64
	ResponseBytes int64 // body bytes only
}

// Endpoint is the client side of a simulated HTTP session to one origin:
// a connection pool over shared up/down pipes.
type Endpoint struct {
	sim    *Sim
	cond   Conditions
	origin Origin
	opts   TransportOptions
	down   *Pipe
	up     *Pipe

	conns   []*simConn
	waiting []*pendingFetch

	stats Stats
}

type pendingFetch struct {
	req  *Request
	done func(FetchResult)
	t0   time.Duration
	// onHints, when set, receives a clone of the response headers early —
	// the 103 Early Hints model. See Endpoint.FetchWithHints.
	onHints func(http.Header)
}

type simConn struct {
	established bool
	busy        bool
	// cwnd is the congestion window in MSS segments (slow-start model).
	cwnd int
}

// NewEndpoint returns an endpoint to origin under the given conditions.
func NewEndpoint(sim *Sim, cond Conditions, origin Origin, opts TransportOptions) *Endpoint {
	return &Endpoint{
		sim:    sim,
		cond:   cond,
		origin: origin,
		opts:   opts,
		down:   NewPipe(sim, cond.DownlinkBps),
		up:     NewPipe(sim, cond.UplinkBps),
	}
}

// Stats returns a snapshot of transport counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Fetch performs a GET-style exchange; done runs when the full response has
// arrived. Under H2, concurrent fetches multiplex over one connection; under
// HTTP/1.1 they queue for up to MaxConns parallel connections.
func (e *Endpoint) Fetch(req *Request, done func(FetchResult)) {
	e.FetchWithHints(req, nil, done)
}

// FetchWithHints is Fetch with an informational-response channel: when the
// origin's response carries Link headers and onHints is non-nil, a small
// 103 Early Hints interim response is modelled on the downlink and onHints
// runs with a clone of the response headers as soon as it propagates —
// ahead of the (typically much larger) final response body. The model is
// conservative: the hints leave after origin processing, so they beat the
// body by its serialization time rather than the server think time a real
// 103 (sent before the handler runs) can also save.
func (e *Endpoint) FetchWithHints(req *Request, onHints func(http.Header), done func(FetchResult)) {
	p := &pendingFetch{req: req, done: done, t0: e.sim.Now(), onHints: onHints}
	if e.opts.H2 {
		e.fetchH2(p)
		return
	}
	e.dispatch(p)
}

// dispatch assigns a pending fetch to an idle connection, opens a new one,
// or queues.
func (e *Endpoint) dispatch(p *pendingFetch) {
	for _, c := range e.conns {
		if c.established && !c.busy {
			c.busy = true
			e.exchange(c, p, false)
			return
		}
	}
	if len(e.conns) < e.opts.maxConns() {
		c := &simConn{busy: true, cwnd: e.opts.initialWindow()}
		e.conns = append(e.conns, c)
		e.stats.Handshakes++
		setup := time.Duration(e.opts.handshakeRTTs()) * e.cond.RTT
		e.sim.After(setup, func() {
			c.established = true
			e.exchange(c, p, true)
		})
		return
	}
	e.waiting = append(e.waiting, p)
}

// exchange runs one request/response on an established h1 connection.
func (e *Endpoint) exchange(c *simConn, p *pendingFetch, isNew bool) {
	e.roundTrip(c, p, isNew, func() {
		c.busy = false
		if len(e.waiting) > 0 {
			next := e.waiting[0]
			e.waiting = e.waiting[1:]
			c.busy = true
			e.exchange(c, next, false)
		}
	})
}

// fetchH2 multiplexes the fetch over the single H2 connection, creating it
// on first use. Requests issued during the handshake wait for it.
func (e *Endpoint) fetchH2(p *pendingFetch) {
	if len(e.conns) == 0 {
		c := &simConn{cwnd: e.opts.initialWindow()}
		e.conns = append(e.conns, c)
		e.stats.Handshakes++
		setup := time.Duration(e.opts.handshakeRTTs()) * e.cond.RTT
		e.sim.After(setup, func() {
			c.established = true
			e.drainH2()
		})
		e.waiting = append(e.waiting, p)
		return
	}
	if !e.conns[0].established {
		e.waiting = append(e.waiting, p)
		return
	}
	e.roundTrip(e.conns[0], p, false, nil)
}

func (e *Endpoint) drainH2() {
	waiting := e.waiting
	e.waiting = nil
	for _, p := range waiting {
		e.roundTrip(e.conns[0], p, true, nil)
	}
}

// roundTrip models: ½RTT request propagation + request serialization on the
// uplink, origin processing, response serialization on the shared downlink
// + ½RTT propagation. after (optional) runs when the response completes,
// before the caller's done callback.
func (e *Endpoint) roundTrip(c *simConn, p *pendingFetch, isNew bool, after func()) {
	e.stats.Requests++
	reqBytes := RequestWireSize(p.req)
	e.stats.BytesUp += reqBytes
	think := e.opts.ServerThink
	if s, ok := e.origin.(Stalling); ok {
		think += s.StallFor(p.req)
	}
	e.up.Start(reqBytes, func() {
		// Request propagates to the origin.
		e.sim.After(e.cond.RTT/2+think, func() {
			resp := e.origin.RoundTrip(p.req)
			respBytes := ResponseWireSize(resp)
			e.stats.BytesDown += respBytes
			e.stats.ResponseBytes += int64(len(resp.Body))
			if p.onHints != nil {
				if links := resp.Header.Values("Link"); len(links) > 0 {
					hintBytes := earlyHintsWireSize(links)
					e.stats.BytesDown += hintBytes
					hdr := resp.Header.Clone()
					e.down.Start(hintBytes, func() {
						e.sim.After(e.cond.RTT/2, func() {
							p.onHints(hdr)
						})
					})
				}
			}
			var drain time.Duration
			if d, ok := e.origin.(Draining); ok {
				drain = d.DrainFor(p.req, resp)
			}
			stall := e.slowStartStall(c, respBytes)
			e.sim.After(stall, func() {
				e.down.Start(respBytes, func() {
					// Last byte propagates back to the client; a
					// slow-reader drain keeps the connection busy past
					// that, which is the whole point of the fault.
					e.sim.After(e.cond.RTT/2+drain, func() {
						if after != nil {
							after()
						}
						p.done(FetchResult{
							Resp:          resp,
							Start:         p.t0,
							End:           e.sim.Now(),
							NewConnection: isNew,
						})
					})
				})
			})
		})
	})
}

// maxCwnd caps congestion-window growth (≈3 MB in flight).
const maxCwnd = 2048

// slowStartStall returns the ACK-clocking delay a response of size bytes
// suffers on connection c, and grows c's window. With slow start disabled
// (or a window large enough) the stall is zero: the fluid pipe alone
// governs transfer time.
func (e *Endpoint) slowStartStall(c *simConn, bytes int64) time.Duration {
	if !e.opts.SlowStart || c == nil {
		return 0
	}
	segs := int((bytes + mss - 1) / mss)
	if segs <= 0 {
		segs = 1
	}
	rounds := 0
	w := c.cwnd
	remaining := segs
	for remaining > 0 {
		remaining -= w
		rounds++
		if w < maxCwnd {
			w *= 2
			if w > maxCwnd {
				w = maxCwnd
			}
		}
	}
	c.cwnd = w
	return time.Duration(rounds-1) * e.cond.RTT
}

// RequestWireSize returns the serialized size of a request head in bytes
// (request line + headers + terminating CRLF).
func RequestWireSize(req *Request) int64 {
	n := int64(len(req.Method) + 1 + len(req.Path) + len(" HTTP/1.1\r\n"))
	n += headerWireSize(req.Header)
	return n + 2
}

// ResponseWireSize returns the serialized size of a response in bytes
// (status line + headers + CRLF + body).
func ResponseWireSize(resp *httpcache.Response) int64 {
	n := int64(len("HTTP/1.1 200 OK\r\n"))
	n += headerWireSize(resp.Header)
	return n + 2 + int64(len(resp.Body))
}

// earlyHintsWireSize returns the serialized size of a 103 interim response
// carrying the given Link header values.
func earlyHintsWireSize(links []string) int64 {
	n := int64(len("HTTP/1.1 103 Early Hints\r\n"))
	for _, v := range links {
		n += int64(len("Link: ") + len(v) + len("\r\n"))
	}
	return n + 2
}

func headerWireSize(h http.Header) int64 {
	if len(h) == 0 {
		return 0
	}
	var n int64
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys) // determinism only; size is order-independent
	for _, k := range keys {
		for _, v := range h[k] {
			n += int64(len(k) + len(": ") + len(v) + len("\r\n"))
		}
	}
	return n
}
