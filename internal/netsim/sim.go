// Package netsim is a discrete-event network simulator.
//
// The paper evaluates page loads under throttled latency/throughput using a
// real browser's network emulation; this package provides the equivalent
// substrate for the emulated browser: a virtual-time event loop, fluid-flow
// shared-bandwidth links (parallel transfers share capacity the way
// concurrent TCP streams do), and an HTTP connection model with handshake
// costs, HTTP/1.1 connection pooling and HTTP/2 multiplexing.
//
// Virtual time makes a 100-site × network-grid × revisit-delay sweep run in
// milliseconds of wall time while preserving the quantities that determine
// page load time: round trips, transmission times and scheduling.
package netsim

import (
	"container/heap"
	"time"
)

// Sim is a single-threaded discrete-event simulator. Callbacks scheduled on
// the simulator run in timestamp order; ties break in scheduling order, so
// runs are deterministic.
type Sim struct {
	now   time.Duration
	queue eventQueue
	seq   int64
}

// NewSim returns a simulator at virtual time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// runs fn at the current time (immediately-next event).
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	ev := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Run executes events until the queue drains, returning the final virtual
// time.
func (s *Sim) Run() time.Duration {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.fn()
	}
	return s.now
}

// Event is a scheduled callback; it can be cancelled before it fires.
type Event struct {
	at        time.Duration
	seq       int64
	fn        func()
	index     int
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling a fired or already
// cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
