package netsim

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"cachecatalyst/internal/httpcache"
)

// staticOrigin serves fixed bodies by path.
type staticOrigin struct {
	bodies map[string]string
	// requests logs the paths served, in arrival order.
	requests []string
}

func (o *staticOrigin) RoundTrip(req *Request) *httpcache.Response {
	o.requests = append(o.requests, req.Path)
	body, ok := o.bodies[req.Path]
	if !ok {
		return &httpcache.Response{StatusCode: 404, Header: make(http.Header)}
	}
	return &httpcache.Response{StatusCode: 200, Header: make(http.Header), Body: []byte(body)}
}

func msCond(rttMS int, mbps float64) Conditions {
	return Conditions{RTT: time.Duration(rttMS) * time.Millisecond, DownlinkBps: mbps * 1e6, UplinkBps: 0}
}

func TestSingleFetchTiming(t *testing.T) {
	s := NewSim()
	origin := &staticOrigin{bodies: map[string]string{"/x": "hello"}}
	// 40ms RTT, unlimited bandwidth: fetch = 1 RTT handshake + 1 RTT
	// request/response = 80ms.
	e := NewEndpoint(s, msCond(40, 0), origin, TransportOptions{})
	var res FetchResult
	s.After(0, func() {
		e.Fetch(&Request{Method: "GET", Path: "/x", Header: make(http.Header)}, func(r FetchResult) { res = r })
	})
	s.Run()
	if res.Resp == nil || string(res.Resp.Body) != "hello" {
		t.Fatalf("resp = %+v", res.Resp)
	}
	if want := 80 * time.Millisecond; !approxDuration(res.End, want, time.Millisecond) {
		t.Fatalf("fetch completed at %v, want ~%v", res.End, want)
	}
	if !res.NewConnection {
		t.Fatal("first fetch should pay connection setup")
	}
}

func TestTLSHandshakeAddsRTT(t *testing.T) {
	s := NewSim()
	origin := &staticOrigin{bodies: map[string]string{"/x": "h"}}
	e := NewEndpoint(s, msCond(40, 0), origin, TransportOptions{TLSHandshakeRTTs: 1})
	var end time.Duration
	s.After(0, func() {
		e.Fetch(&Request{Method: "GET", Path: "/x", Header: make(http.Header)}, func(r FetchResult) { end = r.End })
	})
	s.Run()
	if want := 120 * time.Millisecond; !approxDuration(end, want, time.Millisecond) {
		t.Fatalf("TLS fetch completed at %v, want ~%v", end, want)
	}
}

func TestTransmissionTimeAddsToRTT(t *testing.T) {
	s := NewSim()
	body := make([]byte, 125_000) // 1 Mbit
	origin := &staticOrigin{bodies: map[string]string{"/big": string(body)}}
	e := NewEndpoint(s, msCond(40, 1.0), origin, TransportOptions{}) // 1 Mbps → 1s for the body
	var end time.Duration
	s.After(0, func() {
		e.Fetch(&Request{Method: "GET", Path: "/big", Header: make(http.Header)}, func(r FetchResult) { end = r.End })
	})
	s.Run()
	// 2 RTT (handshake + exchange) + ~1s transmission (body + head).
	if end < 1*time.Second+80*time.Millisecond || end > 1100*time.Millisecond {
		t.Fatalf("big fetch completed at %v", end)
	}
}

func TestKeepAliveReusesConnection(t *testing.T) {
	s := NewSim()
	origin := &staticOrigin{bodies: map[string]string{"/a": "a", "/b": "b"}}
	e := NewEndpoint(s, msCond(40, 0), origin, TransportOptions{MaxConns: 1})
	var ends []time.Duration
	var second FetchResult
	s.After(0, func() {
		e.Fetch(&Request{Method: "GET", Path: "/a", Header: make(http.Header)}, func(r FetchResult) {
			ends = append(ends, r.End)
			e.Fetch(&Request{Method: "GET", Path: "/b", Header: make(http.Header)}, func(r2 FetchResult) {
				second = r2
				ends = append(ends, r2.End)
			})
		})
	})
	s.Run()
	// First: 80ms. Second reuses the warm connection: +40ms = 120ms.
	if !approxDuration(ends[1], 120*time.Millisecond, time.Millisecond) {
		t.Fatalf("second fetch at %v, want ~120ms (ends=%v)", ends[1], ends)
	}
	if second.NewConnection {
		t.Fatal("second fetch should reuse the connection")
	}
	if e.Stats().Handshakes != 1 {
		t.Fatalf("handshakes = %d", e.Stats().Handshakes)
	}
}

func TestH1ParallelismBoundedByMaxConns(t *testing.T) {
	s := NewSim()
	origin := &staticOrigin{bodies: map[string]string{}}
	for i := 0; i < 4; i++ {
		origin.bodies[fmt.Sprintf("/r%d", i)] = "x"
	}
	e := NewEndpoint(s, msCond(40, 0), origin, TransportOptions{MaxConns: 2})
	var ends []time.Duration
	s.After(0, func() {
		for i := 0; i < 4; i++ {
			path := fmt.Sprintf("/r%d", i)
			e.Fetch(&Request{Method: "GET", Path: path, Header: make(http.Header)}, func(r FetchResult) {
				ends = append(ends, r.End)
			})
		}
	})
	end := s.Run()
	if len(ends) != 4 {
		t.Fatalf("completed %d fetches", len(ends))
	}
	// 2 conns: first pair at 80ms, second pair (queued, reuse) at 120ms.
	if !approxDuration(end, 120*time.Millisecond, time.Millisecond) {
		t.Fatalf("4 fetches over 2 conns finished at %v, want ~120ms", end)
	}
	if e.Stats().Handshakes != 2 {
		t.Fatalf("handshakes = %d, want 2", e.Stats().Handshakes)
	}
}

func TestH2MultiplexesOverOneConnection(t *testing.T) {
	s := NewSim()
	origin := &staticOrigin{bodies: map[string]string{}}
	for i := 0; i < 8; i++ {
		origin.bodies[fmt.Sprintf("/r%d", i)] = "x"
	}
	e := NewEndpoint(s, msCond(40, 0), origin, TransportOptions{H2: true})
	count := 0
	s.After(0, func() {
		for i := 0; i < 8; i++ {
			path := fmt.Sprintf("/r%d", i)
			e.Fetch(&Request{Method: "GET", Path: path, Header: make(http.Header)}, func(r FetchResult) { count++ })
		}
	})
	end := s.Run()
	if count != 8 {
		t.Fatalf("completed %d", count)
	}
	// One handshake (40ms) then all 8 exchanges concurrently (40ms).
	if !approxDuration(end, 80*time.Millisecond, time.Millisecond) {
		t.Fatalf("h2 burst finished at %v, want ~80ms", end)
	}
	if e.Stats().Handshakes != 1 {
		t.Fatalf("handshakes = %d", e.Stats().Handshakes)
	}
}

func TestH2LateRequestAfterHandshake(t *testing.T) {
	s := NewSim()
	origin := &staticOrigin{bodies: map[string]string{"/a": "a", "/b": "b"}}
	e := NewEndpoint(s, msCond(40, 0), origin, TransportOptions{H2: true})
	var endB time.Duration
	s.After(0, func() {
		e.Fetch(&Request{Method: "GET", Path: "/a", Header: make(http.Header)}, func(FetchResult) {})
	})
	s.After(100*time.Millisecond, func() {
		e.Fetch(&Request{Method: "GET", Path: "/b", Header: make(http.Header)}, func(r FetchResult) { endB = r.End })
	})
	s.Run()
	if want := 140 * time.Millisecond; !approxDuration(endB, want, time.Millisecond) {
		t.Fatalf("late h2 request finished at %v, want ~%v", endB, want)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := NewSim()
	origin := &staticOrigin{bodies: map[string]string{"/x": "0123456789"}}
	e := NewEndpoint(s, msCond(10, 0), origin, TransportOptions{})
	s.After(0, func() {
		e.Fetch(&Request{Method: "GET", Path: "/x", Header: make(http.Header)}, func(FetchResult) {})
	})
	s.Run()
	st := e.Stats()
	if st.Requests != 1 {
		t.Errorf("requests = %d", st.Requests)
	}
	if st.ResponseBytes != 10 {
		t.Errorf("response bytes = %d", st.ResponseBytes)
	}
	if st.BytesDown <= st.ResponseBytes {
		t.Errorf("BytesDown (%d) should exceed body size (head bytes)", st.BytesDown)
	}
	if st.BytesUp <= 0 {
		t.Errorf("BytesUp = %d", st.BytesUp)
	}
}

func TestServerThinkTime(t *testing.T) {
	s := NewSim()
	origin := &staticOrigin{bodies: map[string]string{"/x": "x"}}
	e := NewEndpoint(s, msCond(40, 0), origin, TransportOptions{ServerThink: 15 * time.Millisecond})
	var end time.Duration
	s.After(0, func() {
		e.Fetch(&Request{Method: "GET", Path: "/x", Header: make(http.Header)}, func(r FetchResult) { end = r.End })
	})
	s.Run()
	if want := 95 * time.Millisecond; !approxDuration(end, want, time.Millisecond) {
		t.Fatalf("fetch with think time at %v, want ~%v", end, want)
	}
}

func TestWireSizes(t *testing.T) {
	req := &Request{Method: "GET", Path: "/x", Header: http.Header{"If-None-Match": {`"v1"`}}}
	// GET /x HTTP/1.1\r\n (17) + If-None-Match: "v1"\r\n (21) + \r\n (2)
	if got := RequestWireSize(req); got != 17+21+2 {
		t.Fatalf("RequestWireSize = %d", got)
	}
	resp := &httpcache.Response{StatusCode: 200, Header: http.Header{"Etag": {`"v1"`}}, Body: []byte("12345")}
	// HTTP/1.1 200 OK\r\n (17) + Etag: "v1"\r\n (12) + \r\n (2) + 5
	if got := ResponseWireSize(resp); got != 17+12+2+5 {
		t.Fatalf("ResponseWireSize = %d", got)
	}
}

func TestConditionsString(t *testing.T) {
	c := Conditions{RTT: 40 * time.Millisecond, DownlinkBps: 60e6}
	if got := c.String(); got != "60Mbps/40ms" {
		t.Fatalf("Conditions.String() = %q", got)
	}
}

func TestHeaderBytesChargedToDownlink(t *testing.T) {
	// The X-Etag-Config honesty check: header bytes must cost transmission
	// time. Serve a response whose header is 1 Mbit.
	s := NewSim()
	huge := make([]byte, 125_000)
	for i := range huge {
		huge[i] = 'a'
	}
	hdr := make(http.Header)
	hdr.Set("X-Etag-Config", string(huge))
	origin := originFunc(func(req *Request) *httpcache.Response {
		return &httpcache.Response{StatusCode: 200, Header: hdr, Body: nil}
	})
	e := NewEndpoint(s, msCond(0, 1.0), origin, TransportOptions{})
	var end time.Duration
	s.After(0, func() {
		e.Fetch(&Request{Method: "GET", Path: "/", Header: make(http.Header)}, func(r FetchResult) { end = r.End })
	})
	s.Run()
	if end < time.Second {
		t.Fatalf("1Mbit header at 1Mbps finished at %v; header bytes not charged", end)
	}
}

type originFunc func(req *Request) *httpcache.Response

func (f originFunc) RoundTrip(req *Request) *httpcache.Response { return f(req) }
