package netsim

import (
	"net/http"
	"testing"
	"time"

	"cachecatalyst/internal/httpcache"
)

// bigOrigin serves a body of the given size at every path.
func bigOrigin(size int) Origin {
	return originFunc(func(req *Request) *httpcache.Response {
		return &httpcache.Response{StatusCode: 200, Header: make(http.Header), Body: make([]byte, size)}
	})
}

func fetchOnce(t *testing.T, e *Endpoint, s *Sim, path string) time.Duration {
	t.Helper()
	var end time.Duration
	s.After(0, func() {
		e.Fetch(&Request{Method: "GET", Path: path, Header: make(http.Header)}, func(r FetchResult) { end = r.End })
	})
	s.Run()
	return end
}

func TestSlowStartStallsLargeResponse(t *testing.T) {
	// 100 KB ≈ 69 segments. IW10 doubling: 10+20+40 ≥ 69 → 3 rounds →
	// 2 extra RTTs versus the no-slow-start case.
	const size = 100_000
	cond := Conditions{RTT: 100 * time.Millisecond, DownlinkBps: 0}

	sOff := NewSim()
	off := NewEndpoint(sOff, cond, bigOrigin(size), TransportOptions{})
	baseline := fetchOnce(t, off, sOff, "/x")

	sOn := NewSim()
	on := NewEndpoint(sOn, cond, bigOrigin(size), TransportOptions{SlowStart: true})
	got := fetchOnce(t, on, sOn, "/x")

	want := baseline + 2*cond.RTT
	if !approxDuration(got, want, time.Millisecond) {
		t.Fatalf("slow-start fetch = %v, want ~%v (baseline %v)", got, want, baseline)
	}
}

func TestSlowStartSmallResponseUnaffected(t *testing.T) {
	// 10 KB fits in IW10 (14.6 KB): no stall.
	cond := Conditions{RTT: 100 * time.Millisecond, DownlinkBps: 0}
	sOff := NewSim()
	baseline := fetchOnce(t, NewEndpoint(sOff, cond, bigOrigin(10_000), TransportOptions{}), sOff, "/x")
	sOn := NewSim()
	got := fetchOnce(t, NewEndpoint(sOn, cond, bigOrigin(10_000), TransportOptions{SlowStart: true}), sOn, "/x")
	if got != baseline {
		t.Fatalf("small response stalled: %v vs %v", got, baseline)
	}
}

func TestSlowStartWindowPersistsAcrossExchanges(t *testing.T) {
	// Same connection, same size twice: the second transfer rides the
	// grown window and stalls less.
	cond := Conditions{RTT: 100 * time.Millisecond, DownlinkBps: 0}
	s := NewSim()
	e := NewEndpoint(s, cond, bigOrigin(100_000), TransportOptions{SlowStart: true, MaxConns: 1})
	var first, second time.Duration
	s.After(0, func() {
		e.Fetch(&Request{Method: "GET", Path: "/a", Header: make(http.Header)}, func(r1 FetchResult) {
			first = r1.End - r1.Start
			e.Fetch(&Request{Method: "GET", Path: "/b", Header: make(http.Header)}, func(r2 FetchResult) {
				second = r2.End - r2.Start
			})
		})
	})
	s.Run()
	// First: handshake + exchange + 2 stall RTTs. Second reuses the
	// connection (no handshake) and the window now covers 69 segments
	// (grown to 80): no stall.
	if second >= first {
		t.Fatalf("second transfer (%v) not faster than first (%v)", second, first)
	}
	if want := 100 * time.Millisecond; !approxDuration(second, want, time.Millisecond) {
		t.Fatalf("warm-window transfer = %v, want ~%v", second, want)
	}
}

func TestSlowStartCustomInitialWindow(t *testing.T) {
	// IW4: 100 KB ≈ 69 segs; 4+8+16+32+64 → 5 rounds → 4 extra RTTs.
	cond := Conditions{RTT: 50 * time.Millisecond, DownlinkBps: 0}
	sOff := NewSim()
	baseline := fetchOnce(t, NewEndpoint(sOff, cond, bigOrigin(100_000), TransportOptions{}), sOff, "/x")
	sOn := NewSim()
	got := fetchOnce(t, NewEndpoint(sOn, cond, bigOrigin(100_000), TransportOptions{SlowStart: true, InitialWindow: 4}), sOn, "/x")
	if want := baseline + 4*cond.RTT; !approxDuration(got, want, time.Millisecond) {
		t.Fatalf("IW4 fetch = %v, want ~%v", got, want)
	}
}

func TestSlowStartCapsAtMaxWindow(t *testing.T) {
	// A gigantic response must not loop forever: window growth caps.
	cond := Conditions{RTT: 10 * time.Millisecond, DownlinkBps: 0}
	s := NewSim()
	e := NewEndpoint(s, cond, bigOrigin(50_000_000), TransportOptions{SlowStart: true})
	end := fetchOnce(t, e, s, "/big")
	if end <= 0 {
		t.Fatal("giant transfer did not complete")
	}
}
