package netsim

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"cachecatalyst/internal/httpcache"
)

// BenchmarkEventLoop measures raw scheduler throughput.
func BenchmarkEventLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSim()
		for j := 0; j < 1000; j++ {
			s.After(time.Duration(j)*time.Microsecond, func() {})
		}
		s.Run()
	}
}

// BenchmarkPipeSharing measures the fluid-flow recompute cost with many
// concurrent transfers.
func BenchmarkPipeSharing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSim()
		p := NewPipe(s, 60e6)
		done := 0
		for j := 0; j < 100; j++ {
			p.Start(int64(1000+j*37), func() { done++ })
		}
		s.Run()
		if done != 100 {
			b.Fatal("transfers lost")
		}
	}
}

// BenchmarkEndpointBurst measures a 50-request HTTP/1.1 burst through the
// full connection model.
func BenchmarkEndpointBurst(b *testing.B) {
	origin := originFunc(func(req *Request) *httpcache.Response {
		return &httpcache.Response{StatusCode: 200, Header: make(http.Header), Body: make([]byte, 8192)}
	})
	cond := Conditions{RTT: 40 * time.Millisecond, DownlinkBps: 60e6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSim()
		e := NewEndpoint(s, cond, origin, TransportOptions{})
		count := 0
		s.After(0, func() {
			for j := 0; j < 50; j++ {
				path := fmt.Sprintf("/r%d", j)
				e.Fetch(&Request{Method: "GET", Path: path, Header: make(http.Header)}, func(FetchResult) { count++ })
			}
		})
		s.Run()
		if count != 50 {
			b.Fatal("requests lost")
		}
	}
}
