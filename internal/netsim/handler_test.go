package netsim

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cachecatalyst/internal/leakcheck"
)

func TestHandlerFromOriginServes(t *testing.T) {
	h := HandlerFromOrigin(okOrigin{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/page", nil))
	if rec.Code != 200 || rec.Body.Len() != 64 {
		t.Fatalf("status=%d body=%d", rec.Code, rec.Body.Len())
	}
	if rec.Header().Get(etagConfigHeader) == "" {
		t.Fatal("origin headers not copied through")
	}
}

// TestHandlerFromOriginTruncationAborts: over a real connection, a
// simulated truncation is a reset mid-body — the client reads a prefix
// and then an error, never a clean EOF that would let it cache the stub.
func TestHandlerFromOriginTruncationAborts(t *testing.T) {
	leakcheck.Check(t)
	chaos := NewChaosOrigin(okOrigin{}, ChaosConfig{Seed: 1, TruncateProb: 1})
	ts := httptest.NewServer(HandlerFromOrigin(chaos))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("truncated response read to a clean EOF")
	}
	if chaos.Stats().Truncations != 1 {
		t.Fatalf("truncations = %d", chaos.Stats().Truncations)
	}
}

// TestHandlerStallAbortsOnCancel is the regression test for
// cancellation-aware stalls: a client that gives up mid-stall unblocks
// the handler immediately — the stalled round-trip must not hold its
// goroutine (or its connection slot) for the full stall, and leakcheck
// verifies nothing is left sleeping after the test.
func TestHandlerStallAbortsOnCancel(t *testing.T) {
	leakcheck.Check(t)
	const stall = time.Minute // far beyond the test's lifetime
	chaos := NewChaosOrigin(okOrigin{}, ChaosConfig{Seed: 1, StallProb: 1, StallFor: stall})
	ts := httptest.NewServer(HandlerFromOrigin(chaos))
	defer ts.Close() // hangs the test if a handler is still stalled

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/page", nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	time.Sleep(50 * time.Millisecond) // let the request reach the stall
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled request returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled client never unblocked")
	}
	// ts.Close() (deferred) waits for outstanding handlers: if the stall
	// were not cancellation-aware it would sit for the full minute. Give
	// the server a moment and bound the whole drain.
	done := make(chan struct{})
	go func() { ts.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server drain hung: the stalled handler did not abort on cancellation")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("unblocking took %v", elapsed)
	}
}
