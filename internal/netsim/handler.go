package netsim

import (
	"net/http"
	"time"
)

// HandlerFromOrigin adapts a simulator Origin to a real http.Handler, the
// inverse of server.NewHandlerOrigin. It is how the chaos matrix runs
// against real net/http serving: wrap a ChaosOrigin and every fault mode
// — 503s, truncations, stalls, brown-outs — happens on a live connection.
//
// Virtual-time faults become wall-clock behavior: a stall sleeps for
// real, but cancellation-aware — the moment the request context is
// cancelled (client gone, deadline hit, server draining) the sleep
// aborts and the handler returns without writing, instead of holding a
// connection slot for the full stall. A truncation writes the partial
// body and then aborts the connection mid-response via
// http.ErrAbortHandler, which is what a reset looks like to the client.
func HandlerFromOrigin(o Origin) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req := &Request{
			Method: r.Method,
			Path:   r.URL.RequestURI(),
			Header: r.Header,
			Ctx:    r.Context(),
		}
		if s, ok := o.(Stalling); ok {
			if d := s.StallFor(req); d > 0 && !sleepOrCancel(r, d) {
				panic(http.ErrAbortHandler)
			}
		}
		resp := o.RoundTrip(req)
		h := w.Header()
		for k, vs := range resp.Header {
			h[k] = vs
		}
		w.WriteHeader(resp.StatusCode)
		if r.Method == http.MethodHead {
			return
		}
		_, _ = w.Write(resp.Body)
		if resp.Truncated {
			// The simulator marks the body as already cut; over a real
			// connection the equivalent is a reset after the prefix.
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
	})
}

// sleepOrCancel sleeps d of wall-clock time, aborting early when the
// request's context is cancelled. Reports whether the full sleep ran.
func sleepOrCancel(r *http.Request, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.Context().Done():
		return false
	}
}
