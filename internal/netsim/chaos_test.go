package netsim

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cachecatalyst/internal/httpcache"
)

// okOrigin answers every request 200 with a body and an X-Etag-Config
// header, so every fault mode has something to chew on.
type okOrigin struct{}

func (okOrigin) RoundTrip(req *Request) *httpcache.Response {
	h := make(http.Header)
	h.Set("Content-Type", "text/html")
	h.Set(etagConfigHeader, `{"/a.css":"\"v1\""}`)
	return &httpcache.Response{StatusCode: 200, Header: h, Body: []byte(strings.Repeat("x", 64))}
}

func drive(o Origin, n int) []*httpcache.Response {
	out := make([]*httpcache.Response, n)
	for i := range out {
		out[i] = o.RoundTrip(&Request{Method: "GET", Path: "/"})
	}
	return out
}

func TestChaosSeedDeterminism(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, FailProb: 0.3, TruncateProb: 0.3, CorruptMapProb: 0.3}
	a := NewChaosOrigin(okOrigin{}, cfg)
	b := NewChaosOrigin(okOrigin{}, cfg)
	ra, rb := drive(a, 200), drive(b, 200)
	for i := range ra {
		if ra[i].StatusCode != rb[i].StatusCode || ra[i].Truncated != rb[i].Truncated ||
			ra[i].Header.Get(etagConfigHeader) != rb[i].Header.Get(etagConfigHeader) {
			t.Fatalf("request %d diverged between equal seeds", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if st := a.Stats(); st.Failures == 0 || st.Truncations == 0 || st.CorruptedMaps == 0 {
		t.Fatalf("fault modes not all exercised: %+v", st)
	}
}

func TestChaosTruncationFlagsAndCuts(t *testing.T) {
	c := NewChaosOrigin(okOrigin{}, ChaosConfig{Seed: 1, TruncateProb: 1})
	resp := c.RoundTrip(&Request{Method: "GET", Path: "/"})
	if !resp.Truncated {
		t.Fatal("response not flagged truncated")
	}
	if len(resp.Body) != 32 {
		t.Fatalf("body cut to %d bytes, want 32", len(resp.Body))
	}
	if httpcache.Storable(resp) {
		t.Fatal("truncated response considered storable")
	}
	// The inner origin's response must not have been mutated.
	clean := okOrigin{}.RoundTrip(&Request{})
	if len(clean.Body) != 64 || clean.Truncated {
		t.Fatal("truncation mutated shared state")
	}
}

func TestChaosCorruptsMapHeaderUndecodably(t *testing.T) {
	c := NewChaosOrigin(okOrigin{}, ChaosConfig{Seed: 1, CorruptMapProb: 1})
	resp := c.RoundTrip(&Request{Method: "GET", Path: "/"})
	v := resp.Header.Get(etagConfigHeader)
	orig := okOrigin{}.RoundTrip(&Request{}).Header.Get(etagConfigHeader)
	if v == orig {
		t.Fatal("map header not corrupted")
	}
	if v != orig[:len(orig)/2] {
		t.Fatalf("corruption shape changed: %q", v)
	}
}

func TestChaosFlappingCycle(t *testing.T) {
	c := NewChaosOrigin(okOrigin{}, ChaosConfig{UpFor: 3, DownFor: 2})
	var got []int
	for _, r := range drive(c, 10) {
		got = append(got, r.StatusCode)
	}
	want := []int{200, 200, 200, 503, 503, 200, 200, 200, 503, 503}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flap sequence %v, want %v", got, want)
		}
	}
	if st := c.Stats(); st.FlapFailures != 4 {
		t.Fatalf("flap failures = %d, want 4", st.FlapFailures)
	}
}

func TestChaosStallCharged(t *testing.T) {
	sim := NewSim()
	chaos := NewChaosOrigin(okOrigin{}, ChaosConfig{Seed: 1, StallProb: 1, StallFor: 300 * time.Millisecond})
	cond := Conditions{RTT: 40 * time.Millisecond}
	ep := NewEndpoint(sim, cond, chaos, TransportOptions{})
	var end time.Duration
	ep.Fetch(&Request{Method: "GET", Path: "/"}, func(fr FetchResult) { end = fr.End })
	sim.Run()
	// handshake (1 RTT) + exchange (1 RTT) + stall.
	want := 2*cond.RTT + 300*time.Millisecond
	if end != want {
		t.Fatalf("fetch completed at %v, want %v", end, want)
	}
	if chaos.Stats().Stalls != 1 {
		t.Fatalf("stalls = %d", chaos.Stats().Stalls)
	}
}

func TestChaosCleanConfigIsTransparent(t *testing.T) {
	c := NewChaosOrigin(okOrigin{}, ChaosConfig{})
	for _, r := range drive(c, 50) {
		if r.StatusCode != 200 || r.Truncated || len(r.Body) != 64 {
			t.Fatal("zero-value chaos config altered traffic")
		}
	}
	if st := c.Stats(); st.Injected() != 0 || st.Requests != 50 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestChaosOriginConcurrent drives one ChaosOrigin (and one FaultyOrigin)
// from many goroutines under -race: the counters the satellite fix made
// atomic, and the chaos lock discipline, must hold up.
func TestChaosOriginConcurrent(t *testing.T) {
	chaos := NewChaosOrigin(okOrigin{}, ChaosConfig{Seed: 3, FailProb: 0.2, TruncateProb: 0.2, CorruptMapProb: 0.2, StallProb: 0.2, StallFor: time.Millisecond})
	faulty := &FaultyOrigin{Inner: okOrigin{}, FailEvery: 3}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				chaos.StallFor(&Request{})
				chaos.RoundTrip(&Request{Method: "GET", Path: "/"})
				faulty.RoundTrip(&Request{Method: "GET", Path: "/"})
			}
		}()
	}
	wg.Wait()
	if got := chaos.Stats().Requests; got != 400 {
		t.Fatalf("chaos requests = %d, want 400", got)
	}
	if got := faulty.Failed(); got != 400/3 { // counts 3, 6, …, 399
		t.Fatalf("faulty failures = %d, want %d", got, 400/3)
	}
}
