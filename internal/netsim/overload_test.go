package netsim

import (
	"sync/atomic"
	"testing"
	"time"

	"cachecatalyst/internal/httpcache"
)

// TestChaosBrownoutWindow pins the brown-out sequencer: after every
// BrownoutEvery normally-timed requests, the next BrownoutLen each stall
// the full BrownoutStall — a sustained slowdown, not a one-off spike.
func TestChaosBrownoutWindow(t *testing.T) {
	const stall = 100 * time.Millisecond
	c := NewChaosOrigin(okOrigin{}, ChaosConfig{
		BrownoutEvery: 3, BrownoutLen: 2, BrownoutStall: stall,
	})
	want := []time.Duration{0, 0, 0, stall, stall, 0, 0, 0, stall, stall}
	for i, w := range want {
		if got := c.StallFor(&Request{}); got != w {
			t.Fatalf("stall %d = %v, want %v", i, got, w)
		}
	}
	if got := c.Stats().BrownoutStalls; got != 4 {
		t.Fatalf("brown-out stalls = %d, want 4", got)
	}
}

// TestChaosBrownoutComposesWithSpikes: a request inside the brown-out
// window that also draws the probabilistic spike pays both.
func TestChaosBrownoutComposesWithSpikes(t *testing.T) {
	c := NewChaosOrigin(okOrigin{}, ChaosConfig{
		StallProb: 1, StallFor: 30 * time.Millisecond,
		BrownoutEvery: 1, BrownoutLen: 1, BrownoutStall: 200 * time.Millisecond,
	})
	c.StallFor(&Request{}) // pos 0: outside the window
	if got := c.StallFor(&Request{}); got != 230*time.Millisecond {
		t.Fatalf("composed stall = %v, want 230ms", got)
	}
}

// TestChaosSlowReadCharged runs the slow-reader fault through the
// transport: the fetch's completion time includes the drain, modelling a
// client that sits on the connection long after the last byte arrived.
func TestChaosSlowReadCharged(t *testing.T) {
	sim := NewSim()
	const drain = 500 * time.Millisecond
	chaos := NewChaosOrigin(okOrigin{}, ChaosConfig{Seed: 1, SlowReadProb: 1, SlowReadFor: drain})
	cond := Conditions{RTT: 40 * time.Millisecond}
	ep := NewEndpoint(sim, cond, chaos, TransportOptions{})
	var end time.Duration
	ep.Fetch(&Request{Method: "GET", Path: "/"}, func(fr FetchResult) { end = fr.End })
	sim.Run()
	// handshake (1 RTT) + exchange (1 RTT) + drain.
	want := 2*cond.RTT + drain
	if end != want {
		t.Fatalf("fetch completed at %v, want %v", end, want)
	}
	if chaos.Stats().SlowReads != 1 {
		t.Fatalf("slow reads = %d", chaos.Stats().SlowReads)
	}
}

// TestChaosSlowReadHoldsConnection: with one connection and a slow
// reader on it, the next request cannot start until the drain finishes —
// connection-slot exhaustion without any request-rate increase.
func TestChaosSlowReadHoldsConnection(t *testing.T) {
	sim := NewSim()
	const drain = time.Second
	chaos := NewChaosOrigin(okOrigin{}, ChaosConfig{Seed: 1, SlowReadProb: 1, SlowReadFor: drain})
	cond := Conditions{RTT: 40 * time.Millisecond}
	ep := NewEndpoint(sim, cond, chaos, TransportOptions{MaxConns: 1})
	var first, second time.Duration
	ep.Fetch(&Request{Method: "GET", Path: "/a"}, func(fr FetchResult) { first = fr.End })
	ep.Fetch(&Request{Method: "GET", Path: "/b"}, func(fr FetchResult) { second = fr.End })
	sim.Run()
	if second < first+drain {
		t.Fatalf("second fetch finished at %v, before the first drain (%v + %v) released the connection",
			second, first, drain)
	}
}

// barrierOrigin blocks every RoundTrip until `expect` of them are in
// flight at once — proof of real concurrency, not sequential duplicates.
type barrierOrigin struct {
	expect  int32
	arrived atomic.Int32
	release chan struct{}
	peak    atomic.Int32
}

func newBarrierOrigin(expect int) *barrierOrigin {
	return &barrierOrigin{expect: int32(expect), release: make(chan struct{})}
}

func (b *barrierOrigin) RoundTrip(req *Request) *httpcache.Response {
	if n := b.arrived.Add(1); n == b.expect {
		close(b.release)
	}
	<-b.release
	return &httpcache.Response{StatusCode: 200, Body: []byte("ok")}
}

// TestChaosBurstFiresConcurrentDuplicates pins the concurrency-spike
// fault: one client request becomes BurstSize genuinely concurrent
// requests at the inner origin, and the burst leaves no goroutines
// behind (RoundTrip waits for its duplicates).
func TestChaosBurstFiresConcurrentDuplicates(t *testing.T) {
	inner := newBarrierOrigin(4)
	c := NewChaosOrigin(inner, ChaosConfig{BurstEvery: 1, BurstSize: 4})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.RoundTrip(&Request{Method: "GET", Path: "/"})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("burst duplicates never overlapped: the barrier starved")
	}
	st := c.Stats()
	if st.Bursts != 1 || st.BurstRequests != 3 {
		t.Fatalf("bursts=%d burstRequests=%d, want 1/3", st.Bursts, st.BurstRequests)
	}
	if st.Requests != 1 {
		t.Fatalf("client-visible requests = %d, want 1 (duplicates are internal)", st.Requests)
	}
	if got := inner.arrived.Load(); got != 4 {
		t.Fatalf("inner origin saw %d requests, want 4", got)
	}
}

// TestChaosBurstCadence: bursts fire on the configured cadence, not
// every request.
func TestChaosBurstCadence(t *testing.T) {
	inner := okOrigin{}
	c := NewChaosOrigin(inner, ChaosConfig{BurstEvery: 3, BurstSize: 2})
	drive(c, 9) // positions 0..8: bursts at 0, 3, 6
	st := c.Stats()
	if st.Bursts != 3 || st.BurstRequests != 3 {
		t.Fatalf("bursts=%d burstRequests=%d, want 3/3", st.Bursts, st.BurstRequests)
	}
}

// TestChaosOverloadDeterminism: the new fault modes replay identically
// under equal seeds, like every other cell of the matrix.
func TestChaosOverloadDeterminism(t *testing.T) {
	cfg := ChaosConfig{
		Seed: 11, SlowReadProb: 0.4, SlowReadFor: 10 * time.Millisecond,
		BrownoutEvery: 5, BrownoutLen: 3, BrownoutStall: 20 * time.Millisecond,
	}
	a, b := NewChaosOrigin(okOrigin{}, cfg), NewChaosOrigin(okOrigin{}, cfg)
	for i := 0; i < 100; i++ {
		req := &Request{Method: "GET", Path: "/"}
		if a.StallFor(req) != b.StallFor(req) {
			t.Fatalf("stall draw %d diverged", i)
		}
		ra, rb := a.RoundTrip(req), b.RoundTrip(req)
		if a.DrainFor(req, ra) != b.DrainFor(req, rb) {
			t.Fatalf("drain draw %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if st := a.Stats(); st.SlowReads == 0 || st.BrownoutStalls == 0 {
		t.Fatalf("overload modes not exercised: %+v", st)
	}
}
