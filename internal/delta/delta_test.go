package delta

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// htmlish builds a pseudo-HTML document from a seeded rng, reusing a
// small vocabulary so that related documents share long runs.
func htmlish(rng *rand.Rand, paras int) []byte {
	words := []string{
		"<p>", "</p>", "<div class=\"content\">", "</div>",
		"lorem", "ipsum", "dolor", "sit", "amet", "consectetur",
		"<a href=\"/page\">", "</a>", "<img src=\"/img/a.png\">",
	}
	var b strings.Builder
	b.WriteString("<!doctype html><html><head><title>t</title></head><body>")
	for i := 0; i < paras; i++ {
		for j := 0; j < 8; j++ {
			b.WriteString(words[rng.Intn(len(words))])
			b.WriteByte(' ')
		}
	}
	b.WriteString("</body></html>")
	return []byte(b.String())
}

// mutate applies a few random edits (insert/delete/replace spans) to
// doc, simulating dynamic-HTML churn between visits.
func mutate(rng *rand.Rand, doc []byte) []byte {
	out := append([]byte(nil), doc...)
	edits := 1 + rng.Intn(4)
	for i := 0; i < edits; i++ {
		if len(out) == 0 {
			out = append(out, htmlish(rng, 1)...)
			continue
		}
		pos := rng.Intn(len(out))
		switch rng.Intn(3) {
		case 0: // insert
			ins := htmlish(rng, 1+rng.Intn(2))
			out = append(out[:pos], append(ins, out[pos:]...)...)
		case 1: // delete
			end := pos + rng.Intn(len(out)-pos)
			out = append(out[:pos], out[end:]...)
		default: // replace
			end := pos + rng.Intn(len(out)-pos)
			rep := htmlish(rng, 1)
			out = append(out[:pos], append(rep, out[end:]...)...)
		}
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	cases := []struct{ name, base, target string }{
		{"identical", "<html>hello</html>", "<html>hello</html>"},
		{"empty-both", "", ""},
		{"empty-base", "", "<html>new</html>"},
		{"empty-target", "<html>old</html>", ""},
		{"disjoint", "aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb"},
		{"prefix-shared", strings.Repeat("<p>x</p>", 50), strings.Repeat("<p>x</p>", 50) + "<p>new</p>"},
		{"middle-edit", strings.Repeat("a", 200) + "OLD" + strings.Repeat("b", 200),
			strings.Repeat("a", 200) + "NEWER" + strings.Repeat("b", 200)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			patch := Diff([]byte(tc.base), []byte(tc.target))
			got, err := Apply([]byte(tc.base), patch)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if !bytes.Equal(got, []byte(tc.target)) {
				t.Fatalf("round trip mismatch: got %q want %q", got, tc.target)
			}
		})
	}
}

// TestRoundTripProperty is the quick-check style property test from the
// issue: for arbitrary base/target HTML pairs, Apply(base, Diff(base,
// target)) == target.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		base := htmlish(rng, rng.Intn(20))
		var target []byte
		switch i % 3 {
		case 0:
			target = mutate(rng, base) // related documents
		case 1:
			target = htmlish(rng, rng.Intn(20)) // unrelated
		default:
			target = append([]byte(nil), base...) // identical
		}
		patch := Diff(base, target)
		got, err := Apply(base, patch)
		if err != nil {
			t.Fatalf("iter %d: Apply: %v", i, err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("iter %d: round trip mismatch (base %d, target %d bytes)", i, len(base), len(target))
		}
	}
}

func TestDiffCompressesSimilarDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := htmlish(rng, 60)
	target := mutate(rng, base)
	patch := Diff(base, target)
	if len(patch) >= len(target) {
		t.Fatalf("patch (%d bytes) not smaller than target (%d bytes) for similar docs", len(patch), len(target))
	}
}

// TestApplyRejectsTruncation cuts a valid patch at every length and
// requires Apply to fail on each proper prefix — the same failure mode
// ChaosOrigin's mid-body truncation fault produces.
func TestApplyRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := htmlish(rng, 30)
	target := mutate(rng, base)
	patch := Diff(base, target)
	for cut := 0; cut < len(patch); cut++ {
		if _, err := Apply(base, patch[:cut]); err == nil {
			t.Fatalf("Apply accepted a %d/%d-byte prefix", cut, len(patch))
		}
	}
}

// TestApplyRejectsCorruption flips one byte at every position; the CRC32
// framing must catch all single-byte corruptions.
func TestApplyRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := htmlish(rng, 20)
	target := mutate(rng, base)
	patch := Diff(base, target)
	for pos := 0; pos < len(patch); pos++ {
		bad := append([]byte(nil), patch...)
		bad[pos] ^= 0x5a
		got, err := Apply(base, bad)
		if err == nil && !bytes.Equal(got, target) {
			t.Fatalf("corruption at byte %d produced garbage without error", pos)
		}
	}
}

func TestApplyRejectsWrongBase(t *testing.T) {
	base := []byte(strings.Repeat("<p>base</p>", 20))
	target := []byte(strings.Repeat("<p>base</p>", 19) + "<p>edit</p>")
	patch := Diff(base, target)

	if _, err := Apply([]byte("something else entirely"), patch); err == nil {
		t.Fatal("Apply accepted a patch against the wrong base (length mismatch)")
	}
	// Same length, different content: caught by the base checksum.
	wrong := append([]byte(nil), base...)
	wrong[0] ^= 0xff
	if _, err := Apply(wrong, patch); err == nil {
		t.Fatal("Apply accepted a patch against a same-length wrong base")
	}
}

func TestApplyRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{nil, {}, []byte("x"), []byte("CCD"), []byte("CCD2aaaaaaaaaaaa"), []byte("CCD1")} {
		if _, err := Apply([]byte("base"), in); err == nil {
			t.Fatalf("Apply accepted garbage %q", in)
		}
	}
}
