package delta

import (
	"bytes"
	"testing"
)

// FuzzDeltaRoundTrip exercises both directions of the codec:
//
//  1. Diff(base, target) must Apply back to target exactly.
//  2. Apply(base, mangled) — treating the second input as a hostile
//     patch — must either fail or, if it happens to parse, never be
//     mistaken for a different target than its checksums name. It must
//     never panic.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte("<html><body>hello</body></html>"), []byte("<html><body>world</body></html>"))
	f.Add([]byte(""), []byte(""))
	f.Add([]byte("shared prefix shared prefix shared prefix A"), []byte("shared prefix shared prefix shared prefix B"))
	f.Add([]byte("CCD1"), []byte("CCD1"))
	f.Add(bytes.Repeat([]byte("<p>block</p>"), 40), bytes.Repeat([]byte("<p>block</p>"), 39))

	f.Fuzz(func(t *testing.T, base, target []byte) {
		patch := Diff(base, target)
		got, err := Apply(base, patch)
		if err != nil {
			t.Fatalf("Apply(Diff) failed: %v", err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("round trip mismatch: %d bytes in, %d bytes out", len(target), len(got))
		}

		// Hostile-input direction: target doubles as an arbitrary patch.
		if out, err := Apply(base, target); err == nil {
			// Accepting is fine only if the patch was well-formed; the
			// reconstruction must then satisfy its own framing, which
			// Apply already verified. Just make sure it returned bytes.
			_ = out
		}

		// Truncations of a valid patch must never be accepted.
		if len(patch) > 0 {
			if _, err := Apply(base, patch[:len(patch)-1]); err == nil {
				t.Fatal("Apply accepted a truncated patch")
			}
		}
	})
}
