// Package delta implements the wire format used by the catalyst-delta
// scheme: instead of retransmitting a whole dynamic HTML document, the
// server sends a patch computed against the base version the client
// already holds (named by the client's validator), and the browser
// reconstructs the current document from its cached copy.
//
// The format ("CCD1") is deliberately small and strict:
//
//	magic   4 bytes  "CCD1"
//	baseLen uvarint  length of the base the patch applies to
//	tgtLen  uvarint  length of the reconstructed target
//	baseSum 4 bytes  crc32(IEEE) of the base, big-endian
//	tgtSum  4 bytes  crc32(IEEE) of the target, big-endian
//	ops     ...      opcode stream until end of patch
//
// Opcodes:
//
//	0x00 COPY   uvarint offset, uvarint length  — copy from base
//	0x01 INSERT uvarint length, <length> bytes  — literal insert
//
// Apply validates everything it can: magic, base length and checksum,
// opcode bounds, and finally the exact target length and checksum. A
// truncated or corrupted patch is rejected with an error rather than
// producing garbage — the caller falls back to a full fetch.
package delta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Wire headers used by the catalyst-delta scheme.
const (
	// RequestHeader names the base version (an ETag) the client holds
	// and can patch against.
	RequestHeader = "X-Delta-Base"
	// FromHeader is set on responses whose body is a patch; its value
	// is the base ETag the patch applies to.
	FromHeader = "X-Delta-From"
)

const (
	magic = "CCD1"

	opCopy   = 0x00
	opInsert = 0x01

	// blockSize is the granularity of base-block matching in Diff.
	// Smaller blocks find more matches but emit more opcodes.
	blockSize = 32

	// minCopy is the shortest match worth encoding as a COPY; a COPY
	// costs ~1+2×uvarint bytes, so tiny matches are cheaper as literals.
	minCopy = 12
)

var (
	// ErrCorrupt is wrapped by every Apply failure.
	ErrCorrupt = errors.New("delta: corrupt patch")
)

// Diff computes a CCD1 patch transforming base into target. It always
// succeeds; when the inputs share nothing the patch degenerates to one
// INSERT of the whole target (slightly larger than the target itself —
// callers should compare sizes before choosing to send a patch).
func Diff(base, target []byte) []byte {
	var out []byte
	out = append(out, magic...)
	out = binary.AppendUvarint(out, uint64(len(base)))
	out = binary.AppendUvarint(out, uint64(len(target)))
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(base))
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(target))

	// Index aligned base blocks by content hash. Last writer wins,
	// which biases matches toward later occurrences; correctness does
	// not depend on which occurrence we pick.
	type blockRef struct{ off int }
	index := make(map[uint32]blockRef, len(base)/blockSize+1)
	for off := 0; off+blockSize <= len(base); off += blockSize {
		index[crc32.ChecksumIEEE(base[off:off+blockSize])] = blockRef{off}
	}

	var lit []byte // pending literal run
	flushLit := func() {
		if len(lit) == 0 {
			return
		}
		out = append(out, opInsert)
		out = binary.AppendUvarint(out, uint64(len(lit)))
		out = append(out, lit...)
		lit = lit[:0]
	}

	i := 0
	for i < len(target) {
		if i+blockSize <= len(target) {
			if ref, ok := index[crc32.ChecksumIEEE(target[i:i+blockSize])]; ok &&
				string(base[ref.off:ref.off+blockSize]) == string(target[i:i+blockSize]) {
				// Extend the match backward into the pending literal...
				start, boff := i, ref.off
				for len(lit) > 0 && boff > 0 && lit[len(lit)-1] == base[boff-1] {
					lit = lit[:len(lit)-1]
					start--
					boff--
				}
				// ...and forward past the block.
				end, bend := i+blockSize, ref.off+blockSize
				for end < len(target) && bend < len(base) && target[end] == base[bend] {
					end++
					bend++
				}
				if end-start >= minCopy {
					flushLit()
					out = append(out, opCopy)
					out = binary.AppendUvarint(out, uint64(boff))
					out = binary.AppendUvarint(out, uint64(end-start))
					i = end
					continue
				}
				// Too short to pay for a COPY: restore the literal run.
				lit = append(lit, target[start:i]...)
			}
		}
		lit = append(lit, target[i])
		i++
	}
	flushLit()
	return out
}

// Apply reconstructs the target from base and a CCD1 patch. Any
// structural damage — wrong magic, wrong base, truncated opcode
// stream, out-of-bounds copy, or a reconstruction whose length or
// checksum disagrees with the header — returns an error wrapping
// ErrCorrupt.
func Apply(base, patch []byte) ([]byte, error) {
	fail := func(format string, args ...any) ([]byte, error) {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if len(patch) < len(magic) || string(patch[:len(magic)]) != magic {
		return fail("bad magic")
	}
	p := patch[len(magic):]

	baseLen, n := binary.Uvarint(p)
	if n <= 0 {
		return fail("bad base length")
	}
	p = p[n:]
	tgtLen, n := binary.Uvarint(p)
	if n <= 0 {
		return fail("bad target length")
	}
	p = p[n:]
	if len(p) < 8 {
		return fail("truncated checksums")
	}
	baseSum := binary.BigEndian.Uint32(p[:4])
	tgtSum := binary.BigEndian.Uint32(p[4:8])
	p = p[8:]

	if uint64(len(base)) != baseLen {
		return fail("base length mismatch: have %d want %d", len(base), baseLen)
	}
	if crc32.ChecksumIEEE(base) != baseSum {
		return fail("base checksum mismatch")
	}
	// COPY ops may repeat base content, so tgtLen can legitimately
	// exceed len(base)+len(patch); only cap the allocation hint so a
	// hostile header cannot force a huge upfront allocation. The per-op
	// overrun check below bounds actual growth.
	capHint := tgtLen
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]byte, 0, capHint)
	for len(p) > 0 {
		op := p[0]
		p = p[1:]
		switch op {
		case opCopy:
			off, n := binary.Uvarint(p)
			if n <= 0 {
				return fail("truncated copy offset")
			}
			p = p[n:]
			length, n := binary.Uvarint(p)
			if n <= 0 {
				return fail("truncated copy length")
			}
			p = p[n:]
			end := off + length
			if end < off || end > uint64(len(base)) {
				return fail("copy out of bounds: [%d,%d) of %d", off, end, len(base))
			}
			out = append(out, base[off:end]...)
		case opInsert:
			length, n := binary.Uvarint(p)
			if n <= 0 {
				return fail("truncated insert length")
			}
			p = p[n:]
			if uint64(len(p)) < length {
				return fail("truncated insert literal: have %d want %d", len(p), length)
			}
			out = append(out, p[:length]...)
			p = p[length:]
		default:
			return fail("unknown opcode %#x", op)
		}
		if uint64(len(out)) > tgtLen {
			return fail("reconstruction overruns target length")
		}
	}
	if uint64(len(out)) != tgtLen {
		return fail("reconstructed length %d, want %d", len(out), tgtLen)
	}
	if crc32.ChecksumIEEE(out) != tgtSum {
		return fail("target checksum mismatch")
	}
	return out, nil
}
