package resilience

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"time"

	"cachecatalyst/internal/telemetry"
)

// ServeOptions configures a graceful Serve run.
type ServeOptions struct {
	// ShutdownTimeout is how long in-flight requests get to finish once
	// the drain begins; stragglers past it are force-closed. Zero
	// selects 10 seconds.
	ShutdownTimeout time.Duration
	// Telemetry, when set together with SnapshotTo, is flushed as one
	// JSON snapshot after the listener closes — the final flight-recorder
	// read of a process that is about to exit.
	Telemetry  *telemetry.Registry
	SnapshotTo io.Writer
	// Logf reports lifecycle transitions (drain started, drain result);
	// nil disables logging.
	Logf func(format string, args ...any)
	// OnDrain runs after the listener stops accepting but before the
	// final snapshot is taken — the hook for stopping health checkers
	// and other background loops so the process exits leak-free.
	OnDrain func()
}

func (o ServeOptions) shutdownTimeout() time.Duration {
	if o.ShutdownTimeout <= 0 {
		return 10 * time.Second
	}
	return o.ShutdownTimeout
}

func (o ServeOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Serve runs srv on ln until ctx is cancelled — the caller wires SIGTERM
// to ctx via signal.NotifyContext — then drains gracefully: the listener
// stops accepting, in-flight requests get ShutdownTimeout to finish, and
// whatever remains is force-closed. A configured telemetry registry is
// flushed as JSON before returning, so the run's counters survive the
// process.
//
// The return is nil after a clean drain (including a drain that followed
// a cancelled ctx), the shutdown error when in-flight work outlived the
// timeout, or the serve error when the server failed on its own.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, opts ServeOptions) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	var err error
	select {
	case err = <-errCh:
		// The server failed before any shutdown was requested.
	case <-ctx.Done():
		opts.logf("catalystd: draining (in-flight budget %v)", opts.shutdownTimeout())
		shCtx, cancel := context.WithTimeout(context.Background(), opts.shutdownTimeout())
		err = srv.Shutdown(shCtx)
		cancel()
		if err != nil {
			// The timeout elapsed with requests still in flight: cut them
			// off rather than hang the exit.
			srv.Close()
			opts.logf("catalystd: drain incomplete, connections force-closed: %v", err)
		} else {
			opts.logf("catalystd: drain complete")
		}
		<-errCh // the Serve goroutine has returned ErrServerClosed
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	if opts.OnDrain != nil {
		opts.OnDrain()
	}
	flushSnapshot(opts)
	return err
}

// flushSnapshot writes the registry's final state as one JSON object.
func flushSnapshot(opts ServeOptions) {
	if opts.Telemetry == nil || opts.SnapshotTo == nil {
		return
	}
	enc := json.NewEncoder(opts.SnapshotTo)
	enc.SetIndent("", "  ")
	if err := enc.Encode(opts.Telemetry.Snapshot()); err != nil {
		opts.logf("catalystd: telemetry snapshot flush failed: %v", err)
	}
}
