// Package resilience is the overload-protection toolkit the serving layers
// share: per-request deadline budgets carried on context, a bounded
// admission gate with a short timed queue, origin circuit breakers with
// active health checks, and graceful server drain.
//
// The paper's latency win only matters while the edge tier stays up; this
// package supplies the policies that make saturation degrade service
// instead of breaking it. The consumers are catalyst.Middleware (the
// degradation ladder), internal/server (map-resolve shedding) and
// cmd/catalystd (lifecycle). Everything here is dependency-free beyond
// internal/telemetry, so any layer can adopt it without import cycles.
package resilience

import (
	"context"
	"time"
)

// budgetKey carries the *Budget on a context.
type budgetKey struct{}

// Budget is a per-request latency allowance. The entry point assigns one;
// every downstream stage shares the same clock, so whatever one stage
// spends is gone for the rest — probes, renders and origin round-trips
// inherit the remainder through the context deadline and abandon work when
// it is spent.
type Budget struct {
	start    time.Time
	total    time.Duration
	deadline time.Time
}

// WithBudget returns a context carrying — and enforcing, via a real
// context deadline — a latency budget of total, plus the cancel func that
// releases its timer. A context that already has an earlier deadline keeps
// it (the stricter bound wins); the budget is still recorded for
// accounting. total <= 0 returns ctx unchanged with a no-op cancel.
func WithBudget(ctx context.Context, total time.Duration) (context.Context, context.CancelFunc) {
	if total <= 0 {
		return ctx, func() {}
	}
	now := time.Now()
	b := &Budget{start: now, total: total, deadline: now.Add(total)}
	ctx = context.WithValue(ctx, budgetKey{}, b)
	if existing, ok := ctx.Deadline(); ok && existing.Before(b.deadline) {
		return context.WithCancel(ctx)
	}
	return context.WithDeadline(ctx, b.deadline)
}

// BudgetFrom returns the budget the context carries, if any.
func BudgetFrom(ctx context.Context) (*Budget, bool) {
	b, ok := ctx.Value(budgetKey{}).(*Budget)
	return b, ok
}

// Total returns the allowance the budget started with.
func (b *Budget) Total() time.Duration { return b.total }

// Spent returns how much of the budget has elapsed so far.
func (b *Budget) Spent() time.Duration { return time.Since(b.start) }

// Remaining returns how much budget is left; zero once spent.
func (b *Budget) Remaining() time.Duration {
	if r := time.Until(b.deadline); r > 0 {
		return r
	}
	return 0
}

// Exhausted reports whether the budget is spent.
func (b *Budget) Exhausted() bool { return b.Remaining() == 0 }

// Remaining returns the time left on the context's budget. Contexts
// without a budget but with a deadline report time until that deadline;
// contexts with neither report ok == false.
func Remaining(ctx context.Context) (time.Duration, bool) {
	if b, ok := BudgetFrom(ctx); ok {
		return b.Remaining(), true
	}
	if d, ok := ctx.Deadline(); ok {
		r := time.Until(d)
		if r < 0 {
			r = 0
		}
		return r, true
	}
	return 0, false
}

// StageContext bounds one stage of work to at most max, never exceeding
// what remains of the context's budget or deadline — the child a stage
// hands to a probe fan-out or an origin round-trip so a slow stage cannot
// overdraw the request's allowance.
func StageContext(ctx context.Context, max time.Duration) (context.Context, context.CancelFunc) {
	if max <= 0 {
		return context.WithCancel(ctx)
	}
	if rem, ok := Remaining(ctx); ok && rem < max {
		max = rem
	}
	return context.WithTimeout(ctx, max)
}
