package resilience

import (
	"context"
	"testing"
	"time"
)

func TestWithBudgetEnforcesDeadline(t *testing.T) {
	ctx, cancel := WithBudget(context.Background(), 30*time.Millisecond)
	defer cancel()

	b, ok := BudgetFrom(ctx)
	if !ok {
		t.Fatal("no budget on context")
	}
	if b.Total() != 30*time.Millisecond {
		t.Fatalf("total = %v", b.Total())
	}
	if b.Exhausted() {
		t.Fatal("budget exhausted at birth")
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		t.Fatal("budget did not set a context deadline")
	}

	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("budget deadline never fired")
	}
	if !b.Exhausted() || b.Remaining() != 0 {
		t.Fatalf("after expiry: exhausted=%v remaining=%v", b.Exhausted(), b.Remaining())
	}
	if b.Spent() < 30*time.Millisecond {
		t.Fatalf("spent = %v, want >= total", b.Spent())
	}
}

func TestWithBudgetZeroIsNoOp(t *testing.T) {
	parent := context.Background()
	ctx, cancel := WithBudget(parent, 0)
	defer cancel()
	if ctx != parent {
		t.Fatal("zero budget changed the context")
	}
	if _, ok := BudgetFrom(ctx); ok {
		t.Fatal("zero budget recorded a budget")
	}
}

func TestWithBudgetKeepsEarlierDeadline(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ctx, cancel2 := WithBudget(parent, time.Hour)
	defer cancel2()

	d, ok := ctx.Deadline()
	if !ok {
		t.Fatal("no deadline")
	}
	if time.Until(d) > time.Second {
		t.Fatalf("budget overrode the earlier deadline: %v away", time.Until(d))
	}
	if _, ok := BudgetFrom(ctx); !ok {
		t.Fatal("budget not recorded for accounting")
	}
}

func TestRemainingFallsBackToDeadline(t *testing.T) {
	if _, ok := Remaining(context.Background()); ok {
		t.Fatal("bare context reported a budget")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rem, ok := Remaining(ctx)
	if !ok || rem <= 0 || rem > time.Minute {
		t.Fatalf("remaining = %v, %v", rem, ok)
	}
}

func TestStageContextNeverExceedsBudget(t *testing.T) {
	ctx, cancel := WithBudget(context.Background(), 20*time.Millisecond)
	defer cancel()
	stage, scancel := StageContext(ctx, time.Hour)
	defer scancel()
	d, ok := stage.Deadline()
	if !ok {
		t.Fatal("stage has no deadline")
	}
	if time.Until(d) > 25*time.Millisecond {
		t.Fatalf("stage deadline %v away exceeds budget", time.Until(d))
	}
}

func TestStageContextTighterThanBudget(t *testing.T) {
	ctx, cancel := WithBudget(context.Background(), time.Hour)
	defer cancel()
	stage, scancel := StageContext(ctx, 10*time.Millisecond)
	defer scancel()
	d, _ := stage.Deadline()
	if time.Until(d) > 15*time.Millisecond {
		t.Fatalf("stage deadline %v away, want ~10ms", time.Until(d))
	}
}
