package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"cachecatalyst/internal/telemetry"
)

// Gate admission errors. Callers route each to a different degradation
// rung: a timed-out wait means the server is busy but draining (degraded
// service is worth attempting), a full queue means it is saturated (only
// pre-computed answers or a refusal are affordable).
var (
	// ErrQueueTimeout reports that the request waited its full queue
	// allowance (or its context expired while waiting) without a slot
	// freeing up.
	ErrQueueTimeout = errors.New("resilience: admission queue wait timed out")
	// ErrQueueFull reports that the request was refused instantly because
	// the wait queue itself was at capacity.
	ErrQueueFull = errors.New("resilience: admission queue full")
)

// GateOptions configures a Gate.
type GateOptions struct {
	// MaxInflight bounds how many acquisitions may be outstanding at
	// once. Zero selects 256.
	MaxInflight int
	// MaxQueue bounds how many requests may wait for a slot; arrivals
	// beyond it are refused immediately with ErrQueueFull. Zero selects
	// MaxInflight; negative disables queueing entirely (every acquisition
	// either gets a free slot or ErrQueueFull).
	MaxQueue int
	// QueueTimeout is how long a queued request waits for a slot before
	// giving up with ErrQueueTimeout. Zero selects 50 ms — long enough to
	// absorb a scheduling hiccup, short enough that a shed request still
	// has latency budget left for the degraded response.
	QueueTimeout time.Duration
	// Telemetry, when set, indexes the gate's counters and gauges under
	// Name (e.g. "<name>.admitted"). Name must be non-empty when
	// Telemetry is set.
	Telemetry *telemetry.Registry
	Name      string
}

// Gate is a bounded-concurrency admission controller with a short timed
// queue: the front door of the overload story. Under normal load every
// Acquire returns a slot immediately; under saturation requests queue
// briefly, and past that they are refused fast — the caller degrades
// instead of stacking goroutines until memory or latency collapses.
type Gate struct {
	slots    chan struct{}
	maxQueue int
	timeout  time.Duration

	queued   atomic.Int64
	inflight telemetry.Gauge
	depth    telemetry.Gauge

	// Admitted counts successful acquisitions; ShedTimeout and ShedFull
	// count refusals by kind. Exported-by-accessor only; the registry
	// indexes the same storage.
	admitted    telemetry.Counter
	shedTimeout telemetry.Counter
	shedFull    telemetry.Counter
}

// NewGate returns a gate enforcing opts.
func NewGate(opts GateOptions) *Gate {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 256
	}
	if opts.MaxQueue == 0 {
		opts.MaxQueue = opts.MaxInflight
	}
	if opts.MaxQueue < 0 {
		opts.MaxQueue = 0
	}
	if opts.QueueTimeout <= 0 {
		opts.QueueTimeout = 50 * time.Millisecond
	}
	g := &Gate{
		slots:    make(chan struct{}, opts.MaxInflight),
		maxQueue: opts.MaxQueue,
		timeout:  opts.QueueTimeout,
	}
	if opts.Telemetry != nil && opts.Name != "" {
		reg, n := opts.Telemetry, opts.Name
		reg.RegisterCounter(n+".admitted", &g.admitted)
		reg.RegisterCounter(n+".shed_timeout", &g.shedTimeout)
		reg.RegisterCounter(n+".shed_full", &g.shedFull)
		reg.RegisterGauge(n+".inflight", &g.inflight)
		reg.RegisterGauge(n+".queued", &g.depth)
	}
	return g
}

// Acquire claims a concurrency slot, waiting in the timed queue when none
// is free. On success it returns a release func (idempotent — calling it
// twice frees one slot); on refusal it returns ErrQueueTimeout or
// ErrQueueFull. A context already cancelled or expiring mid-wait sheds
// with ErrQueueTimeout: the caller's budget is gone either way.
//
// Hot paths that pair each success with exactly one Release should use
// AcquireSlot instead: the idempotence guard here costs two allocations
// per admission.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if err := g.AcquireSlot(ctx); err != nil {
		return nil, err
	}
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			g.Release()
		}
	}, nil
}

// AcquireSlot is Acquire without the release closure: the caller owns the
// slot on nil return and must free it with exactly one Release. This is
// the allocation-free form for per-request hot paths.
func (g *Gate) AcquireSlot(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		g.inflight.Add(1)
		return nil
	default:
	}
	if int(g.queued.Add(1)) > g.maxQueue {
		g.queued.Add(-1)
		g.shedFull.Add(1)
		return ErrQueueFull
	}
	g.depth.Set(g.queued.Load())
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	defer func() {
		g.depth.Set(g.queued.Add(-1))
	}()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		g.inflight.Add(1)
		return nil
	case <-timer.C:
		g.shedTimeout.Add(1)
		return ErrQueueTimeout
	case <-ctx.Done():
		g.shedTimeout.Add(1)
		return ErrQueueTimeout
	}
}

// Release frees one slot claimed by a successful AcquireSlot (or by the
// release func Acquire returned, which guards its own idempotence).
func (g *Gate) Release() {
	<-g.slots
	g.inflight.Add(-1)
}

// Inflight returns the number of currently held slots.
func (g *Gate) Inflight() int { return len(g.slots) }

// Shed returns the total number of refused acquisitions.
func (g *Gate) Shed() int64 { return g.shedTimeout.Load() + g.shedFull.Load() }

// Admitted returns the total number of successful acquisitions.
func (g *Gate) Admitted() int64 { return g.admitted.Load() }
