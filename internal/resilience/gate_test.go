package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cachecatalyst/internal/leakcheck"
	"cachecatalyst/internal/telemetry"
)

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := NewGate(GateOptions{MaxInflight: 2, MaxQueue: -1})
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g.Inflight() != 2 {
		t.Fatalf("inflight = %d", g.Inflight())
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: %v, want ErrQueueFull", err)
	}
	r1()
	r1() // idempotent: must not free a second slot
	if g.Inflight() != 1 {
		t.Fatalf("inflight after release = %d", g.Inflight())
	}
	r3, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r2()
	r3()
	if g.Admitted() != 3 || g.Shed() != 1 {
		t.Fatalf("admitted=%d shed=%d", g.Admitted(), g.Shed())
	}
}

func TestGateQueueTimesOut(t *testing.T) {
	g := NewGate(GateOptions{MaxInflight: 1, MaxQueue: 4, QueueTimeout: 5 * time.Millisecond})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued acquire: %v, want ErrQueueTimeout", err)
	}
	if waited := time.Since(start); waited < 5*time.Millisecond || waited > time.Second {
		t.Fatalf("waited %v, want ~5ms", waited)
	}
	release()
}

func TestGateQueueDrainsToWaiter(t *testing.T) {
	leakcheck.Check(t)
	g := NewGate(GateOptions{MaxInflight: 1, MaxQueue: 4, QueueTimeout: 2 * time.Second})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter queue
	release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued waiter never got the freed slot")
	}
}

func TestGateCancelledContextSheds(t *testing.T) {
	g := NewGate(GateOptions{MaxInflight: 1, MaxQueue: 4, QueueTimeout: time.Minute})
	release, _ := g.Acquire(context.Background())
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := g.Acquire(ctx); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("cancelled acquire: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled waiter did not unblock promptly")
	}
}

func TestGateTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := NewGate(GateOptions{MaxInflight: 1, MaxQueue: -1, Telemetry: reg, Name: "test.gate"})
	release, _ := g.Acquire(context.Background())
	g.Acquire(context.Background()) // shed: queue disabled
	release()
	snap := reg.Snapshot()
	if snap.Counters["test.gate.admitted"] != 1 || snap.Counters["test.gate.shed_full"] != 1 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	if snap.Gauges["test.gate.inflight"] != 0 {
		t.Fatalf("inflight gauge: %+v", snap.Gauges)
	}
}

func TestGateConcurrentStress(t *testing.T) {
	leakcheck.Check(t)
	g := NewGate(GateOptions{MaxInflight: 4, MaxQueue: 8, QueueTimeout: time.Millisecond})
	var wg sync.WaitGroup
	var served, shed telemetry.Counter
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(context.Background())
			if err != nil {
				shed.Add(1)
				return
			}
			time.Sleep(100 * time.Microsecond)
			release()
			served.Add(1)
		}()
	}
	wg.Wait()
	if g.Inflight() != 0 {
		t.Fatalf("slots leaked: %d", g.Inflight())
	}
	if served.Load()+shed.Load() != 64 {
		t.Fatalf("served %d + shed %d != 64", served.Load(), shed.Load())
	}
	if served.Load() != g.Admitted() || shed.Load() != g.Shed() {
		t.Fatalf("accounting mismatch: served=%d admitted=%d shed=%d gateShed=%d",
			served.Load(), g.Admitted(), shed.Load(), g.Shed())
	}
}
