package resilience

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"cachecatalyst/internal/leakcheck"
	"cachecatalyst/internal/telemetry"
)

// startServe runs Serve on a fresh loopback listener and returns the base
// URL, the cancel that triggers the drain, and the channel Serve's result
// lands on.
func startServe(t *testing.T, handler http.Handler, opts ServeOptions) (base string, shutdown context.CancelFunc, result chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &http.Server{Handler: handler}
	result = make(chan error, 1)
	go func() { result <- Serve(ctx, srv, ln, opts) }()
	return "http://" + ln.Addr().String(), cancel, result
}

// TestServeDrainsInflightOnShutdown is the kill-under-drain chaos cell: a
// SIGTERM (modelled as ctx cancellation) arriving while a request is in
// flight must let that request finish, refuse the listener to new work,
// flush the telemetry snapshot, and leave no goroutines behind.
func TestServeDrainsInflightOnShutdown(t *testing.T) {
	leakcheck.Check(t)
	reg := telemetry.NewRegistry()
	served := reg.Counter("test.served")
	inHandler := make(chan struct{})
	release := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		served.Add(1)
		fmt.Fprint(w, "drained fine")
	})
	var snapshot bytes.Buffer
	drained := make(chan struct{})
	base, shutdown, result := startServe(t, handler, ServeOptions{
		ShutdownTimeout: 5 * time.Second,
		Telemetry:       reg,
		SnapshotTo:      &snapshot,
		OnDrain:         func() { close(drained) },
	})

	got := make(chan string, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- fmt.Sprintf("%d %s", resp.StatusCode, b)
	}()

	<-inHandler // the request is in flight
	shutdown()  // SIGTERM lands mid-request
	time.Sleep(20 * time.Millisecond)
	close(release) // the in-flight handler finishes inside the timeout

	if body := <-got; body != "200 drained fine" {
		t.Fatalf("in-flight request during drain: %q", body)
	}
	if err := <-result; err != nil {
		t.Fatalf("Serve after clean drain: %v", err)
	}
	select {
	case <-drained:
	default:
		t.Fatal("OnDrain hook never ran")
	}

	// The flushed snapshot is real JSON holding the run's counters.
	var snap telemetry.Snapshot
	if err := json.Unmarshal(snapshot.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v\n%s", err, snapshot.Bytes())
	}
	if snap.Counters["test.served"] != 1 {
		t.Fatalf("snapshot counters: %+v", snap.Counters)
	}

	// The listener is closed: new work is refused, not queued.
	if _, err := http.Get(base + "/after"); err == nil {
		t.Fatal("drained server accepted a new request")
	}
}

// TestServeForceClosesStragglers pins the other half of the contract: a
// request that outlives ShutdownTimeout is cut off and Serve reports the
// incomplete drain instead of hanging the exit.
func TestServeForceClosesStragglers(t *testing.T) {
	leakcheck.Check(t)
	inHandler := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	base, shutdown, result := startServe(t, handler, ServeOptions{ShutdownTimeout: 20 * time.Millisecond})

	go func() {
		resp, err := http.Get(base + "/hang")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inHandler
	shutdown()
	select {
	case err := <-result:
		if err == nil {
			t.Fatal("incomplete drain reported as clean")
		}
		if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "context") {
			t.Fatalf("unexpected drain error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve hung past its shutdown timeout")
	}
}

// TestServeReturnsServerError pins the non-drain exit: a server that fails
// on its own (listener closed underneath it) surfaces the error.
func TestServeReturnsServerError(t *testing.T) {
	leakcheck.Check(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.NotFoundHandler()}
	result := make(chan error, 1)
	go func() { result <- Serve(context.Background(), srv, ln, ServeOptions{}) }()
	time.Sleep(10 * time.Millisecond)
	ln.Close()
	select {
	case err := <-result:
		if err == nil {
			t.Fatal("listener failure reported as clean exit")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not notice the dead listener")
	}
}
