package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cachecatalyst/internal/leakcheck"
	"cachecatalyst/internal/telemetry"
)

// fakeClock drives breaker cooldowns without sleeping.
type fakeClock struct{ now atomic.Int64 }

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.now.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.now.Add(int64(d)) }

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerOptions{FailureThreshold: 3, Cooldown: time.Second, Now: clk.Now})
	for i := 0; i < 2; i++ {
		b.Record(false)
		if !b.Allow() {
			t.Fatalf("open after %d failures, threshold 3", i+1)
		}
	}
	b.Record(false)
	if b.Allow() {
		t.Fatal("still allowing at threshold")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v", b.State())
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b := NewBreaker(BreakerOptions{FailureThreshold: 3})
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if !b.Allow() {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestBreakerHalfOpenTrial(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerOptions{FailureThreshold: 1, Cooldown: time.Second, Now: clk.Now})
	b.Record(false)
	if b.Allow() {
		t.Fatal("open breaker allowed traffic")
	}
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no trial admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second trial admitted while first is in flight")
	}
	// Failed trial re-opens for a fresh cooldown.
	b.Record(false)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed trial did not re-open")
	}
	// Another cooldown, successful trial closes.
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("no second trial")
	}
	b.Record(true)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful trial did not close")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerOptions{FailureThreshold: -1})
	for i := 0; i < 100; i++ {
		b.Record(false)
	}
	if !b.Allow() {
		t.Fatal("disabled breaker opened")
	}
}

func TestBreakerSetPerKeyIsolation(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := &fakeClock{}
	set := NewBreakerSet(BreakerOptions{FailureThreshold: 1, Cooldown: time.Minute, Now: clk.Now,
		Telemetry: reg, Name: "test.origin_breaker"})
	a, b := set.Get("a"), set.Get("b")
	if a == b {
		t.Fatal("distinct keys share a breaker")
	}
	if set.Get("a") != a {
		t.Fatal("same key minted a second breaker")
	}
	a.Record(false)
	if a.Allow() {
		t.Fatal("a did not open")
	}
	if !b.Allow() {
		t.Fatal("a's failures opened b")
	}
	if set.Trips() != 1 {
		t.Fatalf("trips = %d", set.Trips())
	}
	if reg.Snapshot().Counters["test.origin_breaker.trips"] != 1 {
		t.Fatal("trips not indexed in registry")
	}
	if len(set.Keys()) != 2 {
		t.Fatalf("keys = %v", set.Keys())
	}
}

func TestHealthCheckerDrivesBreaker(t *testing.T) {
	leakcheck.Check(t)
	clk := &fakeClock{}
	b := NewBreaker(BreakerOptions{FailureThreshold: 2, Cooldown: time.Hour, Now: clk.Now})
	var healthy atomic.Bool
	reg := telemetry.NewRegistry()
	h := NewHealthChecker(b, func(ctx context.Context) error {
		if healthy.Load() {
			return nil
		}
		return errors.New("origin down")
	}, HealthOptions{Interval: time.Millisecond, Telemetry: reg, Name: "test.health"})
	h.Start()
	defer h.Stop()

	waitFor := func(cond func() bool, msg string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal(msg)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Unhealthy origin: the checker opens the breaker without any user
	// traffic failing first.
	waitFor(func() bool { return b.State() == BreakerOpen }, "checker never opened the breaker")
	// Recovery: the checker's successful probes close it again, even
	// though the cooldown (1h) is nowhere near elapsed — active health
	// beats passive cooldown.
	healthy.Store(true)
	waitFor(func() bool { return b.State() == BreakerClosed }, "checker never closed the breaker")
	if h.Checks() == 0 || h.Failures() == 0 {
		t.Fatalf("checks=%d failures=%d", h.Checks(), h.Failures())
	}
	snap := reg.Snapshot()
	if snap.Counters["test.health.checks"] == 0 {
		t.Fatal("checks not indexed")
	}
}

func TestHealthCheckerStopIsLeakFree(t *testing.T) {
	leakcheck.Check(t)
	b := NewBreaker(BreakerOptions{})
	h := NewHealthChecker(b, func(ctx context.Context) error { return nil },
		HealthOptions{Interval: time.Millisecond})
	h.Start()
	time.Sleep(5 * time.Millisecond)
	h.Stop() // must wait for the loop goroutine; leakcheck asserts it
}
