package resilience

import (
	"context"
	"sync"
	"time"

	"cachecatalyst/internal/telemetry"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets one trial request through; its outcome closes
	// or re-opens the breaker.
	BreakerHalfOpen
)

// String renders the state for logs and debug snapshots.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerOptions configures a Breaker (and every breaker a BreakerSet
// mints).
type BreakerOptions struct {
	// FailureThreshold is how many consecutive failures open the
	// breaker. Zero selects 5; negative disables the breaker (Allow
	// always true).
	FailureThreshold int
	// Cooldown is how long an open breaker refuses traffic before
	// letting a half-open trial through. Zero selects 5 seconds.
	Cooldown time.Duration
	// Now supplies the clock; nil means time.Now. Tests inject one so
	// cooldown expiry needs no real sleeping.
	Now func() time.Time
	// Telemetry, when set with a non-empty Name, indexes trip/probe
	// counters under Name (BreakerSet adds them once for the whole set).
	Telemetry *telemetry.Registry
	Name      string
}

func (o BreakerOptions) threshold() int {
	if o.FailureThreshold < 0 {
		return 0
	}
	if o.FailureThreshold == 0 {
		return 5
	}
	return o.FailureThreshold
}

func (o BreakerOptions) cooldown() time.Duration {
	if o.Cooldown <= 0 {
		return 5 * time.Second
	}
	return o.Cooldown
}

func (o BreakerOptions) now() time.Time {
	if o.Now != nil {
		return o.Now()
	}
	return time.Now()
}

// Breaker is a consecutive-failure circuit breaker guarding one origin:
// closed it only counts, at the threshold it opens and refuses fast, and
// after the cooldown it half-opens to let a single trial decide. The
// serving path records outcomes passively; a HealthChecker can record
// actively so a recovered origin closes the breaker without waiting for
// user traffic to gamble on it.
type Breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time

	trips *telemetry.Counter // shared with the owning set; may be nil
}

// NewBreaker returns a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	b := &Breaker{opts: opts}
	if opts.Telemetry != nil && opts.Name != "" {
		b.trips = opts.Telemetry.Counter(opts.Name + ".trips")
	}
	return b
}

// Allow reports whether a request may proceed. In the open state it
// returns false until the cooldown has elapsed, then flips to half-open
// and admits exactly one trial; further calls are refused until Record
// settles the trial.
func (b *Breaker) Allow() bool {
	if b.opts.threshold() == 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false // a trial is already in flight
	default:
		if b.opts.now().Sub(b.openedAt) < b.opts.cooldown() {
			return false
		}
		b.state = BreakerHalfOpen
		return true
	}
}

// Record feeds one observed outcome into the breaker: a success closes it
// (or resets the failure run), a failure extends the run and opens the
// breaker at the threshold. Half-open trials settle here.
func (b *Breaker) Record(ok bool) {
	threshold := b.opts.threshold()
	if threshold == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= threshold {
		if b.state != BreakerOpen {
			if b.trips != nil {
				b.trips.Add(1)
			}
		}
		b.state = BreakerOpen
		b.openedAt = b.opts.now()
		b.fails = 0
	}
}

// State returns the breaker's current position (open breakers past their
// cooldown still report open until the next Allow flips them half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSet mints and holds one breaker per origin key — the "per-origin
// circuit breakers" of a multi-origin edge. Get is safe for concurrent
// use and returns the same breaker for the same key.
type BreakerSet struct {
	opts BreakerOptions

	mu sync.Mutex
	m  map[string]*Breaker

	trips telemetry.Counter
}

// NewBreakerSet returns an empty set; breakers are created on first Get
// with the set's options.
func NewBreakerSet(opts BreakerOptions) *BreakerSet {
	s := &BreakerSet{opts: opts, m: make(map[string]*Breaker)}
	if opts.Telemetry != nil && opts.Name != "" {
		opts.Telemetry.RegisterCounter(opts.Name+".trips", &s.trips)
	}
	return s
}

// Get returns the breaker for key, creating it on first use.
func (s *BreakerSet) Get(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[key]; ok {
		return b
	}
	opts := s.opts
	opts.Telemetry = nil // counters are the set's, not per-key
	b := NewBreaker(opts)
	b.trips = &s.trips
	s.m[key] = b
	return b
}

// Keys returns the origin keys breakers exist for.
func (s *BreakerSet) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	return keys
}

// Trips returns the total number of breaker openings across the set.
func (s *BreakerSet) Trips() int64 { return s.trips.Load() }

// HealthChecker actively probes an origin on an interval and records the
// outcomes into a breaker, so a brown-out is detected before users pay for
// it and a recovery closes the breaker without gambling live traffic.
type HealthChecker struct {
	probe    func(ctx context.Context) error
	breaker  *Breaker
	interval time.Duration
	timeout  time.Duration

	checks, failures telemetry.Counter

	stop chan struct{}
	done chan struct{}
}

// HealthOptions configures a HealthChecker.
type HealthOptions struct {
	// Interval between probes. Zero selects 2 seconds.
	Interval time.Duration
	// Timeout bounds one probe. Zero selects Interval/2.
	Timeout time.Duration
	// Telemetry, with Name, indexes check/failure counters.
	Telemetry *telemetry.Registry
	Name      string
}

// NewHealthChecker returns a checker feeding probe outcomes into breaker.
// Call Start to begin probing and Stop to halt (Stop waits for the probe
// goroutine to exit, so drains are leak-free).
func NewHealthChecker(breaker *Breaker, probe func(ctx context.Context) error, opts HealthOptions) *HealthChecker {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = opts.Interval / 2
	}
	h := &HealthChecker{
		probe:    probe,
		breaker:  breaker,
		interval: opts.Interval,
		timeout:  opts.Timeout,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if opts.Telemetry != nil && opts.Name != "" {
		opts.Telemetry.RegisterCounter(opts.Name+".checks", &h.checks)
		opts.Telemetry.RegisterCounter(opts.Name+".failures", &h.failures)
	}
	return h
}

// Start launches the probe loop.
func (h *HealthChecker) Start() {
	go h.loop()
}

// Stop halts probing and waits for the loop goroutine to exit. Safe to
// call once; callers sequencing a drain call it before flushing telemetry.
func (h *HealthChecker) Stop() {
	close(h.stop)
	<-h.done
}

// Checks returns how many probes have run; Failures how many failed.
func (h *HealthChecker) Checks() int64   { return h.checks.Load() }
func (h *HealthChecker) Failures() int64 { return h.failures.Load() }

func (h *HealthChecker) loop() {
	defer close(h.done)
	ticker := time.NewTicker(h.interval)
	defer ticker.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-ticker.C:
			h.check()
		}
	}
}

func (h *HealthChecker) check() {
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	err := h.probe(ctx)
	h.checks.Add(1)
	if err != nil {
		h.failures.Add(1)
	}
	h.breaker.Record(err == nil)
}
