// Package jsexec emulates the one aspect of JavaScript execution that
// matters for page loading: scripts fetch further resources at runtime.
//
// The synthetic corpus embeds machine-readable fetch directives in script
// bodies; the emulated browser "executes" a script by extracting them. The
// directives stand in for resource URLs that are computed at runtime — the
// paper's §3 point is that a server cannot discover these statically, so
// internal/server deliberately never parses them: only the client-side
// browser emulation does, reproducing the coverage gap the paper defers to
// future work (and that the recording mode closes).
package jsexec

import (
	"strings"
)

// DirectivePrefix starts a fetch directive line inside a script body.
const DirectivePrefix = "//@fetch "

// Directive renders a fetch directive for url.
func Directive(url string) string { return DirectivePrefix + url }

// ExtractFetches returns the URLs a script fetches when executed, in
// program order. Directives must start a line (modulo leading whitespace);
// anything else is inert script text.
func ExtractFetches(js string) []string {
	var out []string
	for _, line := range strings.Split(js, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, DirectivePrefix) {
			continue
		}
		url := strings.TrimSpace(line[len(DirectivePrefix):])
		if url != "" {
			out = append(out, url)
		}
	}
	return out
}

// ExecDelay is the simulated execution time charged per script, modelling
// parse+evaluate cost before fetch directives take effect. Kept small and
// fixed: script CPU cost is not the phenomenon under study, but a zero
// delay would let JS-discovered fetches start unrealistically early.
const ExecDelayMillis = 2
