package jsexec

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExtractFetches(t *testing.T) {
	js := `// app.js v=3
//@fetch /js/child.js
var x = 1;
  //@fetch /img/lazy.png
console.log("//@fetch /not/a/directive-in-string"); //@fetch /also/not
//@fetch
//@fetchnope /x
`
	got := ExtractFetches(js)
	want := []string{"/js/child.js", "/img/lazy.png"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestExtractFetchesEmpty(t *testing.T) {
	if got := ExtractFetches("var a = 1;"); got != nil {
		t.Fatalf("got %v", got)
	}
	if got := ExtractFetches(""); got != nil {
		t.Fatalf("got %v", got)
	}
}

func TestDirectiveRoundTrip(t *testing.T) {
	js := Directive("/a.png") + "\n" + Directive("/b.js") + "\n"
	got := ExtractFetches(js)
	if len(got) != 2 || got[0] != "/a.png" || got[1] != "/b.js" {
		t.Fatalf("got %v", got)
	}
}

// Property: every directive emitted is recovered, in order, regardless of
// surrounding script text.
func TestDirectiveAlwaysRecoveredQuick(t *testing.T) {
	f := func(before, after string, urls []string) bool {
		var clean []string
		for _, u := range urls {
			u = strings.TrimSpace(strings.ReplaceAll(u, "\n", ""))
			if u != "" {
				clean = append(clean, u)
			}
		}
		var b strings.Builder
		b.WriteString(strings.ReplaceAll(before, DirectivePrefix, "") + "\n")
		for _, u := range clean {
			b.WriteString(Directive(u) + "\n")
		}
		b.WriteString(strings.ReplaceAll(after, DirectivePrefix, "") + "\n")
		got := ExtractFetches(b.String())
		if len(got) != len(clean) {
			return false
		}
		for i := range clean {
			if got[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
