package webgen

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/htmlparse"
	"cachecatalyst/internal/jsexec"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/vclock"
)

// PagePath is the homepage path of every generated site.
const PagePath = "/index.html"

// SecondaryPagePath is the second page every site serves; it shares the
// site-wide stylesheets/scripts with the homepage (the "other pages within
// the same website" reuse scenario of §1).
const SecondaryPagePath = "/about.html"

// resourceSpec describes one generated resource and its dynamics.
type resourceSpec struct {
	path   string
	kind   htmlparse.ResourceKind
	size   int
	policy server.CachePolicy
	// period is the content-change interval; 0 = never changes.
	period time.Duration
	// phase desynchronizes change times across resources.
	phase time.Duration
	// ageAtGen backdates the initial Last-Modified.
	ageAtGen time.Duration
	// crossOrigin places the resource on the CDN host.
	crossOrigin bool
	// refs are URLs referenced from this resource's markup: tags for the
	// page, url() values for stylesheets.
	refs []string
	// imports are child stylesheets (@import).
	imports []string
	// fetches are runtime fetch directives (scripts only).
	fetches []string
	// async marks non-parser-blocking scripts.
	async bool
	// fingerprinted assets are referenced by version-stamped URLs
	// (?v=N) with an immutable TTL — the manual cache-busting best
	// practice. Their reference in HTML changes when they do.
	fingerprinted bool
	// appearsAfter, when positive, makes the resource 404 until that long
	// after the site epoch — a reference deployed before its asset
	// (Params.BrokenFrac). The flip to 200 happens as the clock advances.
	appearsAfter time.Duration
}

// Site is one generated website. It exposes two server.Content views: the
// main origin and the site's CDN origin (cross-origin resources).
//
// A Site is not safe for concurrent use; experiments run one goroutine per
// simulation.
type Site struct {
	// Host is the main origin, e.g. "site042.example".
	Host string
	// CDNHost serves the cross-origin resources.
	CDNHost string

	clock vclock.Clock
	epoch time.Time
	specs map[string]*resourceSpec
	order []string
	cache map[string]*materialized
}

type materialized struct {
	version uint64
	res     *server.Resource
}

func newSite(host string, clock vclock.Clock, epoch time.Time) *Site {
	return &Site{
		Host:    host,
		CDNHost: "cdn." + host,
		clock:   clock,
		epoch:   epoch,
		specs:   make(map[string]*resourceSpec),
		cache:   make(map[string]*materialized),
	}
}

func (s *Site) add(spec *resourceSpec) {
	s.specs[spec.path] = spec
	s.order = append(s.order, spec.path)
}

// normPhase returns the spec's phase normalized into [0, period).
func normPhase(spec *resourceSpec) time.Duration {
	if spec.period <= 0 {
		return 0
	}
	return spec.phase % spec.period
}

// version returns how many times the resource has changed since the site
// epoch at time now.
func (s *Site) version(spec *resourceSpec, now time.Time) uint64 {
	if spec.period <= 0 {
		return 0
	}
	elapsed := now.Sub(s.epoch)
	if elapsed < 0 {
		return 0
	}
	return uint64((elapsed + normPhase(spec)) / spec.period)
}

// lastModified returns the time of the resource's most recent change.
func (s *Site) lastModified(spec *resourceSpec, now time.Time) time.Time {
	v := s.version(spec, now)
	if v == 0 {
		return s.epoch.Add(-spec.ageAtGen)
	}
	return s.epoch.Add(time.Duration(v)*spec.period - normPhase(spec))
}

// ChangedBetween reports whether the resource at path changes content
// between times a and b (a ≤ b). Used by corpus statistics.
func (s *Site) ChangedBetween(path string, a, b time.Time) bool {
	spec, ok := s.specs[path]
	if !ok {
		return false
	}
	return s.version(spec, a) != s.version(spec, b)
}

// lookupSpec resolves a request path to its spec. Fingerprinted assets are
// requested with a ?v= query; the server serves the same file regardless of
// the stamp, like real static servers do.
func (s *Site) lookupSpec(path string) (*resourceSpec, bool) {
	if spec, ok := s.specs[path]; ok {
		return spec, true
	}
	if i := strings.IndexByte(path, '?'); i >= 0 {
		if base, ok := s.specs[path[:i]]; ok && base.fingerprinted {
			return base, true
		}
	}
	return nil, false
}

// get materializes the resource at path for the current clock time.
func (s *Site) get(path string) (*server.Resource, bool) {
	spec, ok := s.lookupSpec(path)
	if !ok {
		return nil, false
	}
	now := s.clock.Now()
	if spec.appearsAfter > 0 && now.Before(s.epoch.Add(spec.appearsAfter)) {
		// Referenced but not yet deployed: the server 404s until the
		// asset appears.
		return nil, false
	}
	v := s.version(spec, now)
	if spec.kind == htmlparse.KindDocument {
		// The page's bytes embed the current ?v= stamps of fingerprinted
		// dependencies, so its effective version must change when theirs
		// do — otherwise the materialization cache would serve stale refs.
		for _, ref := range spec.refs {
			if target, okT := s.specByRef(ref); okT && target.fingerprinted {
				v = v*1000003 + s.version(target, now) + 1
			}
		}
	}
	if m, ok := s.cache[path]; ok && m.version == v {
		return m.res, true
	}
	res := &server.Resource{
		Body:         s.materialize(spec, v),
		ContentType:  server.TypeByPath(path),
		ETag:         etag.ForVersion(s.Host+path, v),
		Policy:       spec.policy,
		LastModified: s.lastModified(spec, now),
	}
	s.cache[path] = &materialized{version: v, res: res}
	return res, true
}

// materialize renders the resource body for a given version.
func (s *Site) materialize(spec *resourceSpec, v uint64) []byte {
	switch spec.kind {
	case htmlparse.KindDocument:
		return s.renderPage(spec, v)
	case htmlparse.KindStylesheet:
		return renderCSS(spec, v)
	case htmlparse.KindScript:
		return renderJS(spec, v)
	default:
		return renderBinary(spec, v)
	}
}

// refFor renders the URL a page uses to reference target: fingerprinted
// assets carry their current version as a cache-busting query.
func (s *Site) refFor(ref string) string {
	target, ok := s.specByRef(ref)
	if !ok || !target.fingerprinted {
		return ref
	}
	return fmt.Sprintf("%s?v=%d", ref, s.version(target, s.clock.Now()))
}

// renderPage emits the homepage HTML listing the spec's refs as the
// appropriate tags.
func (s *Site) renderPage(spec *resourceSpec, v uint64) []byte {
	var b strings.Builder
	b.Grow(spec.size + 256)
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<!-- %s v=%d -->\n<html><head>\n<title>%s</title>\n", s.Host, v, s.Host)
	for _, ref := range spec.refs {
		target, ok := s.specByRef(ref)
		if !ok {
			continue
		}
		switch target.kind {
		case htmlparse.KindStylesheet:
			fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=\"%s\">\n", s.refFor(ref))
		case htmlparse.KindScript:
			if target.async {
				fmt.Fprintf(&b, "<script src=\"%s\" async></script>\n", s.refFor(ref))
			} else {
				fmt.Fprintf(&b, "<script src=\"%s\"></script>\n", s.refFor(ref))
			}
		}
	}
	b.WriteString("</head><body>\n")
	for _, ref := range spec.refs {
		target, ok := s.specByRef(ref)
		if !ok {
			continue
		}
		switch target.kind {
		case htmlparse.KindImage:
			fmt.Fprintf(&b, "<img src=\"%s\" alt=\"\">\n", ref)
		case htmlparse.KindMedia:
			fmt.Fprintf(&b, "<video src=\"%s\"></video>\n", ref)
		}
	}
	padText(&b, spec.size, "<p>", "</p>\n")
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// specByRef resolves a page/CSS reference (path or absolute CDN URL) to its
// spec.
func (s *Site) specByRef(ref string) (*resourceSpec, bool) {
	if strings.HasPrefix(ref, "https://") {
		if i := strings.Index(ref[len("https://"):], "/"); i >= 0 {
			ref = ref[len("https://")+i:]
		}
	}
	spec, ok := s.specs[ref]
	return spec, ok
}

func renderCSS(spec *resourceSpec, v uint64) []byte {
	var b strings.Builder
	b.Grow(spec.size + 256)
	fmt.Fprintf(&b, "/* %s v=%d */\n", spec.path, v)
	for _, imp := range spec.imports {
		fmt.Fprintf(&b, "@import \"%s\";\n", imp)
	}
	for i, ref := range spec.refs {
		if strings.Contains(ref, "/fonts/") {
			fmt.Fprintf(&b, "@font-face { font-family: F%d; src: url(%s); }\n", i, ref)
		} else {
			fmt.Fprintf(&b, ".c%d { background-image: url(%s); }\n", i, ref)
		}
	}
	padText(&b, spec.size, "/* ", " */\n")
	return []byte(b.String())
}

func renderJS(spec *resourceSpec, v uint64) []byte {
	var b strings.Builder
	b.Grow(spec.size + 256)
	fmt.Fprintf(&b, "// %s v=%d\n", spec.path, v)
	for _, f := range spec.fetches {
		b.WriteString(jsexec.Directive(f))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "console.log(%q);\n", spec.path)
	padText(&b, spec.size, "// ", "\n")
	return []byte(b.String())
}

func renderBinary(spec *resourceSpec, v uint64) []byte {
	stamp := fmt.Sprintf("BIN %s v=%d ", spec.path, v)
	if spec.size <= len(stamp) {
		return []byte(stamp)
	}
	body := make([]byte, spec.size)
	copy(body, stamp)
	return body
}

// fillerLine is sized so padding converges in few iterations.
const fillerLine = "lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod tempor incididunt ut labore et dolore magna aliqua"

// padText appends wrapped filler lines until the builder reaches target
// bytes (plus at most one line of overshoot).
func padText(b *strings.Builder, target int, open, close string) {
	for b.Len() < target {
		b.WriteString(open)
		b.WriteString(fillerLine)
		b.WriteString(close)
	}
}

// Content returns the main-origin server.Content view.
func (s *Site) Content() server.Content { return &originView{site: s, cdn: false} }

// CDNContent returns the CDN-origin view (cross-origin resources only).
func (s *Site) CDNContent() server.Content { return &originView{site: s, cdn: true} }

type originView struct {
	site *Site
	cdn  bool
}

func (v *originView) Get(path string) (*server.Resource, bool) {
	spec, ok := v.site.lookupSpec(path)
	if !ok || spec.crossOrigin != v.cdn {
		return nil, false
	}
	return v.site.get(path)
}

func (v *originView) Paths() []string {
	var out []string
	for _, p := range v.site.order {
		if v.site.specs[p].crossOrigin == v.cdn {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// NumResources returns the total number of resources on the site,
// including the page itself and cross-origin resources.
func (s *Site) NumResources() int { return len(s.specs) }

// TotalBytes returns the sum of nominal resource sizes (page weight).
func (s *Site) TotalBytes() int64 {
	var n int64
	for _, spec := range s.specs {
		n += int64(spec.size)
	}
	return n
}
