// Package webgen generates the synthetic website corpus the evaluation
// runs against — the stand-in for the paper's clones of the 100
// most-visited homepages.
//
// Each generated site is a homepage with a realistic resource tree
// (stylesheets that pull in images and fonts, scripts that fetch further
// scripts and images at runtime, a few cross-origin resources on a CDN
// host), sized to the ≈2.5 MB / "hundreds of small resources" shape the
// paper cites from HTTP Archive, and decorated with the cache-header
// pathologies §2 quantifies:
//
//   - a large share of resources is effectively not cached (no-store, or
//     no explicit freshness at all),
//   - ≈40 % of resources get a TTL under one day, most of which will not
//     change within it,
//   - many resources therefore expire in cache without having changed —
//     the spurious revalidations CacheCatalyst eliminates.
//
// Resources change over virtual time according to per-resource change
// periods, so revisits after the paper's delays (1 min … 1 week) see
// realistic churn. All generation and mutation is deterministic in
// (Seed, site index, virtual time).
package webgen

import (
	"fmt"
	"math/rand"
	"time"

	"cachecatalyst/internal/htmlparse"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/vclock"
)

// Profile selects the device class the corpus is calibrated to. The paper
// motivates CacheCatalyst with mobile web access, where pages are lighter
// but latency hurts more.
type Profile int

// Profiles.
const (
	// ProfileDesktop matches HTTP-Archive desktop medians (~60+ resources,
	// ~2.5-3 MB).
	ProfileDesktop Profile = iota
	// ProfileMobile matches mobile pages: fewer, smaller resources
	// (~45 resources, ~2 MB).
	ProfileMobile
)

func (p Profile) String() string {
	if p == ProfileMobile {
		return "mobile"
	}
	return "desktop"
}

// Params configures corpus generation.
type Params struct {
	// Sites is the number of sites (the paper uses 100). Zero selects 100.
	Sites int
	// Seed makes the corpus reproducible. Zero selects 1.
	Seed int64
	// Scale multiplies per-page resource counts; 1.0 (selected by zero)
	// is the calibrated default. Unit tests use small scales.
	Scale float64
	// CrossOriginFrac is the fraction of HTML-referenced images hosted on
	// the site's CDN origin. Negative disables; zero selects 0.12.
	CrossOriginFrac float64
	// Profile selects desktop (default) or mobile page shapes.
	Profile Profile
	// FingerprintFrac is the fraction of top-level stylesheets/scripts
	// served the best-practice way: an effectively immutable max-age and a
	// version-stamped URL (?v=N) that changes when the content does. Such
	// assets never need revalidation, so they neutralize CacheCatalyst's
	// advantage — the fingerprinting ablation quantifies how much of the
	// paper's win assumes today's header misconfiguration. Default 0
	// (matching the measured-pathology calibration); negative is 0.
	FingerprintFrac float64
	// BrokenFrac is the fraction of HTML-referenced images that 404 for a
	// while after generation — the page references them before the asset
	// deploy lands, the pathology negative caching targets. A broken
	// resource "appears" (flips to 200) at a per-resource delay after the
	// site epoch. Default 0; negative is 0. Zero draws no extra rng values,
	// so existing corpora are byte-identical.
	BrokenFrac float64
}

// profileShape holds the per-profile count ranges and size multiplier.
type profileShape struct {
	cssLo, cssHi   int
	jsLo, jsHi     int
	imgLo, imgHi   int
	fontLo, fontHi int
	sizeMul        float64
}

func shapeFor(p Profile) profileShape {
	if p == ProfileMobile {
		return profileShape{cssLo: 2, cssHi: 5, jsLo: 8, jsHi: 18, imgLo: 14, imgHi: 32, fontLo: 1, fontHi: 2, sizeMul: 0.7}
	}
	return profileShape{cssLo: 3, cssHi: 7, jsLo: 10, jsHi: 24, imgLo: 20, imgHi: 44, fontLo: 1, fontHi: 3, sizeMul: 1.0}
}

func (p Params) withDefaults() Params {
	if p.Sites == 0 {
		p.Sites = 100
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Scale == 0 {
		p.Scale = 1.0
	}
	if p.CrossOriginFrac == 0 {
		p.CrossOriginFrac = 0.12
	} else if p.CrossOriginFrac < 0 {
		p.CrossOriginFrac = 0
	}
	if p.FingerprintFrac < 0 {
		p.FingerprintFrac = 0
	}
	if p.BrokenFrac < 0 {
		p.BrokenFrac = 0
	}
	return p
}

// Corpus is a generated set of sites.
type Corpus struct {
	Params Params
	Sites  []*Site
}

// Generate builds a corpus. The clock drives resource mutation: advancing
// it between loads makes resources change at their individual rates, the
// way the paper advanced the system clock between visits.
func Generate(p Params, clock vclock.Clock) *Corpus {
	p = p.withDefaults()
	c := &Corpus{Params: p}
	for i := 0; i < p.Sites; i++ {
		c.Sites = append(c.Sites, generateOne(p, i, clock))
	}
	return c
}

// GenerateOne builds the index-th site of the corpus Generate(p, ·) would
// produce, without materializing the others. Experiment trials use this to
// give every (site, condition) cell its own site instance on its own
// virtual clock while keeping content trajectories identical across
// schemes.
func GenerateOne(p Params, index int, clock vclock.Clock) *Site {
	return generateOne(p.withDefaults(), index, clock)
}

// generateOne assumes p already has defaults applied. Keeping defaulting
// out of this path makes GenerateOne(Generate-normalized params) agree with
// Generate — withDefaults is not idempotent for the CrossOriginFrac
// disable sentinel (-1 → 0, which must not re-default to 0.12).
func generateOne(p Params, index int, clock vclock.Clock) *Site {
	rng := rand.New(rand.NewSource(p.Seed + int64(index)*7919))
	return generateSite(index, p, rng, clock, clock.Now())
}

// appearDelays are the possible deploy lags for BrokenFrac resources:
// how long after the site epoch a broken reference flips to 200.
var appearDelays = []time.Duration{
	30 * time.Minute, 2 * time.Hour, 12 * time.Hour, 48 * time.Hour,
}

// scaled draws lo + rng.Intn(hi-lo+1), scaled.
func scaled(rng *rand.Rand, lo, hi int, scale float64) int {
	n := lo + rng.Intn(hi-lo+1)
	out := int(float64(n) * scale)
	if out < 1 {
		out = 1
	}
	return out
}

// sizeIn draws a size uniformly in [lo, hi] bytes.
func sizeIn(rng *rand.Rand, lo, hi int) int {
	return lo + rng.Intn(hi-lo+1)
}

// drawPolicy assigns the cache-header policy per the §2 calibration.
func drawPolicy(rng *rand.Rand) server.CachePolicy {
	roll := rng.Float64()
	switch {
	case roll < 0.15:
		// Cacheable content shipped uncacheable: the CMS default the
		// paper blames for redundant transfers.
		return server.CachePolicy{NoStore: true}
	case roll < 0.35:
		// No explicit freshness at all; the browser falls back to
		// heuristic freshness from Last-Modified.
		return server.CachePolicy{}
	case roll < 0.50:
		// Always revalidate.
		return server.CachePolicy{NoCache: true}
	default:
		// Explicit TTL; 80% of these (40% of all resources) are under
		// one day, per the study quoted in §2.
		if rng.Float64() < 0.8 {
			short := []time.Duration{
				time.Minute, 5 * time.Minute, 30 * time.Minute,
				time.Hour, 6 * time.Hour, 12 * time.Hour,
			}
			return server.CachePolicy{MaxAge: short[rng.Intn(len(short))], HasMaxAge: true}
		}
		long := []time.Duration{
			2 * 24 * time.Hour, 7 * 24 * time.Hour, 30 * 24 * time.Hour,
		}
		return server.CachePolicy{MaxAge: long[rng.Intn(len(long))], HasMaxAge: true}
	}
}

// drawPeriod assigns the content-change period by resource kind; zero
// means the content never changes.
func drawPeriod(rng *rand.Rand, kind htmlparse.ResourceKind) time.Duration {
	day := 24 * time.Hour
	switch kind {
	case htmlparse.KindDocument:
		// Homepages churn: hours to a few days.
		return 6*time.Hour + time.Duration(rng.Int63n(int64(3*day)))
	case htmlparse.KindStylesheet:
		if rng.Float64() < 0.5 {
			return 0
		}
		return 3*day + time.Duration(rng.Int63n(int64(27*day)))
	case htmlparse.KindScript:
		if rng.Float64() < 0.4 {
			return 0
		}
		return day + time.Duration(rng.Int63n(int64(29*day)))
	case htmlparse.KindImage:
		if rng.Float64() < 0.75 {
			return 0
		}
		return 7*day + time.Duration(rng.Int63n(int64(53*day)))
	default: // fonts, media
		return 0
	}
}

// generateSite builds one site's resource tree.
func generateSite(index int, p Params, rng *rand.Rand, clock vclock.Clock, epoch time.Time) *Site {
	s := newSite(fmt.Sprintf("site%03d.example", index), clock, epoch)

	shape := shapeFor(p.Profile)
	size := func(lo, hi int) int {
		n := int(float64(sizeIn(rng, lo, hi)) * shape.sizeMul)
		if n < 64 {
			n = 64
		}
		return n
	}
	nCSS := scaled(rng, shape.cssLo, shape.cssHi, p.Scale)
	nJS := scaled(rng, shape.jsLo, shape.jsHi, p.Scale)
	nImg := scaled(rng, shape.imgLo, shape.imgHi, p.Scale)
	nFont := scaled(rng, shape.fontLo, shape.fontHi, p.Scale)
	nMedia := rng.Intn(2)
	if p.Scale < 0.3 || p.Profile == ProfileMobile {
		nMedia = 0
	}

	newSpec := func(path string, kind htmlparse.ResourceKind, size int) *resourceSpec {
		return &resourceSpec{
			path:     path,
			kind:     kind,
			size:     size,
			policy:   drawPolicy(rng),
			period:   drawPeriod(rng, kind),
			phase:    time.Duration(rng.Int63()),
			ageAtGen: 24*time.Hour + time.Duration(rng.Int63n(int64(300*24*time.Hour))),
		}
	}

	// Images: 60% referenced directly from HTML, 15% from CSS, 25%
	// JS-discovered (invisible to the server's static extraction).
	var htmlImgs, cssImgs, jsImgs []*resourceSpec
	for i := 0; i < nImg; i++ {
		img := newSpec(fmt.Sprintf("/img/i%02d.png", i), htmlparse.KindImage, size(5_000, 120_000))
		switch {
		case i < nImg*60/100:
			if rng.Float64() < p.CrossOriginFrac {
				img.crossOrigin = true
			}
			// Guarded so a zero BrokenFrac draws nothing: existing seeds
			// must keep producing byte-identical corpora.
			if p.BrokenFrac > 0 && rng.Float64() < p.BrokenFrac {
				img.appearsAfter = appearDelays[rng.Intn(len(appearDelays))]
			}
			htmlImgs = append(htmlImgs, img)
		case i < nImg*75/100:
			cssImgs = append(cssImgs, img)
		default:
			jsImgs = append(jsImgs, img)
		}
		s.add(img)
	}

	// Fonts: referenced from the first stylesheet.
	var fonts []*resourceSpec
	for i := 0; i < nFont; i++ {
		f := newSpec(fmt.Sprintf("/fonts/f%d.woff2", i), htmlparse.KindFont, size(25_000, 60_000))
		fonts = append(fonts, f)
		s.add(f)
	}

	// Stylesheets; some have a child stylesheet via @import.
	year := server.CachePolicy{MaxAge: 365 * 24 * time.Hour, HasMaxAge: true}
	var cssTop []*resourceSpec
	cssImgIdx, childIdx := 0, 0
	for i := 0; i < nCSS; i++ {
		css := newSpec(fmt.Sprintf("/css/s%d.css", i), htmlparse.KindStylesheet, size(5_000, 40_000))
		if rng.Float64() < p.FingerprintFrac {
			css.fingerprinted = true
			css.policy = year
		}
		if i == 0 {
			for _, f := range fonts {
				css.refs = append(css.refs, f.path)
			}
		}
		for k := 0; k < 2 && cssImgIdx < len(cssImgs); k++ {
			css.refs = append(css.refs, cssImgs[cssImgIdx].path)
			cssImgIdx++
		}
		if rng.Float64() < 0.3 {
			child := newSpec(fmt.Sprintf("/css/child%d.css", childIdx), htmlparse.KindStylesheet, size(3_000, 15_000))
			childIdx++
			css.imports = append(css.imports, child.path)
			s.add(child)
		}
		cssTop = append(cssTop, css)
		s.add(css)
	}
	// Leftover CSS-assigned images attach to the last stylesheet.
	for ; cssImgIdx < len(cssImgs); cssImgIdx++ {
		cssTop[len(cssTop)-1].refs = append(cssTop[len(cssTop)-1].refs, cssImgs[cssImgIdx].path)
	}

	// Scripts: 70% top-level (in HTML), the rest discovered by executing a
	// parent script, forming the b.js → c.js → d.jpg chains of Figure 1.
	nTopJS := nJS * 70 / 100
	if nTopJS < 1 {
		nTopJS = 1
	}
	var jsTop, jsChild []*resourceSpec
	for i := 0; i < nJS; i++ {
		js := newSpec(fmt.Sprintf("/js/a%02d.js", i), htmlparse.KindScript, size(10_000, 80_000))
		if i < nTopJS {
			js.async = rng.Float64() < 0.4
			if rng.Float64() < p.FingerprintFrac {
				js.fingerprinted = true
				js.policy = year
			}
			jsTop = append(jsTop, js)
		} else {
			jsChild = append(jsChild, js)
		}
		s.add(js)
	}
	// Distribute child scripts and JS-discovered images over parents.
	for i, child := range jsChild {
		parent := jsTop[i%len(jsTop)]
		parent.fetches = append(parent.fetches, child.path)
	}
	for i, img := range jsImgs {
		var parent *resourceSpec
		if len(jsChild) > 0 {
			parent = jsChild[i%len(jsChild)] // depth-2 discovery
		} else {
			parent = jsTop[i%len(jsTop)]
		}
		parent.fetches = append(parent.fetches, img.path)
	}

	// Media (async, e.g. a hero video).
	var media []*resourceSpec
	for i := 0; i < nMedia; i++ {
		m := newSpec(fmt.Sprintf("/media/v%d.mp4", i), htmlparse.KindMedia, size(200_000, 500_000))
		media = append(media, m)
		s.add(m)
	}

	// The homepage.
	page := newSpec(PagePath, htmlparse.KindDocument, size(20_000, 60_000))
	page.policy = server.CachePolicy{NoCache: true} // typical for HTML
	for _, css := range cssTop {
		page.refs = append(page.refs, css.path)
	}
	for _, js := range jsTop {
		page.refs = append(page.refs, js.path)
	}
	for _, img := range htmlImgs {
		if img.crossOrigin {
			page.refs = append(page.refs, "https://"+s.CDNHost+img.path)
		} else {
			page.refs = append(page.refs, img.path)
		}
	}
	for _, m := range media {
		page.refs = append(page.refs, m.path)
	}
	s.add(page)

	// A secondary page on the same site (the paper's "other pages within
	// the same website" scenario): it shares the site-wide assets —
	// stylesheets and scripts, which are exactly what a shared template
	// reuses — plus a handful of page-specific images.
	second := newSpec(SecondaryPagePath, htmlparse.KindDocument, size(15_000, 40_000))
	second.policy = server.CachePolicy{NoCache: true}
	for _, css := range cssTop {
		second.refs = append(second.refs, css.path)
	}
	for _, js := range jsTop {
		second.refs = append(second.refs, js.path)
	}
	// Shared images: the first third of the homepage's image set (header,
	// logo, sprites); the rest of the homepage's images do not appear.
	for i, img := range htmlImgs {
		if i >= len(htmlImgs)/3 {
			break
		}
		if img.crossOrigin {
			second.refs = append(second.refs, "https://"+s.CDNHost+img.path)
		} else {
			second.refs = append(second.refs, img.path)
		}
	}
	// Page-unique images.
	nOwn := scaled(rng, 4, 10, p.Scale)
	for i := 0; i < nOwn; i++ {
		own := newSpec(fmt.Sprintf("/img/about%02d.png", i), htmlparse.KindImage, size(5_000, 80_000))
		s.add(own)
		second.refs = append(second.refs, own.path)
	}
	s.add(second)
	return s
}
