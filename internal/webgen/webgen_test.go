package webgen

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"cachecatalyst/internal/core"
	"cachecatalyst/internal/htmlparse"
	"cachecatalyst/internal/jsexec"
	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/vclock"
)

func smallCorpus(clock vclock.Clock) *Corpus {
	return Generate(Params{Sites: 5, Seed: 42}, clock)
}

func newGet(path string) *netsim.Request {
	return &netsim.Request{Method: "GET", Path: path, Header: make(http.Header)}
}

func TestGenerateDeterministic(t *testing.T) {
	c1 := Generate(Params{Sites: 3, Seed: 7}, vclock.NewVirtual(vclock.Epoch))
	c2 := Generate(Params{Sites: 3, Seed: 7}, vclock.NewVirtual(vclock.Epoch))
	for i := range c1.Sites {
		r1, ok1 := c1.Sites[i].Content().Get(PagePath)
		r2, ok2 := c2.Sites[i].Content().Get(PagePath)
		if !ok1 || !ok2 {
			t.Fatal("page missing")
		}
		if string(r1.Body) != string(r2.Body) || r1.ETag != r2.ETag {
			t.Fatalf("site %d not deterministic", i)
		}
	}
	// Different seeds differ.
	c3 := Generate(Params{Sites: 3, Seed: 8}, vclock.NewVirtual(vclock.Epoch))
	r1, _ := c1.Sites[0].Content().Get(PagePath)
	r3, _ := c3.Sites[0].Content().Get(PagePath)
	if string(r1.Body) == string(r3.Body) {
		t.Fatal("different seeds produced identical sites")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Generate(Params{Sites: 1}, vclock.NewVirtual(vclock.Epoch))
	if c.Params.Sites != 1 || c.Params.Seed != 1 || c.Params.Scale != 1.0 {
		t.Fatalf("params = %+v", c.Params)
	}
	if len(c.Sites) != 1 {
		t.Fatal("site count wrong")
	}
}

func TestPageParsesAndReferencesExist(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	for _, site := range smallCorpus(clock).Sites {
		page, ok := site.Content().Get(PagePath)
		if !ok {
			t.Fatal("no page")
		}
		rs := htmlparse.ExtractFromHTML(string(page.Body))
		if len(rs) < 10 {
			t.Fatalf("%s: only %d resources extracted", site.Host, len(rs))
		}
		for _, r := range rs {
			if strings.HasPrefix(r.URL, "https://") {
				if !strings.Contains(r.URL, site.CDNHost) {
					t.Errorf("foreign absolute URL %q", r.URL)
				}
				path := r.URL[strings.Index(r.URL[8:], "/")+8:]
				if _, ok := site.CDNContent().Get(path); !ok {
					t.Errorf("CDN resource %q unservable", r.URL)
				}
				continue
			}
			if _, ok := site.Content().Get(r.URL); !ok {
				t.Errorf("%s: referenced %q not servable", site.Host, r.URL)
			}
		}
	}
}

func TestCSSReferencesResolve(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	site := smallCorpus(clock).Sites[0]
	checked := 0
	for _, p := range site.Content().Paths() {
		if !strings.HasSuffix(p, ".css") {
			continue
		}
		res, _ := site.Content().Get(p)
		for _, ref := range htmlparse.ExtractFromHTML("<style>" + string(res.Body) + "</style>") {
			_ = ref
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no stylesheets generated")
	}
}

func TestJSDirectivesResolve(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	site := smallCorpus(clock).Sites[0]
	directives := 0
	for _, p := range site.Content().Paths() {
		if !strings.HasSuffix(p, ".js") {
			continue
		}
		res, _ := site.Content().Get(p)
		for _, u := range jsexec.ExtractFetches(string(res.Body)) {
			directives++
			if _, ok := site.Content().Get(u); !ok {
				t.Errorf("JS-discovered %q not servable", u)
			}
		}
	}
	if directives == 0 {
		t.Fatal("no JS-discovered resources generated")
	}
}

func TestResourceSizesApproximateSpec(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	site := smallCorpus(clock).Sites[0]
	for _, p := range site.Content().Paths() {
		res, _ := site.Content().Get(p)
		spec := site.specs[p]
		got := len(res.Body)
		if got < spec.size || got > spec.size+4096 {
			t.Errorf("%s: body %d bytes, spec %d", p, got, spec.size)
		}
	}
}

func TestPageWeightRealistic(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	c := Generate(Params{Sites: 20, Seed: 3}, clock)
	var total float64
	for _, s := range c.Sites {
		total += float64(s.TotalBytes())
	}
	mean := total / float64(len(c.Sites))
	// Paper cites ≈2.5 MB/page; accept a broad band.
	if mean < 1.2e6 || mean > 4.5e6 {
		t.Fatalf("mean page weight %.0f bytes outside [1.2MB, 4.5MB]", mean)
	}
	var count int
	for _, s := range c.Sites {
		count += s.NumResources()
	}
	if meanRes := float64(count) / float64(len(c.Sites)); meanRes < 35 || meanRes > 120 {
		t.Fatalf("mean resources/page %.1f outside [35, 120]", meanRes)
	}
}

func TestMutationOverTime(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	site := smallCorpus(clock).Sites[0]
	page0, _ := site.Content().Get(PagePath)
	tag0 := page0.ETag

	// Within a minute nothing changes.
	clock.Advance(time.Minute)
	page1, _ := site.Content().Get(PagePath)
	if page1.ETag != tag0 {
		t.Fatal("page changed within a minute")
	}

	// After 60 days the homepage must have changed (period ≤ ~3.25d).
	clock.Advance(60 * 24 * time.Hour)
	page2, _ := site.Content().Get(PagePath)
	if page2.ETag == tag0 {
		t.Fatal("page unchanged after 60 days")
	}
	if string(page2.Body) == string(page0.Body) {
		t.Fatal("ETag changed but body did not")
	}
}

func TestETagChangesExactlyWithContent(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	site := smallCorpus(clock).Sites[0]
	type snapshot struct {
		tag  string
		body string
	}
	paths := site.Content().Paths()
	take := func() map[string]snapshot {
		out := make(map[string]snapshot)
		for _, p := range paths {
			r, _ := site.Content().Get(p)
			out[p] = snapshot{tag: r.ETag.String(), body: string(r.Body)}
		}
		return out
	}
	before := take()
	clock.Advance(7 * 24 * time.Hour)
	after := take()
	for _, p := range paths {
		tagChanged := before[p].tag != after[p].tag
		bodyChanged := before[p].body != after[p].body
		if tagChanged != bodyChanged {
			t.Errorf("%s: tagChanged=%v bodyChanged=%v", p, tagChanged, bodyChanged)
		}
	}
}

func TestLastModifiedTracksChanges(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	site := smallCorpus(clock).Sites[0]
	res, _ := site.Content().Get(PagePath)
	if !res.LastModified.Before(clock.Now()) {
		t.Fatal("initial Last-Modified not in the past")
	}
	clock.Advance(90 * 24 * time.Hour)
	res2, _ := site.Content().Get(PagePath)
	if !res2.LastModified.After(res.LastModified) {
		t.Fatal("Last-Modified did not advance with a change")
	}
	if res2.LastModified.After(clock.Now()) {
		t.Fatal("Last-Modified in the future")
	}
}

func TestCrossOriginSeparation(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	c := Generate(Params{Sites: 10, Seed: 9}, clock)
	foundCDN := false
	for _, site := range c.Sites {
		for _, p := range site.CDNContent().Paths() {
			foundCDN = true
			if _, ok := site.Content().Get(p); ok {
				t.Errorf("%s also served on main origin", p)
			}
		}
	}
	if !foundCDN {
		t.Fatal("no cross-origin resources in 10 sites")
	}
}

func TestCrossOriginDisabled(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	c := Generate(Params{Sites: 5, Seed: 9, CrossOriginFrac: -1}, clock)
	for _, site := range c.Sites {
		if n := len(site.CDNContent().Paths()); n != 0 {
			t.Fatalf("CDN has %d resources with cross-origin disabled", n)
		}
	}
}

func TestServableThroughServerWithCatalyst(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	site := smallCorpus(clock).Sites[0]
	s := server.New(site.Content(), server.Options{Catalyst: true, Clock: clock})
	origin := server.NewOrigin(s)
	resp := origin.RoundTrip(newGet(PagePath))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	m, err := core.DecodeMap(resp.Header.Get(core.HeaderName))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) < 10 {
		t.Fatalf("map too small: %d entries", len(m))
	}
	// Every map entry must be servable and carry the same tag.
	for p, tag := range m {
		r, ok := site.Content().Get(p)
		if !ok {
			t.Errorf("map entry %q not servable", p)
			continue
		}
		if r.ETag != tag {
			t.Errorf("map tag for %q = %v, served %v", p, tag, r.ETag)
		}
	}
	// JS-discovered resources must NOT be in the static map.
	for _, p := range site.Content().Paths() {
		if !strings.HasSuffix(p, ".js") {
			continue
		}
		res, _ := site.Content().Get(p)
		for _, u := range jsexec.ExtractFetches(string(res.Body)) {
			if _, ok := m[u]; ok {
				// Only an error if u is *solely* JS-discovered; images in
				// CSS can legitimately appear. JS-discovered images are in
				// the 25% pool that nothing else references, and child JS
				// is never in HTML, so presence in the map is a leak.
				t.Errorf("JS-discovered %q leaked into the static map", u)
			}
		}
	}
}

func TestMobileProfileLighterThanDesktop(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	desktop := Generate(Params{Sites: 10, Seed: 4, Profile: ProfileDesktop}, clock)
	mobile := Generate(Params{Sites: 10, Seed: 4, Profile: ProfileMobile}, clock)
	var dBytes, mBytes, dRes, mRes float64
	for i := range desktop.Sites {
		dBytes += float64(desktop.Sites[i].TotalBytes())
		mBytes += float64(mobile.Sites[i].TotalBytes())
		dRes += float64(desktop.Sites[i].NumResources())
		mRes += float64(mobile.Sites[i].NumResources())
	}
	if mBytes >= dBytes {
		t.Fatalf("mobile bytes %.0f not lighter than desktop %.0f", mBytes, dBytes)
	}
	if mRes >= dRes {
		t.Fatalf("mobile resources %.0f not fewer than desktop %.0f", mRes, dRes)
	}
	// Mobile pages still land in a plausible band (~1.5-2.5 MB).
	meanMobile := mBytes / 10
	if meanMobile < 0.8e6 || meanMobile > 3e6 {
		t.Fatalf("mobile mean page weight %.0f outside band", meanMobile)
	}
	if ProfileMobile.String() != "mobile" || ProfileDesktop.String() != "desktop" {
		t.Fatal("profile strings wrong")
	}
}

func TestSecondaryPageSharesTemplate(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	site := smallCorpus(clock).Sites[0]
	index, ok := site.Content().Get(PagePath)
	if !ok {
		t.Fatal("no homepage")
	}
	about, ok := site.Content().Get(SecondaryPagePath)
	if !ok {
		t.Fatal("no secondary page")
	}
	indexRefs := map[string]bool{}
	for _, r := range htmlparse.ExtractFromHTML(string(index.Body)) {
		indexRefs[r.URL] = true
	}
	var shared, own int
	for _, r := range htmlparse.ExtractFromHTML(string(about.Body)) {
		if indexRefs[r.URL] {
			shared++
		} else {
			own++
		}
		// Every reference must be servable.
		if strings.HasPrefix(r.URL, "https://") {
			continue
		}
		if _, ok := site.Content().Get(r.URL); !ok {
			t.Errorf("secondary page references unservable %q", r.URL)
		}
	}
	if shared == 0 {
		t.Fatal("secondary page shares nothing with the homepage")
	}
	if own == 0 {
		t.Fatal("secondary page has no unique resources")
	}
	if shared < own {
		t.Fatalf("template sharing too weak: shared=%d own=%d", shared, own)
	}
}

func TestStatsCalibration(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	c := Generate(Params{Sites: 40, Seed: 5}, clock)
	day := 24 * time.Hour
	st := c.Stats([]time.Duration{day})

	within := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %.3f outside [%.2f, %.2f]", name, got, lo, hi)
		}
	}
	// §2 calibration targets, with sampling slack.
	within("FracShortTTL", st.FracShortTTL, 0.32, 0.48)                            // paper: 40%
	within("ShortTTLUnchangedWithin24h", st.ShortTTLUnchangedWithin24h, 0.70, 1.0) // paper: 86%
	within("SpuriousExpiry@1d", st.SpuriousExpiry[day], 0.30, 0.70)                // paper: 47%
	within("FracReusableNoValidation", st.FracReusableNoValidation, 0.40, 0.60)    // paper: ~50%
	within("FracNoStore", st.FracNoStore, 0.08, 0.22)
	within("FracNoCache", st.FracNoCache, 0.08, 0.22)
	if st.String() == "" {
		t.Error("empty stats string")
	}
}

func TestFingerprintedAssets(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	c := Generate(Params{Sites: 4, Seed: 13, FingerprintFrac: 1.0}, clock)
	site := c.Sites[0]

	page, _ := site.Content().Get(PagePath)
	rs := htmlparse.ExtractFromHTML(string(page.Body))
	stamped := 0
	for _, r := range rs {
		if !strings.Contains(r.URL, "?v=") {
			continue
		}
		stamped++
		// The stamped URL must be servable and carry an ETag.
		res, ok := site.Content().Get(r.URL)
		if !ok {
			t.Fatalf("stamped URL %q unservable", r.URL)
		}
		if res.ETag.IsZero() {
			t.Fatalf("stamped URL %q has no ETag", r.URL)
		}
		if res.Policy.MaxAge < 300*24*time.Hour {
			t.Fatalf("fingerprinted asset %q lacks immutable TTL: %+v", r.URL, res.Policy)
		}
	}
	if stamped == 0 {
		t.Fatal("no stamped references with FingerprintFrac=1")
	}

	// When a fingerprinted asset's content changes, the page must
	// reference a new URL (and the page's own ETag must change even if the
	// page body proper did not).
	before := map[string]bool{}
	for _, r := range rs {
		before[r.URL] = true
	}
	tagBefore := page.ETag
	clock.Advance(120 * 24 * time.Hour) // far enough for JS/CSS churn
	page2, _ := site.Content().Get(PagePath)
	rs2 := htmlparse.ExtractFromHTML(string(page2.Body))
	changedRef := false
	for _, r := range rs2 {
		if strings.Contains(r.URL, "?v=") && !before[r.URL] {
			changedRef = true
		}
	}
	if !changedRef {
		t.Fatal("no stamped reference changed after 120 days")
	}
	if page2.ETag == tagBefore {
		t.Fatal("page ETag did not change with its stamped references")
	}
}

func TestFingerprintDisabledByDefault(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	site := Generate(Params{Sites: 1, Seed: 13}, clock).Sites[0]
	page, _ := site.Content().Get(PagePath)
	if strings.Contains(string(page.Body), "?v=") {
		t.Fatal("stamped URLs present without opt-in")
	}
}
