package webgen

import (
	"testing"
	"time"

	"cachecatalyst/internal/server"
	"cachecatalyst/internal/vclock"
)

// brokenPaths returns the paths of resources gated behind appearsAfter.
func brokenPaths(s *Site) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for path, spec := range s.specs {
		if spec.appearsAfter > 0 {
			out[path] = spec.appearsAfter
		}
	}
	return out
}

func TestBrokenFracResourcesAppearLater(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	site := GenerateOne(Params{Sites: 1, Seed: 3, Scale: 1.0, BrokenFrac: 0.5}, 0, clk)

	broken := brokenPaths(site)
	if len(broken) == 0 {
		t.Fatal("BrokenFrac 0.5 produced no broken resources")
	}
	main, cdn := site.Content(), site.CDNContent()
	view := func(path string) server.Content {
		if site.specs[path].crossOrigin {
			return cdn
		}
		return main
	}
	for path, delay := range broken {
		if _, ok := view(path).Get(path); ok {
			t.Fatalf("%s served before its appearance delay %v", path, delay)
		}
	}

	// Past the longest delay every broken resource has flipped to 200.
	clk.Advance(appearDelays[len(appearDelays)-1] + time.Minute)
	for path := range broken {
		res, ok := view(path).Get(path)
		if !ok || len(res.Body) == 0 {
			t.Fatalf("%s still missing after all appearance delays", path)
		}
	}
}

// TestBrokenFracZeroKeepsCorpusIdentical guards the rng-draw ordering:
// enabling-then-disabling the feature must not shift any other draw, so a
// zero BrokenFrac corpus is identical to one generated before the feature
// existed (represented here by the default params).
func TestBrokenFracZeroKeepsCorpusIdentical(t *testing.T) {
	a := GenerateOne(Params{Sites: 1, Seed: 9, Scale: 0.5}, 0, vclock.NewVirtual(vclock.Epoch))
	b := GenerateOne(Params{Sites: 1, Seed: 9, Scale: 0.5, BrokenFrac: 0}, 0, vclock.NewVirtual(vclock.Epoch))
	if len(a.specs) != len(b.specs) {
		t.Fatalf("spec counts differ: %d vs %d", len(a.specs), len(b.specs))
	}
	for path, sa := range a.specs {
		sb, ok := b.specs[path]
		if !ok {
			t.Fatalf("path %s missing with BrokenFrac=0", path)
		}
		if sa.size != sb.size || sa.period != sb.period || sa.phase != sb.phase || sa.crossOrigin != sb.crossOrigin {
			t.Fatalf("spec %s differs: %+v vs %+v", path, sa, sb)
		}
	}
}
