package webgen

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cachecatalyst/internal/htmlparse"
)

// CorpusStats reports the cache-pathology statistics the corpus is
// calibrated to, mirroring the numbers §2 of the paper cites. The corpus
// experiment (cmd/pltbench -experiment corpus) prints these next to the
// paper's figures.
type CorpusStats struct {
	Sites                int
	MeanResourcesPerPage float64
	MeanPageBytes        float64

	// Cache-Control distribution over subresources.
	FracNoStore   float64
	FracNoHeaders float64
	FracNoCache   float64
	FracShortTTL  float64 // max-age < 1 day
	FracLongTTL   float64 // max-age ≥ 1 day

	// FracStored is the share of subresources a browser stores at all.
	FracStored float64
	// FracReusableNoValidation is the share servable from cache without a
	// round trip while fresh (explicit max-age) — the reading under which
	// "only ~50% of cacheable resources are actually cached".
	FracReusableNoValidation float64

	// ShortTTLUnchangedWithin24h: of the short-TTL resources, the share
	// whose content does not change within a day (paper: 86%).
	ShortTTLUnchangedWithin24h float64

	// SpuriousExpiry maps a revisit delay to the share of stored
	// subresources that have expired by then although their content is
	// unchanged (paper: 47%) — each one a wasted revalidation RTT.
	SpuriousExpiry map[time.Duration]float64
}

// Stats computes corpus statistics; SpuriousExpiry is evaluated at each of
// the given delays.
func (c *Corpus) Stats(delays []time.Duration) CorpusStats {
	var st CorpusStats
	st.Sites = len(c.Sites)
	st.SpuriousExpiry = make(map[time.Duration]float64)

	var resources, noStore, noHeaders, noCache, shortTTL, longTTL float64
	var shortTTLTotal, shortTTLUnchanged float64
	spuriousNum := make(map[time.Duration]float64)
	spuriousDen := make(map[time.Duration]float64)
	var pageBytes float64
	day := 24 * time.Hour

	for _, site := range c.Sites {
		pageBytes += float64(site.TotalBytes())
		for _, spec := range site.specs {
			if spec.kind == htmlparse.KindDocument {
				continue // navigation, not a cached subresource
			}
			resources++
			switch {
			case spec.policy.NoStore:
				noStore++
			case spec.policy.NoCache:
				noCache++
			case spec.policy.HasMaxAge && spec.policy.MaxAge < day:
				shortTTL++
			case spec.policy.HasMaxAge:
				longTTL++
			default:
				noHeaders++
			}
			if spec.policy.HasMaxAge && spec.policy.MaxAge < day {
				shortTTLTotal++
				if !site.ChangedBetween(spec.path, site.epoch, site.epoch.Add(day)) {
					shortTTLUnchanged++
				}
			}
			if spec.policy.NoStore {
				continue
			}
			ttl := effectiveTTL(spec)
			for _, d := range delays {
				spuriousDen[d]++
				if ttl < d && !site.ChangedBetween(spec.path, site.epoch, site.epoch.Add(d)) {
					spuriousNum[d]++
				}
			}
		}
	}

	if resources > 0 {
		st.MeanResourcesPerPage = resources/float64(len(c.Sites)) + 1 // +1 for the page
		st.MeanPageBytes = pageBytes / float64(len(c.Sites))
		st.FracNoStore = noStore / resources
		st.FracNoHeaders = noHeaders / resources
		st.FracNoCache = noCache / resources
		st.FracShortTTL = shortTTL / resources
		st.FracLongTTL = longTTL / resources
		st.FracStored = 1 - st.FracNoStore
		st.FracReusableNoValidation = (shortTTL + longTTL) / resources
	}
	if shortTTLTotal > 0 {
		st.ShortTTLUnchangedWithin24h = shortTTLUnchanged / shortTTLTotal
	}
	for _, d := range delays {
		if spuriousDen[d] > 0 {
			st.SpuriousExpiry[d] = spuriousNum[d] / spuriousDen[d]
		}
	}
	return st
}

// effectiveTTL approximates the freshness lifetime a browser cache assigns
// at first fetch: explicit max-age, else the 10% heuristic from the
// resource's age, else zero (no-cache).
func effectiveTTL(spec *resourceSpec) time.Duration {
	if spec.policy.NoCache {
		return 0
	}
	if spec.policy.HasMaxAge {
		return spec.policy.MaxAge
	}
	return spec.ageAtGen / 10
}

// String renders the stats as the table the corpus experiment prints.
func (st CorpusStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sites=%d mean-resources/page=%.1f mean-page-bytes=%.0f\n",
		st.Sites, st.MeanResourcesPerPage, st.MeanPageBytes)
	fmt.Fprintf(&b, "cache-control: no-store=%.1f%% none=%.1f%% no-cache=%.1f%% ttl<1d=%.1f%% ttl>=1d=%.1f%%\n",
		st.FracNoStore*100, st.FracNoHeaders*100, st.FracNoCache*100,
		st.FracShortTTL*100, st.FracLongTTL*100)
	fmt.Fprintf(&b, "stored=%.1f%% reusable-without-validation=%.1f%% shortTTL-unchanged-24h=%.1f%%\n",
		st.FracStored*100, st.FracReusableNoValidation*100, st.ShortTTLUnchangedWithin24h*100)
	delays := make([]time.Duration, 0, len(st.SpuriousExpiry))
	for d := range st.SpuriousExpiry {
		delays = append(delays, d)
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	for _, d := range delays {
		fmt.Fprintf(&b, "spurious-expiry@%v=%.1f%%\n", d, st.SpuriousExpiry[d]*100)
	}
	return b.String()
}
