// Package stats provides the small descriptive-statistics toolkit the
// experiment harness reports with: means, medians, percentiles, standard
// deviation and relative-change helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks, or NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// StdDev returns the sample standard deviation (n−1 denominator), or NaN
// for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// GeoMean returns the geometric mean; inputs must be positive, or the
// result is NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Min returns the smallest value, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ReductionPercent returns the relative reduction from baseline to
// treatment in percent — the quantity Figure 3 plots. Positive values mean
// the treatment is faster (smaller). NaN when baseline is zero.
func ReductionPercent(baseline, treatment float64) float64 {
	if baseline == 0 {
		return math.NaN()
	}
	return (baseline - treatment) / baseline * 100
}

// Summary is a five-number-plus description of a sample.
type Summary struct {
	N            int
	Mean, Median float64
	Min, Max     float64
	StdDev       float64
	P10, P90     float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		StdDev: StdDev(xs),
		P10:    Percentile(xs, 10),
		P90:    Percentile(xs, 90),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f median=%.2f sd=%.2f min=%.2f p10=%.2f p90=%.2f max=%.2f",
		s.N, s.Mean, s.Median, s.StdDev, s.Min, s.P10, s.P90, s.Max)
}
