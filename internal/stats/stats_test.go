package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !approx(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestMedian(t *testing.T) {
	if !approx(Median([]float64{3, 1, 2}), 2) {
		t.Fatal("odd median wrong")
	}
	if !approx(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Fatal("even median wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := map[float64]float64{0: 10, 25: 20, 50: 30, 75: 40, 100: 50, 90: 46}
	for p, want := range cases {
		if got := Percentile(xs, p); !approx(got, want) {
			t.Errorf("P%.0f = %v, want %v", p, got, want)
		}
	}
	if got := Percentile(xs, -5); !approx(got, 10) {
		t.Errorf("clamp low: %v", got)
	}
	if got := Percentile(xs, 120); !approx(got, 50) {
		t.Errorf("clamp high: %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestStdDev(t *testing.T) {
	if !approx(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7)) {
		t.Fatal("stddev wrong")
	}
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Fatal("single-sample stddev should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if !approx(GeoMean([]float64{1, 100}), 10) {
		t.Fatal("geomean wrong")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("negative input should yield NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("empty geomean should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max wrong")
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty min/max should be NaN")
	}
}

func TestReductionPercent(t *testing.T) {
	if !approx(ReductionPercent(200, 140), 30) {
		t.Fatal("30% reduction wrong")
	}
	if !approx(ReductionPercent(100, 120), -20) {
		t.Fatal("regression sign wrong")
	}
	if !math.IsNaN(ReductionPercent(0, 5)) {
		t.Fatal("zero baseline should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !approx(s.Mean, 3) || !approx(s.Median, 3) || !approx(s.Min, 1) || !approx(s.Max, 5) {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: min ≤ p10 ≤ median ≤ p90 ≤ max for any sample.
func TestOrderStatisticsOrderedQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P10 && s.P10 <= s.Median && s.Median <= s.P90 && s.P90 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
