package harness

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cachecatalyst/internal/leakcheck"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestSchemeMatrixGolden pins the full conformance table: every scheme
// across the four corner conditions, byte-for-byte. The simulation is
// deterministic, so any diff is a behaviour change — regenerate with
// `go test ./internal/harness/ -run Golden -update` and review the diff.
func TestSchemeMatrixGolden(t *testing.T) {
	res, err := RunSchemeMatrix(QuickMatrixConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := MatrixTable(res)

	golden := filepath.Join("testdata", "scheme_matrix.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("scheme matrix diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSchemeMatrixShape checks the semantic claims the committed table
// rests on, independent of exact numbers.
func TestSchemeMatrixShape(t *testing.T) {
	cfg := QuickMatrixConfig()
	res, err := RunSchemeMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(cfg.Grid) {
		t.Fatalf("condition rows = %d, want %d", len(res.Cells), len(cfg.Grid))
	}
	for ci, row := range res.Cells {
		if len(row) != len(MatrixSchemes) {
			t.Fatalf("cond %d: scheme columns = %d, want %d", ci, len(row), len(MatrixSchemes))
		}
		byScheme := map[Scheme]MatrixCell{}
		for _, c := range row {
			if c.Samples == 0 {
				t.Fatalf("%s @ %s: no samples", c.Scheme, c.Cond)
			}
			byScheme[c.Scheme] = c
		}
		conv := byScheme[SchemeConventional]
		cat := byScheme[SchemeCatalyst]
		neg := byScheme[SchemeNegativeCache]
		push := byScheme[SchemeServerPush]
		// Catalyst needs fewer warm requests than conventional.
		if cat.MeanWarmRequests >= conv.MeanWarmRequests {
			t.Errorf("%s: catalyst warm reqs %.1f not below conventional %.1f",
				conv.Cond, cat.MeanWarmRequests, conv.MeanWarmRequests)
		}
		// Negative caching saves the repeat requests for broken references
		// (the corpus has BrokenFrac > 0).
		if neg.MeanWarmRequests >= cat.MeanWarmRequests {
			t.Errorf("%s: negative-cache warm reqs %.1f not below catalyst %.1f",
				conv.Cond, neg.MeanWarmRequests, cat.MeanWarmRequests)
		}
		// The broken references fail under every scheme: negative caching
		// changes where the failure is answered, not whether it happens.
		if neg.MeanErrors != conv.MeanErrors {
			t.Errorf("%s: negative-cache errors %.1f != conventional %.1f",
				conv.Cond, neg.MeanErrors, conv.MeanErrors)
		}
		// Push-all re-pushes the whole page on revisits: far more bytes.
		if push.MeanWarmBytes <= 2*conv.MeanWarmBytes {
			t.Errorf("%s: push warm bytes %.0f not ≫ conventional %.0f",
				conv.Cond, push.MeanWarmBytes, conv.MeanWarmBytes)
		}
	}
	// The honest cells: at the bandwidth-bound low-RTT corner, early
	// hints pay for their wire bytes without the latency headroom to win —
	// the scheme loses on FCP there while winning at high RTT.
	lowRTT := cfg.Grid[0]  // 8 Mbps / 10 ms
	highRTT := cfg.Grid[3] // 60 Mbps / 80 ms
	ehLow, _ := res.Cell(SchemeEarlyHints, lowRTT)
	convLow, _ := res.Cell(SchemeConventional, lowRTT)
	if ehLow.MeanWarmFCP <= convLow.MeanWarmFCP {
		t.Errorf("expected early-hints FCP to lose at %s: %v vs conventional %v",
			lowRTT, ehLow.MeanWarmFCP, convLow.MeanWarmFCP)
	}
	catHigh, _ := res.Cell(SchemeCatalyst, highRTT)
	convHigh, _ := res.Cell(SchemeConventional, highRTT)
	if catHigh.MeanWarmPLT >= convHigh.MeanWarmPLT {
		t.Errorf("catalyst should win at %s: %v vs %v", highRTT, catHigh.MeanWarmPLT, convHigh.MeanWarmPLT)
	}
}

// TestSchemeMatrixDeterministic: parallelism must not change a single cell.
func TestSchemeMatrixDeterministic(t *testing.T) {
	cfg := QuickMatrixConfig()
	cfg.Corpus.Sites = 2
	cfg.Grid = cfg.Grid[:2]
	a, err := RunSchemeMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	b, err := RunSchemeMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("matrix results differ across parallelism levels")
	}
}

// TestSchemeMatrixCancellation: a cancelled run errors out promptly and
// leaves no goroutines behind (checked under -race by CI).
func TestSchemeMatrixCancellation(t *testing.T) {
	leakcheck.Check(t)

	// Cancelled before the run starts: nothing must execute.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSchemeMatrixContext(ctx, QuickMatrixConfig()); err != context.Canceled {
		t.Fatalf("pre-cancelled run: err = %v, want context.Canceled", err)
	}

	// Cancelled mid-run: the pool drains and reports the cancellation.
	ctx, cancel = context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	cfg := QuickMatrixConfig()
	cfg.Corpus.Sites = 8 // enough work that the cancel lands mid-run
	if _, err := RunSchemeMatrixContext(ctx, cfg); err != nil && err != context.Canceled {
		t.Fatalf("mid-run cancel: unexpected error %v", err)
	}
	cancel()
}

func TestMatrixConfigValidate(t *testing.T) {
	cfg := QuickMatrixConfig()
	cfg.Grid = nil
	if _, err := RunSchemeMatrix(cfg); err == nil {
		t.Error("empty grid accepted")
	}
	cfg = QuickMatrixConfig()
	cfg.Delays = []time.Duration{time.Hour, time.Hour}
	if _, err := RunSchemeMatrix(cfg); err == nil {
		t.Error("non-increasing delays accepted")
	}
	cfg = QuickMatrixConfig()
	cfg.Delays = nil
	if _, err := RunSchemeMatrix(cfg); err == nil {
		t.Error("empty delays accepted")
	}
}
