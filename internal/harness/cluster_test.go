package harness

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestClusterCell is the multi-instance acceptance run: three edge
// instances serving two tenants through the consistent-hash ring, with
// telemetry-verified per-tenant hit ratios, a hot-map adoption on a
// non-owner, and a kill-one-node chaos step that re-shards and re-probes
// instead of erroring. `make cluster` runs exactly this under -race.
func TestClusterCell(t *testing.T) {
	cell, err := NewClusterCell(ClusterCellOptions{Instances: 3, Tenants: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Close()

	const pages = 12
	paths := make([]string, pages)
	for i := range paths {
		paths[i] = fmt.Sprintf("/page%d.html", i)
	}

	// Phase 1: cold sweep, then a warm sweep. Ring routing concentrates
	// each page on one instance, so the second pass must be warm there.
	owners := map[string]string{}
	for _, tn := range cell.Tenants {
		for _, p := range paths {
			status, body, hdr, servedBy, err := cell.Get(tn, p)
			if err != nil || status != 200 {
				t.Fatalf("cold %s%s: %d %v", tn, p, status, err)
			}
			if !strings.Contains(string(body), tn+" "+p) {
				t.Fatalf("tenant body crossed: %s%s got %q", tn, p, body)
			}
			if hdr.Get("X-Etag-Config") == "" {
				t.Fatalf("%s%s served without a map", tn, p)
			}
			owners[tn+p] = servedBy
		}
	}
	for _, tn := range cell.Tenants {
		for _, p := range paths {
			_, _, _, servedBy, err := cell.Get(tn, p)
			if err != nil {
				t.Fatalf("warm %s%s: %v", tn, p, err)
			}
			if servedBy != owners[tn+p] {
				t.Fatalf("ring routing unstable: %s%s moved %s → %s", tn, p, owners[tn+p], servedBy)
			}
		}
	}
	for _, tn := range cell.Tenants {
		if ratio := cell.HitRatio(tn); ratio < 0.4 {
			t.Fatalf("tenant %s warm hit ratio %.2f — ring concentration not paying off", tn, ratio)
		}
	}
	// Distribution sanity: with 24 (tenant, page) keys over 3 nodes,
	// every node should own some.
	served := map[string]int{}
	for _, id := range owners {
		served[id]++
	}
	if len(served) != 3 {
		t.Fatalf("ring left instances idle: %v", served)
	}

	// Phase 2: hot-map exchange. The owner of t0/page0 has rendered and
	// gossiped its encoding; a non-owner asked for the same page must
	// adopt it instead of re-probing. Gossip is async, so poll briefly.
	owner := owners[cell.Tenants[0]+paths[0]]
	var nonOwner string
	for _, inst := range cell.Instances {
		if inst.ID != owner {
			nonOwner = inst.ID
			break
		}
	}
	var adopted bool
	deadline := time.Now().Add(2 * time.Second)
	for !adopted {
		before := cell.Snapshot(nonOwner).Counters["middleware.hotmap_hits"]
		status, _, hdr, err := cell.GetFrom(nonOwner, cell.Tenants[0], paths[0])
		if err != nil || status != 200 {
			t.Fatalf("non-owner serve: %d %v", status, err)
		}
		if hdr.Get("X-Etag-Config") == "" {
			t.Fatal("non-owner served without a map")
		}
		after := cell.Snapshot(nonOwner).Counters["middleware.hotmap_hits"]
		adopted = after > before
		if !adopted && time.Now().After(deadline) {
			t.Fatalf("non-owner %s never adopted the peer encoding: %v", nonOwner, cell.Snapshot(nonOwner).Counters)
		}
	}
	if got := cell.Snapshot(owner).Counters["cluster.published"]; got == 0 {
		t.Fatalf("owner %s never gossiped: %v", owner, cell.Snapshot(owner).Counters)
	}
	if got := cell.Snapshot(nonOwner).Counters["cluster.adopted"]; got == 0 {
		t.Fatal("non-owner adoption not visible in exchange telemetry")
	}

	// Phase 3: kill a node mid-run. Routing re-shards (its keys move to
	// survivors, everyone else's stay put), every request keeps
	// succeeding, and the survivors re-probe the moved pages.
	victim := owner
	cell.Kill(victim)
	if cell.Ring.Len() != 2 {
		t.Fatalf("ring still has %d members after kill", cell.Ring.Len())
	}
	for _, tn := range cell.Tenants {
		for _, p := range paths {
			status, body, _, servedBy, err := cell.Get(tn, p)
			if err != nil || status != 200 {
				t.Fatalf("post-kill %s%s: %d %v", tn, p, status, err)
			}
			if servedBy == victim {
				t.Fatalf("dead instance %s served %s%s", victim, tn, p)
			}
			if prev := owners[tn+p]; prev != victim && servedBy != prev {
				t.Fatalf("kill moved a surviving owner's key: %s%s %s → %s", tn, p, prev, servedBy)
			}
			if !strings.Contains(string(body), tn+" "+p) {
				t.Fatalf("post-kill body wrong for %s%s: %q", tn, p, body)
			}
		}
	}
}
