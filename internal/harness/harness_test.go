package harness

import (
	"strings"
	"testing"
	"time"

	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/webgen"
)

func quickCfg() Config {
	cfg := QuickConfig()
	cfg.Corpus.Sites = 4
	cfg.Corpus.Scale = 0.3
	return cfg
}

func TestWorldLoadsAllSchemes(t *testing.T) {
	for _, scheme := range AllSchemes {
		w := NewWorld(quickCfg().Corpus, 0, scheme, netsim.TransportOptions{})
		res, err := w.Load(Median5G())
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Errors != 0 {
			t.Errorf("%s: %d errors on cold load (%+v)", scheme, res.Errors, res)
		}
		if res.Resources < 5 {
			t.Errorf("%s: only %d resources", scheme, res.Resources)
		}
	}
}

func TestWorldsShareContentTrajectory(t *testing.T) {
	// Two worlds over the same site index must see identical content at
	// identical virtual times, regardless of scheme.
	cfg := quickCfg()
	a := NewWorld(cfg.Corpus, 1, SchemeConventional, netsim.TransportOptions{})
	b := NewWorld(cfg.Corpus, 1, SchemeCatalyst, netsim.TransportOptions{})
	a.Advance(36 * time.Hour)
	b.Advance(36 * time.Hour)
	for _, p := range a.Site.Content().Paths() {
		ra, _ := a.Site.Content().Get(p)
		rb, ok := b.Site.Content().Get(p)
		if !ok || ra.ETag != rb.ETag {
			t.Fatalf("trajectories diverged at %s", p)
		}
	}
}

func TestRunFig3ShapeMatchesPaper(t *testing.T) {
	cfg := Config{
		Corpus: webgen.Params{Sites: 6, Seed: 1, Scale: 0.4},
		Grid: []netsim.Conditions{
			{RTT: 40 * time.Millisecond, DownlinkBps: 8e6},
			{RTT: 10 * time.Millisecond, DownlinkBps: 60e6},
			{RTT: 80 * time.Millisecond, DownlinkBps: 60e6},
		},
		Delays: []time.Duration{time.Hour, 24 * time.Hour},
	}
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	byCond := map[string]Cell{}
	for _, c := range res.Cells {
		byCond[c.Cond.String()] = c
		if c.Samples != 6*2 {
			t.Errorf("%s: samples = %d, want 12", c.Cond, c.Samples)
		}
		if len(c.ByDelay) != 2 {
			t.Errorf("%s: delay points = %d", c.Cond, len(c.ByDelay))
		}
	}
	// Paper shape #1: catalyst helps at high throughput.
	if byCond["60Mbps/80ms"].MeanReductionPct <= 5 {
		t.Errorf("60Mbps/80ms reduction %.1f%% too small", byCond["60Mbps/80ms"].MeanReductionPct)
	}
	// Paper shape #2: at constant throughput, higher latency → bigger gains.
	if byCond["60Mbps/80ms"].MeanReductionPct <= byCond["60Mbps/10ms"].MeanReductionPct {
		t.Errorf("reduction at 80ms (%.1f%%) not larger than at 10ms (%.1f%%)",
			byCond["60Mbps/80ms"].MeanReductionPct, byCond["60Mbps/10ms"].MeanReductionPct)
	}
	// Paper shape #3: gains at 8 Mbps are smaller than at 60 Mbps for the
	// same latency-ish comparison (bandwidth-bound regime).
	if byCond["8Mbps/40ms"].MeanReductionPct >= byCond["60Mbps/80ms"].MeanReductionPct {
		t.Errorf("8Mbps reduction (%.1f%%) not smaller than 60Mbps/80ms (%.1f%%)",
			byCond["8Mbps/40ms"].MeanReductionPct, byCond["60Mbps/80ms"].MeanReductionPct)
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
}

func TestRunHeadline(t *testing.T) {
	cfg := Config{
		Corpus: webgen.Params{Sites: 4, Seed: 1, Scale: 0.3},
		Grid:   []netsim.Conditions{Median5G()},
		Delays: []time.Duration{time.Hour},
	}
	res, err := RunHeadline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Median5GReduction == 0 {
		t.Fatal("5G median cell not found or zero")
	}
	if res.Median5GReduction < 5 {
		t.Errorf("5G median reduction %.1f%% implausibly small", res.Median5GReduction)
	}
	if !strings.Contains(res.Table(), "5G median") {
		t.Error("table missing headline")
	}
}

func TestRunBaselines(t *testing.T) {
	cfg := quickCfg()
	rows, err := RunBaselines(cfg, Median5G(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AllSchemes) {
		t.Fatalf("rows = %d", len(rows))
	}
	byScheme := map[Scheme]BaselineRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	conv := byScheme[SchemeConventional]
	cat := byScheme[SchemeCatalyst]
	push := byScheme[SchemeServerPush]
	rdr := byScheme[SchemeRDR]

	// §5 qualitative claims, at corpus scale:
	if cat.MeanWarmPLT >= conv.MeanWarmPLT {
		t.Errorf("catalyst warm PLT %v not better than conventional %v", cat.MeanWarmPLT, conv.MeanWarmPLT)
	}
	if push.MeanWarmBytes <= cat.MeanWarmBytes*2 {
		t.Errorf("push warm bytes %.0f not ≫ catalyst %.0f", push.MeanWarmBytes, cat.MeanWarmBytes)
	}
	if rdr.MeanColdPLT >= conv.MeanColdPLT {
		t.Errorf("RDR cold PLT %v not better than conventional %v", rdr.MeanColdPLT, conv.MeanColdPLT)
	}
	if rdr.MeanWarmBytes <= cat.MeanWarmBytes {
		t.Errorf("RDR warm bytes %.0f not larger than catalyst %.0f", rdr.MeanWarmBytes, cat.MeanWarmBytes)
	}
	if BaselineTable(rows, time.Hour) == "" {
		t.Error("empty baseline table")
	}
}

func TestRunHeaderOverhead(t *testing.T) {
	cfg := quickCfg()
	res, err := RunHeaderOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanEntries <= 0 || res.MeanMapBytes <= 0 {
		t.Fatalf("overhead result empty: %+v", res)
	}
	if res.OverheadFraction <= 0 || res.OverheadFraction >= 0.5 {
		t.Fatalf("overhead fraction %.2f implausible", res.OverheadFraction)
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
}

func TestRunCoverage(t *testing.T) {
	cfg := quickCfg()
	rows, err := RunCoverage(cfg, Median5G())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	static, record, full := rows[0], rows[1], rows[2]
	if static.Scheme != SchemeCatalyst || record.Scheme != SchemeCatalystRecord || full.Scheme != SchemeCatalystFull {
		t.Fatalf("row order: %v, %v, %v", static.Scheme, record.Scheme, full.Scheme)
	}
	// Recording must strictly improve coverage (it adds JS-discovered
	// resources to the map).
	if record.CoveredFraction <= static.CoveredFraction {
		t.Errorf("recording coverage %.2f not better than static %.2f",
			record.CoveredFraction, static.CoveredFraction)
	}
	// Recording mode covers all same-origin subresources on an unchanged
	// revisit; the remainder is no-store content and cross-origin (CDN)
	// resources the recorder never sees.
	if record.CoveredFraction < 0.80 {
		t.Errorf("recording coverage %.2f too low", record.CoveredFraction)
	}
	// The cross-origin extension covers CDN resources too, so on an
	// unchanged revisit coverage must reach (nearly) everything except
	// no-store content.
	if full.CoveredFraction < record.CoveredFraction {
		t.Errorf("cross-origin coverage %.2f below recording %.2f",
			full.CoveredFraction, record.CoveredFraction)
	}
	if CoverageTable(rows) == "" {
		t.Error("empty table")
	}
}

// TestColdLoadParity checks the deployment-safety claim implicit in the
// paper: enabling CacheCatalyst must not penalize first visits. The only
// cold-load costs are the X-Etag-Config header and the registration
// snippet, both small; cold PLT must stay within 3% of the conventional
// baseline.
func TestColdLoadParity(t *testing.T) {
	cfg := quickCfg()
	cond := Median5G()
	for siteIdx := 0; siteIdx < cfg.Corpus.Sites; siteIdx++ {
		conv := NewWorld(cfg.Corpus, siteIdx, SchemeConventional, cfg.Transport)
		cat := NewWorld(cfg.Corpus, siteIdx, SchemeCatalyst, cfg.Transport)
		rConv, err := conv.Load(cond)
		if err != nil {
			t.Fatal(err)
		}
		rCat, err := cat.Load(cond)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(rCat.PLT) / float64(rConv.PLT)
		if ratio > 1.03 {
			t.Errorf("site %d: catalyst cold PLT %v is %.1f%% worse than conventional %v",
				siteIdx, rCat.PLT, (ratio-1)*100, rConv.PLT)
		}
	}
}

func TestRunCrossPage(t *testing.T) {
	cfg := quickCfg()
	rows, err := RunCrossPage(cfg, Median5G())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	conv, cat := rows[0], rows[1]
	// Right after a cold homepage load nothing has changed, so the
	// catalyst client reuses every shared template asset with zero round
	// trips; the conventional client revalidates the no-cache ones.
	if cat.MeanSecondPagePLT >= conv.MeanSecondPagePLT {
		t.Errorf("catalyst 2nd-page PLT %v not better than conventional %v",
			cat.MeanSecondPagePLT, conv.MeanSecondPagePLT)
	}
	if cat.MeanSecondPageRequests >= conv.MeanSecondPageRequests {
		t.Errorf("catalyst 2nd-page requests %.1f not fewer than conventional %.1f",
			cat.MeanSecondPageRequests, conv.MeanSecondPageRequests)
	}
	if CrossPageTable(rows) == "" {
		t.Error("empty table")
	}
}

// TestSweepDeterministic guards against nondeterminism leaking in through
// goroutine scheduling, map iteration, or hidden randomness: the same
// configuration must produce bit-identical aggregates.
func TestSweepDeterministic(t *testing.T) {
	cfg := Config{
		Corpus: webgen.Params{Sites: 3, Seed: 11, Scale: 0.3},
		Grid:   []netsim.Conditions{Median5G()},
		Delays: []time.Duration{time.Hour},
	}
	a, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4 // different parallelism must not change results
	b, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.OverallReduction != b.OverallReduction {
		t.Fatalf("nondeterministic sweep: %v vs %v", a.OverallReduction, b.OverallReduction)
	}
	for i := range a.Cells {
		if a.Cells[i].MeanReductionPct != b.Cells[i].MeanReductionPct {
			t.Fatalf("cell %d differs: %v vs %v", i, a.Cells[i].MeanReductionPct, b.Cells[i].MeanReductionPct)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := quickCfg()
	cfg.Grid = nil
	if _, err := RunFig3(cfg); err == nil {
		t.Error("empty grid accepted")
	}
	cfg = quickCfg()
	cfg.Delays = []time.Duration{time.Hour, time.Hour}
	if _, err := RunFig3(cfg); err == nil {
		t.Error("non-increasing delays accepted")
	}
	cfg = quickCfg()
	cfg.Delays = nil
	if _, err := RunFig3(cfg); err == nil {
		t.Error("empty delays accepted")
	}
}

func TestSchemeStrings(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeConventional: "conventional", SchemeCatalyst: "catalyst",
		SchemeCatalystRecord: "catalyst+record", SchemeCatalystFull: "catalyst+record+xo",
		SchemeServerPush: "server-push",
		SchemeRDR:        "rdr-proxy", Scheme(99): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("Scheme(%d) = %q, want %q", s, got, want)
		}
	}
}

func TestShortDur(t *testing.T) {
	for d, want := range map[time.Duration]string{
		time.Minute:        "1m",
		time.Hour:          "1h",
		6 * time.Hour:      "6h",
		24 * time.Hour:     "1d",
		7 * 24 * time.Hour: "1w",
		90 * time.Second:   "1m30s",
	} {
		if got := shortDur(d); got != want {
			t.Errorf("shortDur(%v) = %q, want %q", d, got, want)
		}
	}
}
