package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/stats"
	"cachecatalyst/internal/webgen"
)

// MatrixConfig parameterizes a scheme-matrix run: every scheme in Schemes
// crosses every grid condition, each measured over the corpus and the
// revisit delays.
type MatrixConfig struct {
	// Corpus selects the synthetic site corpus. A positive BrokenFrac
	// gives the negative-caching scheme something to cache: references
	// deployed before their assets.
	Corpus webgen.Params
	// Transport is the browser connection model.
	Transport netsim.TransportOptions
	// Grid is the network-condition axis.
	Grid []netsim.Conditions
	// Delays are the warm revisit points, cumulative from the cold load.
	Delays []time.Duration
	// Schemes are the columns; defaults to MatrixSchemes when empty.
	Schemes []Scheme
	// Parallelism bounds concurrent measurement worlds; ≤0 means
	// GOMAXPROCS.
	Parallelism int
}

// QuickMatrixConfig is a small matrix that still exercises every scheme
// across four corner conditions — the configuration behind the committed
// EXPERIMENTS.md table and the golden test.
func QuickMatrixConfig() MatrixConfig {
	return MatrixConfig{
		Corpus: webgen.Params{Sites: 3, Seed: 7, Scale: 0.35, BrokenFrac: 0.15},
		Grid: []netsim.Conditions{
			{RTT: 10 * time.Millisecond, DownlinkBps: 8e6},
			{RTT: 80 * time.Millisecond, DownlinkBps: 8e6},
			{RTT: 10 * time.Millisecond, DownlinkBps: 60e6},
			{RTT: 80 * time.Millisecond, DownlinkBps: 60e6},
		},
		Delays: []time.Duration{time.Hour, 24 * time.Hour},
	}
}

// MatrixCell aggregates one (condition, scheme) combination over
// sites × delays.
type MatrixCell struct {
	Scheme Scheme
	Cond   netsim.Conditions
	// MeanColdPLT averages the cold (first-visit) loads across sites.
	MeanColdPLT time.Duration
	// MeanWarmPLT / MeanWarmFCP average the revisit loads.
	MeanWarmPLT time.Duration
	MeanWarmFCP time.Duration
	// MeanWarmBytes / MeanWarmRequests are per-revisit wire cost.
	MeanWarmBytes    float64
	MeanWarmRequests float64
	// MeanErrors counts failed resources per revisit (broken references).
	MeanErrors float64
	// VsConventionalPct is the warm-PLT reduction relative to the
	// conventional scheme in the same condition (positive = faster);
	// zero when the matrix does not include the conventional column.
	VsConventionalPct float64
	Samples           int
}

// MatrixResult is the full scheme × condition grid.
type MatrixResult struct {
	Schemes []Scheme
	// Cells[condIdx][schemeIdx], both in config order.
	Cells [][]MatrixCell
}

// Cell returns the cell for a scheme and condition, if present.
func (r *MatrixResult) Cell(scheme Scheme, cond netsim.Conditions) (MatrixCell, bool) {
	for _, row := range r.Cells {
		for _, c := range row {
			if c.Scheme == scheme && c.Cond == cond {
				return c, true
			}
		}
	}
	return MatrixCell{}, false
}

func (c MatrixConfig) validate() error {
	if len(c.Grid) == 0 {
		return fmt.Errorf("harness: empty network grid")
	}
	if len(c.Delays) == 0 {
		return fmt.Errorf("harness: no revisit delays")
	}
	for i := 1; i < len(c.Delays); i++ {
		if c.Delays[i] <= c.Delays[i-1] {
			return fmt.Errorf("harness: delays must be strictly increasing")
		}
	}
	if len(c.Schemes) == 0 {
		return fmt.Errorf("harness: no schemes")
	}
	return nil
}

// matrixTrial is one (condition, scheme, site) measurement: the per-delay
// warm samples plus the cold load.
type matrixTrial struct {
	coldPLT  time.Duration
	warmPLT  []float64
	warmFCP  []float64
	warmByte []float64
	warmReq  []float64
	warmErr  []float64
}

// RunSchemeMatrix runs the matrix without cancellation.
func RunSchemeMatrix(cfg MatrixConfig) (*MatrixResult, error) {
	return RunSchemeMatrixContext(context.Background(), cfg)
}

// RunSchemeMatrixContext measures every scheme across the grid. Each
// (condition, scheme, site) trial runs its own world — cold load at the
// epoch, then a warm load at each revisit delay — so schemes see identical
// content trajectories and results are independent of scheduling.
// Cancelling ctx stops the run promptly and leaves no goroutines behind.
func RunSchemeMatrixContext(ctx context.Context, cfg MatrixConfig) (*MatrixResult, error) {
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = MatrixSchemes
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sites := cfg.Corpus.Sites
	if sites == 0 {
		sites = 100
		cfg.Corpus.Sites = sites
	}

	// Results are preallocated and indexed, never appended: workers write
	// disjoint slots, and aggregation order is fixed regardless of which
	// worker finishes first.
	trials := make([][][]*matrixTrial, len(cfg.Grid))
	for ci := range trials {
		trials[ci] = make([][]*matrixTrial, len(cfg.Schemes))
		for si := range trials[ci] {
			trials[ci][si] = make([]*matrixTrial, sites)
		}
	}

	type job struct{ condIdx, schemeIdx, siteIdx int }
	jobs := make(chan job)
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					fail(ctx.Err())
					continue // keep draining so the producer never blocks
				}
				out, err := runMatrixTrial(cfg, j.condIdx, j.schemeIdx, j.siteIdx)
				if err != nil {
					fail(err)
					continue
				}
				trials[j.condIdx][j.schemeIdx][j.siteIdx] = out
			}
		}()
	}
	for ci := range cfg.Grid {
		for si := range cfg.Schemes {
			for site := 0; site < sites; site++ {
				jobs <- job{ci, si, site}
			}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := &MatrixResult{Schemes: cfg.Schemes}
	convIdx := -1
	for si, s := range cfg.Schemes {
		if s == SchemeConventional {
			convIdx = si
		}
	}
	for ci, cond := range cfg.Grid {
		row := make([]MatrixCell, len(cfg.Schemes))
		for si, scheme := range cfg.Schemes {
			var cold, plt, fcp, bytes, reqs, errs []float64
			for _, tr := range trials[ci][si] {
				cold = append(cold, float64(tr.coldPLT))
				plt = append(plt, tr.warmPLT...)
				fcp = append(fcp, tr.warmFCP...)
				bytes = append(bytes, tr.warmByte...)
				reqs = append(reqs, tr.warmReq...)
				errs = append(errs, tr.warmErr...)
			}
			row[si] = MatrixCell{
				Scheme:           scheme,
				Cond:             cond,
				MeanColdPLT:      time.Duration(stats.Mean(cold)),
				MeanWarmPLT:      time.Duration(stats.Mean(plt)),
				MeanWarmFCP:      time.Duration(stats.Mean(fcp)),
				MeanWarmBytes:    stats.Mean(bytes),
				MeanWarmRequests: stats.Mean(reqs),
				MeanErrors:       stats.Mean(errs),
				Samples:          len(plt),
			}
		}
		if convIdx >= 0 {
			base := float64(row[convIdx].MeanWarmPLT)
			for si := range row {
				row[si].VsConventionalPct = stats.ReductionPercent(base, float64(row[si].MeanWarmPLT))
			}
		}
		res.Cells = append(res.Cells, row)
	}
	return res, nil
}

// runMatrixTrial measures one (condition, scheme, site) world: a cold load
// at the virtual epoch, then a warm load at each cumulative revisit delay.
func runMatrixTrial(cfg MatrixConfig, condIdx, schemeIdx, siteIdx int) (*matrixTrial, error) {
	cond := cfg.Grid[condIdx]
	w := NewWorld(cfg.Corpus, siteIdx, cfg.Schemes[schemeIdx], cfg.Transport)
	coldRes, err := w.Load(cond)
	if err != nil {
		return nil, err
	}
	tr := &matrixTrial{coldPLT: coldRes.PLT}
	prev := time.Duration(0)
	for _, d := range cfg.Delays {
		w.Advance(d - prev)
		prev = d
		warm, err := w.Load(cond)
		if err != nil {
			return nil, err
		}
		tr.warmPLT = append(tr.warmPLT, float64(warm.PLT))
		tr.warmFCP = append(tr.warmFCP, float64(warm.FCP))
		tr.warmByte = append(tr.warmByte, float64(warm.BytesDown))
		tr.warmReq = append(tr.warmReq, float64(warm.NetworkRequests))
		tr.warmErr = append(tr.warmErr, float64(warm.Errors))
	}
	return tr, nil
}
