package harness

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"time"

	"cachecatalyst/catalyst"
	"cachecatalyst/internal/cluster"
	"cachecatalyst/internal/resilience"
	"cachecatalyst/internal/telemetry"
	"cachecatalyst/internal/tenant"
)

// ClusterCell is a real-socket multi-instance cell: N edge instances —
// each the full catalystd serving stack (tenant resolver, middleware,
// per-tenant breakers, hot-map exchange) — fronting shared tenant
// origins, with a consistent-hash ring deciding which instance owns each
// page. It is the cluster counterpart of the single-process measurement
// worlds: where World drives one server on a virtual clock, ClusterCell
// drives several daemons over real HTTP so ring routing, gossip and
// node-death behavior are exercised for real.
type ClusterCell struct {
	// Instances are the edge nodes, alive or killed.
	Instances []*EdgeInstance
	// Ring maps page keys to instance IDs; Kill removes the node so
	// subsequent routing re-shards.
	Ring *EdgeRing
	// Tenants lists the tenant names the cell serves.
	Tenants []string

	origins []*httptest.Server
	client  *http.Client
}

// EdgeRing is the cell's view of the consistent-hash ring plus the
// instance lookup the router needs.
type EdgeRing struct {
	*cluster.Ring
	byID map[string]*EdgeInstance
}

// EdgeInstance is one edge node.
type EdgeInstance struct {
	// ID is the node's ring member name.
	ID string
	// URL is the node's base URL.
	URL string
	// Registry carries the node's telemetry — per-tenant counters,
	// exchange activity, middleware metrics.
	Registry *telemetry.Registry

	handler  atomic.Pointer[http.Handler]
	server   *httptest.Server
	exchange *cluster.Exchange
	stops    []func()
	dead     atomic.Bool
}

// Alive reports whether the instance still accepts connections.
func (e *EdgeInstance) Alive() bool { return !e.dead.Load() }

// ClusterCellOptions sizes the cell.
type ClusterCellOptions struct {
	// Instances is the edge node count. Zero selects 3, the smallest
	// cell where a node death leaves a quorum of distinct survivors.
	Instances int
	// Tenants is the tenant count. Zero selects 2 — the minimum that
	// exercises isolation.
	Tenants int
}

// cellOrigin serves one tenant's site: a set of HTML pages referencing a
// shared stylesheet, bodies tagged with the tenant name so cross-tenant
// leaks are detectable in the payload itself.
func cellOrigin(name string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/app.css":
			w.Header().Set("Content-Type", "text/css")
			fmt.Fprintf(w, "/* %s */ body{color:#000}", name)
		default:
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprintf(w, `<html><head><link rel="stylesheet" href="/app.css"></head><body>%s %s</body></html>`,
				name, r.URL.Path)
		}
	})
}

// NewClusterCell starts the origins and edge instances and wires the
// exchanges peer-to-peer. Close releases everything.
func NewClusterCell(opts ClusterCellOptions) (*ClusterCell, error) {
	nInst := opts.Instances
	if nInst <= 0 {
		nInst = 3
	}
	nTen := opts.Tenants
	if nTen <= 0 {
		nTen = 2
	}

	cell := &ClusterCell{client: &http.Client{Timeout: 5 * time.Second}}
	for i := 0; i < nTen; i++ {
		name := fmt.Sprintf("t%d", i)
		cell.Tenants = append(cell.Tenants, name)
		cell.origins = append(cell.origins, httptest.NewServer(cellOrigin(name)))
	}

	// Listeners first: every instance's exchange needs the others' URLs,
	// so the servers start on a swappable handler and the stacks are
	// installed once all addresses exist.
	ids := make([]string, nInst)
	for i := 0; i < nInst; i++ {
		inst := &EdgeInstance{ID: fmt.Sprintf("edge%d", i)}
		ids[i] = inst.ID
		inst.server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := inst.handler.Load(); h != nil {
				(*h).ServeHTTP(w, r)
				return
			}
			http.Error(w, "instance not ready", http.StatusServiceUnavailable)
		}))
		inst.URL = inst.server.URL
		cell.Instances = append(cell.Instances, inst)
	}

	for _, inst := range cell.Instances {
		var peers []string
		for _, other := range cell.Instances {
			if other != inst {
				peers = append(peers, other.URL)
			}
		}
		if err := cell.buildInstance(inst, peers); err != nil {
			cell.Close()
			return nil, err
		}
	}

	cell.Ring = &EdgeRing{Ring: cluster.NewRing(ids...), byID: make(map[string]*EdgeInstance, nInst)}
	for _, inst := range cell.Instances {
		cell.Ring.byID[inst.ID] = inst
	}
	return cell, nil
}

// buildInstance assembles one node's serving stack — the same layering
// buildConfigHandler gives the daemon.
func (c *ClusterCell) buildInstance(inst *EdgeInstance, peers []string) error {
	reg := telemetry.NewRegistry()
	inst.Registry = reg

	tenants := make([]*tenant.Tenant, len(c.Tenants))
	proxies := make(map[string]http.Handler, len(c.Tenants))
	for i, name := range c.Tenants {
		u, err := url.Parse(c.origins[i].URL)
		if err != nil {
			return err
		}
		t := &tenant.Tenant{Name: name, Hosts: []string{name + ".cell"}}
		t.Breaker = resilience.NewBreaker(resilience.BreakerOptions{
			FailureThreshold: 3,
			Cooldown:         50 * time.Millisecond,
			Telemetry:        reg,
			Name:             "tenant." + name + ".origin",
		})
		tenants[i] = t
		proxy := httputil.NewSingleHostReverseProxy(u)
		proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			w.WriteHeader(http.StatusBadGateway)
		}
		proxies[name] = proxy
	}
	resolver, err := tenant.NewResolver(tenants)
	if err != nil {
		return err
	}

	inst.exchange = cluster.NewExchange(cluster.ExchangeOptions{
		Instance:  inst.ID,
		Peers:     peers,
		Telemetry: reg,
	})

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t, ok := tenant.FromContext(r.Context())
		if !ok {
			http.Error(w, "no tenant serves this host", http.StatusMisdirectedRequest)
			return
		}
		proxies[t.Name].ServeHTTP(w, r)
	})
	mw := catalyst.Middleware(inner, catalyst.MiddlewareOptions{
		Telemetry: reg,
		Exchange:  inst.exchange,
	})
	handler := inst.exchange.Mount(tenant.Handler(resolver, reg, mw))
	inst.handler.Store(&handler)
	return nil
}

// Get routes one request through the ring: the page's owner serves it,
// and if the owner is dead the request fails over to the next owner in
// preference order — the client-side half of the consistent-hashing
// story. Returns the status, body, response header and the ID of the
// instance that served.
func (c *ClusterCell) Get(tenantName, path string) (status int, body []byte, hdr http.Header, servedBy string, err error) {
	owners := c.Ring.OwnerN(tenantName+path, c.Ring.Len())
	if len(owners) == 0 {
		return 0, nil, nil, "", fmt.Errorf("cluster cell: empty ring")
	}
	var lastErr error
	for _, id := range owners {
		inst := c.Ring.byID[id]
		if inst == nil || !inst.Alive() {
			continue
		}
		status, body, hdr, err = c.getFrom(inst, tenantName, path)
		if err == nil {
			return status, body, hdr, inst.ID, nil
		}
		lastErr = err
	}
	return 0, nil, nil, "", fmt.Errorf("cluster cell: no live owner for %s%s: %w", tenantName, path, lastErr)
}

// GetFrom sends one request to a specific instance, bypassing the ring —
// how tests steer traffic at a non-owner to observe the hot-map exchange.
func (c *ClusterCell) GetFrom(id, tenantName, path string) (int, []byte, http.Header, error) {
	inst := c.Ring.byID[id]
	if inst == nil {
		return 0, nil, nil, fmt.Errorf("cluster cell: no instance %q", id)
	}
	return c.getFrom(inst, tenantName, path)
}

func (c *ClusterCell) getFrom(inst *EdgeInstance, tenantName, path string) (int, []byte, http.Header, error) {
	req, err := http.NewRequest(http.MethodGet, inst.URL+path, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	// The Host header is the tenant routing key, exactly as a front tier
	// would present it.
	req.Host = tenantName + ".cell"
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, body, resp.Header, nil
}

// Kill stops one instance mid-run — the chaos step. The node's listener
// closes (in-flight connections reset, like a crash) and the ring drops
// the member so routing re-shards; the node's caches die with it.
func (c *ClusterCell) Kill(id string) {
	inst := c.Ring.byID[id]
	if inst == nil || !inst.Alive() {
		return
	}
	inst.dead.Store(true)
	inst.server.Close()
	inst.exchange.Close()
	for _, stop := range inst.stops {
		stop()
	}
	c.Ring.Remove(id)
}

// Snapshot returns one instance's telemetry snapshot.
func (c *ClusterCell) Snapshot(id string) telemetry.Snapshot {
	return c.Ring.byID[id].Registry.Snapshot()
}

// HitRatio aggregates a tenant's warm-serve hit ratio across the cell's
// live instances: hot-index and render-cache hits over the tenant's
// requests, read from each node's "tenant.<name>.*" counters.
func (c *ClusterCell) HitRatio(tenantName string) float64 {
	var hits, requests int64
	for _, inst := range c.Instances {
		if !inst.Alive() {
			continue
		}
		snap := inst.Registry.Snapshot()
		hits += snap.Counters["tenant."+tenantName+".hot.hits"] + snap.Counters["tenant."+tenantName+".renders.hits"]
		requests += snap.Counters["tenant."+tenantName+".requests"]
	}
	if requests == 0 {
		return 0
	}
	return float64(hits) / float64(requests)
}

// Close tears the cell down: instances first (their exchanges stop
// gossiping), then the shared origins.
func (c *ClusterCell) Close() {
	for _, inst := range c.Instances {
		if inst.Alive() {
			inst.dead.Store(true)
			inst.server.Close()
			if inst.exchange != nil {
				inst.exchange.Close()
			}
			for _, stop := range inst.stops {
				stop()
			}
		}
	}
	for _, o := range c.origins {
		o.Close()
	}
}
