package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"
)

// Table renders the sweep as the Figure-3 matrix: one row per condition,
// one column per revisit delay, plus the per-condition mean — the series
// the paper plots as grouped bars.
func (r *SweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PLT reduction of %s vs %s (%% — positive = faster)\n", r.Treatment, r.Base)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	if len(r.Cells) > 0 {
		fmt.Fprint(w, "condition")
		for _, dp := range r.Cells[0].ByDelay {
			fmt.Fprintf(w, "\t+%s", shortDur(dp.Delay))
		}
		fmt.Fprint(w, "\tmean\tspread\n")
	}
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%s", c.Cond)
		for _, dp := range c.ByDelay {
			fmt.Fprintf(w, "\t%5.1f", dp.MeanReductionPct)
		}
		fmt.Fprintf(w, "\t%5.1f\t[p10 %4.1f, p90 %4.1f]\n",
			c.MeanReductionPct, c.P10ReductionPct, c.P90ReductionPct)
	}
	w.Flush()
	fmt.Fprintf(&b, "overall mean reduction: %.1f%%\n", r.OverallReduction)
	return b.String()
}

// Table renders the headline numbers.
func (r *HeadlineResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mean PLT reduction at 5G median (60Mbps/40ms): %.1f%%\n", r.Median5GReduction)
	fmt.Fprintf(&b, "mean PLT reduction across the grid:            %.1f%% (paper: ~30%%)\n", r.OverallReduction)
	return b.String()
}

// BaselineTable renders the §5 scheme comparison.
func BaselineTable(rows []BaselineRow, delay time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheme comparison (revisit after %s)\n", shortDur(delay))
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tcold PLT\twarm PLT\tcold KB\twarm KB\twarm reqs\twarm local\tpushed unused")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.0f\t%.0f\t%.1f\t%.1f\t%.1f\n",
			r.Scheme, msDur(r.MeanColdPLT), msDur(r.MeanWarmPLT),
			r.MeanColdBytes/1024, r.MeanWarmBytes/1024,
			r.MeanWarmRequests, r.MeanWarmLocalHits, r.MeanPushedUnused)
	}
	w.Flush()
	return b.String()
}

// Table renders the header-overhead ablation.
func (r *OverheadResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "X-Etag-Config overhead: mean %.0f entries, %.0f bytes/navigation\n",
		r.MeanEntries, r.MeanMapBytes)
	fmt.Fprintf(&b, "share of navigation response: %.1f%% (HTML mean %.0f bytes)\n",
		r.OverheadFraction*100, r.MeanNavBytes)
	return b.String()
}

// CrossPageTable renders the intra-site navigation comparison.
func CrossPageTable(rows []CrossPageRow) string {
	var b strings.Builder
	b.WriteString("second-page navigation right after a cold homepage load\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\t2nd-page PLT\trequests\tlocal")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\n",
			r.Scheme, msDur(r.MeanSecondPagePLT), r.MeanSecondPageRequests, r.MeanSecondPageLocalHits)
	}
	w.Flush()
	return b.String()
}

// CoverageTable renders the coverage ablation.
func CoverageTable(rows []CoverageRow) string {
	var b strings.Builder
	b.WriteString("map coverage on an unchanged revisit (+1min)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\twarm reqs\twarm local\tcovered")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f%%\n",
			r.Scheme, r.MeanWarmRequests, r.MeanWarmLocalHits, r.CoveredFraction*100)
	}
	w.Flush()
	return b.String()
}

// MatrixTable renders the scheme × condition matrix, one block per network
// condition: the Figure-3-style per-scheme comparison the conformance
// suite pins with a golden file. Positive Δ means faster than the
// conventional scheme in the same condition.
func MatrixTable(r *MatrixResult) string {
	var b strings.Builder
	b.WriteString("scheme matrix: warm revisits, averaged over sites x delays\n")
	for _, row := range r.Cells {
		if len(row) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n[%s]\n", row[0].Cond)
		w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
		fmt.Fprintln(w, "scheme\tcold PLT\twarm PLT\twarm FCP\twarm KB\twarm reqs\terrs\tΔ vs conv")
		for _, c := range row {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.0f\t%.1f\t%.1f\t%+.1f%%\n",
				c.Scheme, msDur(c.MeanColdPLT), msDur(c.MeanWarmPLT), msDur(c.MeanWarmFCP),
				c.MeanWarmBytes/1024, c.MeanWarmRequests, c.MeanErrors, c.VsConventionalPct)
		}
		w.Flush()
	}
	return b.String()
}

// shortDur renders durations the way the paper labels delays (1m, 1h, 6h,
// 1d, 1w).
func shortDur(d time.Duration) string {
	day := 24 * time.Hour
	switch {
	case d >= 7*day && d%(7*day) == 0:
		return fmt.Sprintf("%dw", d/(7*day))
	case d >= day && d%day == 0:
		return fmt.Sprintf("%dd", d/day)
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return d.String()
	}
}

// msDur renders a duration in whole milliseconds.
func msDur(d time.Duration) string {
	return fmt.Sprintf("%dms", d.Milliseconds())
}
