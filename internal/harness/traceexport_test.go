package harness

import (
	"testing"

	"cachecatalyst/internal/cachesim"
	"cachecatalyst/internal/cachestore"
	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/webgen"
	"time"
)

func exportTestConfig() Config {
	return Config{
		Corpus:    webgen.Params{Sites: 2, Seed: 1, Scale: 0.3},
		Grid:      []netsim.Conditions{{RTT: 40 * time.Millisecond, DownlinkBps: 60e6}},
		Delays:    []time.Duration{time.Hour},
		Transport: netsim.TransportOptions{},
	}
}

func TestExportTraceReplayable(t *testing.T) {
	trace, err := ExportTrace(exportTestConfig())
	if err != nil {
		t.Fatalf("ExportTrace: %v", err)
	}
	if len(trace) == 0 {
		t.Fatal("exported trace is empty")
	}

	// Revisits re-request the same subresources, so the trace must show
	// reuse: strictly fewer distinct ids than requests.
	ids := make(map[uint64]bool)
	for i, req := range trace {
		if req.Size <= 0 {
			t.Fatalf("request %d has size %d", i, req.Size)
		}
		if i > 0 && req.Time < trace[i-1].Time {
			t.Fatalf("request %d time %d precedes predecessor %d", i, req.Time, trace[i-1].Time)
		}
		ids[req.ID] = true
	}
	if len(ids) >= len(trace) {
		t.Fatalf("no reuse in trace: %d ids across %d requests", len(ids), len(trace))
	}

	// The exported workload must be meaningful to the simulator: a
	// positive offline bound and a replayable stream.
	budget := int64(0)
	for _, req := range trace {
		budget += req.Size
	}
	budget /= 3
	ub := cachesim.UpperBound(trace, budget)
	if ub.OHR() <= 0 || ub.BHR() <= 0 {
		t.Fatalf("degenerate upper bound: OHR %v BHR %v", ub.OHR(), ub.BHR())
	}
	res := cachesim.Replay(trace, budget, cachestore.Policy{Eviction: cachestore.GDSF()})
	if res.Hits == 0 {
		t.Error("GDSF replay of exported trace scored zero hits")
	}
	if res.OHR() > ub.OHR()+1e-9 {
		t.Errorf("replay OHR %v exceeds bound %v", res.OHR(), ub.OHR())
	}
}

func TestExportTraceDeterministic(t *testing.T) {
	a, err := ExportTrace(exportTestConfig())
	if err != nil {
		t.Fatalf("ExportTrace: %v", err)
	}
	b, err := ExportTrace(exportTestConfig())
	if err != nil {
		t.Fatalf("ExportTrace: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ across identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
