// Package harness runs the paper's experiments: it wires corpus sites,
// servers, baselines and emulated browsers into measurement worlds, sweeps
// the network-condition grid and revisit delays of §4, and aggregates the
// rows and series behind every figure the paper reports (plus the ablations
// DESIGN.md calls out).
package harness

import (
	"fmt"
	"net/url"
	"time"

	"cachecatalyst/internal/baselines"
	"cachecatalyst/internal/browser"
	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/vclock"
	"cachecatalyst/internal/webgen"
)

// Scheme identifies a complete client+server configuration under test.
type Scheme int

// Schemes.
const (
	// SchemeConventional is the status quo: plain server, RFC 9111 cache.
	SchemeConventional Scheme = iota
	// SchemeCatalyst is the paper's preliminary implementation: static
	// DOM/CSS extraction only.
	SchemeCatalyst
	// SchemeCatalystRecord adds the §3 recording alternative, covering
	// JS-discovered resources on revisits.
	SchemeCatalystRecord
	// SchemeCatalystFull adds, on top of recording, the §6 cross-origin
	// extension: the server resolves third-party ETags itself, so the map
	// also covers CDN-hosted resources.
	SchemeCatalystFull
	// SchemeServerPush is HTTP/2 push with the push-all policy.
	SchemeServerPush
	// SchemeRDR is a remote-dependency-resolution proxy.
	SchemeRDR
	// SchemeEarlyHints is the conventional client consuming 103 Early
	// Hints: the server advertises the page's subresources as preload
	// links delivered ahead of the HTML body.
	SchemeEarlyHints
	// SchemeCatalystDelta is catalyst+record plus delta-encoded
	// navigations: stale page revisits transfer a CCD1 patch against the
	// client's cached copy instead of the full document.
	SchemeCatalystDelta
	// SchemeNegativeCache is catalyst+record plus client-side negative
	// caching: complete 404s are answered locally within NegativeTTL, and
	// the X-Etag-Config map evicts a cached 404 the moment the resource
	// appears.
	SchemeNegativeCache
)

func (s Scheme) String() string {
	switch s {
	case SchemeConventional:
		return "conventional"
	case SchemeCatalyst:
		return "catalyst"
	case SchemeCatalystRecord:
		return "catalyst+record"
	case SchemeCatalystFull:
		return "catalyst+record+xo"
	case SchemeServerPush:
		return "server-push"
	case SchemeRDR:
		return "rdr-proxy"
	case SchemeEarlyHints:
		return "early-hints"
	case SchemeCatalystDelta:
		return "catalyst-delta"
	case SchemeNegativeCache:
		return "negative-cache"
	}
	return "unknown"
}

// AllSchemes lists every scheme, in reporting order.
var AllSchemes = []Scheme{
	SchemeConventional, SchemeCatalyst, SchemeCatalystRecord,
	SchemeCatalystFull, SchemeServerPush, SchemeRDR,
	SchemeEarlyHints, SchemeCatalystDelta, SchemeNegativeCache,
}

// MatrixSchemes are the six schemes of the conformance matrix, in
// reporting order.
var MatrixSchemes = []Scheme{
	SchemeConventional, SchemeCatalyst, SchemeServerPush,
	SchemeEarlyHints, SchemeCatalystDelta, SchemeNegativeCache,
}

// NegativeTTL is the client-side negative-caching lifetime used by
// SchemeNegativeCache.
const NegativeTTL = time.Hour

// RDRProxyThink is the per-request origin-side processing charged under
// SchemeRDR, standing in for the proxy's dependency resolution over its
// low-latency path to the origin.
const RDRProxyThink = 5 * time.Millisecond

// World couples one site instance (on its own virtual clock) with a server
// stack and a browser under one scheme. Every world starts at the same
// virtual epoch, so content trajectories are identical across schemes —
// paired comparisons see the same versions of every resource.
type World struct {
	Scheme  Scheme
	Site    *webgen.Site
	Clock   *vclock.Virtual
	Browser *browser.Browser
	Origins browser.OriginMap
	Server  *server.Server
}

// NewWorld builds the world for one (site, scheme) pair.
func NewWorld(p webgen.Params, siteIndex int, scheme Scheme, transport netsim.TransportOptions) *World {
	clock := vclock.NewVirtual(vclock.Epoch)
	site := webgen.GenerateOne(p, siteIndex, clock)

	srvOpts := server.Options{Clock: clock}
	mode := browser.Conventional
	wrap := func(o netsim.Origin) netsim.Origin { return o }
	switch scheme {
	case SchemeCatalyst:
		srvOpts.Catalyst = true
		mode = browser.Catalyst
	case SchemeCatalystRecord:
		srvOpts.Catalyst = true
		srvOpts.Record = true
		mode = browser.Catalyst
	case SchemeCatalystFull:
		srvOpts.Catalyst = true
		srvOpts.Record = true
		mode = browser.Catalyst
		// The main server resolves third-party ETags by consulting the
		// CDN origin — the §6 "fetch those resources itself" strategy.
		cdnContent := site.CDNContent()
		srvOpts.MapOptions.CrossOriginETag = func(absURL string) (etag.Tag, bool) {
			u, err := url.Parse(absURL)
			if err != nil || u.Host != site.CDNHost {
				return etag.Tag{}, false
			}
			p := u.EscapedPath()
			if u.RawQuery != "" {
				p += "?" + u.RawQuery
			}
			res, ok := cdnContent.Get(p)
			if !ok {
				return etag.Tag{}, false
			}
			return res.ETag, true
		}
	case SchemeServerPush:
		srvOpts.Catalyst = true // the map header doubles as the push manifest
		mode = browser.Bundled
		wrap = func(o netsim.Origin) netsim.Origin { return baselines.NewBundleOrigin(o, baselines.PushAll) }
	case SchemeRDR:
		srvOpts.Catalyst = true
		mode = browser.Bundled
		wrap = func(o netsim.Origin) netsim.Origin { return baselines.NewBundleOrigin(o, baselines.RDR) }
		transport.ServerThink += RDRProxyThink
	case SchemeEarlyHints:
		srvOpts.EarlyHints = true
		mode = browser.EarlyHints
	case SchemeCatalystDelta:
		srvOpts.Catalyst = true
		srvOpts.Record = true
		srvOpts.Delta = true
		mode = browser.Catalyst
	case SchemeNegativeCache:
		srvOpts.Catalyst = true
		srvOpts.Record = true
		mode = browser.Catalyst
	}

	b := browser.New(clock, mode, transport)
	switch scheme {
	case SchemeCatalystDelta:
		b.WithDelta()
	case SchemeNegativeCache:
		b.WithNegativeCache(NegativeTTL)
	}

	srv := server.New(site.Content(), srvOpts)
	cdn := server.New(site.CDNContent(), server.Options{Clock: clock})
	return &World{
		Scheme:  scheme,
		Site:    site,
		Clock:   clock,
		Browser: b,
		Origins: browser.OriginMap{
			site.Host:    wrap(server.NewOrigin(srv)),
			site.CDNHost: server.NewOrigin(cdn),
		},
		Server: srv,
	}
}

// Load performs one navigation to the site's homepage.
func (w *World) Load(cond netsim.Conditions) (browser.LoadResult, error) {
	return w.Browser.Load(w.Origins, cond, w.Site.Host, webgen.PagePath)
}

// LoadPage navigates to an arbitrary page on the site.
func (w *World) LoadPage(cond netsim.Conditions, path string) (browser.LoadResult, error) {
	return w.Browser.Load(w.Origins, cond, w.Site.Host, path)
}

// Advance moves the world's virtual clock forward — the "advance the system
// clock between visits" step of the paper's methodology.
func (w *World) Advance(d time.Duration) { w.Clock.Advance(d) }

// Config parameterizes an experiment run.
type Config struct {
	// Corpus selects the synthetic site corpus.
	Corpus webgen.Params
	// Transport is the browser connection model.
	Transport netsim.TransportOptions
	// Grid is the network-condition sweep (Figure 3's axes).
	Grid []netsim.Conditions
	// Delays are the revisit points, measured from the cold load
	// (cumulative, matching §4: reload after 1 min, again at 1 h, …).
	Delays []time.Duration
	// Parallelism bounds concurrent measurement worlds; ≤0 means
	// GOMAXPROCS.
	Parallelism int
}

// PaperDelays are the revisit delays of §4.
func PaperDelays() []time.Duration {
	return []time.Duration{
		time.Minute, time.Hour, 6 * time.Hour, 24 * time.Hour, 7 * 24 * time.Hour,
	}
}

// PaperGrid is the throughput × latency sweep of Figure 3: 8/20/60 Mbps
// downlink against 10/20/40/80 ms RTT. 60 Mbps / 40 ms is the global-median
// 5G condition the paper highlights.
func PaperGrid() []netsim.Conditions {
	var grid []netsim.Conditions
	for _, mbps := range []float64{8, 20, 60} {
		for _, ms := range []int{10, 20, 40, 80} {
			grid = append(grid, netsim.Conditions{
				RTT:         time.Duration(ms) * time.Millisecond,
				DownlinkBps: mbps * 1e6,
			})
		}
	}
	return grid
}

// Median5G is the condition the paper quotes as the global 5G median.
func Median5G() netsim.Conditions {
	return netsim.Conditions{RTT: 40 * time.Millisecond, DownlinkBps: 60e6}
}

// DefaultConfig reproduces the paper's full scale: 100 sites, the full
// grid, all five delays.
func DefaultConfig() Config {
	return Config{
		Corpus: webgen.Params{Sites: 100, Seed: 1},
		Grid:   PaperGrid(),
		Delays: PaperDelays(),
	}
}

// QuickConfig is a scaled-down configuration for tests and smoke runs.
func QuickConfig() Config {
	return Config{
		Corpus: webgen.Params{Sites: 6, Seed: 1, Scale: 0.4},
		Grid: []netsim.Conditions{
			{RTT: 40 * time.Millisecond, DownlinkBps: 8e6},
			{RTT: 40 * time.Millisecond, DownlinkBps: 60e6},
		},
		Delays: []time.Duration{time.Hour, 24 * time.Hour},
	}
}

func (c Config) validate() error {
	if len(c.Grid) == 0 {
		return fmt.Errorf("harness: empty network grid")
	}
	if len(c.Delays) == 0 {
		return fmt.Errorf("harness: no revisit delays")
	}
	for i := 1; i < len(c.Delays); i++ {
		if c.Delays[i] <= c.Delays[i-1] {
			return fmt.Errorf("harness: delays must be strictly increasing")
		}
	}
	return nil
}
