package harness

import (
	"fmt"

	"cachecatalyst/internal/cachesim"
	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/webgen"
)

// ExportTrace drives catalyst worlds over the configured corpus and
// revisit schedule and returns every Service-Worker subresource access as
// a webcachesim-format trace (see internal/cachesim). One recorder spans
// all sites, so the trace mixes origins the way a shared cache would see
// them — cold loads contribute the one-hit-wonder tail, revisits the
// popular core, and both pages of each site the intra-site reuse.
//
// The export exists to close the measurement loop: cmd/cachesim replays
// the returned trace through any cachestore policy and scores it against
// the offline optimal bound, so policy choices for the real stores are
// grounded in the workload the emulated system actually generates.
func ExportTrace(cfg Config) ([]cachesim.Request, error) {
	if len(cfg.Grid) == 0 {
		return nil, fmt.Errorf("harness: config has no network conditions")
	}
	cond := cfg.Grid[0]
	rec := cachesim.NewRecorder()
	for site := 0; site < cfg.Corpus.Sites; site++ {
		w := NewWorld(cfg.Corpus, site, SchemeCatalyst, cfg.Transport)
		w.Browser.WithAccessRecorder(rec)
		if err := loadTraceVisits(w, cond, cfg); err != nil {
			return nil, err
		}
	}
	return rec.Trace(), nil
}

// loadTraceVisits performs the cold visit and every configured revisit,
// touching both generated pages per visit so the trace carries cross-page
// reuse (shared assets appear under multiple navigations).
func loadTraceVisits(w *World, cond netsim.Conditions, cfg Config) error {
	visit := func() error {
		if _, err := w.Load(cond); err != nil {
			return fmt.Errorf("harness: site %s: %w", w.Site.Host, err)
		}
		if _, err := w.LoadPage(cond, webgen.SecondaryPagePath); err != nil {
			return fmt.Errorf("harness: site %s: %w", w.Site.Host, err)
		}
		return nil
	}
	if err := visit(); err != nil {
		return err
	}
	for _, d := range cfg.Delays {
		w.Advance(d)
		if err := visit(); err != nil {
			return err
		}
	}
	return nil
}
