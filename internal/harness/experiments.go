package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/stats"
	"cachecatalyst/internal/webgen"
)

// DelayPoint is one revisit-delay slice of a sweep cell.
type DelayPoint struct {
	Delay            time.Duration
	MeanReductionPct float64
}

// Cell aggregates one network condition of a paired sweep.
type Cell struct {
	Cond netsim.Conditions
	// MeanReductionPct is the average PLT reduction of the treatment
	// scheme relative to the baseline over sites × delays (Figure 3's bar
	// height).
	MeanReductionPct float64
	// P10/P90ReductionPct bound the per-(site, delay) spread: a scheme
	// whose mean hides regressions on some sites shows it here.
	P10ReductionPct, P90ReductionPct float64
	// FCPReductionPct is the mean First-Contentful-Paint reduction — the
	// user-experience metric the paper defers to future work.
	FCPReductionPct float64
	ByDelay         []DelayPoint
	// MeanBasePLT / MeanTreatPLT are mean warm-load PLTs.
	MeanBasePLT, MeanTreatPLT time.Duration
	Samples                   int
}

// SweepResult is a full paired sweep (e.g. Figure 3).
type SweepResult struct {
	Base, Treatment  Scheme
	Cells            []Cell
	OverallReduction float64
}

// RunFig3 reproduces Figure 3: conventional caching vs CacheCatalyst over
// the throughput × latency grid, averaged over the corpus and the revisit
// delays.
func RunFig3(cfg Config) (*SweepResult, error) {
	return RunPairedSweep(cfg, SchemeConventional, SchemeCatalyst)
}

// RunPairedSweep measures the PLT reduction of treatment over base for
// every grid condition. For each (site, condition) pair both schemes load
// the page cold at the virtual epoch and then reload at each delay; the
// virtual clocks advance identically, so both schemes see identical content
// trajectories and the comparison is paired.
func RunPairedSweep(cfg Config, base, treatment Scheme) (*SweepResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := cfg.Corpus.Sites
	if p == 0 {
		p = 100
	}

	type job struct{ condIdx, siteIdx int }

	jobs := make(chan job)
	samplesCh := make(chan []sampleOut)
	var wg sync.WaitGroup
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var firstErr error
	var errOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out, err := runPairedTrial(cfg, base, treatment, j.condIdx, j.siteIdx)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				samplesCh <- out
			}
		}()
	}
	go func() {
		for condIdx := range cfg.Grid {
			for siteIdx := 0; siteIdx < p; siteIdx++ {
				jobs <- job{condIdx, siteIdx}
			}
		}
		close(jobs)
		wg.Wait()
		close(samplesCh)
	}()

	// reductions[cond][delay] accumulates per-site samples.
	reductions := make([][][]float64, len(cfg.Grid))
	fcpReductions := make([][]float64, len(cfg.Grid))
	basePLTs := make([][]float64, len(cfg.Grid))
	treatPLTs := make([][]float64, len(cfg.Grid))
	for i := range reductions {
		reductions[i] = make([][]float64, len(cfg.Delays))
	}
	for batch := range samplesCh {
		for _, s := range batch {
			reductions[s.condIdx][s.delayIdx] = append(reductions[s.condIdx][s.delayIdx], s.reduction)
			fcpReductions[s.condIdx] = append(fcpReductions[s.condIdx], s.fcpReduction)
			basePLTs[s.condIdx] = append(basePLTs[s.condIdx], float64(s.basePLT))
			treatPLTs[s.condIdx] = append(treatPLTs[s.condIdx], float64(s.treatPLT))
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	res := &SweepResult{Base: base, Treatment: treatment}
	var all []float64
	for condIdx, cond := range cfg.Grid {
		cell := Cell{Cond: cond}
		var condAll []float64
		for delayIdx, d := range cfg.Delays {
			xs := reductions[condIdx][delayIdx]
			cell.ByDelay = append(cell.ByDelay, DelayPoint{Delay: d, MeanReductionPct: stats.Mean(xs)})
			condAll = append(condAll, xs...)
		}
		cell.MeanReductionPct = stats.Mean(condAll)
		cell.P10ReductionPct = stats.Percentile(condAll, 10)
		cell.P90ReductionPct = stats.Percentile(condAll, 90)
		cell.FCPReductionPct = stats.Mean(fcpReductions[condIdx])
		cell.Samples = len(condAll)
		cell.MeanBasePLT = time.Duration(stats.Mean(basePLTs[condIdx]))
		cell.MeanTreatPLT = time.Duration(stats.Mean(treatPLTs[condIdx]))
		res.Cells = append(res.Cells, cell)
		all = append(all, condAll...)
	}
	res.OverallReduction = stats.Mean(all)
	return res, nil
}

// runPairedTrial runs one (condition, site) pair through both schemes.
func runPairedTrial(cfg Config, base, treatment Scheme, condIdx, siteIdx int) ([]sampleOut, error) {
	cond := cfg.Grid[condIdx]
	wBase := NewWorld(cfg.Corpus, siteIdx, base, cfg.Transport)
	wTreat := NewWorld(cfg.Corpus, siteIdx, treatment, cfg.Transport)

	// Cold loads at the epoch (not measured for the sweep; they warm the
	// client state, as in the paper's methodology).
	if _, err := wBase.Load(cond); err != nil {
		return nil, err
	}
	if _, err := wTreat.Load(cond); err != nil {
		return nil, err
	}

	var out []sampleOut
	prev := time.Duration(0)
	for delayIdx, d := range cfg.Delays {
		step := d - prev
		prev = d
		wBase.Advance(step)
		wTreat.Advance(step)
		rBase, err := wBase.Load(cond)
		if err != nil {
			return nil, err
		}
		rTreat, err := wTreat.Load(cond)
		if err != nil {
			return nil, err
		}
		out = append(out, sampleOut{
			condIdx:      condIdx,
			delayIdx:     delayIdx,
			reduction:    stats.ReductionPercent(float64(rBase.PLT), float64(rTreat.PLT)),
			fcpReduction: stats.ReductionPercent(float64(rBase.FCP), float64(rTreat.FCP)),
			basePLT:      rBase.PLT,
			treatPLT:     rTreat.PLT,
		})
	}
	return out, nil
}

type sampleOut struct {
	condIdx, delayIdx int
	reduction         float64
	fcpReduction      float64
	basePLT, treatPLT time.Duration
}

// HeadlineResult captures the abstract's claims.
type HeadlineResult struct {
	// Median5GReduction is the mean PLT reduction at the 60 Mbps / 40 ms
	// condition the paper calls the global 5G median.
	Median5GReduction float64
	// OverallReduction is the grid-wide mean (the paper's "average 30%").
	OverallReduction float64
	Sweep            *SweepResult
}

// RunHeadline computes the headline numbers from a Figure 3 sweep.
func RunHeadline(cfg Config) (*HeadlineResult, error) {
	sweep, err := RunFig3(cfg)
	if err != nil {
		return nil, err
	}
	res := &HeadlineResult{OverallReduction: sweep.OverallReduction, Sweep: sweep}
	want := Median5G()
	for _, c := range sweep.Cells {
		if c.Cond == want {
			res.Median5GReduction = c.MeanReductionPct
		}
	}
	return res, nil
}

// BaselineRow is one scheme's row in the §5 comparison.
type BaselineRow struct {
	Scheme            Scheme
	MeanColdPLT       time.Duration
	MeanWarmPLT       time.Duration
	MeanColdBytes     float64
	MeanWarmBytes     float64
	MeanWarmRequests  float64
	MeanWarmLocalHits float64
	MeanPushedUnused  float64
}

// RunBaselines compares all schemes at one condition and one revisit delay:
// the multifaceted comparison the paper defers to future work.
func RunBaselines(cfg Config, cond netsim.Conditions, delay time.Duration) ([]BaselineRow, error) {
	if cfg.Corpus.Sites == 0 {
		cfg.Corpus.Sites = 100
	}
	var rows []BaselineRow
	for _, scheme := range AllSchemes {
		var coldPLT, warmPLT, coldBytes, warmBytes, warmReqs, warmHits, unused []float64
		for siteIdx := 0; siteIdx < cfg.Corpus.Sites; siteIdx++ {
			w := NewWorld(cfg.Corpus, siteIdx, scheme, cfg.Transport)
			cold, err := w.Load(cond)
			if err != nil {
				return nil, err
			}
			w.Advance(delay)
			warm, err := w.Load(cond)
			if err != nil {
				return nil, err
			}
			coldPLT = append(coldPLT, float64(cold.PLT))
			warmPLT = append(warmPLT, float64(warm.PLT))
			coldBytes = append(coldBytes, float64(cold.BytesDown))
			warmBytes = append(warmBytes, float64(warm.BytesDown))
			warmReqs = append(warmReqs, float64(warm.NetworkRequests))
			warmHits = append(warmHits, float64(warm.LocalHits))
			unused = append(unused, float64(warm.PushedUnused))
		}
		rows = append(rows, BaselineRow{
			Scheme:            scheme,
			MeanColdPLT:       time.Duration(stats.Mean(coldPLT)),
			MeanWarmPLT:       time.Duration(stats.Mean(warmPLT)),
			MeanColdBytes:     stats.Mean(coldBytes),
			MeanWarmBytes:     stats.Mean(warmBytes),
			MeanWarmRequests:  stats.Mean(warmReqs),
			MeanWarmLocalHits: stats.Mean(warmHits),
			MeanPushedUnused:  stats.Mean(unused),
		})
	}
	return rows, nil
}

// OverheadResult quantifies the X-Etag-Config ablation: what the proactive
// tokens cost on the navigation response.
type OverheadResult struct {
	MeanEntries      float64
	MeanMapBytes     float64
	MeanNavBytes     float64
	OverheadFraction float64
}

// RunHeaderOverhead measures the ETag-map header cost across the corpus.
func RunHeaderOverhead(cfg Config) (*OverheadResult, error) {
	if cfg.Corpus.Sites == 0 {
		cfg.Corpus.Sites = 100
	}
	var entries, mapBytes, navBytes []float64
	for siteIdx := 0; siteIdx < cfg.Corpus.Sites; siteIdx++ {
		w := NewWorld(cfg.Corpus, siteIdx, SchemeCatalyst, cfg.Transport)
		cond := Median5G()
		if _, err := w.Load(cond); err != nil {
			return nil, err
		}
		m := w.Server.Metrics.MapBytes.Load()
		built := w.Server.Metrics.MapsBuilt.Load()
		if built == 0 {
			return nil, fmt.Errorf("harness: no maps built for site %d", siteIdx)
		}
		mapBytes = append(mapBytes, float64(m)/float64(built))
		// The worker's map size ≈ entry count.
		if worker, ok := w.Browser.Workers().Lookup(w.Site.Host); ok {
			entries = append(entries, float64(len(worker.ETagMap())))
		}
		page, _ := w.Site.Content().Get(webgen.PagePath)
		navBytes = append(navBytes, float64(len(page.Body)))
	}
	res := &OverheadResult{
		MeanEntries:  stats.Mean(entries),
		MeanMapBytes: stats.Mean(mapBytes),
		MeanNavBytes: stats.Mean(navBytes),
	}
	if res.MeanNavBytes > 0 {
		res.OverheadFraction = res.MeanMapBytes / (res.MeanMapBytes + res.MeanNavBytes)
	}
	return res, nil
}

// CrossPageRow reports one scheme's cross-page navigation cost.
type CrossPageRow struct {
	Scheme Scheme
	// MeanSecondPagePLT is the PLT of navigating to a second page right
	// after a cold homepage load.
	MeanSecondPagePLT time.Duration
	// MeanSecondPageRequests / LocalHits characterize how much of the
	// shared template the client could reuse.
	MeanSecondPageRequests  float64
	MeanSecondPageLocalHits float64
}

// RunCrossPage measures the paper's §1 intra-site reuse scenario: a user
// lands on the homepage (cold) and immediately navigates to a second page
// that shares the site template. The second page's ETag map lets a
// catalyst client reuse every shared asset with zero round trips, even the
// no-cache ones a conventional client must revalidate.
func RunCrossPage(cfg Config, cond netsim.Conditions) ([]CrossPageRow, error) {
	if cfg.Corpus.Sites == 0 {
		cfg.Corpus.Sites = 100
	}
	var rows []CrossPageRow
	for _, scheme := range []Scheme{SchemeConventional, SchemeCatalyst, SchemeCatalystRecord} {
		var plt, reqs, hits []float64
		for siteIdx := 0; siteIdx < cfg.Corpus.Sites; siteIdx++ {
			w := NewWorld(cfg.Corpus, siteIdx, scheme, cfg.Transport)
			if _, err := w.Load(cond); err != nil {
				return nil, err
			}
			second, err := w.LoadPage(cond, webgen.SecondaryPagePath)
			if err != nil {
				return nil, err
			}
			plt = append(plt, float64(second.PLT))
			reqs = append(reqs, float64(second.NetworkRequests))
			hits = append(hits, float64(second.LocalHits))
		}
		rows = append(rows, CrossPageRow{
			Scheme:                  scheme,
			MeanSecondPagePLT:       time.Duration(stats.Mean(plt)),
			MeanSecondPageRequests:  stats.Mean(reqs),
			MeanSecondPageLocalHits: stats.Mean(hits),
		})
	}
	return rows, nil
}

// CoverageRow is one scheme's row in the coverage ablation.
type CoverageRow struct {
	Scheme            Scheme
	MeanWarmRequests  float64
	MeanWarmLocalHits float64
	// CoveredFraction is the share of subresources served locally on a
	// warm, unchanged revisit — the map's effective coverage.
	CoveredFraction float64
}

// RunCoverage quantifies the static-extraction coverage gap (JS-discovered
// resources) and how the recording extension closes it. The revisit
// happens after one minute, when essentially nothing has changed, so every
// network request on the warm load is a coverage miss.
func RunCoverage(cfg Config, cond netsim.Conditions) ([]CoverageRow, error) {
	if cfg.Corpus.Sites == 0 {
		cfg.Corpus.Sites = 100
	}
	var rows []CoverageRow
	for _, scheme := range []Scheme{SchemeCatalyst, SchemeCatalystRecord, SchemeCatalystFull} {
		var reqs, hits, covered []float64
		for siteIdx := 0; siteIdx < cfg.Corpus.Sites; siteIdx++ {
			w := NewWorld(cfg.Corpus, siteIdx, scheme, cfg.Transport)
			if _, err := w.Load(cond); err != nil {
				return nil, err
			}
			w.Advance(time.Minute)
			warm, err := w.Load(cond)
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, float64(warm.NetworkRequests))
			hits = append(hits, float64(warm.LocalHits))
			sub := float64(warm.Resources - 1)
			if sub > 0 {
				covered = append(covered, float64(warm.LocalHits)/sub)
			}
		}
		rows = append(rows, CoverageRow{
			Scheme:            scheme,
			MeanWarmRequests:  stats.Mean(reqs),
			MeanWarmLocalHits: stats.Mean(hits),
			CoveredFraction:   stats.Mean(covered),
		})
	}
	return rows, nil
}
