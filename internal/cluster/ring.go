// Package cluster turns independent catalystd instances into a cooperating
// edge tier. Two mechanisms, deliberately small:
//
//   - Ring: a consistent-hash ring over instance IDs. A front tier (or the
//     harness's cell router) uses it to send each page to a preferred
//     instance, concentrating a page's render cache, probe results and
//     stale copy on few nodes instead of diluting them across all. When an
//     instance dies, only the keys it owned move (the consistent-hashing
//     guarantee), so the survivors' caches stay warm.
//
//   - Exchange: peer gossip of hot X-Etag-Config encodings. An instance
//     that rendered a page and paid the probe fan-out publishes the
//     (tenant, page, validator) → encoding binding; a peer asked to serve
//     the same entity — failover traffic after a node death, or a router
//     that hashes imperfectly — adopts the published encoding instead of
//     re-probing its own upstream. The map rides the exchange with its
//     expiry, so a peer never trusts it longer than the instance that
//     built it would have.
//
// Neither mechanism has a coordinator: the ring is deterministic from the
// member list, and the exchange is best-effort fan-out — a lost gossip
// message costs one redundant probe fan-out, never correctness.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count per member: enough that key
// ownership spreads within a few percent of even for small clusters,
// small enough that rebuilding the ring on membership change is trivial.
const DefaultVnodes = 128

// Ring is a consistent-hash ring over instance IDs. Safe for concurrent
// use; membership changes rebuild the point list under a write lock while
// lookups proceed under read locks.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	members map[string]bool
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing builds a ring with DefaultVnodes virtual nodes per member.
func NewRing(members ...string) *Ring {
	r := &Ring{vnodes: DefaultVnodes, members: make(map[string]bool)}
	for _, m := range members {
		r.members[m] = true
	}
	r.rebuild()
	return r
}

// Add joins an instance to the ring. Adding an existing member is a no-op.
func (r *Ring) Add(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[id] {
		return
	}
	r.members[id] = true
	r.rebuild()
}

// Remove drops an instance from the ring — the kill-one-node path. Only
// the removed instance's keys change owner.
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	r.rebuild()
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the instance that owns key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.OwnerN(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// OwnerN returns up to n distinct instances for key in preference order:
// the owner first, then the successors a client fails over to when the
// owner is down.
func (r *Ring) OwnerN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashString(key)
	// First point clockwise from the key's hash.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for range r.points {
		if i == len(r.points) {
			i = 0
		}
		id := r.points[i].id
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
			if len(out) == n {
				break
			}
		}
		i++
	}
	return out
}

// rebuild recomputes the point list. Caller holds mu.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for id := range r.members {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hashString(fmt.Sprintf("%s#%d", id, v)),
				id:   id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// hashString is 64-bit FNV-1a followed by a full-avalanche finalizer:
// stdlib-only and stable across processes, so every instance computes the
// same ownership from the same member list. Bare FNV-1a is not enough
// here — keys differing only in their last bytes land within a narrow
// band (the final XOR touches 8 bits and one multiply cannot spread them
// across the ring), which assigns whole URL families to one owner. The
// murmur-style finalizer restores uniformity.
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
