package cluster

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cachecatalyst/internal/etag"
)

func TestRingDistribution(t *testing.T) {
	r := NewRing("a", "b", "c")
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("/page/%d", i))]++
	}
	for _, id := range []string{"a", "b", "c"} {
		share := float64(counts[id]) / keys
		if share < 0.20 || share > 0.47 {
			t.Fatalf("member %s owns %.0f%% of keys — ring badly skewed (%v)", id, share*100, counts)
		}
	}
}

func TestRingStableOwnership(t *testing.T) {
	a := NewRing("a", "b", "c")
	b := NewRing("c", "b", "a") // order must not matter
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("/k%d", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("construction order changed ownership of %q", k)
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing guarantee: removing
// one member moves only that member's keys.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing("a", "b", "c")
	before := map[string]string{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("/k%d", i)
		before[k] = r.Owner(k)
	}
	r.Remove("b")
	moved := 0
	for k, prev := range before {
		now := r.Owner(k)
		if now == "b" {
			t.Fatalf("removed member still owns %q", k)
		}
		if prev != "b" && now != prev {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed member changed owner", moved)
	}
}

func TestRingOwnerN(t *testing.T) {
	r := NewRing("a", "b", "c")
	owners := r.OwnerN("/page", 3)
	if len(owners) != 3 {
		t.Fatalf("OwnerN(3) = %v", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner in %v", owners)
		}
		seen[o] = true
	}
	if owners[0] != r.Owner("/page") {
		t.Fatal("OwnerN[0] differs from Owner")
	}
	if got := r.OwnerN("/page", 5); len(got) != 3 {
		t.Fatalf("OwnerN(5) on 3 members = %v", got)
	}
	empty := NewRing()
	if empty.Owner("/x") != "" {
		t.Fatal("empty ring returned an owner")
	}
}

func validEnc(t *testing.T) string {
	t.Helper()
	tag := etag.ForBytes([]byte("body"))
	return `{"/app.css":` + quoted(tag.String()) + `}`
}

func quoted(s string) string {
	var b bytes.Buffer
	b.WriteByte('"')
	b.WriteString(strings.ReplaceAll(s, `"`, `\"`))
	b.WriteByte('"')
	return b.String()
}

func TestExchangeRoundTrip(t *testing.T) {
	// Receiver side: a bare exchange with no peers.
	recv := NewExchange(ExchangeOptions{Instance: "b"})
	defer recv.Close()
	srv := httptest.NewServer(recv.Handler())
	defer srv.Close()

	// Sender side gossips to the receiver.
	send := NewExchange(ExchangeOptions{Instance: "a", Peers: []string{srv.URL}})
	defer send.Close()

	enc := validEnc(t)
	exp := time.Now().Add(5 * time.Second).UnixNano()
	send.Publish("shop", "/index.html", "W/\"abc\"", enc, exp)

	deadline := time.Now().Add(2 * time.Second)
	for {
		if got, gotExp, ok := recv.Lookup("shop", "/index.html", "W/\"abc\""); ok {
			if got != enc || gotExp != exp {
				t.Fatalf("Lookup = (%q, %d), want (%q, %d)", got, gotExp, enc, exp)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("announcement never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A different validator must miss: the binding is entity-exact.
	if _, _, ok := recv.Lookup("shop", "/index.html", "W/\"other\""); ok {
		t.Fatal("Lookup matched a different validator")
	}
	// A different tenant must miss even for the same page.
	if _, _, ok := recv.Lookup("blog", "/index.html", "W/\"abc\""); ok {
		t.Fatal("Lookup crossed tenants")
	}
}

func TestExchangeRejects(t *testing.T) {
	e := NewExchange(ExchangeOptions{Instance: "x"})
	defer e.Close()
	h := e.Handler()
	futureNs := time.Now().Add(time.Minute).UnixNano()

	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"not json", "{", 400},
		{"missing fields", `{"tenant":"t"}`, 400},
		{"bad encoding", fmt.Sprintf(`{"tenant":"t","page":"/","tag":"x","enc":"not a map","expires":%d}`, futureNs), 400},
		{"expired", `{"tenant":"t","page":"/","tag":"x","enc":"{}","expires":1}`, 400},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := httptest.NewRequest("POST", HotMapPath, strings.NewReader(c.body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != c.wantCode {
				t.Fatalf("code = %d, want %d", rec.Code, c.wantCode)
			}
		})
	}
	if got := e.Metrics.Rejected.Load(); got != int64(len(cases)) {
		t.Fatalf("Rejected = %d, want %d", got, len(cases))
	}
	if e.local.Len() != 0 {
		t.Fatal("a rejected announcement was stored")
	}
}

// TestExchangeTTLCap pins that a sender's extravagant expiry is clamped to
// the receiver's MaxTTL.
func TestExchangeTTLCap(t *testing.T) {
	e := NewExchange(ExchangeOptions{Instance: "x", MaxTTL: 50 * time.Millisecond})
	defer e.Close()
	body := fmt.Sprintf(`{"tenant":"t","page":"/","tag":"v","enc":"{}","expires":%d}`,
		time.Now().Add(time.Hour).UnixNano())
	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("POST", HotMapPath, strings.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("announcement refused: %d %s", rec.Code, rec.Body.String())
	}
	if _, exp, ok := e.Lookup("t", "/", "v"); !ok {
		t.Fatal("announcement not stored")
	} else if until := time.Until(time.Unix(0, exp)); until > 60*time.Millisecond {
		t.Fatalf("expiry %v out, beyond the 50ms MaxTTL", until)
	}
	time.Sleep(60 * time.Millisecond)
	if _, _, ok := e.Lookup("t", "/", "v"); ok {
		t.Fatal("expired announcement still served")
	}
}
