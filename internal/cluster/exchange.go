package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"cachecatalyst/internal/cachestore"
	"cachecatalyst/internal/core"
	"cachecatalyst/internal/telemetry"
)

// HotMapPath is the endpoint peers POST hot-map announcements to. Mount
// Exchange.Handler there (the catalystd daemon does this automatically in
// cluster mode).
const HotMapPath = "/_cluster/hotmap"

// hotMapMsg is one gossiped binding on the wire and in the local store:
// this exact entity of this tenant's page, decorated, encodes to Enc until
// Expires.
type hotMapMsg struct {
	Tenant  string `json:"tenant"`
	Page    string `json:"page"`
	Tag     string `json:"tag"`
	Enc     string `json:"enc"`
	Expires int64  `json:"expires"` // unix nanoseconds
}

// ExchangeOptions configures an Exchange.
type ExchangeOptions struct {
	// Instance is this node's ID (its ring member name); stamped on
	// outgoing announcements for the debug surface.
	Instance string
	// Peers are the other instances' base URLs ("http://host:port");
	// announcements POST to each peer's HotMapPath.
	Peers []string
	// Client performs the peer POSTs. Nil selects a client with a 2s
	// timeout — gossip must never hold a goroutine hostage to a dead peer.
	Client *http.Client
	// MaxBytes bounds the store of received announcements. Zero selects
	// 4 MiB.
	MaxBytes int64
	// MaxTTL caps how long a received announcement is trusted, whatever
	// expiry the sender claims — a peer with a huge probe TTL must not
	// pin this instance to its staleness budget. Zero selects 30 seconds.
	MaxTTL time.Duration
	// QueueLen bounds the async publish queue; when full, announcements
	// are dropped (and counted), never blocked on. Zero selects 256.
	QueueLen int
	// Telemetry, when set, registers the exchange's counters under
	// "cluster.*".
	Telemetry *telemetry.Registry
}

// ExchangeMetrics counts exchange activity.
type ExchangeMetrics struct {
	// Published counts announcements accepted for gossip (before fan-out).
	Published telemetry.Counter
	// Received counts announcements accepted from peers.
	Received telemetry.Counter
	// Rejected counts announcements refused (malformed JSON, an encoding
	// DecodeMap won't parse, expired on arrival).
	Rejected telemetry.Counter
	// Adopted counts Lookup hits — probe fan-outs avoided.
	Adopted telemetry.Counter
	// Dropped counts announcements discarded because the publish queue
	// was full or a peer POST failed.
	Dropped telemetry.Counter
}

// Exchange gossips hot X-Etag-Config encodings between instances. It
// implements the middleware's MapExchange hook: Publish fans a freshly
// built encoding out to peers asynchronously; Lookup consults what peers
// have announced. All methods are safe for concurrent use.
type Exchange struct {
	opts    ExchangeOptions
	client  *http.Client
	local   *cachestore.Store[hotMapMsg]
	queue   chan hotMapMsg
	done    chan struct{}
	wg      sync.WaitGroup
	Metrics ExchangeMetrics
}

// NewExchange starts an exchange; Close releases its sender goroutine.
func NewExchange(opts ExchangeOptions) *Exchange {
	if opts.MaxBytes == 0 {
		opts.MaxBytes = 4 << 20
	}
	if opts.MaxTTL <= 0 {
		opts.MaxTTL = 30 * time.Second
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = 256
	}
	e := &Exchange{
		opts:   opts,
		client: opts.Client,
		queue:  make(chan hotMapMsg, opts.QueueLen),
		done:   make(chan struct{}),
	}
	if e.client == nil {
		e.client = &http.Client{Timeout: 2 * time.Second}
	}
	e.local = cachestore.New[hotMapMsg](cachestore.Options[hotMapMsg]{
		MaxBytes: opts.MaxBytes,
		SizeOf: func(key string, m hotMapMsg) int64 {
			return int64(len(key) + len(m.Enc) + 64)
		},
		Telemetry: opts.Telemetry,
		Name:      "cluster.hotmaps",
	})
	if opts.Telemetry != nil {
		opts.Telemetry.RegisterCounter("cluster.published", &e.Metrics.Published)
		opts.Telemetry.RegisterCounter("cluster.received", &e.Metrics.Received)
		opts.Telemetry.RegisterCounter("cluster.rejected", &e.Metrics.Rejected)
		opts.Telemetry.RegisterCounter("cluster.adopted", &e.Metrics.Adopted)
		opts.Telemetry.RegisterCounter("cluster.dropped", &e.Metrics.Dropped)
	}
	e.wg.Add(1)
	go e.sender()
	return e
}

// Close stops the sender goroutine. Queued announcements are dropped.
func (e *Exchange) Close() {
	close(e.done)
	e.wg.Wait()
}

func hotMapKey(tenant, page, tag string) string {
	return tenant + "\x00" + page + "\x00" + tag
}

// Lookup returns a peer-announced encoding for the exact entity, if one is
// held and unexpired. Implements catalyst.MapExchange.
func (e *Exchange) Lookup(tenant, page, tag string) (string, int64, bool) {
	m, ok := e.local.Get(hotMapKey(tenant, page, tag))
	if !ok || time.Now().UnixNano() >= m.Expires {
		return "", 0, false
	}
	e.Metrics.Adopted.Add(1)
	return m.Enc, m.Expires, true
}

// Publish hands an encoding to the gossip queue. Never blocks: when the
// queue is full the announcement is dropped — a peer will pay one probe
// fan-out it could have skipped, nothing more. Implements
// catalyst.MapExchange.
func (e *Exchange) Publish(tenant, page, tag, enc string, expires int64) {
	if len(e.opts.Peers) == 0 {
		return
	}
	msg := hotMapMsg{Tenant: tenant, Page: page, Tag: tag, Enc: enc, Expires: expires}
	select {
	case e.queue <- msg:
		e.Metrics.Published.Add(1)
	default:
		e.Metrics.Dropped.Add(1)
	}
}

// sender drains the publish queue, POSTing each announcement to every
// peer. Sequential fan-out on one goroutine is deliberate: gossip volume
// is one message per freshly probed page per TTL, and a slow peer
// backpressures into the bounded queue instead of spawning goroutines.
func (e *Exchange) sender() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case msg := <-e.queue:
			body, err := json.Marshal(msg)
			if err != nil {
				continue
			}
			for _, peer := range e.opts.Peers {
				req, err := http.NewRequest(http.MethodPost, peer+HotMapPath, bytes.NewReader(body))
				if err != nil {
					e.Metrics.Dropped.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := e.client.Do(req)
				if err != nil {
					e.Metrics.Dropped.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					e.Metrics.Dropped.Add(1)
				}
			}
		}
	}
}

// maxAnnouncementBytes bounds a POST body: a map encoding is already
// capped at core.MaxEncodedMapBytes, plus key fields and JSON overhead.
const maxAnnouncementBytes = core.MaxEncodedMapBytes + 64<<10

// Handler accepts peer announcements: POST HotMapPath with one hotMapMsg.
// Announcements are validated before they are trusted — the encoding must
// parse as an ETag map and must not be expired — so a confused or hostile
// peer cannot plant garbage a client would then be served.
func (e *Exchange) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxAnnouncementBytes+1))
		if err != nil || len(body) > maxAnnouncementBytes {
			e.Metrics.Rejected.Add(1)
			http.Error(w, "announcement too large", http.StatusRequestEntityTooLarge)
			return
		}
		var msg hotMapMsg
		if err := json.Unmarshal(body, &msg); err != nil || msg.Tenant == "" || msg.Page == "" || msg.Tag == "" {
			e.Metrics.Rejected.Add(1)
			http.Error(w, "malformed announcement", http.StatusBadRequest)
			return
		}
		if _, err := core.DecodeMap(msg.Enc); err != nil {
			e.Metrics.Rejected.Add(1)
			http.Error(w, "malformed encoding", http.StatusBadRequest)
			return
		}
		now := time.Now()
		if msg.Expires <= now.UnixNano() {
			e.Metrics.Rejected.Add(1)
			http.Error(w, "expired announcement", http.StatusBadRequest)
			return
		}
		// Cap the trust window to this instance's own tolerance.
		if cap := now.Add(e.opts.MaxTTL).UnixNano(); msg.Expires > cap {
			msg.Expires = cap
		}
		e.local.Put(hotMapKey(msg.Tenant, msg.Page, msg.Tag), msg)
		e.Metrics.Received.Add(1)
		w.WriteHeader(http.StatusOK)
	})
}

// Mount wraps next so that HotMapPath reaches the exchange and everything
// else falls through — the one-line daemon integration.
func (e *Exchange) Mount(next http.Handler) http.Handler {
	h := e.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == HotMapPath {
			h.ServeHTTP(w, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}
