package etag

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	tests := []struct {
		in   string
		want Tag
		ok   bool
	}{
		{`"abc"`, Tag{Opaque: "abc"}, true},
		{`W/"abc"`, Tag{Opaque: "abc", Weak: true}, true},
		{`w/"abc"`, Tag{Opaque: "abc", Weak: true}, true},
		{`""`, Tag{Opaque: ""}, true},
		{`bare-token`, Tag{Opaque: "bare-token"}, true}, // lenient
		{`W/bare`, Tag{}, false},
		{``, Tag{}, false},
		{`  "padded"  `, Tag{Opaque: "padded"}, true},
		{`"has,comma"`, Tag{Opaque: "has,comma"}, true},
	}
	for _, tt := range tests {
		got, ok := Parse(tt.in)
		if ok != tt.ok || got != tt.want {
			t.Errorf("Parse(%q) = %+v, %v; want %+v, %v", tt.in, got, ok, tt.want, tt.ok)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, tag := range []Tag{{Opaque: "x"}, {Opaque: "y", Weak: true}, {Opaque: "a-b_c.9"}} {
		got, ok := Parse(tag.String())
		if !ok || got != tag {
			t.Errorf("Parse(%q) = %+v, %v", tag.String(), got, ok)
		}
	}
}

func TestMatchFunctions(t *testing.T) {
	s1 := Tag{Opaque: "1"}
	s1b := Tag{Opaque: "1"}
	w1 := Tag{Opaque: "1", Weak: true}
	s2 := Tag{Opaque: "2"}

	if !StrongMatch(s1, s1b) {
		t.Error("strong tags with equal opaque should strong-match")
	}
	if StrongMatch(s1, w1) || StrongMatch(w1, w1) {
		t.Error("weak tag must never strong-match")
	}
	if StrongMatch(s1, s2) {
		t.Error("different opaque must not match")
	}
	if !WeakMatch(s1, w1) || !WeakMatch(w1, w1) || !WeakMatch(s1, s1b) {
		t.Error("weak comparison ignores weakness")
	}
	if WeakMatch(s1, s2) {
		t.Error("weak comparison still requires equal opaque")
	}
	if StrongMatch(Tag{}, Tag{}) || WeakMatch(Tag{}, Tag{}) {
		t.Error("empty tags must never match")
	}
}

func TestParseList(t *testing.T) {
	tags, star := ParseList(`"a", W/"b", "c"`)
	if star {
		t.Fatal("unexpected star")
	}
	want := []Tag{{Opaque: "a"}, {Opaque: "b", Weak: true}, {Opaque: "c"}}
	if len(tags) != len(want) {
		t.Fatalf("got %d tags, want %d", len(tags), len(want))
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Errorf("tags[%d] = %+v, want %+v", i, tags[i], want[i])
		}
	}
}

func TestParseListStar(t *testing.T) {
	tags, star := ParseList("*")
	if !star || tags != nil {
		t.Fatalf("ParseList(*) = %v, %v", tags, star)
	}
}

func TestParseListCommaInsideQuotes(t *testing.T) {
	tags, _ := ParseList(`"a,b", "c"`)
	if len(tags) != 2 || tags[0].Opaque != "a,b" || tags[1].Opaque != "c" {
		t.Fatalf("quoted comma mishandled: %+v", tags)
	}
}

func TestParseListSkipsMalformed(t *testing.T) {
	tags, _ := ParseList(`"ok", W/bad, "also"`)
	if len(tags) != 2 {
		t.Fatalf("malformed member not skipped: %+v", tags)
	}
}

func TestNoneMatch(t *testing.T) {
	cur := Tag{Opaque: "v1"}
	tests := []struct {
		header string
		want   bool // true = precondition holds, process normally
	}{
		{"", true},
		{`"v1"`, false},       // client has current version → 304
		{`W/"v1"`, false},     // weak comparison applies
		{`"v0"`, true},        // stale client copy → send body
		{`"v0", "v1"`, false}, // any member matching suffices
		{"*", false},          // resource exists → 304
	}
	for _, tt := range tests {
		if got := NoneMatch(tt.header, cur); got != tt.want {
			t.Errorf("NoneMatch(%q, %v) = %v, want %v", tt.header, cur, got, tt.want)
		}
	}
	// Star against a nonexistent representation: precondition holds.
	if !NoneMatch("*", Tag{}) {
		t.Error("NoneMatch(*, zero) should hold")
	}
}

func TestForBytesDeterministicAndDistinct(t *testing.T) {
	a1 := ForBytes([]byte("hello"))
	a2 := ForBytes([]byte("hello"))
	b := ForBytes([]byte("hello!"))
	if a1 != a2 {
		t.Error("ForBytes not deterministic")
	}
	if a1 == b {
		t.Error("ForBytes collision on different content")
	}
	if a1.Weak {
		t.Error("ForBytes must produce strong tags")
	}
	if !strings.HasPrefix(a1.Opaque, "5-") {
		t.Errorf("ForBytes should prefix length: %q", a1.Opaque)
	}
}

func TestForVersionDistinguishesPathAndVersion(t *testing.T) {
	if ForVersion("/a.css", 1) == ForVersion("/a.css", 2) {
		t.Error("versions must differ")
	}
	if ForVersion("/a.css", 1) == ForVersion("/b.css", 1) {
		t.Error("paths must differ")
	}
	if ForVersion("/a.css", 3) != ForVersion("/a.css", 3) {
		t.Error("not deterministic")
	}
}

// Property: any tag that round-trips through wire form still NoneMatch-es
// correctly against itself (→ 304) and against a different version (→ 200).
func TestNoneMatchQuick(t *testing.T) {
	f := func(path string, v uint64) bool {
		cur := ForVersion(path, v)
		other := ForVersion(path, v+1)
		return !NoneMatch(cur.String(), cur) && NoneMatch(other.String(), cur)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: parsing the serialized form of any list member yields the member.
func TestParseRoundTripQuick(t *testing.T) {
	f := func(raw []byte, weak bool) bool {
		// Build a legal opaque value: strip quotes, which are illegal inside.
		opaque := strings.ReplaceAll(string(raw), `"`, "")
		tag := Tag{Opaque: opaque, Weak: weak}
		got, ok := Parse(tag.String())
		return ok && got == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
