// Package etag implements entity-tag generation, parsing, and comparison as
// specified by RFC 9110 §8.8.3 and the If-None-Match evaluation of §13.1.2.
//
// Entity tags are the validation tokens at the heart of the paper: the
// conventional re-validation mechanism ships them in conditional requests,
// and CacheCatalyst ships them proactively in the X-Etag-Config map.
package etag

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Tag is a parsed entity tag.
type Tag struct {
	// Opaque is the quoted-string content without the surrounding quotes.
	Opaque string
	// Weak marks a W/-prefixed tag.
	Weak bool
}

// String renders the tag in wire form, e.g. `"abc"` or `W/"abc"`.
func (t Tag) String() string {
	if t.Weak {
		return `W/"` + t.Opaque + `"`
	}
	return `"` + t.Opaque + `"`
}

// IsZero reports whether the tag is empty.
func (t Tag) IsZero() bool { return t.Opaque == "" && !t.Weak }

// Parse parses a single entity tag in wire form. It accepts strong tags
// (`"x"`), weak tags (`W/"x"`), and — leniently, as real servers do —
// unquoted tokens, which are treated as strong tags.
func Parse(s string) (Tag, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Tag{}, false
	}
	var weak bool
	if strings.HasPrefix(s, "W/") || strings.HasPrefix(s, "w/") {
		weak = true
		s = s[2:]
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return Tag{Opaque: s[1 : len(s)-1], Weak: weak}, true
	}
	if weak {
		// W/ must be followed by a quoted string.
		return Tag{}, false
	}
	if strings.ContainsAny(s, `" ,`) {
		return Tag{}, false
	}
	return Tag{Opaque: s}, true
}

// StrongMatch reports whether a and b compare equal under the strong
// comparison function: equal opaque values and neither tag weak.
func StrongMatch(a, b Tag) bool {
	return !a.Weak && !b.Weak && a.Opaque == b.Opaque && a.Opaque != ""
}

// WeakMatch reports whether a and b compare equal under the weak comparison
// function: equal opaque values regardless of weakness.
func WeakMatch(a, b Tag) bool {
	return a.Opaque == b.Opaque && a.Opaque != ""
}

// ParseList parses an If-None-Match style field value: either the special
// value "*" (reported via star) or a comma-separated list of entity tags.
// Malformed members are skipped, matching the forgiving behaviour of
// deployed servers.
func ParseList(v string) (tags []Tag, star bool) {
	v = strings.TrimSpace(v)
	if v == "*" {
		return nil, true
	}
	for _, part := range splitTags(v) {
		if t, ok := Parse(part); ok {
			tags = append(tags, t)
		}
	}
	return tags, false
}

// splitTags splits on commas that are outside quoted strings, so opaque
// values containing commas survive.
func splitTags(v string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, v[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, v[start:])
	return out
}

// NoneMatch evaluates an If-None-Match precondition (RFC 9110 §13.1.2)
// against the current entity tag. It returns true when the precondition
// holds, i.e. the server should process the request normally; false means
// a cache may be used and a 304 is appropriate for GET/HEAD.
//
// Per the RFC, If-None-Match uses the *weak* comparison function.
func NoneMatch(headerValue string, current Tag) bool {
	if headerValue == "" {
		return true
	}
	// Fast path: a single-tag header — the overwhelmingly common case on
	// revalidation-heavy workloads — compares without the list machinery
	// and its slice allocations. Values with commas (lists, or opaque
	// values containing quoted commas) take the full parse below.
	if !strings.ContainsRune(headerValue, ',') {
		v := strings.TrimSpace(headerValue)
		if v == "*" {
			return current.IsZero()
		}
		if t, ok := Parse(v); ok {
			return !WeakMatch(t, current)
		}
		// Malformed members are skipped, so an unparsable lone tag
		// matches nothing and the precondition holds.
		return true
	}
	tags, star := ParseList(headerValue)
	if star {
		return current.IsZero()
	}
	for _, t := range tags {
		if WeakMatch(t, current) {
			return false
		}
	}
	return true
}

// ForBytes deterministically derives a strong entity tag from content, the
// way the modified Caddy in the paper derives ETags from file contents.
// The tag is the first 16 hex characters of the SHA-256 digest prefixed
// with the content length, mirroring productions like nginx's
// "size-mtime" tags while staying content-addressed.
func ForBytes(b []byte) Tag {
	sum := sha256.Sum256(b)
	return Tag{Opaque: fmt.Sprintf("%x-%s", len(b), hex.EncodeToString(sum[:8]))}
}

// ForVersion derives a strong entity tag from a resource identity and a
// monotonically increasing version number. The synthetic corpus uses this:
// it gives stable, content-free tags so experiments don't need to
// materialize megabytes of bodies to know whether a resource changed.
func ForVersion(path string, version uint64) Tag {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", path, version)))
	return Tag{Opaque: hex.EncodeToString(h[:10])}
}
