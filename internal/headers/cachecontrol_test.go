package headers

import (
	"testing"
	"testing/quick"
	"time"
)

func TestParseCacheControlBasics(t *testing.T) {
	tests := []struct {
		in   string
		want CacheControl
	}{
		{"no-store", CacheControl{NoStore: true}},
		{"no-cache", CacheControl{NoCache: true}},
		{"max-age=3600", CacheControl{MaxAge: time.Hour, HasMaxAge: true}},
		{"max-age=0", CacheControl{MaxAge: 0, HasMaxAge: true}},
		{"public, max-age=604800", CacheControl{Public: true, MaxAge: 7 * 24 * time.Hour, HasMaxAge: true}},
		{"private, no-cache", CacheControl{Private: true, NoCache: true}},
		{"max-age=60, must-revalidate", CacheControl{MaxAge: time.Minute, HasMaxAge: true, MustRevalidate: true}},
		{"immutable, max-age=31536000", CacheControl{Immutable: true, MaxAge: 365 * 24 * time.Hour, HasMaxAge: true}},
		{"", CacheControl{}},
	}
	for _, tt := range tests {
		got := ParseCacheControl(tt.in)
		if !equalCC(got, tt.want) {
			t.Errorf("ParseCacheControl(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func equalCC(a, b CacheControl) bool {
	if a.NoStore != b.NoStore || a.NoCache != b.NoCache || a.HasMaxAge != b.HasMaxAge ||
		a.MaxAge != b.MaxAge || a.MustRevalidate != b.MustRevalidate ||
		a.Public != b.Public || a.Private != b.Private || a.Immutable != b.Immutable {
		return false
	}
	if len(a.Extensions) != len(b.Extensions) {
		return false
	}
	for k, v := range a.Extensions {
		if b.Extensions[k] != v {
			return false
		}
	}
	return true
}

func TestParseCacheControlCaseInsensitive(t *testing.T) {
	got := ParseCacheControl("No-Store, MAX-AGE=10")
	if !got.NoStore || !got.HasMaxAge || got.MaxAge != 10*time.Second {
		t.Fatalf("case-insensitive parse failed: %+v", got)
	}
}

func TestParseCacheControlWhitespaceAndQuotes(t *testing.T) {
	got := ParseCacheControl(`  max-age = "120" ,  no-cache `)
	if !got.NoCache || got.MaxAge != 2*time.Minute {
		t.Fatalf("lenient parse failed: %+v", got)
	}
}

func TestParseCacheControlMalformedMaxAge(t *testing.T) {
	for _, in := range []string{"max-age=abc", "max-age=-5", "max-age="} {
		got := ParseCacheControl(in)
		if got.MaxAge != 0 {
			t.Errorf("ParseCacheControl(%q).MaxAge = %v, want 0", in, got.MaxAge)
		}
	}
	// Unparseable values must be treated as already stale (HasMaxAge set,
	// MaxAge zero), not as "no freshness info".
	if got := ParseCacheControl("max-age=abc"); !got.HasMaxAge {
		t.Error("malformed max-age should still mark HasMaxAge")
	}
}

func TestParseCacheControlUnknownDirectives(t *testing.T) {
	got := ParseCacheControl("s-maxage=30, stale-while-revalidate=60, keep")
	if got.Extensions["s-maxage"] != "30" {
		t.Errorf("s-maxage extension = %q", got.Extensions["s-maxage"])
	}
	if got.Extensions["stale-while-revalidate"] != "60" {
		t.Errorf("stale-while-revalidate extension = %q", got.Extensions["stale-while-revalidate"])
	}
	if v, ok := got.Extensions["keep"]; !ok || v != "" {
		t.Errorf("valueless extension = %q, ok=%v", v, ok)
	}
}

func TestCacheControlStringRoundTrip(t *testing.T) {
	cases := []CacheControl{
		{NoStore: true},
		{NoCache: true, Private: true},
		{MaxAge: time.Hour, HasMaxAge: true, Public: true},
		{MaxAge: 0, HasMaxAge: true, MustRevalidate: true},
		{Immutable: true, MaxAge: 24 * time.Hour, HasMaxAge: true},
		{Extensions: map[string]string{"s-maxage": "10", "zz": ""}},
	}
	for _, cc := range cases {
		got := ParseCacheControl(cc.String())
		if !equalCC(got, cc) {
			t.Errorf("round trip of %q: got %+v want %+v", cc.String(), got, cc)
		}
	}
}

// Property: String→Parse is the identity for max-age durations measured in
// whole seconds.
func TestCacheControlMaxAgeRoundTripQuick(t *testing.T) {
	f := func(secs uint32) bool {
		cc := CacheControl{MaxAge: time.Duration(secs) * time.Second, HasMaxAge: true}
		return equalCC(ParseCacheControl(cc.String()), cc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsZero(t *testing.T) {
	if !(CacheControl{}).IsZero() {
		t.Error("zero value should be IsZero")
	}
	if (CacheControl{NoCache: true}).IsZero() {
		t.Error("no-cache should not be IsZero")
	}
	if (CacheControl{HasMaxAge: true}).IsZero() {
		t.Error("max-age=0 should not be IsZero")
	}
}

func TestHTTPDateRoundTrip(t *testing.T) {
	ti := time.Date(2024, 11, 18, 15, 4, 5, 0, time.UTC)
	s := FormatHTTPDate(ti)
	if s != "Mon, 18 Nov 2024 15:04:05 GMT" {
		t.Fatalf("FormatHTTPDate = %q", s)
	}
	got, ok := ParseHTTPDate(s)
	if !ok || !got.Equal(ti) {
		t.Fatalf("ParseHTTPDate(%q) = %v, %v", s, got, ok)
	}
}

func TestParseHTTPDateLegacyFormats(t *testing.T) {
	want := time.Date(1994, 11, 6, 8, 49, 37, 0, time.UTC)
	for _, s := range []string{
		"Sun, 06 Nov 1994 08:49:37 GMT",  // IMF-fixdate
		"Sunday, 06-Nov-94 08:49:37 GMT", // RFC 850
		"Sun Nov  6 08:49:37 1994",       // ANSI C asctime
	} {
		got, ok := ParseHTTPDate(s)
		if !ok {
			t.Errorf("ParseHTTPDate(%q) failed", s)
			continue
		}
		if !got.UTC().Equal(want) {
			t.Errorf("ParseHTTPDate(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestParseHTTPDateRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "yesterday", "2024-11-18T00:00:00Z"} {
		if _, ok := ParseHTTPDate(s); ok {
			t.Errorf("ParseHTTPDate(%q) unexpectedly succeeded", s)
		}
	}
}
