// Package headers implements parsing and serialization of the HTTP header
// fields the caching machinery depends on: Cache-Control (RFC 9111 §5.2),
// HTTP dates (RFC 9110 §5.6.7), and small helpers shared by the cache,
// server and browser packages.
//
// Only the directives that influence a private (browser) cache are modelled;
// shared-cache-only directives such as s-maxage and proxy-revalidate are
// parsed but carried opaquely.
package headers

import (
	"sort"
	"strconv"
	"strings"
	"time"
)

// CacheControl is a parsed Cache-Control header field.
//
// Durations are represented as time.Duration for convenience; RFC 9111
// expresses them in whole seconds, and serialization truncates accordingly.
type CacheControl struct {
	// NoStore forbids storing any part of the response.
	NoStore bool
	// NoCache allows storing but requires successful validation before
	// every reuse.
	NoCache bool
	// MaxAge is the freshness lifetime. Valid only when HasMaxAge is true
	// (max-age=0 is meaningful and distinct from absent).
	MaxAge    time.Duration
	HasMaxAge bool
	// MustRevalidate forbids serving stale responses after expiry.
	MustRevalidate bool
	// Public marks the response explicitly cacheable by any cache.
	Public bool
	// Private restricts the response to private caches (the only kind we
	// model, so it does not change behaviour, but it round-trips).
	Private bool
	// Immutable promises the response body will not change during its
	// freshness lifetime, suppressing revalidation on reload.
	Immutable bool
	// Extensions holds unrecognized directives verbatim (lowercased name →
	// raw value, empty string when the directive has no argument).
	Extensions map[string]string
}

// ParseCacheControl parses a Cache-Control field value. It is lenient in the
// ways real browsers are: unknown directives are retained as extensions,
// malformed max-age values invalidate only that directive, and directive
// names are case-insensitive.
func ParseCacheControl(v string) CacheControl {
	var cc CacheControl
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, arg, hasArg := strings.Cut(part, "=")
		name = strings.ToLower(strings.TrimSpace(name))
		arg = strings.TrimSpace(arg)
		arg = strings.Trim(arg, `"`)
		switch name {
		case "no-store":
			cc.NoStore = true
		case "no-cache":
			cc.NoCache = true
		case "must-revalidate":
			cc.MustRevalidate = true
		case "public":
			cc.Public = true
		case "private":
			cc.Private = true
		case "immutable":
			cc.Immutable = true
		case "max-age":
			if !hasArg {
				continue
			}
			secs, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || secs < 0 {
				// RFC 9111 §4.2.1: caches are encouraged to treat
				// unparseable freshness information as stale.
				cc.MaxAge = 0
				cc.HasMaxAge = true
				continue
			}
			cc.MaxAge = time.Duration(secs) * time.Second
			cc.HasMaxAge = true
		default:
			if cc.Extensions == nil {
				cc.Extensions = make(map[string]string)
			}
			cc.Extensions[name] = arg
		}
	}
	return cc
}

// String serializes the directives in canonical order. The output parses
// back to an equivalent CacheControl.
func (cc CacheControl) String() string {
	var parts []string
	if cc.NoStore {
		parts = append(parts, "no-store")
	}
	if cc.NoCache {
		parts = append(parts, "no-cache")
	}
	if cc.HasMaxAge {
		parts = append(parts, "max-age="+strconv.FormatInt(int64(cc.MaxAge/time.Second), 10))
	}
	if cc.MustRevalidate {
		parts = append(parts, "must-revalidate")
	}
	if cc.Public {
		parts = append(parts, "public")
	}
	if cc.Private {
		parts = append(parts, "private")
	}
	if cc.Immutable {
		parts = append(parts, "immutable")
	}
	if len(cc.Extensions) > 0 {
		names := make([]string, 0, len(cc.Extensions))
		for n := range cc.Extensions {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if v := cc.Extensions[n]; v != "" {
				parts = append(parts, n+"="+v)
			} else {
				parts = append(parts, n)
			}
		}
	}
	return strings.Join(parts, ", ")
}

// IsZero reports whether no directive is set.
func (cc CacheControl) IsZero() bool {
	return !cc.NoStore && !cc.NoCache && !cc.HasMaxAge && !cc.MustRevalidate &&
		!cc.Public && !cc.Private && !cc.Immutable && len(cc.Extensions) == 0
}

// FormatHTTPDate renders t in the IMF-fixdate form required by RFC 9110
// (e.g. "Mon, 18 Nov 2024 00:00:00 GMT").
func FormatHTTPDate(t time.Time) string {
	return t.UTC().Format(httpTimeFormat)
}

// ParseHTTPDate parses the three date forms RFC 9110 §5.6.7 requires
// recipients to accept. The boolean reports success.
func ParseHTTPDate(s string) (time.Time, bool) {
	for _, layout := range []string{httpTimeFormat, time.RFC850, time.ANSIC} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

const httpTimeFormat = "Mon, 02 Jan 2006 15:04:05 GMT"
