// Package tenant introduces the application dimension to the edge tier:
// who a request is served on behalf of, and which cache budget, policy and
// degradation knobs that application bought.
//
// The paper's mechanism was built single-origin — one middleware, one
// upstream, flat process-global caches. A shared edge tier cannot work that
// way: Ma et al. (cross-application redundant transfer) show cache space
// must be scoped to the application, not the URL space, and CacheLib's
// pools are the production shape of that argument — isolated per-tenant
// budgets behind one process. This package supplies the boundary: a Tenant
// descriptor, a Resolver mapping Host/path-prefix to a tenant, and context
// plumbing that threads the resolved tenant through the serving stack the
// same way telemetry tracers travel.
//
// Layers never take a *Tenant parameter; they read it from the request
// context (FromContext) so that single-tenant deployments — no tenant in
// context — run the exact pre-tenant code path at pre-tenant cost.
package tenant

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"cachecatalyst/internal/cachestore"
	"cachecatalyst/internal/resilience"
	"cachecatalyst/internal/telemetry"
)

// DefaultName is the reserved tenant name single-tenant deployments (and
// requests matching no rule, when a catch-all tenant exists) resolve to.
const DefaultName = "default"

// Tenant describes one application served by the edge tier.
type Tenant struct {
	// Name identifies the tenant in cache namespaces, telemetry
	// instruments ("tenant.<name>.*") and the hot-map exchange. Must be
	// non-empty and unique within a Resolver.
	Name string
	// Upstream is the absolute URL of the tenant's origin (proxy
	// tenants). Empty means the tenant is served by whatever inner
	// handler the edge was built over (the single-tenant serve mode).
	Upstream string
	// Hosts are the Host header values (port ignored) that route to this
	// tenant.
	Hosts []string
	// PathPrefix routes requests whose path starts with the prefix;
	// longest prefix wins across tenants. Empty disables prefix routing
	// for this tenant.
	PathPrefix string
	// Policy is the eviction/admission policy for the tenant's cache
	// namespaces. The zero value is exact LRU.
	Policy cachestore.Policy
	// BudgetBytes bounds the tenant's derived-cache namespaces (rendered
	// pages; stale copies and delta bases at half scale). Zero inherits
	// the process default; negative means unbounded.
	BudgetBytes int64
	// MaxInflight bounds the tenant's concurrently instrumented
	// requests; excess degrades down the ladder. Zero inherits the
	// process default.
	MaxInflight int
	// RequestBudget deadlines the tenant's instrumented requests. Zero
	// inherits the process default.
	RequestBudget time.Duration
	// StaleFor bounds how long the tenant's last-known-good copies may
	// be re-served under degradation. Zero inherits the process default.
	StaleFor time.Duration
	// HealthInterval is the cadence of the tenant's upstream health
	// probe (and, derived from it, the probe's request timeout). Zero
	// selects 2 seconds.
	HealthInterval time.Duration
	// Breaker, when set by the daemon, is the tenant's upstream circuit
	// breaker — shared with its health checker so recovery is
	// probe-driven. The middleware consults it before touching the
	// tenant's upstream.
	Breaker *resilience.Breaker
}

// Validate reports the first problem with the descriptor.
func (t *Tenant) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("tenant: empty name")
	}
	if strings.ContainsAny(t.Name, " \x00/.") {
		return fmt.Errorf("tenant %q: name must not contain spaces, dots, slashes or NUL (it keys cache namespaces and telemetry)", t.Name)
	}
	if t.Upstream != "" {
		u, err := url.Parse(t.Upstream)
		if err != nil {
			return fmt.Errorf("tenant %q: upstream %q: %v", t.Name, t.Upstream, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("tenant %q: upstream %q: need an absolute URL (http://host:port)", t.Name, t.Upstream)
		}
	}
	if t.PathPrefix != "" && !strings.HasPrefix(t.PathPrefix, "/") {
		return fmt.Errorf("tenant %q: path prefix %q must start with /", t.Name, t.PathPrefix)
	}
	return nil
}

// ctxKey carries the resolved tenant in a request context.
type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the tenant attached to ctx, if any. Layers use the
// absence to select their process-global (single-tenant) state.
func FromContext(ctx context.Context) (*Tenant, bool) {
	t, ok := ctx.Value(ctxKey{}).(*Tenant)
	return t, ok
}

// Resolver maps a request to the tenant it is served for. Host rules win
// over path-prefix rules; among prefixes the longest match wins; a tenant
// with neither hosts nor a prefix is the catch-all default (at most one).
// A Resolver is immutable after construction and safe for concurrent use.
type Resolver struct {
	byHost   map[string]*Tenant
	prefixes []*Tenant // sorted by descending prefix length
	def      *Tenant
	tenants  []*Tenant
}

// NewResolver builds a resolver over the given tenants, validating each
// descriptor, name uniqueness, and rule collisions.
func NewResolver(tenants []*Tenant) (*Resolver, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("tenant: no tenants configured")
	}
	r := &Resolver{
		byHost:  make(map[string]*Tenant),
		tenants: append([]*Tenant(nil), tenants...),
	}
	seen := make(map[string]bool, len(tenants))
	for _, t := range tenants {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("tenant %q: duplicate name", t.Name)
		}
		seen[t.Name] = true
		for _, h := range t.Hosts {
			key := strings.ToLower(stripPort(h))
			if key == "" {
				return nil, fmt.Errorf("tenant %q: empty host rule", t.Name)
			}
			if prev, ok := r.byHost[key]; ok {
				return nil, fmt.Errorf("tenant %q: host %q already routes to %q", t.Name, h, prev.Name)
			}
			r.byHost[key] = t
		}
		if t.PathPrefix != "" {
			r.prefixes = append(r.prefixes, t)
		}
		if len(t.Hosts) == 0 && t.PathPrefix == "" {
			if r.def != nil {
				return nil, fmt.Errorf("tenant %q: %q is already the catch-all default", t.Name, r.def.Name)
			}
			r.def = t
		}
	}
	sort.SliceStable(r.prefixes, func(i, j int) bool {
		return len(r.prefixes[i].PathPrefix) > len(r.prefixes[j].PathPrefix)
	})
	for i := 1; i < len(r.prefixes); i++ {
		if r.prefixes[i].PathPrefix == r.prefixes[i-1].PathPrefix {
			return nil, fmt.Errorf("tenant %q: path prefix %q already routes to %q",
				r.prefixes[i].Name, r.prefixes[i].PathPrefix, r.prefixes[i-1].Name)
		}
	}
	return r, nil
}

// Resolve returns the tenant for a request's Host and path, or nil when no
// rule (and no default) matches.
func (r *Resolver) Resolve(host, path string) *Tenant {
	if t, ok := r.byHost[strings.ToLower(stripPort(host))]; ok {
		return t
	}
	for _, t := range r.prefixes {
		if strings.HasPrefix(path, t.PathPrefix) {
			return t
		}
	}
	return r.def
}

// ResolveRequest is Resolve over an *http.Request.
func (r *Resolver) ResolveRequest(req *http.Request) *Tenant {
	return r.Resolve(req.Host, req.URL.Path)
}

// Tenants returns the resolver's tenants in configuration order.
func (r *Resolver) Tenants() []*Tenant {
	return append([]*Tenant(nil), r.tenants...)
}

// Lookup returns the tenant with the given name, if configured.
func (r *Resolver) Lookup(name string) (*Tenant, bool) {
	for _, t := range r.tenants {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}

// stripPort drops a :port suffix from a Host header value, tolerating
// bracketed IPv6 literals.
func stripPort(host string) string {
	if strings.HasPrefix(host, "[") {
		if i := strings.IndexByte(host, ']'); i >= 0 {
			return host[1:i]
		}
		return host[1:]
	}
	// A lone colon separates a port; several mean a bare IPv6 literal.
	if i := strings.LastIndexByte(host, ':'); i >= 0 && strings.IndexByte(host[:i], ':') < 0 {
		return host[:i]
	}
	return host
}

// Handler injects the resolved tenant into every request's context and
// counts per-tenant traffic in reg under "tenant.<name>.requests"
// ("tenant.unrouted.requests" for requests no rule matches — those serve
// through next without a tenant, on the single-tenant code path).
func Handler(r *Resolver, reg *telemetry.Registry, next http.Handler) http.Handler {
	counters := make(map[string]*telemetry.Counter, len(r.tenants))
	var unrouted *telemetry.Counter
	if reg != nil {
		for _, t := range r.tenants {
			counters[t.Name] = reg.Counter("tenant." + t.Name + ".requests")
		}
		unrouted = reg.Counter("tenant.unrouted.requests")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		t := r.ResolveRequest(req)
		if t == nil {
			if unrouted != nil {
				unrouted.Add(1)
			}
			next.ServeHTTP(w, req)
			return
		}
		if c := counters[t.Name]; c != nil {
			c.Add(1)
		}
		next.ServeHTTP(w, req.WithContext(NewContext(req.Context(), t)))
	})
}
