package tenant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cachecatalyst/internal/cachestore"
)

// Config is the declarative shape of a multi-tenant catalystd deployment —
// what `catalystd -config catalystd.json` loads. One file describes the
// whole edge instance: every tenant it fronts and, optionally, the cluster
// it participates in.
type Config struct {
	// Tenants describes the applications this edge instance serves. At
	// least one is required.
	Tenants []TenantConfig `json:"tenants"`
	// Cluster, when non-zero, joins the instance to a peer group for
	// consistent-hash sharding and hot-map exchange.
	Cluster ClusterConfig `json:"cluster,omitzero"`
}

// TenantConfig is one tenant's JSON form. Durations are strings in
// time.ParseDuration syntax ("150ms", "5m").
type TenantConfig struct {
	Name          string   `json:"name"`
	Upstream      string   `json:"upstream"`
	Hosts         []string `json:"hosts,omitempty"`
	PathPrefix    string   `json:"pathPrefix,omitempty"`
	CachePolicy   string   `json:"cachePolicy,omitempty"`
	CacheBudget   int64    `json:"cacheBudget,omitempty"`
	MaxInflight   int      `json:"maxInflight,omitempty"`
	RequestBudget Duration `json:"requestBudget,omitempty"`
	StaleFor      Duration `json:"staleFor,omitempty"`
	// HealthInterval is the upstream health-probe cadence; the probe's
	// request timeout derives from it so one slow upstream answer can
	// never overlap the next probe.
	HealthInterval Duration `json:"healthInterval,omitempty"`
}

// ClusterConfig names this instance and its peers.
type ClusterConfig struct {
	// Instance is this node's ID on the ring (often its advertised URL).
	Instance string `json:"instance,omitempty"`
	// Peers are the other instances' base URLs, the targets of hot-map
	// gossip.
	Peers []string `json:"peers,omitempty"`
}

// Enabled reports whether the config describes cluster membership.
func (c ClusterConfig) Enabled() bool {
	return c.Instance != "" || len(c.Peers) > 0
}

// Duration is a time.Duration that unmarshals from a JSON string in
// time.ParseDuration syntax (or a bare number of nanoseconds).
type Duration time.Duration

func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// ParseConfig parses and validates a config document. Unknown fields are
// errors — a typoed knob that silently does nothing is worse than a
// refused config.
func ParseConfig(data []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("tenant config: %w", err)
	}
	if len(c.Tenants) == 0 {
		return nil, fmt.Errorf("tenant config: no tenants")
	}
	for i := range c.Tenants {
		tc := &c.Tenants[i]
		if tc.Upstream == "" {
			return nil, fmt.Errorf("tenant config: tenant %q: missing upstream (multi-tenant mode proxies; use -dir for single-tenant file serving)", tc.Name)
		}
		if _, err := tc.Tenant(); err != nil {
			return nil, fmt.Errorf("tenant config: %w", err)
		}
	}
	// NewResolver re-validates collisions (duplicate names, host and
	// prefix conflicts) — run it here so a bad file fails at load time,
	// not at first request.
	tenants := make([]*Tenant, len(c.Tenants))
	for i := range c.Tenants {
		tenants[i], _ = c.Tenants[i].Tenant()
	}
	if _, err := NewResolver(tenants); err != nil {
		return nil, fmt.Errorf("tenant config: %w", err)
	}
	return &c, nil
}

// LoadConfig reads and parses the config file at path.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseConfig(data)
}

// Tenant materializes the descriptor, resolving the named cache policy.
func (tc TenantConfig) Tenant() (*Tenant, error) {
	policy := cachestore.Policy{}
	if tc.CachePolicy != "" {
		var err error
		policy, err = cachestore.ParsePolicy(tc.CachePolicy)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %w", tc.Name, err)
		}
	}
	t := &Tenant{
		Name:           tc.Name,
		Upstream:       tc.Upstream,
		Hosts:          tc.Hosts,
		PathPrefix:     tc.PathPrefix,
		Policy:         policy,
		BudgetBytes:    tc.CacheBudget,
		MaxInflight:    tc.MaxInflight,
		RequestBudget:  time.Duration(tc.RequestBudget),
		StaleFor:       time.Duration(tc.StaleFor),
		HealthInterval: time.Duration(tc.HealthInterval),
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Resolver builds the routing resolver for the config's tenants.
func (c *Config) Resolver() (*Resolver, error) {
	tenants := make([]*Tenant, len(c.Tenants))
	for i := range c.Tenants {
		t, err := c.Tenants[i].Tenant()
		if err != nil {
			return nil, err
		}
		tenants[i] = t
	}
	return NewResolver(tenants)
}
