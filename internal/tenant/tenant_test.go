package tenant

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cachecatalyst/internal/telemetry"
)

func TestResolverRouting(t *testing.T) {
	shop := &Tenant{Name: "shop", Hosts: []string{"shop.example.com"}, PathPrefix: "/shop/"}
	api := &Tenant{Name: "api", PathPrefix: "/shop/api/"}
	docs := &Tenant{Name: "docs", Hosts: []string{"Docs.Example.com:8443", "[::1]"}}
	def := &Tenant{Name: "default"}
	r, err := NewResolver([]*Tenant{shop, api, docs, def})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		host, path string
		want       *Tenant
	}{
		{"shop.example.com", "/anything", shop},     // host rule
		{"shop.example.com:8080", "/x", shop},       // port stripped
		{"SHOP.EXAMPLE.COM", "/x", shop},            // case-insensitive
		{"docs.example.com", "/shop/api/v1", docs},  // host wins over prefix
		{"[::1]:9090", "/x", docs},                  // bracketed IPv6 with port
		{"::1", "/x", docs},                         // bare IPv6
		{"other.example.com", "/shop/api/v1", api},  // longest prefix wins
		{"other.example.com", "/shop/cart", shop},   // shorter prefix
		{"other.example.com", "/unmatched", def},    // catch-all
	}
	for _, c := range cases {
		if got := r.Resolve(c.host, c.path); got != c.want {
			name := "<nil>"
			if got != nil {
				name = got.Name
			}
			t.Errorf("Resolve(%q, %q) = %s, want %s", c.host, c.path, name, c.want.Name)
		}
	}

	if got, ok := r.Lookup("api"); !ok || got != api {
		t.Fatalf("Lookup(api) = %v, %v", got, ok)
	}
	if _, ok := r.Lookup("ghost"); ok {
		t.Fatal("Lookup(ghost) succeeded")
	}
}

func TestResolverNoDefault(t *testing.T) {
	r, err := NewResolver([]*Tenant{{Name: "a", Hosts: []string{"a.test"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Resolve("b.test", "/"); got != nil {
		t.Fatalf("Resolve with no default = %v, want nil", got.Name)
	}
}

func TestResolverRejects(t *testing.T) {
	cases := []struct {
		name    string
		tenants []*Tenant
		want    string
	}{
		{"none", nil, "no tenants"},
		{"dup name", []*Tenant{{Name: "a"}, {Name: "a", Hosts: []string{"a.test"}}}, "duplicate name"},
		{"dup host", []*Tenant{
			{Name: "a", Hosts: []string{"x.test"}},
			{Name: "b", Hosts: []string{"X.test:80"}},
		}, "already routes"},
		{"dup prefix", []*Tenant{
			{Name: "a", PathPrefix: "/p/"},
			{Name: "b", PathPrefix: "/p/"},
		}, "already routes"},
		{"two defaults", []*Tenant{{Name: "a"}, {Name: "b"}}, "catch-all"},
		{"bad name", []*Tenant{{Name: "a.b"}}, "must not contain"},
		{"bad upstream", []*Tenant{{Name: "a", Upstream: "not a url", Hosts: []string{"a.test"}}}, "absolute URL"},
		{"bad prefix", []*Tenant{{Name: "a", PathPrefix: "p/"}}, "must start with /"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewResolver(c.tenants)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestContextRoundTrip(t *testing.T) {
	req := httptest.NewRequest("GET", "/", nil)
	if _, ok := FromContext(req.Context()); ok {
		t.Fatal("fresh context carries a tenant")
	}
	want := &Tenant{Name: "t"}
	ctx := NewContext(req.Context(), want)
	if got, ok := FromContext(ctx); !ok || got != want {
		t.Fatalf("FromContext = %v, %v", got, ok)
	}
}

func TestHandler(t *testing.T) {
	a := &Tenant{Name: "a", Hosts: []string{"a.test"}}
	r, err := NewResolver([]*Tenant{a})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	var seen *Tenant
	var seenOK bool
	h := Handler(r, reg, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		seen, seenOK = FromContext(req.Context())
	}))

	req := httptest.NewRequest("GET", "http://a.test/x", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if !seenOK || seen != a {
		t.Fatalf("handler saw tenant %v, %v", seen, seenOK)
	}

	req = httptest.NewRequest("GET", "http://nobody.test/x", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if seenOK {
		t.Fatal("unrouted request carried a tenant")
	}

	snap := reg.Snapshot()
	if snap.Counters["tenant.a.requests"] != 1 {
		t.Fatalf("tenant.a.requests = %d, want 1", snap.Counters["tenant.a.requests"])
	}
	if snap.Counters["tenant.unrouted.requests"] != 1 {
		t.Fatalf("tenant.unrouted.requests = %d, want 1", snap.Counters["tenant.unrouted.requests"])
	}
}

func TestParseConfig(t *testing.T) {
	doc := `{
	  "tenants": [
	    {
	      "name": "shop",
	      "upstream": "http://127.0.0.1:9001",
	      "hosts": ["shop.example.com"],
	      "cachePolicy": "gdsf",
	      "cacheBudget": 1048576,
	      "maxInflight": 64,
	      "requestBudget": "150ms",
	      "staleFor": "5m",
	      "healthInterval": "500ms"
	    },
	    {"name": "blog", "upstream": "http://127.0.0.1:9002", "pathPrefix": "/blog/"}
	  ],
	  "cluster": {"instance": "http://127.0.0.1:8001", "peers": ["http://127.0.0.1:8002"]}
	}`
	c, err := ParseConfig([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tenants) != 2 {
		t.Fatalf("parsed %d tenants, want 2", len(c.Tenants))
	}
	if !c.Cluster.Enabled() {
		t.Fatal("cluster section not parsed")
	}
	shop, err := c.Tenants[0].Tenant()
	if err != nil {
		t.Fatal(err)
	}
	if shop.RequestBudget != 150*time.Millisecond || shop.StaleFor != 5*time.Minute {
		t.Fatalf("durations parsed wrong: %v, %v", shop.RequestBudget, shop.StaleFor)
	}
	if shop.Policy.Eviction == nil {
		t.Fatal("gdsf policy not resolved")
	}
	if _, err := c.Resolver(); err != nil {
		t.Fatal(err)
	}
}

func TestParseConfigRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"not json", `{`, "tenant config"},
		{"unknown field", `{"tenants":[{"name":"a","upstream":"http://x","hots":["a.test"]}]}`, "unknown field"},
		{"no tenants", `{"tenants":[]}`, "no tenants"},
		{"no upstream", `{"tenants":[{"name":"a"}]}`, "missing upstream"},
		{"bad policy", `{"tenants":[{"name":"a","upstream":"http://x","cachePolicy":"magic"}]}`, "magic"},
		{"bad duration", `{"tenants":[{"name":"a","upstream":"http://x","staleFor":"fast"}]}`, "duration"},
		{"dup names", `{"tenants":[
			{"name":"a","upstream":"http://x","hosts":["a.test"]},
			{"name":"a","upstream":"http://y","hosts":["b.test"]}]}`, "duplicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseConfig([]byte(c.doc))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}
