package core

import "strings"

// RegistrationSnippet is the inline script the server injects into every
// HTML page so that first-time visitors install the CacheCatalyst Service
// Worker (§3: "the web server also inserts the registration code of the
// Service Worker in the HTML file").
const RegistrationSnippet = `<script>if("serviceWorker" in navigator){navigator.serviceWorker.register("` + ServiceWorkerPath + `")}</script>`

// InjectRegistration inserts the Service-Worker registration snippet into an
// HTML document: immediately after the opening <head> tag when present,
// otherwise prepended. Documents that already contain the snippet are
// returned unchanged, so re-serving rewritten content is idempotent.
func InjectRegistration(htmlBody string) string {
	if strings.Contains(htmlBody, RegistrationSnippet) {
		return htmlBody
	}
	idx := indexAfterHeadOpen(htmlBody)
	if idx < 0 {
		return RegistrationSnippet + htmlBody
	}
	return htmlBody[:idx] + RegistrationSnippet + htmlBody[idx:]
}

// indexAfterHeadOpen returns the byte offset just past the opening <head...>
// tag, or -1 when the document has none.
func indexAfterHeadOpen(s string) int {
	lower := strings.ToLower(s)
	from := 0
	for {
		i := strings.Index(lower[from:], "<head")
		if i < 0 {
			return -1
		}
		i += from
		after := i + len("<head")
		if after < len(s) {
			switch s[after] {
			case '>', ' ', '\t', '\n', '\r':
			default:
				from = after
				continue // e.g. <header>
			}
		}
		end := strings.IndexByte(s[i:], '>')
		if end < 0 {
			return -1
		}
		return i + end + 1
	}
}

// ServiceWorkerScript is the JavaScript Service Worker a real browser would
// run. The Go emulation in internal/sw implements the same algorithm; this
// script exists so cmd/catalystd serves a genuinely deployable artifact and
// documents the client contract in executable form.
const ServiceWorkerScript = `// CacheCatalyst Service Worker.
// Serves cached same-origin subresources without revalidation round trips
// by honoring the X-Etag-Config map delivered with each navigation.
const CACHE = "cachecatalyst-v1";
let etagConfig = {};

self.addEventListener("install", (e) => self.skipWaiting());
self.addEventListener("activate", (e) => e.waitUntil(self.clients.claim()));

async function handleNavigation(request) {
  const resp = await fetch(request);
  const cfg = resp.headers.get("X-Etag-Config");
  if (cfg) {
    try { etagConfig = JSON.parse(cfg); } catch (_) { etagConfig = {}; }
  }
  return resp;
}

async function handleSubresource(request) {
  const url = new URL(request.url);
  const key = url.pathname + url.search;
  const cache = await caches.open(CACHE);
  const cached = await cache.match(request);
  if (cached) {
    const have = cached.headers.get("ETag");
    const want = etagConfig[key];
    if (have && want && have === want) {
      return cached; // zero network round trips
    }
  }
  const resp = await fetch(request);
  if (resp.ok && resp.headers.get("Cache-Control") !== "no-store") {
    cache.put(request, resp.clone());
  }
  return resp;
}

self.addEventListener("fetch", (event) => {
  const request = event.request;
  if (request.method !== "GET") return;
  if (new URL(request.url).origin !== self.location.origin) return;
  if (request.mode === "navigate") {
    event.respondWith(handleNavigation(request));
  } else {
    event.respondWith(handleSubresource(request));
  }
});
`
