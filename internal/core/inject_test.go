package core

import (
	"strings"
	"testing"
	"testing/quick"

	"cachecatalyst/internal/htmlparse"
)

func TestInjectAfterHead(t *testing.T) {
	in := `<!DOCTYPE html><html><head><title>T</title></head><body></body></html>`
	out := InjectRegistration(in)
	wantPrefix := `<!DOCTYPE html><html><head>` + RegistrationSnippet
	if !strings.HasPrefix(out, wantPrefix) {
		t.Fatalf("snippet not after <head>: %s", out)
	}
}

func TestInjectHeadWithAttributes(t *testing.T) {
	in := `<html><head lang="en"><title>T</title></head></html>`
	out := InjectRegistration(in)
	if !strings.Contains(out, `<head lang="en">`+RegistrationSnippet) {
		t.Fatalf("attributed head mishandled: %s", out)
	}
}

func TestInjectSkipsHeaderElement(t *testing.T) {
	// <header> must not be mistaken for <head>.
	in := `<html><body><header>nav</header></body></html>`
	out := InjectRegistration(in)
	if !strings.HasPrefix(out, RegistrationSnippet) {
		t.Fatalf("no-head document should get snippet prepended: %s", out)
	}
	if strings.Contains(out, "<header>"+RegistrationSnippet) {
		t.Fatal("snippet injected inside <header>")
	}
}

func TestInjectNoHead(t *testing.T) {
	out := InjectRegistration(`<p>bare</p>`)
	if !strings.HasPrefix(out, RegistrationSnippet) {
		t.Fatalf("got %s", out)
	}
}

func TestInjectIdempotent(t *testing.T) {
	in := `<html><head></head></html>`
	once := InjectRegistration(in)
	twice := InjectRegistration(once)
	if once != twice {
		t.Fatal("injection not idempotent")
	}
	if strings.Count(twice, RegistrationSnippet) != 1 {
		t.Fatal("snippet duplicated")
	}
}

func TestInjectUppercaseHead(t *testing.T) {
	out := InjectRegistration(`<HTML><HEAD></HEAD></HTML>`)
	if !strings.Contains(out, "<HEAD>"+RegistrationSnippet) {
		t.Fatalf("uppercase head missed: %s", out)
	}
}

func TestInjectedDocumentStillParses(t *testing.T) {
	in := `<html><head><link rel="stylesheet" href="a.css"></head><body><img src="b.png"></body></html>`
	out := InjectRegistration(in)
	rs := htmlparse.ExtractFromHTML(out)
	urls := map[string]bool{}
	for _, r := range rs {
		urls[r.URL] = true
	}
	if !urls["a.css"] || !urls["b.png"] {
		t.Fatalf("injection broke resource extraction: %v", urls)
	}
	// The snippet itself is inline (no src) and must not add a resource.
	if len(rs) != 2 {
		t.Fatalf("snippet added resources: %v", rs)
	}
}

func TestRegistrationSnippetReferencesWellKnownPath(t *testing.T) {
	if !strings.Contains(RegistrationSnippet, ServiceWorkerPath) {
		t.Fatal("snippet does not register the well-known SW path")
	}
}

func TestServiceWorkerScriptMentionsHeader(t *testing.T) {
	if !strings.Contains(ServiceWorkerScript, HeaderName) {
		t.Fatal("SW script does not read the X-Etag-Config header")
	}
}

// Property: injection always yields a document that contains the snippet
// exactly once and retains the original content.
func TestInjectQuick(t *testing.T) {
	f := func(body string) bool {
		out := InjectRegistration(body)
		if strings.Count(out, RegistrationSnippet) < 1 {
			return false
		}
		// Original content preserved (snippet removal restores input).
		return strings.Replace(out, RegistrationSnippet, "", 1) == body
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
