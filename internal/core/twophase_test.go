package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachecatalyst/internal/etag"
)

func TestExtractPageRefsOrderAndDedup(t *testing.T) {
	html := `<html><head>
		<link rel="stylesheet" href="/a.css">
		<script src="/app.js"></script>
	</head><body>
		<img src="/logo.png">
		<img src="/logo.png">
		<script src="/a.css"></script>
		<img src="https://cdn.example/x.png">
	</body></html>`
	refs := ExtractPageRefs("/index.html", html)
	want := []Ref{
		{Key: "/a.css", CSS: true},
		{Key: "/app.js"},
		{Key: "/logo.png"},
		{Key: "https://cdn.example/x.png", Cross: true},
	}
	if len(refs) != len(want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("refs[%d] = %v, want %v", i, refs[i], want[i])
		}
	}
}

func TestExtractPageRefsMergesCSSFlagAcrossOccurrences(t *testing.T) {
	// A path referenced first as a plain resource and later as a
	// stylesheet must still be recursed into.
	html := `<img src="/dual.css"><link rel="stylesheet" href="/dual.css">`
	refs := ExtractPageRefs("/", html)
	if len(refs) != 1 || !refs[0].CSS {
		t.Fatalf("refs = %v, want one CSS entry", refs)
	}
}

func TestExtractCSSRefs(t *testing.T) {
	refs := ExtractCSSRefs("/css/a.css", `@import "deep.css"; .x { background: url(../img/bg.png); }`)
	want := []Ref{
		{Key: "/css/deep.css", CSS: true},
		{Key: "/img/bg.png"},
	}
	if len(refs) != len(want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("refs[%d] = %v, want %v", i, refs[i], want[i])
		}
	}
}

// deepSite builds a resolver and page exercising CSS recursion, duplicate
// references, missing resources, and cross-origin entries all at once.
func deepSite() (*fakeResolver, string, func(string) (etag.Tag, bool)) {
	res := &fakeResolver{tags: map[string]etag.Tag{}, css: map[string]string{}}
	var html string
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("/css/s%d.css", i)
		res.tags[p] = etag.ForVersion(p, 1)
		res.css[p] = fmt.Sprintf("@import 'n%d.css'; .x { background: url(/img/c%d.png) }", i, i)
		np := fmt.Sprintf("/css/n%d.css", i)
		res.tags[np] = etag.ForVersion(np, 1)
		res.css[np] = fmt.Sprintf(".y { src: url(/fonts/f%d.woff) }", i)
		res.tags[fmt.Sprintf("/img/c%d.png", i)] = etag.ForVersion(p, 2)
		res.tags[fmt.Sprintf("/fonts/f%d.woff", i)] = etag.ForVersion(np, 2)
		html += fmt.Sprintf(`<link rel="stylesheet" href="%s">`, p)
	}
	for i := 0; i < 30; i++ {
		p := fmt.Sprintf("/img/i%02d.png", i)
		res.tags[p] = etag.ForVersion(p, 1)
		html += fmt.Sprintf(`<img src="%s">`, p)
	}
	html += `<img src="/missing.png"><img src="/img/i00.png">`
	html += `<script src="https://cdn.example/lib.js"></script>`
	xo := func(u string) (etag.Tag, bool) { return etag.ForVersion(u, 9), true }
	return res, html, xo
}

// Property: the parallel resolve phase produces exactly the map the
// sequential one does, whatever the fan-out width.
func TestResolveRefsParallelMatchesSequential(t *testing.T) {
	res, html, xo := deepSite()
	seq := BuildMap("/index.html", html, res, BuildOptions{CrossOriginETag: xo})
	if len(seq) == 0 {
		t.Fatal("sequential map empty")
	}
	for _, workers := range []int{2, 4, 16, 64} {
		par := BuildMap("/index.html", html, res, BuildOptions{CrossOriginETag: xo, Concurrency: workers})
		if len(par) != len(seq) {
			t.Fatalf("concurrency %d: %d entries, want %d", workers, len(par), len(seq))
		}
		for p, want := range seq {
			if par[p] != want {
				t.Errorf("concurrency %d: %q = %v, want %v", workers, p, par[p], want)
			}
		}
	}
}

func TestResolveRefsMaxEntriesDeterministicUnderConcurrency(t *testing.T) {
	res, html, xo := deepSite()
	seq := BuildMap("/index.html", html, res, BuildOptions{CrossOriginETag: xo, MaxEntries: 7})
	if len(seq) != 7 {
		t.Fatalf("sequential capped map has %d entries", len(seq))
	}
	for trial := 0; trial < 10; trial++ {
		par := BuildMap("/index.html", html, res, BuildOptions{CrossOriginETag: xo, MaxEntries: 7, Concurrency: 8})
		if len(par) != 7 {
			t.Fatalf("capped map has %d entries", len(par))
		}
		for p := range par {
			if _, ok := seq[p]; !ok {
				t.Fatalf("trial %d: parallel cap kept %q, sequential did not (%v vs %v)", trial, p, par, seq)
			}
		}
	}
}

// slowResolver serializes nothing and sleeps per lookup, to make the resolve
// fan-out observable in wall-clock time.
type slowResolver struct {
	delay    time.Duration
	inFlight atomic.Int64
	peak     atomic.Int64
}

func (s *slowResolver) ETagFor(path string) (etag.Tag, bool) {
	n := s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	for {
		p := s.peak.Load()
		if n <= p || s.peak.CompareAndSwap(p, n) {
			break
		}
	}
	time.Sleep(s.delay)
	return etag.ForVersion(path, 1), true
}

func (s *slowResolver) StylesheetBody(string) (string, bool) { return "", false }

func TestResolveRefsActuallyFansOut(t *testing.T) {
	const n = 16
	var html string
	for i := 0; i < n; i++ {
		html += fmt.Sprintf(`<img src="/i%02d.png">`, i)
	}
	res := &slowResolver{delay: 20 * time.Millisecond}
	start := time.Now()
	m := BuildMap("/", html, res, BuildOptions{Concurrency: n})
	elapsed := time.Since(start)
	if len(m) != n {
		t.Fatalf("map has %d entries", len(m))
	}
	if res.peak.Load() < 2 {
		t.Fatalf("peak in-flight lookups = %d, want concurrent resolution", res.peak.Load())
	}
	// Sequential cost is n*delay = 320ms; allow generous scheduling slack
	// while still proving overlap.
	if elapsed > time.Duration(n)*res.delay/2 {
		t.Fatalf("resolve took %v, sequential bound is %v", elapsed, time.Duration(n)*res.delay)
	}
}

// Property (race detector food): one shared resolver, many concurrent
// BuildMap calls with fan-out enabled — no data races, identical maps.
func TestResolveRefsConcurrentBuilders(t *testing.T) {
	res, html, xo := deepSite()
	want := BuildMap("/index.html", html, res, BuildOptions{CrossOriginETag: xo})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				m := BuildMap("/index.html", html, res, BuildOptions{CrossOriginETag: xo, Concurrency: 4})
				if len(m) != len(want) {
					t.Errorf("map size %d, want %d", len(m), len(want))
					return
				}
			}
		}()
	}
	wg.Wait()
}
