package core

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"cachecatalyst/internal/etag"
)

// fakeResolver is a Resolver backed by maps.
type fakeResolver struct {
	tags map[string]etag.Tag
	css  map[string]string
}

func (f *fakeResolver) ETagFor(path string) (etag.Tag, bool) {
	t, ok := f.tags[path]
	return t, ok
}

func (f *fakeResolver) StylesheetBody(path string) (string, bool) {
	b, ok := f.css[path]
	return b, ok
}

func tag(s string) etag.Tag { return etag.Tag{Opaque: s} }

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := ETagMap{
		"/a.css":      tag("a1"),
		"/b.js":       tag("b2"),
		"/img/d.jpg":  {Opaque: "d4", Weak: true},
		"/q?x=1&y=2":  tag("q5"),
		`/weird"path`: tag("w6"),
	}
	got, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m) {
		t.Fatalf("got %d entries, want %d", len(got), len(m))
	}
	for p, want := range m {
		if got[p] != want {
			t.Errorf("%q = %v, want %v", p, got[p], want)
		}
	}
}

func TestEncodeCanonical(t *testing.T) {
	m := ETagMap{"/z": tag("1"), "/a": tag("2")}
	enc := m.Encode()
	if !strings.Contains(enc, `"/a"`) || strings.Index(enc, `"/a"`) > strings.Index(enc, `"/z"`) {
		t.Fatalf("keys not sorted: %s", enc)
	}
	if enc != m.Encode() {
		t.Fatal("encoding not deterministic")
	}
}

// TestWriteJSONStringMatchesMarshal pins the hand-rolled string encoder to
// encoding/json's default output byte for byte: the wire form must not
// drift from what a JavaScript Service Worker (or any JSON parser) was
// tested against, including the HTML-escaping of <, >, and &.
func TestWriteJSONStringMatchesMarshal(t *testing.T) {
	cases := []string{
		"", "/a.css", `"v123"`, `W/"weak"`, "back\\slash",
		"<script>&amp;</script>", "ctrl\x00\x01\x1f", "tab\tnl\ncr\r",
		"unicode-é  ", "invalid-\xff\xfe-utf8",
		"/path?q=a&b=<c>", "mixed \"quote\" and ü",
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("Marshal(%q): %v", s, err)
		}
		var b strings.Builder
		writeJSONString(&b, s)
		if b.String() != string(want) {
			t.Errorf("writeJSONString(%q) = %s, want %s", s, b.String(), want)
		}
	}
}

func TestDecodeEmpty(t *testing.T) {
	for _, in := range []string{"", "  ", "{}"} {
		m, err := DecodeMap(in)
		if err != nil || len(m) != 0 {
			t.Errorf("DecodeMap(%q) = %v, %v", in, m, err)
		}
	}
}

func TestDecodeMalformedJSON(t *testing.T) {
	if _, err := DecodeMap("{not json"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDecodeSkipsBadTags(t *testing.T) {
	m, err := DecodeMap(`{"/ok":"\"v1\"","/bad":"W/unquoted"}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 {
		t.Fatalf("got %v", m)
	}
	if m["/ok"] != tag("v1") {
		t.Fatalf("ok entry = %v", m["/ok"])
	}
}

func TestWireSizeMatchesHeaderCost(t *testing.T) {
	m := ETagMap{"/a.css": tag("a1")}
	want := len("X-Etag-Config: " + m.Encode() + "\r\n")
	if got := m.WireSize(); got != want {
		t.Fatalf("WireSize = %d, want %d", got, want)
	}
	if (ETagMap{}).WireSize() >= m.WireSize() {
		t.Fatal("wire size should grow with entries")
	}
}

func TestBuildMapFigure1(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{
		"/a.css": tag("ea"),
		"/b.js":  tag("eb"),
		"/d.jpg": tag("ed"),
	}}
	html := `<html><head><link rel="stylesheet" href="a.css"><script src="b.js"></script></head>
		<body><img src="d.jpg"></body></html>`
	m := BuildMap("/index.html", html, res, BuildOptions{})
	if len(m) != 3 {
		t.Fatalf("map = %v", m)
	}
	for p, want := range res.tags {
		if m[p] != want {
			t.Errorf("%q = %v, want %v", p, m[p], want)
		}
	}
}

func TestBuildMapRecursesIntoCSS(t *testing.T) {
	res := &fakeResolver{
		tags: map[string]etag.Tag{
			"/css/a.css":    tag("a"),
			"/css/deep.css": tag("deep"),
			"/css/bg.png":   tag("bg"),
			"/fonts/f.woff": tag("f"),
		},
		css: map[string]string{
			"/css/a.css":    `@import "deep.css"; .x { background: url(bg.png); }`,
			"/css/deep.css": `.y { src: url(../fonts/f.woff); }`,
		},
	}
	m := BuildMap("/", `<link rel="stylesheet" href="/css/a.css">`, res, BuildOptions{})
	for _, p := range []string{"/css/a.css", "/css/deep.css", "/css/bg.png", "/fonts/f.woff"} {
		if _, ok := m[p]; !ok {
			t.Errorf("missing %q in %v", p, m)
		}
	}
}

func TestBuildMapImportCycleTerminates(t *testing.T) {
	res := &fakeResolver{
		tags: map[string]etag.Tag{"/a.css": tag("a"), "/b.css": tag("b")},
		css: map[string]string{
			"/a.css": `@import "b.css";`,
			"/b.css": `@import "a.css";`,
		},
	}
	m := BuildMap("/", `<link rel="stylesheet" href="/a.css">`, res, BuildOptions{})
	if len(m) != 2 {
		t.Fatalf("map = %v", m)
	}
}

func TestBuildMapSkipsCrossOrigin(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{"/local.js": tag("l")}}
	html := `<script src="/local.js"></script>
		<script src="https://cdn.example.com/remote.js"></script>
		<img src="//other.example/img.png">`
	m := BuildMap("/index.html", html, res, BuildOptions{})
	if len(m) != 1 {
		t.Fatalf("cross-origin leaked into map: %v", m)
	}
}

func TestBuildMapSkipsMissingResources(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{}}
	m := BuildMap("/", `<img src="/ghost.png">`, res, BuildOptions{})
	if len(m) != 0 {
		t.Fatalf("nonexistent resource in map: %v", m)
	}
}

func TestBuildMapResolvesRelativePaths(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{
		"/blog/style.css": tag("s"),
		"/shared/app.js":  tag("j"),
	}}
	html := `<link rel=stylesheet href="style.css"><script src="../shared/app.js"></script>`
	m := BuildMap("/blog/post.html", html, res, BuildOptions{})
	if _, ok := m["/blog/style.css"]; !ok {
		t.Errorf("relative href unresolved: %v", m)
	}
	if _, ok := m["/shared/app.js"]; !ok {
		t.Errorf("dot-dot href unresolved: %v", m)
	}
}

func TestBuildMapKeepsQueryStrings(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{"/app.js?v=3": tag("v3")}}
	m := BuildMap("/", `<script src="/app.js?v=3"></script>`, res, BuildOptions{})
	if _, ok := m["/app.js?v=3"]; !ok {
		t.Fatalf("query string lost: %v", m)
	}
}

func TestBuildMapMaxEntries(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{
		"/1.png": tag("1"), "/2.png": tag("2"), "/3.png": tag("3"),
	}}
	html := `<img src="/1.png"><img src="/2.png"><img src="/3.png">`
	m := BuildMap("/", html, res, BuildOptions{MaxEntries: 2})
	if len(m) != 2 {
		t.Fatalf("MaxEntries ignored: %v", m)
	}
}

func TestDecide(t *testing.T) {
	m := ETagMap{"/a.css": tag("v2"), "/weak.js": {Opaque: "w", Weak: true}}
	tests := []struct {
		name   string
		path   string
		cached etag.Tag
		want   Decision
	}{
		{"match serves from cache", "/a.css", tag("v2"), ServeFromCache},
		{"mismatch fetches", "/a.css", tag("v1"), FetchFromNetwork},
		{"no cached copy fetches", "/a.css", etag.Tag{}, FetchFromNetwork},
		{"uncovered path fetches", "/unknown.js", tag("x"), FetchFromNetwork},
		{"weak cached vs strong map fetches", "/a.css", etag.Tag{Opaque: "v2", Weak: true}, FetchFromNetwork},
		{"weak map tag allows weak match", "/weak.js", tag("w"), ServeFromCache},
	}
	for _, tt := range tests {
		if got := Decide(m, tt.path, tt.cached); got != tt.want {
			t.Errorf("%s: Decide = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestDecisionString(t *testing.T) {
	if ServeFromCache.String() != "serve-from-cache" || FetchFromNetwork.String() != "fetch-from-network" {
		t.Fatal("Decision strings wrong")
	}
}

// Property: Encode/Decode is lossless for arbitrary path/tag content.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(paths []string, seeds []uint64) bool {
		m := ETagMap{}
		for i, p := range paths {
			if p == "" {
				continue
			}
			var seed uint64
			if i < len(seeds) {
				seed = seeds[i]
			}
			m["/"+p] = etag.ForVersion(p, seed)
		}
		got, err := DecodeMap(m.Encode())
		if err != nil || len(got) != len(m) {
			return false
		}
		for p, want := range m {
			if got[p] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (safety): Decide never serves from cache when the cached tag
// differs from the map's current tag — CacheCatalyst must not introduce
// staleness.
func TestDecideNeverServesStaleQuick(t *testing.T) {
	f := func(path string, vCached, vCurrent uint64) bool {
		p := "/" + path
		m := ETagMap{p: etag.ForVersion(p, vCurrent)}
		d := Decide(m, p, etag.ForVersion(p, vCached))
		if vCached == vCurrent {
			return d == ServeFromCache
		}
		return d == FetchFromNetwork
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildMapHonorsBaseHref(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{
		"/assets/v2/app.js":   tag("a"),
		"/assets/v2/site.css": tag("s"),
	}}
	html := `<html><head><base href="/assets/v2/">
		<link rel="stylesheet" href="site.css"><script src="app.js"></script></head></html>`
	m := BuildMap("/index.html", html, res, BuildOptions{})
	for _, p := range []string{"/assets/v2/app.js", "/assets/v2/site.css"} {
		if _, ok := m[p]; !ok {
			t.Errorf("base-href resolution missed %q: %v", p, m)
		}
	}
}
