package core

import (
	"testing"

	"cachecatalyst/internal/etag"
)

func xoResolver(urls map[string]etag.Tag) func(string) (etag.Tag, bool) {
	return func(absURL string) (etag.Tag, bool) {
		t, ok := urls[absURL]
		return t, ok
	}
}

func TestBuildMapCrossOriginResolved(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{"/local.css": tag("l")}}
	html := `<link rel="stylesheet" href="/local.css">
		<img src="https://cdn.example/img/x.png">
		<script src="//static.example/lib.js"></script>`
	opts := BuildOptions{CrossOriginETag: xoResolver(map[string]etag.Tag{
		"https://cdn.example/img/x.png": tag("cdn1"),
		"https://static.example/lib.js": tag("lib9"),
	})}
	m := BuildMap("/index.html", html, res, opts)
	if len(m) != 3 {
		t.Fatalf("map = %v", m)
	}
	if m["https://cdn.example/img/x.png"] != tag("cdn1") {
		t.Errorf("cdn entry = %v", m["https://cdn.example/img/x.png"])
	}
	if m["https://static.example/lib.js"] != tag("lib9") {
		t.Errorf("protocol-relative entry = %v", m["https://static.example/lib.js"])
	}
}

func TestBuildMapCrossOriginUnresolvedSkipped(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{}}
	html := `<img src="https://unknown.example/x.png">`
	m := BuildMap("/", html, res, BuildOptions{CrossOriginETag: xoResolver(nil)})
	if len(m) != 0 {
		t.Fatalf("unresolvable third-party leaked: %v", m)
	}
}

func TestBuildMapCrossOriginDisabledByDefault(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{}}
	html := `<img src="https://cdn.example/x.png">`
	if m := BuildMap("/", html, res, BuildOptions{}); len(m) != 0 {
		t.Fatalf("cross-origin resolved without a resolver: %v", m)
	}
}

func TestBuildMapCrossOriginKeepsQuery(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{}}
	want := "https://cdn.example/a.js?v=2"
	html := `<script src="` + want + `"></script>`
	m := BuildMap("/", html, res, BuildOptions{CrossOriginETag: xoResolver(map[string]etag.Tag{want: tag("q")})})
	if m[want] != tag("q") {
		t.Fatalf("map = %v", m)
	}
}

func TestBuildMapCrossOriginRejectsWeirdSchemes(t *testing.T) {
	res := &fakeResolver{tags: map[string]etag.Tag{}}
	called := false
	opts := BuildOptions{CrossOriginETag: func(string) (etag.Tag, bool) {
		called = true
		return tag("x"), true
	}}
	m := BuildMap("/", `<img src="ftp://cdn.example/x.png">`, res, opts)
	if called || len(m) != 0 {
		t.Fatalf("non-http scheme resolved: %v (called=%v)", m, called)
	}
}

func TestCrossOriginKey(t *testing.T) {
	tests := []struct {
		host, path, query, want string
	}{
		{"cdn.example", "/a.png", "", "https://cdn.example/a.png"},
		{"cdn.example", "", "", "https://cdn.example/"},
		{"cdn.example", "/a", "v=1", "https://cdn.example/a?v=1"},
	}
	for _, tt := range tests {
		if got := CrossOriginKey(tt.host, tt.path, tt.query); got != tt.want {
			t.Errorf("CrossOriginKey(%q,%q,%q) = %q, want %q", tt.host, tt.path, tt.query, got, tt.want)
		}
	}
}

func TestDecideWithCrossOriginKey(t *testing.T) {
	key := "https://cdn.example/lib.js"
	m := ETagMap{key: tag("v3")}
	if Decide(m, key, tag("v3")) != ServeFromCache {
		t.Error("matching cross-origin entry should serve from cache")
	}
	if Decide(m, key, tag("v2")) != FetchFromNetwork {
		t.Error("stale cross-origin entry must fetch")
	}
}
