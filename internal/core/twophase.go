// Two-phase map building: a pure *extract* phase that turns a document into
// a deduplicated reference list, and a *resolve* phase that turns references
// into entity tags through a Resolver, optionally fanning out across a
// bounded worker pool.
//
// The split exists for the server's hot path. Extraction depends only on the
// document bytes, so callers can memoize it per (URL, content hash) and skip
// the tokenizer and tree builder entirely on unchanged pages; resolution
// depends on live server state (current ETags), so it runs per response —
// but its work items are independent, so a cold page with N subresources can
// cost ~max(probe) instead of sum(probe).
package core

import (
	"context"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"

	"cachecatalyst/internal/cssparse"
	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/htmlparse"
)

// Ref is one subresource reference extracted from an HTML document or a
// stylesheet, in document order.
type Ref struct {
	// Key is the ETagMap key: the origin-relative path (with query) for
	// same-origin references, or the canonical absolute URL (see
	// CrossOriginKey) for third-party ones.
	Key string
	// CSS marks a same-origin stylesheet whose body must be fetched and
	// recursed into during resolution.
	CSS bool
	// Cross marks a third-party reference, resolvable only through
	// BuildOptions.CrossOriginETag.
	Cross bool
}

// ExtractPageRefs is the extract phase for a base HTML document: parse,
// honor <base href>, resolve every subresource reference against the page
// URL, and return the deduplicated reference list in document order. It is a
// pure function of its arguments — no Resolver, no I/O — so callers may
// cache the result keyed by the document's content.
func ExtractPageRefs(pageURL, htmlBody string) []Ref {
	base, err := url.Parse(pageURL)
	if err != nil {
		base = &url.URL{Path: "/"}
	}
	doc := htmlparse.Parse(htmlBody)
	// <base href> redirects relative resolution for the whole document.
	if href, ok := htmlparse.BaseHref(doc); ok {
		if bu, err := url.Parse(href); err == nil {
			base = base.ResolveReference(bu)
		}
	}
	rs := htmlparse.ExtractResources(doc)
	refs := make([]Ref, 0, len(rs))
	index := make(map[string]int, len(rs))
	for _, r := range rs {
		refs = appendRef(refs, index, base, r.URL, r.Kind == htmlparse.KindStylesheet)
	}
	return refs
}

// ExtractCSSRefs is the extract phase for a same-origin stylesheet at
// cssPath: url() and @import references resolved against the stylesheet's
// own location. Like ExtractPageRefs it is pure.
func ExtractCSSRefs(cssPath, body string) []Ref {
	base, err := url.Parse(cssPath)
	if err != nil {
		return nil
	}
	crs := cssparse.ExtractRefs(body)
	refs := make([]Ref, 0, len(crs))
	index := make(map[string]int, len(crs))
	for _, r := range crs {
		refs = appendRef(refs, index, base, r.URL, r.Import)
	}
	return refs
}

// appendRef resolves one raw reference against base and appends it to refs
// unless it is a duplicate (in which case a stylesheet occurrence upgrades
// the existing entry's CSS flag) or unresolvable.
func appendRef(refs []Ref, index map[string]int, base *url.URL, raw string, isCSS bool) []Ref {
	if path, ok := resolveSameOrigin(base, raw); ok {
		if i, dup := index[path]; dup {
			refs[i].CSS = refs[i].CSS || isCSS
			return refs
		}
		index[path] = len(refs)
		return append(refs, Ref{Key: path, CSS: isCSS})
	}
	key, ok := resolveCrossOrigin(base, raw)
	if !ok {
		return refs
	}
	if _, dup := index[key]; dup {
		return refs
	}
	index[key] = len(refs)
	return append(refs, Ref{Key: key, Cross: true})
}

// resolveCrossOrigin canonicalizes a third-party reference into its map key,
// or ok=false for same-origin, non-fetchable, or non-http(s) references.
// Stylesheet recursion is deliberately not attempted cross-origin: the main
// server would have to proxy arbitrary third-party CSS, which §6 of the
// paper leaves out of scope.
func resolveCrossOrigin(base *url.URL, ref string) (string, bool) {
	if !cssparse.IsFetchable(ref) {
		return "", false
	}
	u, err := url.Parse(strings.TrimSpace(ref))
	if err != nil {
		return "", false
	}
	abs := base.ResolveReference(u)
	if abs.Host == "" || abs.Host == base.Host {
		return "", false
	}
	if abs.Scheme == "" {
		abs.Scheme = "https"
	}
	if abs.Scheme != "http" && abs.Scheme != "https" {
		return "", false
	}
	return CrossOriginKey(abs.Host, abs.EscapedPath(), abs.RawQuery), true
}

// ResolveRefs is the resolve phase: look up the current entity tag of every
// reference, recursing into same-origin stylesheets up to
// BuildOptions.MaxCSSDepth, and assemble the ETagMap.
//
// Resolution proceeds in breadth-first levels (the page's own references,
// then the references their stylesheets introduced, and so on); within a
// level the lookups are independent and fan out across up to
// BuildOptions.Concurrency goroutines. The Resolver must be safe for
// concurrent use when Concurrency > 1. Whatever the fan-out, the assembled
// map is deterministic: entries are admitted in extraction order, level by
// level, and MaxEntries truncates that order.
func ResolveRefs(refs []Ref, res Resolver, opts BuildOptions) ETagMap {
	return ResolveRefsContext(context.Background(), refs, res, opts)
}

// ResolveRefsContext is ResolveRefs with cancellation: once ctx is done no
// further Resolver lookups are started — workers finish the call they are
// in, drain, and the map assembled so far is returned. An abandoned page
// build (a client that disconnected mid-render) therefore stops fanning
// probes out at the origin instead of completing the whole BFS. Callers
// that cache assembled maps must not cache a cancelled resolve's partial
// result; check ctx.Err() after the call.
func ResolveRefsContext(ctx context.Context, refs []Ref, res Resolver, opts BuildOptions) ETagMap {
	depth := opts.MaxCSSDepth
	if depth == 0 {
		depth = defaultMaxCSSDepth
	}
	type outcome struct {
		tag      etag.Tag
		ok       bool
		children []Ref
	}
	seen := make(map[string]bool, len(refs))
	seenCSS := make(map[string]bool)
	var order []string
	tags := make(map[string]etag.Tag, len(refs))

	level := make([]Ref, 0, len(refs))
	for _, r := range refs {
		if !seen[r.Key] {
			seen[r.Key] = true
			level = append(level, r)
		}
	}
	for len(level) > 0 && ctx.Err() == nil {
		// Decide recursion up front, while still single-threaded, so the
		// workers never touch the shared seen/seenCSS maps.
		recurse := make([]bool, len(level))
		for i, r := range level {
			if r.CSS && !r.Cross && depth > 0 && !seenCSS[r.Key] {
				seenCSS[r.Key] = true
				recurse[i] = true
			}
		}
		outs := make([]outcome, len(level))
		runIndexed(ctx, len(level), opts.workers(), func(i int) {
			r := level[i]
			if r.Cross {
				if opts.CrossOriginETag == nil {
					return
				}
				if t, ok := opts.CrossOriginETag(r.Key); ok {
					outs[i] = outcome{tag: t, ok: true}
				}
				return
			}
			t, ok := res.ETagFor(r.Key)
			if !ok {
				return
			}
			o := outcome{tag: t, ok: true}
			if recurse[i] {
				if body, ok := res.StylesheetBody(r.Key); ok {
					o.children = ExtractCSSRefs(r.Key, body)
				}
			}
			outs[i] = o
		})
		depth--
		var next []Ref
		for i, r := range level {
			if outs[i].ok {
				order = append(order, r.Key)
				tags[r.Key] = outs[i].tag
			}
			for _, c := range outs[i].children {
				if !seen[c.Key] {
					seen[c.Key] = true
					next = append(next, c)
				}
			}
		}
		level = next
	}

	out := make(ETagMap, len(order))
	for _, k := range order {
		if opts.MaxEntries > 0 && len(out) >= opts.MaxEntries {
			break
		}
		out[k] = tags[k]
	}
	return out
}

// workers returns the resolve fan-out width; anything below 2 means inline
// sequential resolution.
func (o BuildOptions) workers() int {
	if o.Concurrency > 1 {
		return o.Concurrency
	}
	return 1
}

// runIndexed calls fn(i) for every i in [0, n), fanning the calls out across
// at most workers goroutines. workers <= 1 runs inline with zero goroutine
// overhead. Once ctx is done no further calls start; in-flight calls finish
// and every worker goroutine exits before runIndexed returns — cancellation
// never leaks a worker.
func runIndexed(ctx context.Context, n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return
			default:
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
