package core

import (
	"testing"

	"cachecatalyst/internal/etag"
)

// FuzzDecodeMap checks the X-Etag-Config decoder against hostile header
// values: a malicious or corrupted header must fail cleanly (error or
// partial map), never panic, and a re-encoded decode must be stable.
func FuzzDecodeMap(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"/a.css":"\"v1\""}`)
	f.Add(`{"/a":"W/\"x\"","/b":"garbage"}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"dup":"\"1\"","dup":"\"2\""}`)
	f.Add(`{"` + "\x00" + `":"\"v\""}`)
	f.Fuzz(func(t *testing.T, input string) {
		m, err := DecodeMap(input)
		if err != nil {
			return
		}
		// Round-trip stability on the accepted subset.
		again, err := DecodeMap(m.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(m) {
			t.Fatalf("round trip changed size: %d vs %d", len(again), len(m))
		}
		for k, v := range m {
			if again[k] != v {
				t.Fatalf("round trip changed %q: %v vs %v", k, again[k], v)
			}
		}
	})
}

// FuzzBuildMap feeds arbitrary HTML through the full map builder with a
// resolver that accepts everything: no input may panic it, and every key
// must be resolvable back to a sane path or absolute URL.
func FuzzBuildMap(f *testing.F) {
	f.Add("/index.html", `<img src="/a.png">`)
	f.Add("/", `<link rel=stylesheet href=s.css><script src=//x.example/j.js>`)
	f.Add("/p", "<style>@import 'c.css';</style>")
	f.Fuzz(func(t *testing.T, pageURL, html string) {
		res := &acceptAllResolver{}
		m := BuildMap(pageURL, html, res, BuildOptions{
			MaxEntries:      64,
			CrossOriginETag: func(u string) (etag.Tag, bool) { return etag.ForVersion(u, 1), true },
		})
		if len(m) > 64 {
			t.Fatalf("MaxEntries exceeded: %d", len(m))
		}
		for k := range m {
			if k == "" {
				t.Fatal("empty map key")
			}
		}
	})
}

type acceptAllResolver struct{}

func (acceptAllResolver) ETagFor(path string) (etag.Tag, bool) {
	return etag.ForVersion(path, 1), true
}

func (acceptAllResolver) StylesheetBody(path string) (string, bool) {
	return "", false
}
