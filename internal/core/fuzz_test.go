package core

import (
	"strings"
	"testing"

	"cachecatalyst/internal/etag"
)

// FuzzDecodeMap checks the X-Etag-Config decoder against hostile header
// values: a malicious or corrupted header must fail cleanly (error or
// partial map), never panic, and a re-encoded decode must be stable. The
// seeds cover the chaos fault model: truncated JSON (mid-transfer header
// corruption), duplicated keys, oversized values, and non-UTF-8 bytes.
func FuzzDecodeMap(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"/a.css":"\"v1\""}`)
	f.Add(`{"/a":"W/\"x\"","/b":"garbage"}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"dup":"\"1\"","dup":"\"2\""}`)
	f.Add(`{"` + "\x00" + `":"\"v\""}`)
	// Truncation points a ChaosOrigin would produce: a valid encoding cut
	// mid-key, mid-value, and mid-structure.
	full := (ETagMap{"/a.css": {Opaque: "v1"}, "/b.js": {Opaque: "v2"}}).Encode()
	f.Add(full[:len(full)/2])
	f.Add(full[:len(full)-1])
	f.Add(`{"/a.css`)
	// Oversized single value and oversized whole header.
	f.Add(`{"/big":"` + strings.Repeat("A", 4096) + `"}`)
	f.Add(`{` + strings.Repeat(`"/x":"v",`, 2048) + `}`)
	// Non-UTF-8 and control bytes, raw and escaped.
	f.Add("{\"/\xff\xfe\":\"\\\"v\\\"\"}")
	f.Add("\x80\x81\x82")
	f.Add(`{"/a":"` + "\x1b[31m" + `"}`)
	f.Fuzz(func(t *testing.T, input string) {
		m, err := DecodeMap(input)
		if err != nil {
			return
		}
		// Round-trip stability on the accepted subset.
		again, err := DecodeMap(m.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(m) {
			t.Fatalf("round trip changed size: %d vs %d", len(again), len(m))
		}
		for k, v := range m {
			if again[k] != v {
				t.Fatalf("round trip changed %q: %v vs %v", k, again[k], v)
			}
		}
	})
}

// FuzzBuildMap feeds arbitrary HTML through the full map builder with a
// resolver that accepts everything: no input may panic it, and every key
// must be resolvable back to a sane path or absolute URL.
func FuzzBuildMap(f *testing.F) {
	f.Add("/index.html", `<img src="/a.png">`)
	f.Add("/", `<link rel=stylesheet href=s.css><script src=//x.example/j.js>`)
	f.Add("/p", "<style>@import 'c.css';</style>")
	f.Fuzz(func(t *testing.T, pageURL, html string) {
		res := &acceptAllResolver{}
		m := BuildMap(pageURL, html, res, BuildOptions{
			MaxEntries:      64,
			CrossOriginETag: func(u string) (etag.Tag, bool) { return etag.ForVersion(u, 1), true },
		})
		if len(m) > 64 {
			t.Fatalf("MaxEntries exceeded: %d", len(m))
		}
		for k := range m {
			if k == "" {
				t.Fatal("empty map key")
			}
		}
	})
}

// TestDecodeMapRejectsHostileHeaders pins the decoder's behaviour on the
// exact corruption shapes the chaos suite injects: truncated JSON is an
// error (treated upstream like an absent header), oversized headers are
// refused outright, and salvageable maps drop only their bad entries.
func TestDecodeMapRejectsHostileHeaders(t *testing.T) {
	full := (ETagMap{"/a.css": {Opaque: "v1"}, "/b.js": {Opaque: "v2"}}).Encode()
	for _, tc := range []struct {
		name, in string
		wantErr  bool
		wantLen  int
	}{
		{"truncated-half", full[:len(full)/2], true, 0},
		{"truncated-last-byte", full[:len(full)-1], true, 0},
		{"not-an-object", `["/a.css"]`, true, 0},
		{"number", `42`, true, 0},
		{"oversized", `{"/a":"` + strings.Repeat("x", MaxEncodedMapBytes) + `"}`, true, 0},
		{"non-utf8-garbage", "\xff\xfe{\x00", true, 0},
		{"empty", "", false, 0},
		{"whitespace", "  \t ", false, 0},
		{"bad-entry-skipped", `{"/good":"\"v1\"","/bad":"no quotes"}`, false, 1},
		{"intact", full, false, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := DecodeMap(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("DecodeMap(%q) accepted garbage: %v", tc.in[:min(len(tc.in), 40)], m)
				}
				return
			}
			if err != nil {
				t.Fatalf("DecodeMap failed: %v", err)
			}
			if len(m) != tc.wantLen {
				t.Fatalf("len = %d, want %d (%v)", len(m), tc.wantLen, m)
			}
		})
	}
}

type acceptAllResolver struct{}

func (acceptAllResolver) ETagFor(path string) (etag.Tag, bool) {
	return etag.ForVersion(path, 1), true
}

func (acceptAllResolver) StylesheetBody(path string) (string, bool) {
	return "", false
}
