package core

import (
	"fmt"
	"testing"

	"cachecatalyst/internal/etag"
)

func benchMap(n int) ETagMap {
	m := ETagMap{}
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/assets/resource-%03d.js", i)
		m[p] = etag.ForVersion(p, uint64(i))
	}
	return m
}

// BenchmarkMapEncode measures the server-side cost of serializing the
// X-Etag-Config header for a typical page (70 resources).
func BenchmarkMapEncode(b *testing.B) {
	m := benchMap(70)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := m.Encode(); len(s) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkMapDecode measures the client-side parse of the same header.
func BenchmarkMapDecode(b *testing.B) {
	enc := benchMap(70).Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := DecodeMap(enc)
		if err != nil || len(m) != 70 {
			b.Fatal("decode failed")
		}
	}
}

// BenchmarkBuildMap measures the full DOM-traversal + CSS-recursion path
// the server runs per HTML response.
func BenchmarkBuildMap(b *testing.B) {
	res := &fakeResolver{tags: map[string]etag.Tag{}, css: map[string]string{}}
	var html string
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("/css/s%d.css", i)
		res.tags[p] = etag.ForVersion(p, 1)
		res.css[p] = fmt.Sprintf(".x { background: url(/img/c%d.png) }", i)
		res.tags[fmt.Sprintf("/img/c%d.png", i)] = etag.ForVersion(p, 2)
		html += fmt.Sprintf(`<link rel="stylesheet" href="%s">`, p)
	}
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("/img/i%02d.png", i)
		res.tags[p] = etag.ForVersion(p, 1)
		html += fmt.Sprintf(`<img src="%s">`, p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := BuildMap("/index.html", html, res, BuildOptions{})
		if len(m) != 50 {
			b.Fatalf("map size %d", len(m))
		}
	}
}

// BenchmarkDecide measures the per-request Service-Worker decision.
func BenchmarkDecide(b *testing.B) {
	m := benchMap(70)
	tag := m["/assets/resource-033.js"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Decide(m, "/assets/resource-033.js", tag) != ServeFromCache {
			b.Fatal("wrong decision")
		}
	}
}

// BenchmarkInjectRegistration measures the HTML rewrite per navigation.
func BenchmarkInjectRegistration(b *testing.B) {
	html := `<html><head><title>x</title></head><body>` + string(make([]byte, 30_000)) + `</body></html>`
	b.SetBytes(int64(len(html)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := InjectRegistration(html); len(out) <= len(html) {
			b.Fatal("not injected")
		}
	}
}
