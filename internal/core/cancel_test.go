package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/leakcheck"
)

// gateResolver blocks every ETagFor call until released, counting the calls
// that started — the shape of a slow origin mid-probe.
type gateResolver struct {
	started atomic.Int64
	release chan struct{}
}

func (g *gateResolver) ETagFor(path string) (etag.Tag, bool) {
	g.started.Add(1)
	<-g.release
	return etag.ForBytes([]byte(path)), true
}

func (g *gateResolver) StylesheetBody(path string) (string, bool) { return "", false }

func manyRefs(n int) []Ref {
	refs := make([]Ref, n)
	for i := range refs {
		refs[i] = Ref{Key: fmt.Sprintf("/r%03d.js", i)}
	}
	return refs
}

// TestResolveRefsContextCancelStopsFanout verifies the satellite contract:
// a context cancelled mid-build stops the probe workers promptly — no
// further lookups start, every worker goroutine drains (leakcheck), and the
// call returns instead of completing the whole BFS.
func TestResolveRefsContextCancelStopsFanout(t *testing.T) {
	leakcheck.Check(t)

	const workers = 4
	res := &gateResolver{release: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan ETagMap, 1)
	go func() {
		done <- ResolveRefsContext(ctx, manyRefs(64), res, BuildOptions{Concurrency: workers})
	}()

	// Wait for the fan-out to be mid-flight: every worker blocked in a
	// lookup.
	deadline := time.Now().Add(2 * time.Second)
	for res.started.Load() < workers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d lookups started", res.started.Load())
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	close(res.release) // let the in-flight calls finish

	select {
	case m := <-done:
		// Only the in-flight lookups may have completed; the other ~60
		// must never have started.
		if got := res.started.Load(); got > workers {
			t.Fatalf("%d lookups started after cancel (want ≤ %d)", got, workers)
		}
		if len(m) > workers {
			t.Fatalf("cancelled resolve returned %d entries", len(m))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ResolveRefsContext did not return after cancel")
	}
}

// TestResolveRefsContextCancelBeforeStart returns immediately with an empty
// map and never touches the resolver.
func TestResolveRefsContextCancelBeforeStart(t *testing.T) {
	leakcheck.Check(t)
	res := &gateResolver{release: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := ResolveRefsContext(ctx, manyRefs(8), res, BuildOptions{Concurrency: 4})
	if len(m) != 0 {
		t.Fatalf("map has %d entries, want 0", len(m))
	}
	if res.started.Load() != 0 {
		t.Fatalf("%d lookups started under a dead context", res.started.Load())
	}
}

// TestResolveRefsContextSequentialCancel covers the Concurrency<=1 inline
// path: cancellation between items stops the walk.
func TestResolveRefsContextSequentialCancel(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	res := funcResolver(func(path string) (etag.Tag, bool) {
		calls++
		if calls == 3 {
			cancel()
		}
		return etag.ForBytes([]byte(path)), true
	})
	m := ResolveRefsContext(ctx, manyRefs(32), res, BuildOptions{})
	if calls > 3 {
		t.Fatalf("%d lookups ran after cancel", calls)
	}
	if len(m) > 3 {
		t.Fatalf("map has %d entries", len(m))
	}
}

// TestResolveRefsContextUncancelledMatchesResolveRefs: the context variant
// with a live context is byte-for-byte the legacy behaviour.
func TestResolveRefsContextUncancelledMatchesResolveRefs(t *testing.T) {
	res := funcResolver(func(path string) (etag.Tag, bool) {
		return etag.ForBytes([]byte(path)), true
	})
	refs := manyRefs(16)
	a := ResolveRefs(refs, res, BuildOptions{Concurrency: 4})
	b := ResolveRefsContext(context.Background(), refs, res, BuildOptions{Concurrency: 4})
	if len(a) != len(b) || len(a) != 16 {
		t.Fatalf("len(a)=%d len(b)=%d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("maps differ at %q", k)
		}
	}
}

// funcResolver adapts a function to Resolver (no stylesheet bodies).
type funcResolver func(path string) (etag.Tag, bool)

func (f funcResolver) ETagFor(path string) (etag.Tag, bool)      { return f(path) }
func (f funcResolver) StylesheetBody(path string) (string, bool) { return "", false }

// TestRunIndexedCancelUnderRace hammers the worker pool with concurrent
// cancels to give the race detector surface area.
func TestRunIndexedCancelUnderRace(t *testing.T) {
	leakcheck.Check(t)
	for round := 0; round < 20; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			runIndexed(ctx, 100, 8, func(i int) {
				ran.Add(1)
				time.Sleep(50 * time.Microsecond)
			})
		}()
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		cancel()
		wg.Wait()
	}
}
