// Package core implements the paper's contribution: proactive delivery of
// validation tokens ("CacheCatalyst").
//
// Server side, BuildMap performs the modified-Caddy behaviour of §3: when a
// base HTML file is about to be served, traverse its DOM, extract every
// same-origin resource link (recursing into same-origin stylesheets, since
// CSS pulls in further resources), look up the current ETag of each, and
// emit a link→ETag map. The map travels in the X-Etag-Config response
// header.
//
// Client side, Decide implements the Service Worker's per-request choice:
// serve from cache with zero round trips when the cached ETag equals the
// proactively delivered one, otherwise fetch from the origin.
package core

import (
	"encoding/json"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"unicode/utf8"

	"cachecatalyst/internal/cssparse"
	"cachecatalyst/internal/etag"
)

// HeaderName is the response header that carries the ETag map, as named in
// the paper.
const HeaderName = "X-Etag-Config"

// ServiceWorkerPath is the well-known path the server registers the
// CacheCatalyst Service Worker under.
const ServiceWorkerPath = "/cc-sw.js"

// ETagMap maps same-origin resource paths (absolute, origin-relative) to
// their current entity tags.
type ETagMap map[string]etag.Tag

// Get returns the tag for path and whether the map covers it.
func (m ETagMap) Get(path string) (etag.Tag, bool) {
	t, ok := m[path]
	return t, ok
}

// Encode serializes the map to its wire form: a compact JSON object with
// sorted keys, values in entity-tag wire syntax. JSON keeps the header
// parseable by the JavaScript Service Worker in the real deployment, and
// sorting keeps the encoding canonical for tests and size accounting.
func (m ETagMap) Encode() string {
	paths := make([]string, 0, len(m))
	size := 2 // braces
	for p := range m {
		paths = append(paths, p)
		// Quotes, colon, comma, and the tag's own quoting; escaped
		// strings may exceed this, which only costs one regrow.
		size += len(p) + len(m[p].Opaque) + 12
	}
	sort.Strings(paths)
	var b strings.Builder
	b.Grow(size)
	b.WriteByte('{')
	for i, p := range paths {
		if i > 0 {
			b.WriteByte(',')
		}
		writeJSONString(&b, p)
		b.WriteByte(':')
		writeJSONString(&b, m[p].String())
	}
	b.WriteByte('}')
	return b.String()
}

// writeJSONString appends s as a JSON string literal, byte-identical to
// json.Marshal's default (HTML-escaping) output. ASCII — including the
// quotes every entity-tag wire form carries — is escaped inline; only
// non-ASCII input defers to encoding/json, which owns the subtle cases
// (U+2028/U+2029 line separators, invalid UTF-8) so the encoding stays
// canonical.
// jsonSafe marks the ASCII bytes that pass through a JSON string literal
// unescaped under json.Marshal's defaults: printable, and none of the JSON
// or HTML-sensitive metacharacters.
var jsonSafe = func() (t [utf8.RuneSelf]bool) {
	for c := byte(0x20); c < utf8.RuneSelf; c++ {
		t[c] = c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
	}
	return
}()

func writeJSONString(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			enc, _ := json.Marshal(s) // strings always marshal
			b.Write(enc)
			return
		}
	}
	b.WriteByte('"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if jsonSafe[c] {
			continue
		}
		b.WriteString(s[start:i])
		switch c {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default: // <, >, & (HTML escaping) and control bytes
			const hex = "0123456789abcdef"
			b.WriteString(`\u00`)
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xf])
		}
		start = i + 1
	}
	b.WriteString(s[start:])
	b.WriteByte('"')
}

// WireSize returns the byte cost of carrying the encoded map in a response
// header, including the header name, separator and CRLF. The evaluation
// charges this against the base-HTML transfer: proactive tokens are not
// free, and the honesty of Figure 3 depends on counting them.
func (m ETagMap) WireSize() int {
	return WireSizeOf(m.Encode())
}

// WireSizeOf is WireSize for a map already in wire form, so a caller that
// just called Encode does not pay for a second full encoding.
func WireSizeOf(encoded string) int {
	return len(HeaderName) + len(": ") + len(encoded) + len("\r\n")
}

// MaxEncodedMapBytes bounds the header value DecodeMap will touch. A
// legitimate map for even a thousand-resource page encodes well under
// 100 KB; anything larger is hostile or corrupt, and parsing it would let
// one bad response burn client CPU and memory.
const MaxEncodedMapBytes = 1 << 20

// DecodeMap parses the wire form produced by Encode. Unknown or malformed
// entries are skipped rather than failing the whole map, so one bad tag
// cannot disable caching for a page; oversized or structurally invalid
// input is rejected with an error (callers treat that like an absent
// header). DecodeMap never panics, whatever the input — the client's whole
// fault tolerance rests on that.
func DecodeMap(s string) (ETagMap, error) {
	if len(s) > MaxEncodedMapBytes {
		return nil, fmt.Errorf("etag map: %d bytes exceeds limit %d", len(s), MaxEncodedMapBytes)
	}
	if strings.TrimSpace(s) == "" {
		return ETagMap{}, nil
	}
	var raw map[string]string
	if err := json.Unmarshal([]byte(s), &raw); err != nil {
		return nil, fmt.Errorf("etag map: %w", err)
	}
	m := make(ETagMap, len(raw))
	for p, v := range raw {
		if t, ok := etag.Parse(v); ok {
			m[p] = t
		}
	}
	return m, nil
}

// Resolver supplies the server-side facts BuildMap needs about the site
// being served.
type Resolver interface {
	// ETagFor returns the current entity tag for the resource at an
	// origin-relative path, and whether the resource exists.
	ETagFor(path string) (etag.Tag, bool)
	// StylesheetBody returns the content of a same-origin stylesheet for
	// recursive link extraction, and whether it exists (and is CSS).
	StylesheetBody(path string) (string, bool)
}

// BuildOptions tunes BuildMap.
type BuildOptions struct {
	// MaxEntries caps the map size; 0 means unlimited. Pages with
	// thousands of resources would otherwise produce unbounded headers.
	MaxEntries int
	// MaxCSSDepth bounds recursion through @import chains. Zero selects
	// a default of 5, enough for real-world nesting while terminating on
	// import cycles.
	MaxCSSDepth int
	// CrossOriginETag, when set, resolves third-party resources: given an
	// absolute URL it returns the resource's current entity tag. This is
	// the paper's §6 second future-work item — "the main server fetches
	// those resources itself and obtains their ETags". Cross-origin
	// entries are keyed in the map by their absolute URL. When nil,
	// cross-origin references are skipped, matching the preliminary
	// implementation.
	CrossOriginETag func(absURL string) (etag.Tag, bool)
	// Concurrency bounds the worker fan-out of the resolve phase: up to
	// this many references are resolved at once, so a cold page with N
	// subresources costs roughly its slowest probe instead of the sum of
	// all of them. Values below 2 resolve sequentially, which is also the
	// default — a Resolver must be safe for concurrent use before a
	// caller opts in.
	Concurrency int
}

const defaultMaxCSSDepth = 5

// BuildMap inspects a base HTML document and produces the ETag map for its
// same-origin subresources, recursing into same-origin stylesheets. pageURL
// is the origin-relative URL of the document (used to resolve relative
// links); cross-origin references are skipped, exactly as the preliminary
// implementation in the paper does.
//
// BuildMap is the one-shot composition of the two phases in twophase.go;
// callers that can reuse extraction across requests (the middleware's
// rendered-page cache, the server's page-render cache) call ExtractPageRefs
// and ResolveRefs separately.
func BuildMap(pageURL string, htmlBody string, res Resolver, opts BuildOptions) ETagMap {
	return ResolveRefs(ExtractPageRefs(pageURL, htmlBody), res, opts)
}

// CrossOriginKey is the canonical map key for a third-party resource.
func CrossOriginKey(host, escapedPath, rawQuery string) string {
	if escapedPath == "" {
		escapedPath = "/"
	}
	key := "https://" + host + escapedPath
	if rawQuery != "" {
		key += "?" + rawQuery
	}
	return key
}

// resolveSameOrigin resolves ref against base and returns the
// origin-relative path (with query), or ok=false for cross-origin or
// non-fetchable references.
func resolveSameOrigin(base *url.URL, ref string) (string, bool) {
	if !cssparse.IsFetchable(ref) {
		return "", false
	}
	u, err := url.Parse(strings.TrimSpace(ref))
	if err != nil {
		return "", false
	}
	resolved := base.ResolveReference(u)
	if resolved.Host != "" && resolved.Host != base.Host {
		return "", false // cross-origin: deferred to future work in the paper
	}
	if resolved.Scheme != "" && resolved.Scheme != "http" && resolved.Scheme != "https" {
		return "", false
	}
	path := resolved.EscapedPath()
	if path == "" {
		path = "/"
	}
	if resolved.RawQuery != "" {
		path += "?" + resolved.RawQuery
	}
	return path, true
}

// Decision is the Service Worker's verdict for one request.
type Decision int

// Decisions.
const (
	// FetchFromNetwork: no usable cached copy (miss, or the proactive tag
	// differs, or the map does not cover the resource and we cannot prove
	// freshness) — forward the request to the origin.
	FetchFromNetwork Decision = iota
	// ServeFromCache: cached copy proven current by the proactive token —
	// respond locally with zero network round trips.
	ServeFromCache
)

func (d Decision) String() string {
	if d == ServeFromCache {
		return "serve-from-cache"
	}
	return "fetch-from-network"
}

// Decide implements the client-side algorithm of §3: compare the entity tag
// of the cached copy (zero Tag when there is no cached copy) with the
// proactively delivered map entry for the resource.
//
// The conservative default matters: if the map does not cover the path —
// e.g. a JS-discovered resource the server's static extraction missed — the
// Service Worker forwards the request, preserving correctness at the cost
// of the round trip the paper's future work wants to eliminate.
func Decide(m ETagMap, path string, cached etag.Tag) Decision {
	current, covered := m.Get(path)
	if !covered || cached.IsZero() {
		return FetchFromNetwork
	}
	if etag.StrongMatch(cached, current) || etag.WeakMatch(cached, current) && current.Weak {
		return ServeFromCache
	}
	return FetchFromNetwork
}
