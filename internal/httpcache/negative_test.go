package httpcache

import (
	"net/http"
	"testing"
	"time"

	"cachecatalyst/internal/telemetry"
	"cachecatalyst/internal/vclock"
)

func resp404() *Response {
	return &Response{
		StatusCode: http.StatusNotFound,
		Header:     http.Header{"Content-Type": {"text/plain"}},
		Body:       []byte("404 page not found\n"),
	}
}

func newNegativeCache(ttl time.Duration) (*Cache, *vclock.Virtual) {
	clk := vclock.NewVirtual(vclock.Epoch)
	return New(clk, Options{NegativeTTL: ttl}), clk
}

func TestNegativeEntryFreshWithinTTL(t *testing.T) {
	c, clk := newNegativeCache(time.Hour)
	now := clk.Now()
	c.Put("/missing.png", resp404(), now, now)

	clk.Advance(30 * time.Minute)
	e, s := c.Get("/missing.png")
	if s != Fresh {
		t.Fatalf("state = %v, want Fresh", s)
	}
	if !e.Negative || e.Response.StatusCode != http.StatusNotFound {
		t.Fatalf("entry = %+v, want negative 404", e)
	}
	st := c.Stats()
	if st.NegativeHits != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 negative hit counted as a hit", st)
	}
}

// TestNegativeEntryNeverStale: past the TTL the entry is deleted and the
// lookup is a Miss — not Stale. A Stale negative entry would invite a
// conditional revalidation or a stale-if-error serve, both of which could
// resurrect a 404 for a resource that has since appeared.
func TestNegativeEntryNeverStale(t *testing.T) {
	c, clk := newNegativeCache(time.Hour)
	now := clk.Now()
	c.Put("/missing.png", resp404(), now, now)

	clk.Advance(2 * time.Hour)
	e, s := c.Get("/missing.png")
	if s != Miss || e != nil {
		t.Fatalf("expired negative lookup = %v, %v; want nil, Miss", e, s)
	}
	if c.Len() != 0 {
		t.Fatalf("expired negative entry not deleted, len = %d", c.Len())
	}
	// A second lookup is a plain miss too — nothing left to validate.
	if _, s := c.Get("/missing.png"); s != Miss {
		t.Fatalf("second lookup = %v, want Miss", s)
	}
}

// TestNegativeFlipTo200 is the invalidation test from the issue: when the
// resource appears, the 200 must replace the cached 404 immediately.
func TestNegativeFlipTo200(t *testing.T) {
	c, clk := newNegativeCache(time.Hour)
	now := clk.Now()
	c.Put("/late.css", resp404(), now, now)

	if e, s := c.Get("/late.css"); s != Fresh || e.Response.StatusCode != http.StatusNotFound {
		t.Fatalf("before flip: %v, %v", e, s)
	}

	// The resource appears (e.g. deploy finished); the next fetch that
	// reaches the origin stores the real 200.
	clk.Advance(5 * time.Minute)
	now = clk.Now()
	ok := respWith(map[string]string{"Cache-Control": "max-age=3600"}, "body { }")
	c.Put("/late.css", ok, now, now)

	e, s := c.Get("/late.css")
	if s != Fresh || e.Response.StatusCode != http.StatusOK {
		t.Fatalf("after flip: state=%v status=%d, want Fresh 200", s, e.Response.StatusCode)
	}
	if e.Negative {
		t.Fatal("entry still marked negative after flip to 200")
	}
	if string(e.Response.Body) != "body { }" {
		t.Fatalf("body = %q", e.Response.Body)
	}
}

// TestNegativeExpiryThenFlip covers the other flip path: the negative
// entry expires first, the lookup misses, and a full fetch stores the 200.
func TestNegativeExpiryThenFlip(t *testing.T) {
	c, clk := newNegativeCache(time.Hour)
	now := clk.Now()
	c.Put("/late.js", resp404(), now, now)

	clk.Advance(90 * time.Minute)
	if _, s := c.Get("/late.js"); s != Miss {
		t.Fatalf("expired lookup = %v, want Miss", s)
	}
	now = clk.Now()
	c.Put("/late.js", respWith(map[string]string{"Cache-Control": "max-age=60"}, "ok()"), now, now)
	if e, s := c.Get("/late.js"); s != Fresh || e.Response.StatusCode != http.StatusOK {
		t.Fatalf("after refetch: %v, %v", e, s)
	}
}

func TestNegativeDisabledByDefault(t *testing.T) {
	c, clk := newTestCache() // NegativeTTL zero
	now := clk.Now()
	c.Put("/missing.png", resp404(), now, now)
	if c.Len() != 0 {
		t.Fatal("404 stored with negative caching disabled")
	}
}

func TestNegativeRespectsNoStoreAndTruncation(t *testing.T) {
	c, clk := newNegativeCache(time.Hour)
	now := clk.Now()

	ns := resp404()
	ns.Header.Set("Cache-Control", "no-store")
	c.Put("/a", ns, now, now)

	tr := resp404()
	tr.Truncated = true
	c.Put("/b", tr, now, now)

	other := resp404()
	other.StatusCode = http.StatusInternalServerError
	c.Put("/c", other, now, now)

	if c.Len() != 0 {
		t.Fatalf("stored %d unstorable error responses", c.Len())
	}
}

// TestNegativeStaleIfErrorInteraction: stale-if-error recovery works by
// serving a previously stored response when the origin fails. An expired
// negative entry must not be available for that — after expiry there is
// nothing to peek at, so an error can only surface as an error, never as
// a ghost 404.
func TestNegativeStaleIfErrorInteraction(t *testing.T) {
	c, clk := newNegativeCache(time.Hour)
	now := clk.Now()
	c.Put("/ghost.png", resp404(), now, now)

	// Within the TTL the entry is peekable — serving the 404 is correct.
	if e, ok := c.Peek("/ghost.png"); !ok || !e.Negative {
		t.Fatal("negative entry should be stored within TTL")
	}

	clk.Advance(2 * time.Hour)
	// Expiry is enforced on lookup; after a Get the entry is gone and a
	// stale-if-error fallback has nothing to serve.
	if _, s := c.Get("/ghost.png"); s != Miss {
		t.Fatalf("expired lookup = %v, want Miss", s)
	}
	if _, ok := c.Peek("/ghost.png"); ok {
		t.Fatal("expired negative entry still peekable for stale-if-error")
	}
}

func TestNegativeTelemetryRegistration(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := vclock.NewVirtual(vclock.Epoch)
	c := New(clk, Options{NegativeTTL: time.Hour, Telemetry: reg, Name: "neg"})
	now := clk.Now()
	c.Put("/x", resp404(), now, now)
	c.Get("/x")

	snap := reg.Snapshot()
	if got := snap.Counters["neg.negative_hits"]; got != 1 {
		t.Fatalf("neg.negative_hits = %d, want 1", got)
	}
}
