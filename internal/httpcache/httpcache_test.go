package httpcache

import (
	"fmt"
	"net/http"
	"testing"
	"testing/quick"
	"time"

	"cachecatalyst/internal/headers"
	"cachecatalyst/internal/vclock"
)

func respWith(h map[string]string, body string) *Response {
	hdr := make(http.Header)
	for k, v := range h {
		hdr.Set(k, v)
	}
	return &Response{StatusCode: 200, Header: hdr, Body: []byte(body)}
}

func newTestCache() (*Cache, *vclock.Virtual) {
	clk := vclock.NewVirtual(vclock.Epoch)
	return New(clk, Options{}), clk
}

func put(c *Cache, clk *vclock.Virtual, url string, resp *Response) {
	now := clk.Now()
	resp.Header.Set("Date", headers.FormatHTTPDate(now))
	c.Put(url, resp, now, now)
}

func TestMissOnEmptyCache(t *testing.T) {
	c, _ := newTestCache()
	if e, s := c.Get("/x"); s != Miss || e != nil {
		t.Fatalf("Get on empty = %v, %v", e, s)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("miss counter = %d", st.Misses)
	}
}

func TestFreshWithinMaxAge(t *testing.T) {
	c, clk := newTestCache()
	put(c, clk, "/a.css", respWith(map[string]string{"Cache-Control": "max-age=3600"}, "body"))

	clk.Advance(30 * time.Minute)
	e, s := c.Get("/a.css")
	if s != Fresh {
		t.Fatalf("state = %v, want Fresh", s)
	}
	if string(e.Response.Body) != "body" {
		t.Fatalf("body = %q", e.Response.Body)
	}

	clk.Advance(31 * time.Minute) // now past 1h
	if _, s := c.Get("/a.css"); s != Stale {
		t.Fatalf("state after expiry = %v, want Stale", s)
	}
}

func TestNoCacheIsAlwaysStale(t *testing.T) {
	c, clk := newTestCache()
	put(c, clk, "/b.js", respWith(map[string]string{"Cache-Control": "no-cache", "Etag": `"v1"`}, "js"))
	e, s := c.Get("/b.js")
	if s != Stale {
		t.Fatalf("no-cache entry state = %v, want Stale", s)
	}
	if tag, ok := e.ETag(); !ok || tag.Opaque != "v1" {
		t.Fatalf("validator = %v, %v", tag, ok)
	}
}

func TestNoStoreNotStored(t *testing.T) {
	c, clk := newTestCache()
	put(c, clk, "/d.jpg", respWith(map[string]string{"Cache-Control": "no-store"}, "img"))
	if _, s := c.Get("/d.jpg"); s != Miss {
		t.Fatalf("no-store was stored: %v", s)
	}
	if c.Len() != 0 {
		t.Fatal("entry count nonzero")
	}
}

func TestNon200NotStored(t *testing.T) {
	c, clk := newTestCache()
	resp := respWith(map[string]string{"Cache-Control": "max-age=60"}, "nope")
	resp.StatusCode = 404
	put(c, clk, "/missing", resp)
	if _, s := c.Get("/missing"); s != Miss {
		t.Fatal("404 was stored")
	}
}

func TestMaxAgeZeroImmediatelyStale(t *testing.T) {
	c, clk := newTestCache()
	put(c, clk, "/x", respWith(map[string]string{"Cache-Control": "max-age=0", "Etag": `"e"`}, "x"))
	if _, s := c.Get("/x"); s != Stale {
		t.Fatalf("max-age=0 state = %v", s)
	}
}

func TestNoValidatorNoLifetimeIsStale(t *testing.T) {
	c, clk := newTestCache()
	put(c, clk, "/x", respWith(nil, "x"))
	if _, s := c.Get("/x"); s != Stale {
		t.Fatal("response without freshness info should be stale (validate)")
	}
}

func TestExpiresHeader(t *testing.T) {
	c, clk := newTestCache()
	resp := respWith(nil, "x")
	resp.Header.Set("Expires", headers.FormatHTTPDate(clk.Now().Add(time.Hour)))
	put(c, clk, "/x", resp)

	if _, s := c.Get("/x"); s != Fresh {
		t.Fatal("within Expires should be fresh")
	}
	clk.Advance(2 * time.Hour)
	if _, s := c.Get("/x"); s != Stale {
		t.Fatal("past Expires should be stale")
	}
}

func TestInvalidExpiresMeansStale(t *testing.T) {
	c, clk := newTestCache()
	resp := respWith(map[string]string{"Expires": "0"}, "x")
	put(c, clk, "/x", resp)
	if _, s := c.Get("/x"); s != Stale {
		t.Fatal("Expires: 0 should be immediately stale")
	}
}

func TestMaxAgeBeatsExpires(t *testing.T) {
	c, clk := newTestCache()
	resp := respWith(map[string]string{
		"Cache-Control": "max-age=10",
		"Expires":       headers.FormatHTTPDate(clk.Now().Add(24 * time.Hour)),
	}, "x")
	put(c, clk, "/x", resp)
	clk.Advance(time.Minute)
	if _, s := c.Get("/x"); s != Stale {
		t.Fatal("max-age must take precedence over Expires")
	}
}

func TestHeuristicFreshness(t *testing.T) {
	c, clk := newTestCache()
	// Last-Modified 10 days ago → heuristic lifetime = 1 day.
	resp := respWith(map[string]string{
		"Last-Modified": headers.FormatHTTPDate(clk.Now().Add(-10 * 24 * time.Hour)),
	}, "x")
	put(c, clk, "/x", resp)

	clk.Advance(12 * time.Hour)
	if _, s := c.Get("/x"); s != Fresh {
		t.Fatal("within heuristic lifetime should be fresh")
	}
	clk.Advance(13 * time.Hour)
	if _, s := c.Get("/x"); s != Stale {
		t.Fatal("past heuristic lifetime should be stale")
	}
}

func TestAgeHeaderReducesFreshness(t *testing.T) {
	c, clk := newTestCache()
	// Response already spent 3500s in an intermediary cache.
	resp := respWith(map[string]string{"Cache-Control": "max-age=3600", "Age": "3500"}, "x")
	put(c, clk, "/x", resp)
	clk.Advance(2 * time.Minute) // 3500 + 120 > 3600
	if _, s := c.Get("/x"); s != Stale {
		t.Fatal("Age header not accounted")
	}
}

func TestRefreshAfter304RenewsFreshness(t *testing.T) {
	c, clk := newTestCache()
	put(c, clk, "/x", respWith(map[string]string{"Cache-Control": "max-age=60", "Etag": `"v1"`}, "body"))
	clk.Advance(2 * time.Minute)
	if _, s := c.Get("/x"); s != Stale {
		t.Fatal("precondition: should be stale")
	}

	nm := &Response{StatusCode: 304, Header: make(http.Header)}
	nm.Header.Set("Cache-Control", "max-age=120")
	nm.Header.Set("Date", headers.FormatHTTPDate(clk.Now()))
	c.Refresh("/x", nm, clk.Now(), clk.Now())

	e, s := c.Get("/x")
	if s != Fresh {
		t.Fatalf("state after refresh = %v", s)
	}
	if string(e.Response.Body) != "body" {
		t.Fatal("refresh must keep the stored body")
	}
	if e.CC.MaxAge != 2*time.Minute {
		t.Fatalf("refreshed CC = %+v", e.CC)
	}
}

func TestRefreshUnknownURLIsNoop(t *testing.T) {
	c, clk := newTestCache()
	nm := &Response{StatusCode: 304, Header: make(http.Header)}
	c.Refresh("/ghost", nm, clk.Now(), clk.Now())
	if c.Len() != 0 {
		t.Fatal("refresh created an entry")
	}
}

func TestPutReplacesEntry(t *testing.T) {
	c, clk := newTestCache()
	put(c, clk, "/x", respWith(map[string]string{"Cache-Control": "max-age=60"}, "v1"))
	put(c, clk, "/x", respWith(map[string]string{"Cache-Control": "max-age=60"}, "v2"))
	e, _ := c.Get("/x")
	if string(e.Response.Body) != "v2" {
		t.Fatalf("body = %q", e.Response.Body)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	var entrySize int64
	{
		probe := New(clk, Options{})
		put(probe, clk, "/r0", respWith(map[string]string{"Cache-Control": "max-age=600"}, "0123456789"))
		e, _ := probe.Peek("/r0")
		entrySize = e.Size()
	}
	c := New(clk, Options{MaxBytes: 3 * entrySize})
	for i := 0; i < 3; i++ {
		put(c, clk, fmt.Sprintf("/r%d", i), respWith(map[string]string{"Cache-Control": "max-age=600"}, "0123456789"))
	}
	// Touch r0 so r1 becomes LRU.
	c.Get("/r0")
	put(c, clk, "/r3", respWith(map[string]string{"Cache-Control": "max-age=600"}, "0123456789"))
	if _, ok := c.Peek("/r1"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Peek("/r0"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("eviction counter not bumped")
	}
}

func TestClear(t *testing.T) {
	c, clk := newTestCache()
	put(c, clk, "/x", respWith(map[string]string{"Cache-Control": "max-age=60"}, "x"))
	c.Clear()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("Clear left %d entries, %d bytes", c.Len(), c.Bytes())
	}
}

func TestDelete(t *testing.T) {
	c, clk := newTestCache()
	put(c, clk, "/x", respWith(map[string]string{"Cache-Control": "max-age=60"}, "x"))
	c.Delete("/x")
	if _, s := c.Get("/x"); s != Miss {
		t.Fatal("entry survived Delete")
	}
	c.Delete("/ghost") // must not panic
}

func TestPutClonesResponse(t *testing.T) {
	c, clk := newTestCache()
	resp := respWith(map[string]string{"Cache-Control": "max-age=60"}, "orig")
	put(c, clk, "/x", resp)
	resp.Body[0] = 'X'
	resp.Header.Set("Cache-Control", "no-store")
	e, _ := c.Get("/x")
	if string(e.Response.Body) != "orig" {
		t.Fatal("stored body aliases caller's slice")
	}
	if e.Response.Header.Get("Cache-Control") != "max-age=60" {
		t.Fatal("stored header aliases caller's map")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Miss: "miss", Fresh: "fresh", Stale: "stale", State(9): "invalid"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q", s, got)
		}
	}
}

// Property: freshness is monotone — once an entry goes stale it never
// becomes fresh again without a Refresh or Put.
func TestFreshnessMonotoneQuick(t *testing.T) {
	f := func(maxAgeSecs uint16, steps []uint16) bool {
		clk := vclock.NewVirtual(vclock.Epoch)
		c := New(clk, Options{})
		resp := respWith(map[string]string{
			"Cache-Control": fmt.Sprintf("max-age=%d", maxAgeSecs),
		}, "x")
		put(c, clk, "/x", resp)
		seenStale := false
		for _, step := range steps {
			clk.Advance(time.Duration(step) * time.Second)
			_, s := c.Get("/x")
			if s == Stale {
				seenStale = true
			}
			if seenStale && s == Fresh {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: byte accounting is exact under arbitrary put/delete sequences.
func TestByteAccountingQuick(t *testing.T) {
	f := func(ops []struct {
		URL  uint8
		Del  bool
		Size uint8
	}) bool {
		clk := vclock.NewVirtual(vclock.Epoch)
		c := New(clk, Options{})
		for _, op := range ops {
			url := fmt.Sprintf("/r%d", op.URL%8)
			if op.Del {
				c.Delete(url)
			} else {
				put(c, clk, url, respWith(map[string]string{"Cache-Control": "max-age=60"},
					string(make([]byte, op.Size))))
			}
		}
		var want int64
		for _, u := range []string{"/r0", "/r1", "/r2", "/r3", "/r4", "/r5", "/r6", "/r7"} {
			if e, ok := c.Peek(u); ok {
				want += e.Size()
			}
		}
		return c.Bytes() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
