package httpcache

import (
	"net/http"
	"testing"

	"cachecatalyst/internal/headers"
	"cachecatalyst/internal/vclock"
)

func reqHeader(kv map[string]string) http.Header {
	h := make(http.Header)
	for k, v := range kv {
		h.Set(k, v)
	}
	return h
}

func putVary(c *Cache, clk *vclock.Virtual, url string, vary string, reqH http.Header, body string) {
	resp := respWith(map[string]string{"Cache-Control": "max-age=3600"}, body)
	if vary != "" {
		resp.Header.Set("Vary", vary)
	}
	resp.Header.Set("Date", headers.FormatHTTPDate(clk.Now()))
	c.PutWithRequest(url, reqH, resp, clk.Now(), clk.Now())
}

func TestVaryMatchingRequestHits(t *testing.T) {
	c, clk := newTestCache()
	putVary(c, clk, "/r", "Accept-Encoding", reqHeader(map[string]string{"Accept-Encoding": "gzip"}), "gz-body")
	e, s := c.GetWithRequest("/r", reqHeader(map[string]string{"Accept-Encoding": "gzip"}))
	if s != Fresh || string(e.Response.Body) != "gz-body" {
		t.Fatalf("state=%v", s)
	}
}

func TestVaryMismatchedRequestMisses(t *testing.T) {
	c, clk := newTestCache()
	putVary(c, clk, "/r", "Accept-Encoding", reqHeader(map[string]string{"Accept-Encoding": "gzip"}), "gz-body")
	if _, s := c.GetWithRequest("/r", reqHeader(map[string]string{"Accept-Encoding": "br"})); s != Miss {
		t.Fatalf("mismatched variant state = %v, want Miss", s)
	}
	// Absent header also mismatches a stored non-empty value.
	if _, s := c.GetWithRequest("/r", nil); s != Miss {
		t.Fatalf("absent header state = %v, want Miss", s)
	}
}

func TestVaryMultipleFields(t *testing.T) {
	c, clk := newTestCache()
	req := reqHeader(map[string]string{"Accept-Encoding": "gzip", "Accept-Language": "de"})
	putVary(c, clk, "/r", "Accept-Encoding, Accept-Language", req, "de-gz")
	if _, s := c.GetWithRequest("/r", req); s != Fresh {
		t.Fatalf("full match state = %v", s)
	}
	half := reqHeader(map[string]string{"Accept-Encoding": "gzip", "Accept-Language": "en"})
	if _, s := c.GetWithRequest("/r", half); s != Miss {
		t.Fatalf("partial match state = %v, want Miss", s)
	}
}

func TestVaryStarAlwaysValidates(t *testing.T) {
	c, clk := newTestCache()
	putVary(c, clk, "/r", "*", nil, "body")
	e, s := c.GetWithRequest("/r", nil)
	if s != Stale || e == nil {
		t.Fatalf("Vary:* state = %v, want Stale (validate)", s)
	}
	// Even a byte-identical repeat request can't be proven to match.
	if _, s := c.GetWithRequest("/r", reqHeader(map[string]string{"X": "y"})); s != Stale {
		t.Fatalf("state = %v", s)
	}
}

func TestNoVaryIgnoresRequestHeaders(t *testing.T) {
	c, clk := newTestCache()
	put(c, clk, "/r", respWith(map[string]string{"Cache-Control": "max-age=60"}, "x"))
	if _, s := c.GetWithRequest("/r", reqHeader(map[string]string{"Accept-Encoding": "br"})); s != Fresh {
		t.Fatalf("vary-less entry should match any request: %v", s)
	}
}

func TestVaryCaseInsensitiveFieldNames(t *testing.T) {
	c, clk := newTestCache()
	putVary(c, clk, "/r", "ACCEPT-ENCODING", reqHeader(map[string]string{"accept-encoding": "gzip"}), "b")
	if _, s := c.GetWithRequest("/r", reqHeader(map[string]string{"Accept-Encoding": "gzip"})); s != Fresh {
		t.Fatalf("case sensitivity broke Vary matching: %v", s)
	}
}

func TestVaryReplacedOnNewPut(t *testing.T) {
	// One variant per URL: storing the br variant replaces the gzip one.
	c, clk := newTestCache()
	putVary(c, clk, "/r", "Accept-Encoding", reqHeader(map[string]string{"Accept-Encoding": "gzip"}), "gz")
	putVary(c, clk, "/r", "Accept-Encoding", reqHeader(map[string]string{"Accept-Encoding": "br"}), "br")
	e, s := c.GetWithRequest("/r", reqHeader(map[string]string{"Accept-Encoding": "br"}))
	if s != Fresh || string(e.Response.Body) != "br" {
		t.Fatalf("replacement failed: %v", s)
	}
	if _, s := c.GetWithRequest("/r", reqHeader(map[string]string{"Accept-Encoding": "gzip"})); s != Miss {
		t.Fatalf("old variant still served: %v", s)
	}
}
