package httpcache

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cachecatalyst/internal/vclock"
)

// TestCacheConcurrentStress exercises the browser cache from many
// goroutines at once — Gets racing Puts racing Refreshes racing quota
// eviction — and then audits the byte accounting. Run under -race this pins
// the cachestore rebase as safe for concurrent use.
func TestCacheConcurrentStress(t *testing.T) {
	t.Parallel()
	clock := vclock.NewVirtual(time.Unix(1_700_000_000, 0))
	c := New(clock, Options{MaxBytes: 8 << 10})

	mkResp := func(i int) *Response {
		h := make(http.Header)
		h.Set("Cache-Control", "max-age=60")
		h.Set("Etag", fmt.Sprintf(`"tag-%d"`, i))
		return &Response{
			StatusCode: http.StatusOK,
			Header:     h,
			Body:       []byte(strings.Repeat("x", 256)),
		}
	}

	const goroutines = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				url := fmt.Sprintf("https://site.example/a-%d", (g*13+i*5)%100)
				now := clock.Now()
				switch i % 4 {
				case 0:
					c.Put(url, mkResp(i), now, now)
				case 1:
					if e, state := c.Get(url); state != Miss && e == nil {
						t.Error("non-miss state with nil entry")
						return
					}
				case 2:
					nm := &Response{StatusCode: http.StatusNotModified, Header: make(http.Header)}
					nm.Header.Set("Cache-Control", "max-age=120")
					c.Refresh(url, nm, now, now)
				case 3:
					if i%30 == 3 {
						c.Delete(url)
					} else {
						c.Peek(url)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if c.Bytes() > 8<<10 {
		t.Fatalf("cache over budget after stress: %d bytes", c.Bytes())
	}
	var sum int64
	for _, k := range c.Keys() {
		if e, ok := c.Peek(k); ok {
			sum += e.Size()
		}
	}
	if sum != c.Bytes() {
		t.Fatalf("byte accounting drifted: entries sum to %d, Bytes() = %d", sum, c.Bytes())
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("stress recorded no lookups")
	}
	if st.Evictions == 0 {
		t.Fatal("bounded cache never evicted under stress")
	}
}

// TestRefreshDoesNotMutateSharedEntry pins the clone-and-replace contract:
// an Entry handed out before a Refresh must not change underneath its
// holder.
func TestRefreshDoesNotMutateSharedEntry(t *testing.T) {
	clock := vclock.NewVirtual(time.Unix(1_700_000_000, 0))
	c := New(clock, Options{})
	h := make(http.Header)
	h.Set("Cache-Control", "max-age=10")
	h.Set("X-Version", "one")
	now := clock.Now()
	c.Put("https://site.example/r", &Response{StatusCode: 200, Header: h, Body: []byte("b")}, now, now)

	held, _ := c.Peek("https://site.example/r")

	nm := &Response{StatusCode: http.StatusNotModified, Header: make(http.Header)}
	nm.Header.Set("X-Version", "two")
	c.Refresh("https://site.example/r", nm, clock.Now(), clock.Now())

	if got := held.Response.Header.Get("X-Version"); got != "one" {
		t.Fatalf("Refresh mutated a shared entry: X-Version = %q", got)
	}
	fresh, _ := c.Peek("https://site.example/r")
	if got := fresh.Response.Header.Get("X-Version"); got != "two" {
		t.Fatalf("Refresh did not apply headers: X-Version = %q", got)
	}
}
