// Package httpcache implements the private (browser) HTTP cache that the
// conventional-caching baseline uses: RFC 9111 storage rules, freshness
// computation (max-age, Expires, heuristic freshness), Age accounting, and
// the 304 header-update procedure.
//
// The paper's argument is that this machinery — correct as it is — costs a
// round trip whenever a response is stale, because staleness can only be
// resolved by a conditional request. The CacheCatalyst client (internal/sw)
// reuses this package's storage but bypasses freshness entirely, deciding
// reuse from proactively delivered ETags instead.
package httpcache

import (
	"container/list"
	"net/http"
	"strings"
	"time"

	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/headers"
	"cachecatalyst/internal/vclock"
)

// Response is the minimal response representation shared by the real
// net/http path and the discrete-event simulator.
type Response struct {
	StatusCode int
	Header     http.Header
	Body       []byte
	// Truncated marks a body cut short by a mid-transfer failure
	// (connection reset, injected truncation). A truncated response must
	// never be cached or processed as content; Storable enforces the
	// former.
	Truncated bool
}

// Clone returns a deep copy of the response.
func (r *Response) Clone() *Response {
	out := &Response{StatusCode: r.StatusCode, Header: r.Header.Clone(), Truncated: r.Truncated}
	out.Body = append([]byte(nil), r.Body...)
	return out
}

// ETag returns the response's parsed entity tag, if any.
func (r *Response) ETag() (etag.Tag, bool) {
	return etag.Parse(r.Header.Get("Etag"))
}

// State classifies a cache lookup result.
type State int

// Lookup states.
const (
	// Miss: nothing usable stored.
	Miss State = iota
	// Fresh: the stored response may be reused without contacting the
	// origin.
	Fresh
	// Stale: a stored response exists but must be validated with a
	// conditional request before reuse.
	Stale
)

func (s State) String() string {
	switch s {
	case Miss:
		return "miss"
	case Fresh:
		return "fresh"
	case Stale:
		return "stale"
	}
	return "invalid"
}

// Entry is a stored response plus the metadata freshness math needs.
type Entry struct {
	URL      string
	Response *Response
	// RequestTime and ResponseTime bracket the exchange that produced the
	// response (RFC 9111 §4.2.3).
	RequestTime  time.Time
	ResponseTime time.Time
	// CC is the parsed Cache-Control of the stored response.
	CC headers.CacheControl
	// varyValues captures the request header values named by the
	// response's Vary field at store time (lowercased name → value), for
	// the RFC 9111 §4.1 secondary-key match. This cache stores one
	// variant per URL, as the RFC permits.
	varyValues map[string]string

	lruElem *list.Element
}

// ETag returns the entry's parsed entity tag, if any.
func (e *Entry) ETag() (etag.Tag, bool) { return e.Response.ETag() }

// Size returns the entry's accounting size in bytes.
func (e *Entry) Size() int64 {
	n := int64(len(e.Response.Body)) + int64(len(e.URL))
	for k, vs := range e.Response.Header {
		n += int64(len(k))
		for _, v := range vs {
			n += int64(len(v))
		}
	}
	return n
}

// Options configures a Cache.
type Options struct {
	// MaxBytes bounds the cache size; 0 means unlimited. Least-recently
	// used entries are evicted first.
	MaxBytes int64
	// HeuristicFraction is the fraction of (Date − Last-Modified) used as
	// the freshness lifetime when the response carries no explicit
	// expiration (RFC 9111 §4.2.2 suggests 10%). Zero selects the default.
	HeuristicFraction float64
}

// DefaultHeuristicFraction is the RFC-suggested 10%.
const DefaultHeuristicFraction = 0.1

// Cache is a private HTTP cache. It is not safe for concurrent use; each
// emulated browser owns one.
type Cache struct {
	clock   vclock.Clock
	opts    Options
	entries map[string]*Entry
	lru     *list.List // front = most recently used; values are URLs
	bytes   int64

	// Counters for experiment reporting.
	Hits, Misses, Validations, Evictions int64
}

// New returns an empty cache driven by the given clock.
func New(clock vclock.Clock, opts Options) *Cache {
	if opts.HeuristicFraction == 0 {
		opts.HeuristicFraction = DefaultHeuristicFraction
	}
	return &Cache{
		clock:   clock,
		opts:    opts,
		entries: make(map[string]*Entry),
		lru:     list.New(),
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int { return len(c.entries) }

// Bytes returns the total accounting size of stored entries.
func (c *Cache) Bytes() int64 { return c.bytes }

// Storable reports whether a response may be stored at all
// (RFC 9111 §3): 2xx status, complete body, no no-store directive.
func Storable(resp *Response) bool {
	if resp.Truncated {
		return false
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNonAuthoritativeInfo &&
		resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusPartialContent {
		return false
	}
	cc := headers.ParseCacheControl(resp.Header.Get("Cache-Control"))
	return !cc.NoStore
}

// Put stores a response received for url. requestTime/responseTime bracket
// the network exchange. Responses that are not storable are ignored.
func (c *Cache) Put(url string, resp *Response, requestTime, responseTime time.Time) {
	c.PutWithRequest(url, nil, resp, requestTime, responseTime)
}

// PutWithRequest stores a response along with the request header values its
// Vary field names, enabling the secondary-key check on later lookups.
func (c *Cache) PutWithRequest(url string, reqHeader http.Header, resp *Response, requestTime, responseTime time.Time) {
	if !Storable(resp) {
		return
	}
	c.remove(url)
	e := &Entry{
		URL:          url,
		Response:     resp.Clone(),
		RequestTime:  requestTime,
		ResponseTime: responseTime,
		CC:           headers.ParseCacheControl(resp.Header.Get("Cache-Control")),
		varyValues:   varyValues(resp.Header.Get("Vary"), reqHeader),
	}
	e.lruElem = c.lru.PushFront(url)
	c.entries[url] = e
	c.bytes += e.Size()
	c.evict()
}

// varyValues snapshots the request header values named by a Vary field.
// The special member "*" is recorded as such.
func varyValues(vary string, reqHeader http.Header) map[string]string {
	vary = strings.TrimSpace(vary)
	if vary == "" {
		return nil
	}
	out := make(map[string]string)
	for _, name := range strings.Split(vary, ",") {
		name = strings.ToLower(strings.TrimSpace(name))
		if name == "" {
			continue
		}
		if name == "*" {
			out["*"] = ""
			continue
		}
		if reqHeader != nil {
			out[name] = reqHeader.Get(name)
		} else {
			out[name] = ""
		}
	}
	return out
}

// Get looks up url and classifies the result at the current clock time.
// A returned entry in state Stale carries the validator the caller should
// send in If-None-Match.
func (c *Cache) Get(url string) (*Entry, State) {
	return c.GetWithRequest(url, nil)
}

// GetWithRequest additionally applies the RFC 9111 §4.1 secondary-key
// check: a stored variant whose Vary'd request headers differ from this
// request's is unusable (Miss); a response stored with "Vary: *" can never
// be proven to match, so it always requires validation.
func (c *Cache) GetWithRequest(url string, reqHeader http.Header) (*Entry, State) {
	e, ok := c.entries[url]
	if !ok {
		c.Misses++
		return nil, Miss
	}
	c.lru.MoveToFront(e.lruElem)
	if _, star := e.varyValues["*"]; star {
		c.Validations++
		return e, Stale
	}
	for name, stored := range e.varyValues {
		var got string
		if reqHeader != nil {
			got = reqHeader.Get(name)
		}
		if got != stored {
			c.Misses++
			return nil, Miss
		}
	}
	if c.isFresh(e) {
		c.Hits++
		return e, Fresh
	}
	c.Validations++
	return e, Stale
}

// Peek returns the entry without touching counters or LRU order.
func (c *Cache) Peek(url string) (*Entry, bool) {
	e, ok := c.entries[url]
	return e, ok
}

// Keys returns the URLs of all stored entries, in no particular order —
// chaos tests use it to audit the whole cache for poisoned entries.
func (c *Cache) Keys() []string {
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	return keys
}

// isFresh implements the RFC 9111 §4.2 freshness check.
func (c *Cache) isFresh(e *Entry) bool {
	if e.CC.NoCache {
		return false // always requires validation
	}
	lifetime := c.freshnessLifetime(e)
	if lifetime <= 0 {
		return false
	}
	return c.currentAge(e) < lifetime
}

// freshnessLifetime computes the freshness lifetime per RFC 9111 §4.2.1:
// max-age, then Expires − Date, then the heuristic.
func (c *Cache) freshnessLifetime(e *Entry) time.Duration {
	if e.CC.HasMaxAge {
		return e.CC.MaxAge
	}
	date := c.dateValue(e)
	if expires := e.Response.Header.Get("Expires"); expires != "" {
		if t, ok := headers.ParseHTTPDate(expires); ok {
			return t.Sub(date)
		}
		// Invalid Expires (e.g. "0") means already expired.
		return 0
	}
	if lm := e.Response.Header.Get("Last-Modified"); lm != "" {
		if t, ok := headers.ParseHTTPDate(lm); ok && date.After(t) {
			return time.Duration(float64(date.Sub(t)) * c.opts.HeuristicFraction)
		}
	}
	return 0
}

// currentAge computes the response's current age per RFC 9111 §4.2.3.
func (c *Cache) currentAge(e *Entry) time.Duration {
	var ageValue time.Duration
	if ageHdr := e.Response.Header.Get("Age"); ageHdr != "" {
		if d, err := time.ParseDuration(ageHdr + "s"); err == nil && d >= 0 {
			ageValue = d
		}
	}
	apparentAge := e.ResponseTime.Sub(c.dateValue(e))
	if apparentAge < 0 {
		apparentAge = 0
	}
	responseDelay := e.ResponseTime.Sub(e.RequestTime)
	correctedAge := ageValue + responseDelay
	correctedInitialAge := apparentAge
	if correctedAge > correctedInitialAge {
		correctedInitialAge = correctedAge
	}
	residentTime := c.clock.Now().Sub(e.ResponseTime)
	return correctedInitialAge + residentTime
}

// dateValue returns the response's Date, defaulting to the response time.
func (c *Cache) dateValue(e *Entry) time.Time {
	if d := e.Response.Header.Get("Date"); d != "" {
		if t, ok := headers.ParseHTTPDate(d); ok {
			return t
		}
	}
	return e.ResponseTime
}

// Refresh applies a 304 Not Modified to the stored entry per RFC 9111 §4.3.4:
// the stored headers are updated from the 304 and the entry's clock fields
// reset, renewing its freshness.
func (c *Cache) Refresh(url string, notModified *Response, requestTime, responseTime time.Time) {
	e, ok := c.entries[url]
	if !ok {
		return
	}
	c.bytes -= e.Size()
	for k, vs := range notModified.Header {
		if k == "Content-Length" {
			continue
		}
		e.Response.Header[k] = append([]string(nil), vs...)
	}
	e.RequestTime = requestTime
	e.ResponseTime = responseTime
	e.CC = headers.ParseCacheControl(e.Response.Header.Get("Cache-Control"))
	c.bytes += e.Size()
	c.lru.MoveToFront(e.lruElem)
}

// Delete removes a stored entry.
func (c *Cache) Delete(url string) { c.remove(url) }

// Clear empties the cache (a "cold cache" load in the paper's methodology).
func (c *Cache) Clear() {
	c.entries = make(map[string]*Entry)
	c.lru.Init()
	c.bytes = 0
}

func (c *Cache) remove(url string) {
	e, ok := c.entries[url]
	if !ok {
		return
	}
	c.lru.Remove(e.lruElem)
	c.bytes -= e.Size()
	delete(c.entries, url)
}

func (c *Cache) evict() {
	if c.opts.MaxBytes <= 0 {
		return
	}
	for c.bytes > c.opts.MaxBytes && c.lru.Len() > 0 {
		oldest := c.lru.Back()
		c.remove(oldest.Value.(string))
		c.Evictions++
	}
}
