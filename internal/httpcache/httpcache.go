// Package httpcache implements the private (browser) HTTP cache that the
// conventional-caching baseline uses: RFC 9111 storage rules, freshness
// computation (max-age, Expires, heuristic freshness), Age accounting, and
// the 304 header-update procedure.
//
// The paper's argument is that this machinery — correct as it is — costs a
// round trip whenever a response is stale, because staleness can only be
// resolved by a conditional request. The CacheCatalyst client (internal/sw)
// reuses this package's storage but bypasses freshness entirely, deciding
// reuse from proactively delivered ETags instead.
//
// Storage and LRU eviction sit on internal/cachestore; this package keeps
// only the RFC 9111 policy layer (freshness math, Vary secondary keys, the
// 304 refresh procedure).
package httpcache

import (
	"net/http"
	"strings"
	"time"

	"cachecatalyst/internal/cachestore"
	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/headers"
	"cachecatalyst/internal/telemetry"
	"cachecatalyst/internal/vclock"
)

// Response is the minimal response representation shared by the real
// net/http path and the discrete-event simulator.
type Response struct {
	StatusCode int
	Header     http.Header
	Body       []byte
	// Truncated marks a body cut short by a mid-transfer failure
	// (connection reset, injected truncation). A truncated response must
	// never be cached or processed as content; Storable enforces the
	// former.
	Truncated bool
}

// Clone returns a deep copy of the response.
func (r *Response) Clone() *Response {
	out := &Response{StatusCode: r.StatusCode, Header: r.Header.Clone(), Truncated: r.Truncated}
	out.Body = append([]byte(nil), r.Body...)
	return out
}

// ETag returns the response's parsed entity tag, if any.
func (r *Response) ETag() (etag.Tag, bool) {
	return etag.Parse(r.Header.Get("Etag"))
}

// State classifies a cache lookup result.
type State int

// Lookup states.
const (
	// Miss: nothing usable stored.
	Miss State = iota
	// Fresh: the stored response may be reused without contacting the
	// origin.
	Fresh
	// Stale: a stored response exists but must be validated with a
	// conditional request before reuse.
	Stale
)

func (s State) String() string {
	switch s {
	case Miss:
		return "miss"
	case Fresh:
		return "fresh"
	case Stale:
		return "stale"
	}
	return "invalid"
}

// Entry is a stored response plus the metadata freshness math needs.
// Entries are immutable once stored — Refresh replaces the entry rather
// than mutating it — so a returned Entry is safe to read concurrently.
type Entry struct {
	URL      string
	Response *Response
	// RequestTime and ResponseTime bracket the exchange that produced the
	// response (RFC 9111 §4.2.3).
	RequestTime  time.Time
	ResponseTime time.Time
	// CC is the parsed Cache-Control of the stored response.
	CC headers.CacheControl
	// Negative marks a cached error response (a 404) stored under the
	// negative-caching scheme. Negative entries are served Fresh within
	// Options.NegativeTTL and then deleted outright — they are never
	// Stale, so they carry no validator and cannot be resurrected by a
	// conditional request or stale-if-error once expired.
	Negative bool
	// varyValues captures the request header values named by the
	// response's Vary field at store time (lowercased name → value), for
	// the RFC 9111 §4.1 secondary-key match. This cache stores one
	// variant per URL, as the RFC permits.
	varyValues map[string]string
}

// ETag returns the entry's parsed entity tag, if any.
func (e *Entry) ETag() (etag.Tag, bool) { return e.Response.ETag() }

// Size returns the entry's accounting size in bytes.
func (e *Entry) Size() int64 {
	n := int64(len(e.Response.Body)) + int64(len(e.URL))
	for k, vs := range e.Response.Header {
		n += int64(len(k))
		for _, v := range vs {
			n += int64(len(v))
		}
	}
	return n
}

// Options configures a Cache.
type Options struct {
	// MaxBytes bounds the cache size; 0 means unlimited. The Policy
	// chooses victims (exact LRU by default).
	MaxBytes int64
	// Policy selects the eviction/admission policy for stored entries.
	// The zero value is exact LRU — what real browser caches approximate.
	// Size-aware policies model proxy/CDN caches facing the same RFC 9111
	// freshness rules with very mixed object sizes.
	Policy cachestore.Policy
	// NegativeTTL, when positive, enables negative caching: complete,
	// storable 404 responses are kept and served Fresh for this long,
	// saving the round trip that repeatedly re-discovers a missing
	// resource. Expired negative entries are deleted (Miss), never
	// validated, so a resource that has since appeared ("flip to 200")
	// is fetched in full.
	NegativeTTL time.Duration
	// HeuristicFraction is the fraction of (Date − Last-Modified) used as
	// the freshness lifetime when the response carries no explicit
	// expiration (RFC 9111 §4.2.2 suggests 10%). Zero selects the default.
	HeuristicFraction float64
	// Telemetry, when set, registers the cache's counters in the given
	// registry as "<Name>.hits", "<Name>.misses", "<Name>.validations"
	// and "<Name>.evictions". The registry indexes the cache's own
	// counters: Stats() and the registry snapshot read the same storage.
	Telemetry *telemetry.Registry
	// Name qualifies the cache's instruments in Telemetry; empty selects
	// "httpcache".
	Name string
}

// DefaultHeuristicFraction is the RFC-suggested 10%.
const DefaultHeuristicFraction = 0.1

// Cache is a private HTTP cache backed by internal/cachestore, and safe
// for concurrent use. Counters live in telemetry instruments; read them
// through Stats().
type Cache struct {
	clock vclock.Clock
	opts  Options
	store *cachestore.Store[*Entry]

	// Counters for experiment reporting — shared storage with any
	// registry passed in Options.Telemetry.
	hits, misses, validations, evictions, negativeHits telemetry.Counter
}

// CacheStats is a snapshot of a Cache's counters.
type CacheStats struct {
	// Hits counts fresh lookups served without contacting the origin;
	// Misses counts lookups with nothing usable stored.
	Hits, Misses int64
	// Validations counts stale lookups that required a conditional
	// request; Evictions counts entries removed by the byte budget.
	Validations, Evictions int64
	// NegativeHits counts Fresh lookups answered by a cached 404
	// (a subset of Hits).
	NegativeHits int64
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Validations:  c.validations.Load(),
		Evictions:    c.evictions.Load(),
		NegativeHits: c.negativeHits.Load(),
	}
}

// New returns an empty cache driven by the given clock.
func New(clock vclock.Clock, opts Options) *Cache {
	if opts.HeuristicFraction == 0 {
		opts.HeuristicFraction = DefaultHeuristicFraction
	}
	c := &Cache{clock: clock, opts: opts}
	c.store = cachestore.New[*Entry](cachestore.Options[*Entry]{
		// One shard keeps this a faithful single-browser cache: the
		// store's locking still makes it race-free when experiments
		// drive one browser from several goroutines.
		Shards:   1,
		MaxBytes: opts.MaxBytes,
		SizeOf:   func(_ string, e *Entry) int64 { return e.Size() },
		Policy:   opts.Policy,
		OnEvict:  func(string, *Entry) { c.evictions.Add(1) },
	})
	if opts.Telemetry != nil {
		name := opts.Name
		if name == "" {
			name = "httpcache"
		}
		opts.Telemetry.RegisterCounter(name+".hits", &c.hits)
		opts.Telemetry.RegisterCounter(name+".misses", &c.misses)
		opts.Telemetry.RegisterCounter(name+".validations", &c.validations)
		opts.Telemetry.RegisterCounter(name+".evictions", &c.evictions)
		opts.Telemetry.RegisterCounter(name+".negative_hits", &c.negativeHits)
	}
	return c
}

// Len returns the number of stored entries.
func (c *Cache) Len() int { return c.store.Len() }

// Bytes returns the total accounting size of stored entries.
func (c *Cache) Bytes() int64 { return c.store.Bytes() }

// Storable reports whether a response may be stored at all
// (RFC 9111 §3): 2xx status, complete body, no no-store directive.
func Storable(resp *Response) bool {
	if resp.Truncated {
		return false
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNonAuthoritativeInfo &&
		resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusPartialContent {
		return false
	}
	cc := headers.ParseCacheControl(resp.Header.Get("Cache-Control"))
	return !cc.NoStore
}

// Put stores a response received for url. requestTime/responseTime bracket
// the network exchange. Responses that are not storable are ignored.
func (c *Cache) Put(url string, resp *Response, requestTime, responseTime time.Time) {
	c.PutWithRequest(url, nil, resp, requestTime, responseTime)
}

// PutWithRequest stores a response along with the request header values its
// Vary field names, enabling the secondary-key check on later lookups.
func (c *Cache) PutWithRequest(url string, reqHeader http.Header, resp *Response, requestTime, responseTime time.Time) {
	negative := false
	if !Storable(resp) {
		if !c.storableNegative(resp) {
			return
		}
		negative = true
	}
	e := &Entry{
		URL:          url,
		Response:     resp.Clone(),
		RequestTime:  requestTime,
		ResponseTime: responseTime,
		CC:           headers.ParseCacheControl(resp.Header.Get("Cache-Control")),
		Negative:     negative,
		varyValues:   varyValues(resp.Header.Get("Vary"), reqHeader),
	}
	c.store.Put(url, e)
}

// storableNegative reports whether a non-storable response qualifies for
// negative caching: the feature is enabled, the status is exactly 404,
// the body is complete, and the origin did not forbid storage.
func (c *Cache) storableNegative(resp *Response) bool {
	if c.opts.NegativeTTL <= 0 || resp.StatusCode != http.StatusNotFound || resp.Truncated {
		return false
	}
	cc := headers.ParseCacheControl(resp.Header.Get("Cache-Control"))
	return !cc.NoStore
}

// varyValues snapshots the request header values named by a Vary field.
// The special member "*" is recorded as such.
func varyValues(vary string, reqHeader http.Header) map[string]string {
	vary = strings.TrimSpace(vary)
	if vary == "" {
		return nil
	}
	out := make(map[string]string)
	for _, name := range strings.Split(vary, ",") {
		name = strings.ToLower(strings.TrimSpace(name))
		if name == "" {
			continue
		}
		if name == "*" {
			out["*"] = ""
			continue
		}
		if reqHeader != nil {
			out[name] = reqHeader.Get(name)
		} else {
			out[name] = ""
		}
	}
	return out
}

// Get looks up url and classifies the result at the current clock time.
// A returned entry in state Stale carries the validator the caller should
// send in If-None-Match.
func (c *Cache) Get(url string) (*Entry, State) {
	return c.GetWithRequest(url, nil)
}

// GetWithRequest additionally applies the RFC 9111 §4.1 secondary-key
// check: a stored variant whose Vary'd request headers differ from this
// request's is unusable (Miss); a response stored with "Vary: *" can never
// be proven to match, so it always requires validation.
func (c *Cache) GetWithRequest(url string, reqHeader http.Header) (*Entry, State) {
	e, ok := c.store.Get(url)
	if !ok {
		c.misses.Add(1)
		return nil, Miss
	}
	if e.Negative {
		// Negative entries are either Fresh (within the TTL) or gone:
		// they never become Stale, because a 404 carries no validator
		// worth revalidating and must not be resurrected by
		// stale-if-error once it may have flipped to 200.
		if c.clock.Now().Sub(e.ResponseTime) < c.opts.NegativeTTL {
			c.hits.Add(1)
			c.negativeHits.Add(1)
			return e, Fresh
		}
		c.store.Delete(url)
		c.misses.Add(1)
		return nil, Miss
	}
	if _, star := e.varyValues["*"]; star {
		c.validations.Add(1)
		return e, Stale
	}
	for name, stored := range e.varyValues {
		var got string
		if reqHeader != nil {
			got = reqHeader.Get(name)
		}
		if got != stored {
			c.misses.Add(1)
			return nil, Miss
		}
	}
	if c.isFresh(e) {
		c.hits.Add(1)
		return e, Fresh
	}
	c.validations.Add(1)
	return e, Stale
}

// Peek returns the entry without touching counters or LRU order.
func (c *Cache) Peek(url string) (*Entry, bool) {
	return c.store.Peek(url)
}

// Keys returns the URLs of all stored entries, in no particular order —
// chaos tests use it to audit the whole cache for poisoned entries.
func (c *Cache) Keys() []string { return c.store.Keys() }

// isFresh implements the RFC 9111 §4.2 freshness check.
func (c *Cache) isFresh(e *Entry) bool {
	if e.CC.NoCache {
		return false // always requires validation
	}
	lifetime := c.freshnessLifetime(e)
	if lifetime <= 0 {
		return false
	}
	return c.currentAge(e) < lifetime
}

// freshnessLifetime computes the freshness lifetime per RFC 9111 §4.2.1:
// max-age, then Expires − Date, then the heuristic.
func (c *Cache) freshnessLifetime(e *Entry) time.Duration {
	if e.CC.HasMaxAge {
		return e.CC.MaxAge
	}
	date := c.dateValue(e)
	if expires := e.Response.Header.Get("Expires"); expires != "" {
		if t, ok := headers.ParseHTTPDate(expires); ok {
			return t.Sub(date)
		}
		// Invalid Expires (e.g. "0") means already expired.
		return 0
	}
	if lm := e.Response.Header.Get("Last-Modified"); lm != "" {
		if t, ok := headers.ParseHTTPDate(lm); ok && date.After(t) {
			return time.Duration(float64(date.Sub(t)) * c.opts.HeuristicFraction)
		}
	}
	return 0
}

// currentAge computes the response's current age per RFC 9111 §4.2.3.
func (c *Cache) currentAge(e *Entry) time.Duration {
	var ageValue time.Duration
	if ageHdr := e.Response.Header.Get("Age"); ageHdr != "" {
		if d, err := time.ParseDuration(ageHdr + "s"); err == nil && d >= 0 {
			ageValue = d
		}
	}
	apparentAge := e.ResponseTime.Sub(c.dateValue(e))
	if apparentAge < 0 {
		apparentAge = 0
	}
	responseDelay := e.ResponseTime.Sub(e.RequestTime)
	correctedAge := ageValue + responseDelay
	correctedInitialAge := apparentAge
	if correctedAge > correctedInitialAge {
		correctedInitialAge = correctedAge
	}
	residentTime := c.clock.Now().Sub(e.ResponseTime)
	return correctedInitialAge + residentTime
}

// dateValue returns the response's Date, defaulting to the response time.
func (c *Cache) dateValue(e *Entry) time.Time {
	if d := e.Response.Header.Get("Date"); d != "" {
		if t, ok := headers.ParseHTTPDate(d); ok {
			return t
		}
	}
	return e.ResponseTime
}

// Refresh applies a 304 Not Modified to the stored entry per RFC 9111 §4.3.4:
// the stored headers are updated from the 304 and the entry's clock fields
// reset, renewing its freshness. The refreshed entry replaces the stored
// one — entries already handed out are never mutated.
func (c *Cache) Refresh(url string, notModified *Response, requestTime, responseTime time.Time) {
	e, ok := c.store.Peek(url)
	if !ok {
		return
	}
	resp := e.Response.Clone()
	for k, vs := range notModified.Header {
		if k == "Content-Length" {
			continue
		}
		resp.Header[k] = append([]string(nil), vs...)
	}
	vary := make(map[string]string, len(e.varyValues))
	for k, v := range e.varyValues {
		vary[k] = v
	}
	c.store.Put(url, &Entry{
		URL:          e.URL,
		Response:     resp,
		RequestTime:  requestTime,
		ResponseTime: responseTime,
		CC:           headers.ParseCacheControl(resp.Header.Get("Cache-Control")),
		varyValues:   vary,
	})
}

// Delete removes a stored entry.
func (c *Cache) Delete(url string) { c.store.Delete(url) }

// Clear empties the cache (a "cold cache" load in the paper's methodology).
func (c *Cache) Clear() { c.store.Clear() }
