package browser

import (
	"fmt"
	"testing"
	"time"

	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/vclock"
)

// chaosGrid is the fault-injection matrix the resilience layer is graded
// against: each cell enables one failure mode (plus a combined cell), and
// every cell runs under both schemes. Seeds are fixed so cells replay
// identically run to run — a failing cell is a reproducible bug, never a
// flake.
var chaosGrid = []struct {
	name string
	cfg  netsim.ChaosConfig
}{
	{"clean", netsim.ChaosConfig{}},
	{"fail20", netsim.ChaosConfig{Seed: 11, FailProb: 0.2}},
	{"truncate25", netsim.ChaosConfig{Seed: 12, TruncateProb: 0.25}},
	{"corrupt-map", netsim.ChaosConfig{Seed: 13, CorruptMapProb: 0.5}},
	{"stall", netsim.ChaosConfig{Seed: 14, StallProb: 0.3, StallFor: 250 * time.Millisecond}},
	{"flapping", netsim.ChaosConfig{UpFor: 4, DownFor: 2}},
	{"slow-read", netsim.ChaosConfig{Seed: 16, SlowReadProb: 0.6, SlowReadFor: time.Second}},
	{"burst", netsim.ChaosConfig{Seed: 17, BurstEvery: 3, BurstSize: 4}},
	{"brownout", netsim.ChaosConfig{Seed: 18, BrownoutEvery: 4, BrownoutLen: 2, BrownoutStall: 300 * time.Millisecond}},
	{"everything", netsim.ChaosConfig{
		Seed: 15, FailProb: 0.1, TruncateProb: 0.1, CorruptMapProb: 0.1,
		StallProb: 0.1, StallFor: 120 * time.Millisecond, UpFor: 20, DownFor: 2,
		SlowReadProb: 0.1, SlowReadFor: 200 * time.Millisecond,
		BurstEvery: 7, BurstSize: 3,
	}},
}

// newChaosWorld is newWorld with the origin wrapped in the fault matrix.
func newChaosWorld(catalyst bool, cfg netsim.ChaosConfig) (*world, *netsim.ChaosOrigin) {
	w := &world{clock: vclock.NewVirtual(vclock.Epoch), content: figure1Site()}
	w.srv = server.New(w.content, server.Options{Catalyst: catalyst, Record: catalyst, Clock: w.clock})
	chaos := netsim.NewChaosOrigin(server.NewOrigin(w.srv), cfg)
	w.origins = OriginMap{"site.example": chaos}
	return w, chaos
}

// auditCaches fails the test if any cache layer holds a poisoned entry: a
// non-200 status or a truncated body must never be stored, whatever faults
// were in flight.
func auditCaches(t *testing.T, b *Browser) {
	t.Helper()
	for _, key := range b.Cache().Keys() {
		e, ok := b.Cache().Peek(key)
		if !ok {
			continue
		}
		if e.Response.StatusCode != 200 {
			t.Errorf("HTTP cache poisoned: %s stored with status %d", key, e.Response.StatusCode)
		}
		if e.Response.Truncated {
			t.Errorf("HTTP cache poisoned: %s stored truncated", key)
		}
	}
	if worker, ok := b.Workers().Lookup("site.example"); ok {
		for _, path := range worker.Cache().Keys() {
			resp, ok := worker.Cache().Match(path)
			if !ok {
				continue
			}
			if resp.StatusCode != 200 {
				t.Errorf("SW cache poisoned: %s stored with status %d", path, resp.StatusCode)
			}
			if resp.Truncated {
				t.Errorf("SW cache poisoned: %s stored truncated", path)
			}
		}
	}
}

// chaosLoad runs one cold+warm visit pair under the given fault matrix and
// returns both results.
func chaosLoad(t *testing.T, mode Mode, cfg netsim.ChaosConfig) (cold, warm LoadResult, b *Browser, chaos *netsim.ChaosOrigin) {
	t.Helper()
	w, chaos := newChaosWorld(mode == Catalyst, cfg)
	b = New(w.clock, mode, netsim.TransportOptions{})
	b.MaxFetchRetries = 3
	cold = mustLoad(t, b, w)
	w.clock.Advance(2 * time.Hour)
	warm = mustLoad(t, b, w)
	return cold, warm, b, chaos
}

// TestChaosMatrixInvariants drives the Figure-1 site through every cell of
// the fault grid with both schemes, checking the invariants that define
// "degraded, not broken": the load always terminates with a finite PLT, no
// cache layer ever stores a non-200 or truncated response, and the browser's
// fault accounting agrees with what the origin injected.
func TestChaosMatrixInvariants(t *testing.T) {
	// Worst-case PLT bound: every request stalled, failed and retried
	// through the full backoff ladder would still land far under this.
	const pltBound = 30 * time.Second
	for _, cell := range chaosGrid {
		for _, mode := range []Mode{Conventional, Catalyst} {
			t.Run(fmt.Sprintf("%s/%s", cell.name, mode), func(t *testing.T) {
				cold, warm, b, chaos := chaosLoad(t, mode, cell.cfg)

				for i, res := range []LoadResult{cold, warm} {
					if res.PLT <= 0 || res.PLT > pltBound {
						t.Errorf("load %d PLT %v out of (0, %v]", i, res.PLT, pltBound)
					}
				}
				auditCaches(t, b)

				st := chaos.Stats()
				if fails := st.Failures + st.FlapFailures; fails > 0 && cold.Retries+warm.Retries == 0 {
					t.Errorf("origin injected %d failures but browser recorded no retries", fails)
				}
				if st.Truncations > 0 && cold.TruncatedResponses+warm.TruncatedResponses == 0 {
					t.Errorf("origin truncated %d responses but browser recorded none", st.Truncations)
				}
				if cold.TruncatedResponses+warm.TruncatedResponses != st.Truncations {
					t.Errorf("truncation accounting: browser %d, origin %d",
						cold.TruncatedResponses+warm.TruncatedResponses, st.Truncations)
				}
				if cell.name == "clean" && st.Injected() != 0 {
					t.Errorf("clean cell injected faults: %+v", st)
				}
				// The dedicated overload cells must actually fire their
				// fault mode, and burst bookkeeping must stay consistent.
				switch cell.name {
				case "slow-read":
					if st.SlowReads == 0 {
						t.Error("slow-read cell drained no responses slowly")
					}
				case "burst":
					if st.Bursts == 0 {
						t.Error("burst cell fired no bursts")
					}
				case "brownout":
					if st.BrownoutStalls == 0 {
						t.Error("brownout cell stalled no requests")
					}
				}
				if want := st.Bursts * int64(cell.cfg.BurstSize-1); st.Bursts > 0 && st.BurstRequests != want {
					t.Errorf("burst accounting: %d bursts of size %d but %d duplicates, want %d",
						st.Bursts, cell.cfg.BurstSize, st.BurstRequests, want)
				}
			})
		}
	}
}

// TestChaosCatalystAdvantageSurvivesFaults checks the paper's headline
// result under fire: across the fault grid, warm catalyst revisits stay
// faster than warm conventional revisits. The clean cell must show the
// strict Figure-1 gap; under injected faults the advantage is asserted in
// aggregate (a single cell can flip when a fault lands on catalyst's one
// navigation request, but the grid total must not).
func TestChaosCatalystAdvantageSurvivesFaults(t *testing.T) {
	var convTotal, catTotal time.Duration
	for _, cell := range chaosGrid {
		_, convWarm, _, _ := chaosLoad(t, Conventional, cell.cfg)
		_, catWarm, _, _ := chaosLoad(t, Catalyst, cell.cfg)
		convTotal += convWarm.PLT
		catTotal += catWarm.PLT
		t.Logf("%-12s conventional %8v  catalyst %8v", cell.name, convWarm.PLT, catWarm.PLT)
		if cell.name == "clean" && catWarm.PLT >= convWarm.PLT {
			t.Errorf("clean cell: catalyst %v not faster than conventional %v", catWarm.PLT, convWarm.PLT)
		}
	}
	if catTotal >= convTotal {
		t.Fatalf("catalyst advantage lost under faults: %v total vs conventional %v", catTotal, convTotal)
	}
}

// TestChaosTotalOutageDegradesNotCrashes pins behaviour when the origin is
// down for an entire revisit window: the load terminates, errors are counted
// rather than thrown, and fresh cached entries still serve locally.
func TestChaosTotalOutageDegradesNotCrashes(t *testing.T) {
	for _, mode := range []Mode{Conventional, Catalyst} {
		t.Run(mode.String(), func(t *testing.T) {
			w, _ := newChaosWorld(mode == Catalyst, netsim.ChaosConfig{})
			b := New(w.clock, mode, netsim.TransportOptions{})
			b.MaxFetchRetries = 2
			mustLoad(t, b, w) // healthy cold load

			// Replace the origin with one that always 503s.
			down := netsim.NewChaosOrigin(server.NewOrigin(w.srv), netsim.ChaosConfig{Seed: 1, FailProb: 1})
			w.origins["site.example"] = down

			w.clock.Advance(2 * time.Hour)
			res := mustLoad(t, b, w)
			if res.PLT <= 0 {
				t.Fatalf("outage revisit PLT %v", res.PLT)
			}
			// The navigation (no-cache) must fail; fresh subresources may
			// still be served locally. Nothing hangs, nothing panics.
			if res.Errors == 0 {
				t.Fatalf("total outage produced no errors: %+v", res)
			}
			if res.Retries == 0 {
				t.Fatalf("no retries attempted during outage: %+v", res)
			}
			auditCaches(t, b)
		})
	}
}

// TestChaosRetryRecoversTransientFailure pins the retry path end to end: an
// origin that 503s exactly once per resource yields a fully successful load
// (zero errors) at the cost of retries and backoff time.
func TestChaosRetryRecoversTransientFailure(t *testing.T) {
	w := &world{clock: vclock.NewVirtual(vclock.Epoch), content: figure1Site()}
	w.srv = server.New(w.content, server.Options{Catalyst: false, Clock: w.clock})
	faulty := &netsim.FaultyOrigin{Inner: server.NewOrigin(w.srv), FailEvery: 2}
	w.origins = OriginMap{"site.example": faulty}

	b := New(w.clock, Conventional, netsim.TransportOptions{})
	b.MaxFetchRetries = 3
	res := mustLoad(t, b, w)
	if res.Errors != 0 {
		t.Fatalf("retries did not absorb transient 503s: %+v", res)
	}
	if res.Retries == 0 || faulty.Failed() == 0 {
		t.Fatalf("no failures actually injected: %+v, failed=%d", res, faulty.Failed())
	}
	if res.Resources != 5 {
		t.Fatalf("resources = %d, want 5", res.Resources)
	}
}

// TestChaosCorruptMapNeverFailsLoad pins the header-corruption mode: with
// every X-Etag-Config truncated in transit, a catalyst browser must load the
// site exactly as a conventional one would — no errors, no poisoned caches,
// map decode failures counted on the worker.
func TestChaosCorruptMapNeverFailsLoad(t *testing.T) {
	w, chaos := newChaosWorld(true, netsim.ChaosConfig{Seed: 2, CorruptMapProb: 1})
	b := New(w.clock, Catalyst, netsim.TransportOptions{})
	b.MaxFetchRetries = 3
	cold := mustLoad(t, b, w)
	if cold.Errors != 0 {
		t.Fatalf("corrupt map failed the cold load: %+v", cold)
	}
	w.clock.Advance(2 * time.Hour)
	warm := mustLoad(t, b, w)
	if warm.Errors != 0 {
		t.Fatalf("corrupt map failed the warm load: %+v", warm)
	}
	if chaos.Stats().CorruptedMaps == 0 {
		t.Fatal("no maps actually corrupted")
	}
	if worker, ok := b.Workers().Lookup("site.example"); ok {
		if worker.Stats().MapDecodeFailures == 0 {
			t.Fatal("worker never saw a corrupt map")
		}
		if worker.Stats().MapUpdates != 0 {
			t.Fatalf("worker accepted a corrupt map: %+v", worker.Stats())
		}
	}
	auditCaches(t, b)
}
