package browser

import (
	nethttp "net/http"
	"net/url"
	"testing"
	"time"

	"cachecatalyst/internal/core"
	"cachecatalyst/internal/etag"
	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/vclock"
)

// xoWorld builds a page with one cross-origin image, a catalyst server with
// the §6 cross-origin resolver, and a CDN origin.
func xoWorld() (*world, *server.MemContent) {
	w := &world{clock: vclock.NewVirtual(vclock.Epoch)}
	w.content = server.NewMemContent()
	w.content.SetBody("/index.html",
		`<html><head><link rel="stylesheet" href="/a.css"></head><body><img src="https://cdn.example/logo.png"></body></html>`,
		server.CachePolicy{NoCache: true})
	w.content.SetBody("/a.css", "body{}", server.CachePolicy{NoCache: true})

	cdn := server.NewMemContent()
	cdn.SetBody("/logo.png", "CDN-PNG-V1", server.CachePolicy{NoCache: true})

	opts := server.Options{Catalyst: true, Clock: w.clock}
	opts.MapOptions.CrossOriginETag = func(absURL string) (etag.Tag, bool) {
		u, err := url.Parse(absURL)
		if err != nil || u.Host != "cdn.example" {
			return etag.Tag{}, false
		}
		res, ok := cdn.Get(u.EscapedPath())
		if !ok {
			return etag.Tag{}, false
		}
		return res.ETag, true
	}
	w.srv = server.New(w.content, opts)
	cdnSrv := server.New(cdn, server.Options{Clock: w.clock})
	w.origins = OriginMap{
		"site.example": server.NewOrigin(w.srv),
		"cdn.example":  server.NewOrigin(cdnSrv),
	}
	return w, cdn
}

func TestCatalystCrossOriginServedFromSW(t *testing.T) {
	w, _ := xoWorld()
	b := New(w.clock, Catalyst, netsim.TransportOptions{})
	cold := mustLoad(t, b, w)
	if cold.Errors != 0 || cold.Resources != 3 {
		t.Fatalf("cold: %+v", cold)
	}
	// The SW cache must hold the CDN resource under its absolute URL.
	worker, ok := b.Workers().Lookup("site.example")
	if !ok {
		t.Fatal("no worker")
	}
	if _, ok := worker.Cache().Match("https://cdn.example/logo.png"); !ok {
		t.Fatal("cross-origin resource not in SW cache")
	}
	// The map must cover it.
	if _, ok := worker.ETagMap().Get("https://cdn.example/logo.png"); !ok {
		t.Fatalf("map lacks cross-origin entry: %v", worker.ETagMap())
	}

	w.clock.Advance(time.Hour)
	warm := mustLoad(t, b, w)
	// Navigation only: both a.css and the CDN image served by the SW.
	if warm.NetworkRequests != 1 {
		t.Fatalf("warm requests = %d, want 1 (%+v)", warm.NetworkRequests, warm)
	}
	if warm.LocalHits != 2 {
		t.Fatalf("warm local hits = %d, want 2 (%+v)", warm.LocalHits, warm)
	}
}

func TestCatalystCrossOriginRefetchedOnChange(t *testing.T) {
	w, cdn := xoWorld()
	b := New(w.clock, Catalyst, netsim.TransportOptions{})
	mustLoad(t, b, w)

	w.clock.Advance(time.Hour)
	cdn.SetBody("/logo.png", "CDN-PNG-V2-NEW", server.CachePolicy{NoCache: true})
	warm := mustLoad(t, b, w)
	if warm.NetworkRequests != 2 { // nav + changed CDN image
		t.Fatalf("warm requests = %d, want 2 (%+v)", warm.NetworkRequests, warm)
	}
	worker, _ := b.Workers().Lookup("site.example")
	stored, ok := worker.Cache().Match("https://cdn.example/logo.png")
	if !ok || string(stored.Body) != "CDN-PNG-V2-NEW" {
		t.Fatal("changed cross-origin resource not re-cached")
	}
}

func TestCrossOriginMapHeaderVisible(t *testing.T) {
	w, _ := xoWorld()
	origin := w.origins["site.example"]
	resp := origin.RoundTrip(newReq("/index.html"))
	m, err := core.DecodeMap(resp.Header.Get(core.HeaderName))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m["https://cdn.example/logo.png"]; !ok {
		t.Fatalf("map = %v", m)
	}
	if _, ok := m["/a.css"]; !ok {
		t.Fatalf("same-origin entry lost: %v", m)
	}
}

func newReq(path string) *netsim.Request {
	return &netsim.Request{Method: "GET", Path: path, Header: make(nethttp.Header)}
}
