package browser

import (
	"fmt"
	nethttp "net/http"
	"strings"
	"testing"
	"time"

	"cachecatalyst/internal/delta"
	"cachecatalyst/internal/httpcache"
	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/vclock"
)

// hintsWorld is a conventional server that emits preload Link headers for
// the page's subresources (consumed as 103 Early Hints by the simulator).
func hintsWorld() *world {
	w := &world{clock: vclock.NewVirtual(vclock.Epoch), content: figure1Site()}
	w.srv = server.New(w.content, server.Options{EarlyHints: true, Clock: w.clock})
	w.origins = OriginMap{"site.example": server.NewOrigin(w.srv)}
	return w
}

func TestEarlyHintsPreloadsSubresources(t *testing.T) {
	w := hintsWorld()
	b := New(w.clock, EarlyHints, netsim.TransportOptions{})

	var cssDelivered time.Duration
	b.OnFetch = func(ev FetchEvent) {
		if ev.Path == "/a.css" {
			cssDelivered = ev.End
		}
	}
	res := mustLoad(t, b, w)
	// The page's two head references are hinted; both are used.
	if res.HintedPreloads != 2 {
		t.Fatalf("hinted preloads = %d, want 2 (%+v)", res.HintedPreloads, res)
	}
	if res.HintedUnused != 0 {
		t.Fatalf("hinted unused = %d, want 0", res.HintedUnused)
	}
	if res.Errors != 0 || res.Resources != 5 {
		t.Fatalf("load: %+v", res)
	}
	// FCP correctness: a.css is render-blocking even though the preload
	// started it before the parser saw the <link> tag, so the paint cannot
	// precede its delivery.
	if res.FCP < cssDelivered {
		t.Fatalf("FCP %v before blocking stylesheet delivery %v", res.FCP, cssDelivered)
	}
}

// heavyPage pads the homepage so its transfer time dominates: the window
// where hints help, because subresource fetches overlap the HTML download
// instead of waiting for it.
func heavyPage(c *server.MemContent) {
	var b strings.Builder
	b.WriteString(`<html><head><link rel="stylesheet" href="/a.css"><script src="/b.js"></script></head><body>`)
	for b.Len() < 200<<10 {
		b.WriteString("<p>a paragraph of page text that inflates the document body</p>\n")
	}
	b.WriteString(`</body></html>`)
	c.SetBody("/index.html", b.String(), server.CachePolicy{NoCache: true})
}

func TestEarlyHintsBeatConventionalOnHeavyPage(t *testing.T) {
	cond := netsim.Conditions{RTT: 40 * time.Millisecond, DownlinkBps: 8e6}
	load := func(mode Mode, hints bool) LoadResult {
		clk := vclock.NewVirtual(vclock.Epoch)
		content := figure1Site()
		heavyPage(content)
		srv := server.New(content, server.Options{EarlyHints: hints, Clock: clk})
		origins := OriginMap{"site.example": server.NewOrigin(srv)}
		b := New(clk, mode, netsim.TransportOptions{})
		res, err := b.Load(origins, cond, "site.example", "/index.html")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hres := load(EarlyHints, true)
	cres := load(Conventional, false)
	if hres.Errors != 0 || cres.Errors != 0 {
		t.Fatalf("errors: hints %+v conventional %+v", hres, cres)
	}
	// The blocking subresources download concurrently with the 200 KiB
	// document instead of after it.
	if hres.FCP >= cres.FCP {
		t.Fatalf("early hints FCP %v not better than conventional %v", hres.FCP, cres.FCP)
	}
	if hres.PLT >= cres.PLT {
		t.Fatalf("early hints PLT %v not better than conventional %v", hres.PLT, cres.PLT)
	}
}

// extraHintOrigin appends a preload hint for a resource the page never
// references — the wasted-preload case.
type extraHintOrigin struct {
	inner netsim.Origin
	path  string
}

func (o *extraHintOrigin) RoundTrip(req *netsim.Request) *httpcache.Response {
	resp := o.inner.RoundTrip(req)
	if req.Path == "/index.html" {
		resp.Header.Add("Link", "<"+o.path+">; rel=preload; as=image")
	}
	return resp
}

func TestEarlyHintsUnusedCounted(t *testing.T) {
	w := hintsWorld()
	w.content.SetBody("/extra.png", "PNG-NEVER-REFERENCED", server.CachePolicy{MaxAge: time.Hour, HasMaxAge: true})
	w.origins["site.example"] = &extraHintOrigin{inner: w.origins["site.example"], path: "/extra.png"}
	b := New(w.clock, EarlyHints, netsim.TransportOptions{})
	res := mustLoad(t, b, w)
	if res.HintedPreloads != 3 {
		t.Fatalf("hinted preloads = %d, want 3 (%+v)", res.HintedPreloads, res)
	}
	if res.HintedUnused != 1 {
		t.Fatalf("hinted unused = %d, want 1 (%+v)", res.HintedUnused, res)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %+v", res)
	}
}

// deltaWorld is the full catalyst configuration plus delta encoding.
func deltaWorld() *world {
	w := &world{clock: vclock.NewVirtual(vclock.Epoch), content: figure1Site()}
	w.srv = server.New(w.content, server.Options{Catalyst: true, Record: true, Delta: true, Clock: w.clock})
	w.origins = OriginMap{"site.example": server.NewOrigin(w.srv)}
	return w
}

func TestDeltaNavApplied(t *testing.T) {
	w := deltaWorld()
	b := New(w.clock, Catalyst, netsim.TransportOptions{}).WithDelta()
	first := mustLoad(t, b, w)
	if first.DeltaApplied != 0 || first.Errors != 0 {
		t.Fatalf("cold load: %+v", first)
	}

	w.clock.Advance(2 * time.Hour)
	w.content.SetBody("/index.html",
		`<html><head><link rel="stylesheet" href="/a.css"><script src="/b.js"></script></head><body>hello updated world</body></html>`,
		server.CachePolicy{NoCache: true})
	res := mustLoad(t, b, w)
	if res.DeltaApplied != 1 {
		t.Fatalf("delta applied = %d, want 1 (%+v)", res.DeltaApplied, res)
	}
	if res.DeltaFallbacks != 0 || res.Errors != 0 {
		t.Fatalf("revisit: %+v", res)
	}
	// The reconstructed document drove the load: its subresources resolved
	// and the cache now holds the patched body.
	e, ok := b.Cache().Peek("site.example/index.html")
	if !ok || !strings.Contains(string(e.Response.Body), "hello updated world") {
		t.Fatal("patched navigation body not in cache")
	}
	if strings.Contains(string(e.Response.Body), "CCD1") {
		t.Fatal("raw patch bytes cached instead of the reconstruction")
	}
}

func TestDeltaUnchangedRevisitStill304(t *testing.T) {
	w := deltaWorld()
	b := New(w.clock, Catalyst, netsim.TransportOptions{}).WithDelta()
	mustLoad(t, b, w)
	w.clock.Advance(2 * time.Hour)
	res := mustLoad(t, b, w)
	if res.DeltaApplied != 0 {
		t.Fatalf("delta applied on unchanged page (%+v)", res)
	}
	if res.Validations304 == 0 {
		t.Fatalf("unchanged revisit did not revalidate to 304 (%+v)", res)
	}
}

// corruptDeltaOrigin answers any delta-offering request with a garbage
// patch, forcing the client's verification to fail.
type corruptDeltaOrigin struct {
	inner netsim.Origin
}

func (o *corruptDeltaOrigin) RoundTrip(req *netsim.Request) *httpcache.Response {
	if base := req.Header.Get(delta.RequestHeader); base != "" {
		body := []byte("CCD1 this is not a valid patch")
		h := make(nethttp.Header)
		h.Set("Content-Type", "text/html")
		h.Set("Etag", `"bogus"`)
		h.Set(delta.FromHeader, base)
		h.Set("Content-Length", fmt.Sprint(len(body)))
		return &httpcache.Response{StatusCode: 200, Header: h, Body: body}
	}
	return o.inner.RoundTrip(req)
}

func TestDeltaFallbackOnCorruptPatch(t *testing.T) {
	w := deltaWorld()
	b := New(w.clock, Catalyst, netsim.TransportOptions{}).WithDelta()
	mustLoad(t, b, w)

	w.clock.Advance(2 * time.Hour)
	w.content.SetBody("/index.html",
		`<html><head><link rel="stylesheet" href="/a.css"><script src="/b.js"></script></head><body>changed</body></html>`,
		server.CachePolicy{NoCache: true})
	w.origins["site.example"] = &corruptDeltaOrigin{inner: w.origins["site.example"]}
	res := mustLoad(t, b, w)
	if res.DeltaFallbacks != 1 || res.DeltaApplied != 0 {
		t.Fatalf("fallbacks = %d, applied = %d, want 1/0 (%+v)", res.DeltaFallbacks, res.DeltaApplied, res)
	}
	if res.Errors != 0 {
		t.Fatalf("errors after fallback: %+v", res)
	}
	// The fallback refetch (no delta offer) got the real document.
	e, ok := b.Cache().Peek("site.example/index.html")
	if !ok || !strings.Contains(string(e.Response.Body), "changed") {
		t.Fatal("fallback did not cache the full document")
	}
}

// brokenSite is figure1Site plus a reference to a resource that 404s until
// the test deploys it.
func brokenSite() *server.MemContent {
	c := figure1Site()
	c.SetBody("/index.html",
		`<html><head><link rel="stylesheet" href="/a.css"><script src="/b.js"></script></head><body>hello<img src="/missing.png"></body></html>`,
		server.CachePolicy{NoCache: true})
	return c
}

func TestNegativeCacheConventional(t *testing.T) {
	w := &world{clock: vclock.NewVirtual(vclock.Epoch), content: brokenSite()}
	w.srv = server.New(w.content, server.Options{Clock: w.clock})
	w.origins = OriginMap{"site.example": server.NewOrigin(w.srv)}
	b := New(w.clock, Conventional, netsim.TransportOptions{}).WithNegativeCache(time.Hour)

	first := mustLoad(t, b, w)
	if first.Errors != 1 || first.NegativeHits != 0 {
		t.Fatalf("first load: %+v", first)
	}

	// Within the TTL the 404 answers locally: no repeat request.
	w.clock.Advance(10 * time.Minute)
	second := mustLoad(t, b, w)
	if second.NegativeHits != 1 {
		t.Fatalf("negative hits = %d, want 1 (%+v)", second.NegativeHits, second)
	}
	if second.Errors != 1 {
		t.Fatalf("second load errors = %d, want 1", second.Errors)
	}
	if second.NetworkRequests >= first.NetworkRequests {
		t.Fatalf("negative hit did not save a request: %d vs %d", second.NetworkRequests, first.NetworkRequests)
	}

	// The asset deploys; past the TTL the cached 404 expires and the
	// resource flips to 200.
	w.content.SetBody("/missing.png", "PNG-FINALLY-HERE", server.CachePolicy{MaxAge: time.Hour, HasMaxAge: true})
	w.clock.Advance(2 * time.Hour)
	third := mustLoad(t, b, w)
	if third.Errors != 0 || third.NegativeHits != 0 {
		t.Fatalf("post-deploy load: %+v", third)
	}
	e, ok := b.Cache().Peek("site.example/missing.png")
	if !ok || string(e.Response.Body) != "PNG-FINALLY-HERE" {
		t.Fatal("deployed resource not cached as 200")
	}
}

func TestNegativeCacheCatalystFlipViaMap(t *testing.T) {
	w := &world{clock: vclock.NewVirtual(vclock.Epoch), content: brokenSite()}
	w.srv = server.New(w.content, server.Options{Catalyst: true, Record: true, Clock: w.clock})
	w.origins = OriginMap{"site.example": server.NewOrigin(w.srv)}
	b := New(w.clock, Catalyst, netsim.TransportOptions{}).WithNegativeCache(time.Hour)

	first := mustLoad(t, b, w)
	if first.Errors != 1 {
		t.Fatalf("first load: %+v", first)
	}

	w.clock.Advance(10 * time.Minute)
	second := mustLoad(t, b, w)
	if second.NegativeHits != 1 {
		t.Fatalf("negative hits = %d, want 1 (%+v)", second.NegativeHits, second)
	}

	// The asset deploys. Still well inside the TTL, but the next
	// navigation's X-Etag-Config now covers the path — the map evicts the
	// negative entry immediately, beating TTL expiry.
	w.content.SetBody("/missing.png", "PNG-DEPLOYED", server.CachePolicy{MaxAge: time.Hour, HasMaxAge: true})
	w.clock.Advance(10 * time.Minute)
	third := mustLoad(t, b, w)
	if third.NegativeHits != 0 {
		t.Fatalf("negative entry survived a map covering the path (%+v)", third)
	}
	if third.Errors != 0 {
		t.Fatalf("post-deploy load: %+v", third)
	}
}
