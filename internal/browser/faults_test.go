package browser

import (
	"testing"
	"time"

	"cachecatalyst/internal/netsim"
	"cachecatalyst/internal/server"
	"cachecatalyst/internal/vclock"
)

// faultWorld wraps the Figure 1 site's origin with failure injection.
func faultWorld(catalyst bool, failEvery int) (*world, *netsim.FaultyOrigin) {
	w := &world{clock: vclock.NewVirtual(vclock.Epoch), content: figure1Site()}
	w.srv = server.New(w.content, server.Options{Catalyst: catalyst, Record: catalyst, Clock: w.clock})
	faulty := &netsim.FaultyOrigin{Inner: server.NewOrigin(w.srv), FailEvery: failEvery}
	w.origins = OriginMap{"site.example": faulty}
	return w, faulty
}

func TestLoadSurvivesInjectedFailures(t *testing.T) {
	w, faulty := faultWorld(false, 3) // every 3rd request 503s
	b := New(w.clock, Conventional, netsim.TransportOptions{})
	res := mustLoad(t, b, w)
	if faulty.Failed() == 0 {
		t.Fatal("no failures injected")
	}
	if res.Errors != int(faulty.Failed()) {
		t.Fatalf("errors = %d, injected = %d", res.Errors, faulty.Failed())
	}
	// The load terminates with a finite PLT despite failures.
	if res.PLT <= 0 || res.PLT > time.Minute {
		t.Fatalf("PLT = %v", res.PLT)
	}
	// Failed responses are no-store 503s and must not enter the cache.
	for _, p := range []string{"/index.html", "/a.css", "/b.js", "/c.js", "/d.jpg"} {
		if e, ok := b.Cache().Peek("site.example" + p); ok && e.Response.StatusCode != 200 {
			t.Fatalf("non-200 cached for %s: %d", p, e.Response.StatusCode)
		}
	}
}

func TestCatalystRecoversAfterFailuresStop(t *testing.T) {
	w, faulty := faultWorld(true, 2) // every 2nd request fails on the first visit
	b := New(w.clock, Catalyst, netsim.TransportOptions{})
	first := mustLoad(t, b, w)
	if first.Errors == 0 {
		t.Fatal("expected cold-load errors")
	}

	// Failures stop; the next visit must fully succeed and warm the SW.
	faulty.FailEvery = 1 << 30
	w.clock.Advance(time.Minute)
	second := mustLoad(t, b, w)
	if second.Errors != 0 {
		t.Fatalf("second load errors: %+v", second)
	}
	// And the third visit gets the full catalyst benefit.
	w.clock.Advance(time.Minute)
	third := mustLoad(t, b, w)
	if third.Errors != 0 {
		t.Fatalf("third load errors: %+v", third)
	}
	if third.LocalHits == 0 {
		t.Fatal("no local hits after recovery")
	}
	if third.PLT >= second.PLT {
		t.Fatalf("no improvement after recovery: %v vs %v", third.PLT, second.PLT)
	}
}

func TestNavigationFailureIsTerminal(t *testing.T) {
	// If the navigation itself 503s, the load ends with one error and no
	// subresource fetches.
	w, _ := faultWorld(false, 1) // everything fails
	b := New(w.clock, Conventional, netsim.TransportOptions{})
	res := mustLoad(t, b, w)
	if res.Errors != 1 || res.NetworkRequests != 1 {
		t.Fatalf("failed navigation: %+v", res)
	}
}
